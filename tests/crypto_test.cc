#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "crypto/add_hash.h"
#include "crypto/hmac.h"
#include "crypto/seq_hash.h"
#include "crypto/sha256.h"
#include "crypto/sha256_kernels.h"
#include "crypto/sha512.h"

namespace complydb {
namespace {

// ---------- SHA-256 ----------

TEST(Sha256Test, KnownVectors) {
  EXPECT_EQ(DigestHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(DigestHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      DigestHex(Sha256::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShotAtAllSplits) {
  std::string data = "The compliance log contains all new tuples since audit";
  Sha256Digest expect = Sha256::Hash(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    Sha256 h;
    h.Update(Slice(data.data(), split));
    h.Update(Slice(data.data() + split, data.size() - split));
    EXPECT_EQ(h.Finish(), expect) << "split " << split;
  }
}

TEST(Sha256Test, PaddingBoundaries) {
  // Lengths around the 55/56/64 byte padding boundaries must all differ
  // and be self-consistent on re-computation.
  for (size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string data(len, 'q');
    EXPECT_EQ(Sha256::Hash(data), Sha256::Hash(data));
    std::string other(len + 1, 'q');
    EXPECT_NE(Sha256::Hash(data), Sha256::Hash(other));
  }
}

// ---------- SHA-256 kernel dispatch ----------

// Pins each available implementation in turn and restores auto dispatch
// even if an assertion fails mid-test.
class Sha256KernelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ASSERT_TRUE(Sha256ForceImpl(Sha256Impl::kAuto).ok());
  }

  static std::vector<Sha256Impl> SupportedImpls() {
    std::vector<Sha256Impl> impls = {Sha256Impl::kScalar};
    if (Sha256CpuHasShaNi()) impls.push_back(Sha256Impl::kShaNi);
    if (Sha256CpuHasAvx2()) impls.push_back(Sha256Impl::kAvx2);
    return impls;
  }
};

TEST_F(Sha256KernelTest, ForceRejectsUnsupported) {
  if (!Sha256CpuHasShaNi()) {
    EXPECT_FALSE(Sha256ForceImpl(Sha256Impl::kShaNi).ok());
  }
  if (!Sha256CpuHasAvx2()) {
    EXPECT_FALSE(Sha256ForceImpl(Sha256Impl::kAvx2).ok());
  }
  EXPECT_TRUE(Sha256ForceImpl(Sha256Impl::kScalar).ok());
}

TEST_F(Sha256KernelTest, AllImplsMatchScalarAtBoundaryLengths) {
  // Padding boundaries (55/56/64/65), block multiples, and a multi-MB
  // buffer spanning many blocks.
  std::vector<size_t> lengths = {0,  1,  3,   55,  56,  57,   63,  64,
                                 65, 127, 128, 129, 1000, 4096, 8192};
  lengths.push_back(3u << 20);  // 3 MiB

  Random rng(20260806);
  std::vector<std::string> inputs;
  for (size_t len : lengths) inputs.push_back(rng.Bytes(len));
  for (int i = 0; i < 32; ++i) inputs.push_back(rng.Bytes(rng.Uniform(2048)));

  ASSERT_TRUE(Sha256ForceImpl(Sha256Impl::kScalar).ok());
  std::vector<Sha256Digest> expect;
  for (const auto& in : inputs) expect.push_back(Sha256::Hash(in));

  for (Sha256Impl impl : SupportedImpls()) {
    ASSERT_TRUE(Sha256ForceImpl(impl).ok()) << Sha256ImplName(impl);
    for (size_t i = 0; i < inputs.size(); ++i) {
      EXPECT_EQ(Sha256::Hash(inputs[i]), expect[i])
          << Sha256ImplName(impl) << " len " << inputs[i].size();
    }
  }
}

TEST_F(Sha256KernelTest, IncrementalMatchesAcrossImpls) {
  Random rng(7);
  std::string data = rng.Bytes(100000);
  ASSERT_TRUE(Sha256ForceImpl(Sha256Impl::kScalar).ok());
  Sha256Digest expect = Sha256::Hash(data);
  for (Sha256Impl impl : SupportedImpls()) {
    ASSERT_TRUE(Sha256ForceImpl(impl).ok());
    Sha256 h;
    size_t off = 0;
    while (off < data.size()) {
      size_t take = std::min<size_t>(1 + rng.Uniform(9000),
                                     data.size() - off);
      h.Update(Slice(data.data() + off, take));
      off += take;
    }
    EXPECT_EQ(h.Finish(), expect) << Sha256ImplName(impl);
  }
}

TEST_F(Sha256KernelTest, BatchMatchesSingleBufferHashing) {
  Random rng(99);
  // Batch sizes around the 8-lane AVX2 grouping: 0, 1, partial group,
  // exact group, group+1, two groups+1.
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 17u}) {
    std::vector<std::string> bufs;
    std::vector<Slice> slices;
    for (size_t i = 0; i < n; ++i) {
      // Mixed lengths, including empty and multi-block.
      size_t len = (i % 3 == 0) ? i * 37 : rng.Uniform(10000);
      bufs.push_back(rng.Bytes(len));
    }
    for (const auto& b : bufs) slices.emplace_back(b);

    std::vector<Sha256Digest> out(n);
    Sha256BatchHash(slices.data(), n, out.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], Sha256::Hash(slices[i])) << "n " << n << " i " << i;
    }
    EXPECT_EQ(Sha256BatchHash(slices),
              std::vector<Sha256Digest>(out.begin(), out.end()));
  }
}

TEST_F(Sha256KernelTest, BatchMatchesUnderEveryForcedImpl) {
  Random rng(123);
  std::vector<std::string> bufs;
  std::vector<Slice> slices;
  for (size_t i = 0; i < 13; ++i) bufs.push_back(rng.Bytes(rng.Uniform(5000)));
  for (const auto& b : bufs) slices.emplace_back(b);

  ASSERT_TRUE(Sha256ForceImpl(Sha256Impl::kScalar).ok());
  std::vector<Sha256Digest> expect(bufs.size());
  Sha256BatchHash(slices.data(), slices.size(), expect.data());

  for (Sha256Impl impl : SupportedImpls()) {
    ASSERT_TRUE(Sha256ForceImpl(impl).ok());
    std::vector<Sha256Digest> out(bufs.size());
    Sha256BatchHash(slices.data(), slices.size(), out.data());
    EXPECT_EQ(out, expect) << Sha256ImplName(impl);
  }
}

// ---------- SHA-512 ----------

std::string Sha512Hex(Slice s) {
  auto d = Sha512::Hash(s);
  return ToHex(Slice(reinterpret_cast<const char*>(d.data()), d.size()));
}

TEST(Sha512Test, KnownVectors) {
  EXPECT_EQ(Sha512Hex(""),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
  EXPECT_EQ(Sha512Hex("abc"),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512Test, IncrementalMatchesOneShot) {
  std::string data(300, '\0');
  Random rng(42);
  for (auto& c : data) c = static_cast<char>(rng.Next());
  auto expect = Sha512::Hash(data);
  for (size_t split : {0u, 1u, 127u, 128u, 129u, 300u}) {
    Sha512 h;
    h.Update(Slice(data.data(), split));
    h.Update(Slice(data.data() + split, data.size() - split));
    EXPECT_EQ(h.Finish(), expect) << "split " << split;
  }
}

// ---------- ADD_HASH ----------

TEST(AddHashTest, EmptySetsEqual) {
  EXPECT_EQ(AddHash(), AddHash());
}

TEST(AddHashTest, CommutativeUnderPermutation) {
  std::vector<std::string> elems = {"t1", "t2", "t3", "t4", "t5"};
  AddHash forward;
  for (const auto& e : elems) forward.Add(e);

  std::sort(elems.rbegin(), elems.rend());
  AddHash reversed;
  for (const auto& e : elems) reversed.Add(e);

  EXPECT_EQ(forward, reversed);
}

TEST(AddHashTest, IncrementalEqualsBatch) {
  // H(Ds ∪ L) computed by merging two accumulators equals folding all
  // elements into one — the auditor relies on this.
  AddHash ds, log, merged;
  for (int i = 0; i < 50; ++i) {
    std::string e = "snapshot-tuple-" + std::to_string(i);
    ds.Add(e);
    merged.Add(e);
  }
  for (int i = 0; i < 30; ++i) {
    std::string e = "log-tuple-" + std::to_string(i);
    log.Add(e);
    merged.Add(e);
  }
  AddHash combined = ds;
  combined.Merge(log);
  EXPECT_EQ(combined, merged);
}

TEST(AddHashTest, RemoveInvertsAdd) {
  AddHash h;
  h.Add("alpha");
  h.Add("beta");
  h.Add("gamma");
  h.Remove("beta");
  AddHash expect;
  expect.Add("alpha");
  expect.Add("gamma");
  EXPECT_EQ(h, expect);
}

TEST(AddHashTest, RemoveAllYieldsEmpty) {
  AddHash h;
  for (int i = 0; i < 20; ++i) h.Add("e" + std::to_string(i));
  for (int i = 19; i >= 0; --i) h.Remove("e" + std::to_string(i));
  EXPECT_EQ(h, AddHash());
}

TEST(AddHashTest, DetectsDifferentMultisets) {
  AddHash a, b;
  a.Add("x");
  b.Add("y");
  EXPECT_NE(a, b);

  // Multiset sensitivity: {x, x} != {x}.
  AddHash two_x;
  two_x.Add("x");
  two_x.Add("x");
  EXPECT_NE(two_x, a);
}

TEST(AddHashTest, SerializeRoundTrip) {
  AddHash h;
  h.Add("tuple-a");
  h.Add("tuple-b");
  std::string blob = h.Serialize();
  ASSERT_EQ(blob.size(), 64u);
  auto back = AddHash::Deserialize(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), h);
}

TEST(AddHashTest, DeserializeRejectsBadSize) {
  EXPECT_FALSE(AddHash::Deserialize("short").ok());
}

// Property sweep: random multisets hashed in two random orders agree;
// differing multisets disagree.
class AddHashPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AddHashPropertyTest, PermutationInvariance) {
  Random rng(GetParam());
  size_t n = 1 + rng.Uniform(64);
  std::vector<std::string> elems;
  for (size_t i = 0; i < n; ++i) elems.push_back(rng.Bytes(1 + rng.Uniform(40)));

  AddHash a;
  for (const auto& e : elems) a.Add(e);

  // Shuffle.
  for (size_t i = elems.size(); i > 1; --i) {
    std::swap(elems[i - 1], elems[rng.Uniform(i)]);
  }
  AddHash b;
  for (const auto& e : elems) b.Add(e);
  EXPECT_EQ(a, b);

  // Perturb one element: hash must change.
  AddHash c = b;
  c.Remove(elems[0]);
  c.Add(elems[0] + "!");
  EXPECT_NE(c, a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddHashPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---------- SeqHash ----------

TEST(SeqHashTest, EmptySequence) {
  EXPECT_EQ(SeqHash::Compute({}), SeqHash::Empty());
}

TEST(SeqHashTest, OrderSensitive) {
  std::vector<std::string> ab = {"a", "b"};
  std::vector<std::string> ba = {"b", "a"};
  EXPECT_NE(SeqHash::ComputeOwned(ab), SeqHash::ComputeOwned(ba));
}

TEST(SeqHashTest, MatchesRecursiveDefinition) {
  // Hs(r1, r2) = H(h(r1) || Hs(r2)) ; Hs(r2) = H(h(r2) || 0^32).
  auto h = [](Slice s) { return Sha256::Hash(s); };
  auto cat = [](const Sha256Digest& x, const Sha256Digest& y) {
    Sha256 outer;
    outer.Update(Slice(reinterpret_cast<const char*>(x.data()), x.size()));
    outer.Update(Slice(reinterpret_cast<const char*>(y.data()), y.size()));
    return outer.Finish();
  };
  Sha256Digest hs2 = cat(h("r2"), SeqHash::Empty());
  Sha256Digest hs12 = cat(h("r1"), hs2);
  std::vector<std::string> elems = {"r1", "r2"};
  EXPECT_EQ(SeqHash::ComputeOwned(elems), hs12);
}

TEST(SeqHashTest, SensitiveToEveryElement) {
  std::vector<std::string> base = {"t0", "t1", "t2", "t3"};
  auto expect = SeqHash::ComputeOwned(base);
  for (size_t i = 0; i < base.size(); ++i) {
    auto mutated = base;
    mutated[i] += "x";
    EXPECT_NE(SeqHash::ComputeOwned(mutated), expect) << "element " << i;
  }
  auto truncated = base;
  truncated.pop_back();
  EXPECT_NE(SeqHash::ComputeOwned(truncated), expect);
}

// ---------- HMAC ----------

TEST(HmacTest, Rfc4231Vector1) {
  std::string key(20, '\x0b');
  auto mac = HmacSha256(key, "Hi There");
  EXPECT_EQ(DigestHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Vector2) {
  auto mac = HmacSha256("Jefe", "what do ya want for nothing?");
  EXPECT_EQ(DigestHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashed) {
  std::string key(131, '\xaa');
  auto mac = HmacSha256(
      key, "Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(DigestHex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DifferentKeysDiffer) {
  EXPECT_FALSE(DigestEqual(HmacSha256("auditor-key-1", "snapshot"),
                           HmacSha256("auditor-key-2", "snapshot")));
  EXPECT_TRUE(DigestEqual(HmacSha256("k", "m"), HmacSha256("k", "m")));
}

}  // namespace
}  // namespace complydb
