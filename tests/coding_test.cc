#include "common/coding.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/slice.h"

namespace complydb {
namespace {

TEST(CodingTest, Fixed16RoundTrip) {
  for (uint32_t v : {0u, 1u, 255u, 256u, 65535u}) {
    std::string s;
    PutFixed16(&s, static_cast<uint16_t>(v));
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(DecodeFixed16(s.data()), v);
  }
}

TEST(CodingTest, Fixed32RoundTrip) {
  for (uint32_t v : {0u, 1u, 0xDEADBEEFu, std::numeric_limits<uint32_t>::max()}) {
    std::string s;
    PutFixed32(&s, v);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(DecodeFixed32(s.data()), v);
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{0xDEADBEEFCAFEBABE},
                     std::numeric_limits<uint64_t>::max()}) {
    std::string s;
    PutFixed64(&s, v);
    ASSERT_EQ(s.size(), 8u);
    EXPECT_EQ(DecodeFixed64(s.data()), v);
  }
}

TEST(CodingTest, FixedIsLittleEndian) {
  std::string s;
  PutFixed32(&s, 0x01020304u);
  EXPECT_EQ(s[0], 0x04);
  EXPECT_EQ(s[3], 0x01);
}

TEST(CodingTest, BigEndianPreservesOrder) {
  // Lexicographic byte order of big-endian encodings == numeric order.
  std::string prev;
  for (uint64_t v : {0ull, 1ull, 255ull, 256ull, 1ull << 32, 1ull << 63}) {
    std::string cur;
    PutBigEndian64(&cur, v);
    ASSERT_EQ(cur.size(), 8u);
    EXPECT_EQ(DecodeBigEndian64(cur.data()), v);
    if (!prev.empty()) {
      EXPECT_LT(prev, cur);
    }
    prev = cur;
  }
}

TEST(CodingTest, BigEndian32RoundTrip) {
  std::string s;
  PutBigEndian32(&s, 0x01020304u);
  EXPECT_EQ(s[0], 0x01);
  EXPECT_EQ(DecodeBigEndian32(s.data()), 0x01020304u);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string s;
  PutLengthPrefixed(&s, "hello");
  PutLengthPrefixed(&s, "");
  PutLengthPrefixed(&s, std::string(1000, 'x'));

  Decoder dec(s);
  std::string a, b, c;
  ASSERT_TRUE(dec.GetLengthPrefixed(&a).ok());
  ASSERT_TRUE(dec.GetLengthPrefixed(&b).ok());
  ASSERT_TRUE(dec.GetLengthPrefixed(&c).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string(1000, 'x'));
  EXPECT_TRUE(dec.Done());
}

TEST(CodingTest, DecoderDetectsTruncation) {
  std::string s;
  PutFixed32(&s, 12345);
  Decoder dec(Slice(s.data(), 3));
  uint32_t v;
  EXPECT_TRUE(dec.GetFixed32(&v).IsCorruption());
}

TEST(CodingTest, DecoderDetectsTruncatedLengthPrefix) {
  std::string s;
  PutFixed32(&s, 100);  // claims 100 bytes follow, none do
  Decoder dec(s);
  std::string out;
  EXPECT_TRUE(dec.GetLengthPrefixed(&out).IsCorruption());
}

TEST(CodingTest, DecoderSkip) {
  std::string s = "abcdef";
  Decoder dec(s);
  ASSERT_TRUE(dec.Skip(4).ok());
  EXPECT_EQ(dec.remaining(), 2u);
  EXPECT_TRUE(dec.Skip(3).IsCorruption());
}

TEST(SliceTest, CompareAndPrefix) {
  Slice a("abc"), b("abd"), c("ab");
  EXPECT_LT(a.compare(b), 0);
  EXPECT_GT(b.compare(a), 0);
  EXPECT_EQ(a.compare(Slice("abc")), 0);
  EXPECT_TRUE(a.starts_with(c));
  EXPECT_FALSE(c.starts_with(a));
}

TEST(StatusTest, ToStringAndPredicates) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::Tampered("leaf 33 swapped");
  EXPECT_TRUE(s.IsTampered());
  EXPECT_EQ(s.ToString(), "Tampered: leaf 33 swapped");
  EXPECT_TRUE(Status::WormViolation("x").IsWormViolation());
}

}  // namespace
}  // namespace complydb
