// Robustness: every decoder that parses attacker-reachable bytes (pages
// and the transaction log live on ordinary media; Mala can feed them
// anything) must reject garbage with a Status, never crash or accept.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "btree/tuple.h"
#include "common/clock.h"
#include "common/random.h"
#include "compliance/records.h"
#include "compliance/compliance_log.h"
#include "compliance/snapshot.h"
#include "storage/page.h"
#include "wal/log_record.h"
#include "worm/worm_store.h"

namespace complydb {
namespace {

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, WalRecordDecodeNeverCrashes) {
  Random rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    size_t len = rng.Uniform(300);
    std::string garbage(len, '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.Next());
    WalRecord rec;
    size_t consumed = 0;
    Status s = WalRecord::Decode(garbage, &rec, &consumed);
    // Either corrupt or (astronomically unlikely) valid — never UB.
    if (s.ok()) EXPECT_LE(consumed, garbage.size());
  }
}

TEST_P(FuzzTest, CRecordDecodeNeverCrashes) {
  Random rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    size_t len = rng.Uniform(300);
    std::string garbage(len, '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.Next());
    CRecord rec;
    size_t consumed = 0;
    Status s = CRecord::Decode(garbage, &rec, &consumed);
    if (s.ok()) EXPECT_LE(consumed, garbage.size());
  }
}

TEST_P(FuzzTest, TruncatedValidRecordsRejected) {
  Random rng(GetParam());
  // Start from a VALID record and truncate/corrupt it at every length.
  WalRecord wal;
  wal.type = WalRecordType::kTupleInsert;
  wal.txn_id = 42;
  wal.tuple = rng.Bytes(40);
  wal.page_image = rng.Bytes(100);
  std::string valid = wal.Encode();
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    WalRecord out;
    size_t consumed = 0;
    Status s = WalRecord::Decode(Slice(valid.data(), cut), &out, &consumed);
    EXPECT_FALSE(s.ok()) << "truncated to " << cut;
  }
  // Single-byte corruption anywhere must be caught by the CRC.
  for (int i = 0; i < 64; ++i) {
    std::string mutated = valid;
    mutated[rng.Uniform(mutated.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    WalRecord out;
    size_t consumed = 0;
    Status s = WalRecord::Decode(mutated, &out, &consumed);
    if (mutated != valid) EXPECT_FALSE(s.ok());
  }
}

TEST_P(FuzzTest, TupleDecodeNeverCrashes) {
  Random rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    size_t len = rng.Uniform(80);
    std::string garbage(len, '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.Next());
    TupleData t;
    (void)DecodeTuple(garbage, &t);
    IndexEntry e;
    (void)DecodeIndexEntry(garbage, &e);
    Slice k;
    uint64_t st;
    PageId child;
    (void)DecodeTupleKey(garbage, &k, &st);
    (void)DecodeIndexEntryKey(garbage, &k, &st, &child);
  }
}

TEST_P(FuzzTest, PageCheckStructureOnRandomBytes) {
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Page page;
    for (size_t b = 0; b < kPageSize; ++b) {
      page.data()[b] = static_cast<char>(rng.Next());
    }
    // Must terminate and not crash; almost always Corruption.
    (void)page.CheckStructure();
  }
  // A formatted page with fuzzed header fields.
  for (int i = 0; i < 500; ++i) {
    Page page;
    page.Format(1, PageType::kBtreeLeaf, 1, 0);
    TupleData t;
    t.key = "k";
    t.value = rng.Bytes(20);
    t.order_no = page.TakeOrderNumber();
    ASSERT_TRUE(page.AppendRecord(EncodeTuple(t)).ok());
    // Corrupt a random header/slot byte.
    page.data()[rng.Uniform(64)] ^= static_cast<char>(1 + rng.Uniform(255));
    (void)page.CheckStructure();
  }
}

TEST_P(FuzzTest, SnapshotRejectsCorruptBytes) {
  SimulatedClock clock;
  std::string dir = ::testing::TempDir() + "/fuzz_snap_" +
                    std::to_string(GetParam());
  std::filesystem::remove_all(dir);
  auto w = WormStore::Open(dir, &clock);
  ASSERT_TRUE(w.ok());
  std::unique_ptr<WormStore> worm(w.value());

  Snapshot snap;
  snap.epoch = 1;
  snap.trees.push_back({1, 1, "t"});
  ASSERT_TRUE(snap.WriteSigned(worm.get(), "key").ok());

  std::string blob;
  ASSERT_TRUE(worm->ReadAll(SnapshotFileName(1), &blob).ok());
  Random rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    std::string mutated = blob;
    mutated[rng.Uniform(mutated.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    if (mutated == blob) continue;
    // Write under a different epoch name and try to verify.
    std::string name = SnapshotFileName(100 + i);
    if (worm->Exists(name)) continue;
    ASSERT_TRUE(worm->CreateWithContent(name, 0, mutated).ok());
    Snapshot out;
    auto r = Snapshot::ReadVerified(worm.get(), 100 + i, "key");
    EXPECT_FALSE(r.ok()) << "mutation " << i << " accepted";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(0xF1, 0xF2, 0xF3, 0xF4));

}  // namespace
}  // namespace complydb
