#include "db/compliant_db.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

class CompliantDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/cdb_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  DbOptions MakeOptions() {
    DbOptions opts;
    opts.dir = dir_;
    opts.cache_pages = 64;
    opts.clock = &clock_;
    opts.compliance.enabled = true;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    return opts;
  }

  void OpenDb(const DbOptions& opts) {
    auto r = CompliantDB::Open(opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    db_.reset(r.value());
  }

  void PutCommitted(uint32_t table, const std::string& key,
                    const std::string& value) {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok()) << txn.status().ToString();
    ASSERT_TRUE(db_->Put(txn.value(), table, key, value).ok());
    Status s = db_->Commit(txn.value());
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  void ExpectAuditOk() {
    auto report = db_->Audit();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report.value().ok())
        << report.value().problems.size() << " problems; first: "
        << report.value().problems[0];
  }

  void ExpectAuditFails(const std::string& label) {
    auto report = db_->Audit();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_FALSE(report.value().ok()) << label << ": audit should have failed";
  }

  SimulatedClock clock_;
  std::string dir_;
  std::unique_ptr<CompliantDB> db_;
};

TEST_F(CompliantDbTest, PutGetCommit) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("accounts");
  ASSERT_TRUE(table.ok());
  PutCommitted(table.value(), "alice", "100");
  std::string value;
  ASSERT_TRUE(db_->Get(table.value(), "alice", &value).ok());
  EXPECT_EQ(value, "100");
}

TEST_F(CompliantDbTest, AbortRollsBack) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("accounts");
  ASSERT_TRUE(table.ok());
  PutCommitted(table.value(), "alice", "100");

  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db_->Put(txn.value(), table.value(), "bob", "50").ok());
  ASSERT_TRUE(db_->Abort(txn.value()).ok());

  std::string value;
  EXPECT_TRUE(db_->Get(table.value(), "bob", &value).IsNotFound());
  ASSERT_TRUE(db_->Get(table.value(), "alice", &value).ok());
  EXPECT_EQ(value, "100");
}

TEST_F(CompliantDbTest, DoubleWriteSameKeyRejected) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db_->Put(txn.value(), table.value(), "k", "v1").ok());
  EXPECT_TRUE(
      db_->Put(txn.value(), table.value(), "k", "v2").IsInvalidArgument());
  ASSERT_TRUE(db_->Commit(txn.value()).ok());
}

TEST_F(CompliantDbTest, FirstAuditPasses) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 50; ++i) {
    PutCommitted(table.value(), "key" + std::to_string(i),
                 "value" + std::to_string(i));
  }
  ExpectAuditOk();
  EXPECT_EQ(db_->epoch(), 1u);
}

TEST_F(CompliantDbTest, MultipleEpochsAudit) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (int i = 0; i < 30; ++i) {
      PutCommitted(table.value(),
                   "e" + std::to_string(epoch) + "k" + std::to_string(i),
                   "v" + std::to_string(i));
    }
    clock_.AdvanceMicros(kMinute);
    ExpectAuditOk();
  }
  EXPECT_EQ(db_->epoch(), 3u);
  // All data still readable.
  std::string value;
  ASSERT_TRUE(db_->Get(table.value(), "e0k7", &value).ok());
  EXPECT_EQ(value, "v7");
}

TEST_F(CompliantDbTest, AuditAfterUpdatesAndDeletes) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 20; ++i) {
    PutCommitted(table.value(), "k" + std::to_string(i), "v0");
  }
  for (int i = 0; i < 20; i += 2) {
    PutCommitted(table.value(), "k" + std::to_string(i), "v1");
  }
  for (int i = 0; i < 20; i += 4) {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(
        db_->Delete(txn.value(), table.value(), "k" + std::to_string(i)).ok());
    ASSERT_TRUE(db_->Commit(txn.value()).ok());
  }
  ExpectAuditOk();
}

TEST_F(CompliantDbTest, AuditAfterAborts) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 20; ++i) {
    PutCommitted(table.value(), "k" + std::to_string(i), "keep");
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(
        db_->Put(txn.value(), table.value(), "tmp" + std::to_string(i), "x")
            .ok());
    ASSERT_TRUE(db_->Abort(txn.value()).ok());
  }
  // Force pages through disk so aborted-tuple UNDO paths exercise.
  ASSERT_TRUE(db_->FlushAll().ok());
  ExpectAuditOk();
}

TEST_F(CompliantDbTest, StealFlushesUncommittedThenAbort) {
  // A tiny cache forces dirty-page steal while the txn is active; the
  // aborted tuple reaches disk and is later undone — L must tell the story
  // (NEW_TUPLE then justified UNDO) and the audit must pass.
  DbOptions opts = MakeOptions();
  opts.cache_pages = 8;
  OpenDb(opts);
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db_->Put(txn.value(), table.value(),
                         "abort-key" + std::to_string(1000 + i), "payload")
                    .ok());
  }
  ASSERT_TRUE(db_->Abort(txn.value()).ok());
  ASSERT_TRUE(db_->FlushAll().ok());
  ExpectAuditOk();
  std::string value;
  EXPECT_TRUE(db_->Get(table.value(), "abort-key1000", &value).IsNotFound());
}

TEST_F(CompliantDbTest, RegretIntervalForcesTuplesToWorm) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  PutCommitted(table.value(), "k", "v");
  uint64_t before = db_->compliance_logger()->stats().new_tuples;
  // Two regret intervals elapse: marked pages flushed -> NEW_TUPLE on L.
  ASSERT_TRUE(db_->AdvanceClock(5 * kMinute + 1).ok());
  ASSERT_TRUE(db_->AdvanceClock(5 * kMinute + 1).ok());
  EXPECT_GT(db_->compliance_logger()->stats().new_tuples, before);
}

TEST_F(CompliantDbTest, HeartbeatsAndWitnessesDuringIdle) {
  OpenDb(MakeOptions());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db_->AdvanceClock(5 * kMinute + 1).ok());
  }
  EXPECT_GE(db_->compliance_logger()->stats().heartbeats, 4u);
  EXPECT_GE(db_->compliance_logger()->stats().witness_files, 4u);
  ExpectAuditOk();
}

TEST_F(CompliantDbTest, TemporalReadsSeeHistory) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  PutCommitted(table.value(), "k", "v1");
  uint64_t t1 = db_->txns()->last_commit_time();
  clock_.AdvanceMicros(kMinute);
  PutCommitted(table.value(), "k", "v2");
  uint64_t t2 = db_->txns()->last_commit_time();
  clock_.AdvanceMicros(kMinute);
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db_->Delete(txn.value(), table.value(), "k").ok());
  ASSERT_TRUE(db_->Commit(txn.value()).ok());
  uint64_t t3 = db_->txns()->last_commit_time();

  std::string value;
  ASSERT_TRUE(db_->GetAsOf(table.value(), "k", t1, &value).ok());
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(db_->GetAsOf(table.value(), "k", t2, &value).ok());
  EXPECT_EQ(value, "v2");
  EXPECT_TRUE(db_->GetAsOf(table.value(), "k", t3, &value).IsNotFound());
  EXPECT_TRUE(db_->GetAsOf(table.value(), "k", t1 - 1, &value).IsNotFound());

  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(table.value(), "k", &history).ok());
  ASSERT_EQ(history.size(), 3u);
  EXPECT_TRUE(history[2].eol);
}

TEST_F(CompliantDbTest, CleanReopenPreservesData) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  uint32_t tid = table.value();
  PutCommitted(tid, "persist", "me");
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();

  OpenDb(MakeOptions());
  EXPECT_FALSE(db_->recovered_from_crash());
  auto t2 = db_->GetTable("t");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2.value(), tid);
  std::string value;
  ASSERT_TRUE(db_->Get(tid, "persist", &value).ok());
  EXPECT_EQ(value, "me");
  ExpectAuditOk();
}

TEST_F(CompliantDbTest, CrashRecoversCommittedWork) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  uint32_t tid = table.value();
  for (int i = 0; i < 40; ++i) {
    PutCommitted(tid, "k" + std::to_string(i), "v" + std::to_string(i));
  }
  // Crash: no Close(), dirty pages and the logger state are lost.
  db_.reset();

  OpenDb(MakeOptions());
  EXPECT_TRUE(db_->recovered_from_crash());
  std::string value;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(db_->Get(tid, "k" + std::to_string(i), &value).ok()) << i;
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
  ExpectAuditOk();
}

TEST_F(CompliantDbTest, CrashMidTransactionAbortsLoser) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  uint32_t tid = table.value();
  PutCommitted(tid, "committed", "yes");

  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db_->Put(txn.value(), tid, "in-flight", "no").ok());
  // Force the uncommitted tuple to disk (steal), then crash.
  ASSERT_TRUE(db_->cache()->FlushAll().ok());
  db_.reset();

  OpenDb(MakeOptions());
  EXPECT_TRUE(db_->recovered_from_crash());
  EXPECT_GE(db_->recovery_report().losers_undone, 1u);
  std::string value;
  ASSERT_TRUE(db_->Get(tid, "committed", &value).ok());
  EXPECT_TRUE(db_->Get(tid, "in-flight", &value).IsNotFound());
  ExpectAuditOk();
}

TEST_F(CompliantDbTest, CrashAcrossManyTxnsThenAudit) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  uint32_t tid = table.value();
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 25; ++i) {
      PutCommitted(tid, "r" + std::to_string(round) + "k" + std::to_string(i),
                   "v");
    }
    db_.reset();
    OpenDb(MakeOptions());
  }
  ExpectAuditOk();
}

TEST_F(CompliantDbTest, BaselineDisabledComplianceStillWorks) {
  DbOptions opts = MakeOptions();
  opts.compliance.enabled = false;
  OpenDb(opts);
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  PutCommitted(table.value(), "k", "v");
  std::string value;
  ASSERT_TRUE(db_->Get(table.value(), "k", &value).ok());
  auto report = db_->Audit();
  EXPECT_FALSE(report.ok());  // NotSupported
}

TEST_F(CompliantDbTest, AuditRequiresQuiescence) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db_->Put(txn.value(), table.value(), "k", "v").ok());
  auto report = db_->Audit();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsBusy());
  ASSERT_TRUE(db_->Commit(txn.value()).ok());
  ExpectAuditOk();
}

TEST_F(CompliantDbTest, HashOnReadAuditVerifiesReads) {
  DbOptions opts = MakeOptions();
  opts.compliance.hash_on_read = true;
  opts.cache_pages = 8;  // force evictions and re-reads
  OpenDb(opts);
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 300; ++i) {
    PutCommitted(table.value(), "key" + std::to_string(i % 100),
                 "v" + std::to_string(i));
  }
  // Cold cache: subsequent reads must hit disk, each logging a READ hash.
  ASSERT_TRUE(db_->FlushAll().ok());
  ASSERT_TRUE(db_->cache()->DropAll().ok());
  std::string value;
  for (int i = 0; i < 100; i += 7) {
    ASSERT_TRUE(db_->Get(table.value(), "key" + std::to_string(i), &value).ok());
  }
  EXPECT_GT(db_->compliance_logger()->stats().read_hashes, 0u);
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ok())
      << "first: " << report.value().problems[0];
  EXPECT_GT(report.value().read_hashes_checked, 0u);
}

TEST_F(CompliantDbTest, ManyTablesAndScan) {
  OpenDb(MakeOptions());
  auto t1 = db_->CreateTable("alpha");
  auto t2 = db_->CreateTable("beta");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  for (int i = 0; i < 10; ++i) {
    PutCommitted(t1.value(), "a" + std::to_string(i), "1");
    PutCommitted(t2.value(), "b" + std::to_string(i), "2");
  }
  size_t count = 0;
  ASSERT_TRUE(db_->ScanCurrent(t1.value(), "", "",
                               [&](const TupleData& t) {
                                 EXPECT_EQ(t.value, "1");
                                 ++count;
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_EQ(count, 10u);
  EXPECT_EQ(db_->ListTables().size(), 4u);  // alpha, beta, __expiry, __holds
  ExpectAuditOk();
}

TEST_F(CompliantDbTest, BoundedBaselineCacheStaysAuditClean) {
  // A tiny baseline cap forces the logger to evict and re-derive page
  // baselines from disk; diffs and audits must be unaffected.
  DbOptions opts = MakeOptions();
  opts.cache_pages = 16;
  opts.compliance.max_cached_pages = 4;
  OpenDb(opts);
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 400; ++i) {
    PutCommitted(table.value(), "key" + std::to_string(i * 7919 % 10000),
                 std::string(50, 'x'));
  }
  ASSERT_TRUE(db_->FlushAll().ok());
  ExpectAuditOk();

  // And across a crash (unsynced replay baselines must stay pinned).
  for (int i = 0; i < 100; ++i) {
    PutCommitted(table.value(), "post" + std::to_string(i), "y");
  }
  db_.reset();
  DbOptions reopened = MakeOptions();
  reopened.cache_pages = 16;
  reopened.compliance.max_cached_pages = 4;
  OpenDb(reopened);
  EXPECT_TRUE(db_->recovered_from_crash());
  for (int i = 0; i < 100; ++i) {
    PutCommitted(table.value(), "after" + std::to_string(i), "z");
  }
  ASSERT_TRUE(db_->FlushAll().ok());
  ExpectAuditOk();
}

TEST_F(CompliantDbTest, VerifyOnOpenRefusesCorruptDatabase) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 40; ++i) {
    PutCommitted(table.value(), "k" + std::to_string(i), "v");
  }
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();

  // Corrupt a leaf record in place.
  {
    auto disk = DiskManager::Open(dir_ + "/data.db");
    ASSERT_TRUE(disk.ok());
    std::unique_ptr<DiskManager> d(disk.value());
    for (PageId pgno = 1; pgno < d->PageCount(); ++pgno) {
      Page page;
      ASSERT_TRUE(d->ReadPage(pgno, &page).ok());
      if (page.IsFormatted() && page.type() == PageType::kBtreeLeaf &&
          page.tree_id() == table.value() && page.slot_count() > 1) {
        // Swap two records: ordering violation.
        std::string r0(page.RecordAt(0).data(), page.RecordAt(0).size());
        std::string r1(page.RecordAt(1).data(), page.RecordAt(1).size());
        ASSERT_TRUE(page.EraseRecord(0).ok());
        ASSERT_TRUE(page.InsertRecord(0, r1).ok());
        ASSERT_TRUE(page.EraseRecord(1).ok());
        ASSERT_TRUE(page.InsertRecord(1, r0).ok());
        ASSERT_TRUE(d->WritePage(pgno, page).ok());
        break;
      }
    }
  }

  DbOptions strict = MakeOptions();
  strict.verify_on_open = true;
  auto refused = CompliantDB::Open(strict);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsTampered())
      << refused.status().ToString();

  // A permissive open still works (and its audit flags the damage).
  OpenDb(MakeOptions());
  ExpectAuditFails("verify-on-open corruption");
}

TEST_F(CompliantDbTest, VerifyOnOpenPassesCleanDatabase) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("t");
  ASSERT_TRUE(table.ok());
  PutCommitted(table.value(), "k", "v");
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();

  DbOptions strict = MakeOptions();
  strict.verify_on_open = true;
  OpenDb(strict);
  std::string value;
  ASSERT_TRUE(db_->Get(table.value(), "k", &value).ok());
  EXPECT_EQ(value, "v");
}

}  // namespace
}  // namespace complydb
