#include "obs/telemetry_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "db/compliant_db.h"
#include "obs/metrics.h"
#include "prom_parser.h"
#include "tpcc/workload.h"

namespace complydb {
namespace obs {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

/// Minimal blocking HTTP GET against 127.0.0.1:`port`. Returns the whole
/// response (status line + headers + body) or "" on connect failure.
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  const char* p = req.data();
  size_t left = req.size();
  while (left > 0) {
    ssize_t n = ::send(fd, p, left, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

int StatusCode(const std::string& response) {
  // "HTTP/1.0 200 OK\r\n..."
  size_t sp = response.find(' ');
  if (sp == std::string::npos) return -1;
  return std::atoi(response.c_str() + sp + 1);
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(TelemetryServerTest, ServesRoutesOnEphemeralPort) {
  auto start = TelemetryServer::Start(0);
  ASSERT_TRUE(start.ok()) << start.status().ToString();
  std::unique_ptr<TelemetryServer> server = start.TakeValue();
  ASSERT_GT(server->port(), 0);

  std::string health = HttpGet(server->port(), "/healthz");
  EXPECT_EQ(StatusCode(health), 200);
  EXPECT_EQ(Body(health), "ok\n");

  MetricsRegistry::Global().GetCounter("telemetry_test.pings")->Inc(5);
  std::string metrics = HttpGet(server->port(), "/metrics");
  EXPECT_EQ(StatusCode(metrics), 200);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  testutil::PromParser parser;
  EXPECT_TRUE(parser.Parse(Body(metrics))) << parser.error();
  if (kMetricsCompiledIn) {
    EXPECT_GE(parser.Value("complydb_telemetry_test_pings"), 5.0);
  }
  EXPECT_NE(Body(metrics).find("complydb_build_info"), std::string::npos);

  std::string json = HttpGet(server->port(), "/metrics.json");
  EXPECT_EQ(StatusCode(json), 200);
  EXPECT_NE(Body(json).find("\"counters\""), std::string::npos);

  std::string trace = HttpGet(server->port(), "/trace");
  EXPECT_EQ(StatusCode(trace), 200);
  EXPECT_NE(Body(trace).find("\"traceEvents\""), std::string::npos);

  EXPECT_EQ(StatusCode(HttpGet(server->port(), "/nope")), 404);
  EXPECT_GE(server->requests_served(), 5u);
  server->Stop();
}

TEST(TelemetryServerTest, PortCollisionFailsCleanly) {
  auto first = TelemetryServer::Start(0);
  ASSERT_TRUE(first.ok());
  auto second = TelemetryServer::Start(first.value()->port());
  EXPECT_FALSE(second.ok());
}

TEST(TelemetryServerTest, StopIsIdempotent) {
  auto start = TelemetryServer::Start(0);
  ASSERT_TRUE(start.ok());
  auto server = start.TakeValue();
  server->Stop();
  server->Stop();
  // Connections after Stop are refused, not hung.
  EXPECT_EQ(HttpGet(server->port(), "/healthz"), "");
}

// The acceptance check: /metrics stays parseable strict Prometheus text
// while a TPC-C load is committing underneath it.
TEST(TelemetryServerTest, MetricsParseableDuringTpccLoad) {
  std::string dir = ::testing::TempDir() + "/telemetry_tpcc";
  std::filesystem::remove_all(dir);

  SimulatedClock clock;
  DbOptions opts;
  opts.dir = dir;
  opts.cache_pages = 256;
  opts.clock = &clock;
  opts.compliance.enabled = true;
  opts.compliance.regret_interval_micros = 5 * kMinute;
  opts.telemetry_port = 0;  // opt-in, ephemeral

  // Clear the env override so the test controls the port choice.
  ::unsetenv("COMPLYDB_TELEMETRY_PORT");
  auto open = CompliantDB::Open(opts);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  std::unique_ptr<CompliantDB> db(open.value());
  // Port 0 means "disabled" for the DB-level knob; start one explicitly
  // beside the DB the way the bench smoke does.
  auto start = TelemetryServer::Start(0);
  ASSERT_TRUE(start.ok()) << start.status().ToString();
  auto server = start.TakeValue();

  tpcc::Scale scale;
  scale.warehouses = 1;
  scale.districts_per_warehouse = 2;
  scale.customers_per_district = 10;
  scale.items = 50;
  scale.initial_orders_per_district = 10;
  tpcc::Workload workload(db.get(), scale, 7);
  ASSERT_TRUE(workload.CreateOrAttachTables().ok());
  ASSERT_TRUE(workload.Load().ok());

  std::atomic<bool> stop{false};
  std::atomic<bool> scrape_failed{false};
  std::string scrape_error;
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::string response = HttpGet(server->port(), "/metrics");
      if (StatusCode(response) != 200) {
        scrape_error = "non-200 from /metrics";
        scrape_failed.store(true);
        return;
      }
      testutil::PromParser parser;
      if (!parser.Parse(Body(response))) {
        scrape_error = parser.error();
        scrape_failed.store(true);
        return;
      }
    }
  });

  tpcc::MixStats stats;
  for (int i = 0; i < 60 && !scrape_failed.load(); ++i) {
    ASSERT_TRUE(workload.RunMix(1, &stats).ok());
    clock.AdvanceMicros(kMinute);
  }
  stop.store(true);
  scraper.join();
  EXPECT_FALSE(scrape_failed.load()) << scrape_error;

  // The load actually showed up in what the endpoint serves.
  std::string response = HttpGet(server->port(), "/metrics");
  ASSERT_EQ(StatusCode(response), 200);
  testutil::PromParser parser;
  ASSERT_TRUE(parser.Parse(Body(response))) << parser.error();
  if (kMetricsCompiledIn) {
    EXPECT_GT(parser.Value("complydb_txn_commits"), 0.0);
  }

  server->Stop();
  ASSERT_TRUE(db->Close().ok());
}

// The DB-level knob: a non-zero telemetry_port starts a server inside
// CompliantDB::Open and tears it down on Close.
TEST(TelemetryServerTest, DbOptionStartsServer) {
  std::string dir = ::testing::TempDir() + "/telemetry_dbopt";
  std::filesystem::remove_all(dir);
  ::unsetenv("COMPLYDB_TELEMETRY_PORT");

  // Grab an ephemeral port, free it, and hand it to the DB. (Racy in
  // principle; fine for a loopback test.)
  uint16_t port;
  {
    auto probe = TelemetryServer::Start(0);
    ASSERT_TRUE(probe.ok());
    port = probe.value()->port();
  }

  DbOptions opts;
  opts.dir = dir;
  opts.cache_pages = 64;
  opts.telemetry_port = port;
  auto open = CompliantDB::Open(opts);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  std::unique_ptr<CompliantDB> db(open.value());
  ASSERT_NE(db->telemetry(), nullptr);
  EXPECT_EQ(db->telemetry()->port(), port);
  EXPECT_EQ(StatusCode(HttpGet(port, "/healthz")), 200);
  ASSERT_TRUE(db->Close().ok());
}

}  // namespace
}  // namespace obs
}  // namespace complydb
