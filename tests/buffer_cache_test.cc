#include "storage/buffer_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/coding.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/io_hook.h"

namespace complydb {
namespace {

class RecordingHook : public IoHook {
 public:
  Status OnPageRead(PageId pgno, const Page&) override {
    reads.push_back(pgno);
    return Status::OK();
  }
  Status OnPageWrite(PageId pgno, const Page&) override {
    writes.push_back(pgno);
    if (fail_writes) return Status::IOError("injected WORM outage");
    return Status::OK();
  }
  std::vector<PageId> reads;
  std::vector<PageId> writes;
  bool fail_writes = false;
};

class BufferCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/cache_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".db";
    std::filesystem::remove(path_);
    auto r = DiskManager::Open(path_);
    ASSERT_TRUE(r.ok());
    disk_.reset(r.value());
  }

  PageId Alloc(BufferCache* cache, uint32_t stamp) {
    Page* page = nullptr;
    auto r = cache->NewPage(&page);
    EXPECT_TRUE(r.ok());
    page->Format(r.value(), PageType::kBtreeLeaf, 0, 0);
    EncodeFixed32(page->data() + Page::kHeaderSize, stamp);
    cache->Unpin(r.value(), /*dirty=*/true);
    return r.value();
  }

  uint32_t ReadStamp(BufferCache* cache, PageId pgno) {
    Page* page = nullptr;
    EXPECT_TRUE(cache->FetchPage(pgno, &page).ok());
    uint32_t v = DecodeFixed32(page->data() + Page::kHeaderSize);
    cache->Unpin(pgno, false);
    return v;
  }

  std::string path_;
  std::unique_ptr<DiskManager> disk_;
};

TEST_F(BufferCacheTest, NewPageRoundTrip) {
  BufferCache cache(disk_.get(), 4);
  PageId p = Alloc(&cache, 0xABCD);
  EXPECT_EQ(ReadStamp(&cache, p), 0xABCDu);
}

TEST_F(BufferCacheTest, EvictionWritesDirtyAndReloads) {
  BufferCache cache(disk_.get(), 2);
  PageId a = Alloc(&cache, 1);
  PageId b = Alloc(&cache, 2);
  PageId c = Alloc(&cache, 3);  // evicts the LRU (a)
  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_EQ(ReadStamp(&cache, a), 1u);
  EXPECT_EQ(ReadStamp(&cache, b), 2u);
  EXPECT_EQ(ReadStamp(&cache, c), 3u);
}

TEST_F(BufferCacheTest, EvictsInLeastRecentlyUsedOrder) {
  RecordingHook hook;
  BufferCache cache(disk_.get(), 3);
  cache.AddHook(&hook);
  PageId a = Alloc(&cache, 1);
  PageId b = Alloc(&cache, 2);
  PageId c = Alloc(&cache, 3);
  // Re-touch a: recency order is now b < c < a.
  EXPECT_EQ(ReadStamp(&cache, a), 1u);
  hook.writes.clear();
  // Every frame is dirty, so the first write fault hits a clean-frame
  // drought: the shard flushes wholesale in page order (one deterministic
  // batch), then recycles clean frames in recency order with no further
  // write-out.
  Alloc(&cache, 4);  // shard flush {a,b,c}, then evicts b
  Alloc(&cache, 5);  // evicts c
  Alloc(&cache, 6);  // evicts a
  ASSERT_EQ(hook.writes.size(), 3u);
  EXPECT_EQ(hook.writes[0], a);
  EXPECT_EQ(hook.writes[1], b);
  EXPECT_EQ(hook.writes[2], c);
  EXPECT_GE(cache.evictions(), 3u);
  // The flushed-then-evicted pages survived with their contents.
  EXPECT_EQ(ReadStamp(&cache, b), 2u);
  EXPECT_EQ(ReadStamp(&cache, c), 3u);
}

TEST_F(BufferCacheTest, HitsAndMisses) {
  BufferCache cache(disk_.get(), 4);
  PageId a = Alloc(&cache, 1);
  ASSERT_TRUE(cache.FlushAll().ok());
  ASSERT_TRUE(cache.DropAll().ok());
  EXPECT_EQ(ReadStamp(&cache, a), 1u);  // miss
  uint64_t misses = cache.misses();
  EXPECT_EQ(ReadStamp(&cache, a), 1u);  // hit
  EXPECT_EQ(cache.misses(), misses);
  EXPECT_GE(cache.hits(), 1u);
}

TEST_F(BufferCacheTest, AllPinnedReportsBusy) {
  BufferCache cache(disk_.get(), 2);
  Page* p1 = nullptr;
  Page* p2 = nullptr;
  auto r1 = cache.NewPage(&p1);
  auto r2 = cache.NewPage(&p2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  Page* p3 = nullptr;
  auto r3 = cache.NewPage(&p3);
  EXPECT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), Status::Code::kBusy);
  cache.Unpin(r1.value(), true);
  cache.Unpin(r2.value(), true);
}

TEST_F(BufferCacheTest, HooksSeeReadsAndWrites) {
  BufferCache cache(disk_.get(), 2);
  RecordingHook hook;
  cache.AddHook(&hook);
  PageId a = Alloc(&cache, 1);
  ASSERT_TRUE(cache.FlushAll().ok());
  ASSERT_EQ(hook.writes.size(), 1u);
  EXPECT_EQ(hook.writes[0], a);
  ASSERT_TRUE(cache.DropAll().ok());
  ReadStamp(&cache, a);
  ASSERT_EQ(hook.reads.size(), 1u);
  EXPECT_EQ(hook.reads[0], a);
}

TEST_F(BufferCacheTest, FailedHookBlocksWrite) {
  // The compliance rule: if L cannot be written, the page write must not
  // happen (transaction processing halts).
  BufferCache cache(disk_.get(), 2);
  RecordingHook hook;
  hook.fail_writes = true;
  cache.AddHook(&hook);
  Alloc(&cache, 7);
  uint64_t disk_writes_before = disk_->writes();
  EXPECT_FALSE(cache.FlushAll().ok());
  EXPECT_EQ(disk_->writes(), disk_writes_before);
}

TEST_F(BufferCacheTest, FlushMarkedAndRemarkTwoCycleProtocol) {
  BufferCache cache(disk_.get(), 8);
  PageId a = Alloc(&cache, 1);
  (void)a;
  // Cycle 1: nothing marked yet -> no writes; dirty pages get marked.
  uint64_t w0 = disk_->writes();
  ASSERT_TRUE(cache.FlushMarkedAndRemark().ok());
  EXPECT_EQ(disk_->writes(), w0);
  // Cycle 2: previously marked dirty pages are written.
  ASSERT_TRUE(cache.FlushMarkedAndRemark().ok());
  EXPECT_GT(disk_->writes(), w0);
  EXPECT_EQ(cache.dirty_count(), 0u);
}

TEST_F(BufferCacheTest, PersistenceAcrossCacheInstances) {
  {
    BufferCache cache(disk_.get(), 4);
    Alloc(&cache, 42);
    ASSERT_TRUE(cache.FlushAll().ok());
  }
  BufferCache cache2(disk_.get(), 4);
  EXPECT_EQ(ReadStamp(&cache2, 0), 42u);
}

TEST_F(BufferCacheTest, FetchOutOfRangeFails) {
  BufferCache cache(disk_.get(), 4);
  Page* page = nullptr;
  EXPECT_FALSE(cache.FetchPage(99, &page).ok());
}

TEST_F(BufferCacheTest, PageGuardUnpinsOnDestruction) {
  BufferCache cache(disk_.get(), 2);
  PageId a = Alloc(&cache, 1);
  {
    Page* page = nullptr;
    ASSERT_TRUE(cache.FetchPage(a, &page).ok());
    PageGuard guard(&cache, a, page);
    guard.MarkDirty();
  }
  // Frame must be evictable now: fill the cache.
  Alloc(&cache, 2);
  Alloc(&cache, 3);
  EXPECT_EQ(ReadStamp(&cache, a), 1u);
}

TEST_F(BufferCacheTest, PageGuardMoveClearsSourceDirtyBit) {
  BufferCache cache(disk_.get(), 4);
  PageId a = Alloc(&cache, 1);
  ASSERT_TRUE(cache.FlushAll().ok());
  EXPECT_EQ(cache.dirty_count(), 0u);

  Page* pa = nullptr;
  ASSERT_TRUE(cache.FetchPage(a, &pa).ok());
  PageGuard source(&cache, a, pa);
  source.MarkDirty();

  // Moving must transfer the dirty bit, not duplicate it: the moved-from
  // guard once kept dirty_ set, so a later reuse re-dirtied whatever pin
  // it next carried.
  PageGuard moved(std::move(source));
  EXPECT_FALSE(source.valid());
  EXPECT_FALSE(source.dirty());
  ASSERT_TRUE(moved.valid());
  EXPECT_TRUE(moved.dirty());
  EXPECT_EQ(moved.pgno(), a);

  moved.Release();
  EXPECT_EQ(cache.dirty_count(), 1u);

  // Reusing the moved-from guard for a clean pin must stay clean.
  ASSERT_TRUE(cache.FlushAll().ok());
  ASSERT_TRUE(cache.FetchPage(a, &pa).ok());
  source = PageGuard(&cache, a, pa);
  source.Release();
  EXPECT_EQ(cache.dirty_count(), 0u);
}

TEST_F(BufferCacheTest, AllPinnedFetchMissReportsBusy) {
  // The NewPage sibling of AllPinnedReportsBusy: a FETCH miss with no
  // evictable frame must surface a clean Busy, not crash or spin.
  BufferCache cache(disk_.get(), 2);
  PageId a = Alloc(&cache, 1);
  PageId b = Alloc(&cache, 2);
  PageId c = Alloc(&cache, 3);
  ASSERT_TRUE(cache.FlushAll().ok());
  ASSERT_TRUE(cache.DropAll().ok());

  Page* pa = nullptr;
  Page* pb = nullptr;
  ASSERT_TRUE(cache.FetchPage(a, &pa).ok());
  ASSERT_TRUE(cache.FetchPage(b, &pb).ok());
  Page* pc = nullptr;
  Status s = cache.FetchPage(c, &pc);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kBusy);

  // Releasing a pin makes the same fetch succeed.
  cache.Unpin(a, false);
  ASSERT_TRUE(cache.FetchPage(c, &pc).ok());
  EXPECT_EQ(DecodeFixed32(pc->data() + Page::kHeaderSize), 3u);
  cache.Unpin(c, false);
  cache.Unpin(b, false);
}

TEST_F(BufferCacheTest, ShardCountRoundsDownToPowerOfTwoAndClamps) {
  EXPECT_EQ(BufferCache(disk_.get(), 16).shards(), 1u);     // default
  EXPECT_EQ(BufferCache(disk_.get(), 16, 4).shards(), 4u);
  EXPECT_EQ(BufferCache(disk_.get(), 16, 6).shards(), 4u);  // round down
  EXPECT_EQ(BufferCache(disk_.get(), 4, 64).shards(), 4u);  // clamp to cap
  EXPECT_EQ(BufferCache(disk_.get(), 16, 0).shards(), 1u);  // at least one
}

TEST_F(BufferCacheTest, ShardedCacheRoundTripAndPerShardMetrics) {
  BufferCache cache(disk_.get(), 16, 4);
  std::vector<PageId> pages;
  for (uint32_t i = 0; i < 12; ++i) pages.push_back(Alloc(&cache, 100 + i));
  ASSERT_TRUE(cache.FlushAll().ok());
  ASSERT_TRUE(cache.DropAll().ok());

  uint64_t misses_before = cache.misses();
  for (uint32_t i = 0; i < 12; ++i) {
    EXPECT_EQ(ReadStamp(&cache, pages[i]), 100 + i);  // misses
  }
  uint64_t hits_before = cache.hits();
  for (uint32_t i = 0; i < 12; ++i) {
    EXPECT_EQ(ReadStamp(&cache, pages[i]), 100 + i);  // hits
  }
  // The instance aggregates match the sum of the per-shard registry
  // counters the exporters publish.
  EXPECT_GE(cache.misses() - misses_before, 12u);
  EXPECT_GE(cache.hits() - hits_before, 12u);
  auto& reg = obs::MetricsRegistry::Global();
  uint64_t shard_hits = 0;
  for (int s = 0; s < 4; ++s) {
    shard_hits += reg.GetCounter("storage.cache.shard" + std::to_string(s) +
                                 ".hits")->Value();
  }
  EXPECT_GE(shard_hits, cache.hits());
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("storage.cache.shard0.hits"), std::string::npos);
  EXPECT_NE(json.find("storage.cache.latch_wait_us"), std::string::npos);
}

TEST_F(BufferCacheTest, ConcurrentFetchUnpinEvictStress) {
  // Readers and a writer hammer a cache smaller than the page set, forcing
  // concurrent miss/evict/latch traffic across shards. Each page carries
  // the same stamp in two words; the writer bumps both under an exclusive
  // latch, so any reader observing a mismatch under its shared latch saw a
  // torn write. Run under TSan in CI.
  BufferCache cache(disk_.get(), 8, 4);
  constexpr uint32_t kPages = 32;
  std::vector<PageId> pages;
  for (uint32_t i = 0; i < kPages; ++i) {
    Page* page = nullptr;
    auto r = cache.NewPage(&page);
    ASSERT_TRUE(r.ok());
    page->Format(r.value(), PageType::kBtreeLeaf, 0, 0);
    EncodeFixed32(page->data() + Page::kHeaderSize, 0);
    EncodeFixed32(page->data() + Page::kHeaderSize + 4, 0);
    cache.Unpin(r.value(), /*dirty=*/true);
    pages.push_back(r.value());
  }
  ASSERT_TRUE(cache.FlushAll().ok());

  const char* env = std::getenv("COMPLYDB_READ_THREADS");
  const int kReaders = env != nullptr ? std::max(1, std::atoi(env)) : 2;
  constexpr int kIters = 2000;
  std::atomic<bool> torn{false};
  std::atomic<uint64_t> reads_ok{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      uint64_t state = 0x9E3779B97F4A7C15ull * (t + 1);
      for (int i = 0; i < kIters; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        PageId pgno = pages[(state >> 33) % kPages];
        Page* page = nullptr;
        Status s = cache.FetchPage(pgno, &page, PageLatchMode::kShared);
        if (!s.ok()) continue;  // all frames pinned in this shard: retry
        uint32_t w0 = DecodeFixed32(page->data() + Page::kHeaderSize);
        uint32_t w1 = DecodeFixed32(page->data() + Page::kHeaderSize + 4);
        if (w0 != w1) torn.store(true, std::memory_order_relaxed);
        cache.Unpin(pgno, false, PageLatchMode::kShared);
        reads_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  uint64_t writes_ok = 0;
  for (int i = 0; i < kIters; ++i) {
    PageId pgno = pages[static_cast<uint32_t>(i) % kPages];
    Page* page = nullptr;
    Status s = cache.FetchPage(pgno, &page, PageLatchMode::kExclusive);
    if (!s.ok()) continue;
    uint32_t v = DecodeFixed32(page->data() + Page::kHeaderSize) + 1;
    EncodeFixed32(page->data() + Page::kHeaderSize, v);
    EncodeFixed32(page->data() + Page::kHeaderSize + 4, v);
    cache.Unpin(pgno, true, PageLatchMode::kExclusive);
    ++writes_ok;
  }
  for (auto& th : readers) th.join();

  EXPECT_FALSE(torn.load());
  EXPECT_GT(reads_ok.load(), 0u);
  EXPECT_GT(writes_ok, 0u);
  // The cache is still coherent: every page readable, words consistent.
  for (PageId pgno : pages) {
    Page* page = nullptr;
    ASSERT_TRUE(cache.FetchPage(pgno, &page, PageLatchMode::kShared).ok());
    EXPECT_EQ(DecodeFixed32(page->data() + Page::kHeaderSize),
              DecodeFixed32(page->data() + Page::kHeaderSize + 4));
    cache.Unpin(pgno, false, PageLatchMode::kShared);
  }
  ASSERT_TRUE(cache.FlushAll().ok());
  EXPECT_EQ(cache.dirty_count(), 0u);
}

}  // namespace
}  // namespace complydb
