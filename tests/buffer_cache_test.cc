#include "storage/buffer_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "common/coding.h"
#include "storage/disk_manager.h"
#include "storage/io_hook.h"

namespace complydb {
namespace {

class RecordingHook : public IoHook {
 public:
  Status OnPageRead(PageId pgno, const Page&) override {
    reads.push_back(pgno);
    return Status::OK();
  }
  Status OnPageWrite(PageId pgno, const Page&) override {
    writes.push_back(pgno);
    if (fail_writes) return Status::IOError("injected WORM outage");
    return Status::OK();
  }
  std::vector<PageId> reads;
  std::vector<PageId> writes;
  bool fail_writes = false;
};

class BufferCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/cache_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".db";
    std::filesystem::remove(path_);
    auto r = DiskManager::Open(path_);
    ASSERT_TRUE(r.ok());
    disk_.reset(r.value());
  }

  PageId Alloc(BufferCache* cache, uint32_t stamp) {
    Page* page = nullptr;
    auto r = cache->NewPage(&page);
    EXPECT_TRUE(r.ok());
    page->Format(r.value(), PageType::kBtreeLeaf, 0, 0);
    EncodeFixed32(page->data() + Page::kHeaderSize, stamp);
    cache->Unpin(r.value(), /*dirty=*/true);
    return r.value();
  }

  uint32_t ReadStamp(BufferCache* cache, PageId pgno) {
    Page* page = nullptr;
    EXPECT_TRUE(cache->FetchPage(pgno, &page).ok());
    uint32_t v = DecodeFixed32(page->data() + Page::kHeaderSize);
    cache->Unpin(pgno, false);
    return v;
  }

  std::string path_;
  std::unique_ptr<DiskManager> disk_;
};

TEST_F(BufferCacheTest, NewPageRoundTrip) {
  BufferCache cache(disk_.get(), 4);
  PageId p = Alloc(&cache, 0xABCD);
  EXPECT_EQ(ReadStamp(&cache, p), 0xABCDu);
}

TEST_F(BufferCacheTest, EvictionWritesDirtyAndReloads) {
  BufferCache cache(disk_.get(), 2);
  PageId a = Alloc(&cache, 1);
  PageId b = Alloc(&cache, 2);
  PageId c = Alloc(&cache, 3);  // evicts the LRU (a)
  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_EQ(ReadStamp(&cache, a), 1u);
  EXPECT_EQ(ReadStamp(&cache, b), 2u);
  EXPECT_EQ(ReadStamp(&cache, c), 3u);
}

TEST_F(BufferCacheTest, EvictsInLeastRecentlyUsedOrder) {
  RecordingHook hook;
  BufferCache cache(disk_.get(), 3);
  cache.AddHook(&hook);
  PageId a = Alloc(&cache, 1);
  PageId b = Alloc(&cache, 2);
  PageId c = Alloc(&cache, 3);
  // Re-touch a: recency order is now b < c < a.
  EXPECT_EQ(ReadStamp(&cache, a), 1u);
  hook.writes.clear();
  Alloc(&cache, 4);  // evicts b
  Alloc(&cache, 5);  // evicts c
  Alloc(&cache, 6);  // evicts a
  ASSERT_EQ(hook.writes.size(), 3u);
  EXPECT_EQ(hook.writes[0], b);
  EXPECT_EQ(hook.writes[1], c);
  EXPECT_EQ(hook.writes[2], a);
}

TEST_F(BufferCacheTest, HitsAndMisses) {
  BufferCache cache(disk_.get(), 4);
  PageId a = Alloc(&cache, 1);
  ASSERT_TRUE(cache.FlushAll().ok());
  ASSERT_TRUE(cache.DropAll().ok());
  EXPECT_EQ(ReadStamp(&cache, a), 1u);  // miss
  uint64_t misses = cache.misses();
  EXPECT_EQ(ReadStamp(&cache, a), 1u);  // hit
  EXPECT_EQ(cache.misses(), misses);
  EXPECT_GE(cache.hits(), 1u);
}

TEST_F(BufferCacheTest, AllPinnedReportsBusy) {
  BufferCache cache(disk_.get(), 2);
  Page* p1 = nullptr;
  Page* p2 = nullptr;
  auto r1 = cache.NewPage(&p1);
  auto r2 = cache.NewPage(&p2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  Page* p3 = nullptr;
  auto r3 = cache.NewPage(&p3);
  EXPECT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), Status::Code::kBusy);
  cache.Unpin(r1.value(), true);
  cache.Unpin(r2.value(), true);
}

TEST_F(BufferCacheTest, HooksSeeReadsAndWrites) {
  BufferCache cache(disk_.get(), 2);
  RecordingHook hook;
  cache.AddHook(&hook);
  PageId a = Alloc(&cache, 1);
  ASSERT_TRUE(cache.FlushAll().ok());
  ASSERT_EQ(hook.writes.size(), 1u);
  EXPECT_EQ(hook.writes[0], a);
  ASSERT_TRUE(cache.DropAll().ok());
  ReadStamp(&cache, a);
  ASSERT_EQ(hook.reads.size(), 1u);
  EXPECT_EQ(hook.reads[0], a);
}

TEST_F(BufferCacheTest, FailedHookBlocksWrite) {
  // The compliance rule: if L cannot be written, the page write must not
  // happen (transaction processing halts).
  BufferCache cache(disk_.get(), 2);
  RecordingHook hook;
  hook.fail_writes = true;
  cache.AddHook(&hook);
  Alloc(&cache, 7);
  uint64_t disk_writes_before = disk_->writes();
  EXPECT_FALSE(cache.FlushAll().ok());
  EXPECT_EQ(disk_->writes(), disk_writes_before);
}

TEST_F(BufferCacheTest, FlushMarkedAndRemarkTwoCycleProtocol) {
  BufferCache cache(disk_.get(), 8);
  PageId a = Alloc(&cache, 1);
  (void)a;
  // Cycle 1: nothing marked yet -> no writes; dirty pages get marked.
  uint64_t w0 = disk_->writes();
  ASSERT_TRUE(cache.FlushMarkedAndRemark().ok());
  EXPECT_EQ(disk_->writes(), w0);
  // Cycle 2: previously marked dirty pages are written.
  ASSERT_TRUE(cache.FlushMarkedAndRemark().ok());
  EXPECT_GT(disk_->writes(), w0);
  EXPECT_EQ(cache.dirty_count(), 0u);
}

TEST_F(BufferCacheTest, PersistenceAcrossCacheInstances) {
  {
    BufferCache cache(disk_.get(), 4);
    Alloc(&cache, 42);
    ASSERT_TRUE(cache.FlushAll().ok());
  }
  BufferCache cache2(disk_.get(), 4);
  EXPECT_EQ(ReadStamp(&cache2, 0), 42u);
}

TEST_F(BufferCacheTest, FetchOutOfRangeFails) {
  BufferCache cache(disk_.get(), 4);
  Page* page = nullptr;
  EXPECT_FALSE(cache.FetchPage(99, &page).ok());
}

TEST_F(BufferCacheTest, PageGuardUnpinsOnDestruction) {
  BufferCache cache(disk_.get(), 2);
  PageId a = Alloc(&cache, 1);
  {
    Page* page = nullptr;
    ASSERT_TRUE(cache.FetchPage(a, &page).ok());
    PageGuard guard(&cache, a, page);
    guard.MarkDirty();
  }
  // Frame must be evictable now: fill the cache.
  Alloc(&cache, 2);
  Alloc(&cache, 3);
  EXPECT_EQ(ReadStamp(&cache, a), 1u);
}

}  // namespace
}  // namespace complydb
