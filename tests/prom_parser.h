#ifndef COMPLYDB_TESTS_PROM_PARSER_H_
#define COMPLYDB_TESTS_PROM_PARSER_H_

// Strict Prometheus text-exposition (version 0.0.4) parser, for tests
// only. It enforces the rules a real scraper relies on, so a regression
// in the exporter fails here rather than in someone's monitoring stack:
//
//  - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names
//    [a-zA-Z_][a-zA-Z0-9_]*
//  - label values are double-quoted with exactly \\, \" and \n escapes
//  - `# TYPE` appears at most once per family, before any of its samples
//  - a `counter` / `gauge` family carries only samples of its own name;
//    counters are non-negative
//  - a `histogram` family carries only `_bucket` / `_sum` / `_count`
//    samples; every bucket series has an `le` label, the le values are
//    strictly increasing, the cumulative counts are non-decreasing, the
//    `+Inf` bucket exists and equals `_count`, and `_sum` is present
//
// Parse() returns false with a one-line error naming the offending line.

#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace complydb {
namespace testutil {

struct PromSample {
  std::string name;                                  // full sample name
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;
  int line = 0;
};

struct PromFamily {
  std::string name;  // base family name (without _bucket/_sum/_count)
  std::string type;  // counter | gauge | histogram | summary | untyped
  std::vector<PromSample> samples;
};

class PromParser {
 public:
  /// Parses and validates `text`. On failure returns false and sets
  /// `error()` to a message with the 1-based line number.
  bool Parse(const std::string& text) {
    families_.clear();
    error_.clear();
    int line_no = 0;
    size_t pos = 0;
    while (pos <= text.size()) {
      size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) {
        if (pos == text.size()) break;
        eol = text.size();
      }
      ++line_no;
      std::string line = text.substr(pos, eol - pos);
      pos = eol + 1;
      if (!ParseLine(line, line_no)) return false;
    }
    for (auto& [name, fam] : families_) {
      if (!ValidateFamily(fam)) return false;
    }
    return true;
  }

  const std::string& error() const { return error_; }
  const std::map<std::string, PromFamily>& families() const {
    return families_;
  }

  /// The parsed value of a plain (label-free) sample, or NaN if absent.
  double Value(const std::string& sample_name) const {
    for (const auto& [name, fam] : families_) {
      for (const auto& s : fam.samples) {
        if (s.name == sample_name && s.labels.empty()) return s.value;
      }
    }
    return std::nan("");
  }

 private:
  static bool IsNameStart(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || (c >= '0' && c <= '9');
  }
  static bool ValidName(const std::string& s) {
    if (s.empty() || !IsNameStart(s[0])) return false;
    for (char c : s) {
      if (!IsNameChar(c)) return false;
    }
    return true;
  }
  static bool ValidLabelName(const std::string& s) {
    // Like a metric name but without ':'.
    if (!ValidName(s)) return false;
    return s.find(':') == std::string::npos;
  }

  bool Fail(int line_no, const std::string& msg) {
    error_ = "line " + std::to_string(line_no) + ": " + msg;
    return false;
  }

  /// Family a sample belongs to: for histogram suffixes, the base name.
  PromFamily* FamilyFor(const std::string& sample_name) {
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      std::string sfx = suffix;
      if (sample_name.size() > sfx.size() &&
          sample_name.compare(sample_name.size() - sfx.size(), sfx.size(),
                              sfx) == 0) {
        std::string base = sample_name.substr(0, sample_name.size() -
                                                     sfx.size());
        auto it = families_.find(base);
        if (it != families_.end() && it->second.type == "histogram") {
          return &it->second;
        }
      }
    }
    auto it = families_.find(sample_name);
    return it != families_.end() ? &it->second : nullptr;
  }

  bool ParseLine(const std::string& line, int line_no) {
    if (line.empty()) return true;
    if (line[0] == '#') return ParseComment(line, line_no);
    return ParseSample(line, line_no);
  }

  bool ParseComment(const std::string& line, int line_no) {
    // "# TYPE <name> <type>" | "# HELP <name> <text>" | free comment.
    if (line.rfind("# TYPE ", 0) == 0) {
      std::string rest = line.substr(7);
      size_t sp = rest.find(' ');
      if (sp == std::string::npos) return Fail(line_no, "malformed TYPE");
      std::string name = rest.substr(0, sp);
      std::string type = rest.substr(sp + 1);
      if (!ValidName(name)) return Fail(line_no, "bad name in TYPE: " + name);
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "summary" && type != "untyped") {
        return Fail(line_no, "unknown type: " + type);
      }
      auto [it, inserted] = families_.emplace(name, PromFamily{name, type, {}});
      if (!inserted) {
        return Fail(line_no, "duplicate or late TYPE for " + name);
      }
      return true;
    }
    return true;  // HELP and free-form comments
  }

  bool ParseSample(const std::string& line, int line_no) {
    PromSample sample;
    sample.line = line_no;
    size_t i = 0;
    while (i < line.size() && IsNameChar(line[i])) ++i;
    sample.name = line.substr(0, i);
    if (!ValidName(sample.name)) {
      return Fail(line_no, "bad metric name");
    }
    if (i < line.size() && line[i] == '{') {
      ++i;
      if (!ParseLabels(line, &i, &sample, line_no)) return false;
    }
    if (i >= line.size() || line[i] != ' ') {
      return Fail(line_no, "expected space before value");
    }
    ++i;
    std::string value_str = line.substr(i);
    // Optional timestamp after the value.
    size_t sp = value_str.find(' ');
    std::string ts;
    if (sp != std::string::npos) {
      ts = value_str.substr(sp + 1);
      value_str = value_str.substr(0, sp);
    }
    char* end = nullptr;
    sample.value = std::strtod(value_str.c_str(), &end);
    if (end == value_str.c_str() || *end != '\0') {
      return Fail(line_no, "bad sample value: " + value_str);
    }
    if (!ts.empty()) {
      (void)std::strtoll(ts.c_str(), &end, 10);
      if (*end != '\0') return Fail(line_no, "bad timestamp: " + ts);
    }

    PromFamily* fam = FamilyFor(sample.name);
    if (fam == nullptr) {
      return Fail(line_no, "sample before TYPE: " + sample.name);
    }
    if (fam->type == "counter" || fam->type == "gauge") {
      if (sample.name != fam->name) {
        return Fail(line_no, "sample name mismatch for " + fam->name);
      }
      if (fam->type == "counter" && sample.value < 0) {
        return Fail(line_no, "negative counter " + sample.name);
      }
    }
    fam->samples.push_back(std::move(sample));
    return true;
  }

  bool ParseLabels(const std::string& line, size_t* i, PromSample* sample,
                   int line_no) {
    while (*i < line.size() && line[*i] != '}') {
      size_t start = *i;
      while (*i < line.size() && IsNameChar(line[*i])) ++*i;
      std::string lname = line.substr(start, *i - start);
      if (!ValidLabelName(lname)) {
        return Fail(line_no, "bad label name: " + lname);
      }
      if (*i >= line.size() || line[*i] != '=') {
        return Fail(line_no, "expected = after label " + lname);
      }
      ++*i;
      if (*i >= line.size() || line[*i] != '"') {
        return Fail(line_no, "label value must be quoted");
      }
      ++*i;
      std::string lvalue;
      while (*i < line.size() && line[*i] != '"') {
        char c = line[*i];
        if (c == '\\') {
          ++*i;
          if (*i >= line.size()) return Fail(line_no, "dangling escape");
          char e = line[*i];
          if (e == '\\') {
            lvalue += '\\';
          } else if (e == '"') {
            lvalue += '"';
          } else if (e == 'n') {
            lvalue += '\n';
          } else {
            return Fail(line_no, std::string("bad escape \\") + e);
          }
        } else if (c == '\n') {
          return Fail(line_no, "raw newline in label value");
        } else {
          lvalue += c;
        }
        ++*i;
      }
      if (*i >= line.size()) return Fail(line_no, "unterminated label value");
      ++*i;  // closing quote
      sample->labels.emplace_back(lname, lvalue);
      if (*i < line.size() && line[*i] == ',') ++*i;
    }
    if (*i >= line.size()) return Fail(line_no, "unterminated label set");
    ++*i;  // closing brace
    return true;
  }

  bool ValidateFamily(PromFamily& fam) {
    if (fam.type != "histogram") return true;
    // Group bucket samples by their non-le labels; here the exporter
    // emits a single unlabeled series per family, but validate generally.
    double count = std::nan("");
    bool has_sum = false;
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    bool has_inf = false;
    for (const auto& s : fam.samples) {
      if (s.name == fam.name + "_sum") {
        has_sum = true;
      } else if (s.name == fam.name + "_count") {
        count = s.value;
      } else if (s.name == fam.name + "_bucket") {
        const std::string* le = nullptr;
        for (const auto& [k, v] : s.labels) {
          if (k == "le") le = &v;
        }
        if (le == nullptr) {
          error_ = fam.name + "_bucket missing le label (line " +
                   std::to_string(s.line) + ")";
          return false;
        }
        double bound;
        if (*le == "+Inf") {
          bound = std::numeric_limits<double>::infinity();
          has_inf = true;
        } else {
          char* end = nullptr;
          bound = std::strtod(le->c_str(), &end);
          if (end == le->c_str() || *end != '\0') {
            error_ = fam.name + ": bad le value " + *le;
            return false;
          }
        }
        buckets.emplace_back(bound, s.value);
      } else {
        error_ = fam.name + ": stray histogram sample " + s.name;
        return false;
      }
    }
    for (size_t i = 1; i < buckets.size(); ++i) {
      if (buckets[i].first <= buckets[i - 1].first) {
        error_ = fam.name + ": le bounds not increasing";
        return false;
      }
      if (buckets[i].second < buckets[i - 1].second) {
        error_ = fam.name + ": bucket counts not cumulative";
        return false;
      }
    }
    if (!buckets.empty() || !std::isnan(count)) {
      if (!has_inf) {
        error_ = fam.name + ": missing +Inf bucket";
        return false;
      }
      if (std::isnan(count)) {
        error_ = fam.name + ": missing _count";
        return false;
      }
      if (!has_sum) {
        error_ = fam.name + ": missing _sum";
        return false;
      }
      if (buckets.back().second != count) {
        error_ = fam.name + ": +Inf bucket != _count";
        return false;
      }
    }
    return true;
  }

  std::map<std::string, PromFamily> families_;
  std::string error_;
};

}  // namespace testutil
}  // namespace complydb

#endif  // COMPLYDB_TESTS_PROM_PARSER_H_
