#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace complydb {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  // Destructor drains the queue before joining.
  {
    ThreadPool inner(2);
    for (int i = 0; i < 50; ++i) {
      inner.Submit([&count] { count.fetch_add(1); });
    }
  }
  // The inner pool is joined; its 50 tasks are done. Wait for the rest.
  while (count.load() < 150) std::this_thread::yield();
  EXPECT_EQ(count.load(), 150);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.ParallelFor(0, 10, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, kN, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForNonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(100, 200, [&sum](size_t i) { sum.fetch_add(i); });
  // sum of 100..199
  EXPECT_EQ(sum.load(), (100u + 199u) * 100u / 2u);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(5, 5, [&count](size_t) { count.fetch_add(1); });
  pool.ParallelFor(7, 3, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPoolTest, ParallelForRespectsMaxChunks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(0, 1000, [&count](size_t) { count.fetch_add(1); },
                   /*max_chunks=*/2);
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.ParallelFor(0, 256,
                       [&completed](size_t i) {
                         if (i == 77) throw std::runtime_error("boom");
                         completed.fetch_add(1);
                       }),
      std::runtime_error);
  // The pool must remain usable after an exception.
  std::atomic<int> after{0};
  pool.ParallelFor(0, 64, [&after](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 64);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.Submit([] {});
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([] {}), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownRacingSubmitterEitherRunsOrThrows) {
  // Tasks accepted before the shutdown cut all run; Submit after it
  // throws — even with a producer hammering a tiny queue.
  std::atomic<int> ran{0};
  std::atomic<bool> submit_threw{false};
  std::atomic<int> accepted{0};
  {
    ThreadPool pool(2, /*queue_capacity=*/8);
    std::thread submitter([&pool, &ran, &submit_threw, &accepted] {
      try {
        for (int i = 0; i < 100000; ++i) {
          pool.Submit([&ran] { ran.fetch_add(1); });
          accepted.fetch_add(1);
        }
      } catch (const std::runtime_error&) {
        submit_threw.store(true);
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    pool.Shutdown();
    submitter.join();
  }
  EXPECT_TRUE(submit_threw.load());
  EXPECT_GT(ran.load(), 0);
  // Every accepted task ran before Shutdown returned.
  EXPECT_EQ(ran.load(), accepted.load());
}

TEST(ThreadPoolTest, ShutdownUnderLoadDrainsAcceptedTasks) {
  std::atomic<int> ran{0};
  int submitted = 0;
  {
    ThreadPool pool(4, /*queue_capacity=*/16);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran.fetch_add(1);
      });
      ++submitted;
    }
  }
  // Every task accepted by Submit must have run before join returned.
  EXPECT_EQ(ran.load(), submitted);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.ParallelFor(0, 4, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

}  // namespace
}  // namespace complydb
