#include "wal/log_manager.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "common/clock.h"

namespace complydb {
namespace {

class LogManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/wal_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove(base_ + ".wal");
    std::filesystem::remove_all(base_ + ".worm");
    auto r = LogManager::Open(base_ + ".wal");
    ASSERT_TRUE(r.ok());
    log_.reset(r.value());
  }

  WalRecord MakeInsert(TxnId txn, PageId pgno, const std::string& tuple) {
    WalRecord rec;
    rec.type = WalRecordType::kTupleInsert;
    rec.txn_id = txn;
    rec.pgno = pgno;
    rec.tree_id = 1;
    rec.tuple = tuple;
    return rec;
  }

  std::vector<WalRecord> ScanAll() {
    std::vector<WalRecord> out;
    EXPECT_TRUE(log_->Scan([&](const WalRecord& r) {
                      out.push_back(r);
                      return Status::OK();
                    })
                    .ok());
    return out;
  }

  std::string base_;
  std::unique_ptr<LogManager> log_;
};

TEST_F(LogManagerTest, RecordEncodeDecodeRoundTrip) {
  WalRecord rec = MakeInsert(42, 7, "tuple-bytes");
  rec.prev_lsn = 123;
  rec.commit_time = 999;
  rec.order_no = 5;
  rec.undo_next = 77;
  rec.page_image = std::string(100, 'p');
  std::string framed = rec.Encode();

  WalRecord back;
  size_t consumed = 0;
  ASSERT_TRUE(WalRecord::Decode(framed, &back, &consumed).ok());
  EXPECT_EQ(consumed, framed.size());
  EXPECT_EQ(back.type, rec.type);
  EXPECT_EQ(back.txn_id, 42u);
  EXPECT_EQ(back.pgno, 7u);
  EXPECT_EQ(back.prev_lsn, 123u);
  EXPECT_EQ(back.commit_time, 999u);
  EXPECT_EQ(back.order_no, 5);
  EXPECT_EQ(back.undo_next, 77u);
  EXPECT_EQ(back.tuple, "tuple-bytes");
  EXPECT_EQ(back.page_image, rec.page_image);
}

TEST_F(LogManagerTest, DecodeRejectsCorruptCrc) {
  WalRecord rec = MakeInsert(1, 1, "x");
  std::string framed = rec.Encode();
  framed[10] ^= 0x1;
  WalRecord back;
  size_t consumed = 0;
  EXPECT_TRUE(WalRecord::Decode(framed, &back, &consumed).IsCorruption());
}

TEST_F(LogManagerTest, AppendAssignsMonotonicLsns) {
  WalRecord a = MakeInsert(1, 1, "a");
  WalRecord b = MakeInsert(1, 2, "b");
  Lsn la = log_->Append(&a);
  Lsn lb = log_->Append(&b);
  EXPECT_EQ(la, 0u);
  EXPECT_GT(lb, la);
  ASSERT_TRUE(log_->FlushAll().ok());
  EXPECT_EQ(log_->durable_lsn(), log_->next_lsn());
}

TEST_F(LogManagerTest, ScanReturnsDurableRecordsInOrder) {
  for (int i = 0; i < 10; ++i) {
    WalRecord rec = MakeInsert(static_cast<TxnId>(i), static_cast<PageId>(i),
                               "t" + std::to_string(i));
    log_->Append(&rec);
  }
  ASSERT_TRUE(log_->FlushAll().ok());
  auto records = ScanAll();
  ASSERT_EQ(records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(records[i].txn_id, static_cast<TxnId>(i));
    EXPECT_EQ(records[i].tuple, "t" + std::to_string(i));
  }
}

TEST_F(LogManagerTest, UnflushedRecordsInvisibleToScan) {
  WalRecord a = MakeInsert(1, 1, "a");
  log_->Append(&a);
  ASSERT_TRUE(log_->FlushAll().ok());
  WalRecord b = MakeInsert(2, 2, "b");
  log_->Append(&b);
  // b not flushed: scan sees only a.
  auto records = ScanAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].txn_id, 1u);
}

TEST_F(LogManagerTest, DropPendingSimulatesCrash) {
  WalRecord a = MakeInsert(1, 1, "a");
  log_->Append(&a);
  ASSERT_TRUE(log_->FlushAll().ok());
  WalRecord b = MakeInsert(2, 2, "b");
  log_->Append(&b);
  log_->DropPending();
  ASSERT_TRUE(log_->FlushAll().ok());
  EXPECT_EQ(ScanAll().size(), 1u);
}

TEST_F(LogManagerTest, ReopenContinuesLsns) {
  WalRecord a = MakeInsert(1, 1, "a");
  log_->Append(&a);
  ASSERT_TRUE(log_->FlushAll().ok());
  Lsn end = log_->durable_lsn();
  log_.reset();
  auto r = LogManager::Open(base_ + ".wal");
  ASSERT_TRUE(r.ok());
  log_.reset(r.value());
  EXPECT_EQ(log_->next_lsn(), end);
  EXPECT_EQ(ScanAll().size(), 1u);
}

TEST_F(LogManagerTest, TailMirrorsFlushedBytes) {
  SimulatedClock clock;
  auto ws = WormStore::Open(base_ + ".worm", &clock);
  ASSERT_TRUE(ws.ok());
  std::unique_ptr<WormStore> worm(ws.value());

  ASSERT_TRUE(log_->StartTail(worm.get(), "txtail_0", 0).ok());
  WalRecord a = MakeInsert(1, 1, "tail-me");
  log_->Append(&a);
  ASSERT_TRUE(log_->FlushAll().ok());

  std::string tail;
  ASSERT_TRUE(worm->ReadAll("txtail_0", &tail).ok());
  // 8-byte starting-LSN header, then the framed record.
  ASSERT_GT(tail.size(), 8u);
  WalRecord back;
  size_t consumed = 0;
  ASSERT_TRUE(
      WalRecord::Decode(Slice(tail.data() + 8, tail.size() - 8), &back,
                        &consumed)
          .ok());
  EXPECT_EQ(back.tuple, "tail-me");

  // Rotation: new tail gets only newer bytes.
  ASSERT_TRUE(log_->StartTail(worm.get(), "txtail_1", 0).ok());
  WalRecord b = MakeInsert(2, 2, "second");
  log_->Append(&b);
  ASSERT_TRUE(log_->FlushAll().ok());
  std::string tail1;
  ASSERT_TRUE(worm->ReadAll("txtail_1", &tail1).ok());
  WalRecord back1;
  ASSERT_TRUE(
      WalRecord::Decode(Slice(tail1.data() + 8, tail1.size() - 8), &back1,
                        &consumed)
          .ok());
  EXPECT_EQ(back1.tuple, "second");
}

TEST_F(LogManagerTest, TornTailStopsScanCleanly) {
  WalRecord a = MakeInsert(1, 1, "whole");
  log_->Append(&a);
  ASSERT_TRUE(log_->FlushAll().ok());
  // Simulate a torn write: append garbage that looks like a huge frame.
  {
    std::FILE* f = std::fopen((base_ + ".wal").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char partial[] = {
        '\xff', '\xff', '\x00', '\x00',  // len = 65535, but no bytes follow
        '\x01', '\x02'};
    std::fwrite(partial, 1, sizeof(partial), f);
    std::fclose(f);
  }
  log_.reset();
  auto r = LogManager::Open(base_ + ".wal");
  ASSERT_TRUE(r.ok());
  log_.reset(r.value());
  auto records = ScanAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].tuple, "whole");
}

}  // namespace
}  // namespace complydb
