// Direct Auditor API tests: check variants agree, snapshots chain, and
// the auditor works from raw files alone (the external-auditor story).

#include "audit/auditor.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>

#include "adversary/mala.h"
#include "common/thread_pool.h"
#include "db/compliant_db.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

class AuditorTest : public ::testing::Test {
 protected:
  DbOptions MakeOptions() {
    DbOptions opts;
    opts.dir = dir_;
    opts.cache_pages = 64;
    opts.clock = &clock_;
    opts.compliance.enabled = true;
    opts.compliance.hash_on_read = true;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    return opts;
  }

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/auditor_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    auto r = CompliantDB::Open(MakeOptions());
    ASSERT_TRUE(r.ok());
    db_.reset(r.value());
    auto t = db_->CreateTable("t");
    ASSERT_TRUE(t.ok());
    table_ = t.value();
    for (int i = 0; i < 60; ++i) {
      auto txn = db_->Begin();
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(db_->Put(txn.value(), table_, "k" + std::to_string(i % 20),
                           "v" + std::to_string(i))
                      .ok());
      ASSERT_TRUE(db_->Commit(txn.value()).ok());
    }
    ASSERT_TRUE(db_->FlushAll().ok());
  }

  AuditOptions BaseOptions() {
    AuditOptions opts;
    opts.auditor_key = "auditor-secret-key";
    opts.verify_read_hashes = true;
    opts.identity_hash_check = true;
    opts.regret_interval_micros = 5 * kMinute;
    opts.wal_path = db_->wal_path();
    return opts;
  }

  AuditReport RunAudit(uint32_t num_threads) {
    AuditOptions opts = BaseOptions();
    opts.num_threads = num_threads;
    Auditor auditor(opts, db_->worm(), db_->disk());
    auto report = auditor.Audit(db_->epoch(), /*write_snapshot=*/false);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? report.value() : AuditReport();
  }

  // Everything except timings and threads_used must be byte-identical.
  static void ExpectIdenticalReports(const AuditReport& a,
                                     const AuditReport& b) {
    EXPECT_EQ(a.problems, b.problems);
    EXPECT_EQ(a.shredded_hist_files, b.shredded_hist_files);
    EXPECT_EQ(a.log_records, b.log_records);
    EXPECT_EQ(a.pages_checked, b.pages_checked);
    EXPECT_EQ(a.tuples_checked, b.tuples_checked);
    EXPECT_EQ(a.read_hashes_checked, b.read_hashes_checked);
    EXPECT_EQ(a.shreds_verified, b.shreds_verified);
    EXPECT_EQ(a.migrations_verified, b.migrations_verified);
    EXPECT_EQ(a.identity_checks_run, b.identity_checks_run);
  }

  SimulatedClock clock_;
  std::string dir_;
  uint32_t table_ = 0;
  std::unique_ptr<CompliantDB> db_;
};

TEST_F(AuditorTest, SortMergeAndAddHashAgreeOnCleanState) {
  for (bool sort_merge : {false, true}) {
    AuditOptions opts = BaseOptions();
    opts.sort_merge_check = sort_merge;
    Auditor auditor(opts, db_->worm(), db_->disk());
    auto report = auditor.Audit(db_->epoch(), /*write_snapshot=*/false);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report.value().ok())
        << (sort_merge ? "sort-merge" : "add-hash") << ": "
        << report.value().problems[0];
  }
}

TEST_F(AuditorTest, RepeatedAuditWithoutSnapshotIsIdempotent) {
  Auditor auditor(BaseOptions(), db_->worm(), db_->disk());
  for (int i = 0; i < 3; ++i) {
    auto report = auditor.Audit(db_->epoch(), /*write_snapshot=*/false);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report.value().ok()) << "iteration " << i;
  }
  // No snapshot was written: the next epoch's file must not exist.
  EXPECT_FALSE(db_->worm()->Exists(SnapshotFileName(db_->epoch() + 1)));
}

TEST_F(AuditorTest, SnapshotChainVerifiesAcrossEpochs) {
  // Facade-driven audits write snapshot_{n+1}; each must verify under the
  // auditor key and seed the next audit.
  for (int epoch = 0; epoch < 3; ++epoch) {
    auto report = db_->Audit();
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report.value().ok());
    auto snap = Snapshot::ReadVerified(db_->worm(), db_->epoch(),
                                       "auditor-secret-key");
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    EXPECT_EQ(snap.value().epoch, db_->epoch());
    // More work for the next epoch.
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(db_->Put(txn.value(), table_, "e" + std::to_string(epoch),
                         "x")
                    .ok());
    ASSERT_TRUE(db_->Commit(txn.value()).ok());
    ASSERT_TRUE(db_->FlushAll().ok());
  }
}

TEST_F(AuditorTest, WrongKeyCannotVerifyOrForgeSnapshots) {
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().ok());
  auto snap = Snapshot::ReadVerified(db_->worm(), db_->epoch(), "wrong-key");
  EXPECT_TRUE(snap.status().IsTampered());

  // An audit run with the wrong key cannot validate the chain either.
  AuditOptions opts = BaseOptions();
  opts.auditor_key = "wrong-key";
  Auditor auditor(opts, db_->worm(), db_->disk());
  auto r = auditor.Audit(db_->epoch(), false);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().ok());
}

TEST_F(AuditorTest, DisabledReadHashCheckSkipsVerification) {
  AuditOptions opts = BaseOptions();
  opts.verify_read_hashes = false;
  Auditor auditor(opts, db_->worm(), db_->disk());
  auto report = auditor.Audit(db_->epoch(), false);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok());
  EXPECT_EQ(report.value().read_hashes_checked, 0u);
}

TEST_F(AuditorTest, ReleaseOldFilesClearsSupersededWormState) {
  auto report = db_->Audit();  // writes snapshot_1, releases epoch-0 files
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().ok());
  EXPECT_FALSE(db_->worm()->Exists(LogFileName(0)));
  EXPECT_FALSE(db_->worm()->Exists(StampIndexFileName(0)));
  EXPECT_TRUE(db_->worm()->Exists(SnapshotFileName(1)));
  EXPECT_TRUE(db_->worm()->Exists(LogFileName(1)));
}

TEST_F(AuditorTest, ParallelAuditMatchesSerialOnCleanStore) {
  AuditReport serial = RunAudit(1);
  EXPECT_TRUE(serial.ok()) << serial.problems[0];
  EXPECT_EQ(serial.threads_used, 1u);
  for (uint32_t threads : {2u, 3u, 8u}) {
    AuditReport parallel = RunAudit(threads);
    EXPECT_EQ(parallel.threads_used, threads);
    ExpectIdenticalReports(serial, parallel);
  }
}

TEST_F(AuditorTest, ParallelAuditMatchesSerialOnTamperedStore) {
  // Tamper through the closed file (the Mala adversary), then reopen and
  // audit: every thread count must report the identical findings list.
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();
  Mala mala(dir_ + "/data.db");
  ASSERT_TRUE(mala.TamperTupleValue(table_, "k7").ok());
  ASSERT_TRUE(mala.TamperTupleValue(table_, "k13").ok());
  auto r = CompliantDB::Open(MakeOptions());
  ASSERT_TRUE(r.ok());
  db_.reset(r.value());

  AuditReport serial = RunAudit(1);
  EXPECT_FALSE(serial.ok());
  for (uint32_t threads : {2u, 8u}) {
    AuditReport parallel = RunAudit(threads);
    EXPECT_FALSE(parallel.ok());
    ExpectIdenticalReports(serial, parallel);
  }
}

TEST_F(AuditorTest, ZeroThreadsResolvesToHardwareConcurrency) {
  AuditReport report = RunAudit(0);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.threads_used, ThreadPool::DefaultThreads());
}

TEST_F(AuditorTest, EnvOverrideControlsFacadeAuditThreads) {
  // CI exports COMPLYDB_AUDIT_THREADS for whole suites; preserve it.
  const char* prev = ::getenv("COMPLYDB_AUDIT_THREADS");
  std::string saved = prev != nullptr ? prev : "";
  ASSERT_EQ(::setenv("COMPLYDB_AUDIT_THREADS", "3", /*overwrite=*/1), 0);
  auto report = db_->Audit();
  if (prev != nullptr) {
    ::setenv("COMPLYDB_AUDIT_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("COMPLYDB_AUDIT_THREADS");
  }
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok());
  EXPECT_EQ(report.value().threads_used, 3u);
}

}  // namespace
}  // namespace complydb
