// Randomized temporal property test: under arbitrary interleavings of
// commits, aborts, deletes, clock jumps, crashes, and audits, AS-OF
// queries at ANY instant — exact commit boundaries, one tick either
// side, random times, and the far future — must match a reference
// timeline keyed by the real commit times.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "db/compliant_db.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

// Per-key committed timeline: (commit_time, value-or-deleted), times
// strictly increasing (commit ticks are monotonic; one write per key
// per transaction).
using Timeline = std::vector<std::pair<uint64_t, std::optional<std::string>>>;

// The state of `events` as of time `at`: the last event with time <= at.
std::optional<std::string> StateAsOf(const Timeline& events, uint64_t at) {
  std::optional<std::string> state;
  for (const auto& [time, value] : events) {
    if (time > at) break;
    state = value;
  }
  return state;
}

class TemporalChaosTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  DbOptions MakeOptions() {
    DbOptions opts;
    opts.dir = dir_;
    opts.cache_pages = 48;
    opts.clock = &clock_;
    opts.compliance.enabled = true;
    opts.compliance.hash_on_read = (GetParam() % 2) == 0;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    opts.tsb_enabled = (GetParam() % 2) == 1;  // exercise migrated history
    opts.tsb_split_threshold = 0.6;
    return opts;
  }

  void Open() {
    auto r = CompliantDB::Open(MakeOptions());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    db_.reset(r.value());
  }

  // Checks GetAsOf against the model at one (key, time) point.
  void CheckAsOf(uint32_t table, const std::string& key,
                 const Timeline& events, uint64_t at) {
    std::string got;
    Status s = db_->GetAsOf(table, key, at, &got);
    std::optional<std::string> expect = StateAsOf(events, at);
    if (expect.has_value()) {
      ASSERT_TRUE(s.ok()) << "key " << key << " at " << at << ": "
                          << s.ToString();
      EXPECT_EQ(got, *expect) << "key " << key << " at " << at;
    } else {
      EXPECT_TRUE(s.IsNotFound()) << "key " << key << " at " << at
                                  << " should not exist, got " << got;
    }
  }

  SimulatedClock clock_;
  std::string dir_;
  std::unique_ptr<CompliantDB> db_;
};

TEST_P(TemporalChaosTest, AsOfMatchesModelAtEveryInstant) {
  dir_ = ::testing::TempDir() + "/tchaos_" + std::to_string(GetParam());
  std::filesystem::remove_all(dir_);
  Random rng(GetParam() * 104729);
  Open();

  auto t = db_->CreateTable("ledger");
  ASSERT_TRUE(t.ok());
  uint32_t table = t.value();

  std::map<std::string, Timeline> model;
  uint64_t first_commit = 0, last_commit = 0;
  auto record = [&](const std::string& key,
                    std::optional<std::string> value) {
    uint64_t when = db_->txns()->last_commit_time();
    if (first_commit == 0) first_commit = when;
    last_commit = when;
    model[key].emplace_back(when, std::move(value));
  };

  const int kSteps = 250;
  for (int step = 0; step < kSteps; ++step) {
    uint64_t op = rng.Uniform(100);
    std::string key = "acct" + std::to_string(rng.Uniform(30));

    if (op < 40) {
      // Committed single put.
      std::string value = rng.Bytes(1 + rng.Uniform(70));
      auto txn = db_->Begin();
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(db_->Put(txn.value(), table, key, value).ok());
      ASSERT_TRUE(db_->Commit(txn.value()).ok());
      record(key, value);
    } else if (op < 50) {
      // Committed delete of a live key.
      auto it = model.find(key);
      if (it != model.end() && !it->second.empty() &&
          it->second.back().second.has_value()) {
        auto txn = db_->Begin();
        ASSERT_TRUE(txn.ok());
        ASSERT_TRUE(db_->Delete(txn.value(), table, key).ok());
        ASSERT_TRUE(db_->Commit(txn.value()).ok());
        record(key, std::nullopt);
      }
    } else if (op < 62) {
      // Multi-key transaction: every key stamps the same commit time.
      auto txn = db_->Begin();
      ASSERT_TRUE(txn.ok());
      std::map<std::string, std::string> writes;
      size_t n = 1 + rng.Uniform(4);
      for (size_t i = 0; i < n; ++i) {
        std::string k = "acct" + std::to_string(rng.Uniform(30));
        if (writes.count(k) > 0) continue;
        std::string v = rng.Bytes(1 + rng.Uniform(50));
        ASSERT_TRUE(db_->Put(txn.value(), table, k, v).ok());
        writes[k] = v;
      }
      if (rng.OneIn(4)) {
        ASSERT_TRUE(db_->Abort(txn.value()).ok());  // invisible to AS-OF
      } else {
        ASSERT_TRUE(db_->Commit(txn.value()).ok());
        for (auto& [k, v] : writes) record(k, v);
      }
    } else if (op < 75) {
      ASSERT_TRUE(db_->AdvanceClock(1 + rng.Uniform(8 * kMinute)).ok());
    } else if (op < 84) {
      db_.reset();  // crash; recovery must re-stamp pending versions
      Open();
    } else if (op < 92) {
      // Mid-run spot check at a random past instant.
      if (last_commit > 0) {
        uint64_t at = first_commit + rng.Uniform(last_commit -
                                                 first_commit + 2);
        CheckAsOf(table, key, model[key], at);
      }
    } else {
      auto report = db_->Audit();  // epoch rotation must not lose history
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      ASSERT_TRUE(report.value().ok())
          << "step " << step
          << ", first problem: " << report.value().problems[0];
    }
  }
  ASSERT_GT(last_commit, 0u);

  // Exhaustive sweep: every key, at every commit boundary, one tick
  // either side of it, random interior instants, and the far future.
  for (const auto& [key, events] : model) {
    for (const auto& [time, value] : events) {
      CheckAsOf(table, key, events, time);
      CheckAsOf(table, key, events, time - 1);
      CheckAsOf(table, key, events, time + 1);
    }
    for (int i = 0; i < 12; ++i) {
      uint64_t at =
          first_commit - 1 + rng.Uniform(last_commit - first_commit + 3);
      CheckAsOf(table, key, events, at);
    }
    CheckAsOf(table, key, events, last_commit + 365ull * 24 * 3600 *
                                                     1'000'000);
  }

  // A key never written is absent at every instant.
  static const Timeline kEmpty;
  CheckAsOf(table, "never-written", kEmpty, first_commit);
  CheckAsOf(table, "never-written", kEmpty, last_commit);

  // And the whole run still audits clean.
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok())
      << "final audit, first problem: " << report.value().problems[0];
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemporalChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace complydb
