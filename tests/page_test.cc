#include "storage/page.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/coding.h"
#include "common/random.h"

namespace complydb {
namespace {

// Records on a Page are length-prefixed: first two bytes = total length.
std::string MakeRecord(const std::string& body) {
  std::string rec;
  PutFixed16(&rec, static_cast<uint16_t>(2 + body.size()));
  rec += body;
  return rec;
}

std::string Body(Slice rec) {
  return std::string(rec.data() + 2, rec.size() - 2);
}

TEST(PageTest, FormatSetsHeader) {
  Page p;
  EXPECT_FALSE(p.IsFormatted());
  p.Format(7, PageType::kBtreeLeaf, 3, 0);
  EXPECT_TRUE(p.IsFormatted());
  EXPECT_EQ(p.pgno(), 7u);
  EXPECT_EQ(p.type(), PageType::kBtreeLeaf);
  EXPECT_EQ(p.tree_id(), 3u);
  EXPECT_EQ(p.level(), 0);
  EXPECT_EQ(p.slot_count(), 0);
  EXPECT_EQ(p.right_sibling(), kInvalidPage);
  EXPECT_TRUE(p.CheckStructure().ok());
}

TEST(PageTest, InsertAndRead) {
  Page p;
  p.Format(1, PageType::kBtreeLeaf, 0, 0);
  ASSERT_TRUE(p.AppendRecord(MakeRecord("alpha")).ok());
  ASSERT_TRUE(p.AppendRecord(MakeRecord("beta")).ok());
  ASSERT_EQ(p.slot_count(), 2);
  EXPECT_EQ(Body(p.RecordAt(0)), "alpha");
  EXPECT_EQ(Body(p.RecordAt(1)), "beta");
  EXPECT_TRUE(p.CheckStructure().ok());
}

TEST(PageTest, InsertAtSlotShifts) {
  Page p;
  p.Format(1, PageType::kBtreeLeaf, 0, 0);
  ASSERT_TRUE(p.AppendRecord(MakeRecord("a")).ok());
  ASSERT_TRUE(p.AppendRecord(MakeRecord("c")).ok());
  ASSERT_TRUE(p.InsertRecord(1, MakeRecord("b")).ok());
  EXPECT_EQ(Body(p.RecordAt(0)), "a");
  EXPECT_EQ(Body(p.RecordAt(1)), "b");
  EXPECT_EQ(Body(p.RecordAt(2)), "c");
  EXPECT_TRUE(p.CheckStructure().ok());
}

TEST(PageTest, EraseCompactsHeap) {
  Page p;
  p.Format(1, PageType::kBtreeLeaf, 0, 0);
  ASSERT_TRUE(p.AppendRecord(MakeRecord("first")).ok());
  ASSERT_TRUE(p.AppendRecord(MakeRecord("second")).ok());
  ASSERT_TRUE(p.AppendRecord(MakeRecord("third")).ok());
  size_t free_before = p.FreeSpace();
  ASSERT_TRUE(p.EraseRecord(1).ok());
  ASSERT_EQ(p.slot_count(), 2);
  EXPECT_EQ(Body(p.RecordAt(0)), "first");
  EXPECT_EQ(Body(p.RecordAt(1)), "third");
  EXPECT_GT(p.FreeSpace(), free_before);
  EXPECT_TRUE(p.CheckStructure().ok());
}

TEST(PageTest, ReplaceRecord) {
  Page p;
  p.Format(1, PageType::kBtreeLeaf, 0, 0);
  ASSERT_TRUE(p.AppendRecord(MakeRecord("short")).ok());
  ASSERT_TRUE(p.AppendRecord(MakeRecord("tail")).ok());
  ASSERT_TRUE(p.ReplaceRecord(0, MakeRecord("a-much-longer-record")).ok());
  EXPECT_EQ(Body(p.RecordAt(0)), "a-much-longer-record");
  EXPECT_EQ(Body(p.RecordAt(1)), "tail");
  EXPECT_TRUE(p.CheckStructure().ok());
}

TEST(PageTest, FullPageReportsBusy) {
  Page p;
  p.Format(1, PageType::kBtreeLeaf, 0, 0);
  std::string rec = MakeRecord(std::string(100, 'x'));
  Status s = Status::OK();
  int inserted = 0;
  while ((s = p.AppendRecord(rec)).ok()) ++inserted;
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  EXPECT_GT(inserted, 30);  // ~4K / 104B
  EXPECT_TRUE(p.CheckStructure().ok());
}

TEST(PageTest, OrderNumbersMonotonic) {
  Page p;
  p.Format(1, PageType::kBtreeLeaf, 0, 0);
  EXPECT_EQ(p.TakeOrderNumber(), 0);
  EXPECT_EQ(p.TakeOrderNumber(), 1);
  EXPECT_EQ(p.TakeOrderNumber(), 2);
  EXPECT_EQ(p.next_order_number(), 3);
}

TEST(PageTest, RejectsBadRecords) {
  Page p;
  p.Format(1, PageType::kBtreeLeaf, 0, 0);
  // Length prefix disagrees with actual size.
  std::string bad;
  PutFixed16(&bad, 99);
  bad += "xy";
  EXPECT_TRUE(p.AppendRecord(bad).IsInvalidArgument());
  EXPECT_TRUE(p.AppendRecord("").IsInvalidArgument());
}

TEST(PageTest, EraseOutOfRange) {
  Page p;
  p.Format(1, PageType::kBtreeLeaf, 0, 0);
  EXPECT_TRUE(p.EraseRecord(0).IsInvalidArgument());
}

TEST(PageTest, CheckStructureCatchesBadMagic) {
  Page p;
  p.Format(1, PageType::kBtreeLeaf, 0, 0);
  p.data()[0] ^= 0x1;
  EXPECT_TRUE(p.CheckStructure().IsCorruption());
}

TEST(PageTest, CheckStructureCatchesCorruptSlotOffset) {
  Page p;
  p.Format(1, PageType::kBtreeLeaf, 0, 0);
  ASSERT_TRUE(p.AppendRecord(MakeRecord("victim")).ok());
  // Point slot 0 into the header area (a file-editor attack).
  EncodeFixed16(p.data() + Page::kHeaderSize, 4);
  EXPECT_TRUE(p.CheckStructure().IsCorruption());
}

// Property test: random insert/erase sequences keep the structure valid
// and mirror a std::vector<std::string> model.
class PagePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PagePropertyTest, MatchesModelUnderRandomOps) {
  Random rng(GetParam());
  Page p;
  p.Format(1, PageType::kBtreeLeaf, 0, 0);
  std::vector<std::string> model;

  for (int step = 0; step < 400; ++step) {
    bool do_insert = model.empty() || rng.Uniform(3) != 0;
    if (do_insert) {
      std::string body = rng.Bytes(1 + rng.Uniform(60));
      std::string rec = MakeRecord(body);
      uint16_t slot = static_cast<uint16_t>(rng.Uniform(model.size() + 1));
      Status s = p.InsertRecord(slot, rec);
      if (s.ok()) {
        model.insert(model.begin() + slot, body);
      } else {
        ASSERT_TRUE(s.IsBusy()) << s.ToString();
      }
    } else {
      uint16_t slot = static_cast<uint16_t>(rng.Uniform(model.size()));
      ASSERT_TRUE(p.EraseRecord(slot).ok());
      model.erase(model.begin() + slot);
    }
    ASSERT_TRUE(p.CheckStructure().ok()) << "step " << step;
    ASSERT_EQ(p.slot_count(), model.size());
  }
  for (size_t i = 0; i < model.size(); ++i) {
    EXPECT_EQ(Body(p.RecordAt(static_cast<uint16_t>(i))), model[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PagePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace complydb
