// Incremental per-epoch certification: sealing, O(delta) certification,
// incremental-vs-full-replay equivalence (including across crash/reopen
// and across worker counts), inclusion proofs, wait-for-quiesce, exit
// codes, and tamper detection under concurrent reader/writer load.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "audit/audit_cursor.h"
#include "audit/auditor.h"
#include "audit/epoch_chain.h"
#include "common/clock.h"
#include "common/coding.h"
#include "compliance/compliance_log.h"
#include "crypto/hmac.h"
#include "db/compliant_db.h"
#include "db/snapshot_reader.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void FlipByteAt(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << "missing " << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  f.read(&b, 1);
  ASSERT_TRUE(f.good());
  b ^= 0x5a;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&b, 1);
  ASSERT_TRUE(f.good());
}

// First payload byte offset of a frame starting at or after `from` whose
// payload is at least 3 bytes, or 0 if none before `limit`. Frames are
// len u32 | crc u32 | payload.
uint64_t PayloadByteIn(const std::string& log, uint64_t from,
                       uint64_t limit) {
  uint64_t off = 0;
  while (off + 8 <= log.size() && off < limit) {
    uint32_t len = DecodeFixed32(log.data() + off);
    if (off >= from && len >= 3 && off + 8 + len <= limit) {
      return off + 8 + 1;
    }
    off += 8 + len;
  }
  return 0;
}

// CI jobs force write-thread / shipper env overrides; these tests pin
// both per-options, so the fixture clears the env and restores it.
class IncrementalAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* name :
         {"COMPLYDB_WRITE_THREADS", "COMPLYDB_COMPLIANCE_ASYNC",
          "COMPLYDB_AUDIT_THREADS"}) {
      const char* env = std::getenv(name);
      saved_.emplace_back(name,
                          env != nullptr ? std::optional<std::string>(env)
                                         : std::nullopt);
      ::unsetenv(name);
    }
  }
  void TearDown() override {
    for (const auto& [name, value] : saved_) {
      if (value.has_value()) ::setenv(name.c_str(), value->c_str(), 1);
    }
  }

  DbOptions MakeOptions(const std::string& dir, uint32_t write_threads = 1) {
    DbOptions opts;
    opts.dir = dir;
    opts.cache_pages = 64;
    opts.clock = clock_.get();
    opts.compliance.enabled = true;
    opts.compliance.hash_on_read = true;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    opts.write_threads = write_threads;
    return opts;
  }

  void Open(const DbOptions& opts) {
    auto r = CompliantDB::Open(opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    db_.reset(r.value());
  }

  std::string FreshDir(const std::string& name) {
    dir_ = ::testing::TempDir() + "/inc_audit_" + name;
    std::filesystem::remove_all(dir_);
    return dir_;
  }

  uint32_t MakeTable(const std::string& name) {
    auto t = db_->CreateTable(name);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? t.value() : 0;
  }

  void PutRow(uint32_t table, const std::string& key,
              const std::string& value) {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok()) << txn.status().ToString();
    ASSERT_TRUE(db_->Put(txn.value(), table, key, value).ok());
    Status s = db_->Commit(txn.value());
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  std::string LogPath() const { return dir_ + "/worm/" + LogFileName(0); }

  std::unique_ptr<SimulatedClock> clock_ =
      std::make_unique<SimulatedClock>();
  std::string dir_;
  std::unique_ptr<CompliantDB> db_;
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

TEST_F(IncrementalAuditTest, SealsAndCertifiesWithoutQuiescing) {
  Open(MakeOptions(FreshDir("basics")));
  uint32_t t = MakeTable("acct");
  for (int i = 0; i < 25; ++i) {
    PutRow(t, "k" + std::to_string(i), "v" + std::to_string(i));
  }
  // A reader stays open across the whole run: the full audit would
  // return Busy, the incremental one must not care.
  auto snap = db_->BeginSnapshot();
  ASSERT_TRUE(snap.ok());
  std::unique_ptr<SnapshotReader> reader(snap.value());

  auto rep = db_->AuditIncremental(1);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep.value().ok()) << rep.value().problems[0];
  EXPECT_GE(rep.value().certified_seq, 1u);
  EXPECT_GT(rep.value().records_replayed, 0u);
  EXPECT_GT(rep.value().bytes_replayed, 0u);
  EXPECT_EQ(db_->CertifiedEpoch(), rep.value().certified_seq);

  auto cs = db_->Certification();
  ASSERT_TRUE(cs.ok()) << cs.status().ToString();
  EXPECT_TRUE(cs.value().enabled);
  EXPECT_EQ(cs.value().certified_seq, rep.value().certified_seq);
  EXPECT_EQ(cs.value().backlog_epochs, 0u);
  EXPECT_EQ(cs.value().backlog_bytes, 0u);
  EXPECT_TRUE(DigestEqual(cs.value().chain_root, rep.value().chain_root));

  // The full audit with the same reader open stays Busy — the old
  // contract is untouched.
  auto full = db_->Audit(1);
  EXPECT_TRUE(full.status().IsBusy());
}

TEST_F(IncrementalAuditTest, RecertificationCostIsODelta) {
  Open(MakeOptions(FreshDir("odelta")));
  uint32_t t = MakeTable("acct");

  uint64_t prev_offset = 0;
  uint64_t first_bytes = 0;
  for (int step = 0; step < 4; ++step) {
    for (int i = 0; i < 20; ++i) {
      PutRow(t, "s" + std::to_string(step) + "k" + std::to_string(i), "v");
    }
    auto rep = db_->AuditIncremental(1);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    ASSERT_TRUE(rep.value().ok()) << rep.value().problems[0];
    // The run replays exactly the bytes between the previous certified
    // head and the new one — never the whole of L again.
    EXPECT_EQ(rep.value().bytes_replayed,
              rep.value().certified_offset - prev_offset);
    EXPECT_GT(rep.value().certified_offset, prev_offset);
    if (step == 0) {
      first_bytes = rep.value().bytes_replayed;
    } else {
      // Re-audit cost tracks the delta (~one batch), not the log length,
      // which by step 3 is 4x the first batch.
      EXPECT_LT(rep.value().bytes_replayed, first_bytes * 3);
    }
    prev_offset = rep.value().certified_offset;
  }
}

TEST_F(IncrementalAuditTest, IncrementalMatchesFullReplay) {
  Open(MakeOptions(FreshDir("equiv")));
  uint32_t t = MakeTable("acct");
  for (int step = 0; step < 3; ++step) {
    for (int i = 0; i < 15; ++i) {
      PutRow(t, "s" + std::to_string(step) + "k" + std::to_string(i),
             std::string(1 + i % 40, 'x'));
    }
    auto inc = db_->AuditIncremental(1);
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    ASSERT_TRUE(inc.value().ok()) << inc.value().problems[0];

    auto full = db_->AuditFullReplay(1);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    ASSERT_TRUE(full.value().ok()) << full.value().problems[0];

    // Verdict equivalence: same chain head, same replayed state, same
    // (empty) problem list — byte for byte.
    EXPECT_EQ(inc.value().certified_seq, full.value().certified_seq);
    EXPECT_EQ(inc.value().certified_offset, full.value().certified_offset);
    EXPECT_TRUE(
        DigestEqual(inc.value().chain_root, full.value().chain_root));
    EXPECT_TRUE(
        DigestEqual(inc.value().state_digest, full.value().state_digest));
    EXPECT_EQ(inc.value().all_problems, full.value().all_problems);
  }
}

TEST_F(IncrementalAuditTest, EquivalenceSurvivesCrashAndReopen) {
  DbOptions opts = MakeOptions(FreshDir("crash"));
  Open(opts);
  uint32_t t = MakeTable("acct");
  for (int i = 0; i < 20; ++i) PutRow(t, "k" + std::to_string(i), "v1");
  auto rep = db_->AuditIncremental(1);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  ASSERT_TRUE(rep.value().ok());
  const uint64_t certified_before = rep.value().certified_seq;
  for (int i = 0; i < 20; ++i) PutRow(t, "k" + std::to_string(i), "v2");

  // Crash: destroy without Close. The certification marker written by the
  // clean run above must be picked up on reopen.
  db_.reset();
  Open(opts);
  t = db_->GetTable("acct").value();
  for (int i = 0; i < 10; ++i) PutRow(t, "post" + std::to_string(i), "v3");

  auto inc = db_->AuditIncremental(1);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  ASSERT_TRUE(inc.value().ok()) << inc.value().problems[0];
  EXPECT_GT(inc.value().certified_seq, certified_before);
  // The reopened cursor resumed from the marker: this run replayed only
  // the post-marker delta, not the certified prefix.
  EXPECT_LT(inc.value().bytes_replayed, inc.value().certified_offset);

  auto full = db_->AuditFullReplay(1);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_TRUE(full.value().ok()) << full.value().problems[0];
  EXPECT_EQ(inc.value().certified_seq, full.value().certified_seq);
  EXPECT_TRUE(DigestEqual(inc.value().chain_root, full.value().chain_root));
  EXPECT_TRUE(
      DigestEqual(inc.value().state_digest, full.value().state_digest));
  EXPECT_EQ(inc.value().all_problems, full.value().all_problems);
}

TEST_F(IncrementalAuditTest, WindowReplayIsDeterministicAcrossThreads) {
  Open(MakeOptions(FreshDir("threads")));
  uint32_t t = MakeTable("acct");
  for (int i = 0; i < 60; ++i) {
    PutRow(t, "k" + std::to_string(i % 17), std::string(1 + i % 64, 'y'));
  }
  auto serial = db_->AuditFullReplay(1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto sharded = db_->AuditFullReplay(4);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded.value().threads_used, 4u);
  EXPECT_EQ(serial.value().certified_seq, sharded.value().certified_seq);
  EXPECT_TRUE(
      DigestEqual(serial.value().chain_root, sharded.value().chain_root));
  EXPECT_TRUE(DigestEqual(serial.value().state_digest,
                          sharded.value().state_digest));
  EXPECT_EQ(serial.value().all_problems, sharded.value().all_problems);
}

TEST_F(IncrementalAuditTest, InclusionProofVerifiesAndBindsAllFields) {
  Open(MakeOptions(FreshDir("proof")));
  uint32_t t = MakeTable("acct");
  for (int i = 0; i < 10; ++i) {
    PutRow(t, "k" + std::to_string(i), "balance-" + std::to_string(i));
  }
  // Tuple bodies reach L on page writeback (within the regret interval);
  // flush so the certified range covers the NEW_TUPLE records.
  ASSERT_TRUE(db_->FlushAll().ok());
  auto rep = db_->AuditIncremental(1);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  ASSERT_TRUE(rep.value().ok());
  const Sha256Digest root = rep.value().chain_root;

  auto snap = db_->BeginSnapshot();
  ASSERT_TRUE(snap.ok());
  std::unique_ptr<SnapshotReader> reader(snap.value());
  std::string value;
  uint64_t commit_time = 0;
  InclusionProof proof;
  Status s = reader->GetWithProof(t, "k3", &value, &commit_time, &proof);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(value, "balance-3");
  EXPECT_GT(commit_time, 0u);

  // The verifier is pure: only the proof bytes and the trusted root.
  EXPECT_TRUE(
      VerifyInclusionProof(proof, root, t, "k3", value, commit_time).ok());

  // Every bound field must bite.
  EXPECT_FALSE(
      VerifyInclusionProof(proof, root, t, "k3", "forged", commit_time).ok());
  EXPECT_FALSE(
      VerifyInclusionProof(proof, root, t, "k4", value, commit_time).ok());
  EXPECT_FALSE(
      VerifyInclusionProof(proof, root, t, "k3", value, commit_time + 1)
          .ok());
  EXPECT_FALSE(
      VerifyInclusionProof(proof, root, t + 1, "k3", value, commit_time)
          .ok());
  Sha256Digest wrong_root = root;
  wrong_root[0] ^= 0xff;
  EXPECT_FALSE(
      VerifyInclusionProof(proof, wrong_root, t, "k3", value, commit_time)
          .ok());
  InclusionProof bent = proof;
  ASSERT_FALSE(bent.tuple.record.empty());
  bent.tuple.record[bent.tuple.record.size() / 2] ^= 0x01;
  EXPECT_FALSE(
      VerifyInclusionProof(bent, root, t, "k3", value, commit_time).ok());
}

TEST_F(IncrementalAuditTest, ProofForUncertifiedVersionIsNotFound) {
  Open(MakeOptions(FreshDir("proof_gap")));
  uint32_t t = MakeTable("acct");
  PutRow(t, "old", "v");
  ASSERT_TRUE(db_->FlushAll().ok());
  auto rep = db_->AuditIncremental(1);
  ASSERT_TRUE(rep.ok());
  ASSERT_TRUE(rep.value().ok());

  PutRow(t, "fresh", "v");  // after the certified head
  auto snap = db_->BeginSnapshot();
  ASSERT_TRUE(snap.ok());
  std::unique_ptr<SnapshotReader> reader(snap.value());
  std::string value;
  uint64_t commit_time = 0;
  InclusionProof proof;
  Status s = reader->GetWithProof(t, "fresh", &value, &commit_time, &proof);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();

  // Flush + certify the tail and the same read proves.
  ASSERT_TRUE(db_->FlushAll().ok());
  auto rep2 = db_->AuditIncremental(1);
  ASSERT_TRUE(rep2.ok());
  ASSERT_TRUE(rep2.value().ok());
  s = reader->GetWithProof(t, "fresh", &value, &commit_time, &proof);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(VerifyInclusionProof(proof, rep2.value().chain_root, t,
                                   "fresh", value, commit_time)
                  .ok());
}

TEST_F(IncrementalAuditTest, FullAuditRollsTheChainToAFreshEpoch) {
  Open(MakeOptions(FreshDir("roll")));
  uint32_t t = MakeTable("acct");
  for (int i = 0; i < 10; ++i) PutRow(t, "k" + std::to_string(i), "v");
  auto rep = db_->AuditIncremental(1);
  ASSERT_TRUE(rep.ok());
  ASSERT_TRUE(rep.value().ok());
  ASSERT_GE(db_->CertifiedEpoch(), 1u);

  auto full = db_->Audit(1);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_TRUE(full.value().ok()) << full.value().problems[0];
  EXPECT_EQ(db_->epoch(), 1u);

  // Chain and cursor restarted with the new epoch.
  auto cs = db_->Certification();
  ASSERT_TRUE(cs.ok()) << cs.status().ToString();
  EXPECT_EQ(cs.value().audit_epoch, 1u);
  EXPECT_EQ(cs.value().certified_seq, 0u);

  // And the incremental machinery works inside the new epoch.
  for (int i = 0; i < 5; ++i) PutRow(t, "n" + std::to_string(i), "v");
  auto rep2 = db_->AuditIncremental(1);
  ASSERT_TRUE(rep2.ok()) << rep2.status().ToString();
  EXPECT_TRUE(rep2.value().ok()) << rep2.value().problems[0];
  EXPECT_GE(rep2.value().certified_seq, 1u);
}

TEST_F(IncrementalAuditTest, WaitForQuiesceTimesOutThenSucceeds) {
  Open(MakeOptions(FreshDir("quiesce")));
  uint32_t t = MakeTable("acct");
  PutRow(t, "k", "v");

  auto snap = db_->BeginSnapshot();
  ASSERT_TRUE(snap.ok());
  SnapshotReader* reader = snap.value();

  AuditOptions wait;
  wait.num_threads = 1;
  wait.wait_for_quiesce = true;
  wait.quiesce_deadline_micros = 50'000;
  auto busy = db_->Audit(wait);
  EXPECT_TRUE(busy.status().IsBusy()) << busy.status().ToString();

  // A second attempt with a generous deadline succeeds once another
  // thread releases the snapshot mid-wait.
  std::thread releaser([reader] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    delete reader;
  });
  wait.quiesce_deadline_micros = 30ull * 1'000'000;
  auto ok = db_->Audit(wait);
  releaser.join();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok.value().ok());
}

TEST(AuditExitCodes, MapStatusesToTheStableContract) {
  EXPECT_EQ(AuditExitCodeForStatus(Status::OK()), kAuditExitCompliant);
  EXPECT_EQ(AuditExitCodeForStatus(Status::Tampered("t")),
            kAuditExitTampered);
  EXPECT_EQ(AuditExitCodeForStatus(Status::Corruption("c")),
            kAuditExitTampered);
  EXPECT_EQ(AuditExitCodeForStatus(Status::Busy("b")), kAuditExitBusy);
  EXPECT_EQ(AuditExitCodeForStatus(Status::IOError("io")),
            kAuditExitIoError);
  EXPECT_EQ(AuditExitCodeForStatus(Status::NotFound("nf")),
            kAuditExitIoError);
  EXPECT_EQ(kAuditExitUsage, 2);
}

// The chaos satellite: Mala edits the compliance log itself — one byte
// inside an already-certified epoch, one byte in the sealed-but-not-yet-
// certified tail — while writers and snapshot readers keep hammering the
// database. The incremental path must catch the tail edit, the full
// replay the certified-prefix edit, both online (no quiescence). Runs
// under TSan in CI.
TEST_F(IncrementalAuditTest, TamperDetectedUnderConcurrentLoad) {
  Open(MakeOptions(FreshDir("chaos"), /*write_threads=*/2));
  uint32_t t = MakeTable("acct");
  for (int i = 0; i < 40; ++i) {
    PutRow(t, "seed" + std::to_string(i), "v" + std::to_string(i));
  }
  auto rep = db_->AuditIncremental(2);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  ASSERT_TRUE(rep.value().ok()) << rep.value().problems[0];
  const uint64_t certified = rep.value().certified_offset;
  ASSERT_GT(certified, 0u);

  // Grow a sealed-but-uncertified tail.
  for (int i = 0; i < 20; ++i) {
    PutRow(t, "tail" + std::to_string(i), "v");
  }
  ASSERT_TRUE(db_->SealEpochNow().ok());
  auto cs = db_->Certification();
  ASSERT_TRUE(cs.ok());
  const uint64_t sealed = cs.value().sealed_offset;
  ASSERT_GT(sealed, certified);

  // Mala's file editor: one payload byte in the certified prefix, one in
  // the uncertified tail.
  std::string log = ReadFileBytes(LogPath());
  ASSERT_GE(log.size(), sealed);
  uint64_t prefix_hit = PayloadByteIn(log, 0, certified);
  uint64_t tail_hit = PayloadByteIn(log, certified, sealed);
  ASSERT_GT(prefix_hit, 0u);
  ASSERT_GT(tail_hit, 0u);
  FlipByteAt(LogPath(), prefix_hit);
  FlipByteAt(LogPath(), tail_hit);

  // Concurrent load for the whole detection phase.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([this, t, w, &stop, &commits] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        auto txn = db_->Begin();
        if (!txn.ok()) continue;
        std::string key = "w" + std::to_string(w) + "-" + std::to_string(i);
        if (db_->Put(txn.value(), t, key, "load").ok() &&
            db_->Commit(txn.value()).ok()) {
          commits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    workers.emplace_back([this, t, &stop, &reads] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = db_->BeginSnapshot();
        if (!snap.ok()) continue;
        std::unique_ptr<SnapshotReader> reader(snap.value());
        std::string value;
        for (int i = 0; i < 10; ++i) {
          if (reader->Get(t, "seed" + std::to_string(i), &value).ok()) {
            reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // Incremental run: certifies forward from `certified`, so the first
  // window it replays contains the tail edit.
  auto inc = db_->AuditIncremental(2);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  EXPECT_FALSE(inc.value().ok())
      << "tail tamper escaped incremental certification";

  // Full replay from the epoch seed catches the certified-prefix edit.
  auto full = db_->AuditFullReplay(2);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full.value().ok())
      << "certified-prefix tamper escaped full replay";

  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  EXPECT_GT(commits.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace complydb
