// Dedicated tests for the §IV-C tree integrity checker: every corruption
// class a file editor can produce must surface as a finding.

#include "btree/integrity.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "btree/btree.h"
#include "common/coding.h"
#include "storage/disk_manager.h"

namespace complydb {
namespace {

class IntegrityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string path = ::testing::TempDir() + "/integ_" +
                       ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name() +
                       ".db";
    std::filesystem::remove(path);
    auto d = DiskManager::Open(path);
    ASSERT_TRUE(d.ok());
    disk_.reset(d.value());
    cache_ = std::make_unique<BufferCache>(disk_.get(), 64);
    auto root = Btree::Create(cache_.get(), kTreeId);
    ASSERT_TRUE(root.ok());
    BtreeEnv env;
    env.cache = cache_.get();
    tree_ = std::make_unique<Btree>(env, kTreeId, root.value());
  }

  // Populates enough keys for a multi-level tree.
  void Fill(int n) {
    for (int i = 0; i < n; ++i) {
      TupleData t;
      char key[16];
      std::snprintf(key, sizeof(key), "key%06d", i);
      t.key = key;
      t.value = std::string(40, 'v');
      t.start = static_cast<uint64_t>(i + 1);
      t.stamped = true;
      ASSERT_TRUE(tree_->InsertVersion(nullptr, t, nullptr, nullptr).ok());
    }
  }

  size_t ProblemCount() {
    auto r = CheckTreeIntegrity(cache_.get(), kTreeId, tree_->root());
    EXPECT_TRUE(r.ok());
    return r.ok() ? r.value().problems.size() : 0;
  }

  // Finds the first page of the given type belonging to the tree.
  PageId FindPage(PageType type, uint16_t min_slots = 1) {
    for (PageId pgno = 0; pgno < disk_->PageCount(); ++pgno) {
      Page* page = nullptr;
      if (!cache_->FetchPage(pgno, &page).ok()) continue;
      bool match = page->IsFormatted() && page->type() == type &&
                   page->tree_id() == kTreeId &&
                   page->slot_count() >= min_slots;
      cache_->Unpin(pgno, false);
      if (match) return pgno;
    }
    return kInvalidPage;
  }

  static constexpr uint32_t kTreeId = 9;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<Btree> tree_;
};

TEST_F(IntegrityTest, CleanTreeHasNoProblems) {
  Fill(1200);
  EXPECT_EQ(ProblemCount(), 0u);
  auto r = CheckTreeIntegrity(cache_.get(), kTreeId, tree_->root());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().tuple_count, 1200u);
  EXPECT_GT(r.value().leaf_pages, 10u);
  EXPECT_GE(r.value().internal_pages, 1u);
}

TEST_F(IntegrityTest, WrongLevelFlagged) {
  Fill(1200);
  PageId leaf = FindPage(PageType::kBtreeLeaf);
  ASSERT_NE(leaf, kInvalidPage);
  Page* page = nullptr;
  ASSERT_TRUE(cache_->FetchPage(leaf, &page).ok());
  page->set_level(3);
  cache_->Unpin(leaf, true);
  EXPECT_GT(ProblemCount(), 0u);
}

TEST_F(IntegrityTest, WrongTreeIdFlagged) {
  Fill(1200);
  PageId leaf = FindPage(PageType::kBtreeLeaf);
  ASSERT_NE(leaf, kInvalidPage);
  Page* page = nullptr;
  ASSERT_TRUE(cache_->FetchPage(leaf, &page).ok());
  page->set_tree_id(kTreeId + 1);
  cache_->Unpin(leaf, true);
  EXPECT_GT(ProblemCount(), 0u);
}

TEST_F(IntegrityTest, OrderNumberBeyondCounterFlagged) {
  Fill(50);
  PageId leaf = FindPage(PageType::kBtreeLeaf);
  ASSERT_NE(leaf, kInvalidPage);
  Page* page = nullptr;
  ASSERT_TRUE(cache_->FetchPage(leaf, &page).ok());
  page->set_next_order_number(0);  // all stored order numbers now exceed it
  cache_->Unpin(leaf, true);
  EXPECT_GT(ProblemCount(), 0u);
}

TEST_F(IntegrityTest, DuplicateVersionOrderFlagged) {
  Fill(50);
  // Duplicate an existing record (same key, same start) by inserting a
  // copy right next to it — equal (key, start) breaks strict ordering.
  PageId leaf = FindPage(PageType::kBtreeLeaf, 2);
  ASSERT_NE(leaf, kInvalidPage);
  Page* page = nullptr;
  ASSERT_TRUE(cache_->FetchPage(leaf, &page).ok());
  std::string rec(page->RecordAt(0).data(), page->RecordAt(0).size());
  ASSERT_TRUE(page->InsertRecord(1, rec).ok());
  cache_->Unpin(leaf, true);
  EXPECT_GT(ProblemCount(), 0u);
}

TEST_F(IntegrityTest, EmptyInternalNodeFlagged) {
  Fill(1200);
  PageId internal = FindPage(PageType::kBtreeInternal, 2);
  ASSERT_NE(internal, kInvalidPage);
  Page* page = nullptr;
  ASSERT_TRUE(cache_->FetchPage(internal, &page).ok());
  while (page->slot_count() > 0) {
    ASSERT_TRUE(page->EraseRecord(0).ok());
  }
  cache_->Unpin(internal, true);
  EXPECT_GT(ProblemCount(), 0u);
}

TEST_F(IntegrityTest, SeparatorOrderFlagged) {
  Fill(1200);
  // Swap two separators on an internal node: separator ordering breaks.
  PageId internal = FindPage(PageType::kBtreeInternal, 3);
  ASSERT_NE(internal, kInvalidPage);
  Page* page = nullptr;
  ASSERT_TRUE(cache_->FetchPage(internal, &page).ok());
  std::string e1(page->RecordAt(1).data(), page->RecordAt(1).size());
  std::string e2(page->RecordAt(2).data(), page->RecordAt(2).size());
  ASSERT_TRUE(page->EraseRecord(1).ok());
  ASSERT_TRUE(page->InsertRecord(1, e2).ok());
  ASSERT_TRUE(page->EraseRecord(2).ok());
  ASSERT_TRUE(page->InsertRecord(2, e1).ok());
  cache_->Unpin(internal, true);
  EXPECT_GT(ProblemCount(), 0u);
}

TEST_F(IntegrityTest, CollectsMultipleProblems) {
  Fill(1200);
  // Two independent corruptions: both must be reported (the audit
  // enumerates tampered sites rather than stopping at the first).
  PageId leaf = FindPage(PageType::kBtreeLeaf);
  Page* page = nullptr;
  ASSERT_TRUE(cache_->FetchPage(leaf, &page).ok());
  page->set_tree_id(kTreeId + 1);
  cache_->Unpin(leaf, true);

  PageId internal = FindPage(PageType::kBtreeInternal, 2);
  ASSERT_TRUE(cache_->FetchPage(internal, &page).ok());
  IndexEntry e;
  ASSERT_TRUE(DecodeIndexEntry(page->RecordAt(1), &e).ok());
  e.key.back() = static_cast<char>(e.key.back() + 1);
  ASSERT_TRUE(page->ReplaceRecord(1, EncodeIndexEntry(e)).ok());
  cache_->Unpin(internal, true);

  EXPECT_GE(ProblemCount(), 2u);
}

}  // namespace
}  // namespace complydb
