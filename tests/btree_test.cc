#include "btree/btree.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <memory>
#include <string>
#include <vector>

#include "btree/integrity.h"
#include "common/random.h"
#include "storage/buffer_cache.h"
#include "storage/disk_manager.h"

namespace complydb {
namespace {

class BtreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string base = ::testing::TempDir() + "/btree_" +
                       ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    std::filesystem::remove(base + ".db");
    auto d = DiskManager::Open(base + ".db");
    ASSERT_TRUE(d.ok());
    disk_.reset(d.value());
    cache_ = std::make_unique<BufferCache>(disk_.get(), 64);
    auto root = Btree::Create(cache_.get(), kTreeId);
    ASSERT_TRUE(root.ok());
    BtreeEnv env;
    env.cache = cache_.get();
    tree_ = std::make_unique<Btree>(env, kTreeId, root.value());
  }

  // Inserts a committed (stamped) version.
  void Put(const std::string& key, const std::string& value, uint64_t start) {
    TupleData t;
    t.key = key;
    t.value = value;
    t.start = start;
    t.stamped = true;
    Status s = tree_->InsertVersion(nullptr, t, nullptr, nullptr);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  void Del(const std::string& key, uint64_t start) {
    TupleData t;
    t.key = key;
    t.start = start;
    t.eol = true;
    t.stamped = true;
    Status s = tree_->InsertVersion(nullptr, t, nullptr, nullptr);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  void ExpectIntegrityOk() {
    auto r = CheckTreeIntegrity(cache_.get(), kTreeId, tree_->root());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value().ok())
        << "first problem: "
        << (r.value().problems.empty() ? "" : r.value().problems[0]);
  }

  static constexpr uint32_t kTreeId = 7;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<Btree> tree_;
};

TEST_F(BtreeTest, InsertAndGetLatest) {
  Put("alpha", "v1", 10);
  TupleData t;
  ASSERT_TRUE(tree_->GetLatest("alpha", &t).ok());
  EXPECT_EQ(t.value, "v1");
  EXPECT_EQ(t.start, 10u);
  EXPECT_TRUE(tree_->GetLatest("missing", &t).IsNotFound());
}

TEST_F(BtreeTest, UpdateCreatesNewVersion) {
  Put("k", "v1", 10);
  Put("k", "v2", 20);
  Put("k", "v3", 30);
  TupleData t;
  ASSERT_TRUE(tree_->GetLatest("k", &t).ok());
  EXPECT_EQ(t.value, "v3");

  std::vector<TupleData> versions;
  ASSERT_TRUE(tree_->GetVersions("k", &versions).ok());
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0].value, "v1");
  EXPECT_EQ(versions[1].value, "v2");
  EXPECT_EQ(versions[2].value, "v3");
}

TEST_F(BtreeTest, DeleteIsEndOfLifeVersion) {
  Put("k", "v1", 10);
  Del("k", 20);
  TupleData t;
  EXPECT_TRUE(tree_->GetLatest("k", &t).IsNotFound());
  // History is preserved — the point of a transaction-time DB.
  std::vector<TupleData> versions;
  ASSERT_TRUE(tree_->GetVersions("k", &versions).ok());
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_FALSE(versions[0].eol);
  EXPECT_TRUE(versions[1].eol);
}

TEST_F(BtreeTest, ReinsertAfterDelete) {
  Put("k", "v1", 10);
  Del("k", 20);
  Put("k", "v2", 30);
  TupleData t;
  ASSERT_TRUE(tree_->GetLatest("k", &t).ok());
  EXPECT_EQ(t.value, "v2");
}

TEST_F(BtreeTest, DuplicateVersionRejected) {
  Put("k", "v1", 10);
  TupleData t;
  t.key = "k";
  t.value = "again";
  t.start = 10;
  EXPECT_TRUE(
      tree_->InsertVersion(nullptr, t, nullptr, nullptr).IsInvalidArgument());
}

TEST_F(BtreeTest, ManyKeysForceMultiLevelSplits) {
  const int kN = 2000;
  uint64_t start = 1;
  for (int i = 0; i < kN; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    Put(key, "value-" + std::to_string(i), start++);
  }
  ExpectIntegrityOk();

  auto stats = tree_->CountPages();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().leaf_pages, 10u);
  EXPECT_GE(stats.value().internal_pages, 1u);

  for (int i = 0; i < kN; i += 97) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    TupleData t;
    ASSERT_TRUE(tree_->GetLatest(key, &t).ok()) << key;
    EXPECT_EQ(t.value, "value-" + std::to_string(i));
  }
}

TEST_F(BtreeTest, SingleKeyManyVersionsSpansPages) {
  const int kN = 300;  // ~36 tuples/page -> versions span many leaves
  for (int i = 0; i < kN; ++i) {
    Put("hotkey", "v" + std::to_string(i), static_cast<uint64_t>(i + 1));
  }
  ExpectIntegrityOk();
  std::vector<TupleData> versions;
  ASSERT_TRUE(tree_->GetVersions("hotkey", &versions).ok());
  ASSERT_EQ(versions.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(versions[i].start, static_cast<uint64_t>(i + 1));
  }
  TupleData t;
  ASSERT_TRUE(tree_->GetLatest("hotkey", &t).ok());
  EXPECT_EQ(t.value, "v" + std::to_string(kN - 1));
}

TEST_F(BtreeTest, ScanAllInOrder) {
  Put("b", "2", 10);
  Put("a", "1", 20);
  Put("c", "3", 30);
  Put("a", "1b", 40);
  std::vector<std::pair<std::string, uint64_t>> seen;
  ASSERT_TRUE(tree_
                  ->ScanAll([&](PageId, const TupleData& t) {
                    seen.emplace_back(t.key, t.start);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], (std::pair<std::string, uint64_t>{"a", 20}));
  EXPECT_EQ(seen[1], (std::pair<std::string, uint64_t>{"a", 40}));
  EXPECT_EQ(seen[2], (std::pair<std::string, uint64_t>{"b", 10}));
  EXPECT_EQ(seen[3], (std::pair<std::string, uint64_t>{"c", 30}));
}

TEST_F(BtreeTest, ScanCurrentEmitsLatestNonEol) {
  Put("a", "a1", 10);
  Put("a", "a2", 20);
  Put("b", "b1", 30);
  Del("b", 40);
  Put("c", "c1", 50);
  std::vector<std::string> seen;
  ASSERT_TRUE(tree_
                  ->ScanCurrent([&](const TupleData& t) {
                    seen.push_back(t.key + "=" + t.value);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "a=a2");
  EXPECT_EQ(seen[1], "c=c1");
}

TEST_F(BtreeTest, ScanRangeCurrentRespectsBounds) {
  for (char c = 'a'; c <= 'h'; ++c) {
    Put(std::string(1, c), "v", static_cast<uint64_t>(c));
  }
  std::vector<std::string> seen;
  ASSERT_TRUE(tree_
                  ->ScanRangeCurrent("c", "f",
                                     [&](const TupleData& t) {
                                       seen.push_back(t.key);
                                       return Status::OK();
                                     })
                  .ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "c");
  EXPECT_EQ(seen[2], "e");
}

TEST_F(BtreeTest, StampVersionUpgradesStart) {
  TupleData t;
  t.key = "k";
  t.value = "v";
  t.start = 1000;  // txn id
  t.stamped = false;
  ASSERT_TRUE(tree_->InsertVersion(nullptr, t, nullptr, nullptr).ok());
  ASSERT_TRUE(tree_->StampVersion(nullptr, "k", 1000, 2000).ok());
  TupleData got;
  ASSERT_TRUE(tree_->GetLatest("k", &got).ok());
  EXPECT_TRUE(got.stamped);
  EXPECT_EQ(got.start, 2000u);
  // Idempotent re-stamp (recovery path).
  EXPECT_TRUE(tree_->StampVersion(nullptr, "k", 2000, 2000).ok());
}

TEST_F(BtreeTest, RemoveVersionErasesPhysically) {
  Put("k", "v1", 10);
  Put("k", "v2", 20);
  ASSERT_TRUE(tree_->RemoveVersion(nullptr, "k", 20, false, 0).ok());
  TupleData t;
  ASSERT_TRUE(tree_->GetLatest("k", &t).ok());
  EXPECT_EQ(t.value, "v1");
  EXPECT_TRUE(
      tree_->RemoveVersion(nullptr, "k", 999, false, 0).IsNotFound());
}

TEST_F(BtreeTest, IntegrityDetectsLeafSwap) {
  // Fig. 2(b): swap two leaf elements so a lookup fails.
  Put("a", "1", 10);
  Put("b", "2", 20);
  Put("c", "3", 30);
  Page* page = nullptr;
  ASSERT_TRUE(cache_->FetchPage(tree_->root(), &page).ok());
  std::string rec0(page->RecordAt(0).data(), page->RecordAt(0).size());
  std::string rec1(page->RecordAt(1).data(), page->RecordAt(1).size());
  ASSERT_TRUE(page->EraseRecord(0).ok());
  ASSERT_TRUE(page->InsertRecord(0, rec1).ok());
  ASSERT_TRUE(page->EraseRecord(1).ok());
  ASSERT_TRUE(page->InsertRecord(1, rec0).ok());
  cache_->Unpin(tree_->root(), true);

  auto r = CheckTreeIntegrity(cache_.get(), kTreeId, tree_->root());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().ok());
}

TEST_F(BtreeTest, IntegrityDetectsTamperedInternalKey) {
  // Fig. 2(c): bump an internal separator beyond its child's minimum.
  const int kN = 500;
  for (int i = 0; i < kN; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    Put(key, "v", static_cast<uint64_t>(i + 1));
  }
  Page* root = nullptr;
  ASSERT_TRUE(cache_->FetchPage(tree_->root(), &root).ok());
  ASSERT_EQ(root->type(), PageType::kBtreeInternal);
  ASSERT_GE(root->slot_count(), 2);
  IndexEntry e;
  ASSERT_TRUE(DecodeIndexEntry(root->RecordAt(1), &e).ok());
  e.key.back() = static_cast<char>(e.key.back() + 1);  // separator now too big
  ASSERT_TRUE(root->ReplaceRecord(1, EncodeIndexEntry(e)).ok());
  cache_->Unpin(tree_->root(), true);

  auto r = CheckTreeIntegrity(cache_.get(), kTreeId, tree_->root());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().ok());
}

TEST_F(BtreeTest, IntegrityDetectsBrokenSiblingChain) {
  const int kN = 500;
  for (int i = 0; i < kN; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    Put(key, "v", static_cast<uint64_t>(i + 1));
  }
  // Find the leftmost leaf and cut its sibling pointer.
  Page* root = nullptr;
  ASSERT_TRUE(cache_->FetchPage(tree_->root(), &root).ok());
  IndexEntry e;
  ASSERT_TRUE(DecodeIndexEntry(root->RecordAt(0), &e).ok());
  cache_->Unpin(tree_->root(), false);
  PageId leaf_pgno = e.child;
  Page* leaf = nullptr;
  ASSERT_TRUE(cache_->FetchPage(leaf_pgno, &leaf).ok());
  while (leaf->type() != PageType::kBtreeLeaf) {
    IndexEntry e2;
    ASSERT_TRUE(DecodeIndexEntry(leaf->RecordAt(0), &e2).ok());
    cache_->Unpin(leaf_pgno, false);
    leaf_pgno = e2.child;
    ASSERT_TRUE(cache_->FetchPage(leaf_pgno, &leaf).ok());
  }
  leaf->set_right_sibling(kInvalidPage);
  cache_->Unpin(leaf_pgno, true);

  auto r = CheckTreeIntegrity(cache_.get(), kTreeId, tree_->root());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().ok());
}

// Property test: random multi-version workload mirrors a model; integrity
// holds throughout; version history is exact.
class BtreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BtreePropertyTest, MatchesModel) {
  std::string base = ::testing::TempDir() + "/btree_prop_" +
                     std::to_string(GetParam());
  std::filesystem::remove(base + ".db");
  auto d = DiskManager::Open(base + ".db");
  ASSERT_TRUE(d.ok());
  std::unique_ptr<DiskManager> disk(d.value());
  BufferCache cache(disk.get(), 32);
  auto root = Btree::Create(&cache, 1);
  ASSERT_TRUE(root.ok());
  BtreeEnv env;
  env.cache = &cache;
  Btree tree(env, 1, root.value());

  Random rng(GetParam());
  // model: key -> ordered list of (start, value, eol)
  std::map<std::string, std::vector<std::tuple<uint64_t, std::string, bool>>>
      model;
  uint64_t start = 1;

  for (int step = 0; step < 1500; ++step) {
    std::string key = "k" + std::to_string(rng.Uniform(80));
    uint64_t op = rng.Uniform(10);
    if (op < 8) {
      std::string value = rng.Bytes(1 + rng.Uniform(50));
      TupleData t;
      t.key = key;
      t.value = value;
      t.start = start;
      t.stamped = true;
      ASSERT_TRUE(tree.InsertVersion(nullptr, t, nullptr, nullptr).ok());
      model[key].emplace_back(start, value, false);
    } else {
      // Delete if currently live.
      auto it = model.find(key);
      bool live = it != model.end() && !it->second.empty() &&
                  !std::get<2>(it->second.back());
      if (live) {
        TupleData t;
        t.key = key;
        t.start = start;
        t.eol = true;
        t.stamped = true;
        ASSERT_TRUE(tree.InsertVersion(nullptr, t, nullptr, nullptr).ok());
        model[key].emplace_back(start, "", true);
      }
    }
    ++start;
  }

  auto report = CheckTreeIntegrity(&cache, 1, tree.root());
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().ok())
      << report.value().problems.size() << " problems; first: "
      << report.value().problems[0];

  for (const auto& [key, history] : model) {
    std::vector<TupleData> versions;
    ASSERT_TRUE(tree.GetVersions(key, &versions).ok());
    ASSERT_EQ(versions.size(), history.size()) << key;
    for (size_t i = 0; i < history.size(); ++i) {
      EXPECT_EQ(versions[i].start, std::get<0>(history[i]));
      EXPECT_EQ(versions[i].value, std::get<1>(history[i]));
      EXPECT_EQ(versions[i].eol, std::get<2>(history[i]));
    }
    TupleData latest;
    Status s = tree.GetLatest(key, &latest);
    bool live = !std::get<2>(history.back());
    if (live) {
      ASSERT_TRUE(s.ok()) << key;
      EXPECT_EQ(latest.value, std::get<1>(history.back()));
    } else {
      EXPECT_TRUE(s.IsNotFound()) << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BtreePropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace complydb
