// Asynchronous compliance-log shipping: determinism and crash windows.
//
// The shipper drains a FIFO ring on a single thread, so the bytes it
// appends to L must be exactly the bytes sync mode would have written —
// the first test proves this at the file level. The crash tests kill the
// database (destructor without Close) at each interesting point relative
// to the durability barriers: with records still pending in the ring,
// after an eviction forced the dependent-pwrite barrier, and right after
// a commit's full-flush barrier. In every window the auditor's verdict
// must match what sync mode produces for the same crash.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compliance/compliance_log.h"
#include "db/compliant_db.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

// A group-commit window far longer than any test: background drains never
// fire, so records sit in the ring until a barrier (or a crash) hits them.
constexpr uint64_t kHugeWindow = 10ull * kMinute;

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// The env override would force async for every Open in this binary (the
// TSan CI job sets it); these tests pick the mode per-options, so the
// fixture clears it and restores the previous value afterwards.
class AsyncShippingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* env = std::getenv("COMPLYDB_COMPLIANCE_ASYNC");
    if (env != nullptr) saved_env_ = env;
    ::unsetenv("COMPLYDB_COMPLIANCE_ASYNC");
  }
  void TearDown() override {
    if (saved_env_.has_value()) {
      ::setenv("COMPLYDB_COMPLIANCE_ASYNC", saved_env_->c_str(), 1);
    }
  }

  DbOptions MakeOptions(const std::string& dir, bool async,
                        size_t cache_pages = 32,
                        uint64_t window_micros = kHugeWindow) {
    DbOptions opts;
    opts.dir = dir;
    opts.cache_pages = cache_pages;
    opts.clock = clock_.get();
    opts.compliance.enabled = true;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    opts.compliance.async_shipping = async;
    opts.compliance.group_commit_window_micros = window_micros;
    return opts;
  }

  std::unique_ptr<CompliantDB> Open(const DbOptions& opts) {
    auto r = CompliantDB::Open(opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::unique_ptr<CompliantDB>(r.ok() ? r.value() : nullptr);
  }

  std::string FreshDir(const std::string& name) {
    std::string dir = ::testing::TempDir() + "/async_ship_" + name;
    std::filesystem::remove_all(dir);
    return dir;
  }

  std::unique_ptr<SimulatedClock> clock_ =
      std::make_unique<SimulatedClock>();
  std::optional<std::string> saved_env_;
};

// Runs a fixed mixed workload: single puts, multi-key transactions, an
// abort, deletes, and clock advances that trigger regret-interval forcing
// (dirty-page write-out exercises the pwrite barrier mid-workload).
void RunWorkload(CompliantDB* db, uint32_t table) {
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 25; ++i) {
      auto txn = db->Begin();
      ASSERT_TRUE(txn.ok());
      std::string key = "key" + std::to_string((round * 25 + i) % 40);
      std::string value(40 + (i * 7) % 120, static_cast<char>('a' + i % 26));
      ASSERT_TRUE(db->Put(txn.value(), table, key, value).ok());
      ASSERT_TRUE(db->Commit(txn.value()).ok());
    }
    {
      auto txn = db->Begin();
      ASSERT_TRUE(txn.ok());
      for (int i = 0; i < 5; ++i) {
        std::string key = "multi" + std::to_string(round * 5 + i);
        ASSERT_TRUE(db->Put(txn.value(), table, key, "batch").ok());
      }
      if (round % 2 == 0) {
        ASSERT_TRUE(db->Commit(txn.value()).ok());
      } else {
        ASSERT_TRUE(db->Abort(txn.value()).ok());
      }
    }
    if (round >= 2) {
      auto txn = db->Begin();
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(
          db->Delete(txn.value(), table, "key" + std::to_string(round)).ok());
      ASSERT_TRUE(db->Commit(txn.value()).ok());
    }
    ASSERT_TRUE(db->AdvanceClock(6 * kMinute).ok());
  }
}

// With a single-threaded FIFO drain, async mode must produce the same L
// (and, after a clean close, the same stamp index) byte for byte.
TEST_F(AsyncShippingTest, LogBytesIdenticalSyncVsAsync) {
  std::string contents[2][2];  // [mode][L, Lidx]
  for (int mode = 0; mode < 2; ++mode) {
    bool async = mode == 1;
    std::string dir = FreshDir(async ? "det_async" : "det_sync");
    clock_ = std::make_unique<SimulatedClock>();  // identical stamps per run
    auto db = Open(MakeOptions(dir, async, /*cache_pages=*/16,
                               /*window_micros=*/200));
    ASSERT_NE(db, nullptr);
    auto t = db->CreateTable("det");
    ASSERT_TRUE(t.ok());
    RunWorkload(db.get(), t.value());
    ASSERT_TRUE(db->Close().ok());
    db.reset();
    contents[mode][0] = ReadFileBytes(dir + "/worm/" + LogFileName(0));
    contents[mode][1] = ReadFileBytes(dir + "/worm/" + StampIndexFileName(0));
  }
  ASSERT_FALSE(contents[0][0].empty());
  EXPECT_EQ(contents[0][0], contents[1][0]) << "L diverged sync vs async";
  EXPECT_EQ(contents[0][1], contents[1][1]) << "Lidx diverged sync vs async";
}

// Crash window 1: kill between ring-append and WORM flush, before any
// dependent pwrite. Read-hash records queue behind the huge window (clean-
// page evictions fire no barrier), so async loses the tail that sync made
// durable — the on-disk L sizes prove the window was real — yet the
// auditor's verdict must match sync: a lost READ_HASH is indistinguishable
// from crashing before the read.
TEST_F(AsyncShippingTest, CrashWithRecordsPendingInRing) {
  uintmax_t log_sizes[2] = {0, 0};
  for (int mode = 0; mode < 2; ++mode) {
    bool async = mode == 1;
    std::string dir = FreshDir(async ? "ring_async" : "ring_sync");
    clock_ = std::make_unique<SimulatedClock>();
    uint32_t table = 0;
    {
      DbOptions opts = MakeOptions(dir, async, /*cache_pages=*/8);
      opts.compliance.hash_on_read = true;
      auto db = Open(opts);
      ASSERT_NE(db, nullptr);
      auto t = db->CreateTable("ring");
      ASSERT_TRUE(t.ok());
      table = t.value();
      for (int i = 0; i < 300; ++i) {
        auto txn = db->Begin();
        ASSERT_TRUE(txn.ok());
        ASSERT_TRUE(db->Put(txn.value(), table, "seed" + std::to_string(i),
                            std::string(200, 'x'))
                        .ok());
        ASSERT_TRUE(db->Commit(txn.value()).ok());
      }
      // Quiesce: everything so far durable, all pages clean.
      ASSERT_TRUE(db->FlushAll().ok());
      // Cache misses on clean pages: READ_HASH records enter the ring but
      // no pwrite barrier and no commit barrier ever drains them.
      std::string value;
      for (int i = 0; i < 300; ++i) {
        ASSERT_TRUE(db->Get(table, "seed" + std::to_string(i), &value).ok());
      }
      // Crash: destructor without Close drops the ring.
    }
    log_sizes[mode] =
        std::filesystem::file_size(dir + "/worm/" + LogFileName(0));
    auto db = Open(MakeOptions(dir, async));
    ASSERT_NE(db, nullptr);
    EXPECT_TRUE(db->recovered_from_crash());
    std::string value;
    EXPECT_TRUE(db->Get(table, "seed3", &value).ok());
    auto report = db->Audit();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report.value().ok())
        << (async ? "async" : "sync") << " audit failed; first problem: "
        << report.value().problems[0];
  }
  // The crash really hit the window: async lost queued records sync kept.
  EXPECT_LT(log_sizes[1], log_sizes[0]);
}

// Crash window 2: kill after dependent pwrites. The tiny cache evicts
// dirty pages throughout the storm, so the pwrite barrier repeatedly
// drains the ring (any page on disk has its records durable on WORM);
// the crash then takes the still-queued tail of post-storm read hashes.
// Committed data must survive and the audit must pass in both modes.
TEST_F(AsyncShippingTest, CrashAfterDependentPageWrites) {
  for (int mode = 0; mode < 2; ++mode) {
    bool async = mode == 1;
    std::string dir = FreshDir(async ? "evict_async" : "evict_sync");
    clock_ = std::make_unique<SimulatedClock>();
    uint32_t table = 0;
    {
      DbOptions opts = MakeOptions(dir, async, /*cache_pages=*/8);
      opts.compliance.hash_on_read = true;
      auto db = Open(opts);
      ASSERT_NE(db, nullptr);
      auto t = db->CreateTable("evict");
      ASSERT_TRUE(t.ok());
      table = t.value();
      // Steal/no-force: dirty pages from these commits get evicted and
      // pwritten while later records are still queued, exercising the
      // per-page barrier continuously.
      for (int i = 0; i < 200; ++i) {
        auto txn = db->Begin();
        ASSERT_TRUE(txn.ok());
        ASSERT_TRUE(db->Put(txn.value(), table,
                            "key" + std::to_string(i * 7919 % 1000),
                            std::string(120, 'c'))
                        .ok());
        ASSERT_TRUE(db->Commit(txn.value()).ok());
      }
      // A tail of READ_HASH records that never meets a barrier.
      std::string value;
      for (int i = 0; i < 40; ++i) {
        ASSERT_TRUE(
            db->Get(table, "key" + std::to_string(i * 7919 % 1000), &value)
                .ok());
      }
      // Crash with evicted pages on disk and records pending in the ring.
    }
    auto db = Open(MakeOptions(dir, async));
    ASSERT_NE(db, nullptr);
    EXPECT_TRUE(db->recovered_from_crash());
    std::string value;
    EXPECT_TRUE(
        db->Get(table, "key" + std::to_string(12 * 7919 % 1000), &value).ok());
    auto report = db->Audit();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report.value().ok())
        << (async ? "async" : "sync") << " audit failed; first problem: "
        << report.value().problems[0];
  }
}

// Crash window 3: the commit barrier returned, so the STAMP_TRANS (and
// everything queued before it) is durable on WORM even though the huge
// window guarantees no background drain ever ran. The committed data must
// survive the crash and audit clean.
TEST_F(AsyncShippingTest, CommittedWorkSurvivesCrashAfterCommitBarrier) {
  std::string dir = FreshDir("commit_barrier");
  clock_ = std::make_unique<SimulatedClock>();
  uint32_t table = 0;
  {
    auto db = Open(MakeOptions(dir, /*async=*/true));
    ASSERT_NE(db, nullptr);
    auto t = db->CreateTable("barrier");
    ASSERT_TRUE(t.ok());
    table = t.value();
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(db->Put(txn.value(), table, "durable", "after-barrier").ok());
    ASSERT_TRUE(db->Commit(txn.value()).ok());
    // Crash immediately after the commit barrier returned.
  }
  auto db = Open(MakeOptions(dir, /*async=*/true));
  ASSERT_NE(db, nullptr);
  std::string value;
  ASSERT_TRUE(db->Get(table, "durable", &value).ok());
  EXPECT_EQ(value, "after-barrier");
  auto report = db->Audit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ok()) << "first problem: "
                                   << report.value().problems[0];
}

// Scans must observe records still in flight: the log read path waits for
// the shipper to drain before scanning (an audit would otherwise race).
TEST_F(AsyncShippingTest, ScanSeesRecordsQueuedBehindHugeWindow) {
  std::string dir = FreshDir("scan_drain");
  auto db = Open(MakeOptions(dir, /*async=*/true));
  ASSERT_NE(db, nullptr);
  auto t = db->CreateTable("scan");
  ASSERT_TRUE(t.ok());
  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db->Put(txn.value(), t.value(), "k", "v").ok());
  ASSERT_TRUE(db->Commit(txn.value()).ok());
  auto stats = db->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().compliance_log_records, 0u);
  ASSERT_TRUE(db->Close().ok());
}

// COMPLYDB_COMPLIANCE_ASYNC turns shipping on without recompiling or
// replumbing options ("1" = on, "0"/empty = leave options alone).
TEST_F(AsyncShippingTest, EnvVarOverridesAsyncOption) {
  {
    ::setenv("COMPLYDB_COMPLIANCE_ASYNC", "1", 1);
    auto db = Open(MakeOptions(FreshDir("env_on"), /*async=*/false));
    ASSERT_NE(db, nullptr);
    EXPECT_TRUE(db->compliance_logger()->options().async_shipping);
    ASSERT_TRUE(db->Close().ok());
  }
  {
    ::setenv("COMPLYDB_COMPLIANCE_ASYNC", "0", 1);
    auto db = Open(MakeOptions(FreshDir("env_off"), /*async=*/false));
    ASSERT_NE(db, nullptr);
    EXPECT_FALSE(db->compliance_logger()->options().async_shipping);
    ASSERT_TRUE(db->Close().ok());
  }
  ::unsetenv("COMPLYDB_COMPLIANCE_ASYNC");
}

}  // namespace
}  // namespace complydb
