// Time-split B+-trees with WORM migration (§VI) and auditable shredding
// (§VIII).

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "crypto/sha256.h"
#include "db/compliant_db.h"
#include "tsb/tsb_policy.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;
constexpr uint64_t kDay = 24ull * 3600 * 1'000'000;

// --- split policy unit tests ---

Page MakeLeafWithKeys(const std::vector<std::string>& keys) {
  Page p;
  p.Format(1, PageType::kBtreeLeaf, 1, 0);
  uint64_t start = 1;
  for (const auto& k : keys) {
    TupleData t;
    t.key = k;
    t.value = "v";
    t.start = start++;
    t.stamped = true;
    t.order_no = p.TakeOrderNumber();
    EXPECT_TRUE(p.AppendRecord(EncodeTuple(t)).ok());
  }
  return p;
}

TEST(TimeSplitPolicyTest, SkewedPageTimeSplits) {
  // 2 distinct keys, 20 tuples: fraction 0.1 < threshold 0.5 -> time split.
  std::vector<std::string> keys;
  for (int i = 0; i < 10; ++i) keys.push_back("aaa");
  for (int i = 0; i < 10; ++i) keys.push_back("bbb");
  std::sort(keys.begin(), keys.end());
  Page p = MakeLeafWithKeys(keys);
  TimeSplitPolicy policy(0.5);
  EXPECT_EQ(policy.Decide(p), SplitKind::kTimeSplit);
}

TEST(TimeSplitPolicyTest, UniformPageKeySplits) {
  std::vector<std::string> keys;
  for (int i = 0; i < 20; ++i) keys.push_back("key" + std::to_string(i));
  std::sort(keys.begin(), keys.end());
  Page p = MakeLeafWithKeys(keys);
  TimeSplitPolicy policy(0.5);
  EXPECT_EQ(policy.Decide(p), SplitKind::kKeySplit);
}

TEST(TimeSplitPolicyTest, ThresholdBoundary) {
  // 10 distinct / 20 total = 0.5 exactly: not < threshold -> key split.
  std::vector<std::string> keys;
  for (int i = 0; i < 10; ++i) {
    keys.push_back("key" + std::to_string(i));
    keys.push_back("key" + std::to_string(i));
  }
  std::sort(keys.begin(), keys.end());
  Page p = MakeLeafWithKeys(keys);
  EXPECT_EQ(TimeSplitPolicy(0.5).Decide(p), SplitKind::kKeySplit);
  EXPECT_EQ(TimeSplitPolicy(0.51).Decide(p), SplitKind::kTimeSplit);
  EXPECT_EQ(TimeSplitPolicy(0.0).Decide(p), SplitKind::kKeySplit);
}

// --- integration fixtures ---

class TsbVacuumTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/tsbv_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  DbOptions MakeOptions(bool tsb, double threshold = 0.5) {
    DbOptions opts;
    opts.dir = dir_;
    opts.cache_pages = 64;
    opts.clock = &clock_;
    opts.compliance.enabled = true;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    opts.tsb_enabled = tsb;
    opts.tsb_split_threshold = threshold;
    return opts;
  }

  void OpenDb(const DbOptions& opts) {
    auto r = CompliantDB::Open(opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    db_.reset(r.value());
  }

  void PutCommitted(uint32_t table, const std::string& key,
                    const std::string& value) {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(db_->Put(txn.value(), table, key, value).ok());
    ASSERT_TRUE(db_->Commit(txn.value()).ok());
  }

  void ExpectAuditOk() {
    auto report = db_->Audit();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report.value().ok())
        << "first problem: " << report.value().problems[0];
  }

  SimulatedClock clock_;
  std::string dir_;
  std::unique_ptr<CompliantDB> db_;
};

TEST_F(TsbVacuumTest, HotKeyUpdatesMigrateToWorm) {
  OpenDb(MakeOptions(/*tsb=*/true, 0.5));
  auto table = db_->CreateTable("stock");
  ASSERT_TRUE(table.ok());
  // Hammer a handful of keys: version chains overflow pages with few
  // distinct keys -> time splits.
  for (int round = 0; round < 100; ++round) {
    for (int k = 0; k < 4; ++k) {
      PutCommitted(table.value(), "hot" + std::to_string(k),
                   "qty" + std::to_string(round));
    }
  }
  ASSERT_TRUE(db_->FlushAll().ok());
  EXPECT_GT(db_->historical()->page_count(), 0u)
      << "skewed updates should have produced WORM historical pages";

  // Migrated versions remain temporally visible.
  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(table.value(), "hot0", &history).ok());
  EXPECT_EQ(history.size(), 100u);
  for (size_t i = 1; i < history.size(); ++i) {
    EXPECT_LT(history[i - 1].start, history[i].start);
  }

  // Live tree only keeps the tail of each chain.
  std::vector<TupleData> live;
  ASSERT_TRUE(db_->tree(table.value())->GetVersions("hot0", &live).ok());
  EXPECT_LT(live.size(), history.size());

  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
  EXPECT_GT(report.value().migrations_verified, 0u);
}

TEST_F(TsbVacuumTest, MigratedHistorySurvivesReopenAndNextEpoch) {
  OpenDb(MakeOptions(true, 0.5));
  auto table = db_->CreateTable("stock");
  ASSERT_TRUE(table.ok());
  uint32_t tid = table.value();
  for (int round = 0; round < 100; ++round) {
    PutCommitted(tid, "hot", "v" + std::to_string(round));
  }
  uint64_t t_mid = 0;
  {
    std::vector<TupleData> history;
    ASSERT_TRUE(db_->GetHistory(tid, "hot", &history).ok());
    t_mid = history[50].start;  // may be unstamped; resolve below
  }
  ExpectAuditOk();
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();

  OpenDb(MakeOptions(true, 0.5));
  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(tid, "hot", &history).ok());
  EXPECT_EQ(history.size(), 100u);
  // AS-OF across the migrated range works (all stamped after audit).
  std::string value;
  std::vector<TupleData> h2;
  ASSERT_TRUE(db_->GetHistory(tid, "hot", &h2).ok());
  uint64_t mid_commit = h2[50].start;
  (void)t_mid;
  ASSERT_TRUE(db_->GetAsOf(tid, "hot", mid_commit, &value).ok());
  EXPECT_EQ(value, "v50");
  ExpectAuditOk();
}

TEST_F(TsbVacuumTest, ThresholdSweepShapesLiveAndHistoricCounts) {
  // Skewed workload: higher thresholds migrate at least as much.
  uint64_t hist_low = 0;
  uint64_t hist_high = 0;
  for (double threshold : {0.1, 0.9}) {
    std::filesystem::remove_all(dir_);
    OpenDb(MakeOptions(true, threshold));
    auto table = db_->CreateTable("stock");
    ASSERT_TRUE(table.ok());
    for (int round = 0; round < 60; ++round) {
      for (int k = 0; k < 12; ++k) {
        PutCommitted(table.value(), "key" + std::to_string(k), "v");
      }
    }
    ASSERT_TRUE(db_->FlushAll().ok());
    if (threshold < 0.5) {
      hist_low = db_->historical()->page_count();
    } else {
      hist_high = db_->historical()->page_count();
    }
    db_.reset();
  }
  EXPECT_GE(hist_high, hist_low);
  EXPECT_GT(hist_high, 0u);
}

// --- shredding ---

TEST_F(TsbVacuumTest, VacuumShredsExpiredVersions) {
  OpenDb(MakeOptions(false));
  auto table = db_->CreateTable("pii");
  ASSERT_TRUE(table.ok());
  uint32_t tid = table.value();
  ASSERT_TRUE(db_->SetRetention(tid, 30 * kDay).ok());

  PutCommitted(tid, "ssn", "123-45-6789");
  clock_.AdvanceMicros(kMinute);
  PutCommitted(tid, "ssn", "redacted-v2");  // supersedes v1
  PutCommitted(tid, "keep", "current");

  // The superseded version must survive at least one audit.
  ExpectAuditOk();

  // Not yet expired: nothing to vacuum.
  auto r0 = db_->Vacuum(tid);
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  EXPECT_EQ(r0.value().shredded, 0u);

  // 31 days later the superseded version is expired.
  clock_.AdvanceMicros(31 * kDay);
  auto r1 = db_->Vacuum(tid);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1.value().shredded, 1u);

  // History no longer shows v1; the current version is intact.
  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(tid, "ssn", &history).ok());
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].value, "redacted-v2");
  std::string value;
  ASSERT_TRUE(db_->Get(tid, "keep", &value).ok());

  // The audit validates the shred against the Expiry policy.
  ASSERT_TRUE(db_->FlushAll().ok());
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
  EXPECT_EQ(report.value().shreds_verified, 1u);
}

TEST_F(TsbVacuumTest, VacuumRemovesFullyDeletedKeyChains) {
  OpenDb(MakeOptions(false));
  auto table = db_->CreateTable("pii");
  ASSERT_TRUE(table.ok());
  uint32_t tid = table.value();
  ASSERT_TRUE(db_->SetRetention(tid, 30 * kDay).ok());
  PutCommitted(tid, "gone", "secret");
  clock_.AdvanceMicros(kMinute);
  {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(db_->Delete(txn.value(), tid, "gone").ok());
    ASSERT_TRUE(db_->Commit(txn.value()).ok());
  }
  ExpectAuditOk();
  clock_.AdvanceMicros(31 * kDay);
  auto r = db_->Vacuum(tid);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().shredded, 2u);  // the value version and its EOL marker

  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(tid, "gone", &history).ok());
  EXPECT_TRUE(history.empty()) << "the tuple should truly cease to exist";

  ASSERT_TRUE(db_->FlushAll().ok());
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
}

TEST_F(TsbVacuumTest, VacuumSkipsVersionsNotYetThroughAnAudit) {
  OpenDb(MakeOptions(false));
  auto table = db_->CreateTable("pii");
  ASSERT_TRUE(table.ok());
  uint32_t tid = table.value();
  ASSERT_TRUE(db_->SetRetention(tid, kMinute).ok());
  PutCommitted(tid, "fresh", "v1");
  PutCommitted(tid, "fresh", "v2");
  clock_.AdvanceMicros(kDay);  // long expired — but never audited
  auto r = db_->Vacuum(tid);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().shredded, 0u)
      << "tuples must be retained through at least one audit";
}

TEST_F(TsbVacuumTest, IllegalShredOfCurrentVersionFailsAudit) {
  OpenDb(MakeOptions(false));
  auto table = db_->CreateTable("pii");
  ASSERT_TRUE(table.ok());
  uint32_t tid = table.value();
  ASSERT_TRUE(db_->SetRetention(tid, kMinute).ok());
  PutCommitted(tid, "target", "current-value");
  ExpectAuditOk();
  clock_.AdvanceMicros(kDay);

  // A compromised vacuum process shreds the *current* version.
  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(tid, "target", &history).ok());
  ASSERT_EQ(history.size(), 1u);
  std::string record = EncodeTuple(history[0]);
  Sha256Digest digest = Sha256::Hash(record);
  ASSERT_TRUE(db_->compliance_logger()
                  ->OnShredIntent(tid, "target", history[0].start, 0,
                                  Slice(reinterpret_cast<const char*>(
                                            digest.data()),
                                        digest.size()),
                                  db_->Now())
                  .ok());
  TxnWalContext sys;
  sys.txn_id = 0;
  sys.log = db_->wal();
  ASSERT_TRUE(db_->tree(tid)
                  ->RemoveVersion(&sys, "target", history[0].start, false, 0)
                  .ok());
  ASSERT_TRUE(db_->FlushAll().ok());

  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().ok())
      << "shredding a never-superseded version must fail the audit";
}

TEST_F(TsbVacuumTest, VacuumRecheckFinishesAfterCrash) {
  OpenDb(MakeOptions(false));
  auto table = db_->CreateTable("pii");
  ASSERT_TRUE(table.ok());
  uint32_t tid = table.value();
  ASSERT_TRUE(db_->SetRetention(tid, kMinute).ok());
  PutCommitted(tid, "k", "v1");
  clock_.AdvanceMicros(kMinute);
  PutCommitted(tid, "k", "v2");
  ExpectAuditOk();
  clock_.AdvanceMicros(kDay);

  // Simulate the crash window: SHREDDED reached WORM but the erase did not
  // reach the tree (we append the intent manually, then "crash").
  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(tid, "k", &history).ok());
  ASSERT_EQ(history.size(), 2u);
  std::string record = EncodeTuple(history[0]);
  Sha256Digest digest = Sha256::Hash(record);
  ASSERT_TRUE(db_->compliance_logger()
                  ->OnShredIntent(tid, "k", history[0].start, 0,
                                  Slice(reinterpret_cast<const char*>(
                                            digest.data()),
                                        digest.size()),
                                  db_->Now())
                  .ok());
  db_.reset();  // crash

  OpenDb(MakeOptions(false));
  EXPECT_TRUE(db_->recovered_from_crash());
  // Recheck during open must have finished the vacuum.
  std::vector<TupleData> after;
  ASSERT_TRUE(db_->GetHistory(tid, "k", &after).ok());
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].value, "v2");
  ASSERT_TRUE(db_->FlushAll().ok());
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
}

TEST_F(TsbVacuumTest, RetentionPolicyChangesAreVersioned) {
  OpenDb(MakeOptions(false));
  auto table = db_->CreateTable("pii");
  ASSERT_TRUE(table.ok());
  uint32_t tid = table.value();
  ASSERT_TRUE(db_->SetRetention(tid, 30 * kDay).ok());
  uint64_t t1 = db_->txns()->last_commit_time();
  clock_.AdvanceMicros(kDay);
  ASSERT_TRUE(db_->SetRetention(tid, 7 * kDay).ok());
  uint64_t t2 = db_->txns()->last_commit_time();

  auto expiry_id = db_->GetTable("__expiry");
  ASSERT_TRUE(expiry_id.ok());
  ExpiryPolicy expiry(db_->tree(expiry_id.value()));
  ASSERT_TRUE(db_->FlushAll().ok());
  auto r1 = expiry.At(tid, t1);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1.value(), 30 * kDay);
  auto r2 = expiry.At(tid, t2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value(), 7 * kDay);
  EXPECT_TRUE(expiry.At(tid, t1 - 1).status().IsNotFound());
}

TEST_F(TsbVacuumTest, MigratedHistoryShreddedWholeFile) {
  // §VIII final paragraph: expired tuples on WORM are shredded at the
  // granularity of whole historical-page files, with deletion deferred to
  // the audit that verifies the shreds.
  OpenDb(MakeOptions(/*tsb=*/true, 0.5));
  auto table = db_->CreateTable("stock");
  ASSERT_TRUE(table.ok());
  uint32_t tid = table.value();
  ASSERT_TRUE(db_->SetRetention(tid, 30 * kDay).ok());

  for (int round = 0; round < 120; ++round) {
    PutCommitted(tid, "hot", "v" + std::to_string(round) +
                                 std::string(80, '.'));
    clock_.AdvanceMicros(kMinute / 4);
  }
  ASSERT_TRUE(db_->FlushAll().ok());
  uint64_t hist_pages = db_->historical()->page_count();
  ASSERT_GT(hist_pages, 0u) << "precondition: versions migrated to WORM";

  // Audit (versions must pass through a snapshot epoch), then expire.
  ExpectAuditOk();
  clock_.AdvanceMicros(31 * kDay);

  auto vac = db_->Vacuum(tid);
  ASSERT_TRUE(vac.ok()) << vac.status().ToString();
  EXPECT_GT(vac.value().shredded, 0u);
  EXPECT_LT(db_->historical()->page_count(), hist_pages)
      << "fully-expired historical files leave the temporal index";

  // History no longer reaches the shredded versions.
  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(tid, "hot", &history).ok());
  EXPECT_LT(history.size(), 120u);

  // The verifying audit passes and physically deletes the WORM files.
  size_t files_before = db_->worm()->ListPrefix("hist_").size();
  ASSERT_TRUE(db_->FlushAll().ok());
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
  EXPECT_GT(report.value().shreds_verified, 0u);
  EXPECT_LT(db_->worm()->ListPrefix("hist_").size(), files_before)
      << "the unit of deletion on WORM is an entire file";
}

TEST_F(TsbVacuumTest, HistoricalShredsSurviveCrashBeforeAudit) {
  OpenDb(MakeOptions(true, 0.5));
  auto table = db_->CreateTable("stock");
  ASSERT_TRUE(table.ok());
  uint32_t tid = table.value();
  ASSERT_TRUE(db_->SetRetention(tid, kDay).ok());
  for (int round = 0; round < 120; ++round) {
    PutCommitted(tid, "hot", "v" + std::to_string(round) +
                                 std::string(80, '.'));
    clock_.AdvanceMicros(kMinute / 4);
  }
  ASSERT_TRUE(db_->FlushAll().ok());
  ExpectAuditOk();
  clock_.AdvanceMicros(2 * kDay);
  auto vac = db_->Vacuum(tid);
  ASSERT_TRUE(vac.ok());
  ASSERT_GT(vac.value().shredded, 0u);
  size_t visible_after_vacuum = 0;
  {
    std::vector<TupleData> history;
    ASSERT_TRUE(db_->GetHistory(tid, "hot", &history).ok());
    visible_after_vacuum = history.size();
  }

  // Crash before the verifying audit: on reopen the shredded files are
  // still on WORM but must not resurface in the temporal index.
  db_.reset();
  OpenDb(MakeOptions(true, 0.5));
  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(tid, "hot", &history).ok());
  EXPECT_EQ(history.size(), visible_after_vacuum);
  ASSERT_TRUE(db_->FlushAll().ok());
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
}

}  // namespace
}  // namespace complydb
