// Litigation holds (§IX future work, implemented here): subpoenaed
// tuples survive vacuuming even when expired, hold placement/release is
// versioned and audited, and a shred that violated a hold fails the
// audit.

#include "shred/holds.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "crypto/sha256.h"
#include "db/compliant_db.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;
constexpr uint64_t kDay = 24ull * 3600 * 1'000'000;

class HoldsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/holds_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    DbOptions opts;
    opts.dir = dir_;
    opts.cache_pages = 64;
    opts.clock = &clock_;
    opts.compliance.enabled = true;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    auto r = CompliantDB::Open(opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    db_.reset(r.value());
    auto t = db_->CreateTable("docs");
    ASSERT_TRUE(t.ok());
    table_ = t.value();
    ASSERT_TRUE(db_->SetRetention(table_, 30 * kDay).ok());
  }

  void PutCommitted(const std::string& key, const std::string& value) {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(db_->Put(txn.value(), table_, key, value).ok());
    ASSERT_TRUE(db_->Commit(txn.value()).ok());
  }

  // Makes key's v1 expired and snapshot-protected: v1, supersede, audit,
  // then jump past retention.
  void MakeExpiredHistory(const std::string& key) {
    PutCommitted(key, "v1-sensitive");
    clock_.AdvanceMicros(kMinute);
    PutCommitted(key, "v2-current");
    auto report = db_->Audit();
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report.value().ok());
    clock_.AdvanceMicros(31 * kDay);
  }

  SimulatedClock clock_;
  std::string dir_;
  uint32_t table_ = 0;
  std::unique_ptr<CompliantDB> db_;
};

TEST_F(HoldsTest, HoldBlocksVacuumOfExpiredVersion) {
  MakeExpiredHistory("case-doc");
  ASSERT_TRUE(db_->PlaceHold(table_, "case-doc").ok());

  auto r = db_->Vacuum(table_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().shredded, 0u);
  EXPECT_EQ(r.value().held, 1u);

  // History intact despite expiry.
  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(table_, "case-doc", &history).ok());
  EXPECT_EQ(history.size(), 2u);
}

TEST_F(HoldsTest, ReleasingHoldAllowsVacuum) {
  MakeExpiredHistory("case-doc");
  ASSERT_TRUE(db_->PlaceHold(table_, "case-doc").ok());
  ASSERT_TRUE(db_->ReleaseHold(table_, "case-doc").ok());

  auto r = db_->Vacuum(table_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().shredded, 1u);
  EXPECT_EQ(r.value().held, 0u);

  ASSERT_TRUE(db_->FlushAll().ok());
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
}

TEST_F(HoldsTest, PrefixHoldCoversManyKeys) {
  MakeExpiredHistory("case-A-doc1");
  ASSERT_TRUE(db_->PlaceHold(table_, "case-A").ok());
  auto held_a = db_->IsHeld(table_, "case-A-doc1");
  ASSERT_TRUE(held_a.ok());
  EXPECT_TRUE(held_a.value());
  auto held_b = db_->IsHeld(table_, "case-B-doc1");
  ASSERT_TRUE(held_b.ok());
  EXPECT_FALSE(held_b.value());

  auto r = db_->Vacuum(table_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().held, 1u);
  EXPECT_EQ(r.value().shredded, 0u);
}

TEST_F(HoldsTest, HoldsUnaffectedKeysStillVacuum) {
  MakeExpiredHistory("held-doc");
  PutCommitted("free-doc", "f1");
  clock_.AdvanceMicros(kMinute);
  PutCommitted("free-doc", "f2");
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().ok());
  clock_.AdvanceMicros(31 * kDay);

  ASSERT_TRUE(db_->PlaceHold(table_, "held-doc").ok());
  auto r = db_->Vacuum(table_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().held, 1u);     // held-doc v1
  EXPECT_EQ(r.value().shredded, 1u); // free-doc f1
}

TEST_F(HoldsTest, ShreddingHeldTupleFailsAudit) {
  MakeExpiredHistory("subpoenaed");
  ASSERT_TRUE(db_->PlaceHold(table_, "subpoenaed").ok());
  // Let wall-clock time pass the hold's commit tick (with a real clock,
  // commit times never lead the clock).
  clock_.AdvanceMicros(kMinute);

  // A compromised vacuum ignores the hold and shreds anyway.
  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(table_, "subpoenaed", &history).ok());
  ASSERT_EQ(history.size(), 2u);
  std::string record = EncodeTuple(history[0]);
  Sha256Digest digest = Sha256::Hash(record);
  ASSERT_TRUE(db_->compliance_logger()
                  ->OnShredIntent(
                      table_, "subpoenaed", history[0].start, 0,
                      Slice(reinterpret_cast<const char*>(digest.data()),
                            digest.size()),
                      db_->Now())
                  .ok());
  TxnWalContext sys;
  sys.txn_id = 0;
  sys.log = db_->wal();
  ASSERT_TRUE(db_->tree(table_)
                  ->RemoveVersion(&sys, "subpoenaed", history[0].start,
                                  false, 0)
                  .ok());
  ASSERT_TRUE(db_->FlushAll().ok());

  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().ok())
      << "shredding under a hold must fail the audit";
  bool found = false;
  for (const auto& p : report.value().problems) {
    if (p.find("litigation hold") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(HoldsTest, HoldHistoryIsTemporallyResolved) {
  // A hold placed *after* a shred does not retroactively implicate it.
  MakeExpiredHistory("doc");
  auto r = db_->Vacuum(table_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().shredded, 1u);
  clock_.AdvanceMicros(kMinute);
  ASSERT_TRUE(db_->PlaceHold(table_, "doc").ok());

  ASSERT_TRUE(db_->FlushAll().ok());
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
}

TEST_F(HoldsTest, HoldsSurviveReopen) {
  MakeExpiredHistory("doc");
  ASSERT_TRUE(db_->PlaceHold(table_, "doc").ok());
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();

  DbOptions opts;
  opts.dir = dir_;
  opts.cache_pages = 64;
  opts.clock = &clock_;
  opts.compliance.enabled = true;
  opts.compliance.regret_interval_micros = 5 * kMinute;
  auto reopened = CompliantDB::Open(opts);
  ASSERT_TRUE(reopened.ok());
  db_.reset(reopened.value());

  auto held = db_->IsHeld(table_, "doc");
  ASSERT_TRUE(held.ok());
  EXPECT_TRUE(held.value());
  auto r = db_->Vacuum(table_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().shredded, 0u);
  EXPECT_EQ(r.value().held, 1u);
}

}  // namespace
}  // namespace complydb
