#include "common/crc32.h"

#include <gtest/gtest.h>

namespace complydb {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32 (IEEE) test vectors.
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"), 0x414FA339u);
}

TEST(Crc32Test, ExtendMatchesOneShot) {
  std::string data = "compliance log record payload";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t a = Crc32Extend(Crc32(Slice(data.data(), split)),
                             Slice(data.data() + split, data.size() - split));
    EXPECT_EQ(a, Crc32(data)) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(256, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  uint32_t base = Crc32(data);
  for (size_t byte : {0u, 17u, 128u, 255u}) {
    std::string tampered = data;
    tampered[byte] ^= 0x01;
    EXPECT_NE(Crc32(tampered), base) << "flip at byte " << byte;
  }
}

}  // namespace
}  // namespace complydb
