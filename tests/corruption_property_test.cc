// The closing property of the architecture: flip ANY byte inside the
// live record area of ANY leaf or internal page, and the next audit
// fails. (Free-space bytes are semantically dead and legitimately
// unprotected; record bytes are the data the regulations protect.)

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "common/random.h"
#include "db/compliant_db.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

class CorruptionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorruptionPropertyTest, AnyRecordByteFlipIsDetected) {
  std::string dir =
      ::testing::TempDir() + "/corrupt_" + std::to_string(GetParam());
  std::filesystem::remove_all(dir);
  SimulatedClock clock;
  DbOptions opts;
  opts.dir = dir;
  opts.cache_pages = 64;
  opts.clock = &clock;
  opts.compliance.enabled = true;
  opts.compliance.regret_interval_micros = 5 * kMinute;

  // Build a database with data + an audit epoch behind it.
  {
    auto r = CompliantDB::Open(opts);
    ASSERT_TRUE(r.ok());
    std::unique_ptr<CompliantDB> db(r.value());
    auto t = db->CreateTable("t");
    ASSERT_TRUE(t.ok());
    Random seeder(GetParam());
    for (int i = 0; i < 500; ++i) {
      auto txn = db->Begin();
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(db->Put(txn.value(), t.value(),
                          "key" + std::to_string(seeder.Uniform(100000)),
                          seeder.Bytes(1 + seeder.Uniform(60)))
                      .ok());
      Status s = db->Commit(txn.value());
      if (s.IsInvalidArgument()) {  // duplicate (key, start) — impossible
        FAIL() << s.ToString();
      }
      ASSERT_TRUE(s.ok());
    }
    auto report = db->Audit();
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report.value().ok());
    ASSERT_TRUE(db->Close().ok());
  }

  // Pick random *record* bytes across random formatted pages and flip
  // them, one at a time; every flip must fail the audit.
  Random rng(GetParam() * 31337);
  const int kTrials = 6;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto d0 = DiskManager::Open(dir + "/data.db");
    ASSERT_TRUE(d0.ok());
    std::unique_ptr<DiskManager> disk(d0.value());

    // Choose a page with records.
    PageId victim = kInvalidPage;
    Page page;
    for (int attempts = 0; attempts < 200; ++attempts) {
      PageId pgno = 1 + static_cast<PageId>(
                            rng.Uniform(disk->PageCount() - 1));
      ASSERT_TRUE(disk->ReadPage(pgno, &page).ok());
      if (page.IsFormatted() &&
          (page.type() == PageType::kBtreeLeaf ||
           page.type() == PageType::kBtreeInternal) &&
          page.slot_count() > 0) {
        victim = pgno;
        break;
      }
    }
    ASSERT_NE(victim, kInvalidPage);

    // Choose a byte inside a random record.
    uint16_t slot = static_cast<uint16_t>(rng.Uniform(page.slot_count()));
    Slice record = page.RecordAt(slot);
    size_t record_off =
        static_cast<size_t>(record.data() - page.data());
    // Skip the 2-byte length prefix: corrupting it may change framing in
    // ways CheckStructure flags — also detection, but target the
    // interesting bytes (flags/start/key/value/pointers).
    size_t byte = record_off + 2 + rng.Uniform(record.size() - 2);
    char original = page.data()[byte];
    char flipped = static_cast<char>(original ^ (1 + rng.Uniform(255)));
    page.data()[byte] = flipped;
    ASSERT_TRUE(disk->WritePage(victim, page).ok());
    disk.reset();

    // The audit must detect the flip.
    {
      auto r = CompliantDB::Open(opts);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      std::unique_ptr<CompliantDB> db(r.value());
      auto report = db->Audit();
      ASSERT_TRUE(report.ok());
      EXPECT_FALSE(report.value().ok())
          << "trial " << trial << ": flip of record byte " << byte
          << " on page " << victim << " went undetected";
      db.reset();  // skip Close: leave state as-is for restoration
    }

    // Restore the byte so the next trial starts clean.
    auto d1 = DiskManager::Open(dir + "/data.db");
    ASSERT_TRUE(d1.ok());
    std::unique_ptr<DiskManager> disk1(d1.value());
    ASSERT_TRUE(disk1->ReadPage(victim, &page).ok());
    page.data()[byte] = original;
    ASSERT_TRUE(disk1->WritePage(victim, page).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace complydb
