#include "worm/worm_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "common/clock.h"

namespace complydb {
namespace {

class WormStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/worm_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    auto r = WormStore::Open(dir_, &clock_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    store_.reset(r.value());
  }

  SimulatedClock clock_;
  std::string dir_;
  std::unique_ptr<WormStore> store_;
};

constexpr uint64_t kHour = 3600ull * 1'000'000;

TEST_F(WormStoreTest, CreateAppendRead) {
  ASSERT_TRUE(store_->Create("log", kHour).ok());
  ASSERT_TRUE(store_->Append("log", "hello ").ok());
  ASSERT_TRUE(store_->Append("log", "worm").ok());
  std::string out;
  ASSERT_TRUE(store_->ReadAll("log", &out).ok());
  EXPECT_EQ(out, "hello worm");
}

TEST_F(WormStoreTest, CreateOverExistingIsViolation) {
  ASSERT_TRUE(store_->Create("f", kHour).ok());
  Status s = store_->Create("f", kHour);
  EXPECT_TRUE(s.IsWormViolation()) << s.ToString();
  EXPECT_EQ(store_->violation_count(), 1u);
}

TEST_F(WormStoreTest, DeleteBeforeRetentionRefused) {
  ASSERT_TRUE(store_->Create("f", kHour).ok());
  clock_.AdvanceMicros(kHour / 2);
  EXPECT_TRUE(store_->Delete("f").IsWormViolation());
  EXPECT_TRUE(store_->Exists("f"));
}

TEST_F(WormStoreTest, DeleteAfterRetentionAllowed) {
  ASSERT_TRUE(store_->Create("f", kHour).ok());
  clock_.AdvanceMicros(kHour + 1);
  EXPECT_TRUE(store_->Delete("f").ok());
  EXPECT_FALSE(store_->Exists("f"));
}

TEST_F(WormStoreTest, RetainForeverNeverDeletable) {
  ASSERT_TRUE(store_->Create("f", 0).ok());
  clock_.AdvanceMicros(1000 * kHour);
  EXPECT_TRUE(store_->Delete("f").IsWormViolation());
}

TEST_F(WormStoreTest, ReleaseRetentionEnablesDelete) {
  ASSERT_TRUE(store_->Create("f", 0).ok());
  clock_.AdvanceMicros(10);
  ASSERT_TRUE(store_->ReleaseRetention("f").ok());
  EXPECT_TRUE(store_->Delete("f").ok());
}

TEST_F(WormStoreTest, CreateTimeComesFromComplianceClock) {
  clock_.AdvanceMicros(12345);
  uint64_t before = clock_.NowMicros();
  ASSERT_TRUE(store_->Create("witness", kHour).ok());
  auto info = store_->GetInfo("witness");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().create_time_micros, before);
}

TEST_F(WormStoreTest, ReadAtOffsets) {
  ASSERT_TRUE(store_->CreateWithContent("f", kHour, "0123456789").ok());
  std::string out;
  ASSERT_TRUE(store_->ReadAt("f", 3, 4, &out).ok());
  EXPECT_EQ(out, "3456");
  ASSERT_TRUE(store_->ReadAt("f", 8, 100, &out).ok());
  EXPECT_EQ(out, "89");
  ASSERT_TRUE(store_->ReadAt("f", 100, 10, &out).ok());
  EXPECT_EQ(out, "");
}

TEST_F(WormStoreTest, ListAndPrefix) {
  ASSERT_TRUE(store_->Create("witness_001", kHour).ok());
  ASSERT_TRUE(store_->Create("witness_002", kHour).ok());
  ASSERT_TRUE(store_->Create("log_1", kHour).ok());
  auto w = store_->ListPrefix("witness_");
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], "witness_001");
  EXPECT_EQ(w[1], "witness_002");
  EXPECT_EQ(store_->List().size(), 3u);
}

TEST_F(WormStoreTest, PersistsAcrossReopen) {
  ASSERT_TRUE(store_->CreateWithContent("f", kHour, "durable").ok());
  store_.reset();
  auto r = WormStore::Open(dir_, &clock_);
  ASSERT_TRUE(r.ok());
  store_.reset(r.value());
  std::string out;
  ASSERT_TRUE(store_->ReadAll("f", &out).ok());
  EXPECT_EQ(out, "durable");
  auto info = store_->GetInfo("f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 7u);
}

TEST_F(WormStoreTest, AppendToMissingFileNotFound) {
  EXPECT_TRUE(store_->Append("nope", "x").IsNotFound());
}

TEST_F(WormStoreTest, BadNamesRejected) {
  EXPECT_TRUE(store_->Create("", kHour).IsInvalidArgument());
  EXPECT_TRUE(store_->Create("a/b", kHour).IsInvalidArgument());
  EXPECT_TRUE(store_->Create("_worm_meta", kHour).IsInvalidArgument());
}

TEST_F(WormStoreTest, UnflushedAppendsSurviveFlushAndReopen) {
  ASSERT_TRUE(store_->Create("batch", kHour).ok());
  ASSERT_TRUE(store_->AppendUnflushed("batch", "part1-").ok());
  ASSERT_TRUE(store_->AppendUnflushed("batch", "part2").ok());
  ASSERT_TRUE(store_->FlushAppends("batch").ok());
  std::string out;
  ASSERT_TRUE(store_->ReadAll("batch", &out).ok());
  EXPECT_EQ(out, "part1-part2");

  auto info = store_->GetInfo("batch");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 11u);

  // Reopen: the lazily-persisted size reconciles against the real file.
  store_.reset();
  auto r = WormStore::Open(dir_, &clock_);
  ASSERT_TRUE(r.ok());
  store_.reset(r.value());
  info = store_->GetInfo("batch");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 11u);
  ASSERT_TRUE(store_->ReadAll("batch", &out).ok());
  EXPECT_EQ(out, "part1-part2");
}

TEST_F(WormStoreTest, ReleasedFlagPersistsAcrossReopen) {
  ASSERT_TRUE(store_->Create("f", 0).ok());
  ASSERT_TRUE(store_->ReleaseRetention("f").ok());
  store_.reset();
  auto r = WormStore::Open(dir_, &clock_);
  ASSERT_TRUE(r.ok());
  store_.reset(r.value());
  EXPECT_TRUE(store_->Delete("f").ok());
}

TEST_F(WormStoreTest, AppendAfterDeleteOfOtherFileKeepsHandles) {
  ASSERT_TRUE(store_->Create("a", kHour).ok());
  ASSERT_TRUE(store_->Create("b", kHour).ok());
  ASSERT_TRUE(store_->Append("a", "x").ok());
  ASSERT_TRUE(store_->Append("b", "y").ok());
  clock_.AdvanceMicros(kHour + 1);
  ASSERT_TRUE(store_->Delete("a").ok());
  ASSERT_TRUE(store_->Append("b", "z").ok());
  std::string out;
  ASSERT_TRUE(store_->ReadAll("b", &out).ok());
  EXPECT_EQ(out, "yz");
  EXPECT_TRUE(store_->ReadAll("a", &out).IsNotFound());
}

TEST_F(WormStoreTest, RecreateAfterLegitimateDelete) {
  // Deleting an expired file frees its name — a fresh file under the same
  // name is a new object with a new create time.
  ASSERT_TRUE(store_->Create("cycle", kHour).ok());
  uint64_t t0 = clock_.NowMicros();
  clock_.AdvanceMicros(kHour + 1);
  ASSERT_TRUE(store_->Delete("cycle").ok());
  ASSERT_TRUE(store_->Create("cycle", kHour).ok());
  auto info = store_->GetInfo("cycle");
  ASSERT_TRUE(info.ok());
  EXPECT_GT(info.value().create_time_micros, t0);
}

}  // namespace
}  // namespace complydb
