// Parameterized configuration sweeps: the same TPC-C mini-workload must
// stay correct and audit-clean across buffer-cache sizes (eviction
// pressure), regret intervals, and compliance modes.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <tuple>

#include "tpcc/workload.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

using SweepParam = std::tuple<size_t /*cache_pages*/,
                              uint64_t /*regret_minutes*/,
                              bool /*hash_on_read*/, bool /*tsb*/,
                              size_t /*max_cached_baselines*/>;

class SweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SweepTest, TpccMiniStaysAuditClean) {
  auto [cache_pages, regret_minutes, hash_on_read, tsb, baseline_cap] =
      GetParam();
  std::string dir = ::testing::TempDir() + "/sweep_" +
                    std::to_string(cache_pages) + "_" +
                    std::to_string(regret_minutes) + "_" +
                    std::to_string(hash_on_read) + std::to_string(tsb) +
                    "_" + std::to_string(baseline_cap);
  std::filesystem::remove_all(dir);

  SimulatedClock clock;
  DbOptions opts;
  opts.dir = dir;
  opts.cache_pages = cache_pages;
  opts.clock = &clock;
  opts.compliance.enabled = true;
  opts.compliance.hash_on_read = hash_on_read;
  opts.compliance.regret_interval_micros = regret_minutes * kMinute;
  opts.compliance.max_cached_pages = baseline_cap;
  opts.tsb_enabled = tsb;

  auto open = CompliantDB::Open(opts);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  std::unique_ptr<CompliantDB> db(open.value());

  tpcc::Scale scale;
  scale.warehouses = 1;
  scale.districts_per_warehouse = 2;
  scale.customers_per_district = 10;
  scale.items = 60;
  scale.initial_orders_per_district = 10;

  tpcc::Workload workload(db.get(), scale, /*seed=*/777);
  ASSERT_TRUE(workload.CreateOrAttachTables().ok());
  Status load = workload.Load();
  ASSERT_TRUE(load.ok()) << load.ToString();

  tpcc::MixStats stats;
  for (int i = 0; i < 120; ++i) {
    Status s = workload.RunMix(1, &stats);
    ASSERT_TRUE(s.ok()) << s.ToString() << " at txn " << i;
    clock.AdvanceMicros(regret_minutes * kMinute / 40);
  }

  // Consistency condition 1 must hold regardless of configuration.
  std::string raw;
  ASSERT_TRUE(
      db->Get(workload.tables().warehouse, tpcc::WarehouseKey(1), &raw).ok());
  tpcc::WarehouseRow warehouse;
  ASSERT_TRUE(tpcc::WarehouseRow::Decode(raw, &warehouse).ok());
  int64_t district_sum = 0;
  for (uint32_t d = 1; d <= scale.districts_per_warehouse; ++d) {
    ASSERT_TRUE(
        db->Get(workload.tables().district, tpcc::DistrictKey(1, d), &raw)
            .ok());
    tpcc::DistrictRow district;
    ASSERT_TRUE(tpcc::DistrictRow::Decode(raw, &district).ok());
    district_sum += district.ytd_cents;
  }
  EXPECT_EQ(warehouse.ytd_cents, district_sum);

  auto report = db->Audit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
  EXPECT_TRUE(db->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SweepTest,
    ::testing::Values(
        // Severe eviction pressure.
        SweepParam{16, 5, false, false, 0},
        SweepParam{16, 5, true, false, 0},
        // Moderate cache.
        SweepParam{64, 5, false, false, 0},
        SweepParam{64, 1, true, false, 0},
        SweepParam{64, 30, false, true, 0},
        // Everything cached.
        SweepParam{2048, 5, true, false, 0},
        SweepParam{2048, 5, false, true, 0},
        // Tiny regret interval under pressure.
        SweepParam{32, 1, true, true, 0},
        // Bounded logger baselines under every kind of pressure.
        SweepParam{16, 5, true, false, 8},
        SweepParam{64, 1, true, true, 4},
        SweepParam{32, 5, false, true, 2}));

}  // namespace
}  // namespace complydb
