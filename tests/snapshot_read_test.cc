// Concurrent read path: SnapshotReader handles pinned at a commit time
// running against the single writer. Covers the fixed-point visibility
// contract, the audit quiescence rule, invariant preservation under
// concurrent readers + writer, and the TPC-C read-only transactions on
// reader threads. Reader-thread count comes from COMPLYDB_READ_THREADS
// (default 2); CI runs this suite under TSan with 4.

#include "db/snapshot_reader.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "db/compliant_db.h"
#include "tpcc/workload.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

int ReaderThreads() {
  const char* env = std::getenv("COMPLYDB_READ_THREADS");
  return env != nullptr ? std::max(1, std::atoi(env)) : 2;
}

class SnapshotReadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/snap_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  DbOptions MakeOptions() {
    DbOptions opts;
    opts.dir = dir_;
    opts.cache_pages = 128;
    opts.clock = &clock_;
    opts.compliance.enabled = true;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    return opts;
  }

  void OpenDb(const DbOptions& opts) {
    auto r = CompliantDB::Open(opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    db_.reset(r.value());
  }

  void PutCommitted(uint32_t table, const std::string& key,
                    const std::string& value) {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok()) << txn.status().ToString();
    ASSERT_TRUE(db_->Put(txn.value(), table, key, value).ok());
    Status s = db_->Commit(txn.value());
    ASSERT_TRUE(s.ok()) << s.ToString();
    clock_.AdvanceMicros(1000);
  }

  void DeleteCommitted(uint32_t table, const std::string& key) {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(db_->Delete(txn.value(), table, key).ok());
    ASSERT_TRUE(db_->Commit(txn.value()).ok());
    clock_.AdvanceMicros(1000);
  }

  SimulatedClock clock_;
  std::string dir_;
  std::unique_ptr<CompliantDB> db_;
};

TEST_F(SnapshotReadTest, SnapshotIsAFixedPoint) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("accounts");
  ASSERT_TRUE(table.ok());
  PutCommitted(table.value(), "alice", "100");

  auto r = db_->BeginSnapshot();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::unique_ptr<SnapshotReader> snap(r.value());

  // Commits after the snapshot are invisible through it.
  PutCommitted(table.value(), "alice", "200");
  PutCommitted(table.value(), "bob", "50");

  std::string value;
  ASSERT_TRUE(snap->Get(table.value(), "alice", &value).ok());
  EXPECT_EQ(value, "100");
  EXPECT_EQ(snap->Get(table.value(), "bob", &value).code(),
            Status::Code::kNotFound);

  // The live view moved on.
  ASSERT_TRUE(db_->Get(table.value(), "alice", &value).ok());
  EXPECT_EQ(value, "200");
}

TEST_F(SnapshotReadTest, GetAsOfIsBoundedBySnapshotTime) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("accounts");
  ASSERT_TRUE(table.ok());
  PutCommitted(table.value(), "alice", "v1");
  uint64_t after_v1 = clock_.NowMicros();

  auto r = db_->BeginSnapshot();
  ASSERT_TRUE(r.ok());
  std::unique_ptr<SnapshotReader> snap(r.value());
  PutCommitted(table.value(), "alice", "v2");

  // Asking far into the future still clamps to the snapshot.
  std::string value;
  ASSERT_TRUE(
      snap->GetAsOf(table.value(), "alice", ~0ull, &value).ok());
  EXPECT_EQ(value, "v1");
  // Temporal reads inside the snapshot's past still work.
  ASSERT_TRUE(
      snap->GetAsOf(table.value(), "alice", after_v1, &value).ok());
  EXPECT_EQ(value, "v1");
}

TEST_F(SnapshotReadTest, ScanSeesSnapshotStateNotLiveState) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("accounts");
  ASSERT_TRUE(table.ok());
  PutCommitted(table.value(), "a", "1");
  PutCommitted(table.value(), "b", "2");

  auto r = db_->BeginSnapshot();
  ASSERT_TRUE(r.ok());
  std::unique_ptr<SnapshotReader> snap(r.value());

  DeleteCommitted(table.value(), "a");
  PutCommitted(table.value(), "b", "20");
  PutCommitted(table.value(), "c", "3");

  std::vector<std::string> rows;
  ASSERT_TRUE(snap->ScanCurrent(table.value(), "", "",
                                [&](const TupleData& row) {
                                  rows.push_back(row.key + "=" + row.value);
                                  return Status::OK();
                                })
                  .ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "a=1");
  EXPECT_EQ(rows[1], "b=2");

  // Early stop via Busy is a clean termination, not an error.
  size_t seen = 0;
  ASSERT_TRUE(snap->ScanCurrent(table.value(), "", "",
                                [&](const TupleData&) {
                                  ++seen;
                                  return Status::Busy("stop");
                                })
                  .ok());
  EXPECT_EQ(seen, 1u);
}

TEST_F(SnapshotReadTest, AuditRequiresQuiescence) {
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("accounts");
  ASSERT_TRUE(table.ok());
  PutCommitted(table.value(), "alice", "100");

  auto r = db_->BeginSnapshot();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(db_->open_snapshots(), 1);
  {
    auto r2 = db_->BeginSnapshot();
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(db_->open_snapshots(), 2);
    auto blocked = db_->Audit();
    EXPECT_FALSE(blocked.ok());
    EXPECT_EQ(blocked.status().code(), Status::Code::kBusy);
    delete r2.value();
  }
  delete r.value();
  EXPECT_EQ(db_->open_snapshots(), 0);

  auto report = db_->Audit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ok());
}

TEST_F(SnapshotReadTest, ConcurrentReadersSeeConsistentSnapshots) {
  // The writer keeps two keys equal inside every transaction; a snapshot
  // taken at any commit time must never observe them unequal, and the
  // counter a reader sees must be monotonic across its snapshots.
  OpenDb(MakeOptions());
  auto table = db_->CreateTable("pairs");
  ASSERT_TRUE(table.ok());
  uint32_t t = table.value();
  PutCommitted(t, "x", "0");
  PutCommitted(t, "y", "0");

  std::atomic<bool> done{false};
  std::atomic<bool> mismatch{false};
  std::atomic<bool> regressed{false};
  std::atomic<uint64_t> snapshots_read{0};

  std::vector<std::thread> readers;
  for (int i = 0; i < ReaderThreads(); ++i) {
    readers.emplace_back([&] {
      long last = -1;
      while (!done.load(std::memory_order_acquire)) {
        auto r = db_->BeginSnapshot();
        if (!r.ok()) continue;
        std::unique_ptr<SnapshotReader> snap(r.value());
        std::string x, y;
        if (!snap->Get(t, "x", &x).ok() || !snap->Get(t, "y", &y).ok()) {
          continue;
        }
        if (x != y) mismatch.store(true, std::memory_order_relaxed);
        long v = std::strtol(x.c_str(), nullptr, 10);
        if (v < last) regressed.store(true, std::memory_order_relaxed);
        last = v;
        snapshots_read.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int i = 1; i <= 200; ++i) {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    std::string v = std::to_string(i);
    ASSERT_TRUE(db_->Put(txn.value(), t, "x", v).ok());
    ASSERT_TRUE(db_->Put(txn.value(), t, "y", v).ok());
    ASSERT_TRUE(db_->Commit(txn.value()).ok());
    clock_.AdvanceMicros(500);
  }
  // Keep the snapshot path open until every reader got at least one full
  // read in (the writer can outrun slow-starting threads).
  while (snapshots_read.load(std::memory_order_relaxed) <
         static_cast<uint64_t>(ReaderThreads())) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_FALSE(mismatch.load()) << "a snapshot saw a half-applied txn";
  EXPECT_FALSE(regressed.load()) << "snapshot time went backwards";
  EXPECT_GT(snapshots_read.load(), 0u);
  EXPECT_EQ(db_->open_snapshots(), 0);

  std::string x;
  ASSERT_TRUE(db_->Get(t, "x", &x).ok());
  EXPECT_EQ(x, "200");
}

TEST_F(SnapshotReadTest, TpccReadOnlyTransactionsConcurrentWithWriter) {
  OpenDb(MakeOptions());
  tpcc::Scale scale;
  scale.warehouses = 1;
  scale.districts_per_warehouse = 2;
  scale.customers_per_district = 12;
  scale.items = 50;
  scale.initial_orders_per_district = 12;
  auto workload = std::make_unique<tpcc::Workload>(db_.get(), scale, 42);
  ASSERT_TRUE(workload->CreateOrAttachTables().ok());
  ASSERT_TRUE(workload->Load().ok());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> ro_ok{0};
  std::atomic<int> failures{0};
  std::mutex failure_mu;
  std::string first_failure;

  std::vector<std::thread> readers;
  for (int i = 0; i < ReaderThreads(); ++i) {
    readers.emplace_back([&, i] {
      tpcc::TpccRandom rng(1000 + i);
      bool order_status = true;
      while (!done.load(std::memory_order_acquire)) {
        auto r = db_->BeginSnapshot();
        if (!r.ok()) continue;
        std::unique_ptr<SnapshotReader> snap(r.value());
        Status s = order_status ? workload->OrderStatusRO(*snap, &rng)
                                : workload->StockLevelRO(*snap, &rng);
        if (s.ok()) {
          ro_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          if (failures.fetch_add(1, std::memory_order_relaxed) == 0) {
            std::lock_guard<std::mutex> lock(failure_mu);
            first_failure = (order_status ? "OrderStatusRO: "
                                          : "StockLevelRO: ") +
                            s.ToString();
          }
        }
        order_status = !order_status;
      }
    });
  }

  tpcc::MixStats stats;
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(workload->RunMix(1, &stats).ok());
    clock_.AdvanceMicros(2000);
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(failures.load(), 0) << first_failure;
  EXPECT_GT(ro_ok.load(), 0u);

  // The read path left no trace the auditor can see: the report must be
  // byte-identical to a quiescent run's — in particular, COMPLIANT.
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ok())
      << (report.value().problems.empty() ? "?"
                                          : report.value().problems[0]);
}

}  // namespace
}  // namespace complydb
