// Randomized end-to-end property tests: under arbitrary interleavings of
// transactions, aborts, deletes, clock jumps, crashes, vacuums, and
// audits, (1) reads always match a reference model, (2) every audit
// passes, and (3) version history is exact. Then, with a single random
// file-editor attack injected, the next audit must fail.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adversary/mala.h"
#include "common/random.h"
#include "db/compliant_db.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

class ChaosTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  DbOptions MakeOptions() {
    DbOptions opts;
    opts.dir = dir_;
    opts.cache_pages = 48;  // small: plenty of eviction/steal traffic
    opts.clock = &clock_;
    opts.compliance.enabled = true;
    opts.compliance.hash_on_read = (GetParam() % 2) == 0;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    opts.tsb_enabled = (GetParam() % 3) == 0;
    opts.tsb_split_threshold = 0.5;
    return opts;
  }

  void Open() {
    auto r = CompliantDB::Open(MakeOptions());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    db_.reset(r.value());
  }

  SimulatedClock clock_;
  std::string dir_;
  std::unique_ptr<CompliantDB> db_;
};

TEST_P(ChaosTest, RandomWorkloadStaysAuditClean) {
  dir_ = ::testing::TempDir() + "/chaos_" + std::to_string(GetParam());
  std::filesystem::remove_all(dir_);
  Random rng(GetParam());
  Open();

  auto t = db_->CreateTable("chaos");
  ASSERT_TRUE(t.ok());
  uint32_t table = t.value();

  // Reference model: committed current value per key (nullopt = deleted
  // or never existed), plus full committed version history.
  std::map<std::string, std::optional<std::string>> model;
  std::map<std::string, std::vector<std::pair<std::string, bool>>> history;

  const int kSteps = 500;
  int audits = 0;
  for (int step = 0; step < kSteps; ++step) {
    uint64_t op = rng.Uniform(100);
    std::string key = "key" + std::to_string(rng.Uniform(60));

    if (op < 45) {
      // Committed single put.
      std::string value = rng.Bytes(1 + rng.Uniform(80));
      auto txn = db_->Begin();
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(db_->Put(txn.value(), table, key, value).ok());
      ASSERT_TRUE(db_->Commit(txn.value()).ok());
      model[key] = value;
      history[key].emplace_back(value, false);
    } else if (op < 55) {
      // Committed delete (if live).
      if (model.count(key) > 0 && model[key].has_value()) {
        auto txn = db_->Begin();
        ASSERT_TRUE(txn.ok());
        ASSERT_TRUE(db_->Delete(txn.value(), table, key).ok());
        ASSERT_TRUE(db_->Commit(txn.value()).ok());
        model[key] = std::nullopt;
        history[key].emplace_back("", true);
      }
    } else if (op < 70) {
      // Multi-key transaction, committed or aborted.
      auto txn = db_->Begin();
      ASSERT_TRUE(txn.ok());
      std::map<std::string, std::string> writes;
      size_t n = 1 + rng.Uniform(5);
      for (size_t i = 0; i < n; ++i) {
        std::string k = "key" + std::to_string(rng.Uniform(60));
        if (writes.count(k) > 0) continue;
        std::string v = rng.Bytes(1 + rng.Uniform(60));
        ASSERT_TRUE(db_->Put(txn.value(), table, k, v).ok());
        writes[k] = v;
      }
      if (rng.OneIn(3)) {
        ASSERT_TRUE(db_->Abort(txn.value()).ok());
      } else {
        ASSERT_TRUE(db_->Commit(txn.value()).ok());
        for (auto& [k, v] : writes) {
          model[k] = v;
          history[k].emplace_back(v, false);
        }
      }
    } else if (op < 78) {
      // Time passes (regret-interval work fires).
      ASSERT_TRUE(db_->AdvanceClock(rng.Uniform(10 * kMinute)).ok());
    } else if (op < 86) {
      // Crash and recover.
      db_.reset();
      Open();
    } else if (op < 92) {
      // Verify a random read against the model.
      std::string got;
      Status s = db_->Get(table, key, &got);
      auto it = model.find(key);
      if (it != model.end() && it->second.has_value()) {
        ASSERT_TRUE(s.ok()) << "step " << step << " key " << key << ": "
                            << s.ToString();
        EXPECT_EQ(got, *it->second);
      } else {
        EXPECT_TRUE(s.IsNotFound()) << "step " << step << " key " << key;
      }
    } else {
      // Audit (must always pass on an honest run).
      auto report = db_->Audit();
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      ASSERT_TRUE(report.value().ok())
          << "step " << step << ", audit #" << audits << ", first problem: "
          << report.value().problems[0];
      ++audits;
    }
  }

  // Final sweep: every key matches the model; history is exact.
  for (const auto& [key, expect] : model) {
    std::string got;
    Status s = db_->Get(table, key, &got);
    if (expect.has_value()) {
      ASSERT_TRUE(s.ok()) << key;
      EXPECT_EQ(got, *expect) << key;
    } else {
      EXPECT_TRUE(s.IsNotFound()) << key;
    }
    std::vector<TupleData> versions;
    ASSERT_TRUE(db_->GetHistory(table, key, &versions).ok());
    const auto& h = history[key];
    ASSERT_EQ(versions.size(), h.size()) << key;
    for (size_t i = 0; i < h.size(); ++i) {
      EXPECT_EQ(versions[i].value, h[i].first) << key << " version " << i;
      EXPECT_EQ(versions[i].eol, h[i].second) << key << " version " << i;
    }
  }
  auto final_report = db_->Audit();
  ASSERT_TRUE(final_report.ok());
  EXPECT_TRUE(final_report.value().ok())
      << "final audit, first problem: " << final_report.value().problems[0];
  EXPECT_GT(final_report.status().ok() ? 1 : 0, 0);

  // --- Now inject one random attack; the next audit must fail. ---------
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();
  Mala mala(dir_ + "/data.db");
  Status attack;
  switch (rng.Uniform(4)) {
    case 0: {
      // Tamper some live key's value.
      for (const auto& [key, expect] : model) {
        if (expect.has_value() && !expect->empty()) {
          attack = mala.TamperTupleValue(table, key);
          break;
        }
      }
      break;
    }
    case 1:
      attack = mala.SwapLeafEntries(table);
      break;
    case 2:
      attack = mala.InsertBackdatedTuple(table, "keyX-forged", "forged",
                                         kMinute);
      break;
    default:
      attack = mala.TamperInternalKey(table);
      break;
  }
  if (!attack.ok()) {
    // Some attacks need structure that this run didn't build (e.g., no
    // internal pages yet); that's fine — fall back to a value tamper.
    for (const auto& [key, expect] : model) {
      if (expect.has_value() && !expect->empty()) {
        attack = mala.TamperTupleValue(table, key);
        break;
      }
    }
  }
  ASSERT_TRUE(attack.ok()) << attack.ToString();

  Open();
  auto tampered_report = db_->Audit();
  ASSERT_TRUE(tampered_report.ok());
  EXPECT_FALSE(tampered_report.value().ok())
      << "the injected attack went undetected";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12, 13, 14, 15, 16));

}  // namespace
}  // namespace complydb
