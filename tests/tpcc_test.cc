#include "tpcc/workload.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

namespace complydb {
namespace tpcc {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

class TpccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/tpcc_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  DbOptions MakeOptions(bool compliance = true) {
    DbOptions opts;
    opts.dir = dir_;
    opts.cache_pages = 512;
    opts.clock = &clock_;
    opts.compliance.enabled = compliance;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    return opts;
  }

  Scale SmallScale() {
    Scale scale;
    scale.warehouses = 1;
    scale.districts_per_warehouse = 3;
    scale.customers_per_district = 12;
    scale.items = 100;
    scale.initial_orders_per_district = 12;
    return scale;
  }

  void OpenAndLoad(const DbOptions& opts, const Scale& scale) {
    auto r = CompliantDB::Open(opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    db_.reset(r.value());
    workload_ = std::make_unique<Workload>(db_.get(), scale, 42);
    ASSERT_TRUE(workload_->CreateOrAttachTables().ok());
    Status s = workload_->Load();
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  // TPC-C consistency condition 1: W_YTD == sum of its districts' D_YTD.
  void CheckYtdConsistency(uint32_t w) {
    std::string raw;
    ASSERT_TRUE(
        db_->Get(workload_->tables().warehouse, WarehouseKey(w), &raw).ok());
    WarehouseRow warehouse;
    ASSERT_TRUE(WarehouseRow::Decode(raw, &warehouse).ok());
    int64_t district_sum = 0;
    for (uint32_t d = 1; d <= workload_->scale().districts_per_warehouse;
         ++d) {
      ASSERT_TRUE(
          db_->Get(workload_->tables().district, DistrictKey(w, d), &raw)
              .ok());
      DistrictRow district;
      ASSERT_TRUE(DistrictRow::Decode(raw, &district).ok());
      district_sum += district.ytd_cents;
    }
    EXPECT_EQ(warehouse.ytd_cents, district_sum);
  }

  SimulatedClock clock_;
  std::string dir_;
  std::unique_ptr<CompliantDB> db_;
  std::unique_ptr<Workload> workload_;
};

TEST_F(TpccTest, LoadPopulatesAllRelations) {
  OpenAndLoad(MakeOptions(), SmallScale());
  const auto& t = workload_->tables();
  std::string raw;
  ASSERT_TRUE(db_->Get(t.warehouse, WarehouseKey(1), &raw).ok());
  ASSERT_TRUE(db_->Get(t.district, DistrictKey(1, 3), &raw).ok());
  ASSERT_TRUE(db_->Get(t.customer, CustomerKey(1, 2, 5), &raw).ok());
  ASSERT_TRUE(db_->Get(t.item, ItemKey(77), &raw).ok());
  ASSERT_TRUE(db_->Get(t.stock, StockKey(1, 77), &raw).ok());
  ASSERT_TRUE(db_->Get(t.order, OrderKey(1, 1, 1), &raw).ok());

  DistrictRow district;
  ASSERT_TRUE(db_->Get(t.district, DistrictKey(1, 1), &raw).ok());
  ASSERT_TRUE(DistrictRow::Decode(raw, &district).ok());
  EXPECT_EQ(district.next_o_id, 13u);  // initial orders + 1
}

TEST_F(TpccTest, NewOrderAdvancesDistrictAndWritesLines) {
  OpenAndLoad(MakeOptions(), SmallScale());
  const auto& t = workload_->tables();

  std::string raw;
  ASSERT_TRUE(db_->Get(t.district, DistrictKey(1, 1), &raw).ok());
  DistrictRow before;
  ASSERT_TRUE(DistrictRow::Decode(raw, &before).ok());

  // Run NewOrders until one lands in district 1 and commits.
  uint32_t landed = 0;
  for (int i = 0; i < 200 && landed == 0; ++i) {
    bool committed = false;
    ASSERT_TRUE(workload_->NewOrder(&committed).ok());
    if (!committed) continue;
    ASSERT_TRUE(db_->Get(t.district, DistrictKey(1, 1), &raw).ok());
    DistrictRow after;
    ASSERT_TRUE(DistrictRow::Decode(raw, &after).ok());
    if (after.next_o_id > before.next_o_id) landed = after.next_o_id - 1;
  }
  ASSERT_GT(landed, 0u);

  ASSERT_TRUE(db_->Get(t.order, OrderKey(1, 1, landed), &raw).ok());
  OrderRow order;
  ASSERT_TRUE(OrderRow::Decode(raw, &order).ok());
  EXPECT_GE(order.ol_cnt, 1u);
  ASSERT_TRUE(db_->Get(t.order_line, OrderLineKey(1, 1, landed, 1), &raw).ok());
  ASSERT_TRUE(db_->Get(t.new_order, NewOrderKey(1, 1, landed), &raw).ok());
}

TEST_F(TpccTest, PaymentMaintainsYtdConsistency) {
  OpenAndLoad(MakeOptions(), SmallScale());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(workload_->Payment().ok());
  }
  CheckYtdConsistency(1);
}

TEST_F(TpccTest, DeliveryClearsOldestNewOrders) {
  OpenAndLoad(MakeOptions(), SmallScale());
  const auto& t = workload_->tables();
  // The loader leaves the last third of initial orders undelivered;
  // district 1's oldest undelivered order is o_id 9 (of 12).
  std::string raw;
  ASSERT_TRUE(db_->Get(t.new_order, NewOrderKey(1, 1, 9), &raw).ok());
  ASSERT_TRUE(workload_->Delivery().ok());
  EXPECT_TRUE(db_->Get(t.new_order, NewOrderKey(1, 1, 9), &raw).IsNotFound());
  ASSERT_TRUE(db_->Get(t.order, OrderKey(1, 1, 9), &raw).ok());
  OrderRow order;
  ASSERT_TRUE(OrderRow::Decode(raw, &order).ok());
  EXPECT_GT(order.carrier_id, 0u);
}

TEST_F(TpccTest, ReadOnlyTransactionsSucceed) {
  OpenAndLoad(MakeOptions(), SmallScale());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(workload_->OrderStatus().ok());
    ASSERT_TRUE(workload_->StockLevel().ok());
  }
}

TEST_F(TpccTest, MixRunsAndAuditPasses) {
  OpenAndLoad(MakeOptions(), SmallScale());
  MixStats stats;
  Status s = workload_->RunMix(300, &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(stats.total(), 300u);
  EXPECT_EQ(stats.new_order, 135u);  // exact deck proportions
  EXPECT_EQ(stats.payment, 129u);
  CheckYtdConsistency(1);

  auto report = db_->Audit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
  EXPECT_GT(report.value().tuples_checked, 1000u);
}

TEST_F(TpccTest, MixWithRegretIntervalsAndCrash) {
  OpenAndLoad(MakeOptions(), SmallScale());
  MixStats stats;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(workload_->RunMix(60, &stats).ok());
    ASSERT_TRUE(db_->AdvanceClock(5 * kMinute + 1).ok());
  }
  // Crash and recover; the audit must still pass.
  db_.reset();
  auto r = CompliantDB::Open(MakeOptions());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  db_.reset(r.value());
  EXPECT_TRUE(db_->recovered_from_crash());
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
}

TEST_F(TpccTest, MixUnderTsbMigration) {
  DbOptions opts = MakeOptions();
  opts.tsb_enabled = true;
  opts.tsb_split_threshold = 0.5;
  OpenAndLoad(opts, SmallScale());
  MixStats stats;
  ASSERT_TRUE(workload_->RunMix(400, &stats).ok());
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
}

TEST_F(TpccTest, NewOrderRollbackRateRoughlyOnePercent) {
  OpenAndLoad(MakeOptions(false), SmallScale());
  uint64_t rollbacks = 0;
  const int kRuns = 600;
  for (int i = 0; i < kRuns; ++i) {
    bool committed = false;
    ASSERT_TRUE(workload_->NewOrder(&committed).ok());
    if (!committed) ++rollbacks;
  }
  EXPECT_GT(rollbacks, 0u);
  EXPECT_LT(rollbacks, kRuns / 20);  // ~1%, generously bounded
}

TEST_F(TpccTest, MultiWarehouseRemotePathsAuditClean) {
  // Two warehouses: remote Payments (15%) and remote NewOrder stock
  // updates (1%) cross warehouse boundaries; everything stays
  // audit-clean and consistent per warehouse.
  Scale scale = SmallScale();
  scale.warehouses = 2;
  OpenAndLoad(MakeOptions(), scale);
  MixStats stats;
  Status s = workload_->RunMix(300, &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  CheckYtdConsistency(1);
  CheckYtdConsistency(2);
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
}

TEST_F(TpccTest, CustomerByNameIndexAgreesWithTable) {
  OpenAndLoad(MakeOptions(), SmallScale());
  const auto& t = workload_->tables();
  ASSERT_NE(t.customer_by_name, 0u);
  // Every customer row must be reachable through its name index entry.
  size_t rows = 0;
  size_t indexed = 0;
  ASSERT_TRUE(db_->ScanCurrent(t.customer, "", "",
                               [&](const TupleData&) {
                                 ++rows;
                                 return Status::OK();
                               })
                  .ok());
  for (uint32_t w = 1; w <= workload_->scale().warehouses; ++w) {
    for (uint32_t d = 1; d <= workload_->scale().districts_per_warehouse;
         ++d) {
      for (int n = 0; n < 10; ++n) {
        char prefix[20];
        std::snprintf(prefix, sizeof(prefix), "%08x%08x", w, d);
        std::string secondary =
            std::string(prefix) + "NAME" + std::to_string(n);
        ASSERT_TRUE(db_->ScanIndex(t.customer_by_name, secondary,
                                   [&](Slice) {
                                     ++indexed;
                                     return Status::OK();
                                   })
                        .ok());
      }
    }
  }
  EXPECT_EQ(indexed, rows);
}

}  // namespace
}  // namespace tpcc
}  // namespace complydb
