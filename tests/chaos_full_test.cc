// Full-feature chaos: randomized interleavings of transactions, aborts,
// secondary-index lookups, retention changes, vacuums, litigation holds,
// clock jumps, crashes, and audits. Invariants: reads and index lookups
// always match the model, vacuums never touch current data or held keys,
// and every audit passes.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "common/random.h"
#include "db/compliant_db.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;
constexpr uint64_t kDay = 24ull * 3600 * 1'000'000;

// Rows are "<tag>|<payload>"; the index extracts the tag.
Result<std::string> TagExtractor(Slice value) {
  std::string v = value.ToString();
  size_t pos = v.find('|');
  if (pos == std::string::npos) return Status::InvalidArgument("no tag");
  return v.substr(0, pos);
}

class ChaosFullTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  DbOptions MakeOptions() {
    DbOptions opts;
    opts.dir = dir_;
    opts.cache_pages = 48;
    opts.clock = &clock_;
    opts.compliance.enabled = true;
    opts.compliance.hash_on_read = (GetParam() % 2) == 1;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    return opts;
  }

  void Open() {
    auto r = CompliantDB::Open(MakeOptions());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    db_.reset(r.value());
    if (table_ != 0) {
      auto idx = db_->AttachIndex(table_, "by_tag", TagExtractor);
      ASSERT_TRUE(idx.ok()) << idx.status().ToString();
      index_ = idx.value();
    }
  }

  SimulatedClock clock_;
  std::string dir_;
  uint32_t table_ = 0;
  uint32_t index_ = 0;
  std::unique_ptr<CompliantDB> db_;
};

TEST_P(ChaosFullTest, EverythingEverywhereStaysAuditClean) {
  dir_ = ::testing::TempDir() + "/chaosfull_" + std::to_string(GetParam());
  std::filesystem::remove_all(dir_);
  Random rng(GetParam() * 7919);
  Open();

  auto t = db_->CreateTable("chaos");
  ASSERT_TRUE(t.ok());
  table_ = t.value();
  auto idx = db_->CreateIndex(table_, "by_tag", TagExtractor);
  ASSERT_TRUE(idx.ok());
  index_ = idx.value();
  ASSERT_TRUE(db_->SetRetention(table_, 30 * kDay).ok());

  const char* kTags[] = {"RED", "BLUE", "GREEN"};
  std::map<std::string, std::optional<std::string>> model;
  std::set<std::string> held;

  auto tag_of = [](const std::string& value) {
    return value.substr(0, value.find('|'));
  };

  const int kSteps = 400;
  for (int step = 0; step < kSteps; ++step) {
    uint64_t op = rng.Uniform(100);
    std::string key = "key" + std::to_string(rng.Uniform(40));

    if (op < 40) {
      std::string value = std::string(kTags[rng.Uniform(3)]) + "|" +
                          rng.Bytes(1 + rng.Uniform(50));
      auto txn = db_->Begin();
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(db_->Put(txn.value(), table_, key, value).ok());
      if (rng.OneIn(5)) {
        ASSERT_TRUE(db_->Abort(txn.value()).ok());
      } else {
        ASSERT_TRUE(db_->Commit(txn.value()).ok());
        model[key] = value;
      }
    } else if (op < 48) {
      if (model.count(key) > 0 && model[key].has_value()) {
        auto txn = db_->Begin();
        ASSERT_TRUE(txn.ok());
        ASSERT_TRUE(db_->Delete(txn.value(), table_, key).ok());
        ASSERT_TRUE(db_->Commit(txn.value()).ok());
        model[key] = std::nullopt;
      }
    } else if (op < 58) {
      // Index lookup must match the model exactly.
      std::string tag = kTags[rng.Uniform(3)];
      std::set<std::string> expect;
      for (const auto& [k, v] : model) {
        if (v.has_value() && tag_of(*v) == tag) expect.insert(k);
      }
      std::set<std::string> got;
      ASSERT_TRUE(db_->ScanIndex(index_, tag,
                                 [&](Slice primary) {
                                   got.insert(primary.ToString());
                                   return Status::OK();
                                 })
                      .ok());
      EXPECT_EQ(got, expect) << "step " << step << " tag " << tag;
    } else if (op < 66) {
      // Point read vs model.
      std::string got;
      Status s = db_->Get(table_, key, &got);
      auto it = model.find(key);
      if (it != model.end() && it->second.has_value()) {
        ASSERT_TRUE(s.ok()) << "step " << step;
        EXPECT_EQ(got, *it->second);
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    } else if (op < 72) {
      // Holds come and go.
      if (held.count(key) > 0) {
        ASSERT_TRUE(db_->ReleaseHold(table_, key).ok());
        held.erase(key);
      } else {
        ASSERT_TRUE(db_->PlaceHold(table_, key).ok());
        held.insert(key);
      }
    } else if (op < 80) {
      // Time passes — sometimes far enough to expire history.
      uint64_t jump = rng.OneIn(4) ? (31 * kDay) : rng.Uniform(20 * kMinute);
      ASSERT_TRUE(db_->AdvanceClock(jump).ok());
    } else if (op < 86) {
      // Vacuum: never touches current values or held keys.
      auto before = model;
      auto vac = db_->Vacuum(table_);
      ASSERT_TRUE(vac.ok()) << vac.status().ToString();
      for (const auto& [k, v] : before) {
        std::string got;
        Status s = db_->Get(table_, k, &got);
        if (v.has_value()) {
          ASSERT_TRUE(s.ok()) << "vacuum destroyed current key " << k;
          EXPECT_EQ(got, *v);
        } else {
          EXPECT_TRUE(s.IsNotFound());
        }
      }
    } else if (op < 93) {
      db_.reset();  // crash
      Open();
    } else {
      auto report = db_->Audit();
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      ASSERT_TRUE(report.value().ok())
          << "step " << step
          << ", first problem: " << report.value().problems[0];
    }
  }

  // Held keys must still have their full histories intact if they were
  // ever superseded while held (spot check: the audit passes).
  ASSERT_TRUE(db_->FlushAll().ok());
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok())
      << "final audit, first problem: " << report.value().problems[0];
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFullTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12));

}  // namespace
}  // namespace complydb
