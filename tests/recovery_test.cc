// Crash-recovery edge cases (§IV-B): repeated crashes, torn WAL tails,
// recovery re-stamping, checkpoint truncation at audit, and WAL/LSN
// continuity across all of it.

#include "txn/recovery.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "db/compliant_db.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/recov_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  DbOptions MakeOptions() {
    DbOptions opts;
    opts.dir = dir_;
    opts.cache_pages = 32;
    opts.clock = &clock_;
    opts.compliance.enabled = true;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    return opts;
  }

  void Open() {
    auto r = CompliantDB::Open(MakeOptions());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    db_.reset(r.value());
  }

  void PutCommitted(uint32_t table, const std::string& key,
                    const std::string& value) {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(db_->Put(txn.value(), table, key, value).ok());
    ASSERT_TRUE(db_->Commit(txn.value()).ok());
  }

  void ExpectAuditOk() {
    auto report = db_->Audit();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report.value().ok())
        << "first problem: " << report.value().problems[0];
  }

  SimulatedClock clock_;
  std::string dir_;
  std::unique_ptr<CompliantDB> db_;
};

TEST_F(RecoveryTest, RepeatedCrashesAreIdempotent) {
  Open();
  auto t = db_->CreateTable("t");
  ASSERT_TRUE(t.ok());
  uint32_t tid = t.value();
  for (int i = 0; i < 25; ++i) {
    PutCommitted(tid, "k" + std::to_string(i), "v");
  }
  // Crash three times in a row without doing anything between.
  for (int crash = 0; crash < 3; ++crash) {
    db_.reset();
    Open();
    EXPECT_TRUE(db_->recovered_from_crash() || crash > 0);
  }
  std::string value;
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(db_->Get(tid, "k" + std::to_string(i), &value).ok()) << i;
  }
  ExpectAuditOk();
}

TEST_F(RecoveryTest, RecoveryRestampsCommittedTuples) {
  Open();
  auto t = db_->CreateTable("t");
  ASSERT_TRUE(t.ok());
  uint32_t tid = t.value();
  // Commit but crash before the lazy stamping daemon runs. The WAL commit
  // record is durable; the on-page tuple (if flushed) holds a txn id.
  PutCommitted(tid, "k", "v");
  ASSERT_TRUE(db_->cache()->FlushAll().ok());  // tuple reaches disk unstamped
  db_.reset();

  Open();
  EXPECT_TRUE(db_->recovered_from_crash());
  EXPECT_GE(db_->recovery_report().restamped, 1u);
  std::vector<TupleData> versions;
  ASSERT_TRUE(db_->GetHistory(tid, "k", &versions).ok());
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_TRUE(versions[0].stamped)
      << "recovery must complete lazy timestamping";
  ExpectAuditOk();
}

TEST_F(RecoveryTest, TornWalTailLosesOnlyUncommittedWork) {
  Open();
  auto t = db_->CreateTable("t");
  ASSERT_TRUE(t.ok());
  uint32_t tid = t.value();
  PutCommitted(tid, "durable", "yes");
  db_.reset();

  // Append garbage to the WAL, as a torn final write would leave.
  {
    std::FILE* f = std::fopen((dir_ + "/txn.wal").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[] = {'\x40', '\x00', '\x00', '\x00', '\x99'};
    std::fwrite(torn, 1, sizeof(torn), f);
    std::fclose(f);
  }
  Open();
  std::string value;
  ASSERT_TRUE(db_->Get(tid, "durable", &value).ok());
  EXPECT_EQ(value, "yes");
  ExpectAuditOk();
}

TEST_F(RecoveryTest, AuditTruncatesWalAndRecoveryStillWorks) {
  Open();
  auto t = db_->CreateTable("t");
  ASSERT_TRUE(t.ok());
  uint32_t tid = t.value();
  for (int i = 0; i < 50; ++i) {
    PutCommitted(tid, "pre" + std::to_string(i), "v");
  }
  uint64_t wal_before = std::filesystem::file_size(dir_ + "/txn.wal");
  ExpectAuditOk();
  uint64_t wal_after = std::filesystem::file_size(dir_ + "/txn.wal");
  EXPECT_LT(wal_after, wal_before) << "audit must checkpoint-truncate";
  EXPECT_EQ(wal_after, LogManager::kHeaderSize);

  // Post-audit work, then crash: only the new records replay.
  for (int i = 0; i < 20; ++i) {
    PutCommitted(tid, "post" + std::to_string(i), "v");
  }
  db_.reset();
  Open();
  EXPECT_TRUE(db_->recovered_from_crash());
  EXPECT_LT(db_->recovery_report().records_scanned, 300u);
  std::string value;
  ASSERT_TRUE(db_->Get(tid, "pre7", &value).ok());
  ASSERT_TRUE(db_->Get(tid, "post7", &value).ok());
  ExpectAuditOk();
}

TEST_F(RecoveryTest, LsnsContinueAcrossTruncation) {
  Open();
  auto t = db_->CreateTable("t");
  ASSERT_TRUE(t.ok());
  uint32_t tid = t.value();
  PutCommitted(tid, "a", "1");
  Lsn before = db_->wal()->next_lsn();
  ExpectAuditOk();
  EXPECT_GE(db_->wal()->base_lsn(), before)
      << "truncation must not rewind LSNs";
  PutCommitted(tid, "b", "2");
  EXPECT_GT(db_->wal()->next_lsn(), before);
}

TEST_F(RecoveryTest, CrashBetweenAuditsManyEpochs) {
  Open();
  auto t = db_->CreateTable("t");
  ASSERT_TRUE(t.ok());
  uint32_t tid = t.value();
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (int i = 0; i < 15; ++i) {
      PutCommitted(tid, "e" + std::to_string(epoch) + "k" + std::to_string(i),
                   "v");
    }
    if (epoch % 2 == 0) {
      db_.reset();  // crash in half the epochs
      Open();
    }
    clock_.AdvanceMicros(kMinute);
    ExpectAuditOk();
  }
  std::string value;
  ASSERT_TRUE(db_->Get(tid, "e0k3", &value).ok());
  ASSERT_TRUE(db_->Get(tid, "e3k14", &value).ok());
}

TEST_F(RecoveryTest, AbortedTxnIdsNeverReusedAcrossCrash) {
  Open();
  auto t = db_->CreateTable("t");
  ASSERT_TRUE(t.ok());
  uint32_t tid = t.value();
  // A committed txn, then an aborted txn, then crash.
  PutCommitted(tid, "k", "v");
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  TxnId aborted_id = txn.value()->id();
  ASSERT_TRUE(db_->Put(txn.value(), tid, "tmp", "x").ok());
  ASSERT_TRUE(db_->Abort(txn.value()).ok());
  db_.reset();

  Open();
  auto txn2 = db_->Begin();
  ASSERT_TRUE(txn2.ok());
  EXPECT_GT(txn2.value()->id(), aborted_id)
      << "reusing an aborted id would pair ABORT and STAMP_TRANS on L";
  ASSERT_TRUE(db_->Put(txn2.value(), tid, "fresh", "y").ok());
  ASSERT_TRUE(db_->Commit(txn2.value()).ok());
  ExpectAuditOk();
}

TEST_F(RecoveryTest, CrashDuringHeavySplitsRecovers) {
  DbOptions opts = MakeOptions();
  opts.cache_pages = 8;  // aggressive eviction during split storms
  {
    auto r = CompliantDB::Open(opts);
    ASSERT_TRUE(r.ok());
    db_.reset(r.value());
  }
  auto t = db_->CreateTable("t");
  ASSERT_TRUE(t.ok());
  uint32_t tid = t.value();
  for (int i = 0; i < 600; ++i) {
    PutCommitted(tid, "key" + std::to_string(i * 7919 % 100000),
                 std::string(60, 'x'));
  }
  db_.reset();
  {
    auto r = CompliantDB::Open(opts);
    ASSERT_TRUE(r.ok());
    db_.reset(r.value());
  }
  EXPECT_TRUE(db_->recovered_from_crash());
  ExpectAuditOk();
}

}  // namespace
}  // namespace complydb
