// Temporal (transaction-time) query semantics: AS-OF reads at every
// boundary, history across deletes, re-inserts, migration, vacuuming,
// and epochs — the transaction-time DBMS substrate of §II.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "db/compliant_db.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;
constexpr uint64_t kDay = 24ull * 3600 * 1'000'000;

class TemporalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/temporal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  DbOptions MakeOptions(bool tsb = false) {
    DbOptions opts;
    opts.dir = dir_;
    opts.cache_pages = 64;
    opts.clock = &clock_;
    opts.compliance.enabled = true;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    opts.tsb_enabled = tsb;
    return opts;
  }

  void Open(bool tsb = false) {
    auto r = CompliantDB::Open(MakeOptions(tsb));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    db_.reset(r.value());
  }

  // Commits and returns the commit time.
  uint64_t PutAt(uint32_t table, const std::string& key,
                 const std::string& value) {
    auto txn = db_->Begin();
    EXPECT_TRUE(txn.ok());
    EXPECT_TRUE(db_->Put(txn.value(), table, key, value).ok());
    EXPECT_TRUE(db_->Commit(txn.value()).ok());
    return db_->txns()->last_commit_time();
  }

  uint64_t DeleteAt(uint32_t table, const std::string& key) {
    auto txn = db_->Begin();
    EXPECT_TRUE(txn.ok());
    EXPECT_TRUE(db_->Delete(txn.value(), table, key).ok());
    EXPECT_TRUE(db_->Commit(txn.value()).ok());
    return db_->txns()->last_commit_time();
  }

  SimulatedClock clock_;
  std::string dir_;
  std::unique_ptr<CompliantDB> db_;
};

TEST_F(TemporalTest, AsOfAtExactBoundaries) {
  Open();
  auto t = db_->CreateTable("t");
  ASSERT_TRUE(t.ok());
  uint32_t tid = t.value();
  uint64_t t1 = PutAt(tid, "k", "v1");
  clock_.AdvanceMicros(kMinute);
  uint64_t t2 = PutAt(tid, "k", "v2");

  std::string value;
  // Exactly at a commit: that version is visible.
  ASSERT_TRUE(db_->GetAsOf(tid, "k", t1, &value).ok());
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(db_->GetAsOf(tid, "k", t2, &value).ok());
  EXPECT_EQ(value, "v2");
  // One tick before the first commit: nothing.
  EXPECT_TRUE(db_->GetAsOf(tid, "k", t1 - 1, &value).IsNotFound());
  // Between commits: the older version.
  ASSERT_TRUE(db_->GetAsOf(tid, "k", t2 - 1, &value).ok());
  EXPECT_EQ(value, "v1");
  // Far future: the latest.
  ASSERT_TRUE(db_->GetAsOf(tid, "k", t2 + kDay, &value).ok());
  EXPECT_EQ(value, "v2");
}

TEST_F(TemporalTest, DeleteAndReinsertLifecycle) {
  Open();
  auto t = db_->CreateTable("t");
  ASSERT_TRUE(t.ok());
  uint32_t tid = t.value();
  uint64_t t1 = PutAt(tid, "k", "alive-1");
  clock_.AdvanceMicros(kMinute);
  uint64_t t2 = DeleteAt(tid, "k");
  clock_.AdvanceMicros(kMinute);
  uint64_t t3 = PutAt(tid, "k", "alive-2");

  std::string value;
  ASSERT_TRUE(db_->GetAsOf(tid, "k", t1, &value).ok());
  EXPECT_EQ(value, "alive-1");
  EXPECT_TRUE(db_->GetAsOf(tid, "k", t2, &value).IsNotFound());
  EXPECT_TRUE(db_->GetAsOf(tid, "k", t3 - 1, &value).IsNotFound());
  ASSERT_TRUE(db_->GetAsOf(tid, "k", t3, &value).ok());
  EXPECT_EQ(value, "alive-2");

  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(tid, "k", &history).ok());
  ASSERT_EQ(history.size(), 3u);
  EXPECT_FALSE(history[0].eol);
  EXPECT_TRUE(history[1].eol);
  EXPECT_FALSE(history[2].eol);
}

TEST_F(TemporalTest, AsOfUnstampedVersionsResolveViaTxnTable) {
  Open();
  auto t = db_->CreateTable("t");
  ASSERT_TRUE(t.ok());
  uint32_t tid = t.value();
  // Commit without letting the lazy stamper run (no regret tick, under
  // the 64-commit stamping backlog).
  uint64_t t1 = PutAt(tid, "k", "fresh");
  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(tid, "k", &history).ok());
  ASSERT_EQ(history.size(), 1u);
  ASSERT_FALSE(history[0].stamped) << "precondition: still lazily stamped";

  std::string value;
  ASSERT_TRUE(db_->GetAsOf(tid, "k", t1, &value).ok());
  EXPECT_EQ(value, "fresh");
  EXPECT_TRUE(db_->GetAsOf(tid, "k", t1 - 1, &value).IsNotFound());
}

TEST_F(TemporalTest, AsOfAcrossWormMigration) {
  Open(/*tsb=*/true);
  auto t = db_->CreateTable("t");
  ASSERT_TRUE(t.ok());
  uint32_t tid = t.value();
  std::vector<uint64_t> commits;
  for (int i = 0; i < 120; ++i) {
    commits.push_back(PutAt(tid, "hot",
                            "v" + std::to_string(i) + std::string(90, '.')));
    clock_.AdvanceMicros(kMinute / 10);
  }
  ASSERT_TRUE(db_->FlushAll().ok());
  ASSERT_GT(db_->historical()->page_count(), 0u)
      << "precondition: some versions migrated to WORM";

  std::string value;
  for (int i = 0; i < 120; i += 17) {
    ASSERT_TRUE(db_->GetAsOf(tid, "hot", commits[i], &value).ok()) << i;
    EXPECT_EQ(value, "v" + std::to_string(i) + std::string(90, '.')) << i;
  }
}

TEST_F(TemporalTest, VacuumedVersionsBecomeInvisible) {
  Open();
  auto t = db_->CreateTable("t");
  ASSERT_TRUE(t.ok());
  uint32_t tid = t.value();
  ASSERT_TRUE(db_->SetRetention(tid, kDay).ok());
  uint64_t t1 = PutAt(tid, "k", "secret");
  clock_.AdvanceMicros(kMinute);
  PutAt(tid, "k", "public");
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().ok());
  clock_.AdvanceMicros(2 * kDay);
  auto vac = db_->Vacuum(tid);
  ASSERT_TRUE(vac.ok());
  ASSERT_EQ(vac.value().shredded, 1u);

  // The shredded version truly ceased to exist: even AS-OF can't see it.
  std::string value;
  EXPECT_TRUE(db_->GetAsOf(tid, "k", t1, &value).IsNotFound());
  ASSERT_TRUE(db_->Get(tid, "k", &value).ok());
  EXPECT_EQ(value, "public");
}

TEST_F(TemporalTest, HistorySurvivesEpochsAndReopens) {
  Open();
  auto t = db_->CreateTable("t");
  ASSERT_TRUE(t.ok());
  uint32_t tid = t.value();
  std::vector<uint64_t> commits;
  for (int epoch = 0; epoch < 3; ++epoch) {
    commits.push_back(PutAt(tid, "k", "epoch-" + std::to_string(epoch)));
    clock_.AdvanceMicros(kMinute);
    auto report = db_->Audit();
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report.value().ok());
    ASSERT_TRUE(db_->Close().ok());
    db_.reset();
    Open();
  }
  std::string value;
  for (int epoch = 0; epoch < 3; ++epoch) {
    ASSERT_TRUE(db_->GetAsOf(tid, "k", commits[epoch], &value).ok());
    EXPECT_EQ(value, "epoch-" + std::to_string(epoch));
  }
  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(tid, "k", &history).ok());
  EXPECT_EQ(history.size(), 3u);
}

}  // namespace
}  // namespace complydb
