// Read-only (forensic inspection) opens: full query access, zero
// mutation — no recovery, no compliance appends, no CLEAN-marker churn.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "db/compliant_db.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

class ReadOnlyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ro_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    // Seed a database.
    auto r = CompliantDB::Open(Options(false));
    ASSERT_TRUE(r.ok());
    db_.reset(r.value());
    auto t = db_->CreateTable("t");
    ASSERT_TRUE(t.ok());
    table_ = t.value();
    for (int i = 0; i < 30; ++i) {
      auto txn = db_->Begin();
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(db_->Put(txn.value(), table_, "k" + std::to_string(i),
                           "v" + std::to_string(i))
                      .ok());
      ASSERT_TRUE(db_->Commit(txn.value()).ok());
    }
    t1_ = db_->txns()->last_commit_time();
    ASSERT_TRUE(db_->Close().ok());
    db_.reset();
  }

  DbOptions Options(bool read_only) {
    DbOptions opts;
    opts.dir = dir_;
    opts.cache_pages = 64;
    opts.clock = &clock_;
    opts.compliance.enabled = true;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    opts.read_only = read_only;
    return opts;
  }

  SimulatedClock clock_;
  std::string dir_;
  uint32_t table_ = 0;
  uint64_t t1_ = 0;
  std::unique_ptr<CompliantDB> db_;
};

TEST_F(ReadOnlyTest, QueriesWorkMutationsRefused) {
  auto r = CompliantDB::Open(Options(true));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  db_.reset(r.value());

  std::string value;
  ASSERT_TRUE(db_->Get(table_, "k7", &value).ok());
  EXPECT_EQ(value, "v7");
  ASSERT_TRUE(db_->GetAsOf(table_, "k7", t1_, &value).ok());
  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(table_, "k7", &history).ok());
  EXPECT_EQ(history.size(), 1u);

  EXPECT_TRUE(db_->Begin().status().code() ==
              Status::Code::kNotSupported);
  EXPECT_TRUE(db_->CreateTable("nope").status().code() ==
              Status::Code::kNotSupported);
  EXPECT_TRUE(db_->Vacuum(table_).status().code() ==
              Status::Code::kNotSupported);
  EXPECT_TRUE(db_->Audit().status().code() == Status::Code::kNotSupported);
  ASSERT_TRUE(db_->Close().ok());
}

TEST_F(ReadOnlyTest, InspectionLeavesNoTrace) {
  // Snapshot the observable on-disk state.
  auto sizes = [&]() {
    std::map<std::string, uintmax_t> out;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(dir_)) {
      if (entry.is_regular_file()) {
        out[entry.path().string()] = entry.file_size();
      }
    }
    return out;
  };
  auto before = sizes();

  {
    auto r = CompliantDB::Open(Options(true));
    ASSERT_TRUE(r.ok());
    db_.reset(r.value());
    std::string value;
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(db_->Get(table_, "k" + std::to_string(i), &value).ok());
    }
    ASSERT_TRUE(db_->Close().ok());
    db_.reset();
  }
  auto after = sizes();
  EXPECT_EQ(before, after) << "read-only inspection mutated the evidence";

  // The writable engine still opens cleanly afterwards.
  auto r = CompliantDB::Open(Options(false));
  ASSERT_TRUE(r.ok());
  db_.reset(r.value());
  EXPECT_FALSE(db_->recovered_from_crash());
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok());
}

TEST_F(ReadOnlyTest, ReadOnlyAfterCrashSeesDurableState) {
  // Crash the writable instance, then inspect read-only: durable (flushed)
  // data is visible; nothing is modified.
  {
    auto r = CompliantDB::Open(Options(false));
    ASSERT_TRUE(r.ok());
    db_.reset(r.value());
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(db_->Put(txn.value(), table_, "post-crash", "x").ok());
    ASSERT_TRUE(db_->Commit(txn.value()).ok());
    db_.reset();  // crash (dirty pages lost)
  }
  auto r = CompliantDB::Open(Options(true));
  ASSERT_TRUE(r.ok());
  db_.reset(r.value());
  std::string value;
  ASSERT_TRUE(db_->Get(table_, "k3", &value).ok());
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();

  // A later writable open still runs real recovery.
  auto rw = CompliantDB::Open(Options(false));
  ASSERT_TRUE(rw.ok());
  db_.reset(rw.value());
  EXPECT_TRUE(db_->recovered_from_crash());
  ASSERT_TRUE(db_->Get(table_, "post-crash", &value).ok());
  EXPECT_EQ(value, "x");
}

}  // namespace
}  // namespace complydb
