// The threat-model validation suite (paper §II, §IV-C, §V): every attack
// Mala can mount against the files must either be refused (WORM surface)
// or detected by the next audit; with hash-page-on-read, even attacks she
// reverts before the audit are caught if any transaction read the
// tampered data.

#include "adversary/mala.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "common/coding.h"
#include "compliance/compliance_log.h"
#include "db/compliant_db.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

class AdversaryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/mala_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  DbOptions MakeOptions(bool hash_on_read = false) {
    DbOptions opts;
    opts.dir = dir_;
    opts.cache_pages = 64;
    opts.clock = &clock_;
    opts.compliance.enabled = true;
    opts.compliance.hash_on_read = hash_on_read;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    return opts;
  }

  void OpenDb(const DbOptions& opts) {
    auto r = CompliantDB::Open(opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    db_.reset(r.value());
  }

  // Seeds a table with committed data, flushed to disk, and cleanly
  // closes — Mala operates on the files of a closed database.
  uint32_t SeedAndClose(int keys, const DbOptions& opts) {
    OpenDb(opts);
    auto table = db_->CreateTable("ledger");
    EXPECT_TRUE(table.ok());
    table_ = table.value();
    for (int i = 0; i < keys; ++i) {
      auto txn = db_->Begin();
      EXPECT_TRUE(txn.ok());
      EXPECT_TRUE(db_->Put(txn.value(), table_,
                           "acct" + std::to_string(1000 + i),
                           "balance-" + std::to_string(i))
                      .ok());
      EXPECT_TRUE(db_->Commit(txn.value()).ok());
    }
    EXPECT_TRUE(db_->Close().ok());
    db_.reset();
    return table_;
  }

  void ReopenAndExpectAuditFails(const std::string& label) {
    OpenDb(MakeOptions());
    auto report = db_->Audit();
    ASSERT_TRUE(report.ok()) << label << ": " << report.status().ToString();
    EXPECT_FALSE(report.value().ok())
        << label << ": the audit failed to detect the attack";
  }

  SimulatedClock clock_;
  std::string dir_;
  uint32_t table_ = 0;
  std::unique_ptr<CompliantDB> db_;
};

TEST_F(AdversaryTest, CleanDatabasePassesControl) {
  SeedAndClose(50, MakeOptions());
  OpenDb(MakeOptions());
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok())
      << "control failed: " << report.value().problems[0];
}

TEST_F(AdversaryTest, TamperedValueDetected) {
  uint32_t table = SeedAndClose(50, MakeOptions());
  Mala mala(dir_ + "/data.db");
  ASSERT_TRUE(mala.TamperTupleValue(table, "acct1007").ok());
  ReopenAndExpectAuditFails("retroactive value alteration");
}

TEST_F(AdversaryTest, ShreddedUnexpiredTupleDetected) {
  uint32_t table = SeedAndClose(50, MakeOptions());
  // Find the version's start time through the closed DB's own files.
  OpenDb(MakeOptions());
  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(table, "acct1007", &history).ok());
  ASSERT_EQ(history.size(), 1u);
  uint64_t start = history[0].start;
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();

  Mala mala(dir_ + "/data.db");
  ASSERT_TRUE(mala.DeleteTupleVersion(table, "acct1007", start).ok());
  ReopenAndExpectAuditFails("premature shredding");
}

TEST_F(AdversaryTest, LeafSwapDetected) {
  uint32_t table = SeedAndClose(50, MakeOptions());
  Mala mala(dir_ + "/data.db");
  ASSERT_TRUE(mala.SwapLeafEntries(table).ok());
  ReopenAndExpectAuditFails("Fig. 2(b) leaf element swap");
}

TEST_F(AdversaryTest, InternalKeyTamperDetected) {
  // Enough keys to grow internal nodes.
  uint32_t table = SeedAndClose(2000, MakeOptions());
  Mala mala(dir_ + "/data.db");
  ASSERT_TRUE(mala.TamperInternalKey(table).ok());
  ReopenAndExpectAuditFails("Fig. 2(c) internal key tampering");
}

TEST_F(AdversaryTest, BackdatedInsertionDetected) {
  uint32_t table = SeedAndClose(50, MakeOptions());
  Mala mala(dir_ + "/data.db");
  ASSERT_TRUE(mala.InsertBackdatedTuple(table, "acct1025a", "forged-record",
                                        clock_.NowMicros() - kMinute)
                  .ok());
  ReopenAndExpectAuditFails("post-hoc insertion of a government record");
}

TEST_F(AdversaryTest, StateReversionUndetectedWithoutReadHashes) {
  // The base log-consistent architecture cannot see a tamper-then-revert
  // (its query verification interval is infinite, §V). This test pins
  // down that documented limitation.
  uint32_t table = SeedAndClose(50, MakeOptions(/*hash_on_read=*/false));
  Mala mala(dir_ + "/data.db");
  ASSERT_TRUE(mala.TamperTupleValue(table, "acct1007").ok());

  // A reader consumes the tampered value...
  OpenDb(MakeOptions(/*hash_on_read=*/false));
  std::string value;
  ASSERT_TRUE(db_->Get(table, "acct1007", &value).ok());
  EXPECT_NE(value, "balance-7");  // the lie was served
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();

  // ...Mala reverts before the audit (the XOR tamper is an involution).
  ASSERT_TRUE(mala.TamperTupleValue(table, "acct1007").ok());

  OpenDb(MakeOptions(false));
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok()) << "base architecture should NOT detect "
                                      "a reverted tamper";
}

TEST_F(AdversaryTest, StateReversionCaughtByHashPageOnRead) {
  // Same attack, hash-page-on-read enabled: the READ record of the
  // tampered page pins the lie (§V).
  uint32_t table = SeedAndClose(50, MakeOptions(/*hash_on_read=*/true));
  Mala mala(dir_ + "/data.db");
  ASSERT_TRUE(mala.TamperTupleValue(table, "acct1007").ok());

  OpenDb(MakeOptions(/*hash_on_read=*/true));
  std::string value;
  ASSERT_TRUE(db_->Get(table, "acct1007", &value).ok());
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();

  ASSERT_TRUE(mala.TamperTupleValue(table, "acct1007").ok());  // revert

  OpenDb(MakeOptions(true));
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().ok())
      << "hash-page-on-read must catch the read of tampered data";
}

TEST_F(AdversaryTest, IndexStateReversionCaughtByHashPageOnRead) {
  // Tamper an internal separator, let a query descend through it, revert
  // before the audit: index-page READ hashes (§V) pin the lie just like
  // data-page hashes do.
  uint32_t table = SeedAndClose(2000, MakeOptions(/*hash_on_read=*/true));
  Mala mala(dir_ + "/data.db");
  ASSERT_TRUE(mala.TamperInternalKey(table, +1).ok());

  OpenDb(MakeOptions(/*hash_on_read=*/true));
  std::string value;
  // Descend: reads internal pages from disk (cold cache).
  (void)db_->Get(table, "acct2500", &value);
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();

  ASSERT_TRUE(mala.TamperInternalKey(table, -1).ok());  // revert

  OpenDb(MakeOptions(true));
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().ok())
      << "index-page hash-on-read must catch the tampered descent";
  bool found = false;
  for (const auto& p : report.value().problems) {
    if (p.find("index page") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << "expected an index-page finding; first: "
                     << report.value().problems[0];
}

TEST_F(AdversaryTest, WalTruncationDetected) {
  DbOptions opts = MakeOptions();
  OpenDb(opts);
  auto table = db_->CreateTable("ledger");
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 30; ++i) {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(
        db_->Put(txn.value(), table.value(), "k" + std::to_string(i), "v")
            .ok());
    ASSERT_TRUE(db_->Commit(txn.value()).ok());
  }
  // Crash (dirty pages lost; WAL holds the only copy of recent commits).
  db_.reset();

  Mala mala(dir_ + "/data.db");
  ASSERT_TRUE(mala.TruncateWalFile(dir_ + "/txn.wal", 512).ok());

  OpenDb(MakeOptions());
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report.value().ok())
      << "WORM log tail must expose the truncated WAL";
}

TEST_F(AdversaryTest, SpuriousAbortAppendDetected) {
  // Mala CAN append to L (WORM files are appendable); a forged ABORT for
  // a committed transaction must fail the audit.
  SeedAndClose(20, MakeOptions());

  OpenDb(MakeOptions());
  // Identify some committed transaction from the stamp index.
  ComplianceLog log(db_->worm(), db_->epoch());
  ASSERT_TRUE(log.OpenExisting().ok());
  TxnId victim = 0;
  ASSERT_TRUE(log.ScanStampIndex([&](TxnId txn, uint64_t, uint64_t) {
                    victim = txn;
                    return Status::OK();
                  })
                  .ok());
  ASSERT_NE(victim, 0u);

  CRecord fake;
  fake.type = CRecordType::kAbort;
  fake.txn_id = victim;
  ASSERT_TRUE(
      db_->worm()->Append(LogFileName(db_->epoch()), fake.Encode()).ok());

  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().ok())
      << "ABORT+STAMP_TRANS for one txn must be flagged";
}

TEST_F(AdversaryTest, SpuriousUndoAppendDetected) {
  uint32_t table = SeedAndClose(20, MakeOptions());
  OpenDb(MakeOptions());

  // Forge an UNDO that tries to license removing a committed tuple.
  std::vector<TupleData> history;
  ASSERT_TRUE(db_->GetHistory(table, "acct1003", &history).ok());
  ASSERT_EQ(history.size(), 1u);
  CRecord fake;
  fake.type = CRecordType::kUndo;
  fake.tree_id = table;
  fake.pgno = 1;  // she has to guess/scan; any leaf works for the forgery
  fake.tuple = EncodeTuple(history[0]);
  ASSERT_TRUE(
      db_->worm()->Append(LogFileName(db_->epoch()), fake.Encode()).ok());

  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().ok())
      << "an unjustified UNDO in L must be flagged";
}

TEST_F(AdversaryTest, CatalogRootRedirectDetected) {
  // Mala edits the meta-page catalog to point table 'ledger' at another
  // tree's root — queries would silently read the wrong relation. Before
  // the first audit the WAL still holds catalog page images and redo
  // heals the edit; after an audit (WAL truncated) the tamper persists
  // and the auditor's catalog cross-check must flag it.
  SeedAndClose(50, MakeOptions());
  {
    OpenDb(MakeOptions());
    auto report = db_->Audit();
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report.value().ok());
    ASSERT_TRUE(db_->Close().ok());
    db_.reset();
  }

  {
    auto disk = DiskManager::Open(dir_ + "/data.db");
    ASSERT_TRUE(disk.ok());
    std::unique_ptr<DiskManager> d(disk.value());
    Page meta;
    ASSERT_TRUE(d->ReadPage(kMetaPage, &meta).ok());
    ASSERT_GT(meta.slot_count(), 0);
    // Decode, redirect every root to the first one, re-encode.
    Slice rec = meta.RecordAt(0);
    Decoder dec(Slice(rec.data() + 2, rec.size() - 2));
    uint32_t count = 0;
    ASSERT_TRUE(dec.GetFixed32(&count).ok());
    std::string body;
    PutFixed32(&body, count);
    uint32_t first_root = 0;
    for (uint32_t i = 0; i < count; ++i) {
      std::string name;
      uint32_t tree_id = 0, root = 0;
      ASSERT_TRUE(dec.GetLengthPrefixed(&name).ok());
      ASSERT_TRUE(dec.GetFixed32(&tree_id).ok());
      ASSERT_TRUE(dec.GetFixed32(&root).ok());
      if (i == 0) first_root = root;
      PutLengthPrefixed(&body, name);
      PutFixed32(&body, tree_id);
      PutFixed32(&body, first_root);  // all tables now share one root
    }
    std::string record;
    PutFixed16(&record, static_cast<uint16_t>(2 + body.size()));
    record += body;
    ASSERT_TRUE(meta.EraseRecord(0).ok());
    ASSERT_TRUE(meta.InsertRecord(0, record).ok());
    ASSERT_TRUE(d->WritePage(kMetaPage, meta).ok());
  }

  ReopenAndExpectAuditFails("catalog root redirection");
}

TEST_F(AdversaryTest, WormSurfaceRefusesTampering) {
  SeedAndClose(10, MakeOptions());
  OpenDb(MakeOptions());
  Mala mala(dir_ + "/data.db");
  uint64_t violations_before = db_->worm()->violation_count();
  Status s = mala.AttackWormStore(db_->worm(), LogFileName(db_->epoch()));
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(db_->worm()->violation_count(), violations_before);
  // And the store is unharmed: the audit still passes.
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok());
}

TEST_F(AdversaryTest, TamperWhileDbRunningCaughtAtNextAudit) {
  // Mala edits the file while the DBMS is live (between flushes); the
  // next audit reads the disk, not the cache.
  uint32_t table = 0;
  {
    OpenDb(MakeOptions());
    auto t = db_->CreateTable("ledger");
    ASSERT_TRUE(t.ok());
    table = t.value();
    for (int i = 0; i < 30; ++i) {
      auto txn = db_->Begin();
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(db_->Put(txn.value(), table, "k" + std::to_string(i), "v")
                      .ok());
      ASSERT_TRUE(db_->Commit(txn.value()).ok());
    }
    ASSERT_TRUE(db_->FlushAll().ok());
  }
  Mala mala(dir_ + "/data.db");
  ASSERT_TRUE(mala.TamperTupleValue(table, "k5").ok());
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().ok());
}

}  // namespace
}  // namespace complydb
