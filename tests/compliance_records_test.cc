// Unit tests for the compliance-log substrate: record framing, the log
// and stamp index, snapshot signing, and the shared replayer.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "btree/tuple.h"
#include "common/clock.h"
#include "compliance/compliance_log.h"
#include "compliance/page_replay.h"
#include "compliance/records.h"
#include "compliance/snapshot.h"

namespace complydb {
namespace {

std::string MakeTupleRecord(const std::string& key, uint64_t start,
                            uint16_t order_no, bool stamped,
                            const std::string& value = "v",
                            bool eol = false) {
  TupleData t;
  t.key = key;
  t.value = value;
  t.start = start;
  t.order_no = order_no;
  t.stamped = stamped;
  t.eol = eol;
  return EncodeTuple(t);
}

TEST(CRecordTest, EncodeDecodeAllFields) {
  CRecord rec;
  rec.type = CRecordType::kPageSplit;
  rec.tree_id = 3;
  rec.pgno = 7;
  rec.new_pgno = 8;
  rec.third_pgno = 9;
  rec.txn_id = 42;
  rec.commit_time = 99;
  rec.timestamp = 123;
  rec.order_no = 5;
  rec.start = 77;
  rec.tuple = "tuple-bytes";
  rec.key = "key-bytes";
  rec.hash = std::string(32, 'h');
  rec.name = "hist_00000003_00000001";
  rec.entries_a = {"a1", "a2"};
  rec.entries_b = {"b1"};

  std::string framed = rec.Encode();
  CRecord back;
  size_t consumed = 0;
  ASSERT_TRUE(CRecord::Decode(framed, &back, &consumed).ok());
  EXPECT_EQ(consumed, framed.size());
  EXPECT_EQ(back.type, rec.type);
  EXPECT_EQ(back.tree_id, 3u);
  EXPECT_EQ(back.pgno, 7u);
  EXPECT_EQ(back.new_pgno, 8u);
  EXPECT_EQ(back.third_pgno, 9u);
  EXPECT_EQ(back.txn_id, 42u);
  EXPECT_EQ(back.commit_time, 99u);
  EXPECT_EQ(back.timestamp, 123u);
  EXPECT_EQ(back.order_no, 5);
  EXPECT_EQ(back.start, 77u);
  EXPECT_EQ(back.tuple, "tuple-bytes");
  EXPECT_EQ(back.key, "key-bytes");
  EXPECT_EQ(back.hash, std::string(32, 'h'));
  EXPECT_EQ(back.name, rec.name);
  EXPECT_EQ(back.entries_a, rec.entries_a);
  EXPECT_EQ(back.entries_b, rec.entries_b);
}

TEST(CRecordTest, DecodeRejectsFlippedByte) {
  CRecord rec;
  rec.type = CRecordType::kNewTuple;
  rec.tuple = "payload";
  std::string framed = rec.Encode();
  framed[framed.size() / 2] ^= 0x10;
  CRecord back;
  size_t consumed = 0;
  EXPECT_TRUE(CRecord::Decode(framed, &back, &consumed).IsCorruption());
}

TEST(CRecordTest, ScanMultipleRecords) {
  std::string blob;
  for (int i = 0; i < 5; ++i) {
    CRecord rec;
    rec.type = CRecordType::kHeartbeat;
    rec.timestamp = static_cast<uint64_t>(i);
    blob += rec.Encode();
  }
  int count = 0;
  ASSERT_TRUE(ScanCRecords(blob, [&](const CRecord& rec, uint64_t) {
                EXPECT_EQ(rec.timestamp, static_cast<uint64_t>(count));
                ++count;
                return Status::OK();
              }).ok());
  EXPECT_EQ(count, 5);
}

class ComplianceLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/clog_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    auto r = WormStore::Open(dir_, &clock_);
    ASSERT_TRUE(r.ok());
    worm_.reset(r.value());
  }

  SimulatedClock clock_;
  std::string dir_;
  std::unique_ptr<WormStore> worm_;
};

TEST_F(ComplianceLogTest, AppendScanRoundTrip) {
  ComplianceLog log(worm_.get(), 0);
  ASSERT_TRUE(log.Create().ok());
  for (int i = 0; i < 10; ++i) {
    CRecord rec;
    rec.type = CRecordType::kStampTrans;
    rec.txn_id = static_cast<TxnId>(100 + i);
    rec.commit_time = static_cast<uint64_t>(200 + i);
    ASSERT_TRUE(log.Append(rec).ok());
  }
  EXPECT_EQ(log.record_count(), 10u);
  int seen = 0;
  ASSERT_TRUE(log.Scan([&](const CRecord& rec, uint64_t) {
                EXPECT_EQ(rec.txn_id, static_cast<TxnId>(100 + seen));
                ++seen;
                return Status::OK();
              }).ok());
  EXPECT_EQ(seen, 10);

  // The stamp index mirrors the STAMP_TRANS records.
  int index_seen = 0;
  ASSERT_TRUE(log.ScanStampIndex([&](TxnId txn, uint64_t, uint64_t commit) {
                   EXPECT_EQ(txn, static_cast<TxnId>(100 + index_seen));
                   EXPECT_EQ(commit, static_cast<uint64_t>(200 + index_seen));
                   ++index_seen;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(index_seen, 10);
}

TEST_F(ComplianceLogTest, OpenExistingResumesSize) {
  {
    ComplianceLog log(worm_.get(), 2);
    ASSERT_TRUE(log.Create().ok());
    CRecord rec;
    rec.type = CRecordType::kHeartbeat;
    ASSERT_TRUE(log.Append(rec).ok());
  }
  ComplianceLog log(worm_.get(), 2);
  ASSERT_TRUE(log.OpenExisting().ok());
  EXPECT_EQ(log.record_count(), 1u);
  EXPECT_GT(log.size(), 0u);
}

TEST_F(ComplianceLogTest, SummarizeDetectsConflicts) {
  ComplianceLog log(worm_.get(), 0);
  ASSERT_TRUE(log.Create().ok());
  CRecord stamp;
  stamp.type = CRecordType::kStampTrans;
  stamp.txn_id = 5;
  stamp.commit_time = 50;
  ASSERT_TRUE(log.Append(stamp).ok());
  // Identical duplicate: tolerated.
  ASSERT_TRUE(log.Append(stamp).ok());
  // Different commit time for the same txn: conflict.
  stamp.commit_time = 60;
  ASSERT_TRUE(log.Append(stamp).ok());
  // Abort of a stamped txn: conflict.
  CRecord abort_rec;
  abort_rec.type = CRecordType::kAbort;
  abort_rec.txn_id = 5;
  ASSERT_TRUE(log.Append(abort_rec).ok());

  LogSummary summary;
  ASSERT_TRUE(SummarizeLog(log, &summary).ok());
  EXPECT_EQ(summary.problems.size(), 2u);
  EXPECT_EQ(summary.stamps.at(5), 50u);  // first one wins
  EXPECT_EQ(summary.aborts.count(5), 1u);
}

// --- Snapshot ---

TEST_F(ComplianceLogTest, SnapshotSignRoundTrip) {
  Snapshot snap;
  snap.epoch = 3;
  snap.audit_time = 999;
  snap.trees.push_back({7, 12, "accounts"});
  Snapshot::PageEntry page;
  page.tree_id = 7;
  page.pgno = 12;
  page.records.push_back(MakeTupleRecord("k", 10, 0, true));
  snap.pages.push_back(page);
  snap.identity_hash.Add("x");
  snap.migrated_hash.Add("y");

  ASSERT_TRUE(snap.WriteSigned(worm_.get(), "secret-key").ok());
  auto back = Snapshot::ReadVerified(worm_.get(), 3, "secret-key");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().audit_time, 999u);
  ASSERT_EQ(back.value().trees.size(), 1u);
  EXPECT_EQ(back.value().trees[0].name, "accounts");
  ASSERT_EQ(back.value().pages.size(), 1u);
  EXPECT_EQ(back.value().pages[0].records.size(), 1u);
  EXPECT_EQ(back.value().identity_hash, snap.identity_hash);
  EXPECT_EQ(back.value().migrated_hash, snap.migrated_hash);
}

TEST_F(ComplianceLogTest, SnapshotRejectsWrongKey) {
  Snapshot snap;
  snap.epoch = 4;
  ASSERT_TRUE(snap.WriteSigned(worm_.get(), "right-key").ok());
  auto back = Snapshot::ReadVerified(worm_.get(), 4, "wrong-key");
  EXPECT_TRUE(back.status().IsTampered());
}

// --- PageReplayer ---

class ReplayerTest : public ::testing::Test {
 protected:
  PageReplayer MakeReplayer(bool verify = true) {
    PageReplayer::Options opts;
    opts.verify = verify;
    opts.verify_read_hashes = verify;
    return PageReplayer(opts, &summary_);
  }

  CRecord NewTuple(PageId pgno, const std::string& record) {
    CRecord rec;
    rec.type = CRecordType::kNewTuple;
    rec.tree_id = 1;
    rec.pgno = pgno;
    rec.tuple = record;
    return rec;
  }

  LogSummary summary_;
};

TEST_F(ReplayerTest, InsertStampUndoFlow) {
  summary_.stamps[100] = 150;
  summary_.aborts.insert(200);
  auto replayer = MakeReplayer();

  // Committed tuple, lazily stamped on-page.
  ASSERT_TRUE(
      replayer.Apply(NewTuple(5, MakeTupleRecord("a", 100, 0, false)), 0)
          .ok());
  CRecord stamp;
  stamp.type = CRecordType::kStampPage;
  stamp.tree_id = 1;
  stamp.pgno = 5;
  stamp.order_no = 0;
  stamp.txn_id = 100;
  stamp.commit_time = 150;
  ASSERT_TRUE(replayer.Apply(stamp, 1).ok());

  // Aborted tuple: insert then justified UNDO.
  std::string aborted = MakeTupleRecord("b", 200, 1, false);
  ASSERT_TRUE(replayer.Apply(NewTuple(5, aborted), 2).ok());
  CRecord undo;
  undo.type = CRecordType::kUndo;
  undo.tree_id = 1;
  undo.pgno = 5;
  undo.tuple = aborted;
  ASSERT_TRUE(replayer.Apply(undo, 3).ok());
  ASSERT_TRUE(replayer.Finalize().ok());

  EXPECT_TRUE(replayer.problems().empty())
      << replayer.problems().front();
  const auto& state = replayer.pages().at({1, 5});
  ASSERT_EQ(state.size(), 1u);
  TupleData t;
  ASSERT_TRUE(DecodeTuple(state.at(0), &t).ok());
  EXPECT_TRUE(t.stamped);
  EXPECT_EQ(t.start, 150u);
}

TEST_F(ReplayerTest, UnjustifiedUndoOfStampedTupleFlagged) {
  summary_.stamps[100] = 150;
  auto replayer = MakeReplayer();
  std::string record = MakeTupleRecord("a", 150, 0, true);
  ASSERT_TRUE(replayer.Apply(NewTuple(5, record), 0).ok());
  CRecord undo;
  undo.type = CRecordType::kUndo;
  undo.tree_id = 1;
  undo.pgno = 5;
  undo.tuple = record;
  ASSERT_TRUE(replayer.Apply(undo, 1).ok());
  ASSERT_TRUE(replayer.Finalize().ok());
  EXPECT_FALSE(replayer.problems().empty());
}

TEST_F(ReplayerTest, MoveJustifiedUndoIsClean) {
  // UNDO on one page + identical-identity NEW_TUPLE on another = a move
  // (crash reconciliation); the tuple survives, so no problem.
  summary_.stamps[100] = 150;
  auto replayer = MakeReplayer();
  std::string record = MakeTupleRecord("a", 150, 0, true);
  ASSERT_TRUE(replayer.Apply(NewTuple(5, record), 0).ok());
  ASSERT_TRUE(replayer.Apply(NewTuple(9, record), 1).ok());
  CRecord undo;
  undo.type = CRecordType::kUndo;
  undo.tree_id = 1;
  undo.pgno = 5;
  undo.tuple = record;
  ASSERT_TRUE(replayer.Apply(undo, 2).ok());
  ASSERT_TRUE(replayer.Finalize().ok());
  EXPECT_TRUE(replayer.problems().empty())
      << replayer.problems().front();
}

TEST_F(ReplayerTest, SplitUnionMismatchFlagged) {
  auto replayer = MakeReplayer();
  std::string r0 = MakeTupleRecord("a", 10, 0, true);
  std::string r1 = MakeTupleRecord("b", 11, 1, true);
  ASSERT_TRUE(replayer.Apply(NewTuple(5, r0), 0).ok());
  ASSERT_TRUE(replayer.Apply(NewTuple(5, r1), 1).ok());

  CRecord split;
  split.type = CRecordType::kPageSplit;
  split.tree_id = 1;
  split.pgno = 5;
  split.new_pgno = 6;
  split.entries_a = {r0};
  split.entries_b = {};  // r1 vanished in the "split": union mismatch
  ASSERT_TRUE(replayer.Apply(split, 2).ok());
  EXPECT_FALSE(replayer.problems().empty());
}

TEST_F(ReplayerTest, ReadHashVerification) {
  auto replayer = MakeReplayer();
  std::string r0 = MakeTupleRecord("a", 10, 0, true);
  ASSERT_TRUE(replayer.Apply(NewTuple(5, r0), 0).ok());

  PageReplayer::PageState state{{0, r0}};
  Sha256Digest good = PageReplayer::HashPageState(state);
  CRecord read;
  read.type = CRecordType::kReadHash;
  read.tree_id = 1;
  read.pgno = 5;
  read.hash.assign(reinterpret_cast<const char*>(good.data()), good.size());
  ASSERT_TRUE(replayer.Apply(read, 1).ok());
  EXPECT_TRUE(replayer.problems().empty());
  EXPECT_EQ(replayer.read_hashes_checked(), 1u);

  read.hash[0] ^= 0x1;
  ASSERT_TRUE(replayer.Apply(read, 2).ok());
  EXPECT_FALSE(replayer.problems().empty());
}

TEST_F(ReplayerTest, DuplicateNewTupleIdenticalTolerated) {
  auto replayer = MakeReplayer();
  std::string r0 = MakeTupleRecord("a", 10, 0, true);
  ASSERT_TRUE(replayer.Apply(NewTuple(5, r0), 0).ok());
  ASSERT_TRUE(replayer.Apply(NewTuple(5, r0), 1).ok());  // recovery dup
  EXPECT_TRUE(replayer.problems().empty());
  EXPECT_EQ(replayer.pages().at({1, 5}).size(), 1u);

  // Conflicting bytes at the same slot: flagged.
  std::string other = MakeTupleRecord("z", 99, 0, true);
  ASSERT_TRUE(replayer.Apply(NewTuple(5, other), 2).ok());
  EXPECT_FALSE(replayer.problems().empty());
}

TEST_F(ReplayerTest, IdentityDeltaTracksNetChange) {
  summary_.stamps[100] = 150;
  auto replayer = MakeReplayer();
  std::string keep = MakeTupleRecord("keep", 150, 0, true);
  std::string gone = MakeTupleRecord("gone", 150, 1, true);
  ASSERT_TRUE(replayer.Apply(NewTuple(5, keep), 0).ok());
  ASSERT_TRUE(replayer.Apply(NewTuple(5, gone), 1).ok());
  CRecord undo;
  undo.type = CRecordType::kUndo;
  undo.tree_id = 1;
  undo.pgno = 5;
  undo.tuple = gone;
  ASSERT_TRUE(replayer.Apply(undo, 2).ok());

  AddHash expect;
  auto id = TupleIdentity(1, keep, summary_.stamps);
  ASSERT_TRUE(id.ok());
  expect.Add(id.value());
  EXPECT_EQ(replayer.identity_delta(), expect);
}

}  // namespace
}  // namespace complydb
