// Secondary indexes: maintained transactionally inside the base write,
// versioned like any relation, and therefore audited like one.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "db/compliant_db.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

// Rows are "last_name|rest"; the index extracts the part before '|'.
Result<std::string> LastNameExtractor(Slice value) {
  std::string v = value.ToString();
  size_t pos = v.find('|');
  if (pos == std::string::npos) {
    return Status::InvalidArgument("row has no last-name field");
  }
  return v.substr(0, pos);
}

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idx_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    Open();
    auto t = db_->CreateTable("customers");
    ASSERT_TRUE(t.ok());
    table_ = t.value();
    auto idx = db_->CreateIndex(table_, "by_last_name", LastNameExtractor);
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    index_ = idx.value();
  }

  DbOptions MakeOptions() {
    DbOptions opts;
    opts.dir = dir_;
    opts.cache_pages = 64;
    opts.clock = &clock_;
    opts.compliance.enabled = true;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    return opts;
  }

  void Open() {
    auto r = CompliantDB::Open(MakeOptions());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    db_.reset(r.value());
  }

  void PutCommitted(const std::string& key, const std::string& value) {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    Status s = db_->Put(txn.value(), table_, key, value);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_TRUE(db_->Commit(txn.value()).ok());
  }

  std::vector<std::string> Lookup(const std::string& last_name) {
    std::vector<std::string> out;
    Status s = db_->ScanIndex(index_, last_name, [&](Slice primary) {
      out.push_back(primary.ToString());
      return Status::OK();
    });
    EXPECT_TRUE(s.ok()) << s.ToString();
    return out;
  }

  SimulatedClock clock_;
  std::string dir_;
  uint32_t table_ = 0;
  uint32_t index_ = 0;
  std::unique_ptr<CompliantDB> db_;
};

TEST_F(IndexTest, LookupByderivedKey) {
  PutCommitted("c1", "SMITH|data1");
  PutCommitted("c2", "JONES|data2");
  PutCommitted("c3", "SMITH|data3");

  auto smiths = Lookup("SMITH");
  ASSERT_EQ(smiths.size(), 2u);
  EXPECT_EQ(smiths[0], "c1");
  EXPECT_EQ(smiths[1], "c3");
  EXPECT_EQ(Lookup("JONES").size(), 1u);
  EXPECT_TRUE(Lookup("DOE").empty());
}

TEST_F(IndexTest, UpdateMovesIndexEntry) {
  PutCommitted("c1", "SMITH|original");
  PutCommitted("c1", "TAYLOR|married");
  EXPECT_TRUE(Lookup("SMITH").empty());
  ASSERT_EQ(Lookup("TAYLOR").size(), 1u);
  EXPECT_EQ(Lookup("TAYLOR")[0], "c1");
}

TEST_F(IndexTest, UpdateWithSameSecondaryKeepsEntry) {
  PutCommitted("c1", "SMITH|v1");
  PutCommitted("c1", "SMITH|v2");
  ASSERT_EQ(Lookup("SMITH").size(), 1u);
  std::string value;
  ASSERT_TRUE(db_->Get(table_, "c1", &value).ok());
  EXPECT_EQ(value, "SMITH|v2");
}

TEST_F(IndexTest, DeleteRetiresIndexEntry) {
  PutCommitted("c1", "SMITH|x");
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db_->Delete(txn.value(), table_, "c1").ok());
  ASSERT_TRUE(db_->Commit(txn.value()).ok());
  EXPECT_TRUE(Lookup("SMITH").empty());
}

TEST_F(IndexTest, AbortRollsBackIndexToo) {
  PutCommitted("c1", "SMITH|x");
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db_->Put(txn.value(), table_, "c1", "TAYLOR|y").ok());
  ASSERT_TRUE(db_->Abort(txn.value()).ok());
  ASSERT_EQ(Lookup("SMITH").size(), 1u);
  EXPECT_TRUE(Lookup("TAYLOR").empty());
}

TEST_F(IndexTest, RejectsNulInDerivedKey) {
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  std::string bad = std::string("SM\0TH", 5) + "|x";
  EXPECT_TRUE(db_->Put(txn.value(), table_, "c1", bad).IsInvalidArgument());
  ASSERT_TRUE(db_->Abort(txn.value()).ok());
}

TEST_F(IndexTest, IndexedWritesPassAudit) {
  for (int i = 0; i < 40; ++i) {
    PutCommitted("c" + std::to_string(i),
                 (i % 3 == 0 ? "SMITH|" : "JONES|") + std::to_string(i));
  }
  for (int i = 0; i < 40; i += 5) {
    PutCommitted("c" + std::to_string(i), "TAYLOR|upd" + std::to_string(i));
  }
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
}

TEST_F(IndexTest, AttachAfterReopen) {
  PutCommitted("c1", "SMITH|x");
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();
  Open();
  auto attached = db_->AttachIndex(table_, "by_last_name", LastNameExtractor);
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  index_ = attached.value();
  ASSERT_EQ(Lookup("SMITH").size(), 1u);
  // Maintenance continues after re-attach.
  PutCommitted("c1", "TAYLOR|y");
  EXPECT_TRUE(Lookup("SMITH").empty());
  EXPECT_EQ(Lookup("TAYLOR").size(), 1u);
}

TEST_F(IndexTest, TamperedIndexEntryFailsAudit) {
  // The index tree gets the same §IV-C protection as data trees: edit an
  // index entry on disk and the audit flags it.
  for (int i = 0; i < 30; ++i) {
    PutCommitted("c" + std::to_string(i), "SMITH|" + std::to_string(i));
  }
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();

  // Flip a byte inside the index tree's leaf records.
  {
    auto disk = DiskManager::Open(dir_ + "/data.db");
    ASSERT_TRUE(disk.ok());
    std::unique_ptr<DiskManager> d(disk.value());
    bool tampered = false;
    for (PageId pgno = 1; pgno < d->PageCount() && !tampered; ++pgno) {
      Page page;
      ASSERT_TRUE(d->ReadPage(pgno, &page).ok());
      if (!page.IsFormatted() || page.type() != PageType::kBtreeLeaf ||
          page.tree_id() != index_ || page.slot_count() == 0) {
        continue;
      }
      page.data()[kPageSize - 10] ^= 0x1;
      ASSERT_TRUE(d->WritePage(pgno, page).ok());
      tampered = true;
    }
    ASSERT_TRUE(tampered);
  }
  Open();
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().ok());
}

}  // namespace
}  // namespace complydb
