// TPC-C schema unit tests: row codec round-trips and composite-key
// ordering properties (big-endian encodings must sort numerically).

#include "tpcc/schema.h"

#include <gtest/gtest.h>

#include "tpcc/tpcc_random.h"

namespace complydb {
namespace tpcc {
namespace {

TEST(TpccSchemaTest, WarehouseRowRoundTrip) {
  WarehouseRow row;
  row.name = "warehouse-7";
  row.tax_bp = 1250;
  row.ytd_cents = -42;  // signed fields survive
  WarehouseRow back;
  ASSERT_TRUE(WarehouseRow::Decode(row.Encode(), &back).ok());
  EXPECT_EQ(back.name, row.name);
  EXPECT_EQ(back.tax_bp, row.tax_bp);
  EXPECT_EQ(back.ytd_cents, row.ytd_cents);
}

TEST(TpccSchemaTest, DistrictRowRoundTrip) {
  DistrictRow row;
  row.name = "d";
  row.tax_bp = 99;
  row.ytd_cents = 123456789;
  row.next_o_id = 3001;
  DistrictRow back;
  ASSERT_TRUE(DistrictRow::Decode(row.Encode(), &back).ok());
  EXPECT_EQ(back.next_o_id, 3001u);
  EXPECT_EQ(back.ytd_cents, row.ytd_cents);
}

TEST(TpccSchemaTest, CustomerRowRoundTrip) {
  CustomerRow row;
  row.w = 3;
  row.d = 7;
  row.last_name = "BARBARBAR";
  row.credit = "BC";
  row.balance_cents = -987654;
  row.ytd_payment_cents = 1000;
  row.payment_cnt = 17;
  row.delivery_cnt = 3;
  row.data = std::string(300, 'd');
  CustomerRow back;
  ASSERT_TRUE(CustomerRow::Decode(row.Encode(), &back).ok());
  EXPECT_EQ(back.w, 3u);
  EXPECT_EQ(back.d, 7u);
  EXPECT_EQ(back.last_name, row.last_name);
  EXPECT_EQ(back.balance_cents, row.balance_cents);
  EXPECT_EQ(back.data, row.data);
}

TEST(TpccSchemaTest, OrderAndLineRoundTrip) {
  OrderRow order;
  order.c_id = 42;
  order.entry_d = 1'000'000;
  order.carrier_id = 5;
  order.ol_cnt = 11;
  order.all_local = false;
  OrderRow order_back;
  ASSERT_TRUE(OrderRow::Decode(order.Encode(), &order_back).ok());
  EXPECT_EQ(order_back.c_id, 42u);
  EXPECT_FALSE(order_back.all_local);

  OrderLineRow line;
  line.i_id = 77;
  line.supply_w = 2;
  line.quantity = 9;
  line.amount_cents = 12345;
  line.delivery_d = 0;
  line.dist_info = std::string(24, 'x');
  OrderLineRow line_back;
  ASSERT_TRUE(OrderLineRow::Decode(line.Encode(), &line_back).ok());
  EXPECT_EQ(line_back.i_id, 77u);
  EXPECT_EQ(line_back.amount_cents, 12345);
}

TEST(TpccSchemaTest, ItemAndStockRoundTrip) {
  ItemRow item;
  item.name = "widget";
  item.price_cents = 999;
  item.data = "ORIGINAL";
  ItemRow item_back;
  ASSERT_TRUE(ItemRow::Decode(item.Encode(), &item_back).ok());
  EXPECT_EQ(item_back.price_cents, 999);

  StockRow stock;
  stock.quantity = -5;  // can go negative pending restock in some variants
  stock.ytd = 1000;
  stock.order_cnt = 12;
  stock.remote_cnt = 1;
  stock.dist_info = std::string(24, 's');
  StockRow stock_back;
  ASSERT_TRUE(StockRow::Decode(stock.Encode(), &stock_back).ok());
  EXPECT_EQ(stock_back.quantity, -5);
  EXPECT_EQ(stock_back.remote_cnt, 1u);
}

TEST(TpccSchemaTest, DecodersRejectTruncation) {
  CustomerRow row;
  row.last_name = "X";
  std::string bytes = row.Encode();
  for (size_t cut : {size_t{0}, size_t{3}, bytes.size() - 1}) {
    CustomerRow back;
    EXPECT_FALSE(
        CustomerRow::Decode(Slice(bytes.data(), cut), &back).ok());
  }
}

TEST(TpccSchemaTest, CompositeKeysSortNumerically) {
  // Lexicographic byte order of the big-endian composite keys must match
  // numeric order on every component.
  EXPECT_LT(OrderKey(1, 1, 9), OrderKey(1, 1, 10));
  EXPECT_LT(OrderKey(1, 9, 1), OrderKey(1, 10, 1));
  EXPECT_LT(OrderKey(9, 1, 1), OrderKey(10, 1, 1));
  EXPECT_LT(OrderLineKey(1, 1, 5, 15), OrderLineKey(1, 1, 6, 1));
  EXPECT_LT(CustomerKey(1, 2, 3), CustomerKey(1, 2, 4));
  EXPECT_LT(StockKey(1, 99999), StockKey(2, 1));
  // An order's lines are contiguous under the next order's range.
  EXPECT_LT(OrderLineKey(1, 1, 5, 9999), OrderLineKey(1, 1, 6, 0));
}

TEST(TpccSchemaTest, NURandSkewsSelection) {
  // The NURand item distribution must be visibly non-uniform: the hottest
  // decile should draw well above 10% of selections.
  TpccRandom rng(123);
  constexpr uint32_t kItems = 1000;
  std::vector<uint32_t> counts(kItems + 1, 0);
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    uint32_t item = rng.ItemId(kItems);
    ASSERT_GE(item, 1u);
    ASSERT_LE(item, kItems);
    ++counts[item];
  }
  std::sort(counts.begin(), counts.end(), std::greater<uint32_t>());
  uint64_t hottest_decile = 0;
  for (size_t i = 0; i < kItems / 10; ++i) hottest_decile += counts[i];
  EXPECT_GT(hottest_decile, kDraws / 5)
      << "NURand should concentrate >20% of draws in the hottest 10%";
}

}  // namespace
}  // namespace tpcc
}  // namespace complydb
