#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "db/compliant_db.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "prom_parser.h"
#include "tpcc/workload.h"

namespace complydb {
namespace obs {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

// --- Histogram ----------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(2), 2);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 3);
  EXPECT_EQ(Histogram::BucketFor(7), 3);
  EXPECT_EQ(Histogram::BucketFor(8), 4);
  EXPECT_EQ(Histogram::BucketFor(1023), 10);
  EXPECT_EQ(Histogram::BucketFor(1024), 11);
  // Values past the top bucket clamp instead of overflowing.
  EXPECT_EQ(Histogram::BucketFor(~0ull), Histogram::kBuckets - 1);

  for (int b = 1; b < Histogram::kBuckets - 1; ++b) {
    EXPECT_EQ(Histogram::BucketFor(Histogram::BucketLower(b)), b);
    EXPECT_EQ(Histogram::BucketFor(Histogram::BucketUpper(b) - 1), b);
    EXPECT_EQ(Histogram::BucketFor(Histogram::BucketUpper(b)), b + 1);
  }
}

TEST(HistogramTest, CountSumMax) {
  Histogram h;
  h.Record(10);
  h.Record(100);
  h.Record(1000);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.SumMicros(), 1110u);
  EXPECT_EQ(h.MaxMicros(), 1000u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.SumMicros(), 0u);
  EXPECT_EQ(h.MaxMicros(), 0u);
}

TEST(HistogramTest, QuantileExtraction) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty
  // 100 samples uniform over bucket [64, 128): quantiles interpolate
  // within the bucket, so p50 lands near the middle and p99 near the top.
  for (int i = 0; i < 100; ++i) h.Record(64 + (i * 64) / 100);
  double p50 = h.Quantile(0.5);
  double p99 = h.Quantile(0.99);
  EXPECT_GE(p50, 64.0);
  EXPECT_LT(p50, 128.0);
  EXPECT_GT(p99, p50);
  EXPECT_LE(p99, 128.0);

  // Bimodal: 90 fast samples at ~1us, 10 slow at ~1ms. p50 stays in the
  // fast bucket, p95+ jumps to the slow one.
  Histogram h2;
  for (int i = 0; i < 90; ++i) h2.Record(1);
  for (int i = 0; i < 10; ++i) h2.Record(1000);
  EXPECT_LT(h2.Quantile(0.5), 2.1);
  EXPECT_GE(h2.Quantile(0.95), 512.0);
}

TEST(HistogramTest, ConcurrentRecordsFrom8Threads) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * 100 + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t bucket_total = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) bucket_total += h.BucketCount(b);
  EXPECT_EQ(bucket_total, h.Count());
}

// --- Counter / registry -------------------------------------------------

TEST(CounterTest, ConcurrentIncrementsFrom8Threads) {
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("obs_test.concurrent");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(RegistryTest, StableAddressesAndSnapshot) {
  auto& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("obs_test.stable");
  Counter* b = reg.GetCounter("obs_test.stable");
  EXPECT_EQ(a, b);  // same name resolves to the same metric
  a->Reset();
  a->Inc(7);
  reg.GetHistogram("obs_test.stable_us")->Record(33);

  auto snap = reg.TakeSnapshot();
  bool found_counter = false, found_hist = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "obs_test.stable") {
      found_counter = true;
      EXPECT_EQ(value, 7u);
    }
  }
  for (const auto& h : snap.histograms) {
    if (h.name == "obs_test.stable_us") {
      found_hist = true;
      EXPECT_GE(h.count, 1u);
    }
  }
  EXPECT_TRUE(found_counter);
  EXPECT_TRUE(found_hist);

  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"obs_test.stable\": 7"), std::string::npos);
  std::string prom = reg.ToPrometheusText();
  EXPECT_NE(prom.find("complydb_obs_test_stable 7"), std::string::npos);
}

TEST(RegistryTest, GaugeRoundTrip) {
  auto& reg = MetricsRegistry::Global();
  Gauge* g = reg.GetGauge("obs_test.gauge");
  g->Set(-5);
  g->Add(15);
  EXPECT_EQ(g->Value(), 10);
}

// --- Prometheus exposition ----------------------------------------------

TEST(PromExportTest, EscapeLabelValue) {
  EXPECT_EQ(PromEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PromEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PromEscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PromEscapeLabelValue("two\nlines"), "two\\nlines");
  EXPECT_EQ(PromEscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

TEST(PromExportTest, MetricNameSanitization) {
  EXPECT_EQ(PromMetricName("db.commit_us"), "complydb_db_commit_us");
  EXPECT_EQ(PromMetricName("a-b.c"), "complydb_a_b_c");
}

TEST(PromExportTest, StrictParserAcceptsRegistryOutput) {
  if (!kMetricsCompiledIn) GTEST_SKIP() << "metrics compiled out";
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test.prom_counter")->Inc(3);
  reg.GetGauge("obs_test.prom_gauge")->Set(-2);
  Histogram* h = reg.GetHistogram("obs_test.prom_us");
  for (uint64_t v : {1ull, 5ull, 100ull, 10000ull}) h->Record(v);

  testutil::PromParser parser;
  ASSERT_TRUE(parser.Parse(reg.ToPrometheusText())) << parser.error();

  auto& fams = parser.families();
  auto counter = fams.find("complydb_obs_test_prom_counter");
  ASSERT_NE(counter, fams.end());
  EXPECT_EQ(counter->second.type, "counter");
  EXPECT_GE(parser.Value("complydb_obs_test_prom_counter"), 3.0);

  auto gauge = fams.find("complydb_obs_test_prom_gauge");
  ASSERT_NE(gauge, fams.end());
  EXPECT_EQ(gauge->second.type, "gauge");
  EXPECT_DOUBLE_EQ(parser.Value("complydb_obs_test_prom_gauge"), -2.0);

  auto hist = fams.find("complydb_obs_test_prom_us");
  ASSERT_NE(hist, fams.end());
  EXPECT_EQ(hist->second.type, "histogram");
  // Quantiles live in a separate gauge family, not inside the histogram.
  auto quant = fams.find("complydb_obs_test_prom_us_quantile");
  ASSERT_NE(quant, fams.end());
  EXPECT_EQ(quant->second.type, "gauge");
  EXPECT_EQ(quant->second.samples.size(), 3u);  // p50/p95/p99
}

TEST(PromExportTest, StrictParserRejectsMalformedInput) {
  testutil::PromParser p;
  // Sample without a preceding TYPE.
  EXPECT_FALSE(p.Parse("orphan_metric 1\n"));
  // Unknown type keyword.
  EXPECT_FALSE(p.Parse("# TYPE m widget\nm 1\n"));
  // Negative counter.
  EXPECT_FALSE(p.Parse("# TYPE m counter\nm -1\n"));
  // Bad escape in a label value.
  EXPECT_FALSE(p.Parse("# TYPE m gauge\nm{l=\"a\\t\"} 1\n"));
  // Unterminated label set.
  EXPECT_FALSE(p.Parse("# TYPE m gauge\nm{l=\"a\" 1\n"));
  // Histogram bucket counts must be cumulative.
  EXPECT_FALSE(p.Parse(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n"));
  // +Inf bucket must equal _count.
  EXPECT_FALSE(p.Parse(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 6\n"));
  // le bounds must increase.
  EXPECT_FALSE(p.Parse(
      "# TYPE h histogram\n"
      "h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\n"
      "h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n"));
  // A well-formed histogram passes.
  EXPECT_TRUE(p.Parse(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 2\nh_bucket{le=\"4\"} 3\n"
      "h_bucket{le=\"+Inf\"} 4\nh_sum 11\nh_count 4\n"))
      << p.error();
}

// --- TraceRing ----------------------------------------------------------

TEST(TraceRingTest, Wraparound) {
  TraceRing ring(64);  // rounded to a power of two
  EXPECT_EQ(ring.capacity(), 64u);
  for (uint64_t i = 0; i < 200; ++i) {
    ring.Emit(TraceEventType::kTxnBegin, i);
  }
  EXPECT_EQ(ring.total(), 200u);
  EXPECT_EQ(ring.dropped(), 200u - 64u);
  auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 64u);
  // Oldest-first, and only the newest capacity events survive.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 136 + i);
    EXPECT_EQ(events[i].a, 136 + i);
  }
}

TEST(TraceRingTest, DisabledEmitsNothing) {
  TraceRing ring(16);
  ring.SetEnabled(false);
  ring.Emit(TraceEventType::kWalFsync, 1, 2);
  EXPECT_EQ(ring.total(), 0u);
  ring.SetEnabled(true);
  ring.Emit(TraceEventType::kWalFsync, 1, 2);
  EXPECT_EQ(ring.total(), 1u);
}

TEST(TraceRingTest, ConcurrentEmitsAreRaceFree) {
  TraceRing ring(256);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring] {
      for (int i = 0; i < kPerThread; ++i) {
        ring.Emit(TraceEventType::kComplianceAppend, i);
      }
    });
  }
  // Concurrent snapshots must tolerate in-flight writes.
  for (int i = 0; i < 10; ++i) (void)ring.Snapshot();
  for (auto& t : threads) t.join();
  EXPECT_EQ(ring.total(), static_cast<uint64_t>(kThreads * kPerThread));
  auto events = ring.Snapshot();
  EXPECT_EQ(events.size(), ring.capacity());
}

TEST(TraceRingTest, FormatNamesEveryEventType) {
  for (int i = 0; i < static_cast<int>(TraceEventType::kEventTypeCount); ++i) {
    TraceEvent e;
    e.type = static_cast<TraceEventType>(i);
    std::string line = FormatTraceEvent(e);
    EXPECT_FALSE(line.empty());
    EXPECT_EQ(line.find('?'), std::string::npos)
        << "unnamed event type " << i;
  }
}

// --- SpanRing / commit decomposition ------------------------------------

TEST(SpanRingTest, WraparoundKeepsNewest) {
  if (!kMetricsCompiledIn) GTEST_SKIP() << "span emission compiled out";
  SpanRing ring(32);
  EXPECT_EQ(ring.capacity(), 32u);
  for (uint64_t i = 0; i < 100; ++i) {
    ring.Emit(SpanKind::kWalFsync, /*causal=*/i, /*start_us=*/i * 10,
              /*end_us=*/i * 10 + 5, /*arg=*/i);
  }
  EXPECT_EQ(ring.total(), 100u);
  EXPECT_EQ(ring.dropped(), 100u - 32u);
  auto spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 32u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].seq, 68 + i);
    EXPECT_EQ(spans[i].causal, 68 + i);
    EXPECT_EQ(spans[i].end_us - spans[i].start_us, 5u);
  }
}

TEST(SpanRingTest, DisabledEmitsNothing) {
  if (!kMetricsCompiledIn) GTEST_SKIP() << "span emission compiled out";
  SpanRing ring(16);
  ring.SetEnabled(false);
  ring.Emit(SpanKind::kCommit, 1, 10, 20);
  EXPECT_EQ(ring.total(), 0u);
  ring.SetEnabled(true);
  ring.Emit(SpanKind::kCommit, 1, 10, 20);
  EXPECT_EQ(ring.total(), 1u);
}

TEST(SpanRingTest, ConcurrentEmitsAreRaceFree) {
  if (!kMetricsCompiledIn) GTEST_SKIP() << "span emission compiled out";
  SpanRing ring(256);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ring.Emit(SpanKind::kShipperDrain, t, i, i + 1);
      }
    });
  }
  for (int i = 0; i < 10; ++i) (void)ring.Snapshot();
  for (auto& t : threads) t.join();
  EXPECT_EQ(ring.total(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(ring.Snapshot().size(), ring.capacity());
}

TEST(SpanTest, NamesEverySpanKind) {
  for (int i = 0; i < static_cast<int>(SpanKind::kSpanKindCount); ++i) {
    Span s;
    s.kind = static_cast<SpanKind>(i);
    std::string line = FormatSpan(s);
    EXPECT_FALSE(line.empty());
    EXPECT_EQ(line.find('?'), std::string::npos) << "unnamed span kind " << i;
  }
}

TEST(SpanTest, CommitDecompositionSumsToTotal) {
  if (!kMetricsCompiledIn) GTEST_SKIP() << "metrics compiled out";
  auto& reg = MetricsRegistry::Global();
  reg.ResetAll();
  SpanRing::Global().Reset();
  {
    ScopedCommitSpan span(/*txn_id=*/42);
    span.set_commit_time(777);
    // Simulate the shipper layers attributing intervals to this commit.
    // The attributed time must fit inside the real elapsed span (the
    // residual only clamps when attribution exceeds the total), so burn
    // real wall time before closing.
    uint64_t t0 = MonotonicMicros();
    RecordQueuedInterval(t0, t0 + 100);
    RecordDrainInterval(t0 + 100, t0 + 150, /*bytes=*/64, /*batch_id=*/9);
    RecordWormFlushInterval(t0 + 150, t0 + 200, /*batch_id=*/9);
    while (MonotonicMicros() - t0 < 300) {
      std::this_thread::yield();
    }
  }
  auto spans = SpanRing::Global().Snapshot();
  const Span* commit = nullptr;
  uint64_t seg_sum = 0;
  int segments = 0;
  for (const auto& s : spans) {
    if (s.kind == SpanKind::kCommit) {
      commit = &s;
      EXPECT_EQ(s.causal, 42u);
      EXPECT_EQ(s.arg, 777u);
    } else if (s.kind == SpanKind::kCommitForeground ||
               s.kind == SpanKind::kCommitQueued ||
               s.kind == SpanKind::kCommitDrain ||
               s.kind == SpanKind::kCommitWormFlush) {
      EXPECT_EQ(s.causal, 42u);
      seg_sum += s.end_us - s.start_us;
      ++segments;
    }
  }
  ASSERT_NE(commit, nullptr);
  EXPECT_EQ(segments, 4);
  EXPECT_EQ(seg_sum, commit->end_us - commit->start_us);

  // The four critical-path histograms each saw exactly this commit, and
  // their sums reproduce the same identity.
  uint64_t hist_sum = 0;
  for (const char* name :
       {"db.commit_critical_path.foreground_us",
        "db.commit_critical_path.queued_us",
        "db.commit_critical_path.drain_us",
        "db.commit_critical_path.worm_us"}) {
    Histogram* h = reg.GetHistogram(name);
    EXPECT_EQ(h->Count(), 1u) << name;
    hist_sum += h->SumMicros();
  }
  EXPECT_EQ(hist_sum, commit->end_us - commit->start_us);
  EXPECT_EQ(reg.GetHistogram("db.commit_critical_path.queued_us")
                ->SumMicros(),
            100u);
  EXPECT_EQ(reg.GetHistogram("db.commit_critical_path.drain_us")->SumMicros(),
            50u);
  EXPECT_EQ(reg.GetHistogram("db.commit_critical_path.worm_us")->SumMicros(),
            50u);
}

TEST(SpanTest, UnattributedIntervalsBecomeShipperSpans) {
  if (!kMetricsCompiledIn) GTEST_SKIP() << "metrics compiled out";
  SpanRing::Global().Reset();
  ASSERT_FALSE(ActiveCommitSegments()->active);
  uint64_t now = MonotonicMicros();
  RecordDrainInterval(now - 90, now - 50, /*bytes=*/128, /*batch_id=*/7);
  RecordWormFlushInterval(now - 50, now - 10, /*batch_id=*/7);
  auto spans = SpanRing::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].kind, SpanKind::kShipperDrain);
  EXPECT_EQ(spans[0].causal, 7u);
  EXPECT_EQ(spans[0].arg, 128u);
  EXPECT_EQ(spans[1].kind, SpanKind::kShipperWormFlush);
  EXPECT_EQ(spans[1].causal, 7u);
}

// --- Chrome trace export ------------------------------------------------

TEST(TraceExportTest, EmitsValidChromeJson) {
  std::vector<Span> spans;
  Span s;
  s.seq = 1;
  s.kind = SpanKind::kCommit;
  s.causal = 5;
  s.start_us = 1000;
  s.end_us = 1400;
  s.arg = 99;
  s.tid = 3;
  spans.push_back(s);
  s.seq = 2;
  s.kind = SpanKind::kAuditPhase;
  s.causal = 2;
  s.arg = static_cast<uint64_t>(AuditPhase::kReplay);
  spans.push_back(s);

  std::vector<TraceEvent> events;
  TraceEvent e;
  e.seq = 1;
  e.ts_micros = 1100;
  e.type = TraceEventType::kTxnCommit;
  e.a = 5;
  events.push_back(e);

  std::string json = ChromeTraceJson(spans, events);
  while (!json.empty() && json.back() == '\n') json.pop_back();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // The commit span: a complete event with duration 400 us.
  EXPECT_NE(json.find("\"name\":\"commit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":400"), std::string::npos);
  // The audit span names its phase; the trace event renders as an instant.
  EXPECT_NE(json.find("audit.phase.replay"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Braces and brackets balance (cheap structural sanity, no JSON lib).
  int depth = 0, sq = 0;
  bool in_str = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') in_str = true;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (c == '[') ++sq;
    if (c == ']') --sq;
    EXPECT_GE(depth, 0);
    EXPECT_GE(sq, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(sq, 0);
}

// --- integration: a TPC-C run populates the pipeline metrics ------------

TEST(ObsIntegrationTest, TpccRunProducesPipelineMetrics) {
  std::string dir = ::testing::TempDir() + "/obs_tpcc";
  std::filesystem::remove_all(dir);
  auto& reg = MetricsRegistry::Global();
  reg.ResetAll();
  TraceRing::Global().Reset();

  SimulatedClock clock;
  DbOptions opts;
  opts.dir = dir;
  opts.cache_pages = 256;
  opts.clock = &clock;
  opts.compliance.enabled = true;
  opts.compliance.regret_interval_micros = 5 * kMinute;

  auto open = CompliantDB::Open(opts);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  std::unique_ptr<CompliantDB> db(open.value());

  tpcc::Scale scale;
  scale.warehouses = 1;
  scale.districts_per_warehouse = 2;
  scale.customers_per_district = 10;
  scale.items = 50;
  scale.initial_orders_per_district = 10;
  tpcc::Workload workload(db.get(), scale, 42);
  ASSERT_TRUE(workload.CreateOrAttachTables().ok());
  ASSERT_TRUE(workload.Load().ok());

  tpcc::MixStats stats;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(workload.RunMix(1, &stats).ok());
    clock.AdvanceMicros(kMinute);
    ASSERT_TRUE(db->AdvanceClock(0).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());

  // The whole pipeline reported in: compliance appends, WAL fsyncs,
  // transactions, WORM appends, regret ticks.
  EXPECT_GT(reg.GetCounter("compliance.records")->Value(), 0u);
  EXPECT_GT(reg.GetCounter("wal.fsyncs")->Value(), 0u);
  EXPECT_GT(reg.GetCounter("wal.appends")->Value(), 0u);
  EXPECT_GT(reg.GetCounter("txn.commits")->Value(), 0u);
  EXPECT_GT(reg.GetCounter("worm.appends")->Value(), 0u);
  EXPECT_GT(reg.GetCounter("db.regret_ticks")->Value(), 0u);
  EXPECT_GT(reg.GetCounter("storage.cache.hits")->Value(), 0u);
  if (kMetricsCompiledIn) {
    EXPECT_GT(reg.GetHistogram("wal.fsync_us")->Count(), 0u);
    EXPECT_GT(TraceRing::Global().total(), 0u);
  }

  // Per-instance counters still back the facade's DbStats (Stats() itself
  // touches the cache, so compare against a floor taken before the call).
  uint64_t hits_before = db->cache()->hits();
  uint64_t reads_before = db->disk()->reads();
  auto db_stats = db->Stats();
  ASSERT_TRUE(db_stats.ok());
  EXPECT_GE(db_stats.value().cache_hits, hits_before);
  EXPECT_GE(db_stats.value().disk_reads, reads_before);
  EXPECT_GT(db_stats.value().cache_hits, 0u);

  // The exporters render the populated registry.
  std::string json = db->DumpMetricsJson();
  EXPECT_NE(json.find("\"wal.fsyncs\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  std::string prom = db->DumpMetricsPrometheus();
  EXPECT_NE(prom.find("complydb_wal_fsyncs"), std::string::npos);
  testutil::PromParser parser;
  EXPECT_TRUE(parser.Parse(prom)) << parser.error();

  ASSERT_TRUE(db->Close().ok());
}

}  // namespace
}  // namespace obs
}  // namespace complydb
