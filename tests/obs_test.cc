#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "db/compliant_db.h"
#include "obs/trace.h"
#include "tpcc/workload.h"

namespace complydb {
namespace obs {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;

// --- Histogram ----------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(2), 2);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 3);
  EXPECT_EQ(Histogram::BucketFor(7), 3);
  EXPECT_EQ(Histogram::BucketFor(8), 4);
  EXPECT_EQ(Histogram::BucketFor(1023), 10);
  EXPECT_EQ(Histogram::BucketFor(1024), 11);
  // Values past the top bucket clamp instead of overflowing.
  EXPECT_EQ(Histogram::BucketFor(~0ull), Histogram::kBuckets - 1);

  for (int b = 1; b < Histogram::kBuckets - 1; ++b) {
    EXPECT_EQ(Histogram::BucketFor(Histogram::BucketLower(b)), b);
    EXPECT_EQ(Histogram::BucketFor(Histogram::BucketUpper(b) - 1), b);
    EXPECT_EQ(Histogram::BucketFor(Histogram::BucketUpper(b)), b + 1);
  }
}

TEST(HistogramTest, CountSumMax) {
  Histogram h;
  h.Record(10);
  h.Record(100);
  h.Record(1000);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.SumMicros(), 1110u);
  EXPECT_EQ(h.MaxMicros(), 1000u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.SumMicros(), 0u);
  EXPECT_EQ(h.MaxMicros(), 0u);
}

TEST(HistogramTest, QuantileExtraction) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty
  // 100 samples uniform over bucket [64, 128): quantiles interpolate
  // within the bucket, so p50 lands near the middle and p99 near the top.
  for (int i = 0; i < 100; ++i) h.Record(64 + (i * 64) / 100);
  double p50 = h.Quantile(0.5);
  double p99 = h.Quantile(0.99);
  EXPECT_GE(p50, 64.0);
  EXPECT_LT(p50, 128.0);
  EXPECT_GT(p99, p50);
  EXPECT_LE(p99, 128.0);

  // Bimodal: 90 fast samples at ~1us, 10 slow at ~1ms. p50 stays in the
  // fast bucket, p95+ jumps to the slow one.
  Histogram h2;
  for (int i = 0; i < 90; ++i) h2.Record(1);
  for (int i = 0; i < 10; ++i) h2.Record(1000);
  EXPECT_LT(h2.Quantile(0.5), 2.1);
  EXPECT_GE(h2.Quantile(0.95), 512.0);
}

TEST(HistogramTest, ConcurrentRecordsFrom8Threads) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * 100 + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t bucket_total = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) bucket_total += h.BucketCount(b);
  EXPECT_EQ(bucket_total, h.Count());
}

// --- Counter / registry -------------------------------------------------

TEST(CounterTest, ConcurrentIncrementsFrom8Threads) {
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("obs_test.concurrent");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(RegistryTest, StableAddressesAndSnapshot) {
  auto& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("obs_test.stable");
  Counter* b = reg.GetCounter("obs_test.stable");
  EXPECT_EQ(a, b);  // same name resolves to the same metric
  a->Reset();
  a->Inc(7);
  reg.GetHistogram("obs_test.stable_us")->Record(33);

  auto snap = reg.TakeSnapshot();
  bool found_counter = false, found_hist = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "obs_test.stable") {
      found_counter = true;
      EXPECT_EQ(value, 7u);
    }
  }
  for (const auto& h : snap.histograms) {
    if (h.name == "obs_test.stable_us") {
      found_hist = true;
      EXPECT_GE(h.count, 1u);
    }
  }
  EXPECT_TRUE(found_counter);
  EXPECT_TRUE(found_hist);

  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"obs_test.stable\": 7"), std::string::npos);
  std::string prom = reg.ToPrometheusText();
  EXPECT_NE(prom.find("complydb_obs_test_stable 7"), std::string::npos);
}

TEST(RegistryTest, GaugeRoundTrip) {
  auto& reg = MetricsRegistry::Global();
  Gauge* g = reg.GetGauge("obs_test.gauge");
  g->Set(-5);
  g->Add(15);
  EXPECT_EQ(g->Value(), 10);
}

// --- TraceRing ----------------------------------------------------------

TEST(TraceRingTest, Wraparound) {
  TraceRing ring(64);  // rounded to a power of two
  EXPECT_EQ(ring.capacity(), 64u);
  for (uint64_t i = 0; i < 200; ++i) {
    ring.Emit(TraceEventType::kTxnBegin, i);
  }
  EXPECT_EQ(ring.total(), 200u);
  EXPECT_EQ(ring.dropped(), 200u - 64u);
  auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 64u);
  // Oldest-first, and only the newest capacity events survive.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 136 + i);
    EXPECT_EQ(events[i].a, 136 + i);
  }
}

TEST(TraceRingTest, DisabledEmitsNothing) {
  TraceRing ring(16);
  ring.SetEnabled(false);
  ring.Emit(TraceEventType::kWalFsync, 1, 2);
  EXPECT_EQ(ring.total(), 0u);
  ring.SetEnabled(true);
  ring.Emit(TraceEventType::kWalFsync, 1, 2);
  EXPECT_EQ(ring.total(), 1u);
}

TEST(TraceRingTest, ConcurrentEmitsAreRaceFree) {
  TraceRing ring(256);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring] {
      for (int i = 0; i < kPerThread; ++i) {
        ring.Emit(TraceEventType::kComplianceAppend, i);
      }
    });
  }
  // Concurrent snapshots must tolerate in-flight writes.
  for (int i = 0; i < 10; ++i) (void)ring.Snapshot();
  for (auto& t : threads) t.join();
  EXPECT_EQ(ring.total(), static_cast<uint64_t>(kThreads * kPerThread));
  auto events = ring.Snapshot();
  EXPECT_EQ(events.size(), ring.capacity());
}

TEST(TraceRingTest, FormatNamesEveryEventType) {
  for (int i = 0; i < static_cast<int>(TraceEventType::kEventTypeCount); ++i) {
    TraceEvent e;
    e.type = static_cast<TraceEventType>(i);
    std::string line = FormatTraceEvent(e);
    EXPECT_FALSE(line.empty());
    EXPECT_EQ(line.find('?'), std::string::npos)
        << "unnamed event type " << i;
  }
}

// --- integration: a TPC-C run populates the pipeline metrics ------------

TEST(ObsIntegrationTest, TpccRunProducesPipelineMetrics) {
  std::string dir = ::testing::TempDir() + "/obs_tpcc";
  std::filesystem::remove_all(dir);
  auto& reg = MetricsRegistry::Global();
  reg.ResetAll();
  TraceRing::Global().Reset();

  SimulatedClock clock;
  DbOptions opts;
  opts.dir = dir;
  opts.cache_pages = 256;
  opts.clock = &clock;
  opts.compliance.enabled = true;
  opts.compliance.regret_interval_micros = 5 * kMinute;

  auto open = CompliantDB::Open(opts);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  std::unique_ptr<CompliantDB> db(open.value());

  tpcc::Scale scale;
  scale.warehouses = 1;
  scale.districts_per_warehouse = 2;
  scale.customers_per_district = 10;
  scale.items = 50;
  scale.initial_orders_per_district = 10;
  tpcc::Workload workload(db.get(), scale, 42);
  ASSERT_TRUE(workload.CreateOrAttachTables().ok());
  ASSERT_TRUE(workload.Load().ok());

  tpcc::MixStats stats;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(workload.RunMix(1, &stats).ok());
    clock.AdvanceMicros(kMinute);
    ASSERT_TRUE(db->AdvanceClock(0).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());

  // The whole pipeline reported in: compliance appends, WAL fsyncs,
  // transactions, WORM appends, regret ticks.
  EXPECT_GT(reg.GetCounter("compliance.records")->Value(), 0u);
  EXPECT_GT(reg.GetCounter("wal.fsyncs")->Value(), 0u);
  EXPECT_GT(reg.GetCounter("wal.appends")->Value(), 0u);
  EXPECT_GT(reg.GetCounter("txn.commits")->Value(), 0u);
  EXPECT_GT(reg.GetCounter("worm.appends")->Value(), 0u);
  EXPECT_GT(reg.GetCounter("db.regret_ticks")->Value(), 0u);
  EXPECT_GT(reg.GetCounter("storage.cache.hits")->Value(), 0u);
  if (kMetricsCompiledIn) {
    EXPECT_GT(reg.GetHistogram("wal.fsync_us")->Count(), 0u);
    EXPECT_GT(TraceRing::Global().total(), 0u);
  }

  // Per-instance counters still back the facade's DbStats (Stats() itself
  // touches the cache, so compare against a floor taken before the call).
  uint64_t hits_before = db->cache()->hits();
  uint64_t reads_before = db->disk()->reads();
  auto db_stats = db->Stats();
  ASSERT_TRUE(db_stats.ok());
  EXPECT_GE(db_stats.value().cache_hits, hits_before);
  EXPECT_GE(db_stats.value().disk_reads, reads_before);
  EXPECT_GT(db_stats.value().cache_hits, 0u);

  // The exporters render the populated registry.
  std::string json = db->DumpMetricsJson();
  EXPECT_NE(json.find("\"wal.fsyncs\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  std::string prom = db->DumpMetricsPrometheus();
  EXPECT_NE(prom.find("complydb_wal_fsyncs"), std::string::npos);

  ASSERT_TRUE(db->Close().ok());
}

}  // namespace
}  // namespace obs
}  // namespace complydb
