// Epoch-based multi-writer commit pipeline: determinism, quiescence
// reporting, and crash recovery.
//
// The pipeline's contract is the same as PR 3's sync-vs-async identity,
// one level up: for the same slot schedule, the compliance log L must be
// byte-identical at any write_threads value, because the turnstile admits
// slots in ticket order and every L append happens inside a slot. The
// first test proves this at the file level (L and the stamp index) and
// compares the audit verdicts too. The crash test reuses the PR 3
// crash-window harness: kill the database mid-run (destructor without
// Close) with records queued behind a huge group-commit window, reopen,
// and require recovery plus a clean audit.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "audit/epoch_chain.h"
#include "compliance/compliance_log.h"
#include "db/compliant_db.h"
#include "tpcc/workload.h"
#include "txn/slot_scheduler.h"

namespace complydb {
namespace {

constexpr uint64_t kMinute = 60ull * 1'000'000;
constexpr uint64_t kHugeWindow = 10ull * kMinute;

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// The CI TSan job forces COMPLYDB_WRITE_THREADS=4 (and other jobs may
// force COMPLYDB_COMPLIANCE_ASYNC); these tests pin both per-options, so
// the fixture clears the env and restores it afterwards.
class WritePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* name :
         {"COMPLYDB_WRITE_THREADS", "COMPLYDB_COMPLIANCE_ASYNC"}) {
      const char* env = std::getenv(name);
      saved_.emplace_back(name,
                          env != nullptr ? std::optional<std::string>(env)
                                         : std::nullopt);
      ::unsetenv(name);
    }
  }
  void TearDown() override {
    for (const auto& [name, value] : saved_) {
      if (value.has_value()) ::setenv(name.c_str(), value->c_str(), 1);
    }
  }

  DbOptions MakeOptions(const std::string& dir, uint32_t write_threads,
                        uint64_t window_micros = 200,
                        size_t cache_pages = 128) {
    DbOptions opts;
    opts.dir = dir;
    opts.cache_pages = cache_pages;
    opts.clock = clock_.get();
    opts.compliance.enabled = true;
    opts.compliance.regret_interval_micros = 5 * kMinute;
    // Async in every arm: write_threads > 1 would force it anyway, and
    // byte comparison needs the single-writer arm on the same path.
    opts.compliance.async_shipping = true;
    opts.compliance.group_commit_window_micros = window_micros;
    opts.write_threads = write_threads;
    return opts;
  }

  std::unique_ptr<CompliantDB> Open(const DbOptions& opts) {
    auto r = CompliantDB::Open(opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::unique_ptr<CompliantDB>(r.ok() ? r.value() : nullptr);
  }

  std::string FreshDir(const std::string& name) {
    std::string dir = ::testing::TempDir() + "/write_pipeline_" + name;
    std::filesystem::remove_all(dir);
    return dir;
  }

  static tpcc::Scale SmallScale() {
    tpcc::Scale scale;
    scale.warehouses = 2;  // exercises remote NewOrder / Payment paths
    scale.customers_per_district = 20;
    scale.items = 200;
    scale.initial_orders_per_district = 10;
    return scale;
  }

  std::unique_ptr<SimulatedClock> clock_ =
      std::make_unique<SimulatedClock>();
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

// The tentpole assertion: the same RunMixConcurrent schedule at
// write_threads 1 (serial engine, no pipeline), 2, and 4 produces a
// byte-identical compliance log and stamp index, identical mix stats,
// and the same clean audit verdict.
TEST_F(WritePipelineTest, LogBytesIdenticalAcrossWriteThreads) {
  const uint32_t kThreads[] = {1, 2, 4};
  const uint64_t kSlots = 150;
  std::string logs[3];
  std::string indexes[3];
  tpcc::MixStats stats[3];
  for (int i = 0; i < 3; ++i) {
    uint32_t wt = kThreads[i];
    std::string dir = FreshDir("det_wt" + std::to_string(wt));
    clock_ = std::make_unique<SimulatedClock>();  // identical stamps per run
    auto db = Open(MakeOptions(dir, wt));
    ASSERT_NE(db, nullptr);
    EXPECT_EQ(db->write_threads(), wt);
    EXPECT_EQ(db->write_pipeline() != nullptr, wt > 1);

    tpcc::Workload workload(db.get(), SmallScale(), /*seed=*/42);
    ASSERT_TRUE(workload.CreateOrAttachTables().ok());
    ASSERT_TRUE(workload.Load().ok());
    Status run = workload.RunMixConcurrent(kSlots, wt, clock_.get(),
                                           /*advance_micros=*/700, &stats[i]);
    ASSERT_TRUE(run.ok()) << run.ToString();
    EXPECT_EQ(stats[i].total(), kSlots);
    if (auto* pipeline = db->write_pipeline()) {
      EXPECT_EQ(pipeline->in_flight(), 0u);
      EXPECT_GT(pipeline->epochs(), 0u);
    }

    // Quiesce and capture L before the audit supersedes this epoch's
    // files.
    ASSERT_TRUE(db->FlushAll().ok());
    logs[i] = ReadFileBytes(dir + "/worm/" + LogFileName(0));
    indexes[i] = ReadFileBytes(dir + "/worm/" + StampIndexFileName(0));
    auto report = db->Audit();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report.value().ok())
        << "wt=" << wt
        << " audit failed; first problem: " << report.value().problems[0];
    ASSERT_TRUE(db->Close().ok());
  }
  ASSERT_FALSE(logs[0].empty());
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(logs[0], logs[i])
        << "L diverged: write_threads=1 vs " << kThreads[i];
    EXPECT_EQ(indexes[0], indexes[i])
        << "Lidx diverged: write_threads=1 vs " << kThreads[i];
    EXPECT_EQ(stats[0].new_order, stats[i].new_order);
    EXPECT_EQ(stats[0].payment, stats[i].payment);
    EXPECT_EQ(stats[0].delivery, stats[i].delivery);
    EXPECT_EQ(stats[0].rollbacks, stats[i].rollbacks);
  }
}

// PR 8's sealed chain must survive concurrent slot execution unchanged:
// with sealing deferred past the mix (large seal_min_bytes) and one
// quiescent SealEpochNow per arm, the chain file covers identical L
// prefixes and hashes to identical bytes at every thread count.
TEST_F(WritePipelineTest, SealedChainBytesIdenticalAcrossWriteThreads) {
  const uint32_t kThreads[] = {1, 2, 4};
  const uint64_t kSlots = 100;
  std::string chains[3];
  for (int i = 0; i < 3; ++i) {
    uint32_t wt = kThreads[i];
    std::string dir = FreshDir("chain_wt" + std::to_string(wt));
    clock_ = std::make_unique<SimulatedClock>();
    DbOptions opts = MakeOptions(dir, wt);
    // No mid-run seals: the leader's threshold is never reached, so the
    // single post-quiescence seal covers the same L range in every arm.
    opts.seal_min_bytes = 1ull << 40;
    auto db = Open(opts);
    ASSERT_NE(db, nullptr);

    tpcc::Workload workload(db.get(), SmallScale(), /*seed=*/7);
    ASSERT_TRUE(workload.CreateOrAttachTables().ok());
    ASSERT_TRUE(workload.Load().ok());
    tpcc::MixStats stats;
    Status run = workload.RunMixConcurrent(kSlots, wt, clock_.get(),
                                           /*advance_micros=*/700, &stats);
    ASSERT_TRUE(run.ok()) << run.ToString();
    ASSERT_TRUE(db->SealEpochNow().ok());
    ASSERT_TRUE(db->Close().ok());
    // Chain bytes are appended unflushed (the seal must not pay a filer
    // round trip); teardown drains them to disk.
    db.reset();
    chains[i] = ReadFileBytes(dir + "/worm/" + ChainFileName(0));
  }
  ASSERT_FALSE(chains[0].empty());
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(chains[0], chains[i])
        << "sealed chain diverged: write_threads=1 vs " << kThreads[i];
  }
}

// Forced total conflict: one warehouse means every slot declares the
// same partition, so the scheduler admits them one at a time — the run
// degenerates to the turnstile schedule (waits, not wrong answers).
TEST_F(WritePipelineTest, SingleWarehouseConflictDegeneratesSerial) {
  std::string dir = FreshDir("conflict");
  auto db = Open(MakeOptions(dir, /*write_threads=*/4));
  ASSERT_NE(db, nullptr);
  EXPECT_STREQ(db->scheduler_mode(), "disjoint");

  tpcc::Scale scale;
  scale.warehouses = 1;
  scale.customers_per_district = 20;
  scale.items = 200;
  scale.initial_orders_per_district = 10;
  tpcc::Workload workload(db.get(), scale, /*seed=*/11);
  ASSERT_TRUE(workload.CreateOrAttachTables().ok());
  ASSERT_TRUE(workload.Load().ok());
  tpcc::MixStats stats;
  Status run = workload.RunMixConcurrent(/*slots=*/120, /*threads=*/4,
                                         clock_.get(),
                                         /*advance_micros=*/700, &stats);
  ASSERT_TRUE(run.ok()) << run.ToString();
  EXPECT_EQ(stats.total(), 120u);

  ASSERT_NE(db->write_pipeline(), nullptr);
  SlotScheduler* sched = db->write_pipeline()->scheduler();
  ASSERT_NE(sched, nullptr);
  // Every slot declared the one warehouse: all concurrent-class, and the
  // shared partition forced real admission waits.
  EXPECT_EQ(sched->admitted_concurrent() + sched->footprint_fallbacks(),
            120u);
  EXPECT_GT(sched->conflict_waits(), 0u);
  EXPECT_EQ(db->write_pipeline()->in_flight(), 0u);

  auto report = db->Audit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
  ASSERT_TRUE(db->Close().ok());
}

// Crash after a concurrent TPC-C mix with records still queued behind a
// huge group-commit window: recovery must reconcile WAL-durable commits
// whose compliance tail died in the shipper ring, and the reopened
// database must audit clean and keep committing through the scheduler.
TEST_F(WritePipelineTest, CrashAfterConcurrentMixRecoversAndAuditsClean) {
  std::string dir = FreshDir("crash_mix");
  {
    auto db = Open(MakeOptions(dir, /*write_threads=*/4, kHugeWindow,
                               /*cache_pages=*/16));
    ASSERT_NE(db, nullptr);
    tpcc::Workload workload(db.get(), SmallScale(), /*seed=*/13);
    ASSERT_TRUE(workload.CreateOrAttachTables().ok());
    ASSERT_TRUE(workload.Load().ok());
    tpcc::MixStats stats;
    Status run = workload.RunMixConcurrent(/*slots=*/100, /*threads=*/4,
                                           clock_.get(),
                                           /*advance_micros=*/700, &stats);
    ASSERT_TRUE(run.ok()) << run.ToString();
    // Crash: destructor without Close drops the ring mid-epoch.
  }
  auto db = Open(MakeOptions(dir, /*write_threads=*/4, kHugeWindow,
                             /*cache_pages=*/16));
  ASSERT_NE(db, nullptr);
  EXPECT_TRUE(db->recovered_from_crash());
  tpcc::Workload workload(db.get(), SmallScale(), /*seed=*/13);
  ASSERT_TRUE(workload.CreateOrAttachTables().ok());
  tpcc::MixStats stats;
  Status run = workload.RunMixConcurrent(/*slots=*/20, /*threads=*/4,
                                         clock_.get(),
                                         /*advance_micros=*/700, &stats);
  ASSERT_TRUE(run.ok()) << run.ToString();
  auto report = db->Audit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
  ASSERT_TRUE(db->Close().ok());
}

// Bare Begin/Commit from many threads: each transaction gets an implicit
// slot, so callers that know nothing about slots still serialize
// correctly and keep durable-on-return semantics.
TEST_F(WritePipelineTest, ImplicitSlotsSerializeBareTransactions) {
  std::string dir = FreshDir("implicit");
  auto db = Open(MakeOptions(dir, /*write_threads=*/4));
  ASSERT_NE(db, nullptr);
  auto table = db->CreateTable("accounts");
  ASSERT_TRUE(table.ok());

  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 25;
  std::vector<std::thread> pool;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto txn = db->Begin();
        if (!txn.ok()) { ++failures; return; }
        std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
        if (!db->Put(txn.value(), table.value(), key, "v").ok() ||
            !db->Commit(txn.value()).ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_NE(db->write_pipeline(), nullptr);
  EXPECT_EQ(db->write_pipeline()->in_flight(), 0u);

  std::string value;
  EXPECT_TRUE(db->Get(table.value(), "t3-k24", &value).ok());
  auto report = db->Audit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
  ASSERT_TRUE(db->Close().ok());
}

// COMPLYDB_WRITE_THREADS overrides DbOptions.write_threads without a
// rebuild, and a multi-writer open forces async shipping (the epoch
// barrier requires the shipper's thread-safe FlushThrough).
TEST_F(WritePipelineTest, EnvVarOverridesWriteThreads) {
  {
    ::setenv("COMPLYDB_WRITE_THREADS", "4", 1);
    auto db = Open(MakeOptions(FreshDir("env_on"), /*write_threads=*/1));
    ASSERT_NE(db, nullptr);
    EXPECT_EQ(db->write_threads(), 4u);
    EXPECT_NE(db->write_pipeline(), nullptr);
    EXPECT_TRUE(db->compliance_logger()->options().async_shipping);
    EXPECT_STREQ(db->shipper_mode(), "async");
    ASSERT_TRUE(db->Close().ok());
  }
  {
    // Not a positive integer: the option stands.
    ::setenv("COMPLYDB_WRITE_THREADS", "bogus", 1);
    auto db = Open(MakeOptions(FreshDir("env_bogus"), /*write_threads=*/1));
    ASSERT_NE(db, nullptr);
    EXPECT_EQ(db->write_threads(), 1u);
    EXPECT_EQ(db->write_pipeline(), nullptr);
    ASSERT_TRUE(db->Close().ok());
  }
  ::unsetenv("COMPLYDB_WRITE_THREADS");
}

// The Audit Busy error names what is actually in the way: the open
// snapshot count and the in-flight writer count.
TEST_F(WritePipelineTest, AuditBusyReportsCounts) {
  std::string dir = FreshDir("busy");
  auto db = Open(MakeOptions(dir, /*write_threads=*/1));
  ASSERT_NE(db, nullptr);
  auto table = db->CreateTable("t");
  ASSERT_TRUE(table.ok());

  auto snap = db->BeginSnapshot();
  ASSERT_TRUE(snap.ok());
  auto while_snapshot = db->Audit();
  ASSERT_FALSE(while_snapshot.ok());
  EXPECT_TRUE(while_snapshot.status().IsBusy());
  EXPECT_NE(while_snapshot.status().ToString().find(
                "1 snapshots open, 0 writers in flight"),
            std::string::npos)
      << while_snapshot.status().ToString();
  delete snap.value();

  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  auto while_writing = db->Audit();
  ASSERT_FALSE(while_writing.ok());
  EXPECT_TRUE(while_writing.status().IsBusy());
  EXPECT_NE(while_writing.status().ToString().find(
                "0 snapshots open, 1 writers in flight"),
            std::string::npos)
      << while_writing.status().ToString();
  ASSERT_TRUE(db->Abort(txn.value()).ok());

  auto report = db->Audit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(db->Close().ok());
}

// Crash mid-epoch (PR 3's crash-window harness, multi-writer edition):
// a 4-writer run against a huge group-commit window, killed without
// Close while trailing records sit in the shipper ring. Recovery must
// re-announce WAL-durable commits whose STAMPs died with the ring, the
// post-crash database must keep working at write_threads=4, and the
// audit must come back clean.
TEST_F(WritePipelineTest, CrashMidEpochRecoversAndAuditsClean) {
  std::string dir = FreshDir("crash");
  uint32_t table = 0;
  {
    auto db = Open(MakeOptions(dir, /*write_threads=*/4, kHugeWindow,
                               /*cache_pages=*/16));
    ASSERT_NE(db, nullptr);
    auto t = db->CreateTable("crash");
    ASSERT_TRUE(t.ok());
    table = t.value();
    // The tiny cache evicts dirty pages mid-run, so the dependent-pwrite
    // barrier drains the ring repeatedly; the crash then takes whatever
    // queued after the last epoch barrier.
    std::vector<std::thread> pool;
    for (int w = 0; w < 4; ++w) {
      pool.emplace_back([&, w] {
        for (int i = 0; i < 50; ++i) {
          auto txn = db->Begin();
          ASSERT_TRUE(txn.ok());
          ASSERT_TRUE(db->Put(txn.value(), table,
                              "w" + std::to_string(w) + "-" +
                                  std::to_string(i * 7919 % 400),
                              std::string(120, 'c'))
                          .ok());
          ASSERT_TRUE(db->Commit(txn.value()).ok());
        }
      });
    }
    for (auto& th : pool) th.join();
    // Crash: destructor without Close drops the ring mid-epoch.
  }
  auto db = Open(MakeOptions(dir, /*write_threads=*/4, kHugeWindow,
                             /*cache_pages=*/16));
  ASSERT_NE(db, nullptr);
  EXPECT_TRUE(db->recovered_from_crash());
  std::string value;
  EXPECT_TRUE(db->Get(table, "w2-" + std::to_string(12 * 7919 % 400), &value)
                  .ok());
  // The recovered database keeps committing through the pipeline.
  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db->Put(txn.value(), table, "post-crash", "alive").ok());
  ASSERT_TRUE(db->Commit(txn.value()).ok());
  auto report = db->Audit();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ok())
      << "first problem: " << report.value().problems[0];
  ASSERT_TRUE(db->Close().ok());
}

}  // namespace
}  // namespace complydb
