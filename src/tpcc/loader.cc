#include "tpcc/workload.h"

#include <set>
#include <vector>

#include "common/coding.h"

namespace complydb {
namespace tpcc {

Status Workload::CreateOrAttachTables() {
  auto resolve = [&](const char* name, uint32_t* out) -> Status {
    auto existing = db_->GetTable(name);
    if (existing.ok()) {
      *out = existing.value();
      return Status::OK();
    }
    auto created = db_->CreateTable(name);
    if (!created.ok()) return created.status();
    *out = created.value();
    return Status::OK();
  };
  CDB_RETURN_IF_ERROR(resolve(kWarehouse, &tables_.warehouse));
  CDB_RETURN_IF_ERROR(resolve(kDistrict, &tables_.district));
  CDB_RETURN_IF_ERROR(resolve(kCustomer, &tables_.customer));
  CDB_RETURN_IF_ERROR(resolve(kHistory, &tables_.history));
  CDB_RETURN_IF_ERROR(resolve(kNewOrder, &tables_.new_order));
  CDB_RETURN_IF_ERROR(resolve(kOrder, &tables_.order));
  CDB_RETURN_IF_ERROR(resolve(kOrderLine, &tables_.order_line));
  CDB_RETURN_IF_ERROR(resolve(kItem, &tables_.item));
  CDB_RETURN_IF_ERROR(resolve(kStock, &tables_.stock));
  CDB_RETURN_IF_ERROR(resolve(kCustomerLastOrder, &tables_.cust_last_order));

  // Customer-by-last-name secondary index; binary fields hex-encoded so
  // the derived key stays NUL-free (the index-entry separator).
  auto by_name = [](Slice value) -> Result<std::string> {
    CustomerRow row;
    CDB_RETURN_IF_ERROR(CustomerRow::Decode(value, &row));
    char prefix[20];
    std::snprintf(prefix, sizeof(prefix), "%08x%08x", row.w, row.d);
    return std::string(prefix) + row.last_name;
  };
  auto idx = db_->AttachIndex(tables_.customer, "by_name", by_name);
  if (!idx.ok()) {
    idx = db_->CreateIndex(tables_.customer, "by_name", by_name);
    if (!idx.ok()) return idx.status();
  }
  tables_.customer_by_name = idx.value();
  return Status::OK();
}

Status Workload::Load() {
  // Items.
  {
    Transaction* txn = nullptr;
    int in_batch = 0;
    for (uint32_t i = 1; i <= scale_.items; ++i) {
      if (txn == nullptr) {
        auto b = db_->Begin();
        if (!b.ok()) return b.status();
        txn = b.value();
        in_batch = 0;
      }
      ItemRow row;
      row.name = "item-" + std::to_string(i);
      row.price_cents = static_cast<int64_t>(rng_.Uniform(100, 10000));
      row.data = rng_.AString(26, 50);
      CDB_RETURN_IF_ERROR(
          db_->Put(txn, tables_.item, ItemKey(i), row.Encode()));
      if (++in_batch >= 200) {
        CDB_RETURN_IF_ERROR(db_->Commit(txn));
        txn = nullptr;
      }
    }
    if (txn != nullptr) CDB_RETURN_IF_ERROR(db_->Commit(txn));
  }

  for (uint32_t w = 1; w <= scale_.warehouses; ++w) {
    // Warehouse row.
    {
      auto b = db_->Begin();
      if (!b.ok()) return b.status();
      WarehouseRow row;
      row.name = "wh-" + std::to_string(w);
      row.tax_bp = static_cast<int64_t>(rng_.Uniform(0, 2000));
      CDB_RETURN_IF_ERROR(
          db_->Put(b.value(), tables_.warehouse, WarehouseKey(w),
                   row.Encode()));
      CDB_RETURN_IF_ERROR(db_->Commit(b.value()));
    }

    // Stock: one row per item.
    {
      Transaction* txn = nullptr;
      int in_batch = 0;
      for (uint32_t i = 1; i <= scale_.items; ++i) {
        if (txn == nullptr) {
          auto b = db_->Begin();
          if (!b.ok()) return b.status();
          txn = b.value();
          in_batch = 0;
        }
        StockRow row;
        row.quantity = static_cast<int32_t>(rng_.Uniform(10, 100));
        row.dist_info = rng_.AString(24, 24);
        CDB_RETURN_IF_ERROR(
            db_->Put(txn, tables_.stock, StockKey(w, i), row.Encode()));
        if (++in_batch >= 200) {
          CDB_RETURN_IF_ERROR(db_->Commit(txn));
          txn = nullptr;
        }
      }
      if (txn != nullptr) CDB_RETURN_IF_ERROR(db_->Commit(txn));
    }

    for (uint32_t d = 1; d <= scale_.districts_per_warehouse; ++d) {
      {
        auto b = db_->Begin();
        if (!b.ok()) return b.status();
        DistrictRow row;
        row.name = "dist-" + std::to_string(w) + "-" + std::to_string(d);
        row.tax_bp = static_cast<int64_t>(rng_.Uniform(0, 2000));
        row.next_o_id = scale_.initial_orders_per_district + 1;
        CDB_RETURN_IF_ERROR(db_->Put(b.value(), tables_.district,
                                     DistrictKey(w, d), row.Encode()));
        CDB_RETURN_IF_ERROR(db_->Commit(b.value()));
      }

      // Customers.
      {
        Transaction* txn = nullptr;
        int in_batch = 0;
        for (uint32_t c = 1; c <= scale_.customers_per_district; ++c) {
          if (txn == nullptr) {
            auto b = db_->Begin();
            if (!b.ok()) return b.status();
            txn = b.value();
            in_batch = 0;
          }
          CustomerRow row;
          row.w = w;
          row.d = d;
          // Spec-style shared last names: several customers per name.
          row.last_name = "NAME" + std::to_string(c % 10);
          row.credit = rng_.Percent(10) ? "BC" : "GC";
          row.data = rng_.AString(60, 120);
          CDB_RETURN_IF_ERROR(db_->Put(txn, tables_.customer,
                                       CustomerKey(w, d, c), row.Encode()));
          if (++in_batch >= 100) {
            CDB_RETURN_IF_ERROR(db_->Commit(txn));
            txn = nullptr;
          }
        }
        if (txn != nullptr) CDB_RETURN_IF_ERROR(db_->Commit(txn));
      }

      // Initial orders: one per customer (permuted), last third undelivered.
      {
        std::vector<uint32_t> cust_perm(scale_.initial_orders_per_district);
        for (uint32_t o = 0; o < cust_perm.size(); ++o) {
          cust_perm[o] =
              1 + static_cast<uint32_t>(
                      rng_.Uniform(1, scale_.customers_per_district)) -
              1;
        }
        for (uint32_t o = 1; o <= scale_.initial_orders_per_district; ++o) {
          auto b = db_->Begin();
          if (!b.ok()) return b.status();
          Transaction* txn = b.value();
          uint32_t c = 1 + cust_perm[o - 1] % scale_.customers_per_district;
          bool undelivered =
              o > (2 * scale_.initial_orders_per_district) / 3;
          OrderRow order;
          order.c_id = c;
          order.entry_d = db_->Now();
          order.carrier_id =
              undelivered ? 0
                          : static_cast<uint32_t>(rng_.Uniform(1, 10));
          order.ol_cnt = static_cast<uint32_t>(rng_.Uniform(5, 15));
          CDB_RETURN_IF_ERROR(db_->Put(txn, tables_.order, OrderKey(w, d, o),
                                       order.Encode()));
          std::string last;
          PutFixed32(&last, o);
          CDB_RETURN_IF_ERROR(db_->Put(txn, tables_.cust_last_order,
                                       CustomerLastOrderKey(w, d, c), last));
          if (undelivered) {
            CDB_RETURN_IF_ERROR(db_->Put(txn, tables_.new_order,
                                         NewOrderKey(w, d, o), ""));
          }
          std::set<uint32_t> seen_items;
          for (uint32_t ol = 1; ol <= order.ol_cnt; ++ol) {
            uint32_t i_id = rng_.ItemId(scale_.items);
            while (!seen_items.insert(i_id).second) {
              i_id = 1 + (i_id % scale_.items);
            }
            OrderLineRow line;
            line.i_id = i_id;
            line.supply_w = w;
            line.quantity = 5;
            line.amount_cents =
                undelivered ? static_cast<int64_t>(rng_.Uniform(1, 999999))
                            : 0;
            line.delivery_d = undelivered ? 0 : order.entry_d;
            line.dist_info = rng_.AString(24, 24);
            CDB_RETURN_IF_ERROR(db_->Put(txn, tables_.order_line,
                                         OrderLineKey(w, d, o, ol),
                                         line.Encode()));
          }
          CDB_RETURN_IF_ERROR(db_->Commit(txn));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace tpcc
}  // namespace complydb
