#ifndef COMPLYDB_TPCC_WORKLOAD_H_
#define COMPLYDB_TPCC_WORKLOAD_H_

#include <cstdint>
#include <map>

#include "db/compliant_db.h"
#include "db/snapshot_reader.h"
#include "tpcc/schema.h"
#include "tpcc/tpcc_random.h"

namespace complydb {
namespace tpcc {

/// Tree ids of the nine TPC-C relations plus the last-order side table.
struct Tables {
  uint32_t warehouse = 0;
  uint32_t district = 0;
  uint32_t customer = 0;
  uint32_t history = 0;
  uint32_t new_order = 0;
  uint32_t order = 0;
  uint32_t order_line = 0;
  uint32_t item = 0;
  uint32_t stock = 0;
  uint32_t cust_last_order = 0;
  uint32_t customer_by_name = 0;  // secondary index (clause 2.5.1.2)
};

/// The footprint-determining prefix of a slot's parameter draws, hoisted
/// to issue time so the admission controller can classify the slot before
/// its ticket is reserved (DESIGN.md, "Disjoint-slot scheduling"). The
/// body continues on the same rng stream, so slot content remains a pure
/// function of (seed, slot number).
struct SlotParams {
  int type = 0;       // mix card: 0 NewOrder .. 4 StockLevel
  uint64_t now = 0;   // deterministic slot time (entry_d / H_DATE / OL_DELIVERY_D)
  uint32_t w = 0;
  uint32_t d = 0;
  // NewOrder
  uint32_t c = 0;
  bool rollback = false;
  std::map<uint32_t, uint32_t> item_qty;  // i_id -> quantity (coalesced)
  std::map<uint32_t, uint32_t> supplies;  // i_id -> remote supply warehouse
  // Payment
  uint32_t c_w = 0;
  uint32_t c_d = 0;
  // Delivery
  uint32_t carrier = 0;
};

struct MixStats {
  uint64_t new_order = 0;
  uint64_t payment = 0;
  uint64_t order_status = 0;
  uint64_t delivery = 0;
  uint64_t stock_level = 0;
  uint64_t rollbacks = 0;  // the 1% NewOrder rollback of clause 2.4.1.4

  uint64_t total() const {
    return new_order + payment + order_status + delivery + stock_level;
  }
};

/// TPC-C atop the compliant DBMS: full five-transaction workload at the
/// standard mix (45/43/4/4/4), the NURand skew, and the 1% NewOrder
/// rollback — the paper's evaluation workload (§VII), scaled by `Scale`.
///
/// Deviations from the letter of the spec (documented in DESIGN.md):
/// customer selection is always by id (no last-name secondary index), and
/// OrderStatus locates a customer's last order through a maintained
/// side table instead of a reverse index scan. Duplicate items within one
/// NewOrder are coalesced (one STOCK write per key per transaction).
class Workload {
 public:
  Workload(CompliantDB* db, const Scale& scale, uint64_t seed)
      : db_(db), scale_(scale), seed_(seed), rng_(seed) {}

  /// Creates the relations (fresh database) or resolves existing ones.
  Status CreateOrAttachTables();

  /// Populates per clause 4.3 (scaled). Call once on a fresh database.
  Status Load();

  // Single-transaction executions. NewOrder reports whether it committed
  // (false = the intentional 1% rollback). Each takes the rng that drives
  // its parameter draws; the no-rng overloads use the workload's own rng
  // (single-threaded callers). RunMixConcurrent passes a per-slot rng so
  // a slot's content is a pure function of its slot number.
  Status NewOrder(bool* committed, TpccRandom* rng);
  Status Payment(TpccRandom* rng);
  Status OrderStatus(TpccRandom* rng);
  Status Delivery(TpccRandom* rng);
  Status StockLevel(TpccRandom* rng);
  Status NewOrder(bool* committed) { return NewOrder(committed, &rng_); }

  /// Draws the issue-time parameter prefix of a type-`type` slot into
  /// `params` and the set of warehouses it touches into `footprint` (one
  /// partition per distinct warehouse). The caller passes the same rng to
  /// the body afterwards. `params->now` is left for the caller to set.
  void DrawSlotParams(int type, TpccRandom* rng, SlotParams* params,
                      SlotFootprint* footprint);

  // Param-taking bodies: every draw hoisted by DrawSlotParams comes from
  // `p`; draws that cannot be hoisted (customer-by-name selection, the
  // payment amount, the stock threshold) continue on `rng`.
  Status NewOrder(bool* committed, TpccRandom* rng, const SlotParams& p);
  Status Payment(TpccRandom* rng, const SlotParams& p);
  Status OrderStatus(TpccRandom* rng, const SlotParams& p);
  Status Delivery(TpccRandom* rng, const SlotParams& p);
  Status StockLevel(TpccRandom* rng, const SlotParams& p);

  /// Cross-warehouse rate override in basis points for the remote
  /// NewOrder supply (spec: 1%) and remote Payment customer (spec: 15%)
  /// draws; -1 keeps the spec rates. The benchmark's --cross-rate knob.
  void set_cross_rate_bp(int bp) { cross_bp_ = bp; }
  Status Payment() { return Payment(&rng_); }
  Status OrderStatus() { return OrderStatus(&rng_); }
  Status Delivery() { return Delivery(&rng_); }
  Status StockLevel() { return StockLevel(&rng_); }

  // Read-only variants of the two read-only TPC-C transactions, executed
  // against a snapshot handle. Safe to call from any reader thread
  // concurrently with the writer; callers pass a per-thread rng (the
  // workload's own rng is not thread-safe).
  Status OrderStatusRO(const SnapshotReader& snap, TpccRandom* rng) const;
  Status StockLevelRO(const SnapshotReader& snap, TpccRandom* rng) const;

  /// Runs `num_txns` transactions at the standard mix.
  Status RunMix(uint64_t num_txns, MixStats* stats);

  /// Multi-writer mix driver over the commit pipeline: `num_txns` slots
  /// whose content (transaction type and every parameter draw) is a pure
  /// function of (seed, slot number), executed by `threads` workers
  /// through CompliantDB::RunWriteSlot. The turnstile admits slots in
  /// reservation order, so the execution schedule — and with it the
  /// compliance log L, byte for byte — is identical at any thread count.
  /// NOT byte-compatible with RunMix (that single-rng schedule interleaves
  /// deck shuffles with parameter draws); compare RunMixConcurrent runs
  /// with each other. `clock`, when non-null, is advanced by
  /// `advance_micros` inside each slot (the advance must stay inside the
  /// turnstile, or commit-time draws would race). `threads` > 1 requires
  /// the db to have a commit pipeline (write_threads > 1).
  Status RunMixConcurrent(uint64_t num_txns, uint32_t threads,
                          SimulatedClock* clock, uint64_t advance_micros,
                          MixStats* stats);

  /// The transaction type slot `slot` runs: the same 45/43/4/4/4 card
  /// deck as RunMix, reshuffled each century of slots from `seed`.
  static int MixTypeForSlot(uint64_t seed, uint64_t slot);

  /// Deterministic per-slot rng stream (splitmix64 over seed and slot).
  static uint64_t SlotSeed(uint64_t seed, uint64_t slot);

  const Tables& tables() const { return tables_; }
  const Scale& scale() const { return scale_; }
  TpccRandom* rng() { return &rng_; }

 private:
  /// Customer selection per clause 2.5.1.2: 60% by last name through the
  /// secondary index (middle match), 40% by id (NURand).
  Status SelectCustomer(TpccRandom* rng, uint32_t w, uint32_t d,
                        uint32_t* c_id);
  Status SelectCustomerRO(const SnapshotReader& snap, TpccRandom* rng,
                          uint32_t w, uint32_t d, uint32_t* c_id) const;

  uint32_t RandomWarehouse(TpccRandom* rng) {
    return static_cast<uint32_t>(rng->Uniform(1, scale_.warehouses));
  }
  uint32_t RandomDistrict(TpccRandom* rng) {
    return static_cast<uint32_t>(
        rng->Uniform(1, scale_.districts_per_warehouse));
  }

  CompliantDB* db_;
  Scale scale_;
  uint64_t seed_;
  TpccRandom rng_;
  Tables tables_;
  int cross_bp_ = -1;
};

}  // namespace tpcc
}  // namespace complydb

#endif  // COMPLYDB_TPCC_WORKLOAD_H_
