#include "tpcc/tpcc_random.h"

namespace complydb {
namespace tpcc {

namespace {
// Spec clause 2.1.6.1: C is a per-run constant; fixed here for
// reproducibility.
constexpr uint32_t kCItem = 7911;
constexpr uint32_t kCCustomer = 259;
}  // namespace

uint32_t TpccRandom::NURand(uint32_t a, uint32_t x, uint32_t y) {
  uint32_t c = (a == 8191) ? kCItem : kCCustomer;
  uint64_t lhs = rng_.Range(0, a);
  uint64_t rhs = rng_.Range(x, y);
  return static_cast<uint32_t>((((lhs | rhs) + c) % (y - x + 1)) + x);
}

uint32_t TpccRandom::ItemId(uint32_t items) {
  // Spec: NURand(8191, 1, 100000); preserve the skew profile by scaling
  // the A parameter with the cardinality (A ~ items/12).
  if (items >= 100000) return NURand(8191, 1, items);
  uint32_t a = items / 12;
  if (a < 15) a = 15;
  uint64_t lhs = rng_.Range(0, a);
  uint64_t rhs = rng_.Range(1, items);
  return static_cast<uint32_t>((((lhs | rhs) + kCItem) % items) + 1);
}

uint32_t TpccRandom::CustomerId(uint32_t customers) {
  if (customers >= 3000) return NURand(1023, 1, customers);
  uint32_t a = customers / 3;
  if (a < 7) a = 7;
  uint64_t lhs = rng_.Range(0, a);
  uint64_t rhs = rng_.Range(1, customers);
  return static_cast<uint32_t>((((lhs | rhs) + kCCustomer) % customers) + 1);
}

std::string TpccRandom::AString(size_t min_len, size_t max_len) {
  size_t len = min_len + rng_.Uniform(max_len - min_len + 1);
  return rng_.Bytes(len);
}

std::string TpccRandom::NString(size_t len) {
  std::string s(len, '0');
  for (auto& c : s) c = static_cast<char>('0' + rng_.Uniform(10));
  return s;
}

}  // namespace tpcc
}  // namespace complydb
