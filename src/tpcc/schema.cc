#include "tpcc/schema.h"

#include "common/coding.h"

namespace complydb {
namespace tpcc {

std::string WarehouseKey(uint32_t w) {
  std::string k;
  PutBigEndian32(&k, w);
  return k;
}

std::string DistrictKey(uint32_t w, uint32_t d) {
  std::string k;
  PutBigEndian32(&k, w);
  PutBigEndian32(&k, d);
  return k;
}

std::string CustomerKey(uint32_t w, uint32_t d, uint32_t c) {
  std::string k;
  PutBigEndian32(&k, w);
  PutBigEndian32(&k, d);
  PutBigEndian32(&k, c);
  return k;
}

std::string HistoryKey(uint32_t w, uint32_t d, uint32_t c, uint64_t seq) {
  std::string k;
  PutBigEndian32(&k, w);
  PutBigEndian32(&k, d);
  PutBigEndian32(&k, c);
  PutBigEndian64(&k, seq);
  return k;
}

std::string NewOrderKey(uint32_t w, uint32_t d, uint32_t o) {
  std::string k;
  PutBigEndian32(&k, w);
  PutBigEndian32(&k, d);
  PutBigEndian32(&k, o);
  return k;
}

std::string OrderKey(uint32_t w, uint32_t d, uint32_t o) {
  return NewOrderKey(w, d, o);
}

std::string OrderLineKey(uint32_t w, uint32_t d, uint32_t o, uint32_t ol) {
  std::string k;
  PutBigEndian32(&k, w);
  PutBigEndian32(&k, d);
  PutBigEndian32(&k, o);
  PutBigEndian32(&k, ol);
  return k;
}

std::string ItemKey(uint32_t i) {
  std::string k;
  PutBigEndian32(&k, i);
  return k;
}

std::string StockKey(uint32_t w, uint32_t i) {
  std::string k;
  PutBigEndian32(&k, w);
  PutBigEndian32(&k, i);
  return k;
}

std::string CustomerLastOrderKey(uint32_t w, uint32_t d, uint32_t c) {
  return CustomerKey(w, d, c);
}

// --- row codecs ---

std::string WarehouseRow::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, name);
  PutFixed64(&out, static_cast<uint64_t>(tax_bp));
  PutFixed64(&out, static_cast<uint64_t>(ytd_cents));
  return out;
}

Status WarehouseRow::Decode(Slice data, WarehouseRow* out) {
  Decoder dec(data);
  CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->name));
  uint64_t v = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&v));
  out->tax_bp = static_cast<int64_t>(v);
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&v));
  out->ytd_cents = static_cast<int64_t>(v);
  return Status::OK();
}

std::string DistrictRow::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, name);
  PutFixed64(&out, static_cast<uint64_t>(tax_bp));
  PutFixed64(&out, static_cast<uint64_t>(ytd_cents));
  PutFixed32(&out, next_o_id);
  return out;
}

Status DistrictRow::Decode(Slice data, DistrictRow* out) {
  Decoder dec(data);
  CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->name));
  uint64_t v = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&v));
  out->tax_bp = static_cast<int64_t>(v);
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&v));
  out->ytd_cents = static_cast<int64_t>(v);
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->next_o_id));
  return Status::OK();
}

std::string CustomerRow::Encode() const {
  std::string out;
  PutFixed32(&out, w);
  PutFixed32(&out, d);
  PutLengthPrefixed(&out, last_name);
  PutLengthPrefixed(&out, credit);
  PutFixed64(&out, static_cast<uint64_t>(balance_cents));
  PutFixed64(&out, static_cast<uint64_t>(ytd_payment_cents));
  PutFixed32(&out, payment_cnt);
  PutFixed32(&out, delivery_cnt);
  PutLengthPrefixed(&out, data);
  return out;
}

Status CustomerRow::Decode(Slice data_in, CustomerRow* out) {
  Decoder dec(data_in);
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->w));
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->d));
  CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->last_name));
  CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->credit));
  uint64_t v = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&v));
  out->balance_cents = static_cast<int64_t>(v);
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&v));
  out->ytd_payment_cents = static_cast<int64_t>(v);
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->payment_cnt));
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->delivery_cnt));
  CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->data));
  return Status::OK();
}

std::string HistoryRow::Encode() const {
  std::string out;
  PutFixed32(&out, c_w);
  PutFixed32(&out, c_d);
  PutFixed32(&out, c_id);
  PutFixed64(&out, static_cast<uint64_t>(amount_cents));
  PutFixed64(&out, date);
  PutLengthPrefixed(&out, data);
  return out;
}

Status HistoryRow::Decode(Slice data_in, HistoryRow* out) {
  Decoder dec(data_in);
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->c_w));
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->c_d));
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->c_id));
  uint64_t v = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&v));
  out->amount_cents = static_cast<int64_t>(v);
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->date));
  CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->data));
  return Status::OK();
}

std::string OrderRow::Encode() const {
  std::string out;
  PutFixed32(&out, c_id);
  PutFixed64(&out, entry_d);
  PutFixed32(&out, carrier_id);
  PutFixed32(&out, ol_cnt);
  out.push_back(all_local ? 1 : 0);
  return out;
}

Status OrderRow::Decode(Slice data, OrderRow* out) {
  Decoder dec(data);
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->c_id));
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->entry_d));
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->carrier_id));
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->ol_cnt));
  std::string flag;
  CDB_RETURN_IF_ERROR(dec.GetBytes(1, &flag));
  out->all_local = flag[0] != 0;
  return Status::OK();
}

std::string OrderLineRow::Encode() const {
  std::string out;
  PutFixed32(&out, i_id);
  PutFixed32(&out, supply_w);
  PutFixed32(&out, quantity);
  PutFixed64(&out, static_cast<uint64_t>(amount_cents));
  PutFixed64(&out, delivery_d);
  PutLengthPrefixed(&out, dist_info);
  return out;
}

Status OrderLineRow::Decode(Slice data, OrderLineRow* out) {
  Decoder dec(data);
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->i_id));
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->supply_w));
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->quantity));
  uint64_t v = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&v));
  out->amount_cents = static_cast<int64_t>(v);
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->delivery_d));
  CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->dist_info));
  return Status::OK();
}

std::string ItemRow::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, name);
  PutFixed64(&out, static_cast<uint64_t>(price_cents));
  PutLengthPrefixed(&out, data);
  return out;
}

Status ItemRow::Decode(Slice data_in, ItemRow* out) {
  Decoder dec(data_in);
  CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->name));
  uint64_t v = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&v));
  out->price_cents = static_cast<int64_t>(v);
  CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->data));
  return Status::OK();
}

std::string StockRow::Encode() const {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(quantity));
  PutFixed64(&out, static_cast<uint64_t>(ytd));
  PutFixed32(&out, order_cnt);
  PutFixed32(&out, remote_cnt);
  PutLengthPrefixed(&out, dist_info);
  return out;
}

Status StockRow::Decode(Slice data, StockRow* out) {
  Decoder dec(data);
  uint32_t q = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&q));
  out->quantity = static_cast<int32_t>(q);
  uint64_t v = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&v));
  out->ytd = static_cast<int64_t>(v);
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->order_cnt));
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->remote_cnt));
  CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->dist_info));
  return Status::OK();
}

}  // namespace tpcc
}  // namespace complydb
