#include <algorithm>
#include <map>
#include <set>

#include "common/coding.h"
#include "tpcc/workload.h"

namespace complydb {
namespace tpcc {

Status Workload::SelectCustomer(TpccRandom* rng, uint32_t w, uint32_t d,
                                uint32_t* c_id) {
  if (!rng->Percent(60) || tables_.customer_by_name == 0) {
    *c_id = rng->CustomerId(scale_.customers_per_district);
    return Status::OK();
  }
  // By last name (clause 2.5.1.2): collect the matches and take the one
  // at position ceil(n/2) in primary-key order.
  uint32_t name_c = rng->CustomerId(scale_.customers_per_district);
  char prefix[20];
  std::snprintf(prefix, sizeof(prefix), "%08x%08x", w, d);
  std::string secondary =
      std::string(prefix) + "NAME" + std::to_string(name_c % 10);
  std::vector<uint32_t> matches;
  CDB_RETURN_IF_ERROR(
      db_->ScanIndex(tables_.customer_by_name, secondary,
                     [&](Slice primary) {
                       // CustomerKey = w,d,c big-endian (12 bytes).
                       if (primary.size() == 12) {
                         matches.push_back(
                             DecodeBigEndian32(primary.data() + 8));
                       }
                       return Status::OK();
                     }));
  if (matches.empty()) {
    *c_id = rng->CustomerId(scale_.customers_per_district);
    return Status::OK();
  }
  *c_id = matches[(matches.size() + 1) / 2 - 1];
  return Status::OK();
}

void Workload::DrawSlotParams(int type, TpccRandom* rng, SlotParams* params,
                              SlotFootprint* footprint) {
  params->type = type;
  params->w = RandomWarehouse(rng);
  std::set<uint64_t> parts;
  parts.insert(params->w);
  switch (type) {
    case 0: {  // NewOrder
      params->d = RandomDistrict(rng);
      params->c = rng->CustomerId(scale_.customers_per_district);
      uint32_t ol_cnt = static_cast<uint32_t>(rng->Uniform(5, 15));
      params->rollback = rng->Percent(1);  // clause 2.4.1.4
      // Pick items up front, coalescing duplicates (one STOCK write per
      // key per transaction).
      for (uint32_t i = 0; i < ol_cnt; ++i) {
        uint32_t i_id = rng->ItemId(scale_.items);
        params->item_qty[i_id] += static_cast<uint32_t>(rng->Uniform(1, 10));
      }
      // Remote supply warehouses (spec: 1% per line). The rollback case
      // aborts at the final item before its supply would be drawn, so no
      // draw happens for it — matching the body's control flow exactly.
      const uint32_t remote_bp =
          cross_bp_ >= 0 ? static_cast<uint32_t>(cross_bp_) : 100;
      size_t processed = 0;
      for (const auto& entry : params->item_qty) {
        ++processed;
        if (params->rollback && processed == params->item_qty.size()) break;
        if (scale_.warehouses > 1 && rng->PercentBp(remote_bp)) {
          uint32_t supply = params->w;
          do {
            supply = RandomWarehouse(rng);
          } while (supply == params->w);
          params->supplies[entry.first] = supply;
          parts.insert(supply);
        }
      }
      break;
    }
    case 1: {  // Payment: 85% local customer, 15% remote (spec).
      params->d = RandomDistrict(rng);
      params->c_w = params->w;
      params->c_d = params->d;
      const uint32_t remote_bp =
          cross_bp_ >= 0 ? static_cast<uint32_t>(cross_bp_) : 1500;
      if (scale_.warehouses > 1 && rng->PercentBp(remote_bp)) {
        do {
          params->c_w = RandomWarehouse(rng);
        } while (params->c_w == params->w);
        params->c_d = RandomDistrict(rng);
        parts.insert(params->c_w);
      }
      break;
    }
    case 2:  // OrderStatus
    case 4:  // StockLevel
      params->d = RandomDistrict(rng);
      break;
    case 3:  // Delivery
      params->carrier = static_cast<uint32_t>(rng->Uniform(1, 10));
      break;
  }
  if (footprint != nullptr) {
    footprint->partitions.assign(parts.begin(), parts.end());
  }
}

Status Workload::NewOrder(bool* committed, TpccRandom* rng) {
  SlotParams p;
  DrawSlotParams(0, rng, &p, nullptr);
  p.now = db_->Now();
  return NewOrder(committed, rng, p);
}

Status Workload::NewOrder(bool* committed, TpccRandom* rng,
                          const SlotParams& p) {
  (void)rng;  // every NewOrder draw is hoisted to DrawSlotParams
  *committed = false;
  const uint32_t w = p.w;
  const uint32_t d = p.d;
  const uint32_t c = p.c;
  const std::map<uint32_t, uint32_t>& item_qty = p.item_qty;

  auto begin = db_->Begin();
  if (!begin.ok()) return begin.status();
  Transaction* txn = begin.value();

  std::string raw;
  CDB_RETURN_IF_ERROR(db_->Get(tables_.warehouse, WarehouseKey(w), &raw));
  WarehouseRow warehouse;
  CDB_RETURN_IF_ERROR(WarehouseRow::Decode(raw, &warehouse));

  CDB_RETURN_IF_ERROR(db_->Get(tables_.district, DistrictKey(w, d), &raw));
  DistrictRow district;
  CDB_RETURN_IF_ERROR(DistrictRow::Decode(raw, &district));
  uint32_t o_id = district.next_o_id;
  district.next_o_id = o_id + 1;
  CDB_RETURN_IF_ERROR(db_->Put(txn, tables_.district, DistrictKey(w, d),
                               district.Encode()));

  CDB_RETURN_IF_ERROR(db_->Get(tables_.customer, CustomerKey(w, d, c), &raw));

  OrderRow order;
  order.c_id = c;
  order.entry_d = p.now;
  order.carrier_id = 0;
  order.ol_cnt = static_cast<uint32_t>(item_qty.size());
  CDB_RETURN_IF_ERROR(
      db_->Put(txn, tables_.order, OrderKey(w, d, o_id), order.Encode()));
  CDB_RETURN_IF_ERROR(
      db_->Put(txn, tables_.new_order, NewOrderKey(w, d, o_id), ""));
  std::string last;
  PutFixed32(&last, o_id);
  CDB_RETURN_IF_ERROR(db_->Put(txn, tables_.cust_last_order,
                               CustomerLastOrderKey(w, d, c), last));

  uint32_t ol = 0;
  size_t processed = 0;
  for (const auto& [i_id, qty] : item_qty) {
    ++processed;
    // The rollback case: the final item is unused (invalid id).
    uint32_t lookup =
        (p.rollback && processed == item_qty.size()) ? scale_.items + 7777
                                                     : i_id;
    Status item_status = db_->Get(tables_.item, ItemKey(lookup), &raw);
    if (item_status.IsNotFound()) {
      CDB_RETURN_IF_ERROR(db_->Abort(txn));
      return Status::OK();  // committed stays false
    }
    CDB_RETURN_IF_ERROR(item_status);
    ItemRow item;
    CDB_RETURN_IF_ERROR(ItemRow::Decode(raw, &item));

    // Remote supply warehouses were drawn at issue time (they are the
    // slot's footprint).
    auto supply_it = p.supplies.find(i_id);
    uint32_t supply_w = supply_it != p.supplies.end() ? supply_it->second : w;

    CDB_RETURN_IF_ERROR(
        db_->Get(tables_.stock, StockKey(supply_w, i_id), &raw));
    StockRow stock;
    CDB_RETURN_IF_ERROR(StockRow::Decode(raw, &stock));
    if (stock.quantity >= static_cast<int32_t>(qty) + 10) {
      stock.quantity -= static_cast<int32_t>(qty);
    } else {
      stock.quantity += 91 - static_cast<int32_t>(qty);
    }
    stock.ytd += qty;
    stock.order_cnt += 1;
    if (supply_w != w) stock.remote_cnt += 1;
    CDB_RETURN_IF_ERROR(db_->Put(txn, tables_.stock,
                                 StockKey(supply_w, i_id), stock.Encode()));

    OrderLineRow line;
    line.i_id = i_id;
    line.supply_w = supply_w;
    line.quantity = qty;
    line.amount_cents = item.price_cents * qty;
    line.dist_info = "dist-info-24-bytes-pad.";
    CDB_RETURN_IF_ERROR(db_->Put(txn, tables_.order_line,
                                 OrderLineKey(w, d, o_id, ++ol),
                                 line.Encode()));
  }

  CDB_RETURN_IF_ERROR(db_->Commit(txn));
  *committed = true;
  return Status::OK();
}

Status Workload::Payment(TpccRandom* rng) {
  SlotParams p;
  DrawSlotParams(1, rng, &p, nullptr);
  p.now = db_->Now();
  return Payment(rng, p);
}

Status Workload::Payment(TpccRandom* rng, const SlotParams& p) {
  const uint32_t w = p.w;
  const uint32_t d = p.d;
  const uint32_t c_w = p.c_w;
  const uint32_t c_d = p.c_d;
  uint32_t c = 0;
  CDB_RETURN_IF_ERROR(SelectCustomer(rng, c_w, c_d, &c));
  int64_t amount = static_cast<int64_t>(rng->Uniform(100, 500000));

  auto begin = db_->Begin();
  if (!begin.ok()) return begin.status();
  Transaction* txn = begin.value();

  std::string raw;
  CDB_RETURN_IF_ERROR(db_->Get(tables_.warehouse, WarehouseKey(w), &raw));
  WarehouseRow warehouse;
  CDB_RETURN_IF_ERROR(WarehouseRow::Decode(raw, &warehouse));
  warehouse.ytd_cents += amount;
  CDB_RETURN_IF_ERROR(db_->Put(txn, tables_.warehouse, WarehouseKey(w),
                               warehouse.Encode()));

  CDB_RETURN_IF_ERROR(db_->Get(tables_.district, DistrictKey(w, d), &raw));
  DistrictRow district;
  CDB_RETURN_IF_ERROR(DistrictRow::Decode(raw, &district));
  district.ytd_cents += amount;
  CDB_RETURN_IF_ERROR(db_->Put(txn, tables_.district, DistrictKey(w, d),
                               district.Encode()));

  CDB_RETURN_IF_ERROR(
      db_->Get(tables_.customer, CustomerKey(c_w, c_d, c), &raw));
  CustomerRow customer;
  CDB_RETURN_IF_ERROR(CustomerRow::Decode(raw, &customer));
  customer.balance_cents -= amount;
  customer.ytd_payment_cents += amount;
  customer.payment_cnt += 1;
  if (customer.credit == "BC") {
    customer.data =
        std::to_string(c) + "," + std::to_string(c_d) + "," +
        std::to_string(c_w) + "," + std::to_string(d) + "," +
        std::to_string(w) + "," + std::to_string(amount) + "|" +
        customer.data.substr(0, 400);
  }
  CDB_RETURN_IF_ERROR(db_->Put(txn, tables_.customer,
                               CustomerKey(c_w, c_d, c), customer.Encode()));

  HistoryRow history;
  history.c_w = c_w;
  history.c_d = c_d;
  history.c_id = c;
  history.amount_cents = amount;
  history.date = p.now;
  history.data = warehouse.name + "    " + district.name;
  CDB_RETURN_IF_ERROR(db_->Put(txn, tables_.history,
                               HistoryKey(w, d, c, rng->raw()->Next()),
                               history.Encode()));

  return db_->Commit(txn);
}

Status Workload::OrderStatus(TpccRandom* rng) {
  SlotParams p;
  DrawSlotParams(2, rng, &p, nullptr);
  return OrderStatus(rng, p);
}

Status Workload::OrderStatus(TpccRandom* rng, const SlotParams& p) {
  const uint32_t w = p.w;
  const uint32_t d = p.d;
  uint32_t c = 0;
  CDB_RETURN_IF_ERROR(SelectCustomer(rng, w, d, &c));

  std::string raw;
  CDB_RETURN_IF_ERROR(db_->Get(tables_.customer, CustomerKey(w, d, c), &raw));
  CustomerRow customer;
  CDB_RETURN_IF_ERROR(CustomerRow::Decode(raw, &customer));

  Status s = db_->Get(tables_.cust_last_order,
                      CustomerLastOrderKey(w, d, c), &raw);
  if (s.IsNotFound()) return Status::OK();  // customer never ordered
  CDB_RETURN_IF_ERROR(s);
  uint32_t o_id = DecodeFixed32(raw.data());

  CDB_RETURN_IF_ERROR(db_->Get(tables_.order, OrderKey(w, d, o_id), &raw));
  OrderRow order;
  CDB_RETURN_IF_ERROR(OrderRow::Decode(raw, &order));

  // Read the order's lines (through the facade scan, so an execute-phase
  // slot sees its own staged order lines).
  std::string begin_key = OrderLineKey(w, d, o_id, 0);
  std::string end_key = OrderLineKey(w, d, o_id + 1, 0);
  size_t lines = 0;
  CDB_RETURN_IF_ERROR(db_->ScanCurrent(tables_.order_line, begin_key, end_key,
                                       [&](const TupleData&) {
                                         ++lines;
                                         return Status::OK();
                                       }));
  return Status::OK();
}

Status Workload::SelectCustomerRO(const SnapshotReader& snap, TpccRandom* rng,
                                  uint32_t w, uint32_t d,
                                  uint32_t* c_id) const {
  if (!rng->Percent(60) || tables_.customer_by_name == 0) {
    *c_id = rng->CustomerId(scale_.customers_per_district);
    return Status::OK();
  }
  uint32_t name_c = rng->CustomerId(scale_.customers_per_district);
  char prefix[20];
  std::snprintf(prefix, sizeof(prefix), "%08x%08x", w, d);
  std::string secondary =
      std::string(prefix) + "NAME" + std::to_string(name_c % 10);
  // Index entries are ordinary tuples keyed secondary + '\0' + primary;
  // scan the snapshot over that prefix range (ScanIndex does the same on
  // the live view).
  std::string begin_key = secondary;
  begin_key.push_back('\0');
  std::string end_key = secondary;
  end_key.push_back('\x01');
  std::vector<uint32_t> matches;
  CDB_RETURN_IF_ERROR(snap.ScanCurrent(
      tables_.customer_by_name, begin_key, end_key,
      [&](const TupleData& entry) {
        // CustomerKey = w,d,c big-endian (12 bytes).
        if (entry.key.size() == secondary.size() + 1 + 12) {
          matches.push_back(DecodeBigEndian32(entry.key.data() +
                                              secondary.size() + 1 + 8));
        }
        return Status::OK();
      }));
  if (matches.empty()) {
    *c_id = rng->CustomerId(scale_.customers_per_district);
    return Status::OK();
  }
  *c_id = matches[(matches.size() + 1) / 2 - 1];
  return Status::OK();
}

Status Workload::OrderStatusRO(const SnapshotReader& snap,
                               TpccRandom* rng) const {
  uint32_t w = static_cast<uint32_t>(rng->Uniform(1, scale_.warehouses));
  uint32_t d = static_cast<uint32_t>(
      rng->Uniform(1, scale_.districts_per_warehouse));
  uint32_t c = 0;
  CDB_RETURN_IF_ERROR(SelectCustomerRO(snap, rng, w, d, &c));

  std::string raw;
  CDB_RETURN_IF_ERROR(snap.Get(tables_.customer, CustomerKey(w, d, c), &raw));
  CustomerRow customer;
  CDB_RETURN_IF_ERROR(CustomerRow::Decode(raw, &customer));

  Status s = snap.Get(tables_.cust_last_order,
                      CustomerLastOrderKey(w, d, c), &raw);
  if (s.IsNotFound()) return Status::OK();  // customer never ordered
  CDB_RETURN_IF_ERROR(s);
  uint32_t o_id = DecodeFixed32(raw.data());

  CDB_RETURN_IF_ERROR(snap.Get(tables_.order, OrderKey(w, d, o_id), &raw));
  OrderRow order;
  CDB_RETURN_IF_ERROR(OrderRow::Decode(raw, &order));

  std::string begin_key = OrderLineKey(w, d, o_id, 0);
  std::string end_key = OrderLineKey(w, d, o_id + 1, 0);
  size_t lines = 0;
  CDB_RETURN_IF_ERROR(snap.ScanCurrent(tables_.order_line, begin_key, end_key,
                                       [&](const TupleData&) {
                                         ++lines;
                                         return Status::OK();
                                       }));
  return Status::OK();
}

Status Workload::StockLevelRO(const SnapshotReader& snap,
                              TpccRandom* rng) const {
  uint32_t w = static_cast<uint32_t>(rng->Uniform(1, scale_.warehouses));
  uint32_t d = static_cast<uint32_t>(
      rng->Uniform(1, scale_.districts_per_warehouse));
  int32_t threshold = static_cast<int32_t>(rng->Uniform(10, 20));

  std::string raw;
  CDB_RETURN_IF_ERROR(snap.Get(tables_.district, DistrictKey(w, d), &raw));
  DistrictRow district;
  CDB_RETURN_IF_ERROR(DistrictRow::Decode(raw, &district));

  uint32_t from =
      district.next_o_id > 20 ? district.next_o_id - 20 : 1;
  std::set<uint32_t> items;
  std::string begin_key = OrderLineKey(w, d, from, 0);
  std::string end_key = OrderLineKey(w, d, district.next_o_id, 0);
  CDB_RETURN_IF_ERROR(snap.ScanCurrent(tables_.order_line, begin_key, end_key,
                                       [&](const TupleData& t) {
                                         OrderLineRow line;
                                         Status ds = OrderLineRow::Decode(
                                             t.value, &line);
                                         if (!ds.ok()) return ds;
                                         items.insert(line.i_id);
                                         return Status::OK();
                                       }));
  size_t low = 0;
  for (uint32_t i_id : items) {
    Status s = snap.Get(tables_.stock, StockKey(w, i_id), &raw);
    if (s.IsNotFound()) continue;
    CDB_RETURN_IF_ERROR(s);
    StockRow stock;
    CDB_RETURN_IF_ERROR(StockRow::Decode(raw, &stock));
    if (stock.quantity < threshold) ++low;
  }
  (void)low;
  return Status::OK();
}

Status Workload::Delivery(TpccRandom* rng) {
  SlotParams p;
  DrawSlotParams(3, rng, &p, nullptr);
  p.now = db_->Now();
  return Delivery(rng, p);
}

Status Workload::Delivery(TpccRandom* rng, const SlotParams& p) {
  (void)rng;  // every Delivery draw is hoisted to DrawSlotParams
  const uint32_t w = p.w;
  const uint32_t carrier = p.carrier;

  for (uint32_t d = 1; d <= scale_.districts_per_warehouse; ++d) {
    // Oldest undelivered order in this district.
    uint32_t o_id = 0;
    bool found = false;
    std::string begin_key = NewOrderKey(w, d, 0);
    std::string end_key = NewOrderKey(w, d + 1, 0);
    CDB_RETURN_IF_ERROR(
        db_->ScanCurrent(tables_.new_order, begin_key, end_key,
                         [&](const TupleData& t) {
                           o_id = DecodeBigEndian32(t.key.data() + 8);
                           found = true;
                           return Status::Busy("stop");
                         }));
    if (!found) continue;

    auto begin = db_->Begin();
    if (!begin.ok()) return begin.status();
    Transaction* txn = begin.value();

    CDB_RETURN_IF_ERROR(
        db_->Delete(txn, tables_.new_order, NewOrderKey(w, d, o_id)));

    std::string raw;
    CDB_RETURN_IF_ERROR(db_->Get(tables_.order, OrderKey(w, d, o_id), &raw));
    OrderRow order;
    CDB_RETURN_IF_ERROR(OrderRow::Decode(raw, &order));
    order.carrier_id = carrier;
    CDB_RETURN_IF_ERROR(
        db_->Put(txn, tables_.order, OrderKey(w, d, o_id), order.Encode()));

    // Stamp every line delivered and sum the amounts.
    int64_t total = 0;
    std::vector<std::pair<std::string, OrderLineRow>> lines;
    std::string ol_begin = OrderLineKey(w, d, o_id, 0);
    std::string ol_end = OrderLineKey(w, d, o_id + 1, 0);
    CDB_RETURN_IF_ERROR(
        db_->ScanCurrent(tables_.order_line, ol_begin, ol_end,
                         [&](const TupleData& t) {
                           OrderLineRow line;
                           Status ds = OrderLineRow::Decode(t.value, &line);
                           if (!ds.ok()) return ds;
                           lines.emplace_back(t.key, line);
                           return Status::OK();
                         }));
    uint64_t now = p.now;
    for (auto& [key, line] : lines) {
      total += line.amount_cents;
      line.delivery_d = now;
      CDB_RETURN_IF_ERROR(
          db_->Put(txn, tables_.order_line, key, line.Encode()));
    }

    CDB_RETURN_IF_ERROR(
        db_->Get(tables_.customer, CustomerKey(w, d, order.c_id), &raw));
    CustomerRow customer;
    CDB_RETURN_IF_ERROR(CustomerRow::Decode(raw, &customer));
    customer.balance_cents += total;
    customer.delivery_cnt += 1;
    CDB_RETURN_IF_ERROR(db_->Put(txn, tables_.customer,
                                 CustomerKey(w, d, order.c_id),
                                 customer.Encode()));
    CDB_RETURN_IF_ERROR(db_->Commit(txn));
  }
  return Status::OK();
}

Status Workload::StockLevel(TpccRandom* rng) {
  SlotParams p;
  DrawSlotParams(4, rng, &p, nullptr);
  return StockLevel(rng, p);
}

Status Workload::StockLevel(TpccRandom* rng, const SlotParams& p) {
  const uint32_t w = p.w;
  const uint32_t d = p.d;
  int32_t threshold = static_cast<int32_t>(rng->Uniform(10, 20));

  std::string raw;
  CDB_RETURN_IF_ERROR(db_->Get(tables_.district, DistrictKey(w, d), &raw));
  DistrictRow district;
  CDB_RETURN_IF_ERROR(DistrictRow::Decode(raw, &district));

  uint32_t from =
      district.next_o_id > 20 ? district.next_o_id - 20 : 1;
  std::set<uint32_t> items;
  std::string begin_key = OrderLineKey(w, d, from, 0);
  std::string end_key = OrderLineKey(w, d, district.next_o_id, 0);
  CDB_RETURN_IF_ERROR(
      db_->ScanCurrent(tables_.order_line, begin_key, end_key,
                       [&](const TupleData& t) {
                         OrderLineRow line;
                         Status ds = OrderLineRow::Decode(t.value, &line);
                         if (!ds.ok()) return ds;
                         items.insert(line.i_id);
                         return Status::OK();
                       }));
  size_t low = 0;
  for (uint32_t i_id : items) {
    Status s = db_->Get(tables_.stock, StockKey(w, i_id), &raw);
    if (s.IsNotFound()) continue;
    CDB_RETURN_IF_ERROR(s);
    StockRow stock;
    CDB_RETURN_IF_ERROR(StockRow::Decode(raw, &stock));
    if (stock.quantity < threshold) ++low;
  }
  (void)low;  // the spec reports the count; nothing consumes it here
  return Status::OK();
}

}  // namespace tpcc
}  // namespace complydb
