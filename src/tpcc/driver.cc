#include "tpcc/workload.h"

#include <vector>

namespace complydb {
namespace tpcc {

// Standard mix (clause 5.2.4): NewOrder 45%, Payment 43%, OrderStatus 4%,
// Delivery 4%, StockLevel 4% — implemented as a card deck per 100
// transactions so the proportions are exact over a run.
Status Workload::RunMix(uint64_t num_txns, MixStats* stats) {
  std::vector<int> deck;
  deck.reserve(100);
  for (int i = 0; i < 45; ++i) deck.push_back(0);
  for (int i = 0; i < 43; ++i) deck.push_back(1);
  for (int i = 0; i < 4; ++i) deck.push_back(2);
  for (int i = 0; i < 4; ++i) deck.push_back(3);
  for (int i = 0; i < 4; ++i) deck.push_back(4);

  size_t cursor = deck.size();
  for (uint64_t n = 0; n < num_txns; ++n) {
    if (cursor >= deck.size()) {
      // Reshuffle.
      for (size_t i = deck.size(); i > 1; --i) {
        std::swap(deck[i - 1], deck[rng_.raw()->Uniform(i)]);
      }
      cursor = 0;
    }
    switch (deck[cursor++]) {
      case 0: {
        bool committed = false;
        CDB_RETURN_IF_ERROR(NewOrder(&committed));
        ++stats->new_order;
        if (!committed) ++stats->rollbacks;
        break;
      }
      case 1:
        CDB_RETURN_IF_ERROR(Payment());
        ++stats->payment;
        break;
      case 2:
        CDB_RETURN_IF_ERROR(OrderStatus());
        ++stats->order_status;
        break;
      case 3:
        CDB_RETURN_IF_ERROR(Delivery());
        ++stats->delivery;
        break;
      case 4:
        CDB_RETURN_IF_ERROR(StockLevel());
        ++stats->stock_level;
        break;
    }
  }
  return Status::OK();
}

}  // namespace tpcc
}  // namespace complydb
