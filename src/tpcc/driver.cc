#include "tpcc/workload.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace complydb {
namespace tpcc {

// Standard mix (clause 5.2.4): NewOrder 45%, Payment 43%, OrderStatus 4%,
// Delivery 4%, StockLevel 4% — implemented as a card deck per 100
// transactions so the proportions are exact over a run.
Status Workload::RunMix(uint64_t num_txns, MixStats* stats) {
  std::vector<int> deck;
  deck.reserve(100);
  for (int i = 0; i < 45; ++i) deck.push_back(0);
  for (int i = 0; i < 43; ++i) deck.push_back(1);
  for (int i = 0; i < 4; ++i) deck.push_back(2);
  for (int i = 0; i < 4; ++i) deck.push_back(3);
  for (int i = 0; i < 4; ++i) deck.push_back(4);

  size_t cursor = deck.size();
  for (uint64_t n = 0; n < num_txns; ++n) {
    if (cursor >= deck.size()) {
      // Reshuffle.
      for (size_t i = deck.size(); i > 1; --i) {
        std::swap(deck[i - 1], deck[rng_.raw()->Uniform(i)]);
      }
      cursor = 0;
    }
    switch (deck[cursor++]) {
      case 0: {
        bool committed = false;
        CDB_RETURN_IF_ERROR(NewOrder(&committed));
        ++stats->new_order;
        if (!committed) ++stats->rollbacks;
        break;
      }
      case 1:
        CDB_RETURN_IF_ERROR(Payment());
        ++stats->payment;
        break;
      case 2:
        CDB_RETURN_IF_ERROR(OrderStatus());
        ++stats->order_status;
        break;
      case 3:
        CDB_RETURN_IF_ERROR(Delivery());
        ++stats->delivery;
        break;
      case 4:
        CDB_RETURN_IF_ERROR(StockLevel());
        ++stats->stock_level;
        break;
    }
  }
  return Status::OK();
}

uint64_t Workload::SlotSeed(uint64_t seed, uint64_t salt) {
  // splitmix64 over (seed, salt): independent, well-mixed streams per
  // slot. Never returns 0 (a degenerate rng state).
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z | 1;
}

int Workload::MixTypeForSlot(uint64_t seed, uint64_t slot) {
  // Same card deck as RunMix, but the shuffle for a century of slots is
  // seeded from (seed, century) alone — slot content never depends on
  // which thread got there first.
  int deck[100];
  size_t n = 0;
  for (int i = 0; i < 45; ++i) deck[n++] = 0;
  for (int i = 0; i < 43; ++i) deck[n++] = 1;
  for (int i = 0; i < 4; ++i) deck[n++] = 2;
  for (int i = 0; i < 4; ++i) deck[n++] = 3;
  for (int i = 0; i < 4; ++i) deck[n++] = 4;
  TpccRandom rng(SlotSeed(seed ^ 0x5eedc0dedeadbeefull, slot / 100));
  for (size_t i = 100; i > 1; --i) {
    std::swap(deck[i - 1], deck[rng.raw()->Uniform(i)]);
  }
  return deck[slot % 100];
}

Status Workload::RunMixConcurrent(uint64_t num_txns, uint32_t threads,
                                  SimulatedClock* clock,
                                  uint64_t advance_micros, MixStats* stats) {
  if (threads == 0) threads = 1;
  if (threads > 1 && db_->write_pipeline() == nullptr) {
    return Status::InvalidArgument(
        "RunMixConcurrent with threads > 1 requires DbOptions.write_threads "
        "> 1");
  }

  // Slot numbers and pipeline tickets are drawn under one lock, so slot i
  // always holds ticket base+i: admission order == slot order, and the
  // whole schedule is the serial 0..num_txns-1 sequence. The
  // footprint-determining prefix of each slot's rng stream is drawn under
  // the same lock (it classifies the slot for admission), so
  // classification is atomic with reservation.
  std::mutex issue_mu;
  uint64_t next_slot = 0;
  std::mutex result_mu;
  Status first_error;
  std::atomic<bool> failed{false};
  const uint64_t base_now = db_->Now();

  auto worker = [&]() {
    MixStats local;
    while (true) {
      uint64_t slot = 0;
      uint64_t ticket = 0;
      SlotParams params;
      std::unique_ptr<TpccRandom> rng;
      {
        std::lock_guard<std::mutex> lock(issue_mu);
        if (next_slot >= num_txns || failed.load(std::memory_order_relaxed)) {
          break;
        }
        slot = next_slot++;
        rng = std::make_unique<TpccRandom>(SlotSeed(seed_, slot));
        SlotFootprint footprint;
        DrawSlotParams(MixTypeForSlot(seed_, slot), rng.get(), &params,
                       &footprint);
        // Slot k's commit-time reads resolve to the base plus every
        // earlier slot's advance — exactly what a serial body's
        // db_->Now() would read at its turn. Precomputing it lets
        // concurrent execute phases run without touching the clock.
        params.now = base_now + slot * advance_micros;
        ticket = db_->ReserveWriteSlot(footprint);
      }
      Status s = db_->RunWriteSlot(
          ticket,
          [&]() -> Status {
            Status ts;
            switch (params.type) {
              case 0: {
                bool committed = false;
                ts = NewOrder(&committed, rng.get(), params);
                if (ts.ok()) {
                  ++local.new_order;
                  if (!committed) ++local.rollbacks;
                }
                break;
              }
              case 1:
                ts = Payment(rng.get(), params);
                if (ts.ok()) ++local.payment;
                break;
              case 2:
                ts = OrderStatus(rng.get(), params);
                if (ts.ok()) ++local.order_status;
                break;
              case 3:
                ts = Delivery(rng.get(), params);
                if (ts.ok()) ++local.delivery;
                break;
              case 4:
                ts = StockLevel(rng.get(), params);
                if (ts.ok()) ++local.stock_level;
                break;
            }
            return ts;
          },
          [&]() {
            // The clock advance must stay inside the turnstile: commit
            // times are max(last_tick+1, now), so an advance concurrent
            // with another slot's commit would make timestamps depend on
            // thread timing. With the scheduler this epilogue runs in
            // the apply phase, serial in ticket order.
            if (clock != nullptr && advance_micros > 0) {
              clock->AdvanceMicros(advance_micros);
            }
          });
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(result_mu);
        if (first_error.ok()) first_error = s;
        failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
    if (stats != nullptr) {
      std::lock_guard<std::mutex> lock(result_mu);
      stats->new_order += local.new_order;
      stats->payment += local.payment;
      stats->order_status += local.order_status;
      stats->delivery += local.delivery;
      stats->stock_level += local.stock_level;
      stats->rollbacks += local.rollbacks;
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  return first_error;
}

}  // namespace tpcc
}  // namespace complydb
