#ifndef COMPLYDB_TPCC_SCHEMA_H_
#define COMPLYDB_TPCC_SCHEMA_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace complydb {
namespace tpcc {

/// Scaled-down TPC-C cardinalities. Defaults are ~1/100 of the spec so a
/// full benchmark run fits a laptop; the *shape* of the workload (skewed
/// STOCK updates, uniform ORDER_LINE inserts, the standard mix) is
/// unchanged. Scale up via these knobs to approach the paper's 10-WH
/// (2.5 GB) configuration.
struct Scale {
  uint32_t warehouses = 1;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 30;   // spec: 3000
  uint32_t items = 1000;                  // spec: 100000
  uint32_t initial_orders_per_district = 30;  // spec: 3000
};

/// Table names (each is one complydb tree).
inline constexpr const char* kWarehouse = "WAREHOUSE";
inline constexpr const char* kDistrict = "DISTRICT";
inline constexpr const char* kCustomer = "CUSTOMER";
inline constexpr const char* kHistory = "HISTORY";
inline constexpr const char* kNewOrder = "NEW_ORDER";
inline constexpr const char* kOrder = "ORDER";
inline constexpr const char* kOrderLine = "ORDER_LINE";
inline constexpr const char* kItem = "ITEM";
inline constexpr const char* kStock = "STOCK";
inline constexpr const char* kCustomerLastOrder = "CUST_LAST_ORDER";

// --- composite big-endian keys (byte order == numeric order) ---

std::string WarehouseKey(uint32_t w);
std::string DistrictKey(uint32_t w, uint32_t d);
std::string CustomerKey(uint32_t w, uint32_t d, uint32_t c);
std::string HistoryKey(uint32_t w, uint32_t d, uint32_t c, uint64_t seq);
std::string NewOrderKey(uint32_t w, uint32_t d, uint32_t o);
std::string OrderKey(uint32_t w, uint32_t d, uint32_t o);
std::string OrderLineKey(uint32_t w, uint32_t d, uint32_t o, uint32_t ol);
std::string ItemKey(uint32_t i);
std::string StockKey(uint32_t w, uint32_t i);
std::string CustomerLastOrderKey(uint32_t w, uint32_t d, uint32_t c);

// --- row payloads ---

struct WarehouseRow {
  std::string name;
  int64_t tax_bp = 0;   // basis points
  int64_t ytd_cents = 0;
  std::string Encode() const;
  static Status Decode(Slice data, WarehouseRow* out);
};

struct DistrictRow {
  std::string name;
  int64_t tax_bp = 0;
  int64_t ytd_cents = 0;
  uint32_t next_o_id = 1;
  std::string Encode() const;
  static Status Decode(Slice data, DistrictRow* out);
};

struct CustomerRow {
  uint32_t w = 0;           // C_W_ID (also in the key; rows carry it per spec)
  uint32_t d = 0;           // C_D_ID
  std::string last_name;
  std::string credit;       // "GC"/"BC"
  int64_t balance_cents = -1000;
  int64_t ytd_payment_cents = 1000;
  uint32_t payment_cnt = 1;
  uint32_t delivery_cnt = 0;
  std::string data;
  std::string Encode() const;
  static Status Decode(Slice data, CustomerRow* out);
};

struct HistoryRow {
  uint32_t c_w = 0, c_d = 0, c_id = 0;
  int64_t amount_cents = 0;
  uint64_t date = 0;
  std::string data;
  std::string Encode() const;
  static Status Decode(Slice data, HistoryRow* out);
};

struct OrderRow {
  uint32_t c_id = 0;
  uint64_t entry_d = 0;
  uint32_t carrier_id = 0;  // 0 = not delivered
  uint32_t ol_cnt = 0;
  bool all_local = true;
  std::string Encode() const;
  static Status Decode(Slice data, OrderRow* out);
};

struct OrderLineRow {
  uint32_t i_id = 0;
  uint32_t supply_w = 0;
  uint32_t quantity = 0;
  int64_t amount_cents = 0;
  uint64_t delivery_d = 0;  // 0 = pending
  std::string dist_info;
  std::string Encode() const;
  static Status Decode(Slice data, OrderLineRow* out);
};

struct ItemRow {
  std::string name;
  int64_t price_cents = 0;
  std::string data;
  std::string Encode() const;
  static Status Decode(Slice data, ItemRow* out);
};

struct StockRow {
  int32_t quantity = 0;
  int64_t ytd = 0;
  uint32_t order_cnt = 0;
  uint32_t remote_cnt = 0;
  std::string dist_info;
  std::string Encode() const;
  static Status Decode(Slice data, StockRow* out);
};

}  // namespace tpcc
}  // namespace complydb

#endif  // COMPLYDB_TPCC_SCHEMA_H_
