#ifndef COMPLYDB_TPCC_TPCC_RANDOM_H_
#define COMPLYDB_TPCC_TPCC_RANDOM_H_

#include <cstdint>
#include <string>

#include "common/random.h"

namespace complydb {
namespace tpcc {

/// TPC-C random primitives (clause 2.1.6): the non-uniform NURand
/// distribution is what skews item/customer selection — the source of the
/// STOCK-relation update skew that drives Fig. 4(a).
class TpccRandom {
 public:
  explicit TpccRandom(uint64_t seed) : rng_(seed) {}

  uint64_t Uniform(uint64_t lo, uint64_t hi) { return rng_.Range(lo, hi); }

  /// NURand(A, x, y) per the spec, with the fixed C constants.
  uint32_t NURand(uint32_t a, uint32_t x, uint32_t y);

  /// Item id in [1, items] (NURand 8191 in the spec; scaled to the item
  /// cardinality).
  uint32_t ItemId(uint32_t items);

  /// Customer id in [1, customers] (NURand 1023, scaled).
  uint32_t CustomerId(uint32_t customers);

  std::string AString(size_t min_len, size_t max_len);
  std::string NString(size_t len);

  /// Percentage check: true with probability pct/100.
  bool Percent(uint32_t pct) { return rng_.Uniform(100) < pct; }

  /// Basis-point check: true with probability bp/10000. The benchmark's
  /// --cross-rate knob needs sub-percent resolution (the spec's remote
  /// NewOrder supply rate is 1%).
  bool PercentBp(uint32_t bp) { return rng_.Uniform(10000) < bp; }

  Random* raw() { return &rng_; }

 private:
  Random rng_;
};

}  // namespace tpcc
}  // namespace complydb

#endif  // COMPLYDB_TPCC_TPCC_RANDOM_H_
