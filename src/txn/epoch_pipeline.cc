#include "txn/epoch_pipeline.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/span.h"

namespace complydb {

namespace {
struct PipelineMetrics {
  obs::Histogram* sequence_us;
  obs::Histogram* epoch_size;
  obs::Histogram* epoch_flush_us;
  obs::Counter* epoch_count;
  obs::Counter* latch_acquires;
  obs::Counter* latch_waits;
  PipelineMetrics() {
    auto& reg = obs::MetricsRegistry::Global();
    sequence_us = reg.GetHistogram("db.commit_critical_path.sequence_us");
    epoch_size = reg.GetHistogram("txn.epoch.size");
    epoch_flush_us = reg.GetHistogram("txn.epoch.flush_us");
    epoch_count = reg.GetCounter("txn.epoch.count");
    latch_acquires = reg.GetCounter("txn.partition.latch_acquires");
    latch_waits = reg.GetCounter("txn.partition.latch_waits");
  }
};
PipelineMetrics& Pm() {
  static PipelineMetrics m;
  return m;
}
}  // namespace

// The slot open on this thread, if any. `owner` doubles as the validity
// flag and lets one thread interleave slots of different pipelines
// (tests open several databases) without cross-talk.
struct CommitPipeline::SlotContext {
  CommitPipeline* owner = nullptr;
  uint64_t ticket = 0;
  bool implicit = false;
  uint64_t max_offset = 0;
  std::vector<std::pair<uint32_t, std::mutex*>> latches;
  // Scheduler execute phase (disjoint from owner: a thread executes a
  // slot body *before* it owns the turnstile).
  CommitPipeline* exec_owner = nullptr;
  SlotWriteBuffer* exec_buffer = nullptr;
};

CommitPipeline::SlotContext& CommitPipeline::Tls() {
  static thread_local SlotContext ctx;
  return ctx;
}

CommitPipeline::CommitPipeline(BarrierFn barrier)
    : barrier_(std::move(barrier)) {}

CommitPipeline::~CommitPipeline() = default;

uint64_t CommitPipeline::ReserveTicket() {
  return ReserveTicket(SlotScheduler::Admission::kExclusive, 0);
}

uint64_t CommitPipeline::ReserveTicket(SlotScheduler::Admission admission,
                                       uint64_t partition) {
  std::lock_guard<std::mutex> lock(mu_);
  reserved_.fetch_add(1, std::memory_order_acq_rel);
  const uint64_t ticket = next_ticket_++;
  // Under mu_: conflict-table entries appear in ticket order, so a later
  // ticket's WaitAdmissible can never miss an earlier reservation.
  if (scheduler_ != nullptr) {
    scheduler_->Register(ticket, admission, partition);
  }
  return ticket;
}

void CommitPipeline::EnableScheduler() {
  scheduler_ = std::make_unique<SlotScheduler>();
}

void CommitPipeline::BeginExecute(uint64_t ticket, SlotWriteBuffer* buf) {
  scheduler_->WaitAdmissible(ticket);
  SlotContext& ctx = Tls();
  ctx.exec_owner = this;
  ctx.exec_buffer = buf;
}

void CommitPipeline::EndExecute() {
  SlotContext& ctx = Tls();
  if (ctx.exec_owner != this) return;
  ctx.exec_owner = nullptr;
  ctx.exec_buffer = nullptr;
}

SlotWriteBuffer* CommitPipeline::ExecBuffer() const {
  const SlotContext& ctx = Tls();
  return ctx.exec_owner == this ? ctx.exec_buffer : nullptr;
}

void CommitPipeline::OpenSlot(uint64_t ticket, bool implicit) {
  const bool sample = obs::kMetricsCompiledIn && obs::SamplingEnabled();
  const uint64_t t0 = sample ? obs::MonotonicMicros() : 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return next_to_admit_ == ticket; });
  }
  if (sample) {
    const uint64_t t1 = obs::MonotonicMicros();
    Pm().sequence_us->Record(t1 - t0);
    if (obs::SpansEnabled()) {
      obs::SpanRing::Global().Emit(obs::SpanKind::kCommitSequence, ticket, t0,
                                   t1);
    }
  }
  SlotContext& ctx = Tls();
  ctx.owner = this;
  ctx.ticket = ticket;
  ctx.implicit = implicit;
  ctx.max_offset = 0;
  ctx.latches.clear();
}

Status CommitPipeline::CloseSlot() {
  SlotContext& ctx = Tls();
  if (ctx.owner != this) {
    return Status::InvalidArgument("no open commit slot on this thread");
  }
  const uint64_t target = ctx.max_offset;
  const uint64_t ticket = ctx.ticket;
  for (auto& held : ctx.latches) held.second->unlock();
  ctx.latches.clear();
  ctx.owner = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++next_to_admit_;
    while (!abandoned_.empty() && *abandoned_.begin() == next_to_admit_) {
      abandoned_.erase(abandoned_.begin());
      ++next_to_admit_;
    }
  }
  cv_.notify_all();
  // Only after the slot's writes are applied and the turnstile has moved
  // past it may conflicting slots start executing.
  if (scheduler_ != nullptr) scheduler_->Release(ticket);
  // The turnstile is free: the epoch wait below overlaps with the next
  // slots' engine work. Only after the barrier is this slot done.
  Status s = WaitEpochDurable(target);
  completed_.fetch_add(1, std::memory_order_acq_rel);
  return s;
}

void CommitPipeline::Abandon(uint64_t ticket) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ticket == next_to_admit_) {
      ++next_to_admit_;
      while (!abandoned_.empty() && *abandoned_.begin() == next_to_admit_) {
        abandoned_.erase(abandoned_.begin());
        ++next_to_admit_;
      }
    } else {
      abandoned_.insert(ticket);
    }
  }
  cv_.notify_all();
  if (scheduler_ != nullptr) scheduler_->Release(ticket);
  completed_.fetch_add(1, std::memory_order_acq_rel);
}

bool CommitPipeline::InSlot() const { return Tls().owner == this; }

bool CommitPipeline::InImplicitSlot() const {
  const SlotContext& ctx = Tls();
  return ctx.owner == this && ctx.implicit;
}

void CommitPipeline::NoteCommitOffset(uint64_t offset) {
  SlotContext& ctx = Tls();
  if (ctx.owner != this) return;
  ctx.max_offset = std::max(ctx.max_offset, offset);
  commits_in_window_.fetch_add(1, std::memory_order_relaxed);
}

void CommitPipeline::AcquirePartitionLatch(uint32_t tree_id) {
  SlotContext& ctx = Tls();
  if (ctx.owner != this) return;
  for (const auto& held : ctx.latches) {
    if (held.first == tree_id) return;
  }
  std::mutex* latch = nullptr;
  {
    std::lock_guard<std::mutex> lock(latch_table_mu_);
    auto& slot = latches_[tree_id];
    if (slot == nullptr) slot = std::make_unique<std::mutex>();
    latch = slot.get();
  }
  if (!latch->try_lock()) {
    Pm().latch_waits->Inc();
    latch->lock();
  }
  Pm().latch_acquires->Inc();
  ctx.latches.emplace_back(tree_id, latch);
}

Status CommitPipeline::WaitEpochDurable(uint64_t offset) {
  if (!barrier_ || offset == 0) return Status::OK();
  // Offset the leader sealed up to this call; the seal hook runs after
  // the wait loop, outside the epoch lock, so members never block on it.
  uint64_t seal_target = 0;
  std::unique_lock<std::mutex> lock(epoch_mu_);
  if (!epoch_status_.ok()) return epoch_status_;
  if (offset > pending_target_) pending_target_ = offset;
  while (durable_target_ < offset) {
    if (!leader_active_) {
      // Become the epoch leader: flush through everything pending so
      // every slot that closed inside this window rides one barrier.
      leader_active_ = true;
      const uint64_t batch_target = pending_target_;
      const uint64_t seq = epoch_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
      const uint64_t batch = commits_in_window_.exchange(0);
      lock.unlock();
      Status s;
      {
        obs::ScopedSpan span(obs::SpanKind::kEpochFlush, seq, batch);
        obs::ScopedLatencyTimer timer(Pm().epoch_flush_us);
        s = barrier_(batch_target);
      }
      Pm().epoch_count->Inc();
      Pm().epoch_size->Record(batch);
      lock.lock();
      leader_active_ = false;
      if (s.ok()) {
        durable_target_ = std::max(durable_target_, batch_target);
        seal_target = std::max(seal_target, batch_target);
      } else if (epoch_status_.ok()) {
        epoch_status_ = s;
      }
      epoch_cv_.notify_all();
      if (!s.ok()) return s;
    } else {
      // Member: ride the in-flight epoch. Attribute the wait to the
      // active commit span if one is open (implicit slots close inside
      // CompliantDB::Commit), otherwise emit a standalone epoch.wait.
      const bool spans = obs::SpansEnabled();
      const uint64_t t0 = spans ? obs::MonotonicMicros() : 0;
      const uint64_t seq = epoch_seq_.load(std::memory_order_relaxed);
      epoch_cv_.wait(lock, [&] {
        return durable_target_ >= offset || !leader_active_ ||
               !epoch_status_.ok();
      });
      if (spans) {
        const uint64_t t1 = obs::MonotonicMicros();
        if (obs::ActiveCommitSegments()->active) {
          obs::RecordQueuedInterval(t0, t1);
        } else {
          obs::SpanRing::Global().Emit(obs::SpanKind::kEpochWait, seq, t0, t1);
        }
      }
      if (!epoch_status_.ok()) return epoch_status_;
    }
  }
  if (seal_target != 0 && seal_) {
    lock.unlock();
    seal_(seal_target);
  }
  return Status::OK();
}

}  // namespace complydb
