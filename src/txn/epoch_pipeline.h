#ifndef COMPLYDB_TXN_EPOCH_PIPELINE_H_
#define COMPLYDB_TXN_EPOCH_PIPELINE_H_

// Epoch-based multi-writer commit pipeline.
//
// The serial engine admits one transaction at a time; this pipeline lets N
// worker threads drive it concurrently while keeping the compliance log L
// byte-deterministic. The mechanism is a *ticket turnstile* over driver
// slots:
//
//   * A worker reserves a ticket (monotone counter), prepares its slot's
//     input off-line (rng draws, mix type — nothing shared), then blocks
//     in OpenSlot until the turnstile admits its ticket.
//   * Inside an open slot the worker owns the whole engine: it may run
//     several Begin/Commit cycles (TPC-C Delivery commits one transaction
//     per district) plus raw reads, exactly as a serial caller would.
//     Every L append — STAMP_TRANS, page diffs from evictions, abort
//     records, regret-tick heartbeats — therefore happens at a point that
//     is a pure function of the slot sequence, never of thread timing.
//   * Commits inside a slot are *sequenced but not yet durable*: the
//     compliance observer appends the STAMP_TRANS under its own mutex and
//     returns the L offset (CommitObserver::OnCommitQueued); the WORM
//     round trip is deferred.
//   * CloseSlot releases the turnstile first, then waits for the *epoch
//     durability barrier* covering the slot's highest L offset. The wait
//     overlaps with the next slots' engine work on other threads — that
//     overlap is the entire speedup; the engine itself stays serial.
//
// One thread in the barrier becomes the epoch leader and runs a single
// WORM flush through the highest pending offset; every slot that closed
// inside the window rides the same barrier (one filer round trip per
// epoch, not per transaction).
//
// The per-transaction WAL flush is NOT deferred: the paper's §IV-B
// ordering (commit durable before the logger learns of it) must hold per
// transaction, or a crash between an epoch-pending STAMP made durable by
// a page-write barrier and its WAL commit record would make the auditor
// see a stamped-but-aborted transaction — indistinguishable from
// tampering.
//
// Partition latches (per tree id) are acquired on first write inside a
// slot and released at CloseSlot. Under the turnstile they are
// uncontended; they are the safety fence backing the disjoint-slot
// scheduler, and their acquire/wait counters make any contention visible.
//
// With the disjoint-slot scheduler enabled (EnableScheduler), slots that
// declare a single-partition footprint may *execute* before the turnstile
// admits them: BeginExecute blocks only until every earlier unreleased
// ticket is footprint-disjoint, the body runs against a SlotWriteBuffer
// (ExecBuffer routes the engine's Begin/Put/Delete/Get there), and the
// buffered ops are replayed through the real engine once OpenSlot admits
// the ticket. Engine mutation therefore stays serial and in ticket order
// — only the read-mostly execute phases overlap — which is what keeps L
// byte-identical at any thread count. See src/txn/slot_scheduler.h.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "txn/slot_scheduler.h"

namespace complydb {

class SlotWriteBuffer;

class CommitPipeline {
 public:
  /// Epoch durability barrier: make the compliance log durable through
  /// `offset`. Must be thread-safe and must not require the turnstile
  /// (CompliantDB wires ComplianceLogger::WaitCommitDurable, which rides
  /// the async shipper's coalescing FlushThrough). May be empty when
  /// compliance is disabled — epoch waits then no-op.
  using BarrierFn = std::function<Status(uint64_t offset)>;

  explicit CommitPipeline(BarrierFn barrier);
  ~CommitPipeline();

  CommitPipeline(const CommitPipeline&) = delete;
  CommitPipeline& operator=(const CommitPipeline&) = delete;

  /// Reserves the next slot ticket. Tickets are admitted strictly in
  /// reservation order; every reserved ticket must eventually be passed
  /// to OpenSlot or Abandon, or the turnstile stalls. Registers the
  /// ticket as exclusive-admission when the scheduler is enabled.
  uint64_t ReserveTicket();

  /// Reserves a ticket with a declared footprint class (scheduler mode).
  /// Registration is atomic with ticket issuance, so a later ticket's
  /// admission wait always sees this reservation.
  uint64_t ReserveTicket(SlotScheduler::Admission admission,
                         uint64_t partition);

  /// Turns on disjoint-slot scheduling. Must be called before the first
  /// reservation (not thread-safe against in-flight slots).
  void EnableScheduler();
  SlotScheduler* scheduler() const { return scheduler_.get(); }

  /// Scheduler execute phase: blocks until `ticket` is admissible (every
  /// earlier unreleased ticket disjoint), then routes this thread's
  /// engine calls to `buf` until EndExecute. Only concurrent-class
  /// tickets call this; exclusive tickets go straight to OpenSlot.
  void BeginExecute(uint64_t ticket, SlotWriteBuffer* buf);
  void EndExecute();

  /// The execute-phase staging buffer of the calling thread, or nullptr
  /// outside an execute phase (TransactionManager routes through this).
  SlotWriteBuffer* ExecBuffer() const;

  /// Blocks until the turnstile admits `ticket`, then marks the calling
  /// thread as the open slot's owner. The admission wait is recorded as
  /// db.commit_critical_path.sequence_us and a commit.sequence span.
  /// `implicit` tags slots opened by a bare Begin (closed by Commit or
  /// Abort) as opposed to explicit RunWriteSlot bodies.
  void OpenSlot(uint64_t ticket, bool implicit);

  /// Releases the slot's partition latches and the turnstile, then waits
  /// for the epoch durability barrier covering the slot's highest noted
  /// L offset. Returns the barrier's status.
  Status CloseSlot();

  /// Gives up a reserved ticket that will never open (driver error
  /// paths). Non-blocking; the turnstile skips it.
  void Abandon(uint64_t ticket);

  /// True when the calling thread owns an open slot of THIS pipeline.
  bool InSlot() const;
  /// True when the open slot was opened implicitly by Begin.
  bool InImplicitSlot() const;

  /// Called by TransactionManager::Commit after OnCommitQueued: the L
  /// offset this slot must make durable before CloseSlot returns.
  void NoteCommitOffset(uint64_t offset);

  /// Acquires (idempotently, for the life of the slot) the write latch
  /// of partition `tree_id`. No-op when the caller holds no slot.
  void AcquirePartitionLatch(uint32_t tree_id);

  /// Slots reserved but not yet fully closed (includes slots waiting on
  /// their epoch barrier). Audit uses this for its quiescence check.
  uint64_t in_flight() const {
    return reserved_.load(std::memory_order_acquire) -
           completed_.load(std::memory_order_acquire);
  }

  /// Epochs flushed so far (leader barrier runs).
  uint64_t epochs() const { return epoch_seq_.load(std::memory_order_relaxed); }

  /// Post-barrier hook, run by the epoch leader after its barrier
  /// succeeded, outside every pipeline lock, with the L offset the
  /// barrier made durable. CompliantDB wires the epoch sealer here so
  /// each durable commit epoch becomes a sealed audit epoch. Must be set
  /// before the first commit (not thread-safe against in-flight slots)
  /// and must never fail the commit — the hook returns nothing.
  using SealFn = std::function<void(uint64_t offset)>;
  void set_seal_fn(SealFn fn) { seal_ = std::move(fn); }

 private:
  struct SlotContext;
  static SlotContext& Tls();

  /// Blocks until L is durable through `offset` (epoch coordinator: one
  /// leader flush per window, members ride it).
  Status WaitEpochDurable(uint64_t offset);

  BarrierFn barrier_;
  SealFn seal_;
  std::unique_ptr<SlotScheduler> scheduler_;

  // --- turnstile ---
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_ticket_ = 0;
  uint64_t next_to_admit_ = 0;
  std::set<uint64_t> abandoned_;
  std::atomic<uint64_t> reserved_{0};
  std::atomic<uint64_t> completed_{0};

  // --- partition latches (tree id -> mutex) ---
  std::mutex latch_table_mu_;
  std::unordered_map<uint32_t, std::unique_ptr<std::mutex>> latches_;

  // --- epoch coordinator ---
  std::mutex epoch_mu_;
  std::condition_variable epoch_cv_;
  uint64_t pending_target_ = 0;  // highest offset any slot wants durable
  uint64_t durable_target_ = 0;  // highest offset known durable
  bool leader_active_ = false;
  std::atomic<uint64_t> epoch_seq_{0};
  std::atomic<uint64_t> commits_in_window_{0};
  Status epoch_status_;  // sticky first barrier failure
};

}  // namespace complydb

#endif  // COMPLYDB_TXN_EPOCH_PIPELINE_H_
