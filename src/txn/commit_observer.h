#ifndef COMPLYDB_TXN_COMMIT_OBSERVER_H_
#define COMPLYDB_TXN_COMMIT_OBSERVER_H_

#include "common/status.h"
#include "wal/log_record.h"

namespace complydb {

/// Transaction-lifecycle notifications consumed by the compliance logger.
/// The paper's rule (§IV-B): "the compliance logger must wait to write
/// ABORT and STAMP TRANS records until the transaction has actually
/// committed/aborted" — so these fire strictly after the WAL commit/abort
/// record is durable. A non-OK return halts transaction processing (the
/// compliance log is unavailable).
class CommitObserver {
 public:
  virtual ~CommitObserver() = default;

  virtual Status OnCommit(TxnId txn_id, uint64_t commit_time) = 0;
  virtual Status OnAbort(TxnId txn_id) = 0;

  /// Pipeline variant of OnCommit: append the STAMP_TRANS record *now*
  /// (the caller holds the commit turnstile, so record order is fixed
  /// here) but defer the durability barrier, returning the log offset the
  /// caller must make durable before acknowledging the commit. The §IV-B
  /// precondition is unchanged — the WAL commit record is already
  /// durable. Default: the synchronous OnCommit, after which nothing is
  /// left to wait on (offset 0).
  virtual Result<uint64_t> OnCommitQueued(TxnId txn_id, uint64_t commit_time) {
    CDB_RETURN_IF_ERROR(OnCommit(txn_id, commit_time));
    return static_cast<uint64_t>(0);
  }

  /// Crash recovery started (logs a timestamped START_RECOVERY, §IV-B).
  virtual Status OnStartRecovery() = 0;

  /// Recovery resolved all in-flight transactions and flushed L.
  virtual Status OnRecoveryComplete() = 0;
};

}  // namespace complydb

#endif  // COMPLYDB_TXN_COMMIT_OBSERVER_H_
