#ifndef COMPLYDB_TXN_SLOT_SCHEDULER_H_
#define COMPLYDB_TXN_SLOT_SCHEDULER_H_

// Disjoint-slot admission controller.
//
// The PR 6 turnstile admits slot *bodies* strictly one at a time; the
// scheduler relaxes that for slots whose declared footprints are pairwise
// disjoint. A footprint is a set of opaque partition keys (TPC-C declares
// the warehouse id; other callers may declare a tree id). The conflict
// table holds one entry per reserved-but-unreleased ticket:
//
//   * a slot that declares exactly one partition is *concurrent-class*:
//     its body may execute (against a SlotWriteBuffer) as soon as every
//     earlier unreleased ticket is concurrent-class and holds a different
//     partition — WaitAdmissible blocks until then;
//   * a slot that declares several partitions falls back to exclusive
//     admission (footprint_fallbacks), and an undeclared slot — bare
//     Begin/Commit callers, non-TPC-C bodies — is exclusive too
//     (serialized). Exclusive tickets never call WaitAdmissible: the
//     turnstile wait for `next_to_admit_ == ticket` already implies every
//     earlier ticket has been released, which is strictly stronger.
//
// Entries are registered under the pipeline's turnstile mutex (atomic
// with ticket issuance, so WaitAdmissible always sees every earlier
// reservation) and released when the turnstile advances past the ticket,
// i.e. after the slot's buffered writes have been applied to the engine.
// All waits therefore point backward in ticket order: the earliest
// unreleased ticket can always make progress, so the scheduler cannot
// deadlock.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace complydb {

/// Partition keys a write slot declares at ReserveWriteSlot. Empty means
/// "undeclared" (exclusive admission, today's semantics).
struct SlotFootprint {
  std::vector<uint64_t> partitions;
};

class SlotScheduler {
 public:
  enum class Admission {
    kConcurrent,  // single declared partition: may execute concurrently
    kFallback,    // multi-partition declaration: exclusive admission
    kExclusive,   // undeclared: exclusive admission
  };

  SlotScheduler();

  SlotScheduler(const SlotScheduler&) = delete;
  SlotScheduler& operator=(const SlotScheduler&) = delete;

  /// Adds `ticket` to the conflict table. The caller must serialize
  /// registrations in ticket order (the pipeline calls this under its
  /// turnstile mutex, atomically with ticket issuance).
  void Register(uint64_t ticket, Admission admission, uint64_t partition);

  /// True when `ticket` was registered concurrent-class.
  bool IsConcurrent(uint64_t ticket) const;

  /// Blocks until every unreleased ticket earlier than `ticket` is
  /// concurrent-class with a different partition. Emits the
  /// txn.scheduler.admit span and bumps admitted_concurrent (and
  /// conflict_waits when the call had to block).
  void WaitAdmissible(uint64_t ticket);

  /// Drops `ticket` from the conflict table and wakes waiters. Called at
  /// turnstile release (slot writes fully applied) and on Abandon.
  void Release(uint64_t ticket);

  // Per-instance accounting (shell `stats`); the registry mirrors these
  // under txn.scheduler.*.
  uint64_t admitted_concurrent() const {
    return admitted_concurrent_.load(std::memory_order_relaxed);
  }
  uint64_t serialized() const {
    return serialized_.load(std::memory_order_relaxed);
  }
  uint64_t footprint_fallbacks() const {
    return footprint_fallbacks_.load(std::memory_order_relaxed);
  }
  uint64_t conflict_waits() const {
    return conflict_waits_.load(std::memory_order_relaxed);
  }
  /// Fraction of reserved slots that declared a usable (single-partition)
  /// footprint. 1.0 when nothing has been reserved yet.
  double declared_hit_rate() const;

 private:
  struct Entry {
    Admission admission;
    uint64_t partition;
  };

  bool AdmissibleLocked(uint64_t ticket, uint64_t partition) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Entry> entries_;  // unreleased tickets, ticket order

  std::atomic<uint64_t> admitted_concurrent_{0};
  std::atomic<uint64_t> serialized_{0};
  std::atomic<uint64_t> footprint_fallbacks_{0};
  std::atomic<uint64_t> conflict_waits_{0};

  obs::Counter* reg_admitted_;
  obs::Counter* reg_serialized_;
  obs::Counter* reg_fallbacks_;
  obs::Counter* reg_conflict_waits_;
};

}  // namespace complydb

#endif  // COMPLYDB_TXN_SLOT_SCHEDULER_H_
