#ifndef COMPLYDB_TXN_TRANSACTION_MANAGER_H_
#define COMPLYDB_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "btree/btree.h"
#include "common/clock.h"
#include "common/status.h"
#include "txn/commit_observer.h"
#include "wal/log_manager.h"

namespace complydb {

class CommitPipeline;
class SlotWriteBuffer;

/// One write performed by a transaction (final state per key; an in-txn
/// overwrite replaces the entry). Drives abort-undo bookkeeping, lazy
/// stamping, and AS-OF resolution.
struct TxnWrite {
  uint32_t tree_id = 0;
  std::string key;
};

/// Undo bookkeeping: the in-memory mirror of the WAL chain, so abort can
/// run without re-reading the log.
struct UndoAction {
  enum Kind { kRemoveInserted, kReinsertRemoved } kind;
  uint32_t tree_id;
  std::string key;      // kRemoveInserted
  uint64_t start;       // kRemoveInserted
  std::string record;   // kReinsertRemoved: exact removed record bytes
};

class Transaction {
 public:
  enum class State { kActive, kCommitted, kAborted };

  TxnId id() const { return id_; }
  State state() const { return state_; }
  uint64_t commit_time() const { return commit_time_; }

  /// Non-null for a deferred transaction created during a scheduler
  /// execute phase: its writes live in the slot's staging buffer until
  /// replay. CompliantDB routes Commit/Abort on it back to the buffer.
  SlotWriteBuffer* slot_buffer() const { return slot_buffer_; }

 private:
  friend class TransactionManager;
  friend class SlotWriteBuffer;

  TxnId id_ = 0;
  State state_ = State::kActive;
  uint64_t commit_time_ = 0;
  TxnWalContext wal_;
  std::vector<TxnWrite> writes_;
  std::vector<UndoAction> undo_;
  SlotWriteBuffer* slot_buffer_ = nullptr;
};

/// Transaction engine: begin/commit/abort with steal/no-force semantics,
/// lazy commit-time stamping, and temporal reads.
///
/// Transactions execute serially (one active at a time) — see DESIGN.md;
/// the paper's evaluation is a single TPC-C stream atop Berkeley DB. All
/// timestamps (txn ids and commit times) are drawn from one strictly
/// monotonic sequence seeded by the compliance clock, so the lazy stamp
/// upgrade never reorders versions and commit times strictly increase
/// (an auditor check, §IV-B).
///
/// Mutation stays single-writer, but snapshot readers call GetTree,
/// ResolveCommitTime, and last_commit_time from other threads, so the
/// tree registry and the committed-times table take reader/writer locks
/// and the last commit time is atomic.
class TransactionManager {
 public:
  TransactionManager(LogManager* wal, Clock* clock,
                     CommitObserver* observer = nullptr)
      : wal_(wal), clock_(clock), observer_(observer) {}

  /// Trees must be registered before transactions touch them.
  void RegisterTree(uint32_t tree_id, Btree* tree);
  Btree* GetTree(uint32_t tree_id) const;

  Result<Transaction*> Begin();

  /// Inserts or updates `key` (a new version at this txn's id).
  Status Put(Transaction* txn, uint32_t tree_id, Slice key, Slice value);

  /// Deletes `key` by writing an end-of-life version. NotFound if the key
  /// is not currently live.
  Status Delete(Transaction* txn, uint32_t tree_id, Slice key);

  /// Current-version read (sees this txn's own writes).
  Status Get(Transaction* txn, uint32_t tree_id, Slice key,
             std::string* value);

  /// Temporal read: the value of `key` as of commit time `time`.
  Status GetAsOf(uint32_t tree_id, Slice key, uint64_t time,
                 std::string* value);

  Status Commit(Transaction* txn);
  Status Abort(Transaction* txn);

  /// Lazy timestamping (paper §IV-A): upgrades tuples of up to `max_txns`
  /// committed-but-unstamped transactions (0 = all). The DB facade calls
  /// this on the regret-interval tick and before audits.
  Status StampPending(size_t max_txns = 0);
  size_t pending_stamp_count() const { return pending_stamps_.size(); }

  /// Commit time for a start value: identity for stamped starts, a lookup
  /// for txn ids. NotFound for uncommitted/aborted ids.
  Result<uint64_t> ResolveCommitTime(uint64_t start) const;

  uint64_t last_commit_time() const {
    return last_commit_time_.load(std::memory_order_acquire);
  }
  bool HasActiveTxn() const { return active_ != nullptr; }

  /// Recovery hook: registers a commit found in the WAL.
  void RestoreCommittedTxn(TxnId id, uint64_t commit_time);

  /// Recovery hook: never reissue ids/times at or below `tick` (aborted
  /// pre-crash transactions must not share ids with new ones — the
  /// compliance log would see ABORT and STAMP_TRANS for one id).
  void BumpTick(uint64_t tick) { last_tick_ = std::max(last_tick_, tick); }

  /// Strictly monotonic tick, >= the compliance clock. Used for txn ids
  /// and commit times.
  uint64_t NextTick();

  /// Attaches the multi-writer commit pipeline (write_threads > 1). When
  /// set and the calling thread holds an open slot, Commit sequences the
  /// compliance record via OnCommitQueued and defers durability to the
  /// slot's epoch barrier, and Put/Delete acquire the target partition's
  /// write latch for the life of the slot. Engine state (active_,
  /// last_tick_, pending_stamps_) needs no extra locking: the pipeline's
  /// turnstile admits one slot at a time, and its mutex handoff orders
  /// slots' accesses.
  void SetPipeline(CommitPipeline* pipeline) { pipeline_ = pipeline; }

 private:
  struct PendingStamp {
    TxnId txn_id;
    uint64_t commit_time;
    std::vector<TxnWrite> writes;
  };

  LogManager* wal_;
  Clock* clock_;
  CommitObserver* observer_;
  CommitPipeline* pipeline_ = nullptr;
  mutable std::shared_mutex trees_mu_;
  std::unordered_map<uint32_t, Btree*> trees_;
  std::unique_ptr<Transaction> active_;
  uint64_t last_tick_ = 0;
  std::atomic<uint64_t> last_commit_time_{0};
  std::deque<PendingStamp> pending_stamps_;
  mutable std::shared_mutex times_mu_;
  std::map<TxnId, uint64_t> committed_times_;
};

}  // namespace complydb

#endif  // COMPLYDB_TXN_TRANSACTION_MANAGER_H_
