#ifndef COMPLYDB_TXN_RECOVERY_H_
#define COMPLYDB_TXN_RECOVERY_H_

#include <cstddef>

#include "common/status.h"
#include "storage/buffer_cache.h"
#include "txn/commit_observer.h"
#include "txn/transaction_manager.h"
#include "wal/log_manager.h"

namespace complydb {

struct RecoveryReport {
  size_t records_scanned = 0;
  size_t redo_applied = 0;
  size_t losers_undone = 0;
  size_t committed_found = 0;
  size_t restamped = 0;
};

/// ARIES-lite crash recovery: analysis (single WAL scan), redo guarded by
/// page LSNs, undo of loser transactions with compensation records, then
/// lazy-stamp completion for all committed transactions (the audit
/// requires stamped tuples, §IV).
///
/// Compliance interplay (paper §IV-B): when `crashed` is true the observer
/// is told to place a timestamped START_RECOVERY on L, recovery re-appends
/// STAMP_TRANS for committed transactions and ABORT for losers (duplicates
/// of pre-crash records are identical, and the auditor ignores identical
/// duplicates), and loser undo flows to L as ordinary UNDO records via the
/// pwrite diff.
class RecoveryManager {
 public:
  /// `announce_after_micros`: commits at or before this time belong to
  /// already-audited epochs (they are in the signed snapshot, not the
  /// current L) and are not re-announced to the compliance log.
  RecoveryManager(LogManager* wal, BufferCache* cache,
                  TransactionManager* txns, CommitObserver* observer = nullptr,
                  uint64_t announce_after_micros = 0)
      : wal_(wal),
        cache_(cache),
        txns_(txns),
        observer_(observer),
        announce_after_(announce_after_micros) {}

  Result<RecoveryReport> Run(bool crashed);

 private:
  Status ApplyRedo(const WalRecord& rec, size_t* applied);

  LogManager* wal_;
  BufferCache* cache_;
  TransactionManager* txns_;
  CommitObserver* observer_;
  uint64_t announce_after_;
};

}  // namespace complydb

#endif  // COMPLYDB_TXN_RECOVERY_H_
