#ifndef COMPLYDB_TXN_SLOT_BUFFER_H_
#define COMPLYDB_TXN_SLOT_BUFFER_H_

// Per-slot deferred-write staging for the disjoint-slot scheduler.
//
// A concurrently *executing* slot never mutates the engine: its
// Begin/Put/Delete/Commit/Abort calls are routed here, appended to an
// ordered op log, and mirrored into a key overlay so the slot's own reads
// and scans observe its writes. When the turnstile later admits the
// slot's ticket, CompliantDB replays the op log through the real engine —
// WAL records, compliance-log appends, version inserts, and commit-time
// ticks all happen at apply time, in ticket order, on one thread at a
// time. That replay is what keeps L, the stamp index, and the sealed
// epoch chain byte-identical to a serial run: the execute phase produces
// no observable engine effects at all.
//
// The overlay distinguishes the *pending* writes of the slot's active
// transaction (discarded on abort) from *committed* writes of earlier
// transactions in the same slot (TPC-C Delivery commits one transaction
// per district). Aborted transactions keep their ops in the log — replay
// runs the abort through the engine so L carries the same ABORT/CLR
// records a serial execution would.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "txn/transaction_manager.h"

namespace complydb {

class SlotWriteBuffer {
 public:
  enum class OpKind : uint8_t { kBegin, kPut, kDelete, kCommit, kAbort };

  struct Op {
    OpKind kind;
    uint32_t tree_id = 0;
    std::string key;
    std::string value;
  };

  enum class Overlay { kMiss, kPresent, kDeleted };

  SlotWriteBuffer() = default;
  ~SlotWriteBuffer() = default;

  SlotWriteBuffer(const SlotWriteBuffer&) = delete;
  SlotWriteBuffer& operator=(const SlotWriteBuffer&) = delete;

  /// Starts a deferred transaction: returns a stub Transaction owned by
  /// the buffer (its id is assigned at replay). Busy when one is active,
  /// mirroring the serial engine.
  Result<Transaction*> BeginDeferred();

  /// Records a write. Rejects a second write to one key in the same
  /// transaction with the engine's coalesce-writes error.
  Status Put(Transaction* txn, uint32_t tree_id, Slice key, Slice value);

  /// Records a delete. The caller (TransactionManager) has already
  /// established that the key is live in the overlay or the engine.
  Status Delete(Transaction* txn, uint32_t tree_id, Slice key);

  Status Commit(Transaction* txn);
  Status Abort(Transaction* txn);

  /// Overlay lookup: pending writes of the active transaction shadow
  /// committed slot writes, which shadow the engine (kMiss = ask the
  /// engine).
  Overlay Lookup(uint32_t tree_id, Slice key, std::string* value) const;

  /// Merges the overlay entries of `tree_id` with keys in [begin, end)
  /// into `out` (pending over committed). Values are nullopt for keys the
  /// slot deleted. Used by the overlay-merged scan.
  void CollectRange(
      uint32_t tree_id, Slice begin, Slice end,
      std::map<std::string, std::optional<std::string>>* out) const;

  const std::vector<Op>& ops() const { return ops_; }
  bool has_active() const { return active_ != nullptr; }

 private:
  using OverlayKey = std::pair<uint32_t, std::string>;

  std::vector<Op> ops_;
  // Stub transactions stay alive for the buffer's lifetime so caller-held
  // pointers never dangle, even after commit/abort.
  std::vector<std::unique_ptr<Transaction>> txns_;
  Transaction* active_ = nullptr;
  std::map<OverlayKey, std::optional<std::string>> committed_;
  std::map<OverlayKey, std::optional<std::string>> pending_;
};

}  // namespace complydb

#endif  // COMPLYDB_TXN_SLOT_BUFFER_H_
