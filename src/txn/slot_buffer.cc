#include "txn/slot_buffer.h"

namespace complydb {

Result<Transaction*> SlotWriteBuffer::BeginDeferred() {
  if (active_ != nullptr) {
    return Status::Busy("a transaction is already active (serial engine)");
  }
  auto txn = std::unique_ptr<Transaction>(new Transaction());
  txn->slot_buffer_ = this;
  active_ = txn.get();
  txns_.push_back(std::move(txn));
  ops_.push_back(Op{OpKind::kBegin});
  return active_;
}

Status SlotWriteBuffer::Put(Transaction* txn, uint32_t tree_id, Slice key,
                            Slice value) {
  if (txn == nullptr || txn != active_ ||
      txn->state_ != Transaction::State::kActive) {
    return Status::InvalidArgument("txn not active");
  }
  OverlayKey ok{tree_id, key.ToString()};
  if (pending_.count(ok) != 0) {
    return Status::InvalidArgument(
        "key already written in this transaction; coalesce writes");
  }
  pending_[ok] = value.ToString();
  ops_.push_back(Op{OpKind::kPut, tree_id, key.ToString(), value.ToString()});
  return Status::OK();
}

Status SlotWriteBuffer::Delete(Transaction* txn, uint32_t tree_id, Slice key) {
  if (txn == nullptr || txn != active_ ||
      txn->state_ != Transaction::State::kActive) {
    return Status::InvalidArgument("txn not active");
  }
  OverlayKey ok{tree_id, key.ToString()};
  if (pending_.count(ok) != 0) {
    return Status::InvalidArgument(
        "key already written in this transaction; coalesce writes");
  }
  pending_[ok] = std::nullopt;
  ops_.push_back(Op{OpKind::kDelete, tree_id, key.ToString()});
  return Status::OK();
}

Status SlotWriteBuffer::Commit(Transaction* txn) {
  if (txn == nullptr || txn != active_ ||
      txn->state_ != Transaction::State::kActive) {
    return Status::InvalidArgument("txn not active");
  }
  for (auto& [key, value] : pending_) {
    committed_[key] = std::move(value);
  }
  pending_.clear();
  txn->state_ = Transaction::State::kCommitted;
  active_ = nullptr;
  ops_.push_back(Op{OpKind::kCommit});
  return Status::OK();
}

Status SlotWriteBuffer::Abort(Transaction* txn) {
  if (txn == nullptr || txn != active_ ||
      txn->state_ != Transaction::State::kActive) {
    return Status::InvalidArgument("txn not active");
  }
  pending_.clear();
  txn->state_ = Transaction::State::kAborted;
  active_ = nullptr;
  ops_.push_back(Op{OpKind::kAbort});
  return Status::OK();
}

SlotWriteBuffer::Overlay SlotWriteBuffer::Lookup(uint32_t tree_id, Slice key,
                                                 std::string* value) const {
  OverlayKey ok{tree_id, key.ToString()};
  auto resolve = [&](const std::optional<std::string>& entry) {
    if (!entry.has_value()) return Overlay::kDeleted;
    if (value != nullptr) *value = *entry;
    return Overlay::kPresent;
  };
  auto pit = pending_.find(ok);
  if (pit != pending_.end()) return resolve(pit->second);
  auto cit = committed_.find(ok);
  if (cit != committed_.end()) return resolve(cit->second);
  return Overlay::kMiss;
}

void SlotWriteBuffer::CollectRange(
    uint32_t tree_id, Slice begin, Slice end,
    std::map<std::string, std::optional<std::string>>* out) const {
  auto collect = [&](const std::map<OverlayKey, std::optional<std::string>>&
                         layer) {
    auto it = layer.lower_bound(OverlayKey{tree_id, begin.ToString()});
    const std::string end_key = end.ToString();
    for (; it != layer.end(); ++it) {
      if (it->first.first != tree_id) break;
      if (!end_key.empty() && it->first.second >= end_key) break;
      (*out)[it->first.second] = it->second;
    }
  };
  collect(committed_);
  collect(pending_);  // pending shadows committed
}

}  // namespace complydb
