#include "txn/recovery.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "btree/btree.h"
#include "btree/tuple.h"

namespace complydb {

namespace {

// Insert a raw leaf record at its sorted position (redo path). Keeps the
// page's order-number counter ahead of every stored order number.
Status RedoLeafInsert(Page* page, Slice record) {
  Slice key;
  uint64_t start = 0;
  CDB_RETURN_IF_ERROR(DecodeTupleKey(record, &key, &start));
  uint16_t pos = LeafLowerBound(*page, key, start);
  if (pos < page->slot_count()) {
    Slice k;
    uint64_t s;
    if (DecodeTupleKey(page->RecordAt(pos), &k, &s).ok() &&
        CompareVersion(k, s, key, start) == 0) {
      return Status::OK();  // already present
    }
  }
  CDB_RETURN_IF_ERROR(page->InsertRecord(pos, record));
  TupleData t;
  CDB_RETURN_IF_ERROR(DecodeTuple(record, &t));
  if (t.order_no >= page->next_order_number()) {
    page->set_next_order_number(static_cast<uint16_t>(t.order_no + 1));
  }
  return Status::OK();
}

Status RedoLeafRemove(Page* page, Slice record) {
  Slice key;
  uint64_t start = 0;
  CDB_RETURN_IF_ERROR(DecodeTupleKey(record, &key, &start));
  uint16_t pos = LeafLowerBound(*page, key, start);
  if (pos < page->slot_count()) {
    Slice k;
    uint64_t s;
    if (DecodeTupleKey(page->RecordAt(pos), &k, &s).ok() &&
        CompareVersion(k, s, key, start) == 0) {
      return page->EraseRecord(pos);
    }
  }
  return Status::OK();  // already gone
}

Status RedoStamp(Page* page, const WalRecord& rec) {
  // rec.tuple holds the key; rec.undo_next the pre-stamp txn id.
  Slice key(rec.tuple);
  uint16_t pos = LeafLowerBound(*page, key, rec.undo_next);
  if (pos >= page->slot_count()) return Status::OK();
  TupleData t;
  CDB_RETURN_IF_ERROR(DecodeTuple(page->RecordAt(pos), &t));
  if (t.key != rec.tuple || t.start != rec.undo_next || t.stamped) {
    return Status::OK();
  }
  t.start = rec.commit_time;
  t.stamped = true;
  return page->ReplaceRecord(pos, EncodeTuple(t));
}

Status RedoIndexInsert(Page* page, Slice record) {
  Slice key;
  uint64_t start = 0;
  PageId child = kInvalidPage;
  CDB_RETURN_IF_ERROR(DecodeIndexEntryKey(record, &key, &start, &child));
  uint16_t idx = InternalFindChild(*page, key, start);
  uint16_t pos =
      page->slot_count() == 0 ? 0 : static_cast<uint16_t>(idx + 1);
  if (page->slot_count() > 0) {
    Slice k0;
    uint64_t s0;
    PageId c0;
    CDB_RETURN_IF_ERROR(DecodeIndexEntryKey(page->RecordAt(0), &k0, &s0, &c0));
    if (CompareVersion(key, start, k0, s0) < 0) pos = 0;
    // Skip if this exact separator already exists.
    Slice ki;
    uint64_t si;
    PageId ci;
    if (DecodeIndexEntryKey(page->RecordAt(idx), &ki, &si, &ci).ok() &&
        CompareVersion(ki, si, key, start) == 0 && ci == child) {
      return Status::OK();
    }
  }
  return page->InsertRecord(pos, record);
}

}  // namespace

Status RecoveryManager::ApplyRedo(const WalRecord& rec, size_t* applied) {
  Page* page = nullptr;
  CDB_RETURN_IF_ERROR(cache_->FetchPage(rec.pgno, &page));
  PageGuard guard(cache_, rec.pgno, page);
  if (page->IsFormatted() && page->lsn() >= rec.lsn && rec.lsn != 0) {
    return Status::OK();  // already reflected on the page
  }
  switch (rec.type) {
    case WalRecordType::kPageImage:
      std::memcpy(page->data(), rec.page_image.data(), kPageSize);
      break;
    case WalRecordType::kTupleInsert:
    case WalRecordType::kClrInsert:
      CDB_RETURN_IF_ERROR(RedoLeafInsert(page, rec.tuple));
      break;
    case WalRecordType::kTupleRemove:
    case WalRecordType::kClrRemove:
      CDB_RETURN_IF_ERROR(RedoLeafRemove(page, rec.tuple));
      break;
    case WalRecordType::kTupleStamp:
      CDB_RETURN_IF_ERROR(RedoStamp(page, rec));
      break;
    case WalRecordType::kIndexInsert:
      CDB_RETURN_IF_ERROR(RedoIndexInsert(page, rec.tuple));
      break;
    default:
      return Status::OK();
  }
  page->set_lsn(rec.lsn);
  guard.MarkDirty();
  ++*applied;
  return Status::OK();
}

Result<RecoveryReport> RecoveryManager::Run(bool crashed) {
  RecoveryReport report;

  if (crashed && observer_ != nullptr) {
    CDB_RETURN_IF_ERROR(observer_->OnStartRecovery());
  }

  // --- Analysis: one pass collects everything (no checkpoints needed at
  // this scale; a checkpointed variant would start from the last one).
  struct TxnInfo {
    bool committed = false;
    bool ended = false;
    uint64_t commit_time = 0;
  };
  std::map<TxnId, TxnInfo> txns;
  std::vector<WalRecord> records;
  CDB_RETURN_IF_ERROR(wal_->Scan([&](const WalRecord& rec) {
    records.push_back(rec);
    if (rec.txn_id != 0) {
      txns_->BumpTick(rec.txn_id);
      TxnInfo& info = txns[rec.txn_id];
      if (rec.type == WalRecordType::kCommit) {
        info.committed = true;
        info.commit_time = rec.commit_time;
        txns_->BumpTick(rec.commit_time);
      } else if (rec.type == WalRecordType::kEnd) {
        info.ended = true;
      }
    }
    return Status::OK();
  }));
  report.records_scanned = records.size();

  // --- Redo: page-state records in LSN order, guarded by page LSNs.
  for (const WalRecord& rec : records) {
    switch (rec.type) {
      case WalRecordType::kPageImage:
      case WalRecordType::kTupleInsert:
      case WalRecordType::kTupleRemove:
      case WalRecordType::kClrInsert:
      case WalRecordType::kClrRemove:
      case WalRecordType::kTupleStamp:
      case WalRecordType::kIndexInsert:
        CDB_RETURN_IF_ERROR(ApplyRedo(rec, &report.redo_applied));
        break;
      default:
        break;
    }
  }

  // --- Undo: losers are transactions that neither committed nor finished
  // aborting. Their tuple effects are reversed through the B+-tree (the
  // structure is sound after redo), logging compensation records.
  for (auto& [txn_id, info] : txns) {
    if (info.committed || info.ended) continue;
    TxnWalContext ctx;
    ctx.txn_id = txn_id;
    ctx.log = wal_;
    for (size_t i = records.size(); i-- > 0;) {
      const WalRecord& rec = records[i];
      if (rec.txn_id != txn_id) continue;
      Btree* tree = txns_->GetTree(rec.tree_id);
      if (rec.type == WalRecordType::kTupleInsert) {
        if (tree == nullptr) return Status::Corruption("unknown tree in undo");
        Slice key;
        uint64_t start = 0;
        CDB_RETURN_IF_ERROR(DecodeTupleKey(rec.tuple, &key, &start));
        Status s = tree->RemoveVersion(&ctx, key, start, /*as_clr=*/true, 0);
        if (!s.ok() && !s.IsNotFound()) return s;
      } else if (rec.type == WalRecordType::kTupleRemove) {
        if (tree == nullptr) return Status::Corruption("unknown tree in undo");
        CDB_RETURN_IF_ERROR(tree->ReinsertRecord(&ctx, rec.tuple, 0));
      }
    }
    WalRecord abort_rec;
    abort_rec.type = WalRecordType::kAbort;
    ctx.Emit(&abort_rec);
    WalRecord end_rec;
    end_rec.type = WalRecordType::kEnd;
    ctx.Emit(&end_rec);
    ++report.losers_undone;
    if (crashed && observer_ != nullptr) {
      CDB_RETURN_IF_ERROR(observer_->OnAbort(txn_id));
    }
  }
  CDB_RETURN_IF_ERROR(wal_->FlushAll());

  // --- Committed transactions: rebuild the commit-time table, re-announce
  // to the compliance log (identical duplicates are audit-tolerated), and
  // finish lazy stamping so no committed tuple stays unstamped.
  TxnWalContext sys;
  sys.txn_id = 0;
  sys.log = wal_;
  for (const auto& [txn_id, info] : txns) {
    if (!info.committed) continue;
    ++report.committed_found;
    txns_->RestoreCommittedTxn(txn_id, info.commit_time);
    if (crashed && observer_ != nullptr &&
        info.commit_time > announce_after_) {
      CDB_RETURN_IF_ERROR(observer_->OnCommit(txn_id, info.commit_time));
    }
  }
  for (const WalRecord& rec : records) {
    if (rec.type != WalRecordType::kTupleInsert) continue;
    auto it = txns.find(rec.txn_id);
    if (it == txns.end() || !it->second.committed) continue;
    Btree* tree = txns_->GetTree(rec.tree_id);
    if (tree == nullptr) continue;
    Slice key;
    uint64_t start = 0;
    CDB_RETURN_IF_ERROR(DecodeTupleKey(rec.tuple, &key, &start));
    if (start != rec.txn_id) continue;  // already stamped when logged
    Status s = tree->StampVersion(&sys, key, rec.txn_id,
                                  it->second.commit_time);
    if (s.ok()) {
      ++report.restamped;
    } else if (!s.IsNotFound()) {
      return s;
    }
  }
  CDB_RETURN_IF_ERROR(wal_->FlushAll());

  if (crashed && observer_ != nullptr) {
    CDB_RETURN_IF_ERROR(observer_->OnRecoveryComplete());
  }
  return report;
}

}  // namespace complydb
