#include "txn/transaction_manager.h"

#include <algorithm>
#include <mutex>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "txn/epoch_pipeline.h"
#include "txn/slot_buffer.h"

namespace complydb {

namespace {
struct TxnMetrics {
  obs::Counter* begins;
  obs::Counter* commits;
  obs::Counter* aborts;
  obs::Counter* stamped_versions;
  obs::Histogram* commit_us;
  obs::Histogram* commit_observer_us;
  TxnMetrics() {
    auto& reg = obs::MetricsRegistry::Global();
    begins = reg.GetCounter("txn.begins");
    commits = reg.GetCounter("txn.commits");
    aborts = reg.GetCounter("txn.aborts");
    stamped_versions = reg.GetCounter("txn.stamped_versions");
    commit_us = reg.GetHistogram("txn.commit_us");
    commit_observer_us = reg.GetHistogram("txn.commit_observer_us");
  }
};
TxnMetrics& Tm() {
  static TxnMetrics m;
  return m;
}
}  // namespace

void TransactionManager::RegisterTree(uint32_t tree_id, Btree* tree) {
  std::unique_lock<std::shared_mutex> lock(trees_mu_);
  trees_[tree_id] = tree;
}

Btree* TransactionManager::GetTree(uint32_t tree_id) const {
  std::shared_lock<std::shared_mutex> lock(trees_mu_);
  auto it = trees_.find(tree_id);
  return it == trees_.end() ? nullptr : it->second;
}

uint64_t TransactionManager::NextTick() {
  uint64_t now = clock_->NowMicros();
  last_tick_ = std::max(last_tick_ + 1, now);
  return last_tick_;
}

Result<Transaction*> TransactionManager::Begin() {
  // Scheduler execute phase: defer the whole transaction into the slot's
  // staging buffer. Ticks, WAL records, and metrics happen at replay.
  if (pipeline_ != nullptr) {
    if (SlotWriteBuffer* buf = pipeline_->ExecBuffer()) {
      return buf->BeginDeferred();
    }
  }
  if (active_ != nullptr) {
    return Status::Busy("a transaction is already active (serial engine)");
  }
  active_ = std::make_unique<Transaction>();
  active_->id_ = NextTick();
  active_->wal_.txn_id = active_->id_;
  active_->wal_.log = wal_;
  if (wal_ != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kBegin;
    active_->wal_.Emit(&rec);
  }
  Tm().begins->Inc();
  obs::TraceRing::Global().Emit(obs::TraceEventType::kTxnBegin, active_->id_);
  return active_.get();
}

Status TransactionManager::Put(Transaction* txn, uint32_t tree_id, Slice key,
                               Slice value) {
  if (txn == nullptr || txn->state_ != Transaction::State::kActive) {
    return Status::InvalidArgument("txn not active");
  }
  Btree* tree = GetTree(tree_id);
  if (tree == nullptr) return Status::InvalidArgument("unknown tree");
  if (txn->slot_buffer_ != nullptr) {
    return txn->slot_buffer_->Put(txn, tree_id, key, value);
  }
  if (pipeline_ != nullptr) pipeline_->AcquirePartitionLatch(tree_id);

  // A second write to the same key in one transaction would physically
  // replace the intermediate version, producing a compliance-log UNDO that
  // is justified by neither an ABORT nor a SHREDDED record — exactly the
  // pattern the auditor must treat as tampering. We therefore reject it;
  // callers coalesce multi-writes (the TPC-C transactions do).
  for (const auto& w : txn->writes_) {
    if (w.tree_id == tree_id && w.key == key.view()) {
      return Status::InvalidArgument(
          "key already written in this transaction; coalesce writes");
    }
  }

  TupleData t;
  t.key = key.ToString();
  t.value = value.ToString();
  t.start = txn->id_;
  CDB_RETURN_IF_ERROR(tree->InsertVersion(&txn->wal_, t, nullptr, nullptr));
  txn->writes_.push_back(TxnWrite{tree_id, t.key});
  txn->undo_.push_back(UndoAction{UndoAction::kRemoveInserted, tree_id, t.key,
                                  txn->id_, std::string()});
  return Status::OK();
}

Status TransactionManager::Delete(Transaction* txn, uint32_t tree_id,
                                  Slice key) {
  if (txn == nullptr || txn->state_ != Transaction::State::kActive) {
    return Status::InvalidArgument("txn not active");
  }
  Btree* tree = GetTree(tree_id);
  if (tree == nullptr) return Status::InvalidArgument("unknown tree");
  if (txn->slot_buffer_ != nullptr) {
    // Liveness check against the overlay first, then the engine (the
    // same NotFound contract as the direct path below).
    switch (txn->slot_buffer_->Lookup(tree_id, key, nullptr)) {
      case SlotWriteBuffer::Overlay::kDeleted:
        return Status::NotFound("no live version to delete");
      case SlotWriteBuffer::Overlay::kMiss: {
        TupleData latest;
        CDB_RETURN_IF_ERROR(tree->GetLatest(key, &latest));
        break;
      }
      case SlotWriteBuffer::Overlay::kPresent:
        break;
    }
    return txn->slot_buffer_->Delete(txn, tree_id, key);
  }
  if (pipeline_ != nullptr) pipeline_->AcquirePartitionLatch(tree_id);

  TupleData latest;
  Status s = tree->GetLatest(key, &latest);
  if (!s.ok()) return s;  // NotFound: nothing live to delete

  TupleData t;
  t.key = key.ToString();
  t.start = txn->id_;
  t.eol = true;
  CDB_RETURN_IF_ERROR(tree->InsertVersion(&txn->wal_, t, nullptr, nullptr));
  txn->writes_.push_back(TxnWrite{tree_id, t.key});
  txn->undo_.push_back(UndoAction{UndoAction::kRemoveInserted, tree_id, t.key,
                                  txn->id_, std::string()});
  return Status::OK();
}

Status TransactionManager::Get(Transaction* txn, uint32_t tree_id, Slice key,
                               std::string* value) {
  (void)txn;  // serial engine: the latest version is the visible one
  Btree* tree = GetTree(tree_id);
  if (tree == nullptr) return Status::InvalidArgument("unknown tree");
  // Execute-phase reads see the slot's own staged writes first; misses
  // fall through to committed engine state (disjoint admission guarantees
  // no concurrent slot writes the partitions this slot reads).
  if (pipeline_ != nullptr) {
    if (SlotWriteBuffer* buf = pipeline_->ExecBuffer()) {
      switch (buf->Lookup(tree_id, key, value)) {
        case SlotWriteBuffer::Overlay::kPresent:
          return Status::OK();
        case SlotWriteBuffer::Overlay::kDeleted:
          return Status::NotFound("deleted in this slot");
        case SlotWriteBuffer::Overlay::kMiss:
          break;
      }
    }
  }
  TupleData t;
  CDB_RETURN_IF_ERROR(tree->GetLatest(key, &t));
  *value = t.value;
  return Status::OK();
}

Status TransactionManager::GetAsOf(uint32_t tree_id, Slice key, uint64_t time,
                                   std::string* value) {
  Btree* tree = GetTree(tree_id);
  if (tree == nullptr) return Status::InvalidArgument("unknown tree");
  std::vector<TupleData> versions;
  CDB_RETURN_IF_ERROR(tree->GetVersions(key, &versions));
  // Latest version whose commit time <= `time`; unstamped tuples resolve
  // through the committed-txn table, uncommitted ones are invisible.
  const TupleData* best = nullptr;
  uint64_t best_time = 0;
  std::shared_lock<std::shared_mutex> times_lock(times_mu_);
  for (const auto& v : versions) {
    uint64_t commit;
    if (v.stamped) {
      commit = v.start;
    } else {
      auto it = committed_times_.find(v.start);
      if (it == committed_times_.end()) continue;
      commit = it->second;
    }
    if (commit <= time && (best == nullptr || commit >= best_time)) {
      best = &v;
      best_time = commit;
    }
  }
  if (best == nullptr || best->eol) {
    return Status::NotFound("no version as of time");
  }
  *value = best->value;
  return Status::OK();
}

Status TransactionManager::Commit(Transaction* txn) {
  if (txn == nullptr || txn != active_.get() ||
      txn->state_ != Transaction::State::kActive) {
    return Status::InvalidArgument("txn not active");
  }
  // Covers the commit point: WAL flush, the compliance STAMP_TRANS append,
  // and its WORM flush.
  obs::ScopedLatencyTimer timer(Tm().commit_us);
  uint64_t commit_time = NextTick();

  if (wal_ != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kCommit;
    rec.commit_time = commit_time;
    txn->wal_.Emit(&rec);
    // The commit point: the commit record is durable.
    CDB_RETURN_IF_ERROR(wal_->FlushAll());
  }
  txn->state_ = Transaction::State::kCommitted;
  txn->commit_time_ = commit_time;
  {
    std::unique_lock<std::shared_mutex> times_lock(times_mu_);
    committed_times_[txn->id_] = commit_time;
  }
  // Published after the committed-times entry: a snapshot pinned at this
  // commit time can always resolve every start id it may encounter.
  last_commit_time_.store(commit_time, std::memory_order_release);

  // Only now may the compliance logger learn of the commit (§IV-B). With
  // async shipping this call is the group-commit ticket: it returns when
  // the shipper has made this commit's STAMP_TRANS (and everything queued
  // before it) durable, typically one amortized fflush for many records.
  if (observer_ != nullptr) {
    obs::ScopedLatencyTimer ticket(Tm().commit_observer_us);
    // The whole group-commit ticket as one span; the shipper splits it
    // into queued / drain / worm_flush segments underneath.
    obs::ScopedSpan ticket_span(obs::SpanKind::kCommitTicket, txn->id_,
                                commit_time);
    if (pipeline_ != nullptr && pipeline_->InSlot()) {
      // Pipeline mode: sequence the STAMP_TRANS now (the turnstile fixes
      // its position in L) but defer the WORM round trip to the slot's
      // epoch barrier, which overlaps with the next slots' engine work.
      auto offset = observer_->OnCommitQueued(txn->id_, commit_time);
      if (!offset.ok()) return offset.status();
      pipeline_->NoteCommitOffset(offset.value());
    } else {
      CDB_RETURN_IF_ERROR(observer_->OnCommit(txn->id_, commit_time));
    }
  }

  if (!txn->writes_.empty()) {
    pending_stamps_.push_back(
        PendingStamp{txn->id_, commit_time, std::move(txn->writes_)});
  }
  if (wal_ != nullptr) {
    WalRecord end;
    end.type = WalRecordType::kEnd;
    txn->wal_.Emit(&end);
  }
  Tm().commits->Inc();
  obs::TraceRing::Global().Emit(obs::TraceEventType::kTxnCommit, txn->id_,
                                commit_time);
  active_.reset();
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  if (txn == nullptr || txn != active_.get() ||
      txn->state_ != Transaction::State::kActive) {
    return Status::InvalidArgument("txn not active");
  }
  if (wal_ != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kAbort;
    txn->wal_.Emit(&rec);
  }

  // Undo in reverse order, logging compensation records.
  for (size_t i = txn->undo_.size(); i-- > 0;) {
    const UndoAction& action = txn->undo_[i];
    Btree* tree = GetTree(action.tree_id);
    if (tree == nullptr) return Status::Corruption("tree vanished during undo");
    if (action.kind == UndoAction::kRemoveInserted) {
      Status s = tree->RemoveVersion(&txn->wal_, action.key, action.start,
                                     /*as_clr=*/true, 0);
      if (!s.ok() && !s.IsNotFound()) return s;
    } else {
      CDB_RETURN_IF_ERROR(tree->ReinsertRecord(&txn->wal_, action.record, 0));
    }
  }

  if (wal_ != nullptr) {
    WalRecord end;
    end.type = WalRecordType::kEnd;
    txn->wal_.Emit(&end);
    CDB_RETURN_IF_ERROR(wal_->FlushAll());
  }
  txn->state_ = Transaction::State::kAborted;

  if (observer_ != nullptr) {
    CDB_RETURN_IF_ERROR(observer_->OnAbort(txn->id_));
  }
  Tm().aborts->Inc();
  obs::TraceRing::Global().Emit(obs::TraceEventType::kTxnAbort, txn->id_);
  active_.reset();
  return Status::OK();
}

Status TransactionManager::StampPending(size_t max_txns) {
  size_t limit = max_txns == 0 ? pending_stamps_.size() : max_txns;
  TxnWalContext sys;
  sys.txn_id = 0;
  sys.log = wal_;
  while (limit-- > 0 && !pending_stamps_.empty()) {
    PendingStamp pending = std::move(pending_stamps_.front());
    pending_stamps_.pop_front();
    for (const auto& w : pending.writes) {
      Btree* tree = GetTree(w.tree_id);
      if (tree == nullptr) return Status::Corruption("tree vanished");
      Status s = tree->StampVersion(&sys, w.key, pending.txn_id,
                                    pending.commit_time);
      if (!s.ok() && !s.IsNotFound()) return s;
      Tm().stamped_versions->Inc();
    }
  }
  return Status::OK();
}

Result<uint64_t> TransactionManager::ResolveCommitTime(uint64_t start) const {
  std::shared_lock<std::shared_mutex> lock(times_mu_);
  auto it = committed_times_.find(start);
  if (it != committed_times_.end()) return it->second;
  return Status::NotFound("start is not a committed txn id");
}

void TransactionManager::RestoreCommittedTxn(TxnId id, uint64_t commit_time) {
  {
    std::unique_lock<std::shared_mutex> lock(times_mu_);
    committed_times_[id] = commit_time;
  }
  last_tick_ = std::max(last_tick_, std::max(id, commit_time));
  uint64_t prev = last_commit_time_.load(std::memory_order_relaxed);
  while (commit_time > prev &&
         !last_commit_time_.compare_exchange_weak(prev, commit_time,
                                                  std::memory_order_release)) {
  }
}

}  // namespace complydb
