#include "txn/slot_scheduler.h"

#include "obs/span.h"

namespace complydb {

SlotScheduler::SlotScheduler() {
  auto& reg = obs::MetricsRegistry::Global();
  reg_admitted_ = reg.GetCounter("txn.scheduler.admitted_concurrent");
  reg_serialized_ = reg.GetCounter("txn.scheduler.serialized");
  reg_fallbacks_ = reg.GetCounter("txn.scheduler.footprint_fallbacks");
  reg_conflict_waits_ = reg.GetCounter("txn.scheduler.conflict_waits");
}

void SlotScheduler::Register(uint64_t ticket, Admission admission,
                             uint64_t partition) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.emplace(ticket, Entry{admission, partition});
  }
  switch (admission) {
    case Admission::kConcurrent:
      break;  // counted at admission (WaitAdmissible)
    case Admission::kFallback:
      footprint_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      reg_fallbacks_->Inc();
      break;
    case Admission::kExclusive:
      serialized_.fetch_add(1, std::memory_order_relaxed);
      reg_serialized_->Inc();
      break;
  }
}

bool SlotScheduler::IsConcurrent(uint64_t ticket) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(ticket);
  return it != entries_.end() && it->second.admission == Admission::kConcurrent;
}

bool SlotScheduler::AdmissibleLocked(uint64_t ticket,
                                     uint64_t partition) const {
  for (const auto& [other, entry] : entries_) {
    if (other >= ticket) break;  // waits only point backward
    if (entry.admission != Admission::kConcurrent) return false;
    if (entry.partition == partition) return false;
  }
  return true;
}

void SlotScheduler::WaitAdmissible(uint64_t ticket) {
  const bool spans = obs::SpansEnabled();
  const uint64_t t0 = spans ? obs::MonotonicMicros() : 0;
  uint64_t partition = 0;
  bool waited = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(ticket);
    if (it == entries_.end()) return;  // abandoned before execution
    partition = it->second.partition;
    if (!AdmissibleLocked(ticket, partition)) {
      waited = true;
      cv_.wait(lock, [&] { return AdmissibleLocked(ticket, partition); });
    }
  }
  admitted_concurrent_.fetch_add(1, std::memory_order_relaxed);
  reg_admitted_->Inc();
  if (waited) {
    conflict_waits_.fetch_add(1, std::memory_order_relaxed);
    reg_conflict_waits_->Inc();
  }
  if (spans) {
    obs::SpanRing::Global().Emit(obs::SpanKind::kSchedulerAdmit, ticket, t0,
                                 obs::MonotonicMicros(), partition);
  }
}

void SlotScheduler::Release(uint64_t ticket) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.erase(ticket) == 0) return;
  }
  cv_.notify_all();
}

double SlotScheduler::declared_hit_rate() const {
  const uint64_t concurrent =
      admitted_concurrent_.load(std::memory_order_relaxed);
  const uint64_t total = concurrent +
                         serialized_.load(std::memory_order_relaxed) +
                         footprint_fallbacks_.load(std::memory_order_relaxed);
  return total == 0 ? 1.0 : static_cast<double>(concurrent) / total;
}

}  // namespace complydb
