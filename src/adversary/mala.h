#ifndef COMPLYDB_ADVERSARY_MALA_H_
#define COMPLYDB_ADVERSARY_MALA_H_

#include <string>

#include "common/status.h"
#include "storage/page.h"
#include "worm/worm_store.h"

namespace complydb {

/// Mala, the paper's insider adversary (§II): she has (or can assume)
/// root on the DBMS host, and edits the database file, indexes, and
/// transaction log directly with a file editor. She can issue any command
/// to the WORM server's public interface, but cannot subvert the WORM
/// server itself — that is the architecture's trust anchor.
///
/// Every method operates on the raw files, bypassing the DBMS entirely
/// (run them against a closed/crashed database, as Mala would). The test
/// suite asserts that each attack is caught by the audit, and that each
/// WORM-directed attack is refused by the store.
class Mala {
 public:
  explicit Mala(std::string db_path) : db_path_(std::move(db_path)) {}

  /// Flips bytes inside the latest version of `key`'s value (retroactive
  /// alteration — the primary SOX/17a-4 threat).
  Status TamperTupleValue(uint32_t tree_id, Slice key);

  /// Physically removes the version (key, start) from its leaf, patching
  /// the page to remain structurally valid (shredding unexpired data).
  Status DeleteTupleVersion(uint32_t tree_id, Slice key, uint64_t start);

  /// Fig. 2(b): swaps two adjacent leaf entries so lookups fail.
  Status SwapLeafEntries(uint32_t tree_id);

  /// Fig. 2(c): bumps an internal separator key past its child's minimum.
  /// `delta` = -1 reverts a prior +1 tamper (state-reversion attacks).
  Status TamperInternalKey(uint32_t tree_id, int delta = 1);

  /// Post-hoc insertion (threat 2): fabricates a committed tuple with a
  /// backdated commit time, correctly placed and order-numbered, without
  /// a compliance-log trail.
  Status InsertBackdatedTuple(uint32_t tree_id, Slice key, Slice value,
                              uint64_t past_commit_time);

  /// Rewrites the tail of the DBMS transaction log with zeros (hiding
  /// recently committed work before recovery).
  Status TruncateWalBytes(const std::string& wal_path, size_t bytes);

  /// Shortens the transaction log file, silently dropping its tail — the
  /// cleaner variant of hiding recent commits before recovery runs.
  Status TruncateWalFile(const std::string& wal_path, size_t drop_bytes);

  /// Attacks against the WORM server's public interface; all must be
  /// refused. Returns OK iff every attempt was rejected.
  Status AttackWormStore(WormStore* worm, const std::string& file_name);

 private:
  Status LoadPage(PageId pgno, Page* page) const;
  Status StorePage(PageId pgno, const Page& page) const;
  Result<PageId> PageCount() const;
  /// Finds the leaf page + slot holding (key, start) by brute-force file
  /// scan (Mala does not need the index).
  Status FindVersion(uint32_t tree_id, Slice key, uint64_t start,
                     bool latest_ok, PageId* pgno, uint16_t* slot) const;

  std::string db_path_;
};

}  // namespace complydb

#endif  // COMPLYDB_ADVERSARY_MALA_H_
