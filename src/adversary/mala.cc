#include "adversary/mala.h"
#include <filesystem>

#include <algorithm>
#include <cstdio>

#include "btree/btree.h"
#include "btree/tuple.h"

namespace complydb {

Result<PageId> Mala::PageCount() const {
  std::FILE* f = std::fopen(db_path_.c_str(), "rb");
  if (f == nullptr) return Status::IOError("mala: open " + db_path_);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  if (size < 0) return Status::IOError("mala: size");
  return static_cast<PageId>(static_cast<size_t>(size) / kPageSize);
}

Status Mala::LoadPage(PageId pgno, Page* page) const {
  std::FILE* f = std::fopen(db_path_.c_str(), "rb");
  if (f == nullptr) return Status::IOError("mala: open " + db_path_);
  std::fseek(f, static_cast<long>(pgno) * kPageSize, SEEK_SET);
  size_t n = std::fread(page->data(), 1, kPageSize, f);
  std::fclose(f);
  if (n != kPageSize) return Status::IOError("mala: short read");
  return Status::OK();
}

Status Mala::StorePage(PageId pgno, const Page& page) const {
  std::FILE* f = std::fopen(db_path_.c_str(), "r+b");
  if (f == nullptr) return Status::IOError("mala: open rw " + db_path_);
  std::fseek(f, static_cast<long>(pgno) * kPageSize, SEEK_SET);
  size_t n = std::fwrite(page.data(), 1, kPageSize, f);
  std::fflush(f);
  std::fclose(f);
  if (n != kPageSize) return Status::IOError("mala: short write");
  return Status::OK();
}

Status Mala::FindVersion(uint32_t tree_id, Slice key, uint64_t start,
                         bool latest_ok, PageId* pgno_out,
                         uint16_t* slot_out) const {
  Result<PageId> count = PageCount();
  if (!count.ok()) return count.status();
  PageId best_pgno = kInvalidPage;
  uint16_t best_slot = 0;
  uint64_t best_start = 0;
  for (PageId pgno = 1; pgno < count.value(); ++pgno) {
    Page page;
    CDB_RETURN_IF_ERROR(LoadPage(pgno, &page));
    if (!page.IsFormatted() || page.type() != PageType::kBtreeLeaf ||
        page.tree_id() != tree_id) {
      continue;
    }
    for (uint16_t i = 0; i < page.slot_count(); ++i) {
      TupleData t;
      if (!DecodeTuple(page.RecordAt(i), &t).ok()) continue;
      if (t.key != key.view()) continue;
      if (!latest_ok) {
        if (t.start == start) {
          *pgno_out = pgno;
          *slot_out = i;
          return Status::OK();
        }
      } else if (t.start >= best_start) {
        best_start = t.start;
        best_pgno = pgno;
        best_slot = i;
      }
    }
  }
  if (latest_ok && best_pgno != kInvalidPage) {
    *pgno_out = best_pgno;
    *slot_out = best_slot;
    return Status::OK();
  }
  return Status::NotFound("mala: version not found");
}

Status Mala::TamperTupleValue(uint32_t tree_id, Slice key) {
  PageId pgno;
  uint16_t slot;
  CDB_RETURN_IF_ERROR(FindVersion(tree_id, key, 0, true, &pgno, &slot));
  Page page;
  CDB_RETURN_IF_ERROR(LoadPage(pgno, &page));
  TupleData t;
  CDB_RETURN_IF_ERROR(DecodeTuple(page.RecordAt(slot), &t));
  if (t.value.empty()) return Status::InvalidArgument("mala: empty value");
  t.value[0] = static_cast<char>(t.value[0] ^ 0x5A);
  CDB_RETURN_IF_ERROR(page.ReplaceRecord(slot, EncodeTuple(t)));
  return StorePage(pgno, page);
}

Status Mala::DeleteTupleVersion(uint32_t tree_id, Slice key, uint64_t start) {
  PageId pgno;
  uint16_t slot;
  CDB_RETURN_IF_ERROR(FindVersion(tree_id, key, start, false, &pgno, &slot));
  Page page;
  CDB_RETURN_IF_ERROR(LoadPage(pgno, &page));
  CDB_RETURN_IF_ERROR(page.EraseRecord(slot));
  return StorePage(pgno, page);
}

Status Mala::SwapLeafEntries(uint32_t tree_id) {
  Result<PageId> count = PageCount();
  if (!count.ok()) return count.status();
  for (PageId pgno = 1; pgno < count.value(); ++pgno) {
    Page page;
    CDB_RETURN_IF_ERROR(LoadPage(pgno, &page));
    if (!page.IsFormatted() || page.type() != PageType::kBtreeLeaf ||
        page.tree_id() != tree_id || page.slot_count() < 2) {
      continue;
    }
    std::string rec0(page.RecordAt(0).data(), page.RecordAt(0).size());
    std::string rec1(page.RecordAt(1).data(), page.RecordAt(1).size());
    // Only a swap of *different keys* misroutes lookups (Fig. 2(b)).
    Slice k0, k1;
    uint64_t s0, s1;
    if (!DecodeTupleKey(rec0, &k0, &s0).ok() ||
        !DecodeTupleKey(rec1, &k1, &s1).ok() || k0 == k1) {
      continue;
    }
    CDB_RETURN_IF_ERROR(page.EraseRecord(0));
    CDB_RETURN_IF_ERROR(page.InsertRecord(0, rec1));
    CDB_RETURN_IF_ERROR(page.EraseRecord(1));
    CDB_RETURN_IF_ERROR(page.InsertRecord(1, rec0));
    return StorePage(pgno, page);
  }
  return Status::NotFound("mala: no leaf with two distinct keys");
}

Status Mala::TamperInternalKey(uint32_t tree_id, int delta) {
  Result<PageId> count = PageCount();
  if (!count.ok()) return count.status();
  for (PageId pgno = 0; pgno < count.value(); ++pgno) {
    Page page;
    CDB_RETURN_IF_ERROR(LoadPage(pgno, &page));
    if (!page.IsFormatted() || page.type() != PageType::kBtreeInternal ||
        page.tree_id() != tree_id || page.slot_count() < 2) {
      continue;
    }
    IndexEntry e;
    CDB_RETURN_IF_ERROR(DecodeIndexEntry(page.RecordAt(1), &e));
    if (e.key.empty()) continue;
    e.key.back() = static_cast<char>(e.key.back() + delta);
    CDB_RETURN_IF_ERROR(page.ReplaceRecord(1, EncodeIndexEntry(e)));
    return StorePage(pgno, page);
  }
  return Status::NotFound("mala: no internal page to tamper");
}

Status Mala::InsertBackdatedTuple(uint32_t tree_id, Slice key, Slice value,
                                  uint64_t past_commit_time) {
  // Place the forged tuple in the correct leaf at the correct position,
  // exactly as a legitimate insert would have — the file-level forgery is
  // undetectable by structural checks alone.
  Result<PageId> count = PageCount();
  if (!count.ok()) return count.status();
  PageId target = kInvalidPage;
  for (PageId pgno = 1; pgno < count.value(); ++pgno) {
    Page page;
    CDB_RETURN_IF_ERROR(LoadPage(pgno, &page));
    if (!page.IsFormatted() || page.type() != PageType::kBtreeLeaf ||
        page.tree_id() != tree_id || page.slot_count() == 0) {
      continue;
    }
    Slice first_key, last_key;
    uint64_t fs, ls;
    CDB_RETURN_IF_ERROR(DecodeTupleKey(page.RecordAt(0), &first_key, &fs));
    CDB_RETURN_IF_ERROR(DecodeTupleKey(
        page.RecordAt(static_cast<uint16_t>(page.slot_count() - 1)),
        &last_key, &ls));
    if (CompareVersion(key, past_commit_time, first_key, fs) >= 0 &&
        (target == kInvalidPage ||
         CompareVersion(key, past_commit_time, last_key, ls) <= 0)) {
      target = pgno;
      if (CompareVersion(key, past_commit_time, last_key, ls) <= 0) break;
    }
  }
  if (target == kInvalidPage) return Status::NotFound("mala: no leaf fits");

  Page page;
  CDB_RETURN_IF_ERROR(LoadPage(target, &page));
  TupleData t;
  t.key = key.ToString();
  t.value = value.ToString();
  t.start = past_commit_time;
  t.stamped = true;
  t.order_no = page.TakeOrderNumber();
  uint16_t pos = LeafLowerBound(page, key, past_commit_time);
  CDB_RETURN_IF_ERROR(page.InsertRecord(pos, EncodeTuple(t)));
  return StorePage(target, page);
}

Status Mala::TruncateWalBytes(const std::string& wal_path, size_t bytes) {
  std::FILE* f = std::fopen(wal_path.c_str(), "r+b");
  if (f == nullptr) return Status::IOError("mala: open wal");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  size_t n = std::min(static_cast<size_t>(size), bytes);
  std::fseek(f, static_cast<long>(size - static_cast<long>(n)), SEEK_SET);
  std::string zeros(n, '\0');
  std::fwrite(zeros.data(), 1, n, f);
  std::fflush(f);
  std::fclose(f);
  return Status::OK();
}

Status Mala::TruncateWalFile(const std::string& wal_path, size_t drop_bytes) {
  std::error_code ec;
  auto size = std::filesystem::file_size(wal_path, ec);
  if (ec) return Status::IOError("mala: wal size");
  size_t keep = size > drop_bytes ? size - drop_bytes : 0;
  std::filesystem::resize_file(wal_path, keep, ec);
  if (ec) return Status::IOError("mala: wal truncate");
  return Status::OK();
}

Status Mala::AttackWormStore(WormStore* worm, const std::string& file_name) {
  // 1. Try to delete an unexpired file.
  Status del = worm->Delete(file_name);
  if (!del.IsWormViolation() && !del.IsNotFound()) {
    return Status::Corruption("worm allowed premature delete!");
  }
  // 2. Try to recreate (overwrite) an existing file.
  Status create = worm->Create(file_name, 1);
  if (!create.IsWormViolation()) {
    return Status::Corruption("worm allowed create-over-existing!");
  }
  return Status::OK();
}

}  // namespace complydb
