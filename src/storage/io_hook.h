#ifndef COMPLYDB_STORAGE_IO_HOOK_H_
#define COMPLYDB_STORAGE_IO_HOOK_H_

#include "common/status.h"
#include "storage/page.h"

namespace complydb {

/// The pread/pwrite interception seam (paper §IV-A): "we wrote a compliance
/// logging plugin that taps into the pread/pwrite system calls of Berkeley
/// DB". The buffer cache invokes every registered hook:
///
///  - OnPageRead: after a page is fetched from disk, before it is served.
///  - OnPageWrite: before a (possibly dirty) page image overwrites the
///    on-disk copy. A non-OK status aborts the write — this is how
///    "data page writes wait until their corresponding NEW_TUPLE records
///    have reached the WORM server" is enforced.
///  - OnPageWriteBarrier: after OnPageWrite has run for every page of the
///    batch, still before any disk write. With the asynchronous shipping
///    pipeline, OnPageWrite only *appends* the diff records; this second
///    phase is where the pwrite stalls until the records describing the
///    page are durable on WORM. Batching the barriers lets one WORM
///    fflush cover a whole dirty-page storm. Synchronous hooks need no
///    barrier, hence the default no-op.
///
/// Hooks run in registration order; the WAL hook (write-ahead rule) is
/// registered before the compliance logger.
class IoHook {
 public:
  virtual ~IoHook() = default;

  virtual Status OnPageRead(PageId pgno, const Page& image) = 0;
  virtual Status OnPageWrite(PageId pgno, const Page& image) = 0;
  virtual Status OnPageWriteBarrier(PageId pgno) {
    (void)pgno;
    return Status::OK();
  }
};

}  // namespace complydb

#endif  // COMPLYDB_STORAGE_IO_HOOK_H_
