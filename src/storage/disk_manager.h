#ifndef COMPLYDB_STORAGE_DISK_MANAGER_H_
#define COMPLYDB_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/page.h"

namespace complydb {

/// Page-granular I/O over a single database file on ordinary read/write
/// media. This file — data, indexes, metadata — is exactly what the threat
/// model lets Mala edit with a file editor; nothing in it is trusted.
///
/// Reads and writes go through pread/pwrite on a raw descriptor, so
/// concurrent page I/O from different threads is safe (the auditor's
/// parallel final-state scan reads pages from several workers at once).
/// AllocatePage extends the file and is serialized by the single-writer
/// engine; PageCount is safe to read from any thread.
///
/// Counters are exposed for the benchmarks (storage-server I/O is the cost
/// the paper's page-image cache exists to avoid).
class DiskManager {
 public:
  static Result<DiskManager*> Open(const std::string& path);

  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  Status ReadPage(PageId pgno, Page* page);
  Status WritePage(PageId pgno, const Page& page);

  /// Extends the file by one zero page and returns its id.
  Result<PageId> AllocatePage();

  /// Number of pages in the file.
  PageId PageCount() const {
    return page_count_.load(std::memory_order_acquire);
  }

  Status Sync();

  const std::string& path() const { return path_; }

  uint64_t reads() const { return reads_.Value(); }
  uint64_t writes() const { return writes_.Value(); }
  void ResetCounters() {
    reads_.Reset();
    writes_.Reset();
  }

  /// Simulated per-I/O latency. The paper's database lived on an
  /// NFS-mounted filer where every page crossing cost a network round
  /// trip; benchmarks set this so relative overheads are measured against
  /// a realistically priced baseline rather than a page-cached local file.
  /// Sets both directions; the per-direction setters below let benchmarks
  /// model an asymmetric device (e.g. priced reads, free writes).
  void set_latency_micros(uint64_t micros) {
    read_latency_micros_ = micros;
    write_latency_micros_ = micros;
  }
  uint64_t latency_micros() const { return read_latency_micros_; }
  void set_read_latency_micros(uint64_t micros) {
    read_latency_micros_ = micros;
  }
  void set_write_latency_micros(uint64_t micros) {
    write_latency_micros_ = micros;
  }
  uint64_t read_latency_micros() const { return read_latency_micros_; }
  uint64_t write_latency_micros() const { return write_latency_micros_; }

 private:
  DiskManager(std::string path, int fd, PageId page_count);

  static void SimulateLatency(uint64_t micros);

  std::string path_;
  int fd_;
  std::atomic<PageId> page_count_;
  // Per-instance (benchmarks reset these between phases); the registry's
  // storage.disk.* metrics aggregate across instances.
  obs::Counter reads_;
  obs::Counter writes_;
  obs::Counter* reg_reads_;
  obs::Counter* reg_writes_;
  obs::Histogram* reg_read_us_;
  obs::Histogram* reg_write_us_;
  uint64_t read_latency_micros_ = 0;
  uint64_t write_latency_micros_ = 0;
};

}  // namespace complydb

#endif  // COMPLYDB_STORAGE_DISK_MANAGER_H_
