#include "storage/buffer_cache.h"

#include "obs/trace.h"

namespace complydb {

BufferCache::BufferCache(DiskManager* disk, size_t capacity)
    : disk_(disk), capacity_(capacity == 0 ? 1 : capacity) {
  frames_.resize(capacity_);
  free_list_.reserve(capacity_);
  for (size_t i = capacity_; i-- > 0;) free_list_.push_back(i);
  auto& reg = obs::MetricsRegistry::Global();
  reg_hits_ = reg.GetCounter("storage.cache.hits");
  reg_misses_ = reg.GetCounter("storage.cache.misses");
  reg_evictions_ = reg.GetCounter("storage.cache.evictions");
  reg_page_forces_ = reg.GetCounter("storage.cache.page_forces");
}

void BufferCache::LruRemove(size_t idx) {
  Frame* f = &frames_[idx];
  if (!f->in_lru) return;
  if (f->lru_prev != kNil) {
    frames_[f->lru_prev].lru_next = f->lru_next;
  } else {
    lru_head_ = f->lru_next;
  }
  if (f->lru_next != kNil) {
    frames_[f->lru_next].lru_prev = f->lru_prev;
  } else {
    lru_tail_ = f->lru_prev;
  }
  f->lru_prev = kNil;
  f->lru_next = kNil;
  f->in_lru = false;
}

void BufferCache::LruPushMru(size_t idx) {
  Frame* f = &frames_[idx];
  if (f->in_lru) return;
  f->lru_prev = lru_tail_;
  f->lru_next = kNil;
  if (lru_tail_ != kNil) {
    frames_[lru_tail_].lru_next = idx;
  } else {
    lru_head_ = idx;
  }
  lru_tail_ = idx;
  f->in_lru = true;
}

void BufferCache::LruPushLru(size_t idx) {
  Frame* f = &frames_[idx];
  if (f->in_lru) return;
  f->lru_next = lru_head_;
  f->lru_prev = kNil;
  if (lru_head_ != kNil) {
    frames_[lru_head_].lru_prev = idx;
  } else {
    lru_tail_ = idx;
  }
  lru_head_ = idx;
  f->in_lru = true;
}

Status BufferCache::WriteOut(Frame* frame) {
  for (IoHook* hook : hooks_) {
    CDB_RETURN_IF_ERROR(hook->OnPageWrite(frame->pgno, frame->page));
  }
  for (IoHook* hook : hooks_) {
    CDB_RETURN_IF_ERROR(hook->OnPageWriteBarrier(frame->pgno));
  }
  CDB_RETURN_IF_ERROR(disk_->WritePage(frame->pgno, frame->page));
  frame->dirty = false;
  frame->marked = false;
  return Status::OK();
}

// Batch write-out in three phases: every page's records are appended
// (OnPageWrite), then every page's durability barrier runs — with the
// async shipper the first barrier drains the whole ring, so one WORM
// fflush covers the entire storm — and only then do the pwrites happen.
// An error in any phase aborts before a single page reaches disk, which
// preserves the compliance rule (no pwrite without its records on WORM).
Status BufferCache::WriteOutBatch(const std::vector<size_t>& batch) {
  for (size_t idx : batch) {
    Frame* frame = &frames_[idx];
    for (IoHook* hook : hooks_) {
      CDB_RETURN_IF_ERROR(hook->OnPageWrite(frame->pgno, frame->page));
    }
  }
  for (size_t idx : batch) {
    for (IoHook* hook : hooks_) {
      CDB_RETURN_IF_ERROR(hook->OnPageWriteBarrier(frames_[idx].pgno));
    }
  }
  for (size_t idx : batch) {
    Frame* frame = &frames_[idx];
    CDB_RETURN_IF_ERROR(disk_->WritePage(frame->pgno, frame->page));
    frame->dirty = false;
    frame->marked = false;
  }
  return Status::OK();
}

Result<size_t> BufferCache::FindVictim() {
  if (!free_list_.empty()) {
    size_t idx = free_list_.back();
    free_list_.pop_back();
    return idx;
  }
  if (lru_head_ == kNil) {
    return Status::Busy("buffer cache: all frames pinned");
  }
  size_t victim = lru_head_;
  LruRemove(victim);
  Frame* frame = &frames_[victim];
  if (frame->dirty) {
    // Steal: the page may hold uncommitted data; the WAL hook guarantees
    // the write-ahead rule before the bytes reach disk.
    Status s = WriteOut(frame);
    if (!s.ok()) {
      // Still resident and dirty; keep it coldest so the next eviction
      // retries it first.
      LruPushLru(victim);
      return s;
    }
  }
  table_.erase(frame->pgno);
  evictions_.Inc();
  reg_evictions_->Inc();
  return victim;
}

Status BufferCache::FetchPage(PageId pgno, Page** out) {
  auto it = table_.find(pgno);
  if (it != table_.end()) {
    Frame* frame = &frames_[it->second];
    if (frame->pin_count == 0) LruRemove(it->second);
    ++frame->pin_count;
    hits_.Inc();
    reg_hits_->Inc();
    *out = &frame->page;
    return Status::OK();
  }
  misses_.Inc();
  reg_misses_->Inc();
  Result<size_t> victim = FindVictim();
  if (!victim.ok()) return victim.status();
  size_t idx = victim.value();
  Frame* frame = &frames_[idx];
  Status s = disk_->ReadPage(pgno, &frame->page);
  if (!s.ok()) {
    free_list_.push_back(idx);
    return s;
  }
  for (IoHook* hook : hooks_) {
    Status hs = hook->OnPageRead(pgno, frame->page);
    if (!hs.ok()) {
      free_list_.push_back(idx);
      return hs;
    }
  }
  frame->pgno = pgno;
  frame->dirty = false;
  frame->marked = false;
  frame->pin_count = 1;
  table_[pgno] = idx;
  *out = &frame->page;
  return Status::OK();
}

Result<PageId> BufferCache::NewPage(Page** out) {
  Result<PageId> alloc = disk_->AllocatePage();
  if (!alloc.ok()) return alloc.status();
  PageId pgno = alloc.value();
  Result<size_t> victim = FindVictim();
  if (!victim.ok()) return victim.status();
  size_t idx = victim.value();
  Frame* frame = &frames_[idx];
  frame->page.Zero();
  frame->pgno = pgno;
  frame->dirty = true;
  frame->marked = false;
  frame->pin_count = 1;
  table_[pgno] = idx;
  *out = &frame->page;
  return pgno;
}

void BufferCache::Unpin(PageId pgno, bool dirty) {
  auto it = table_.find(pgno);
  if (it == table_.end()) return;
  Frame* frame = &frames_[it->second];
  if (frame->pin_count > 0) --frame->pin_count;
  if (dirty) frame->dirty = true;
  if (frame->pin_count == 0) LruPushMru(it->second);
}

Status BufferCache::FlushPage(PageId pgno) {
  auto it = table_.find(pgno);
  if (it == table_.end()) return Status::OK();
  Frame* frame = &frames_[it->second];
  if (!frame->dirty) return Status::OK();
  return WriteOut(frame);
}

Status BufferCache::FlushAll() {
  std::vector<size_t> batch;
  for (size_t i = 0; i < capacity_; ++i) {
    Frame& frame = frames_[i];
    if (frame.pgno != kInvalidPage && table_.count(frame.pgno) > 0 &&
        frame.dirty) {
      batch.push_back(i);
    }
  }
  CDB_RETURN_IF_ERROR(WriteOutBatch(batch));
  return disk_->Sync();
}

Status BufferCache::FlushMarkedAndRemark() {
  std::vector<size_t> batch;
  for (size_t i = 0; i < capacity_; ++i) {
    Frame& frame = frames_[i];
    if (frame.pgno == kInvalidPage || table_.count(frame.pgno) == 0) continue;
    if (frame.dirty && frame.marked) batch.push_back(i);
  }
  CDB_RETURN_IF_ERROR(WriteOutBatch(batch));
  for (size_t idx : batch) {
    reg_page_forces_->Inc();
    obs::TraceRing::Global().Emit(obs::TraceEventType::kPageForce,
                                  frames_[idx].pgno);
  }
  for (auto& frame : frames_) {
    if (frame.pgno == kInvalidPage || table_.count(frame.pgno) == 0) continue;
    frame.marked = frame.dirty;
  }
  return Status::OK();
}

Status BufferCache::DropAll() {
  CDB_RETURN_IF_ERROR(FlushAll());
  for (auto& frame : frames_) {
    if (frame.pin_count > 0) {
      return Status::Busy("buffer cache: cannot drop pinned frame");
    }
  }
  table_.clear();
  free_list_.clear();
  lru_head_ = kNil;
  lru_tail_ = kNil;
  for (size_t i = capacity_; i-- > 0;) {
    frames_[i] = Frame{};
    free_list_.push_back(i);
  }
  return Status::OK();
}

size_t BufferCache::dirty_count() const {
  size_t n = 0;
  for (const auto& frame : frames_) {
    if (frame.pgno != kInvalidPage && table_.count(frame.pgno) > 0 &&
        frame.dirty) {
      ++n;
    }
  }
  return n;
}

}  // namespace complydb
