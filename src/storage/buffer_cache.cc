#include "storage/buffer_cache.h"

#include <limits>

#include "obs/trace.h"

namespace complydb {

BufferCache::BufferCache(DiskManager* disk, size_t capacity)
    : disk_(disk), capacity_(capacity == 0 ? 1 : capacity) {
  frames_.resize(capacity_);
  free_list_.reserve(capacity_);
  for (size_t i = capacity_; i-- > 0;) free_list_.push_back(i);
  auto& reg = obs::MetricsRegistry::Global();
  reg_hits_ = reg.GetCounter("storage.cache.hits");
  reg_misses_ = reg.GetCounter("storage.cache.misses");
  reg_evictions_ = reg.GetCounter("storage.cache.evictions");
  reg_page_forces_ = reg.GetCounter("storage.cache.page_forces");
}

Status BufferCache::WriteOut(Frame* frame) {
  for (IoHook* hook : hooks_) {
    CDB_RETURN_IF_ERROR(hook->OnPageWrite(frame->pgno, frame->page));
  }
  CDB_RETURN_IF_ERROR(disk_->WritePage(frame->pgno, frame->page));
  frame->dirty = false;
  frame->marked = false;
  return Status::OK();
}

Result<size_t> BufferCache::FindVictim() {
  if (!free_list_.empty()) {
    size_t idx = free_list_.back();
    free_list_.pop_back();
    return idx;
  }
  size_t victim = capacity_;
  uint64_t best = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i < capacity_; ++i) {
    if (frames_[i].pin_count == 0 && frames_[i].lru_tick < best) {
      best = frames_[i].lru_tick;
      victim = i;
    }
  }
  if (victim == capacity_) {
    return Status::Busy("buffer cache: all frames pinned");
  }
  Frame* frame = &frames_[victim];
  if (frame->dirty) {
    // Steal: the page may hold uncommitted data; the WAL hook guarantees
    // the write-ahead rule before the bytes reach disk.
    CDB_RETURN_IF_ERROR(WriteOut(frame));
  }
  table_.erase(frame->pgno);
  evictions_.Inc();
  reg_evictions_->Inc();
  return victim;
}

Status BufferCache::FetchPage(PageId pgno, Page** out) {
  auto it = table_.find(pgno);
  if (it != table_.end()) {
    Frame* frame = &frames_[it->second];
    ++frame->pin_count;
    frame->lru_tick = ++tick_;
    hits_.Inc();
    reg_hits_->Inc();
    *out = &frame->page;
    return Status::OK();
  }
  misses_.Inc();
  reg_misses_->Inc();
  Result<size_t> victim = FindVictim();
  if (!victim.ok()) return victim.status();
  size_t idx = victim.value();
  Frame* frame = &frames_[idx];
  Status s = disk_->ReadPage(pgno, &frame->page);
  if (!s.ok()) {
    free_list_.push_back(idx);
    return s;
  }
  for (IoHook* hook : hooks_) {
    Status hs = hook->OnPageRead(pgno, frame->page);
    if (!hs.ok()) {
      free_list_.push_back(idx);
      return hs;
    }
  }
  frame->pgno = pgno;
  frame->dirty = false;
  frame->marked = false;
  frame->pin_count = 1;
  frame->lru_tick = ++tick_;
  table_[pgno] = idx;
  *out = &frame->page;
  return Status::OK();
}

Result<PageId> BufferCache::NewPage(Page** out) {
  Result<PageId> alloc = disk_->AllocatePage();
  if (!alloc.ok()) return alloc.status();
  PageId pgno = alloc.value();
  Result<size_t> victim = FindVictim();
  if (!victim.ok()) return victim.status();
  size_t idx = victim.value();
  Frame* frame = &frames_[idx];
  frame->page.Zero();
  frame->pgno = pgno;
  frame->dirty = true;
  frame->marked = false;
  frame->pin_count = 1;
  frame->lru_tick = ++tick_;
  table_[pgno] = idx;
  *out = &frame->page;
  return pgno;
}

void BufferCache::Unpin(PageId pgno, bool dirty) {
  auto it = table_.find(pgno);
  if (it == table_.end()) return;
  Frame* frame = &frames_[it->second];
  if (frame->pin_count > 0) --frame->pin_count;
  if (dirty) frame->dirty = true;
}

Status BufferCache::FlushPage(PageId pgno) {
  auto it = table_.find(pgno);
  if (it == table_.end()) return Status::OK();
  Frame* frame = &frames_[it->second];
  if (!frame->dirty) return Status::OK();
  return WriteOut(frame);
}

Status BufferCache::FlushAll() {
  for (auto& frame : frames_) {
    if (frame.pgno != kInvalidPage && table_.count(frame.pgno) > 0 &&
        frame.dirty) {
      CDB_RETURN_IF_ERROR(WriteOut(&frame));
    }
  }
  return disk_->Sync();
}

Status BufferCache::FlushMarkedAndRemark() {
  for (auto& frame : frames_) {
    if (frame.pgno == kInvalidPage || table_.count(frame.pgno) == 0) continue;
    if (frame.dirty && frame.marked) {
      CDB_RETURN_IF_ERROR(WriteOut(&frame));
      reg_page_forces_->Inc();
      obs::TraceRing::Global().Emit(obs::TraceEventType::kPageForce,
                                    frame.pgno);
    }
  }
  for (auto& frame : frames_) {
    if (frame.pgno == kInvalidPage || table_.count(frame.pgno) == 0) continue;
    frame.marked = frame.dirty;
  }
  return Status::OK();
}

Status BufferCache::DropAll() {
  CDB_RETURN_IF_ERROR(FlushAll());
  for (auto& frame : frames_) {
    if (frame.pin_count > 0) {
      return Status::Busy("buffer cache: cannot drop pinned frame");
    }
  }
  table_.clear();
  free_list_.clear();
  for (size_t i = capacity_; i-- > 0;) {
    frames_[i] = Frame{};
    free_list_.push_back(i);
  }
  return Status::OK();
}

size_t BufferCache::dirty_count() const {
  size_t n = 0;
  for (const auto& frame : frames_) {
    if (frame.pgno != kInvalidPage && table_.count(frame.pgno) > 0 &&
        frame.dirty) {
      ++n;
    }
  }
  return n;
}

}  // namespace complydb
