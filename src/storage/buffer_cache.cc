#include "storage/buffer_cache.h"

#include <algorithm>
#include <string>
#include <thread>

#include "obs/trace.h"

namespace complydb {

namespace {

size_t FloorPow2Clamped(size_t shards, size_t capacity) {
  if (shards == 0) shards = 1;
  size_t p = 1;
  while (p * 2 <= shards) p *= 2;
  while (p > capacity && p > 1) p /= 2;
  return p;
}

}  // namespace

BufferCache::BufferCache(DiskManager* disk, size_t capacity, size_t shards)
    : disk_(disk),
      capacity_(capacity == 0 ? 1 : capacity),
      num_shards_(FloorPow2Clamped(shards, capacity == 0 ? 1 : capacity)),
      shard_mask_(num_shards_ - 1) {
  frames_ = std::make_unique<Frame[]>(capacity_);
  shards_ = std::make_unique<Shard[]>(num_shards_);
  auto& reg = obs::MetricsRegistry::Global();
  // Frames are partitioned statically: shard s owns the contiguous index
  // range [first, first + count). A page can only ever be cached in a
  // frame of ShardFor(pgno), so every free-list / LRU operation stays
  // within one shard's lock.
  size_t base = capacity_ / num_shards_;
  size_t extra = capacity_ % num_shards_;
  size_t first = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    size_t count = base + (s < extra ? 1 : 0);
    Shard& shard = shards_[s];
    shard.free_list.reserve(count);
    for (size_t i = first + count; i-- > first;) shard.free_list.push_back(i);
    first += count;
    shard.frame_count = count;
    // Checkpoint once half the shard is dirty: the other half stays
    // available as clean victims, so faults between two commit-boundary
    // checkpoints never have to move a dirty page themselves.
    shard.checkpoint_at = std::max<size_t>(1, (count + 1) / 2);
    std::string prefix = "storage.cache.shard" + std::to_string(s);
    shard.reg_hits = reg.GetCounter(prefix + ".hits");
    shard.reg_misses = reg.GetCounter(prefix + ".misses");
    shard.reg_evictions = reg.GetCounter(prefix + ".evictions");
  }
  reg_hits_ = reg.GetCounter("storage.cache.hits");
  reg_misses_ = reg.GetCounter("storage.cache.misses");
  reg_evictions_ = reg.GetCounter("storage.cache.evictions");
  reg_page_forces_ = reg.GetCounter("storage.cache.page_forces");
  reg_latch_waits_ = reg.GetCounter("storage.cache.latch_waits");
  reg_checkpoints_ = reg.GetCounter("storage.cache.checkpoints");
  reg_shard_flushes_ = reg.GetCounter("storage.cache.shard_flushes");
  reg_read_bypasses_ = reg.GetCounter("storage.cache.read_bypasses");
  reg_latch_wait_us_ = reg.GetHistogram("storage.cache.latch_wait_us");
}

void BufferCache::SetDirty(Shard* shard, Frame* frame) {
  if (frame->dirty) return;
  frame->dirty = true;
  if (++shard->dirty >= shard->checkpoint_at) {
    checkpoint_pending_.store(true, std::memory_order_relaxed);
  }
}

void BufferCache::SetClean(Frame* frame) {
  if (!frame->dirty) return;
  frame->dirty = false;
  Shard& shard = ShardFor(frame->pgno);
  if (shard.dirty > 0) --shard.dirty;
}

void BufferCache::AcquireLatch(Frame* frame, PageLatchMode mode) {
  if (mode == PageLatchMode::kNone) return;
  if (mode == PageLatchMode::kShared) {
    if (frame->latch.try_lock_shared()) return;
    reg_latch_waits_->Inc();
    obs::ScopedLatencyTimer timer(reg_latch_wait_us_);
    frame->latch.lock_shared();
  } else {
    if (frame->latch.try_lock()) return;
    reg_latch_waits_->Inc();
    obs::ScopedLatencyTimer timer(reg_latch_wait_us_);
    frame->latch.lock();
  }
}

void BufferCache::ReleaseLatch(Frame* frame, PageLatchMode mode) {
  if (mode == PageLatchMode::kNone) return;
  if (mode == PageLatchMode::kShared) {
    frame->latch.unlock_shared();
  } else {
    frame->latch.unlock();
  }
}

void BufferCache::LruRemove(Shard* shard, size_t idx) {
  Frame* f = &frames_[idx];
  if (!f->in_lru) return;
  if (f->lru_prev != kNil) {
    frames_[f->lru_prev].lru_next = f->lru_next;
  } else {
    shard->lru_head = f->lru_next;
  }
  if (f->lru_next != kNil) {
    frames_[f->lru_next].lru_prev = f->lru_prev;
  } else {
    shard->lru_tail = f->lru_prev;
  }
  f->lru_prev = kNil;
  f->lru_next = kNil;
  f->in_lru = false;
}

void BufferCache::LruPushMru(Shard* shard, size_t idx) {
  Frame* f = &frames_[idx];
  if (f->in_lru) return;
  f->lru_prev = shard->lru_tail;
  f->lru_next = kNil;
  if (shard->lru_tail != kNil) {
    frames_[shard->lru_tail].lru_next = idx;
  } else {
    shard->lru_head = idx;
  }
  shard->lru_tail = idx;
  f->in_lru = true;
}

void BufferCache::LruPushLru(Shard* shard, size_t idx) {
  Frame* f = &frames_[idx];
  if (f->in_lru) return;
  f->lru_next = shard->lru_head;
  f->lru_prev = kNil;
  if (shard->lru_head != kNil) {
    frames_[shard->lru_head].lru_prev = idx;
  } else {
    shard->lru_tail = idx;
  }
  shard->lru_head = idx;
  f->in_lru = true;
}

Status BufferCache::WriteOut(Frame* frame) {
  for (IoHook* hook : hooks_) {
    CDB_RETURN_IF_ERROR(hook->OnPageWrite(frame->pgno, frame->page));
  }
  for (IoHook* hook : hooks_) {
    CDB_RETURN_IF_ERROR(hook->OnPageWriteBarrier(frame->pgno));
  }
  CDB_RETURN_IF_ERROR(disk_->WritePage(frame->pgno, frame->page));
  SetClean(frame);
  frame->marked = false;
  return Status::OK();
}

// Batch write-out in three phases: every page's records are appended
// (OnPageWrite), then every page's durability barrier runs — with the
// async shipper the first barrier drains the whole ring, so one WORM
// fflush covers the entire storm — and only then do the pwrites happen.
// An error in any phase aborts before a single page reaches disk, which
// preserves the compliance rule (no pwrite without its records on WORM).
Status BufferCache::WriteOutBatch(const std::vector<size_t>& batch) {
  for (size_t idx : batch) {
    Frame* frame = &frames_[idx];
    for (IoHook* hook : hooks_) {
      CDB_RETURN_IF_ERROR(hook->OnPageWrite(frame->pgno, frame->page));
    }
  }
  for (size_t idx : batch) {
    for (IoHook* hook : hooks_) {
      CDB_RETURN_IF_ERROR(hook->OnPageWriteBarrier(frames_[idx].pgno));
    }
  }
  for (size_t idx : batch) {
    Frame* frame = &frames_[idx];
    CDB_RETURN_IF_ERROR(disk_->WritePage(frame->pgno, frame->page));
    SetClean(frame);
    frame->marked = false;
  }
  return Status::OK();
}

Result<size_t> BufferCache::FindVictim(Shard* shard, bool allow_flush) {
  if (!shard->free_list.empty()) {
    size_t idx = shard->free_list.back();
    shard->free_list.pop_back();
    return idx;
  }
  if (shard->lru_head == kNil) {
    return Status::Busy("buffer cache: all frames pinned");
  }
  // Eviction recycles the coldest *clean* frame: evicting clean pages
  // needs no L append, so concurrent read traffic (slot-execute phases,
  // snapshot readers) never moves a compliance-visible page image at a
  // thread-dependent time.
  size_t victim = kNil;
  for (size_t idx = shard->lru_head; idx != kNil;
       idx = frames_[idx].lru_next) {
    if (!frames_[idx].dirty) {
      victim = idx;
      break;
    }
  }
  if (victim == kNil) {
    // No clean frame. Read faults bypass (kNil); write faults flush the
    // whole shard in page order — still steal (the pages may hold
    // uncommitted data; the WAL hook enforces the write-ahead rule), but
    // as one deterministic batch instead of a single LRU-order victim,
    // since which frame is coldest depends on thread timing while the
    // dirty *set* depends only on the applied write sequence. Writes only
    // fault from the serial commit path, so the flush point itself is
    // schedule-independent. Hooks run under this shard's mutex only
    // (shard -> WAL -> logger lock order), so other shards keep serving.
    if (!allow_flush) return kNil;
    std::vector<size_t> batch;
    for (size_t idx = shard->lru_head; idx != kNil;
         idx = frames_[idx].lru_next) {
      if (frames_[idx].dirty) batch.push_back(idx);
    }
    std::sort(batch.begin(), batch.end(), [&](size_t a, size_t b) {
      return frames_[a].pgno < frames_[b].pgno;
    });
    CDB_RETURN_IF_ERROR(WriteOutBatch(batch));
    reg_shard_flushes_->Inc();
    victim = shard->lru_head;
  }
  LruRemove(shard, victim);
  Frame* frame = &frames_[victim];
  shard->table.erase(frame->pgno);
  frame->pgno = kInvalidPage;
  evictions_.Inc();
  reg_evictions_->Inc();
  shard->reg_evictions->Inc();
  return victim;
}

Status BufferCache::FetchPage(PageId pgno, Page** out, PageLatchMode mode) {
  Shard& shard = ShardFor(pgno);
  std::unique_lock<std::mutex> lock(shard.mu);
  bool counted_miss = false;
  // Transient waits (a live overflow copy blocking a write fault, or a
  // momentarily all-pinned shard) spin with the lock dropped; both
  // resolve as soon as some reader unpins.
  int spins = 100000;
  for (;;) {
    auto it = shard.table.find(pgno);
    if (it != shard.table.end()) {
      size_t idx = it->second;
      Frame* frame = &frames_[idx];
      if (frame->pin_count.load(std::memory_order_relaxed) == 0) {
        LruRemove(&shard, idx);
      }
      frame->pin_count.fetch_add(1, std::memory_order_relaxed);
      hits_.Inc();
      reg_hits_->Inc();
      shard.reg_hits->Inc();
      // The pin taken above keeps the frame resident, so it is safe to
      // block on the content latch with the shard unlocked (lock order:
      // never wait on a latch while holding a shard mutex).
      lock.unlock();
      AcquireLatch(frame, mode);
      *out = &frame->page;
      return Status::OK();
    }
    auto of_it = shard.overflow.find(pgno);
    if (of_it != shard.overflow.end()) {
      if (mode == PageLatchMode::kShared) {
        OverflowFrame* of = of_it->second.get();
        ++of->pins;
        hits_.Inc();
        reg_hits_->Inc();
        shard.reg_hits->Inc();
        // No latch: the copy is immutable (kShared readers only, write
        // faults wait it out), so the pin alone is enough.
        *out = &of->page;
        return Status::OK();
      }
      // A write fault must wait out a live transient copy: a page must
      // never be resident twice (the unpin path resolves by page number,
      // and a reader on the stale copy could miss the edit).
      if (--spins < 0) return Status::Busy("buffer cache: page bypassed");
      lock.unlock();
      std::this_thread::yield();
      lock.lock();
      continue;
    }
    if (!counted_miss) {
      counted_miss = true;
      misses_.Inc();
      reg_misses_->Inc();
      shard.reg_misses->Inc();
    }
    // Only a shared-latch (read) fault may bypass: an exclusive or
    // latch-free fetch may dirty the page, and a transient copy's edits
    // would be lost at unpin.
    bool read_only = mode == PageLatchMode::kShared;
    Result<size_t> victim = FindVictim(&shard, /*allow_flush=*/!read_only);
    if (!victim.ok()) {
      if (victim.status().IsBusy() && --spins >= 0) {
        lock.unlock();
        std::this_thread::yield();
        lock.lock();
        continue;
      }
      return victim.status();
    }
    if (victim.value() == kNil) {
      // Clean-frame drought: serve the read from a transient heap frame
      // that dies at unpin, leaving the resident set — and with it the
      // dirty write-out schedule — untouched.
      auto of = std::make_unique<OverflowFrame>();
      Status s = disk_->ReadPage(pgno, &of->page);
      if (!s.ok()) return s;
      for (IoHook* hook : hooks_) {
        CDB_RETURN_IF_ERROR(hook->OnPageRead(pgno, of->page));
      }
      of->pins = 1;
      *out = &of->page;
      shard.overflow.emplace(pgno, std::move(of));
      reg_read_bypasses_->Inc();
      return Status::OK();
    }
    size_t idx = victim.value();
    Frame* frame = &frames_[idx];
    Status s = disk_->ReadPage(pgno, &frame->page);
    if (!s.ok()) {
      shard.free_list.push_back(idx);
      return s;
    }
    for (IoHook* hook : hooks_) {
      Status hs = hook->OnPageRead(pgno, frame->page);
      if (!hs.ok()) {
        shard.free_list.push_back(idx);
        return hs;
      }
    }
    frame->pgno = pgno;
    frame->dirty = false;
    frame->marked = false;
    frame->pin_count.store(1, std::memory_order_relaxed);
    shard.table[pgno] = idx;
    // Uncontended: the frame was free or just evicted at pin_count == 0,
    // and every latch holder keeps a pin, so the latch cannot be held.
    AcquireLatch(frame, mode);
    *out = &frame->page;
    return Status::OK();
  }
}

Result<PageId> BufferCache::NewPage(Page** out, PageLatchMode mode) {
  Result<PageId> alloc = disk_->AllocatePage();
  if (!alloc.ok()) return alloc.status();
  PageId pgno = alloc.value();
  Shard& shard = ShardFor(pgno);
  std::unique_lock<std::mutex> lock(shard.mu);
  Result<size_t> victim = FindVictim(&shard, /*allow_flush=*/true);
  int spins = 100000;
  while (!victim.ok() && victim.status().IsBusy() && --spins >= 0) {
    lock.unlock();
    std::this_thread::yield();
    lock.lock();
    victim = FindVictim(&shard, /*allow_flush=*/true);
  }
  if (!victim.ok()) return victim.status();
  size_t idx = victim.value();
  Frame* frame = &frames_[idx];
  frame->page.Zero();
  frame->pgno = pgno;
  SetDirty(&shard, frame);
  frame->marked = false;
  frame->pin_count.store(1, std::memory_order_relaxed);
  shard.table[pgno] = idx;
  AcquireLatch(frame, mode);  // uncontended, same argument as FetchPage
  *out = &frame->page;
  return pgno;
}

void BufferCache::Unpin(PageId pgno, bool dirty, PageLatchMode mode) {
  Shard& shard = ShardFor(pgno);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.table.find(pgno);
  if (it == shard.table.end()) {
    // A bypassed read: transient frames only serve kShared fetches
    // (dirty is never set on them) and die with their last pin.
    auto of_it = shard.overflow.find(pgno);
    if (of_it == shard.overflow.end()) return;
    OverflowFrame* of = of_it->second.get();
    if (--of->pins <= 0) shard.overflow.erase(of_it);
    return;
  }
  size_t idx = it->second;
  Frame* frame = &frames_[idx];
  // Release the latch before the pin so "pin_count == 0 implies latch
  // free" holds at every instant the shard mutex is released.
  ReleaseLatch(frame, mode);
  if (dirty) SetDirty(&shard, frame);
  if (frame->pin_count.load(std::memory_order_relaxed) > 0) {
    frame->pin_count.fetch_sub(1, std::memory_order_relaxed);
  }
  if (frame->pin_count.load(std::memory_order_relaxed) == 0) {
    LruPushMru(&shard, idx);
  }
}

Status BufferCache::FlushPage(PageId pgno) {
  Shard& shard = ShardFor(pgno);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.table.find(pgno);
  if (it == shard.table.end()) return Status::OK();
  Frame* frame = &frames_[it->second];
  if (!frame->dirty) return Status::OK();
  return WriteOut(frame);
}

// Whole-cache operations hold every shard mutex (index order) for their
// full duration: the collected batch must stay stable against concurrent
// reader-side evictions, which could otherwise recycle a collected frame
// for a different page between collection and pwrite.

Status BufferCache::FlushAllLocked() {
  std::vector<size_t> batch;
  for (size_t i = 0; i < capacity_; ++i) {
    Frame& frame = frames_[i];
    if (frame.pgno != kInvalidPage && frame.dirty) batch.push_back(i);
  }
  // Page order, not frame order: which frame holds a page depends on the
  // eviction history, which thread timing can perturb; the flushed L
  // record sequence must not.
  std::sort(batch.begin(), batch.end(), [&](size_t a, size_t b) {
    return frames_[a].pgno < frames_[b].pgno;
  });
  return WriteOutBatch(batch);
}

Status BufferCache::FlushAll() {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) locks.emplace_back(shards_[s].mu);
  CDB_RETURN_IF_ERROR(FlushAllLocked());
  return disk_->Sync();
}

Status BufferCache::CheckpointIfNeeded() {
  if (!checkpoint_pending_.load(std::memory_order_relaxed)) {
    return Status::OK();
  }
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) locks.emplace_back(shards_[s].mu);
  checkpoint_pending_.store(false, std::memory_order_relaxed);
  // Re-verify under the locks: an epoch flush may have drained the dirty
  // set since the flag was raised.
  bool need = false;
  for (size_t s = 0; s < num_shards_; ++s) {
    if (shards_[s].dirty >= shards_[s].checkpoint_at) {
      need = true;
      break;
    }
  }
  if (!need) return Status::OK();
  reg_checkpoints_->Inc();
  return FlushAllLocked();
}

Status BufferCache::FlushMarkedAndRemark() {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) locks.emplace_back(shards_[s].mu);
  std::vector<size_t> batch;
  for (size_t i = 0; i < capacity_; ++i) {
    Frame& frame = frames_[i];
    if (frame.pgno == kInvalidPage) continue;
    if (frame.dirty && frame.marked) batch.push_back(i);
  }
  // Same page-order rule as FlushAllLocked.
  std::sort(batch.begin(), batch.end(), [&](size_t a, size_t b) {
    return frames_[a].pgno < frames_[b].pgno;
  });
  CDB_RETURN_IF_ERROR(WriteOutBatch(batch));
  for (size_t idx : batch) {
    reg_page_forces_->Inc();
    obs::TraceRing::Global().Emit(obs::TraceEventType::kPageForce,
                                  frames_[idx].pgno);
  }
  for (size_t i = 0; i < capacity_; ++i) {
    Frame& frame = frames_[i];
    if (frame.pgno == kInvalidPage) continue;
    frame.marked = frame.dirty;
  }
  return Status::OK();
}

Status BufferCache::DropAll() {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) locks.emplace_back(shards_[s].mu);
  CDB_RETURN_IF_ERROR(FlushAllLocked());
  CDB_RETURN_IF_ERROR(disk_->Sync());
  for (size_t i = 0; i < capacity_; ++i) {
    if (frames_[i].pin_count.load(std::memory_order_relaxed) > 0) {
      return Status::Busy("buffer cache: cannot drop pinned frame");
    }
  }
  for (size_t s = 0; s < num_shards_; ++s) {
    if (!shards_[s].overflow.empty()) {
      return Status::Busy("buffer cache: cannot drop bypassed page");
    }
  }
  size_t base = capacity_ / num_shards_;
  size_t extra = capacity_ % num_shards_;
  size_t first = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    size_t count = base + (s < extra ? 1 : 0);
    Shard& shard = shards_[s];
    shard.table.clear();
    shard.free_list.clear();
    shard.lru_head = kNil;
    shard.lru_tail = kNil;
    shard.dirty = 0;
    for (size_t i = first + count; i-- > first;) {
      Frame& frame = frames_[i];
      frame.pgno = kInvalidPage;
      frame.dirty = false;
      frame.marked = false;
      frame.pin_count.store(0, std::memory_order_relaxed);
      frame.lru_prev = kNil;
      frame.lru_next = kNil;
      frame.in_lru = false;
      shard.free_list.push_back(i);
    }
    first += count;
  }
  return Status::OK();
}

size_t BufferCache::dirty_count() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) locks.emplace_back(shards_[s].mu);
  size_t n = 0;
  for (size_t i = 0; i < capacity_; ++i) {
    const Frame& frame = frames_[i];
    if (frame.pgno != kInvalidPage && frame.dirty) ++n;
  }
  return n;
}

}  // namespace complydb
