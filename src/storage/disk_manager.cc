#include "storage/disk_manager.h"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace complydb {

DiskManager::DiskManager(std::string path, std::FILE* file, PageId page_count)
    : path_(std::move(path)), file_(file), page_count_(page_count) {
  auto& reg = obs::MetricsRegistry::Global();
  reg_reads_ = reg.GetCounter("storage.disk.reads");
  reg_writes_ = reg.GetCounter("storage.disk.writes");
  reg_read_us_ = reg.GetHistogram("storage.disk.read_us");
  reg_write_us_ = reg.GetHistogram("storage.disk.write_us");
}

Result<DiskManager*> DiskManager::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    f = std::fopen(path.c_str(), "w+b");
  }
  if (f == nullptr) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("seek " + path);
  }
  long size = std::ftell(f);
  if (size < 0 || static_cast<size_t>(size) % kPageSize != 0) {
    std::fclose(f);
    return Status::Corruption("db file size not page-aligned: " + path);
  }
  return new DiskManager(path, f, static_cast<PageId>(size / kPageSize));
}

DiskManager::~DiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

void DiskManager::SimulateLatency() const {
  if (latency_micros_ == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(latency_micros_));
}

Status DiskManager::ReadPage(PageId pgno, Page* page) {
  if (pgno >= page_count_) return Status::InvalidArgument("pgno out of range");
  obs::ScopedLatencyTimer timer(reg_read_us_);
  SimulateLatency();
  if (std::fseek(file_, static_cast<long>(pgno) * kPageSize, SEEK_SET) != 0) {
    return Status::IOError("seek for read");
  }
  size_t n = std::fread(page->data(), 1, kPageSize, file_);
  if (n != kPageSize) return Status::IOError("short page read");
  reads_.Inc();
  reg_reads_->Inc();
  return Status::OK();
}

Status DiskManager::WritePage(PageId pgno, const Page& page) {
  if (pgno >= page_count_) return Status::InvalidArgument("pgno out of range");
  obs::ScopedLatencyTimer timer(reg_write_us_);
  SimulateLatency();
  if (std::fseek(file_, static_cast<long>(pgno) * kPageSize, SEEK_SET) != 0) {
    return Status::IOError("seek for write");
  }
  size_t n = std::fwrite(page.data(), 1, kPageSize, file_);
  if (n != kPageSize) return Status::IOError("short page write");
  if (std::fflush(file_) != 0) return Status::IOError("flush page write");
  writes_.Inc();
  reg_writes_->Inc();
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  Page zero;
  PageId pgno = page_count_;
  if (std::fseek(file_, static_cast<long>(pgno) * kPageSize, SEEK_SET) != 0) {
    return Status::IOError("seek for allocate");
  }
  size_t n = std::fwrite(zero.data(), 1, kPageSize, file_);
  if (n != kPageSize) return Status::IOError("short allocate write");
  if (std::fflush(file_) != 0) return Status::IOError("flush allocate");
  ++page_count_;
  return pgno;
}

Status DiskManager::Sync() {
  if (std::fflush(file_) != 0) return Status::IOError("sync flush");
  return Status::OK();
}

}  // namespace complydb
