#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace complydb {

namespace {

// Full-page positional read; retries partial transfers and EINTR.
bool PReadFull(int fd, void* buf, size_t len, off_t offset) {
  auto* p = static_cast<uint8_t*>(buf);
  while (len > 0) {
    ssize_t n = ::pread(fd, p, len, offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // unexpected EOF
    p += n;
    len -= static_cast<size_t>(n);
    offset += n;
  }
  return true;
}

bool PWriteFull(int fd, const void* buf, size_t len, off_t offset) {
  const auto* p = static_cast<const uint8_t*>(buf);
  while (len > 0) {
    ssize_t n = ::pwrite(fd, p, len, offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<size_t>(n);
    offset += n;
  }
  return true;
}

}  // namespace

DiskManager::DiskManager(std::string path, int fd, PageId page_count)
    : path_(std::move(path)), fd_(fd), page_count_(page_count) {
  auto& reg = obs::MetricsRegistry::Global();
  reg_reads_ = reg.GetCounter("storage.disk.reads");
  reg_writes_ = reg.GetCounter("storage.disk.writes");
  reg_read_us_ = reg.GetHistogram("storage.disk.read_us");
  reg_write_us_ = reg.GetHistogram("storage.disk.write_us");
}

Result<DiskManager*> DiskManager::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("stat " + path);
  }
  if (st.st_size < 0 || static_cast<size_t>(st.st_size) % kPageSize != 0) {
    ::close(fd);
    return Status::Corruption("db file size not page-aligned: " + path);
  }
  return new DiskManager(path, fd,
                         static_cast<PageId>(st.st_size / kPageSize));
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

void DiskManager::SimulateLatency(uint64_t micros) {
  if (micros == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

Status DiskManager::ReadPage(PageId pgno, Page* page) {
  if (pgno >= PageCount()) return Status::InvalidArgument("pgno out of range");
  obs::ScopedLatencyTimer timer(reg_read_us_);
  SimulateLatency(read_latency_micros_);
  if (!PReadFull(fd_, page->data(), kPageSize,
                 static_cast<off_t>(pgno) * kPageSize)) {
    return Status::IOError("short page read");
  }
  reads_.Inc();
  reg_reads_->Inc();
  return Status::OK();
}

Status DiskManager::WritePage(PageId pgno, const Page& page) {
  if (pgno >= PageCount()) return Status::InvalidArgument("pgno out of range");
  obs::ScopedLatencyTimer timer(reg_write_us_);
  SimulateLatency(write_latency_micros_);
  if (!PWriteFull(fd_, page.data(), kPageSize,
                  static_cast<off_t>(pgno) * kPageSize)) {
    return Status::IOError("short page write");
  }
  writes_.Inc();
  reg_writes_->Inc();
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  Page zero;
  PageId pgno = PageCount();
  if (!PWriteFull(fd_, zero.data(), kPageSize,
                  static_cast<off_t>(pgno) * kPageSize)) {
    return Status::IOError("short allocate write");
  }
  page_count_.store(pgno + 1, std::memory_order_release);
  return pgno;
}

Status DiskManager::Sync() {
  // The FILE*-era implementation only flushed userspace buffers; with raw
  // pread/pwrite there is nothing buffered in userspace, so Sync is a
  // no-op kept for call-site symmetry (durability is the WORM's job in
  // this architecture — the db file is untrusted either way).
  return Status::OK();
}

}  // namespace complydb
