#ifndef COMPLYDB_STORAGE_PAGE_H_
#define COMPLYDB_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace complydb {

using PageId = uint32_t;
using Lsn = uint64_t;

/// Page 0 is the database meta page; kInvalidPage marks "no page".
constexpr PageId kInvalidPage = 0xFFFFFFFFu;
constexpr PageId kMetaPage = 0;

constexpr size_t kPageSize = 4096;
constexpr uint32_t kPageMagic = 0xC0DBDA7Au;

enum class PageType : uint8_t {
  kFree = 0,
  kMeta = 1,
  kBtreeLeaf = 2,
  kBtreeInternal = 3,
};

/// A 4 KB slotted page.
///
/// Layout:
///   [0,40)                 header (see accessors)
///   [40, 40+2*slots)       slot directory, u16 record offsets, in order
///   [heap_off, kPageSize)  record heap, grows downward
///
/// Records are opaque byte strings to this class; the B+-tree module
/// defines tuple and index-entry encodings on top. EraseRecord compacts the
/// heap immediately, so there are never dead bytes between records — this
/// matters for the compliance logger, whose page diffs must see exactly the
/// live record set.
class Page {
 public:
  static constexpr size_t kHeaderSize = 40;

  Page() { Zero(); }

  void Zero() { data_.fill(0); }

  char* data() { return data_.data(); }
  const char* data() const { return data_.data(); }
  Slice AsSlice() const { return Slice(data_.data(), kPageSize); }

  bool IsFormatted() const;

  /// Formats a blank page of the given type.
  void Format(PageId pgno, PageType type, uint32_t tree_id, uint8_t level);

  // --- header accessors ---
  uint32_t magic() const;
  PageId pgno() const;
  void set_pgno(PageId p);
  Lsn lsn() const;
  void set_lsn(Lsn lsn);
  PageType type() const;
  void set_type(PageType t);
  uint8_t level() const;
  void set_level(uint8_t l);
  uint16_t slot_count() const;
  uint16_t next_order_number() const;
  /// Returns the next order number and increments the stored counter.
  uint16_t TakeOrderNumber();
  void set_next_order_number(uint16_t n);
  PageId right_sibling() const;
  void set_right_sibling(PageId p);
  uint32_t tree_id() const;
  void set_tree_id(uint32_t id);

  // --- record operations ---
  /// Bytes available for one more record (accounts for its slot entry).
  size_t FreeSpace() const;

  /// Record bytes at the given slot (0 <= slot < slot_count()).
  Slice RecordAt(uint16_t slot) const;

  /// Inserts a record so it occupies slot `slot`, shifting later slots.
  /// Fails with kBusy if the page is full (caller splits).
  Status InsertRecord(uint16_t slot, Slice record);

  /// Appends a record at the end of the slot directory.
  Status AppendRecord(Slice record);

  /// Removes the record at `slot`, compacting the heap.
  Status EraseRecord(uint16_t slot);

  /// Replaces the record at `slot` with `record` (sizes may differ).
  Status ReplaceRecord(uint16_t slot, Slice record);

  /// All records, in slot order (copies).
  std::vector<std::string> AllRecords() const;

  /// Structural sanity of the header + slot directory: magic, offsets in
  /// bounds, no overlapping records. This is the "integrity checker" the
  /// paper notes most commercial DBMSs have (§IV-C).
  Status CheckStructure() const;

 private:
  uint16_t heap_off() const;
  void set_heap_off(uint16_t v);
  void set_slot_count(uint16_t v);
  uint16_t SlotOffset(uint16_t slot) const;
  void SetSlotOffset(uint16_t slot, uint16_t off);

  std::array<char, kPageSize> data_;
};

}  // namespace complydb

#endif  // COMPLYDB_STORAGE_PAGE_H_
