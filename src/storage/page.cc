#include "storage/page.h"

#include <algorithm>
#include <utility>

#include "common/coding.h"

namespace complydb {

namespace {
// Header field offsets.
constexpr size_t kOffMagic = 0;
constexpr size_t kOffPgno = 4;
constexpr size_t kOffLsn = 8;
constexpr size_t kOffType = 16;
constexpr size_t kOffLevel = 17;
constexpr size_t kOffSlotCount = 18;
constexpr size_t kOffHeapOff = 20;
constexpr size_t kOffNextOrder = 22;
constexpr size_t kOffRightSibling = 24;
constexpr size_t kOffTreeId = 28;
// 32..40 reserved.
}  // namespace

bool Page::IsFormatted() const { return magic() == kPageMagic; }

void Page::Format(PageId pgno, PageType type, uint32_t tree_id, uint8_t level) {
  Zero();
  EncodeFixed32(data_.data() + kOffMagic, kPageMagic);
  EncodeFixed32(data_.data() + kOffPgno, pgno);
  EncodeFixed64(data_.data() + kOffLsn, 0);
  data_[kOffType] = static_cast<char>(type);
  data_[kOffLevel] = static_cast<char>(level);
  EncodeFixed16(data_.data() + kOffSlotCount, 0);
  EncodeFixed16(data_.data() + kOffHeapOff, static_cast<uint16_t>(kPageSize));
  EncodeFixed16(data_.data() + kOffNextOrder, 0);
  EncodeFixed32(data_.data() + kOffRightSibling, kInvalidPage);
  EncodeFixed32(data_.data() + kOffTreeId, tree_id);
}

uint32_t Page::magic() const { return DecodeFixed32(data_.data() + kOffMagic); }
PageId Page::pgno() const { return DecodeFixed32(data_.data() + kOffPgno); }
void Page::set_pgno(PageId p) { EncodeFixed32(data_.data() + kOffPgno, p); }
Lsn Page::lsn() const { return DecodeFixed64(data_.data() + kOffLsn); }
void Page::set_lsn(Lsn lsn) { EncodeFixed64(data_.data() + kOffLsn, lsn); }

PageType Page::type() const {
  return static_cast<PageType>(static_cast<uint8_t>(data_[kOffType]));
}
void Page::set_type(PageType t) { data_[kOffType] = static_cast<char>(t); }
uint8_t Page::level() const { return static_cast<uint8_t>(data_[kOffLevel]); }
void Page::set_level(uint8_t l) { data_[kOffLevel] = static_cast<char>(l); }

uint16_t Page::slot_count() const {
  return DecodeFixed16(data_.data() + kOffSlotCount);
}
void Page::set_slot_count(uint16_t v) {
  EncodeFixed16(data_.data() + kOffSlotCount, v);
}

uint16_t Page::next_order_number() const {
  return DecodeFixed16(data_.data() + kOffNextOrder);
}
void Page::set_next_order_number(uint16_t n) {
  EncodeFixed16(data_.data() + kOffNextOrder, n);
}
uint16_t Page::TakeOrderNumber() {
  uint16_t n = next_order_number();
  set_next_order_number(static_cast<uint16_t>(n + 1));
  return n;
}

PageId Page::right_sibling() const {
  return DecodeFixed32(data_.data() + kOffRightSibling);
}
void Page::set_right_sibling(PageId p) {
  EncodeFixed32(data_.data() + kOffRightSibling, p);
}

uint32_t Page::tree_id() const {
  return DecodeFixed32(data_.data() + kOffTreeId);
}
void Page::set_tree_id(uint32_t id) {
  EncodeFixed32(data_.data() + kOffTreeId, id);
}

uint16_t Page::heap_off() const {
  return DecodeFixed16(data_.data() + kOffHeapOff);
}
void Page::set_heap_off(uint16_t v) {
  EncodeFixed16(data_.data() + kOffHeapOff, v);
}

uint16_t Page::SlotOffset(uint16_t slot) const {
  return DecodeFixed16(data_.data() + kHeaderSize + 2 * slot);
}
void Page::SetSlotOffset(uint16_t slot, uint16_t off) {
  EncodeFixed16(data_.data() + kHeaderSize + 2 * slot, off);
}

size_t Page::FreeSpace() const {
  size_t slots_end = kHeaderSize + 2 * static_cast<size_t>(slot_count());
  size_t heap = heap_off();
  size_t gap = heap > slots_end ? heap - slots_end : 0;
  // One more record needs its bytes plus a 2-byte slot.
  return gap > 2 ? gap - 2 : 0;
}

Slice Page::RecordAt(uint16_t slot) const {
  uint16_t off = SlotOffset(slot);
  uint16_t len = DecodeFixed16(data_.data() + off);
  return Slice(data_.data() + off, len);
}

Status Page::InsertRecord(uint16_t slot, Slice record) {
  if (record.size() < 2 || record.size() > kPageSize) {
    return Status::InvalidArgument("record size");
  }
  if (DecodeFixed16(record.data()) != record.size()) {
    return Status::InvalidArgument("record length prefix mismatch");
  }
  uint16_t count = slot_count();
  if (slot > count) return Status::InvalidArgument("slot out of range");
  if (FreeSpace() < record.size()) return Status::Busy("page full");

  uint16_t heap = heap_off();
  uint16_t new_off = static_cast<uint16_t>(heap - record.size());
  std::memcpy(data_.data() + new_off, record.data(), record.size());
  set_heap_off(new_off);

  // Shift slot entries [slot, count) one position right.
  for (uint16_t i = count; i > slot; --i) {
    SetSlotOffset(i, SlotOffset(static_cast<uint16_t>(i - 1)));
  }
  SetSlotOffset(slot, new_off);
  set_slot_count(static_cast<uint16_t>(count + 1));
  return Status::OK();
}

Status Page::AppendRecord(Slice record) {
  return InsertRecord(slot_count(), record);
}

Status Page::EraseRecord(uint16_t slot) {
  uint16_t count = slot_count();
  if (slot >= count) return Status::InvalidArgument("slot out of range");
  uint16_t off = SlotOffset(slot);
  uint16_t len = DecodeFixed16(data_.data() + off);
  uint16_t heap = heap_off();

  // Compact: move heap bytes [heap, off) up by len.
  std::memmove(data_.data() + heap + len, data_.data() + heap,
               static_cast<size_t>(off - heap));
  set_heap_off(static_cast<uint16_t>(heap + len));

  // Fix up slot offsets pointing below the erased record, and close the
  // slot directory gap.
  for (uint16_t i = 0; i < count; ++i) {
    if (i == slot) continue;
    uint16_t o = SlotOffset(i);
    if (o < off) SetSlotOffset(i, static_cast<uint16_t>(o + len));
  }
  for (uint16_t i = slot; i + 1 < count; ++i) {
    SetSlotOffset(i, SlotOffset(static_cast<uint16_t>(i + 1)));
  }
  set_slot_count(static_cast<uint16_t>(count - 1));
  return Status::OK();
}

Status Page::ReplaceRecord(uint16_t slot, Slice record) {
  CDB_RETURN_IF_ERROR(EraseRecord(slot));
  return InsertRecord(slot, record);
}

std::vector<std::string> Page::AllRecords() const {
  std::vector<std::string> out;
  uint16_t count = slot_count();
  out.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    Slice r = RecordAt(i);
    out.emplace_back(r.data(), r.size());
  }
  return out;
}

Status Page::CheckStructure() const {
  if (magic() != kPageMagic) return Status::Corruption("bad page magic");
  uint16_t count = slot_count();
  size_t slots_end = kHeaderSize + 2 * static_cast<size_t>(count);
  uint16_t heap = heap_off();
  if (slots_end > heap || heap > kPageSize) {
    return Status::Corruption("slot directory overlaps heap");
  }
  // Records must tile [heap, kPageSize) without overlap. Collect offsets.
  std::vector<std::pair<uint16_t, uint16_t>> extents;  // (off, len)
  size_t total = 0;
  for (uint16_t i = 0; i < count; ++i) {
    uint16_t off = SlotOffset(i);
    // The record's 2-byte length prefix must itself lie inside the page.
    if (off < heap || static_cast<size_t>(off) + 2 > kPageSize) {
      return Status::Corruption("slot offset out of heap");
    }
    uint16_t len = DecodeFixed16(data_.data() + off);
    if (len < 2 || off + static_cast<size_t>(len) > kPageSize) {
      return Status::Corruption("record extends past page end");
    }
    extents.emplace_back(off, len);
    total += len;
  }
  if (total != kPageSize - heap) {
    return Status::Corruption("heap bytes not fully covered by records");
  }
  std::sort(extents.begin(), extents.end());
  size_t expect = heap;
  for (auto [off, len] : extents) {
    if (off != expect) return Status::Corruption("record overlap or gap");
    expect = off + len;
  }
  return Status::OK();
}

}  // namespace complydb
