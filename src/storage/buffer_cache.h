#ifndef COMPLYDB_STORAGE_BUFFER_CACHE_H_
#define COMPLYDB_STORAGE_BUFFER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/io_hook.h"
#include "storage/page.h"

namespace complydb {

/// Latch to take on the fetched frame's contents. kNone preserves the
/// original single-threaded contract (pin only); concurrent callers pair
/// kShared reads with kExclusive mutations so a reader never observes a
/// half-applied page edit.
enum class PageLatchMode { kNone, kShared, kExclusive };

/// Fixed-capacity LRU buffer cache with a *steal / no-force* policy:
/// dirty pages of uncommitted transactions may reach disk (steal — this is
/// what creates the UNDO cases of paper §IV-B), and commit does not flush
/// (no-force — a crash may lose the pwrite of a committed tuple, which is
/// why the transaction-log tail lives on WORM).
///
/// Dirty write-out happens only at *deterministic flush points*: the
/// regret-cycle FlushMarkedAndRemark, the dirty-threshold checkpoint
/// (CheckpointIfNeeded, driven by per-shard dirty counts that only writes
/// move), and — last resort — a whole-shard flush when a write fault finds
/// no clean frame. Eviction itself only ever recycles clean frames, and a
/// shared-latch (read) fault that finds none bypasses the cache through a
/// transient overflow frame. This is what makes the compliance log L a
/// pure function of the applied write sequence: concurrent slot-execute
/// reads may shuffle the LRU and warm or cool any page, but they can never
/// move a compliance-visible page image to WORM at a thread-dependent
/// time.
///
/// Every disk crossing runs the registered IoHooks; the compliance logger
/// observes the database exclusively through this seam.
///
/// Regret-interval support (§IV-A): MarkDirtyPages() stamps the current
/// dirty set, FlushMarked() writes out pages stamped in the *previous*
/// cycle — "we enforce this by marking all dirty pages once every regret
/// interval, after calling pwrite on all dirty pages that were marked
/// during the previous cycle."
///
/// Thread safety: the frame table, free list, and intrusive LRU are split
/// into `shards` independent shards keyed by PageId (power of two, each
/// with its own mutex), so pins, unpins, and evictions in different shards
/// never serialize on one lock. Page *contents* are protected by a
/// per-frame reader/writer latch selected via PageLatchMode. Lock order:
/// a thread may block on a frame latch only while holding no shard mutex
/// (the miss path acquires the latch on a freshly-installed frame, which
/// is uncontended because eviction requires pin_count == 0 and every latch
/// holder keeps a pin). Whole-cache operations (FlushAll,
/// FlushMarkedAndRemark, DropAll, dirty_count) take every shard mutex in
/// index order, which also keeps the write-out batch stable against
/// concurrent reader-side evictions.
class BufferCache {
 public:
  /// `shards` is rounded down to a power of two and clamped to
  /// [1, capacity]. The default of 1 preserves the exact global-LRU
  /// eviction order of the original cache (tests and the auditor rely on
  /// it); the DB facade picks a wider value for concurrent workloads.
  BufferCache(DiskManager* disk, size_t capacity, size_t shards = 1);

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  /// Hooks run in registration order on every read and write. Not
  /// synchronized: register all hooks before concurrent use. Hooks may be
  /// invoked from any thread that triggers a disk crossing (including
  /// reader-side evictions), so they must be internally thread-safe.
  void AddHook(IoHook* hook) { hooks_.push_back(hook); }

  /// Pins the page (fetching from disk on a miss), acquires the requested
  /// latch, and returns a pointer valid until Unpin.
  Status FetchPage(PageId pgno, Page** out,
                   PageLatchMode mode = PageLatchMode::kNone);

  /// Allocates a fresh page, pins it zeroed; caller formats it.
  Result<PageId> NewPage(Page** out,
                         PageLatchMode mode = PageLatchMode::kNone);

  /// Releases the latch taken at fetch (`mode` must match) and unpins.
  void Unpin(PageId pgno, bool dirty,
             PageLatchMode mode = PageLatchMode::kNone);

  Status FlushPage(PageId pgno);
  Status FlushAll();

  /// Regret-interval cycle: flush everything marked last cycle, then mark
  /// the currently dirty pages for the next one.
  Status FlushMarkedAndRemark();

  /// Dirty-threshold checkpoint: when any shard's dirty count has crossed
  /// half its frame budget, flush every dirty page (page order). Callers
  /// invoke this at commit/abort boundaries — points that occur at the
  /// same logical position in every execution schedule — so the flush
  /// batches land at identical L offsets regardless of thread count.
  /// Cheap when no threshold was crossed (one relaxed load).
  Status CheckpointIfNeeded();

  /// Drops all unpinned frames (dirty frames are flushed first). Used to
  /// simulate a cold cache / restart so reads hit the disk image again.
  Status DropAll();

  size_t capacity() const { return capacity_; }
  size_t shards() const { return num_shards_; }
  uint64_t hits() const { return hits_.Value(); }
  uint64_t misses() const { return misses_.Value(); }
  uint64_t evictions() const { return evictions_.Value(); }
  size_t dirty_count() const;

  DiskManager* disk() const { return disk_; }

 private:
  static constexpr size_t kNil = static_cast<size_t>(-1);

  struct Frame {
    Page page;
    PageId pgno = kInvalidPage;  // kInvalidPage = not resident
    bool dirty = false;          // guarded by the owning shard's mutex
    bool marked = false;         // guarded by the owning shard's mutex
    std::atomic<int> pin_count{0};
    /// Content latch. Acquired only through PageLatchMode fetches; every
    /// holder also holds a pin, so pin_count == 0 implies the latch is
    /// free (what makes eviction safe).
    std::shared_mutex latch;
    // Intrusive LRU list links (frame indices). Only unpinned resident
    // frames are on the list; head is the eviction candidate, tail the
    // most recently unpinned.
    size_t lru_prev = kNil;
    size_t lru_next = kNil;
    bool in_lru = false;
  };

  /// A transient frame for a read fault that found no clean victim: the
  /// page is served from a heap copy that is dropped at unpin, so the
  /// resident set — and with it the dirty write-out schedule — stays
  /// untouched by read pressure. No content latch: overflow frames only
  /// ever serve kShared fetches and a write fault waits out the copy
  /// rather than touching it, so the copy is immutable for its whole
  /// lifetime (the shard mutex publishes the filled page to later pins).
  struct OverflowFrame {
    Page page;
    int pins = 0;
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<PageId, size_t> table;
    std::unordered_map<PageId, std::unique_ptr<OverflowFrame>> overflow;
    std::vector<size_t> free_list;
    size_t lru_head = kNil;
    size_t lru_tail = kNil;
    size_t frame_count = 0;   // static budget of this shard
    size_t dirty = 0;         // resident dirty frames; guarded by mu
    size_t checkpoint_at = 0; // dirty >= this requests a checkpoint
    obs::Counter* reg_hits = nullptr;
    obs::Counter* reg_misses = nullptr;
    obs::Counter* reg_evictions = nullptr;
  };

  Shard& ShardFor(PageId pgno) {
    return shards_[static_cast<size_t>(pgno) & shard_mask_];
  }
  const Shard& ShardFor(PageId pgno) const {
    return shards_[static_cast<size_t>(pgno) & shard_mask_];
  }

  void AcquireLatch(Frame* frame, PageLatchMode mode);
  static void ReleaseLatch(Frame* frame, PageLatchMode mode);

  Status WriteOut(Frame* frame);
  Status WriteOutBatch(const std::vector<size_t>& batch);
  void SetDirty(Shard* shard, Frame* frame);
  void SetClean(Frame* frame);
  /// Requires the shard's mutex. Returns a recycled clean frame index, or
  /// kNil when the shard holds no clean unpinned frame and `allow_flush`
  /// is false (the caller bypasses). With `allow_flush`, a clean-frame
  /// drought triggers a whole-shard dirty flush (page order) first.
  Result<size_t> FindVictim(Shard* shard, bool allow_flush);
  /// Collect + batch-write every dirty resident frame; requires all shard
  /// mutexes (DropAll composes it with the reset under one lock scope).
  Status FlushAllLocked();
  void LruRemove(Shard* shard, size_t idx);
  void LruPushMru(Shard* shard, size_t idx);
  void LruPushLru(Shard* shard, size_t idx);

  DiskManager* disk_;
  size_t capacity_;
  size_t num_shards_;
  size_t shard_mask_;
  std::unique_ptr<Frame[]> frames_;
  std::unique_ptr<Shard[]> shards_;
  std::vector<IoHook*> hooks_;
  // Per-instance counts (the DbStats/accessor contract); the process-wide
  // registry aggregates the same events across instances under
  // storage.cache.* (with per-shard breakdowns under
  // storage.cache.shard<i>.*).
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Counter* reg_hits_;
  obs::Counter* reg_misses_;
  obs::Counter* reg_evictions_;
  obs::Counter* reg_page_forces_;
  obs::Counter* reg_latch_waits_;
  obs::Counter* reg_checkpoints_;
  obs::Counter* reg_shard_flushes_;
  obs::Counter* reg_read_bypasses_;
  obs::Histogram* reg_latch_wait_us_;
  /// Set under a shard mutex when that shard's dirty count crosses its
  /// checkpoint threshold; consumed by CheckpointIfNeeded. Dirty counts
  /// move only on the (serial) write path, so the flag's history is a
  /// pure function of the applied write sequence.
  std::atomic<bool> checkpoint_pending_{false};
};

/// RAII pin guard. Carries the latch mode taken at fetch so Release pairs
/// the matching unlock with the unpin.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferCache* cache, PageId pgno, Page* page,
            PageLatchMode mode = PageLatchMode::kNone)
      : cache_(cache), pgno_(pgno), page_(page), mode_(mode) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Release();
      cache_ = o.cache_;
      pgno_ = o.pgno_;
      page_ = o.page_;
      dirty_ = o.dirty_;
      mode_ = o.mode_;
      o.cache_ = nullptr;
      o.page_ = nullptr;
      o.dirty_ = false;
      o.mode_ = PageLatchMode::kNone;
    }
    return *this;
  }

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  PageId pgno() const { return pgno_; }
  void MarkDirty() { dirty_ = true; }
  bool dirty() const { return dirty_; }
  bool valid() const { return page_ != nullptr; }

  void Release() {
    if (cache_ != nullptr && page_ != nullptr) {
      cache_->Unpin(pgno_, dirty_, mode_);
      cache_ = nullptr;
      page_ = nullptr;
      dirty_ = false;
      mode_ = PageLatchMode::kNone;
    }
  }

 private:
  BufferCache* cache_ = nullptr;
  PageId pgno_ = kInvalidPage;
  Page* page_ = nullptr;
  bool dirty_ = false;
  PageLatchMode mode_ = PageLatchMode::kNone;
};

}  // namespace complydb

#endif  // COMPLYDB_STORAGE_BUFFER_CACHE_H_
