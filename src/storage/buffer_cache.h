#ifndef COMPLYDB_STORAGE_BUFFER_CACHE_H_
#define COMPLYDB_STORAGE_BUFFER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/io_hook.h"
#include "storage/page.h"

namespace complydb {

/// Fixed-capacity LRU buffer cache with a *steal / no-force* policy:
/// dirty pages of uncommitted transactions may be evicted (steal — this is
/// what creates the UNDO cases of paper §IV-B), and commit does not flush
/// (no-force — a crash may lose the pwrite of a committed tuple, which is
/// why the transaction-log tail lives on WORM).
///
/// Every disk crossing runs the registered IoHooks; the compliance logger
/// observes the database exclusively through this seam.
///
/// Regret-interval support (§IV-A): MarkDirtyPages() stamps the current
/// dirty set, FlushMarked() writes out pages stamped in the *previous*
/// cycle — "we enforce this by marking all dirty pages once every regret
/// interval, after calling pwrite on all dirty pages that were marked
/// during the previous cycle."
class BufferCache {
 public:
  BufferCache(DiskManager* disk, size_t capacity);

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  /// Hooks run in registration order on every read and write.
  void AddHook(IoHook* hook) { hooks_.push_back(hook); }

  /// Pins the page (fetching from disk on a miss) and returns a pointer
  /// valid until Unpin.
  Status FetchPage(PageId pgno, Page** out);

  /// Allocates a fresh page, pins it zeroed; caller formats it.
  Result<PageId> NewPage(Page** out);

  void Unpin(PageId pgno, bool dirty);

  Status FlushPage(PageId pgno);
  Status FlushAll();

  /// Regret-interval cycle: flush everything marked last cycle, then mark
  /// the currently dirty pages for the next one.
  Status FlushMarkedAndRemark();

  /// Drops all unpinned frames (dirty frames are flushed first). Used to
  /// simulate a cold cache / restart so reads hit the disk image again.
  Status DropAll();

  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_.Value(); }
  uint64_t misses() const { return misses_.Value(); }
  uint64_t evictions() const { return evictions_.Value(); }
  size_t dirty_count() const;

  DiskManager* disk() const { return disk_; }

 private:
  static constexpr size_t kNil = static_cast<size_t>(-1);

  struct Frame {
    Page page;
    PageId pgno = kInvalidPage;
    bool dirty = false;
    bool marked = false;
    int pin_count = 0;
    // Intrusive LRU list links (frame indices). Only unpinned resident
    // frames are on the list; head is the eviction candidate, tail the
    // most recently unpinned.
    size_t lru_prev = kNil;
    size_t lru_next = kNil;
    bool in_lru = false;
  };

  Status WriteOut(Frame* frame);
  Status WriteOutBatch(const std::vector<size_t>& batch);
  Result<size_t> FindVictim();
  void LruRemove(size_t idx);
  void LruPushMru(size_t idx);
  void LruPushLru(size_t idx);

  DiskManager* disk_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> table_;
  std::vector<size_t> free_list_;
  std::vector<IoHook*> hooks_;
  size_t lru_head_ = kNil;
  size_t lru_tail_ = kNil;
  // Per-instance counts (the DbStats/accessor contract); the process-wide
  // registry aggregates the same events across instances under
  // storage.cache.*.
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Counter* reg_hits_;
  obs::Counter* reg_misses_;
  obs::Counter* reg_evictions_;
  obs::Counter* reg_page_forces_;
};

/// RAII pin guard.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferCache* cache, PageId pgno, Page* page)
      : cache_(cache), pgno_(pgno), page_(page) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Release();
      cache_ = o.cache_;
      pgno_ = o.pgno_;
      page_ = o.page_;
      dirty_ = o.dirty_;
      o.cache_ = nullptr;
      o.page_ = nullptr;
    }
    return *this;
  }

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  PageId pgno() const { return pgno_; }
  void MarkDirty() { dirty_ = true; }
  bool valid() const { return page_ != nullptr; }

  void Release() {
    if (cache_ != nullptr && page_ != nullptr) {
      cache_->Unpin(pgno_, dirty_);
      cache_ = nullptr;
      page_ = nullptr;
    }
  }

 private:
  BufferCache* cache_ = nullptr;
  PageId pgno_ = kInvalidPage;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace complydb

#endif  // COMPLYDB_STORAGE_BUFFER_CACHE_H_
