#include "shred/expiry.h"

#include "common/coding.h"

namespace complydb {

std::string ExpiryPolicy::KeyFor(uint32_t tree_id) {
  std::string key;
  PutBigEndian32(&key, tree_id);
  return key;
}

std::string ExpiryPolicy::EncodeRetention(uint64_t retention_micros) {
  std::string value;
  PutFixed64(&value, retention_micros);
  return value;
}

Result<uint64_t> ExpiryPolicy::Current(uint32_t tree_id) const {
  TupleData t;
  CDB_RETURN_IF_ERROR(tree_->GetLatest(KeyFor(tree_id), &t));
  if (t.value.size() != 8) return Status::Corruption("bad retention value");
  return DecodeFixed64(t.value.data());
}

Result<uint64_t> ExpiryPolicy::At(uint32_t tree_id, uint64_t at_time) const {
  std::vector<TupleData> versions;
  CDB_RETURN_IF_ERROR(tree_->GetVersions(KeyFor(tree_id), &versions));
  const TupleData* best = nullptr;
  for (const auto& v : versions) {
    if (!v.stamped) continue;
    if (v.start <= at_time && (best == nullptr || v.start >= best->start)) {
      best = &v;
    }
  }
  if (best == nullptr || best->eol) {
    return Status::NotFound("no retention policy in force");
  }
  if (best->value.size() != 8) {
    return Status::Corruption("bad retention value");
  }
  return DecodeFixed64(best->value.data());
}

}  // namespace complydb
