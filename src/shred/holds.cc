#include "shred/holds.h"

#include <limits>

#include "common/coding.h"

namespace complydb {

std::string LitigationHolds::KeyFor(uint32_t tree_id, Slice key_prefix) {
  std::string key;
  PutBigEndian32(&key, tree_id);
  key.append(key_prefix.data(), key_prefix.size());
  return key;
}

Result<bool> LitigationHolds::IsHeld(uint32_t tree_id, Slice key,
                                     uint64_t at_time) const {
  // Candidate holds for this tree are the hold keys that are prefixes of
  // (tree_id || key). Scan the tree's hold range and test each hold key
  // for the prefix property; hold counts are tiny in practice.
  std::string begin = KeyFor(tree_id, Slice());
  std::string end = KeyFor(tree_id + 1, Slice());
  std::string probe = KeyFor(tree_id, key);

  bool held = false;
  std::string current_key;
  const TupleData* best = nullptr;
  TupleData best_copy;
  uint64_t best_time = 0;

  auto consider_group = [&]() {
    if (best != nullptr && !best->eol) held = true;
    best = nullptr;
    best_time = 0;
  };

  CDB_RETURN_IF_ERROR(tree_->ScanVersionsInRange(
      begin, end, [&](const TupleData& t) -> Status {
        // Hold key must be a prefix of the probe.
        if (t.key.size() > probe.size() ||
            probe.compare(0, t.key.size(), t.key) != 0) {
          return Status::OK();
        }
        if (t.key != current_key) {
          consider_group();
          current_key = t.key;
        }
        // Latest version with commit time <= at_time. Holds are stamped
        // promptly (the facade stamps before vacuum/audit); unstamped
        // versions are conservatively treated as active-now only.
        uint64_t commit = t.start;
        if (!t.stamped && at_time != std::numeric_limits<uint64_t>::max()) {
          return Status::OK();
        }
        if (commit <= at_time && (best == nullptr || commit >= best_time)) {
          best_copy = t;
          best = &best_copy;
          best_time = commit;
        }
        return Status::OK();
      }));
  consider_group();
  return held;
}

Result<bool> LitigationHolds::IsHeldNow(uint32_t tree_id, Slice key) const {
  return IsHeld(tree_id, key, std::numeric_limits<uint64_t>::max());
}

}  // namespace complydb
