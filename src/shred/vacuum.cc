#include "shred/vacuum.h"

#include <vector>

#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace complydb {

namespace {

struct Victim {
  std::string key;
  uint64_t start = 0;
  PageId pgno = kInvalidPage;
  std::string record_bytes;
};

struct ShredMetrics {
  obs::Counter* runs;
  obs::Counter* tuples_shredded;
  obs::Counter* held;
  ShredMetrics() {
    auto& reg = obs::MetricsRegistry::Global();
    runs = reg.GetCounter("shred.vacuum_runs");
    tuples_shredded = reg.GetCounter("shred.tuples_shredded");
    held = reg.GetCounter("shred.held_tuples");
  }
};
ShredMetrics& Sm() {
  static ShredMetrics m;
  return m;
}

void EmitVacuumTrace(uint32_t tree_id, const VacuumReport& report) {
  Sm().tuples_shredded->Inc(report.shredded);
  Sm().held->Inc(report.held);
  obs::TraceRing::Global().Emit(obs::TraceEventType::kVacuumShred, tree_id,
                                report.shredded);
}

}  // namespace

Result<VacuumReport> Vacuumer::Run(Btree* tree, uint64_t last_audit_time) {
  VacuumReport report;
  Sm().runs->Inc();
  uint64_t now = now_fn_();

  auto retention = expiry_->Current(tree->tree_id());
  if (!retention.ok()) return retention.status();
  uint64_t keep = retention.value();

  // Pass 1: find expired versions. Versions of a key are adjacent in scan
  // order, so "superseded" falls out of pairwise comparison.
  std::vector<Victim> victims;
  struct Prev {
    bool valid = false;
    TupleData tuple;
    PageId pgno = kInvalidPage;
  } prev;

  auto consider_superseded = [&](const Prev& old, const TupleData& successor) {
    if (!old.valid || !old.tuple.stamped || !successor.stamped) return;
    uint64_t end_time = successor.start;
    if (end_time > last_audit_time) return;  // not yet through an audit
    if (end_time + keep > now) return;       // still under retention
    Victim v;
    v.key = old.tuple.key;
    v.start = old.tuple.start;
    v.pgno = old.pgno;
    v.record_bytes = EncodeTuple(old.tuple);
    victims.push_back(std::move(v));
  };
  auto consider_eol_marker = [&](const Prev& old) {
    // A trailing EOL marker expires relative to its own time.
    if (!old.valid || !old.tuple.eol || !old.tuple.stamped) return;
    uint64_t end_time = old.tuple.start;
    if (end_time > last_audit_time) return;
    if (end_time + keep > now) return;
    Victim v;
    v.key = old.tuple.key;
    v.start = old.tuple.start;
    v.pgno = old.pgno;
    v.record_bytes = EncodeTuple(old.tuple);
    victims.push_back(std::move(v));
  };

  CDB_RETURN_IF_ERROR(
      tree->ScanAll([&](PageId pgno, const TupleData& t) -> Status {
        if (prev.valid && prev.tuple.key == t.key) {
          consider_superseded(prev, t);
        } else if (prev.valid) {
          consider_eol_marker(prev);
        }
        prev.valid = true;
        prev.tuple = t;
        prev.pgno = pgno;
        return Status::OK();
      }));
  if (prev.valid) consider_eol_marker(prev);
  report.candidates = victims.size();

  // Pass 2: announce on WORM, then erase. The SHREDDED record must be
  // durable before the tuple disappears (§VIII).
  TxnWalContext sys;
  sys.txn_id = 0;
  sys.log = wal_;
  for (const auto& v : victims) {
    // Litigation holds (§IX): subpoenaed tuples must not be shredded,
    // expired or not.
    if (holds_ != nullptr) {
      auto held = holds_->IsHeldNow(tree->tree_id(), v.key);
      if (!held.ok()) return held.status();
      if (held.value()) {
        ++report.held;
        continue;
      }
    }
    Sha256Digest digest = Sha256::Hash(v.record_bytes);
    if (logger_ != nullptr) {
      CDB_RETURN_IF_ERROR(logger_->OnShredIntent(
          tree->tree_id(), v.key, v.start, v.pgno,
          Slice(reinterpret_cast<const char*>(digest.data()), digest.size()),
          now));
    }
    CDB_RETURN_IF_ERROR(
        tree->RemoveVersion(&sys, v.key, v.start, /*as_clr=*/false, 0));
    ++report.shredded;
  }
  if (wal_ != nullptr) CDB_RETURN_IF_ERROR(wal_->FlushAll());
  EmitVacuumTrace(tree->tree_id(), report);
  return report;
}

Result<VacuumReport> Vacuumer::RunHistorical(Btree* tree,
                                             HistoricalStore* hist,
                                             uint64_t last_audit_time) {
  VacuumReport report;
  uint64_t now = now_fn_();
  auto retention = expiry_->Current(tree->tree_id());
  if (!retention.ok()) return retention.status();
  uint64_t keep = retention.value();

  for (const auto& file : hist->FilesFor(tree->tree_id())) {
    std::vector<TupleData> tuples = hist->FileTuples(file);
    if (tuples.empty()) continue;
    bool all_expired = true;
    for (const auto& t : tuples) {
      ++report.candidates;
      // End of life: the successor version's start, found in the full
      // merged history (live tree + historical index).
      uint64_t end_time = t.eol ? t.start : 0;
      if (end_time == 0) {
        for (const auto& v : hist->GetVersions(tree->tree_id(), t.key)) {
          if (v.start > t.start && (end_time == 0 || v.start < end_time)) {
            end_time = v.start;
          }
        }
        std::vector<TupleData> live;
        CDB_RETURN_IF_ERROR(tree->GetVersions(t.key, &live));
        for (const auto& v : live) {
          if (v.start > t.start && (end_time == 0 || v.start < end_time)) {
            end_time = v.start;
          }
        }
      }
      if (end_time == 0 || end_time > last_audit_time ||
          end_time + keep > now) {
        all_expired = false;
        break;
      }
      if (holds_ != nullptr) {
        auto held = holds_->IsHeldNow(tree->tree_id(), t.key);
        if (!held.ok()) return held.status();
        if (held.value()) {
          ++report.held;
          all_expired = false;
          break;
        }
      }
    }
    if (!all_expired) continue;

    for (const auto& t : tuples) {
      std::string record = EncodeTuple(t);
      Sha256Digest digest = Sha256::Hash(record);
      if (logger_ != nullptr) {
        CDB_RETURN_IF_ERROR(logger_->OnShredIntent(
            tree->tree_id(), t.key, t.start, kInvalidPage,
            Slice(reinterpret_cast<const char*>(digest.data()),
                  digest.size()),
            now, file));
      }
      ++report.shredded;
    }
    CDB_RETURN_IF_ERROR(hist->DropFile(file));
  }
  EmitVacuumTrace(tree->tree_id(), report);
  return report;
}

Result<VacuumReport> Vacuumer::Recheck(
    ComplianceLog* log, const std::map<uint32_t, Btree*>& trees) {
  VacuumReport report;
  if (log == nullptr) return report;
  TxnWalContext sys;
  sys.txn_id = 0;
  sys.log = wal_;
  CDB_RETURN_IF_ERROR(log->Scan([&](const CRecord& rec, uint64_t) -> Status {
    if (rec.type != CRecordType::kShredded) return Status::OK();
    auto it = trees.find(rec.tree_id);
    if (it == trees.end()) return Status::OK();
    Status s = it->second->RemoveVersion(&sys, rec.key, rec.start,
                                         /*as_clr=*/false, 0);
    if (s.ok()) {
      ++report.requeued;
    } else if (!s.IsNotFound()) {
      return s;
    }
    return Status::OK();
  }));
  if (wal_ != nullptr && report.requeued > 0) {
    CDB_RETURN_IF_ERROR(wal_->FlushAll());
  }
  return report;
}

}  // namespace complydb
