#ifndef COMPLYDB_SHRED_EXPIRY_H_
#define COMPLYDB_SHRED_EXPIRY_H_

#include <cstdint>
#include <string>

#include "btree/btree.h"
#include "common/status.h"

namespace complydb {

/// The Expiry relation (paper §VIII): one retention period per relation,
/// stored as ordinary transaction-time tuples in a dedicated tree — so
/// retention-policy changes are themselves versioned, audited, and
/// tamper-evident. Key: big-endian tree id; value: retention micros.
class ExpiryPolicy {
 public:
  explicit ExpiryPolicy(Btree* expiry_tree) : tree_(expiry_tree) {}

  static std::string KeyFor(uint32_t tree_id);
  static std::string EncodeRetention(uint64_t retention_micros);

  /// Retention currently in force for `tree_id`; NotFound if none set.
  Result<uint64_t> Current(uint32_t tree_id) const;

  /// Retention in force at `at_time` (resolved over the version history;
  /// only stamped versions participate). NotFound if none was set by then.
  Result<uint64_t> At(uint32_t tree_id, uint64_t at_time) const;

  Btree* tree() const { return tree_; }

 private:
  Btree* tree_;
};

}  // namespace complydb

#endif  // COMPLYDB_SHRED_EXPIRY_H_
