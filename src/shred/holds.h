#ifndef COMPLYDB_SHRED_HOLDS_H_
#define COMPLYDB_SHRED_HOLDS_H_

#include <cstdint>
#include <string>

#include "btree/btree.h"
#include "common/status.h"

namespace complydb {

/// Litigation holds — the paper's §IX future work: "support for
/// 'litigation holds', which ensure that subpoenaed but expired tuples
/// are not shredded."
///
/// A hold names a (relation, key-prefix) scope. Holds are stored as
/// ordinary transaction-time tuples in a dedicated tree, so placing and
/// releasing them is versioned, audited, and tamper-evident — the
/// auditor can establish exactly which holds were in force at any shred
/// timestamp, and a vacuum that destroyed subpoenaed data fails the
/// audit even if the vacuum process itself was compromised.
///
/// Key encoding: big-endian tree id || prefix bytes. An active hold is a
/// live (non-EOL) tuple; releasing a hold deletes it (EOL version), so
/// its full activation history remains queryable.
class LitigationHolds {
 public:
  explicit LitigationHolds(Btree* holds_tree) : tree_(holds_tree) {}

  static std::string KeyFor(uint32_t tree_id, Slice key_prefix);

  /// True if some hold covering (tree_id, key) was active at `at_time`
  /// (active: its latest version with commit time <= at_time is not
  /// end-of-life). Prefix semantics: a hold on "acct" covers "acct-42".
  Result<bool> IsHeld(uint32_t tree_id, Slice key, uint64_t at_time) const;

  /// Convenience: held right now (max timestamp).
  Result<bool> IsHeldNow(uint32_t tree_id, Slice key) const;

  Btree* tree() const { return tree_; }

 private:
  Btree* tree_;
};

}  // namespace complydb

#endif  // COMPLYDB_SHRED_HOLDS_H_
