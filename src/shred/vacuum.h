#ifndef COMPLYDB_SHRED_VACUUM_H_
#define COMPLYDB_SHRED_VACUUM_H_

#include <cstdint>
#include <functional>

#include "btree/btree.h"
#include "common/clock.h"
#include "common/status.h"
#include "compliance/logger.h"
#include "shred/expiry.h"
#include "shred/holds.h"
#include "tsb/tsb_policy.h"
#include "wal/log_manager.h"

namespace complydb {

struct VacuumReport {
  uint64_t candidates = 0;  // expired versions found
  uint64_t shredded = 0;    // versions announced and physically erased
  uint64_t requeued = 0;    // re-vacuumed after a crash (Recheck)
  uint64_t held = 0;        // expired but protected by a litigation hold
};

/// Auditable shredding (paper §VIII): a version is vacuumable when
///  - it is stamped (committed) and was captured by the last audit's
///    snapshot (tuples are retained through at least one audit),
///  - its life has ended — it is superseded by a stamped successor, or it
///    is an end-of-life marker — and
///  - end-of-life + retention <= now, under the Expiry policy.
///
/// Protocol per victim: a SHREDDED record (tuple id, page, content hash,
/// timestamp) reaches WORM *first*; only then is the version physically
/// erased. The erase surfaces in L as an ordinary UNDO at the next pwrite,
/// which the auditor justifies against the SHREDDED record.
class Vacuumer {
 public:
  /// `now_fn` supplies the shred timestamp; it must be >= every commit
  /// time already issued (under a simulated clock, transaction ticks can
  /// run ahead of wall time, and a shred time-stamped behind a hold's
  /// release commit would look hold-violating to the auditor).
  Vacuumer(LogManager* wal, ComplianceLogger* logger,
           std::function<uint64_t()> now_fn, const ExpiryPolicy* expiry,
           const LitigationHolds* holds = nullptr)
      : wal_(wal),
        logger_(logger),
        now_fn_(std::move(now_fn)),
        expiry_(expiry),
        holds_(holds) {}

  /// Vacuums expired versions of `tree`. `last_audit_time`: only versions
  /// whose life ended at or before this time are eligible.
  Result<VacuumReport> Run(Btree* tree, uint64_t last_audit_time);

  /// Shreds whole WORM historical pages (§VIII final paragraph): a file
  /// whose every tuple has expired (and none is under hold) is announced
  /// tuple-by-tuple on L with the file name, dropped from the temporal
  /// index, and physically deleted by the auditor after verification —
  /// "the unit of deletion on WORM is an entire file."
  Result<VacuumReport> RunHistorical(Btree* tree, HistoricalStore* hist,
                                     uint64_t last_audit_time);

  /// Post-crash completion: any tuple named by a SHREDDED record in L but
  /// still present is erased ("the simplest implementation is just to
  /// re-vacuum after recovery").
  Result<VacuumReport> Recheck(ComplianceLog* log,
                               const std::map<uint32_t, Btree*>& trees);

 private:
  LogManager* wal_;
  ComplianceLogger* logger_;
  std::function<uint64_t()> now_fn_;
  const ExpiryPolicy* expiry_;
  const LitigationHolds* holds_;
};

}  // namespace complydb

#endif  // COMPLYDB_SHRED_VACUUM_H_
