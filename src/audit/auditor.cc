#include "audit/auditor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>

#include "audit/epoch_chain.h"
#include "btree/integrity.h"
#include "btree/tuple.h"
#include "common/coding.h"
#include "common/thread_pool.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "storage/buffer_cache.h"

namespace complydb {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct AuditMetrics {
  obs::Counter* runs;
  obs::Counter* pages_checked;
  obs::Counter* tuples_checked;
  obs::Counter* problems;
  obs::Histogram* snapshot_us;
  obs::Histogram* summarize_us;
  obs::Histogram* replay_us;
  obs::Histogram* final_state_us;
  obs::Histogram* index_check_us;
  obs::Histogram* total_us;
  AuditMetrics() {
    auto& reg = obs::MetricsRegistry::Global();
    runs = reg.GetCounter("audit.runs");
    pages_checked = reg.GetCounter("audit.pages_checked");
    tuples_checked = reg.GetCounter("audit.tuples_checked");
    problems = reg.GetCounter("audit.problems");
    snapshot_us = reg.GetHistogram("audit.phase.snapshot_us");
    summarize_us = reg.GetHistogram("audit.phase.summarize_us");
    replay_us = reg.GetHistogram("audit.phase.replay_us");
    final_state_us = reg.GetHistogram("audit.phase.final_state_us");
    index_check_us = reg.GetHistogram("audit.phase.index_check_us");
    total_us = reg.GetHistogram("audit.phase.total_us");
  }
};
AuditMetrics& Am() {
  static AuditMetrics m;
  return m;
}

// Records one audit-phase timing in the histogram, the trace ring, and
// the span ring (span causal key = the audited epoch).
void RecordPhase(obs::AuditPhase phase, obs::Histogram* hist, double seconds,
                 uint64_t epoch) {
  auto micros = static_cast<uint64_t>(seconds * 1e6);
  hist->Record(micros);
  obs::TraceRing::Global().Emit(obs::TraceEventType::kAuditPhase,
                                static_cast<uint64_t>(phase), micros);
  if (obs::SpansEnabled()) {
    uint64_t end = obs::MonotonicMicros();
    obs::SpanRing::Global().Emit(obs::SpanKind::kAuditPhase, epoch,
                                 end > micros ? end - micros : 0, end,
                                 static_cast<uint64_t>(phase));
  }
}

std::string HashBytes(Slice s) {
  auto d = Sha256::Hash(s);
  return std::string(reinterpret_cast<const char*>(d.data()), d.size());
}

}  // namespace

Result<AuditReport> Auditor::Audit(uint64_t epoch, bool write_snapshot) {
  AuditReport report;
  Am().runs->Inc();
  auto t_total = std::chrono::steady_clock::now();
  auto problem = [&](const std::string& what) {
    report.problems.push_back(what);
  };

  // Worker pool for the replay, final-state, and index-check phases.
  // num_threads == 1 keeps every phase on the caller thread (the serial
  // reference path); either way the report comes out byte-identical.
  const uint32_t nthreads =
      options_.num_threads == 0
          ? static_cast<uint32_t>(ThreadPool::DefaultThreads())
          : options_.num_threads;
  report.threads_used = nthreads;
  std::unique_ptr<ThreadPool> pool;
  if (nthreads > 1) pool = std::make_unique<ThreadPool>(nthreads);

  // ---------------------------------------------------------------- 1.
  // Previous snapshot (signed by the last audit). Epoch 0 starts empty.
  auto t0 = std::chrono::steady_clock::now();
  Snapshot prev;
  bool have_prev = worm_->Exists(SnapshotFileName(epoch));
  if (have_prev) {
    auto r = Snapshot::ReadVerified(worm_, epoch, options_.auditor_key);
    if (!r.ok()) {
      problem("previous snapshot: " + r.status().ToString());
      return report;
    }
    prev = r.TakeValue();
  }
  report.timings.snapshot_seconds = SecondsSince(t0);
  RecordPhase(obs::AuditPhase::kSnapshot, Am().snapshot_us,
              report.timings.snapshot_seconds, epoch);

  // ---------------------------------------------------------------- 2.
  // Prepass over L: transaction outcomes, shreds, duplicate/conflict
  // checks, liveness-interval checks.
  t0 = std::chrono::steady_clock::now();
  // One read of L serves every pass below (the paper's audit is I/O-bound
  // on exactly this scan).
  ComplianceLog log(worm_, epoch);
  Status open = log.OpenExisting();
  if (!open.ok()) {
    problem("compliance log: " + open.ToString());
    return report;
  }
  report.log_records = log.record_count();
  std::string log_blob;
  Status read_log = worm_->ReadAll(LogFileName(epoch), &log_blob);
  if (!read_log.ok()) {
    problem("compliance log read: " + read_log.ToString());
    return report;
  }

  LogSummary summary;
  Status sum = SummarizeLogBlob(log_blob, &summary);
  if (!sum.ok()) {
    problem("compliance log scan: " + sum.ToString());
    return report;
  }
  for (const auto& p : summary.problems) problem("log summary: " + p);

  // Commit times must be strictly increasing, and every commit time must
  // fall inside a *witnessed-alive* window. The evidence is WORM file
  // create times (witness files, log tails, the logs themselves): the
  // compliance clock stamps them and Mala cannot backdate a file creation,
  // so she cannot fabricate STAMP_TRANS records for transactions that
  // supposedly ran while the system was down (paper §IV-A/§IV-B —
  // witness files "stand as witness that the DBMS was alive").
  {
    std::vector<uint64_t> evidence;
    for (const auto& name : worm_->List()) {
      auto info = worm_->GetInfo(name);
      if (info.ok()) evidence.push_back(info.value().create_time_micros);
    }
    std::sort(evidence.begin(), evidence.end());
    uint64_t allow = options_.gap_slack * options_.regret_interval_micros;
    auto witnessed = [&](uint64_t t) {
      auto it = std::lower_bound(evidence.begin(), evidence.end(),
                                 t > allow ? t - allow : 0);
      return it != evidence.end() && *it <= t + allow;
    };
    uint64_t prev_commit = 0;
    Status s = ScanCRecords(log_blob, [&](const CRecord& rec,
                                          uint64_t off) -> Status {
      if (rec.type != CRecordType::kStampTrans) return Status::OK();
      if (rec.commit_time <= prev_commit) {
        problem("offset " + std::to_string(off) +
                ": commit times not strictly increasing (txn " +
                std::to_string(rec.txn_id) + " commit " +
                std::to_string(rec.commit_time) + " after commit " +
                std::to_string(prev_commit) + ")");
      }
      prev_commit = std::max(prev_commit, rec.commit_time);
      if (!witnessed(rec.commit_time)) {
        problem("offset " + std::to_string(off) +
                ": commit time lies in an unwitnessed interval (forged "
                "transaction during downtime?)");
      }
      return Status::OK();
    });
    if (!s.ok()) problem("interval scan: " + s.ToString());
  }

  // Cross-check the auxiliary stamp index against the STAMP_TRANS records.
  {
    Status s = log.ScanStampIndex(
        [&](TxnId txn, uint64_t, uint64_t commit) -> Status {
          auto it = summary.stamps.find(txn);
          if (it == summary.stamps.end() || it->second != commit) {
            problem("stamp index entry for txn " + std::to_string(txn) +
                    " disagrees with L");
          }
          return Status::OK();
        });
    if (!s.ok()) problem("stamp index: " + s.ToString());
  }
  report.timings.summarize_seconds = SecondsSince(t0);
  RecordPhase(obs::AuditPhase::kSummarize, Am().summarize_us,
              report.timings.summarize_seconds, epoch);

  // ---------------------------------------------------------------- 3.
  // Single-pass replay of L (the heart of the audit): reconstructs the
  // expected content of every live leaf page, verifying splits,
  // migrations, UNDO justification, and — under hash-page-on-read — the
  // Hs of every page every transaction read.
  t0 = std::chrono::steady_clock::now();
  PageReplayer::Options ropts;
  ropts.verify = true;
  ropts.verify_read_hashes = options_.verify_read_hashes;
  PageReplayer replayer(ropts, &summary);
  if (nthreads <= 1) {
    for (const auto& page : prev.pages) {
      replayer.SeedPage(page.tree_id, page.pgno, page.records);
    }
    for (const auto& page : prev.index_pages) {
      replayer.SeedIndexPage(page.tree_id, page.pgno, page.records);
    }
    Status rs = ScanCRecords(log_blob, [&](const CRecord& rec, uint64_t off) {
      return replayer.Apply(rec, off);
    });
    if (!rs.ok()) problem("replay: " + rs.ToString());
  } else {
    // Sharded replay: each worker scans the whole of L but applies only
    // the records for pages its shard owns; per-page record order is the
    // log order either way, so every shard sees exactly the serial
    // history of its pages. The merge re-establishes global order.
    std::vector<std::unique_ptr<PageReplayer>> shards;
    std::vector<Status> shard_status(nthreads, Status::OK());
    shards.reserve(nthreads);
    for (uint32_t i = 0; i < nthreads; ++i) {
      PageReplayer::Options sopts = ropts;
      sopts.shard_index = i;
      sopts.shard_count = nthreads;
      shards.push_back(std::make_unique<PageReplayer>(sopts, &summary));
    }
    pool->ParallelFor(0, nthreads, [&](size_t i) {
      PageReplayer* shard = shards[i].get();
      for (const auto& page : prev.pages) {
        shard->SeedPage(page.tree_id, page.pgno, page.records);
      }
      for (const auto& page : prev.index_pages) {
        shard->SeedIndexPage(page.tree_id, page.pgno, page.records);
      }
      shard_status[i] =
          ScanCRecords(log_blob, [&](const CRecord& rec, uint64_t off) {
            return shard->Apply(rec, off);
          });
    });
    // Every shard scans the same blob, so a decode failure is identical
    // across shards; report it once, as the serial path would.
    for (uint32_t i = 0; i < nthreads; ++i) {
      if (!shard_status[i].ok()) {
        problem("replay: " + shard_status[i].ToString());
        break;
      }
    }
    for (auto& shard : shards) {
      replayer.AbsorbShard(std::move(*shard));
    }
    replayer.FinishMerge();
  }
  Status fs = replayer.Finalize();
  if (!fs.ok()) problem("replay finalize: " + fs.ToString());
  for (const auto& p : replayer.problems()) problem(p);
  report.read_hashes_checked = replayer.read_hashes_checked();
  report.timings.replay_seconds = SecondsSince(t0);
  RecordPhase(obs::AuditPhase::kReplay, Am().replay_us,
              report.timings.replay_seconds, epoch);

  // Tree catalog: snapshot trees plus trees created this epoch.
  std::map<uint32_t, Snapshot::TreeInfo> trees;
  for (const auto& t : prev.trees) trees[t.tree_id] = t;
  {
    Status s = ScanCRecords(log_blob, [&](const CRecord& rec,
                                          uint64_t) -> Status {
      if (rec.type == CRecordType::kNewTree) {
        Snapshot::TreeInfo info;
        info.tree_id = rec.tree_id;
        info.root = rec.pgno;
        info.name = rec.key;
        trees[rec.tree_id] = info;
      }
      return Status::OK();
    });
    if (!s.ok()) problem("tree scan: " + s.ToString());
  }

  // ---------------------------------------------------------------- 4.
  // Final database state: every replayed page must match the disk page
  // record-for-record, every on-disk leaf must be accounted for (spurious
  // unlogged tuples fail the audit), and every tuple must be stamped.
  t0 = std::chrono::steady_clock::now();
  BufferCache cache(disk_, 256);  // hook-free: the auditor's own cache
  AddHash disk_identity_hash;
  std::set<std::pair<uint32_t, PageId>> disk_leaves;
  std::set<std::pair<uint32_t, PageId>> disk_index_leaves;
  std::map<std::pair<uint32_t, PageId>, PageReplayer::PageState> disk_states;
  // Version timelines for keys named by SHREDDED records (to establish
  // when each shredded version's life ended).
  std::set<std::pair<uint32_t, std::string>> shred_keys;
  for (const auto& s : summary.shreds) shred_keys.insert({s.tree_id, s.key});
  std::map<std::pair<uint32_t, std::string>, std::vector<uint64_t>>
      shred_key_starts;

  // Everything one contiguous pgno range contributes. Workers fill their
  // own chunk; chunks are folded back together in pgno order, so the
  // merged problems, counters, and timelines equal the serial scan's.
  struct ScanChunk {
    std::vector<std::string> problems;
    uint64_t pages_checked = 0;
    uint64_t tuples_checked = 0;
    AddHash identity;
    std::vector<std::pair<uint32_t, PageId>> leaves;
    std::vector<std::pair<uint32_t, PageId>> index_leaves;
    std::map<std::pair<uint32_t, PageId>, PageReplayer::PageState> states;
    std::map<std::pair<uint32_t, std::string>, std::vector<uint64_t>>
        key_starts;
  };

  auto scan_pages = [&](PageId lo, PageId hi, BufferCache* c,
                        ScanChunk* out) {
    auto chunk_problem = [&](const std::string& what) {
      out->problems.push_back(what);
    };
    for (PageId pgno = lo; pgno < hi; ++pgno) {
      Page* page = nullptr;
      Status fetch = c->FetchPage(pgno, &page);
      if (!fetch.ok()) {
        chunk_problem("page " + std::to_string(pgno) + ": unreadable");
        continue;
      }
      Page copy = *page;
      c->Unpin(pgno, false);
      if (!copy.IsFormatted()) continue;
      if (copy.type() == PageType::kBtreeInternal) {
        // Index pages get the same replay comparison as data pages (§V).
        ++out->pages_checked;
        Status structure = copy.CheckStructure();
        if (!structure.ok()) {
          chunk_problem("index page " + std::to_string(pgno) + ": " +
                        structure.ToString());
          continue;
        }
        PageReplayer::IndexState disk_state;
        for (uint16_t i = 0; i < copy.slot_count(); ++i) {
          Slice rec = copy.RecordAt(i);
          auto key = PageReplayer::IndexEntrySortKey(rec);
          if (key.ok()) {
            disk_state[key.value()] = std::string(rec.data(), rec.size());
          }
        }
        out->index_leaves.emplace_back(copy.tree_id(), pgno);
        auto it = replayer.index_pages().find({copy.tree_id(), pgno});
        if (it == replayer.index_pages().end()) {
          chunk_problem("index page " + std::to_string(pgno) +
                        ": on-disk internal node not accounted for by "
                        "snapshot+L");
          continue;
        }
        if (it->second != disk_state) {
          chunk_problem("index page " + std::to_string(pgno) +
                        ": entries diverge from snapshot+L replay (index "
                        "tampering?)");
        }
        continue;
      }
      if (copy.type() != PageType::kBtreeLeaf) continue;

      ++out->pages_checked;
      uint32_t tree_id = copy.tree_id();
      out->leaves.emplace_back(tree_id, pgno);

      Status structure = copy.CheckStructure();
      if (!structure.ok()) {
        chunk_problem("page " + std::to_string(pgno) + ": " +
                      structure.ToString());
        continue;
      }

      PageReplayer::PageState disk_state;
      for (uint16_t i = 0; i < copy.slot_count(); ++i) {
        Slice rec = copy.RecordAt(i);
        TupleData t;
        if (!DecodeTuple(rec, &t).ok()) {
          chunk_problem("page " + std::to_string(pgno) + " slot " +
                        std::to_string(i) + ": undecodable tuple");
          continue;
        }
        ++out->tuples_checked;
        if (!t.stamped) {
          chunk_problem("page " + std::to_string(pgno) +
                        ": unstamped tuple at audit (lazy updates "
                        "incomplete)");
        }
        disk_state[t.order_no] = std::string(rec.data(), rec.size());
        if (options_.identity_hash_check) {
          auto id = TupleIdentity(tree_id, rec, summary.stamps);
          if (id.ok()) out->identity.Add(id.value());
        }
        auto sk = std::make_pair(tree_id, t.key);
        if (shred_keys.count(sk) > 0) out->key_starts[sk].push_back(t.start);
      }

      if (options_.sort_merge_check) {
        out->states[{tree_id, pgno}] = disk_state;
      }
      auto it = replayer.pages().find({tree_id, pgno});
      if (it == replayer.pages().end()) {
        chunk_problem("page " + std::to_string(pgno) +
                      ": on-disk leaf not accounted for by snapshot+L "
                      "(spurious tuples?)");
        continue;
      }
      if (it->second != disk_state) {
        // Forensics: name the differing tuples (capped) so the finding
        // points at *what* was altered, not just where.
        std::string detail;
        int shown = 0;
        auto describe = [&](const std::string& rec, const char* kind) {
          TupleData t;
          if (shown < 4 && DecodeTuple(rec, &t).ok()) {
            detail += std::string(detail.empty() ? "" : ", ") + kind +
                      " key '" + t.key + "' start " + std::to_string(t.start);
            ++shown;
          }
        };
        for (const auto& [order_no, rec] : it->second) {
          auto d = disk_state.find(order_no);
          if (d == disk_state.end()) {
            describe(rec, "missing");
          } else if (d->second != rec) {
            describe(d->second, "altered");
          }
        }
        for (const auto& [order_no, rec] : disk_state) {
          if (it->second.count(order_no) == 0) describe(rec, "foreign");
        }
        chunk_problem("page " + std::to_string(pgno) +
                      ": content diverges from snapshot+L replay (" +
                      (detail.empty() ? "structural difference" : detail) +
                      ")");
      }
    }
  };

  const PageId page_count = disk_->PageCount();
  std::vector<ScanChunk> scan_chunks;
  if (nthreads <= 1 || page_count <= 2) {
    scan_chunks.resize(1);
    scan_pages(1, page_count, &cache, &scan_chunks[0]);
  } else {
    // Chunk by pgno; each worker reads through its own small cache
    // (DiskManager uses pread, so concurrent page reads are safe).
    const size_t nchunks =
        std::min<size_t>(nthreads * 4, (page_count - 1 + 15) / 16);
    scan_chunks.resize(std::max<size_t>(nchunks, 1));
    const PageId span = page_count - 1;
    const PageId per =
        (span + static_cast<PageId>(scan_chunks.size()) - 1) /
        static_cast<PageId>(scan_chunks.size());
    pool->ParallelFor(0, scan_chunks.size(), [&](size_t ci) {
      PageId lo = 1 + static_cast<PageId>(ci) * per;
      PageId hi = std::min<PageId>(lo + per, page_count);
      if (lo >= hi) return;
      BufferCache local_cache(disk_, 64);
      scan_pages(lo, hi, &local_cache, &scan_chunks[ci]);
    });
  }
  for (auto& ch : scan_chunks) {
    for (auto& p : ch.problems) report.problems.push_back(std::move(p));
    report.pages_checked += ch.pages_checked;
    report.tuples_checked += ch.tuples_checked;
    disk_identity_hash.Merge(ch.identity);
    disk_leaves.insert(ch.leaves.begin(), ch.leaves.end());
    disk_index_leaves.insert(ch.index_leaves.begin(), ch.index_leaves.end());
    disk_states.merge(ch.states);
    for (auto& [sk, starts] : ch.key_starts) {
      auto& dst = shred_key_starts[sk];
      dst.insert(dst.end(), starts.begin(), starts.end());
    }
  }
  // Every replayed page must exist on disk.
  for (const auto& [key, state] : replayer.pages()) {
    if (disk_leaves.count(key) == 0) {
      problem("page " + std::to_string(key.second) + " of tree " +
              std::to_string(key.first) +
              " recorded in L but missing from the database");
    }
  }
  for (const auto& [key, state] : replayer.index_pages()) {
    if (state.empty()) continue;  // a leaf root that later grew
    if (disk_index_leaves.count(key) == 0) {
      problem("index page " + std::to_string(key.second) + " of tree " +
              std::to_string(key.first) +
              " recorded in L but missing from the database");
    }
  }
  report.timings.final_state_seconds = SecondsSince(t0);
  RecordPhase(obs::AuditPhase::kFinalState, Am().final_state_us,
              report.timings.final_state_seconds, epoch);

  // The on-disk catalog (meta page) is attacker-editable; it must agree
  // with the tree roots recorded on WORM (snapshots + NEW_TREE records),
  // or the engine would silently route queries into the wrong trees.
  {
    Page* meta = nullptr;
    Status fetch = cache.FetchPage(kMetaPage, &meta);
    if (fetch.ok()) {
      Page copy = *meta;
      cache.Unpin(kMetaPage, false);
      std::map<std::string, std::pair<uint32_t, PageId>> catalog;
      if (copy.type() == PageType::kMeta && copy.slot_count() > 0) {
        Slice rec = copy.RecordAt(0);
        Decoder dec(Slice(rec.data() + 2, rec.size() - 2));
        uint32_t count = 0;
        if (dec.GetFixed32(&count).ok()) {
          for (uint32_t i = 0; i < count; ++i) {
            std::string name;
            uint32_t tree_id = 0;
            uint32_t root = 0;
            if (!dec.GetLengthPrefixed(&name).ok() ||
                !dec.GetFixed32(&tree_id).ok() ||
                !dec.GetFixed32(&root).ok()) {
              problem("catalog: undecodable meta page");
              break;
            }
            catalog[name] = {tree_id, root};
          }
        }
      }
      for (const auto& [tree_id, info] : trees) {
        auto it = catalog.find(info.name);
        if (it == catalog.end()) {
          problem("catalog: tree '" + info.name +
                  "' recorded on WORM is missing from the meta page");
        } else if (it->second.first != tree_id ||
                   it->second.second != info.root) {
          problem("catalog: tree '" + info.name +
                  "' id/root diverge from the WORM record (query "
                  "misrouting?)");
        }
      }
      for (const auto& [name, ids] : catalog) {
        if (trees.count(ids.first) == 0) {
          problem("catalog: table '" + name +
                  "' exists on the meta page but was never announced on L");
        }
      }
    }
  }

  // ---------------------------------------------------------------- 5.
  // Index integrity (§IV-C, Fig. 2) per tree.
  t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::pair<uint32_t, Snapshot::TreeInfo>> tree_list(
        trees.begin(), trees.end());
    std::vector<std::vector<std::string>> tree_problems(tree_list.size());
    auto check_tree = [&](size_t i, BufferCache* c) {
      const auto& [tree_id, info] = tree_list[i];
      auto r = CheckTreeIntegrity(c, tree_id, info.root);
      if (!r.ok()) {
        tree_problems[i].push_back("tree " + std::to_string(tree_id) + ": " +
                                   r.status().ToString());
        return;
      }
      for (const auto& p : r.value().problems) {
        tree_problems[i].push_back("tree " + std::to_string(tree_id) + ": " +
                                   p);
      }
    };
    if (nthreads <= 1) {
      for (size_t i = 0; i < tree_list.size(); ++i) check_tree(i, &cache);
    } else {
      pool->ParallelFor(0, tree_list.size(), [&](size_t i) {
        BufferCache local_cache(disk_, 64);
        check_tree(i, &local_cache);
      });
    }
    // Emit in tree-id order regardless of completion order.
    for (auto& plist : tree_problems) {
      for (auto& p : plist) report.problems.push_back(std::move(p));
    }
  }
  report.timings.index_check_seconds = SecondsSince(t0);
  RecordPhase(obs::AuditPhase::kIndexCheck, Am().index_check_us,
              report.timings.index_check_seconds, epoch);

  // ---------------------------------------------------------------- 6.
  // The paper's incremental-hash completeness check (§IV-A):
  // ADD_HASH(Ds) folded with the log's net identity delta must equal
  // ADD_HASH(Df) computed from the database scan. Commutativity is what
  // lets both sides accumulate in whatever order a single pass visits
  // tuples.
  AddHash migrated_total = prev.migrated_hash;
  migrated_total.Merge(replayer.migrated_delta());
  if (options_.identity_hash_check) {
    ++report.identity_checks_run;
    AddHash expected = prev.identity_hash;
    expected.Merge(replayer.identity_delta());
    if (expected != disk_identity_hash) {
      problem(
          "tuple completeness violated: ADD_HASH(Ds u L) != ADD_HASH(Df)");
    }
  }

  // Sort-merge completeness variant (the paper's pre-ADD_HASH baseline,
  // §IV-A step (i)-(iii); kept for the audit-cost ablation): materialize
  // and sort both identity sets, then compare.
  if (options_.sort_merge_check) {
    std::vector<std::string> expected_ids;
    for (const auto& [key, state] : replayer.pages()) {
      for (const auto& [order_no, rec] : state) {
        auto id = TupleIdentity(key.first, rec, summary.stamps);
        if (id.ok()) expected_ids.push_back(id.value());
      }
    }
    std::vector<std::string> disk_ids;
    for (const auto& [key, state] : disk_states) {
      for (const auto& [order_no, rec] : state) {
        auto id = TupleIdentity(key.first, rec, summary.stamps);
        if (id.ok()) disk_ids.push_back(id.value());
      }
    }
    std::sort(expected_ids.begin(), expected_ids.end());
    std::sort(disk_ids.begin(), disk_ids.end());
    if (expected_ids != disk_ids) {
      problem("sort-merge completeness check failed");
    }
  }

  // ---------------------------------------------------------------- 7.
  // Shredding (§VIII): every SHREDDED tuple must be gone, must match its
  // recorded content hash, and must actually have expired under the
  // retention policy in force at shred time. Shreds of WORM-migrated
  // tuples name their historical page file; a file whose every tuple is
  // verified shredded becomes deletable (whole-file WORM deletion).
  std::map<std::string, std::vector<TupleData>> hist_cache;
  auto hist_tuples =
      [&](const std::string& name) -> const std::vector<TupleData>& {
    auto it = hist_cache.find(name);
    if (it == hist_cache.end()) {
      std::vector<TupleData> tuples;
      std::string blob;
      if (worm_->ReadAll(name, &blob).ok() && blob.size() == kPageSize) {
        Page page;
        std::memcpy(page.data(), blob.data(), kPageSize);
        if (page.IsFormatted() && page.CheckStructure().ok()) {
          for (uint16_t i = 0; i < page.slot_count(); ++i) {
            TupleData t;
            if (DecodeTuple(page.RecordAt(i), &t).ok()) {
              tuples.push_back(std::move(t));
            }
          }
        }
      }
      it = hist_cache.emplace(name, std::move(tuples)).first;
    }
    return it->second;
  };
  // Per historical file: how many of its tuples were shredded this epoch.
  std::map<std::string, std::set<std::pair<std::string, uint64_t>>>
      file_shreds;
  for (const auto& shred : summary.shreds) {
    ++report.shreds_verified;
    // (a) absent from the final state.
    bool still_present = false;
    for (const auto& [key, state] : replayer.pages()) {
      if (key.first != shred.tree_id) continue;
      for (const auto& [order_no, rec] : state) {
        TupleData t;
        if (DecodeTuple(rec, &t).ok() && t.key == shred.key &&
            t.start == shred.start) {
          still_present = true;
        }
      }
    }
    if (still_present) {
      problem("shredded tuple '" + shred.key +
              "' still present at audit (vacuum incomplete)");
    }
    // (b) content hash matches the version of record: the previous
    // snapshot for live tuples, the WORM historical page for migrated
    // ones (which also still exists — it is only deleted after this
    // audit verifies it).
    bool found_content = false;
    if (!shred.hist_name.empty()) {
      for (const auto& t : hist_tuples(shred.hist_name)) {
        if (t.key == shred.key && t.start == shred.start) {
          found_content = true;
          if (HashBytes(EncodeTuple(t)) != shred.content_hash) {
            problem("SHREDDED content hash mismatch for migrated '" +
                    shred.key + "'");
          }
          file_shreds[shred.hist_name].insert({shred.key, shred.start});
        }
      }
      if (!found_content) {
        problem("SHREDDED migrated tuple '" + shred.key +
                "' not found in its historical page " + shred.hist_name);
      }
    } else {
      for (const auto& page : prev.pages) {
        if (page.tree_id != shred.tree_id) continue;
        for (const auto& rec : page.records) {
          TupleData t;
          if (DecodeTuple(rec, &t).ok() && t.key == shred.key &&
              t.start == shred.start) {
            found_content = true;
            if (HashBytes(rec) != shred.content_hash) {
              problem("SHREDDED content hash mismatch for '" + shred.key +
                      "'");
            }
          }
        }
      }
      if (!found_content) {
        problem("SHREDDED tuple '" + shred.key +
                "' not found in the previous snapshot (tuples must survive "
                "at least one audit before shredding)");
      }
    }
    // (b2) no litigation hold covered the tuple at shred time (§IX).
    if (options_.hold_resolver != nullptr) {
      auto held =
          options_.hold_resolver(shred.tree_id, shred.key, shred.timestamp);
      if (held.ok() && held.value()) {
        problem("tuple '" + shred.key +
                "' was shredded while under a litigation hold");
      }
    }
    // (c) the version really had expired when it was shredded.
    if (options_.retention_resolver != nullptr) {
      uint64_t end_time = 0;
      bool have_end = false;
      std::vector<uint64_t> starts;
      auto it = shred_key_starts.find({shred.tree_id, shred.key});
      if (it != shred_key_starts.end()) starts = it->second;
      if (!shred.hist_name.empty()) {
        // The successor of a migrated version may itself live on WORM.
        for (const auto& name : worm_->ListPrefix("hist_")) {
          for (const auto& t : hist_tuples(name)) {
            if (t.key == shred.key) {
              starts.push_back(t.start);
              if (t.start == shred.start && t.eol) {
                end_time = t.start;
                have_end = true;
              }
            }
          }
        }
      }
      for (const auto& page : prev.pages) {
        if (page.tree_id != shred.tree_id) continue;
        for (const auto& rec : page.records) {
          TupleData t;
          if (DecodeTuple(rec, &t).ok() && t.key == shred.key) {
            starts.push_back(t.start);
            // An EOL marker's life ends at its own start.
            if (t.start == shred.start && t.eol) {
              end_time = t.start;
              have_end = true;
            }
          }
        }
      }
      if (!have_end) {
        uint64_t best = 0;
        for (uint64_t s : starts) {
          if (s > shred.start && (best == 0 || s < best)) best = s;
        }
        if (best != 0) {
          end_time = best;
          have_end = true;
        }
      }
      if (!have_end) {
        problem("shredded tuple '" + shred.key +
                "' was the current version (never superseded): illegal "
                "vacuum");
      } else {
        auto retention =
            options_.retention_resolver(shred.tree_id, shred.timestamp);
        if (!retention.ok()) {
          problem("no retention policy found for tree " +
                  std::to_string(shred.tree_id));
        } else if (end_time + retention.value() > shred.timestamp) {
          problem("tuple '" + shred.key +
                  "' shredded before its retention period expired");
        }
      }
    }
  }

  // Whole-file deletion (§VIII): a historical page file becomes
  // releasable once every one of its tuples has a verified SHREDDED
  // record this epoch.
  for (const auto& [file, shredded_set] : file_shreds) {
    const auto& tuples = hist_tuples(file);
    if (!tuples.empty() && shredded_set.size() == tuples.size()) {
      report.shredded_hist_files.push_back(file);
    }
  }

  // ---------------------------------------------------------------- 8.
  // Migration (§VI): each historical page must exist on WORM with exactly
  // the recorded content; verified once, then exempt from future audits.
  for (const auto& m : replayer.migrations()) {
    ++report.migrations_verified;
    std::string blob;
    Status s = worm_->ReadAll(m.hist_name, &blob);
    if (!s.ok() || blob.size() != kPageSize) {
      problem("historical page " + m.hist_name + " missing or malformed");
      continue;
    }
    Page hist;
    std::memcpy(hist.data(), blob.data(), kPageSize);
    if (!hist.IsFormatted() || !hist.CheckStructure().ok()) {
      problem("historical page " + m.hist_name + " fails integrity");
      continue;
    }
    std::vector<std::string> records = hist.AllRecords();
    if (records != m.entries) {
      problem("historical page " + m.hist_name +
              " content disagrees with MIGRATE record");
    }
  }

  // ---------------------------------------------------------------- 9.
  // WORM transaction-log tails must match the on-disk transaction log
  // (detects post-hoc WAL editing in the crash window).
  if (!options_.wal_path.empty()) {
    std::string wal_blob;
    {
      std::FILE* f = std::fopen(options_.wal_path.c_str(), "rb");
      if (f != nullptr) {
        std::fseek(f, 0, SEEK_END);
        long sz = std::ftell(f);
        std::fseek(f, 0, SEEK_SET);
        wal_blob.resize(static_cast<size_t>(sz));
        size_t n = std::fread(wal_blob.data(), 1, wal_blob.size(), f);
        wal_blob.resize(n);
        std::fclose(f);
      }
    }
    // The log file starts with its base LSN (checkpoint truncation keeps
    // LSNs logical); a tail covering LSN x maps to file offset
    // 8 + (x - base).
    uint64_t wal_base = wal_blob.size() >= 8 ? DecodeFixed64(wal_blob.data())
                                             : 0;
    for (const auto& name : worm_->ListPrefix("txtail_")) {
      std::string tail;
      if (!worm_->ReadAll(name, &tail).ok() || tail.size() < 8) continue;
      uint64_t start = DecodeFixed64(tail.data());
      Slice mirrored(tail.data() + 8, tail.size() - 8);
      if (start < wal_base) continue;  // covered by a previous audit
      uint64_t file_off = 8 + (start - wal_base);
      if (file_off + mirrored.size() > wal_blob.size() ||
          std::memcmp(wal_blob.data() + file_off, mirrored.data(),
                      mirrored.size()) != 0) {
        problem("transaction log disagrees with WORM tail " + name +
                " (log tampered or truncated)");
      }
    }
  }

  // ---------------------------------------------------------------- 10.
  // On success, sign and publish the next epoch's snapshot.
  if (write_snapshot && report.ok()) {
    Snapshot next;
    next.epoch = epoch + 1;
    // Carries forward across commit-free epochs: the audit boundary is
    // the newest commit the chain of snapshots has ever covered.
    next.audit_time = std::max(prev.audit_time, summary.last_commit_time);
    for (const auto& [tree_id, info] : trees) next.trees.push_back(info);
    for (const auto& [key, state] : replayer.pages()) {
      Snapshot::PageEntry entry;
      entry.tree_id = key.first;
      entry.pgno = key.second;
      for (const auto& [order_no, rec] : state) entry.records.push_back(rec);
      next.pages.push_back(std::move(entry));
    }
    for (const auto& [key, state] : replayer.index_pages()) {
      if (state.empty()) continue;
      Snapshot::PageEntry entry;
      entry.tree_id = key.first;
      entry.pgno = key.second;
      for (const auto& [sort_key, rec] : state) entry.records.push_back(rec);
      next.index_pages.push_back(std::move(entry));
    }
    next.identity_hash = disk_identity_hash;
    next.migrated_hash = migrated_total;
    Status s = next.WriteSigned(worm_, options_.auditor_key);
    if (!s.ok()) problem("writing snapshot: " + s.ToString());
  }

  report.timings.total_seconds = SecondsSince(t_total);
  RecordPhase(obs::AuditPhase::kTotal, Am().total_us,
              report.timings.total_seconds, epoch);
  Am().pages_checked->Inc(report.pages_checked);
  Am().tuples_checked->Inc(report.tuples_checked);
  Am().problems->Inc(report.problems.size());
  return report;
}

int AuditExitCodeForStatus(const Status& s) {
  if (s.ok()) return kAuditExitCompliant;
  if (s.IsTampered() || s.IsCorruption()) return kAuditExitTampered;
  if (s.IsBusy()) return kAuditExitBusy;
  return kAuditExitIoError;
}

Status Auditor::ReleaseOldFiles(uint64_t epoch) {
  std::vector<std::string> victims;
  victims.push_back(SnapshotFileName(epoch));
  victims.push_back(LogFileName(epoch));
  victims.push_back(StampIndexFileName(epoch));
  // The incremental-audit chain and certification markers cover exactly
  // this L; they roll with the epoch.
  victims.push_back(ChainFileName(epoch));
  victims.push_back(CertFileName(epoch));
  for (const auto& name : worm_->ListPrefix("witness_")) {
    victims.push_back(name);
  }
  for (const auto& name : worm_->ListPrefix("txtail_")) {
    victims.push_back(name);
  }
  for (const auto& name : victims) {
    if (!worm_->Exists(name)) continue;
    CDB_RETURN_IF_ERROR(worm_->ReleaseRetention(name));
    CDB_RETURN_IF_ERROR(worm_->Delete(name));
  }
  return Status::OK();
}

}  // namespace complydb
