#ifndef COMPLYDB_AUDIT_AUDIT_CURSOR_H_
#define COMPLYDB_AUDIT_AUDIT_CURSOR_H_

// Incremental, online certification of the compliance log.
//
// The classic auditor quiesces the database and replays all of L. The
// AuditCursor instead certifies "all state through sealed epoch k" by
// replaying only the delta since the last certified epoch: for each
// uncertified SealedEpoch it re-reads exactly that L byte range, checks
// the range against the epoch's Merkle root and the chain linkage, folds
// the records into a long-lived PageReplayer state, and verifies every
// READ hash inside the window against that state. Readers and the
// multi-writer commit pipeline keep running the whole time — the cursor
// touches only WORM files, never the live engine.
//
// Scope of the incremental verdict (see DESIGN.md): chain and Merkle
// integrity, L well-formedness, the replay cross-checks (split unions,
// UNDO justification, conflicting stamps/aborts), and READ-hash
// verification — the paper's hash-page-on-read tamper detector, which is
// what catches edits to the database file itself. The full audit remains
// the authoritative pass for final-state-vs-disk comparison, identity
// ADD_HASH, witness liveness, and retention/hold policy.
//
// Equivalence: certifying epochs 1..E one at a time, in batches, or all
// at once runs the identical per-window code against identical state, so
// the problem list, chain root, and state digest match a from-scratch
// full replay byte for byte (asserted in tests, including across a
// crash/reopen between increments).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "audit/epoch_chain.h"
#include "common/status.h"
#include "compliance/page_replay.h"
#include "crypto/sha256.h"
#include "worm/worm_store.h"

namespace complydb {

class ThreadPool;

/// Result of one CertifyThrough run (or of a full-replay pass).
struct IncrementalAuditReport {
  /// Problems found by THIS run, in L order (chain-level findings for a
  /// window precede that window's replay findings).
  std::vector<std::string> problems;
  /// Every problem the cursor has found since Attach.
  std::vector<std::string> all_problems;
  uint64_t certified_seq = 0;     // chain position after the run
  uint64_t certified_offset = 0;  // L bytes covered after the run
  uint64_t epochs_certified = 0;  // sealed epochs consumed this run
  uint64_t records_replayed = 0;  // this run — the O(delta) witness
  uint64_t bytes_replayed = 0;
  uint64_t read_hashes_checked = 0;
  uint32_t threads_used = 1;
  double seconds = 0;
  Sha256Digest chain_root{};   // chain digest of the certified head
  Sha256Digest state_digest{};  // digest of the replayed page state

  bool ok() const { return problems.empty(); }
};

/// A self-contained proof that one tuple version is covered by the
/// certified chain: the sealed-epoch headers up to the certified head
/// plus Merkle audit paths for the NEW_TUPLE record (and, for lazily
/// stamped tuples, the STAMP_TRANS record that resolves its commit
/// time). Verification needs only the trusted 32-byte chain root.
struct InclusionProof {
  struct Leaf {
    uint64_t epoch_seq = 0;   // 1-based position in `chain`
    uint64_t leaf_index = 0;  // record index inside the sealed epoch
    std::string record;       // framed CRecord bytes (len|crc|payload)
    std::vector<Sha256Digest> path;
  };

  uint64_t audit_epoch = 0;
  std::vector<SealedEpoch> chain;  // certified prefix, seq 1..n
  Leaf tuple;                      // the NEW_TUPLE record
  bool has_stamp = false;
  Leaf stamp;                      // STAMP_TRANS when the tuple is unstamped
};

/// Client-side proof check: pure function of the proof bytes and the
/// trusted chain root — no database, no WORM access. Verifies the chain
/// recomputes from its seed to `trusted_root`, that each leaf's Merkle
/// path lands on its epoch's sealed root, and that the leaf bytes decode
/// to the claimed (tree, key, value, commit time).
Status VerifyInclusionProof(const InclusionProof& proof,
                            const Sha256Digest& trusted_root,
                            uint32_t tree_id, Slice key, Slice value,
                            uint64_t commit_time);

class AuditCursor {
 public:
  struct Options {
    std::string auditor_key;
    bool verify_read_hashes = true;
  };

  AuditCursor(Options opts, WormStore* worm)
      : opts_(std::move(opts)), worm_(worm) {}

  /// Positions the cursor for `audit_epoch`, resuming from the last
  /// HMAC-verified certification marker when one exists: the certified
  /// prefix is re-derived by windowed replay and cross-checked against
  /// the marker's chain digest (Tampered on any disagreement). Without a
  /// marker the cursor starts from the epoch's snapshot baseline.
  Status Attach(uint64_t audit_epoch);

  /// Like Attach but ignores certification markers: a from-scratch
  /// cursor, used for the full-replay equivalence mode.
  Status AttachFresh(uint64_t audit_epoch);

  /// Certifies every sealed epoch past the current head (up to
  /// `limit_seq`), replaying only the delta. Chain-level or replay
  /// problems stop the advance — the offending epoch is not certified —
  /// and are reported through the returned report (not a failed Status;
  /// those are reserved for I/O-level trouble).
  Result<IncrementalAuditReport> CertifyThrough(
      const std::vector<SealedEpoch>& chain, uint32_t num_threads,
      uint64_t limit_seq = UINT64_MAX);

  /// Appends the signed certification marker for the current head to
  /// cert_<epoch>. Call after a clean CertifyThrough.
  Status PersistCertification();

  /// Builds an inclusion proof for (tree, key, value, commit_time) out of
  /// the certified prefix. NotFound when the version is not covered —
  /// typically because it committed after the last certified epoch.
  Result<InclusionProof> ProveInclusion(uint32_t tree_id, Slice key,
                                        Slice value, uint64_t commit_time);

  uint64_t audit_epoch() const { return epoch_; }
  uint64_t certified_seq() const { return certified_seq_; }
  uint64_t certified_offset() const { return certified_offset_; }
  const Sha256Digest& certified_root() const { return certified_root_; }
  const std::vector<std::string>& problems() const { return problems_; }

  /// Deterministic digest of the replayed state (pages, index pages,
  /// tree roots): the incremental-vs-full equivalence witness.
  Sha256Digest StateDigest() const;

 private:
  Status AttachInternal(uint64_t audit_epoch, bool use_certification);
  Status CertifyWindow(const SealedEpoch& se, const std::string& blob,
                       uint32_t nthreads, ThreadPool* pool,
                       IncrementalAuditReport* rep);
  void AddProblem(const std::string& what, IncrementalAuditReport* rep);

  Options opts_;
  WormStore* worm_;
  uint64_t epoch_ = 0;
  uint64_t certified_seq_ = 0;
  uint64_t certified_offset_ = 0;
  Sha256Digest certified_root_{};
  LogSummary summary_;             // cumulative over certified windows
  size_t summary_problems_seen_ = 0;
  PageReplayer state_{PageReplayer::Options{}, nullptr};
  size_t state_problems_seen_ = 0;
  std::vector<std::string> problems_;  // cumulative, in L order
};

}  // namespace complydb

#endif  // COMPLYDB_AUDIT_AUDIT_CURSOR_H_
