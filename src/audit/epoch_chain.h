#ifndef COMPLYDB_AUDIT_EPOCH_CHAIN_H_
#define COMPLYDB_AUDIT_EPOCH_CHAIN_H_

// Sealed-epoch digest chain: the trusted spine of incremental audit.
//
// The commit pipeline's durability epochs double as audit units. When an
// epoch's L range is durable, the sealer writes a SealedEpoch header to
// the WORM chain file: the [begin, end) byte range it covers in
// L_<audit_epoch>, a Merkle root over the framed records inside that
// range, and a chain digest linking it to the previous header. The chain
// file lives on WORM next to L, so the trusted base for "all state
// through sealed epoch k" shrinks to one 32-byte chain digest.
//
// Layout on WORM (both append-only, released with L at full audit):
//   chain_<epoch>   SealedEpoch frames, one per sealed epoch
//   cert_<epoch>    CertificationRecord frames, one per clean
//                   incremental-audit run (HMAC-signed by the auditor
//                   key, so reopen can trust "epochs 1..k were already
//                   certified" without replaying blind)
//
// Merkle construction is RFC 6962-style: leaf = H(0x00 || frame bytes),
// node = H(0x01 || l || r), split at the largest power of two below n.
// Leaves are the *framed* CRecords (len|crc|payload) so an audit path
// carries self-checking bytes.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "crypto/sha256.h"
#include "worm/worm_store.h"

namespace complydb {

std::string ChainFileName(uint64_t audit_epoch);
std::string CertFileName(uint64_t audit_epoch);

/// One sealed commit epoch: a contiguous L byte range plus its digests.
struct SealedEpoch {
  uint64_t seq = 0;           // 1-based position in the chain
  uint64_t audit_epoch = 0;   // which L_<n> the range belongs to
  uint64_t begin_offset = 0;  // [begin_offset, end_offset) into L
  uint64_t end_offset = 0;
  uint64_t record_count = 0;  // framed CRecords inside the range
  uint64_t sealed_time = 0;   // WORM clock micros at seal
  Sha256Digest merkle_root{};
  Sha256Digest chain{};       // ChainLink(prev chain or seed, header)

  std::string Encode() const;  // len u32 | crc u32 | payload
  static Status Decode(Slice in, SealedEpoch* out, size_t* consumed);
};

// ------------------------------------------------------------------ Merkle

Sha256Digest MerkleLeafHash(Slice data);
Sha256Digest MerkleNodeHash(const Sha256Digest& l, const Sha256Digest& r);
Sha256Digest MerkleRoot(const std::vector<Sha256Digest>& leaves);

/// Sibling digests from the leaf level upward (deepest first), as needed
/// to recompute the root for `index` out of `leaves.size()` leaves.
std::vector<Sha256Digest> MerkleAuditPath(
    const std::vector<Sha256Digest>& leaves, size_t index);

/// Recomputes the root implied by (leaf, index, count, path). Fails with
/// Corruption when the path length does not match the tree shape.
Status MerkleRootFromPath(const Sha256Digest& leaf, uint64_t index,
                          uint64_t count, const std::vector<Sha256Digest>& path,
                          Sha256Digest* out);

/// Byte offsets (relative to `blob`) of every CRecord frame start.
/// Fails with Corruption if the blob does not end exactly on a frame
/// boundary — seal targets are always record boundaries.
Status FrameBoundaries(Slice blob, std::vector<uint64_t>* offsets);

/// One MerkleLeafHash per frame in `blob`, batched through the multi-
/// buffer SHA-256 path.
Status EpochLeafHashes(Slice blob, std::vector<Sha256Digest>* leaves);

Sha256Digest ChainSeed(uint64_t audit_epoch);
Sha256Digest ChainLink(const Sha256Digest& prev, const SealedEpoch& header);

/// Reads chain_<audit_epoch> and structurally verifies it: seq contiguous
/// from 1, ranges tile L from offset 0, every chain digest recomputes.
/// A missing file is an empty chain, not an error.
Result<std::vector<SealedEpoch>> ReadEpochChain(const WormStore* worm,
                                                uint64_t audit_epoch);

// ---------------------------------------------------------- certification

/// Appended to cert_<epoch> after each clean incremental-audit run; the
/// HMAC (auditor key over epoch|seq|offset|chain digest) is what lets a
/// reopening cursor trust the marker before re-deriving the state.
struct CertificationRecord {
  uint64_t audit_epoch = 0;
  uint64_t certified_seq = 0;
  uint64_t certified_offset = 0;
  Sha256Digest chain_digest{};
  Sha256Digest mac{};

  std::string Encode() const;
  static Status Decode(Slice in, CertificationRecord* out, size_t* consumed);
  Sha256Digest ComputeMac(const std::string& auditor_key) const;
};

/// Latest marker in cert_<audit_epoch>, NotFound when none exists.
/// MAC verification is the caller's job (it owns the key).
Result<CertificationRecord> ReadLastCertification(const WormStore* worm,
                                                  uint64_t audit_epoch);

// ----------------------------------------------------------------- sealer

/// Turns durable L prefixes into sealed epochs. Thread-safe: the commit
/// pipeline's epoch leader calls SealThrough outside all engine locks,
/// and the serial path calls it from the regret tick.
class EpochSealer {
 public:
  explicit EpochSealer(WormStore* worm) : worm_(worm) {}

  /// Loads chain_<audit_epoch> and positions the seal high-water mark at
  /// its tail. Must be called before SealThrough; called again after a
  /// full audit rolls the epoch.
  Status Attach(uint64_t audit_epoch);

  /// Seals [sealed_offset, durable_offset) as one epoch. No-op when the
  /// target is at or behind the high-water mark. `durable_offset` must be
  /// a record boundary already durable on WORM (commit-epoch barrier
  /// targets and logger full-flush points both qualify).
  Status SealThrough(uint64_t durable_offset);

  uint64_t sealed_seq() const;
  uint64_t sealed_offset() const;
  Sha256Digest head() const;  // last chain digest, or the seed

 private:
  mutable std::mutex mu_;
  WormStore* worm_;
  uint64_t epoch_ = 0;
  uint64_t seq_ = 0;
  uint64_t offset_ = 0;
  Sha256Digest head_{};
  bool attached_ = false;
  bool have_file_ = false;
};

}  // namespace complydb

#endif  // COMPLYDB_AUDIT_EPOCH_CHAIN_H_
