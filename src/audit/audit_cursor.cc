#include "audit/audit_cursor.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>

#include "btree/tuple.h"
#include "common/coding.h"
#include "common/thread_pool.h"
#include "compliance/compliance_log.h"
#include "compliance/records.h"
#include "compliance/snapshot.h"
#include "crypto/hmac.h"
#include "obs/metrics.h"

namespace complydb {

namespace {

struct CursorMetrics {
  obs::Counter* runs;
  obs::Counter* records;
  obs::Counter* bytes;
  obs::Counter* problems;
  obs::Counter* proofs;
  obs::Histogram* run_us;
  obs::Gauge* certified_seq;
  CursorMetrics() {
    auto& reg = obs::MetricsRegistry::Global();
    runs = reg.GetCounter("audit.incremental.runs");
    records = reg.GetCounter("audit.incremental.records");
    bytes = reg.GetCounter("audit.incremental.bytes");
    problems = reg.GetCounter("audit.incremental.problems");
    proofs = reg.GetCounter("audit.proofs_built");
    run_us = reg.GetHistogram("audit.incremental.us");
    certified_seq = reg.GetGauge("audit.epoch.certified_seq");
  }
};

CursorMetrics& Xm() {
  static CursorMetrics m;
  return m;
}

using PageKey = PageReplayer::PageKey;

/// Every (tree, pgno) a record can create, rewrite, or erase in a
/// replayer. Window shards are seeded with exactly these keys, and the
/// window fold-back overwrites/erases exactly these keys, so the merged
/// state is identical to a serial replay of the window.
void CollectTouched(const CRecord& rec, std::set<PageKey>* pages,
                    std::set<PageKey>* index) {
  switch (rec.type) {
    case CRecordType::kNewTree:
    case CRecordType::kNewTuple:
    case CRecordType::kUndo:
    case CRecordType::kStampPage:
    case CRecordType::kMigrate:
    case CRecordType::kReadHash:
      pages->insert({rec.tree_id, rec.pgno});
      break;
    case CRecordType::kPageSplit:
      pages->insert({rec.tree_id, rec.pgno});
      pages->insert({rec.tree_id, rec.new_pgno});
      break;
    case CRecordType::kRootGrow:
      pages->insert({rec.tree_id, rec.pgno});
      pages->insert({rec.tree_id, rec.new_pgno});
      pages->insert({rec.tree_id, rec.third_pgno});
      break;
    case CRecordType::kIndexAdd:
    case CRecordType::kIndexRemove:
    case CRecordType::kReadHashIndex:
      index->insert({rec.tree_id, rec.pgno});
      break;
    default:
      break;
  }
}

std::vector<std::string> StateRecords(const PageReplayer::PageState& state) {
  std::vector<std::string> records;
  records.reserve(state.size());
  for (const auto& [order_no, rec] : state) records.push_back(rec);
  return records;
}

std::vector<std::string> StateEntries(const PageReplayer::IndexState& state) {
  std::vector<std::string> entries;
  entries.reserve(state.size());
  for (const auto& [sort_key, entry] : state) entries.push_back(entry);
  return entries;
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

Status VerifyLeaf(const InclusionProof& proof, const InclusionProof::Leaf& leaf,
                  CRecord* rec, const char* what) {
  if (leaf.epoch_seq == 0 || leaf.epoch_seq > proof.chain.size()) {
    return Status::Tampered(std::string(what) +
                            " proof: epoch seq outside the chain");
  }
  const SealedEpoch& se = proof.chain[leaf.epoch_seq - 1];
  if (leaf.leaf_index >= se.record_count) {
    return Status::Tampered(std::string(what) +
                            " proof: leaf index outside the sealed epoch");
  }
  Sha256Digest root;
  CDB_RETURN_IF_ERROR(MerkleRootFromPath(MerkleLeafHash(leaf.record),
                                         leaf.leaf_index, se.record_count,
                                         leaf.path, &root));
  if (!DigestEqual(root, se.merkle_root)) {
    return Status::Tampered(std::string(what) +
                            " proof: merkle path does not reach the sealed "
                            "epoch root");
  }
  size_t consumed = 0;
  Status s = CRecord::Decode(Slice(leaf.record), rec, &consumed);
  if (!s.ok() || consumed != leaf.record.size()) {
    return Status::Tampered(std::string(what) +
                            " proof: leaf bytes are not one framed record");
  }
  return Status::OK();
}

}  // namespace

Status VerifyInclusionProof(const InclusionProof& proof,
                            const Sha256Digest& trusted_root,
                            uint32_t tree_id, Slice key, Slice value,
                            uint64_t commit_time) {
  if (proof.chain.empty()) {
    return Status::Tampered("proof: empty epoch chain");
  }
  // Recompute the whole chain from the seed: header order, L tiling, and
  // every link digest, ending at the trusted root. After this, each
  // header's merkle_root is trustworthy.
  Sha256Digest prev = ChainSeed(proof.audit_epoch);
  uint64_t next_begin = 0;
  for (size_t i = 0; i < proof.chain.size(); ++i) {
    const SealedEpoch& se = proof.chain[i];
    if (se.seq != i + 1 || se.audit_epoch != proof.audit_epoch ||
        se.begin_offset != next_begin || se.end_offset < se.begin_offset) {
      return Status::Tampered("proof: chain headers do not tile L");
    }
    if (!DigestEqual(se.chain, ChainLink(prev, se))) {
      return Status::Tampered("proof: chain link digest mismatch at seq " +
                              std::to_string(se.seq));
    }
    prev = se.chain;
    next_begin = se.end_offset;
  }
  if (!DigestEqual(prev, trusted_root)) {
    return Status::Tampered(
        "proof: chain head does not match the trusted certified root");
  }
  // The tuple leaf must be a NEW_TUPLE for exactly (tree, key, value).
  CRecord rec;
  CDB_RETURN_IF_ERROR(VerifyLeaf(proof, proof.tuple, &rec, "tuple"));
  if (rec.type != CRecordType::kNewTuple || rec.tree_id != tree_id) {
    return Status::Tampered("proof: leaf is not a NEW_TUPLE for the tree");
  }
  TupleData t;
  if (!DecodeTuple(rec.tuple, &t).ok()) {
    return Status::Tampered("proof: undecodable tuple in leaf");
  }
  if (Slice(t.key) != key || Slice(t.value) != value || t.eol) {
    return Status::Tampered("proof: tuple does not match the claimed "
                            "key/value");
  }
  if (t.stamped) {
    if (t.start != commit_time) {
      return Status::Tampered("proof: stamped tuple commit time mismatch");
    }
    return Status::OK();
  }
  // Lazily stamped: the STAMP_TRANS leaf resolves txn id -> commit time.
  if (!proof.has_stamp) {
    return Status::Tampered("proof: unstamped tuple without a STAMP_TRANS "
                            "leaf");
  }
  CRecord stamp;
  CDB_RETURN_IF_ERROR(VerifyLeaf(proof, proof.stamp, &stamp, "stamp"));
  if (stamp.type != CRecordType::kStampTrans || stamp.txn_id != t.start ||
      stamp.commit_time != commit_time) {
    return Status::Tampered("proof: STAMP_TRANS does not bind the tuple's "
                            "transaction to the claimed commit time");
  }
  return Status::OK();
}

// ----------------------------------------------------------------- cursor

Status AuditCursor::Attach(uint64_t audit_epoch) {
  return AttachInternal(audit_epoch, true);
}

Status AuditCursor::AttachFresh(uint64_t audit_epoch) {
  return AttachInternal(audit_epoch, false);
}

Status AuditCursor::AttachInternal(uint64_t audit_epoch,
                                   bool use_certification) {
  epoch_ = audit_epoch;
  certified_seq_ = 0;
  certified_offset_ = 0;
  certified_root_ = ChainSeed(audit_epoch);
  summary_ = LogSummary{};
  summary_problems_seen_ = 0;
  problems_.clear();
  PageReplayer::Options ropts;
  ropts.verify = true;
  ropts.verify_read_hashes = opts_.verify_read_hashes;
  state_ = PageReplayer(ropts, &summary_);
  state_problems_seen_ = 0;
  // Seed from the epoch's signed snapshot, exactly as the full audit
  // seeds its replayer.
  if (worm_->Exists(SnapshotFileName(audit_epoch))) {
    auto snap = Snapshot::ReadVerified(worm_, audit_epoch, opts_.auditor_key);
    if (!snap.ok()) return snap.status();
    for (const auto& page : snap.value().pages) {
      state_.SeedPage(page.tree_id, page.pgno, page.records);
    }
    for (const auto& page : snap.value().index_pages) {
      state_.SeedIndexPage(page.tree_id, page.pgno, page.records);
    }
  }
  if (!use_certification) return Status::OK();
  auto cert = ReadLastCertification(worm_, audit_epoch);
  if (cert.status().IsNotFound()) return Status::OK();
  if (!cert.ok()) return cert.status();
  const CertificationRecord& marker = cert.value();
  if (marker.audit_epoch != audit_epoch ||
      !DigestEqual(marker.mac, marker.ComputeMac(opts_.auditor_key))) {
    return Status::Tampered("certification marker fails HMAC verification");
  }
  auto chain = ReadEpochChain(worm_, audit_epoch);
  if (!chain.ok()) return chain.status();
  if (chain.value().size() < marker.certified_seq ||
      marker.certified_seq == 0) {
    return Status::Tampered("certification marker points past the chain");
  }
  const SealedEpoch& head = chain.value()[marker.certified_seq - 1];
  if (!DigestEqual(head.chain, marker.chain_digest) ||
      head.end_offset != marker.certified_offset) {
    return Status::Tampered("certification marker disagrees with the chain");
  }
  // Re-derive the certified prefix by the same windowed replay that
  // produced it. The trusted base is the marker; any divergence (which
  // would include tampered L bytes) comes back as problems, which a
  // certified prefix by definition did not have.
  auto rebuilt = CertifyThrough(chain.value(), 1, marker.certified_seq);
  if (!rebuilt.ok()) return rebuilt.status();
  if (!rebuilt.value().ok()) {
    return Status::Tampered(
        "certified prefix no longer replays cleanly: " +
        rebuilt.value().problems.front());
  }
  if (certified_seq_ != marker.certified_seq ||
      !DigestEqual(certified_root_, marker.chain_digest)) {
    return Status::Tampered("certified prefix diverged from its marker");
  }
  return Status::OK();
}

void AuditCursor::AddProblem(const std::string& what,
                             IncrementalAuditReport* rep) {
  problems_.push_back(what);
  if (rep != nullptr) rep->problems.push_back(what);
  Xm().problems->Inc();
}

Status AuditCursor::CertifyWindow(const SealedEpoch& se,
                                  const std::string& blob, uint32_t nthreads,
                                  ThreadPool* pool,
                                  IncrementalAuditReport* rep) {
  const std::string tag = "sealed epoch " + std::to_string(se.seq);
  std::vector<uint64_t> offsets;
  Status fs = FrameBoundaries(blob, &offsets);
  if (!fs.ok()) {
    AddProblem(tag + ": " + fs.ToString(), rep);
    return Status::Tampered(tag);
  }
  std::vector<Sha256Digest> leaves;
  CDB_RETURN_IF_ERROR(EpochLeafHashes(blob, &leaves));
  if (leaves.size() != se.record_count) {
    AddProblem(tag + ": record count disagrees with the sealed header", rep);
    return Status::Tampered(tag);
  }
  if (!DigestEqual(MerkleRoot(leaves), se.merkle_root)) {
    AddProblem(tag + ": L range does not match its sealed merkle root", rep);
    return Status::Tampered(tag);
  }
  std::vector<CRecord> recs(offsets.size());
  for (size_t i = 0; i < offsets.size(); ++i) {
    size_t consumed = 0;
    Status ds = CRecord::Decode(
        Slice(blob.data() + offsets[i], blob.size() - offsets[i]), &recs[i],
        &consumed);
    if (!ds.ok()) {
      AddProblem(tag + ": " + ds.ToString(), rep);
      return Status::Tampered(tag);
    }
  }
  // Window summary folds into the cumulative one *before* replay — UNDO
  // justification inside the window may reference this window's ABORT.
  Status ss = SummarizeLogBlob(blob, &summary_);
  if (!ss.ok()) {
    AddProblem(tag + ": summarize: " + ss.ToString(), rep);
    return Status::Tampered(tag);
  }
  for (; summary_problems_seen_ < summary_.problems.size();
       ++summary_problems_seen_) {
    AddProblem(summary_.problems[summary_problems_seen_], rep);
  }
  if (nthreads <= 1) {
    for (size_t i = 0; i < recs.size(); ++i) {
      Status as = state_.Apply(recs[i], se.begin_offset + offsets[i]);
      if (!as.ok()) {
        AddProblem(tag + ": replay: " + as.ToString(), rep);
        return Status::Tampered(tag);
      }
    }
  } else {
    // Sharded window replay, mirroring the full audit: every shard
    // applies the whole window but only to pages it owns; shards are
    // seeded with the cursor's current state for exactly the pages the
    // window touches, then folded back with overwrite/erase semantics.
    std::set<PageKey> touched_pages;
    std::set<PageKey> touched_index;
    for (const CRecord& rec : recs) {
      CollectTouched(rec, &touched_pages, &touched_index);
    }
    std::vector<PageKey> tp(touched_pages.begin(), touched_pages.end());
    std::vector<PageKey> ti(touched_index.begin(), touched_index.end());
    std::vector<std::unique_ptr<PageReplayer>> shards;
    std::vector<Status> shard_status(nthreads, Status::OK());
    shards.reserve(nthreads);
    for (uint32_t i = 0; i < nthreads; ++i) {
      PageReplayer::Options sopts;
      sopts.verify = true;
      sopts.verify_read_hashes = opts_.verify_read_hashes;
      sopts.shard_index = i;
      sopts.shard_count = nthreads;
      shards.push_back(std::make_unique<PageReplayer>(sopts, &summary_));
    }
    pool->ParallelFor(0, nthreads, [&](size_t i) {
      PageReplayer* shard = shards[i].get();
      for (const PageKey& key : tp) {
        auto it = state_.pages().find(key);
        if (it != state_.pages().end()) {
          shard->SeedPage(key.first, key.second, StateRecords(it->second));
        }
      }
      for (const PageKey& key : ti) {
        auto it = state_.index_pages().find(key);
        if (it != state_.index_pages().end()) {
          shard->SeedIndexPage(key.first, key.second,
                               StateEntries(it->second));
        }
      }
      for (size_t r = 0; r < recs.size(); ++r) {
        shard_status[i] = shard->Apply(recs[r], se.begin_offset + offsets[r]);
        if (!shard_status[i].ok()) break;
      }
    });
    for (uint32_t i = 0; i < nthreads; ++i) {
      if (!shard_status[i].ok()) {
        AddProblem(tag + ": replay: " + shard_status[i].ToString(), rep);
        return Status::Tampered(tag);
      }
    }
    for (auto& shard : shards) {
      state_.AbsorbWindowShard(std::move(*shard), tp, ti);
    }
    state_.FinishMerge();
  }
  // Resolve the UNDO justifications this window's state can answer; the
  // rest stay pending for later windows (or the full audit's Finalize).
  state_.ResolvePendingMoves();
  for (; state_problems_seen_ < state_.problems().size();
       ++state_problems_seen_) {
    AddProblem(state_.problems()[state_problems_seen_], rep);
  }
  rep->records_replayed += recs.size();
  rep->bytes_replayed += blob.size();
  return Status::OK();
}

Result<IncrementalAuditReport> AuditCursor::CertifyThrough(
    const std::vector<SealedEpoch>& chain, uint32_t num_threads,
    uint64_t limit_seq) {
  auto t0 = std::chrono::steady_clock::now();
  uint32_t nthreads = num_threads == 0 ? 1 : num_threads;
  IncrementalAuditReport rep;
  rep.threads_used = nthreads;
  uint64_t hashes_before = state_.read_hashes_checked();
  if (chain.size() < certified_seq_) {
    return Status::Tampered("epoch chain shrank below the certified head");
  }
  if (certified_seq_ > 0 &&
      !DigestEqual(chain[certified_seq_ - 1].chain, certified_root_)) {
    return Status::Tampered(
        "epoch chain rewrote history under the certified head");
  }
  std::unique_ptr<ThreadPool> pool;
  if (nthreads > 1) pool = std::make_unique<ThreadPool>(nthreads);
  for (size_t i = certified_seq_; i < chain.size() && chain[i].seq <= limit_seq;
       ++i) {
    const SealedEpoch& se = chain[i];
    std::string blob;
    Status rs = worm_->ReadAt(LogFileName(epoch_), se.begin_offset,
                              se.end_offset - se.begin_offset, &blob);
    if (rs.IsTampered() || blob.size() != se.end_offset - se.begin_offset) {
      AddProblem("sealed epoch " + std::to_string(se.seq) +
                     ": L is shorter than the sealed range",
                 &rep);
      break;
    }
    if (!rs.ok()) return rs;
    Status ws = CertifyWindow(se, blob, nthreads, pool.get(), &rep);
    if (!ws.ok()) break;  // problem already recorded; head stays put
    certified_seq_ = se.seq;
    certified_offset_ = se.end_offset;
    certified_root_ = se.chain;
    ++rep.epochs_certified;
  }
  rep.certified_seq = certified_seq_;
  rep.certified_offset = certified_offset_;
  rep.chain_root = certified_root_;
  rep.state_digest = StateDigest();
  rep.read_hashes_checked = state_.read_hashes_checked() - hashes_before;
  rep.all_problems = problems_;
  rep.seconds = SecondsSince(t0);
  Xm().runs->Inc();
  Xm().records->Inc(rep.records_replayed);
  Xm().bytes->Inc(rep.bytes_replayed);
  Xm().run_us->Record(static_cast<uint64_t>(rep.seconds * 1e6));
  Xm().certified_seq->Set(static_cast<int64_t>(certified_seq_));
  return rep;
}

Status AuditCursor::PersistCertification() {
  if (certified_seq_ == 0) return Status::OK();
  CertificationRecord marker;
  marker.audit_epoch = epoch_;
  marker.certified_seq = certified_seq_;
  marker.certified_offset = certified_offset_;
  marker.chain_digest = certified_root_;
  marker.mac = marker.ComputeMac(opts_.auditor_key);
  if (!worm_->Exists(CertFileName(epoch_))) {
    CDB_RETURN_IF_ERROR(worm_->Create(CertFileName(epoch_), 0));
  }
  return worm_->Append(CertFileName(epoch_), marker.Encode());
}

Sha256Digest AuditCursor::StateDigest() const {
  Sha256 h;
  std::string buf;
  for (const auto& [key, state] : state_.pages()) {
    buf.clear();
    buf.push_back('P');
    PutFixed32(&buf, key.first);
    PutFixed64(&buf, key.second);
    PutFixed32(&buf, static_cast<uint32_t>(state.size()));
    h.Update(buf);
    for (const auto& [order_no, rec] : state) {
      buf.clear();
      PutFixed16(&buf, order_no);
      PutLengthPrefixed(&buf, rec);
      h.Update(buf);
    }
  }
  for (const auto& [key, state] : state_.index_pages()) {
    buf.clear();
    buf.push_back('I');
    PutFixed32(&buf, key.first);
    PutFixed64(&buf, key.second);
    PutFixed32(&buf, static_cast<uint32_t>(state.size()));
    h.Update(buf);
    for (const auto& [sort_key, entry] : state) {
      buf.clear();
      PutLengthPrefixed(&buf, sort_key);
      PutLengthPrefixed(&buf, entry);
      h.Update(buf);
    }
  }
  for (const auto& [tree_id, root] : state_.tree_roots()) {
    buf.clear();
    buf.push_back('T');
    PutFixed32(&buf, tree_id);
    PutFixed64(&buf, root);
    h.Update(buf);
  }
  return h.Finish();
}

Result<InclusionProof> AuditCursor::ProveInclusion(uint32_t tree_id, Slice key,
                                                   Slice value,
                                                   uint64_t commit_time) {
  if (certified_seq_ == 0) {
    return Status::NotFound("no certified epochs yet — run AuditIncremental");
  }
  auto chain_r = ReadEpochChain(worm_, epoch_);
  if (!chain_r.ok()) return chain_r.status();
  const std::vector<SealedEpoch>& chain = chain_r.value();
  if (chain.size() < certified_seq_) {
    return Status::Tampered("epoch chain shrank below the certified head");
  }
  struct Loc {
    uint64_t seq = 0;
    uint64_t index = 0;
    std::string frame;
  };
  Loc tuple_loc;
  bool tuple_found = false;
  bool tuple_stamped = false;
  TxnId tuple_txn = 0;
  std::map<TxnId, Loc> stamp_locs;  // STAMP_TRANS at the target commit time
  for (size_t i = 0; i < certified_seq_; ++i) {
    const SealedEpoch& se = chain[i];
    std::string blob;
    CDB_RETURN_IF_ERROR(worm_->ReadAt(LogFileName(epoch_), se.begin_offset,
                                      se.end_offset - se.begin_offset, &blob));
    std::vector<uint64_t> offsets;
    CDB_RETURN_IF_ERROR(FrameBoundaries(blob, &offsets));
    for (size_t j = 0; j < offsets.size(); ++j) {
      size_t end = (j + 1 < offsets.size()) ? offsets[j + 1] : blob.size();
      CRecord rec;
      size_t consumed = 0;
      CDB_RETURN_IF_ERROR(CRecord::Decode(
          Slice(blob.data() + offsets[j], blob.size() - offsets[j]), &rec,
          &consumed));
      if (rec.type == CRecordType::kNewTuple && rec.tree_id == tree_id) {
        TupleData t;
        if (!DecodeTuple(rec.tuple, &t).ok()) continue;
        if (Slice(t.key) != key || Slice(t.value) != value || t.eol) continue;
        uint64_t resolved = 0;
        if (t.stamped) {
          resolved = t.start;
        } else {
          auto it = summary_.stamps.find(t.start);
          if (it == summary_.stamps.end()) continue;
          resolved = it->second;
        }
        if (resolved != commit_time) continue;
        tuple_loc.seq = se.seq;
        tuple_loc.index = j;
        tuple_loc.frame.assign(blob.data() + offsets[j], end - offsets[j]);
        tuple_found = true;
        tuple_stamped = t.stamped;
        tuple_txn = t.start;
      } else if (rec.type == CRecordType::kStampTrans &&
                 rec.commit_time == commit_time) {
        Loc loc;
        loc.seq = se.seq;
        loc.index = j;
        loc.frame.assign(blob.data() + offsets[j], end - offsets[j]);
        stamp_locs[rec.txn_id] = std::move(loc);
      }
    }
  }
  if (!tuple_found) {
    return Status::NotFound(
        "version is not covered by the certified chain (it may have "
        "committed after the last certified epoch)");
  }
  InclusionProof proof;
  proof.audit_epoch = epoch_;
  proof.chain.assign(chain.begin(),
                     chain.begin() + static_cast<size_t>(certified_seq_));
  auto build_leaf = [&](const Loc& loc,
                        InclusionProof::Leaf* leaf) -> Status {
    const SealedEpoch& se = chain[loc.seq - 1];
    std::string blob;
    CDB_RETURN_IF_ERROR(worm_->ReadAt(LogFileName(epoch_), se.begin_offset,
                                      se.end_offset - se.begin_offset, &blob));
    std::vector<Sha256Digest> leaves;
    CDB_RETURN_IF_ERROR(EpochLeafHashes(blob, &leaves));
    leaf->epoch_seq = loc.seq;
    leaf->leaf_index = loc.index;
    leaf->record = loc.frame;
    leaf->path = MerkleAuditPath(leaves, loc.index);
    return Status::OK();
  };
  CDB_RETURN_IF_ERROR(build_leaf(tuple_loc, &proof.tuple));
  if (!tuple_stamped) {
    auto it = stamp_locs.find(tuple_txn);
    if (it == stamp_locs.end()) {
      return Status::NotFound(
          "tuple's STAMP_TRANS is not in the certified chain");
    }
    proof.has_stamp = true;
    CDB_RETURN_IF_ERROR(build_leaf(it->second, &proof.stamp));
  }
  Xm().proofs->Inc();
  return proof;
}

}  // namespace complydb
