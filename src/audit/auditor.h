#ifndef COMPLYDB_AUDIT_AUDITOR_H_
#define COMPLYDB_AUDIT_AUDITOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "compliance/compliance_log.h"
#include "compliance/page_replay.h"
#include "compliance/snapshot.h"
#include "storage/disk_manager.h"
#include "worm/worm_store.h"

namespace complydb {

/// Looks up the retention period (micros) that governed `tree_id` at time
/// `at_time`; NotFound if no policy existed. The DB facade implements this
/// over the Expiry relation (§VIII).
using RetentionResolver =
    std::function<Result<uint64_t>(uint32_t tree_id, uint64_t at_time)>;

/// Whether a litigation hold covered (tree_id, key) at `at_time` (§IX).
using HoldResolver = std::function<Result<bool>(
    uint32_t tree_id, const std::string& key, uint64_t at_time)>;

struct AuditOptions {
  std::string auditor_key;
  /// Verify READ hashes when the epoch was run with hash-page-on-read.
  bool verify_read_hashes = true;
  /// Run the paper's single-pass ADD_HASH completeness check (§IV-A).
  bool identity_hash_check = true;
  /// Also run the O(|L| log |L|) sort-merge completeness variant the
  /// paper uses as its baseline (ablation / cross-check).
  bool sort_merge_check = false;
  uint64_t regret_interval_micros = 300ull * 1'000'000;
  /// Liveness gaps up to slack * regret interval are tolerated (regret
  /// flushing and heartbeats are edge-aligned, so 2 is the natural bound).
  uint64_t gap_slack = 3;
  /// Path of the DBMS transaction log, for the WORM-tail cross-check.
  std::string wal_path;
  RetentionResolver retention_resolver;  // may be null: skip expiry checks
  HoldResolver hold_resolver;            // may be null: skip hold checks
  /// Worker threads for the replay, final-state, and index-check phases.
  /// 1 = the serial reference path (default); 0 = hardware_concurrency.
  /// Any value produces a byte-identical report: replay shards by
  /// (tree_id, pgno), the database scan chunks by pgno, and both merge
  /// deterministically.
  uint32_t num_threads = 1;
  /// Legacy full-audit ergonomics: instead of returning Busy the moment a
  /// snapshot is open or a writer is in flight, poll for quiescence until
  /// `quiesce_deadline_micros` of wall time has elapsed, then give up
  /// with Busy. Honored by the CompliantDB facade (the standalone auditor
  /// has no live engine to wait for).
  bool wait_for_quiesce = false;
  uint64_t quiesce_deadline_micros = 2'000'000;
};

/// Exit codes of the cdb_audit tool — a stable CLI contract so scripts
/// can tell "come back later" from "call the prosecutor".
enum AuditExitCode : int {
  kAuditExitCompliant = 0,
  kAuditExitTampered = 1,  // findings, or Tampered/Corruption while reading
  kAuditExitUsage = 2,
  kAuditExitBusy = 3,  // database not quiescent (legacy full audit only)
  kAuditExitIoError = 4,
};

/// Maps an audit-path Status to the exit code above (OK -> compliant).
int AuditExitCodeForStatus(const Status& s);

struct AuditTimings {
  double summarize_seconds = 0;
  double snapshot_seconds = 0;   // hashing/loading the previous snapshot
  double replay_seconds = 0;     // L scan incl. READ-hash verification
  double final_state_seconds = 0;  // full scan of the current database
  double index_check_seconds = 0;
  double total_seconds = 0;
};

struct AuditReport {
  std::vector<std::string> problems;
  AuditTimings timings;
  /// Historical WORM page files whose every tuple was verified shredded
  /// this epoch; deletable after the audit (whole-file WORM deletion,
  /// §VIII). Populated only on a passing audit.
  std::vector<std::string> shredded_hist_files;
  uint64_t log_records = 0;
  uint64_t pages_checked = 0;
  uint64_t tuples_checked = 0;
  uint64_t read_hashes_checked = 0;
  uint64_t shreds_verified = 0;
  uint64_t migrations_verified = 0;
  uint64_t identity_checks_run = 0;
  /// Worker threads the parallel phases actually ran with (informational;
  /// not part of the deterministic verdict).
  uint32_t threads_used = 1;

  bool ok() const { return problems.empty(); }
};

/// The external auditor (paper §IV): verifies, in one pass over the
/// compliance log plus one pass over the database, that the current state
/// is consistent with all past modifications — and, with hash-page-on-read,
/// that every page read by every transaction was untampered. On success it
/// writes the signed snapshot that seeds the next epoch.
///
/// The auditor deliberately reads the database through its own hook-free
/// cache (the paper's prosecutor runs her own DBMS software against the
/// seized disks); nothing the production DBMS claims is trusted except
/// what sits on WORM.
class Auditor {
 public:
  Auditor(const AuditOptions& options, WormStore* worm, DiskManager* disk)
      : options_(options), worm_(worm), disk_(disk) {}

  /// Audits epoch `epoch`. If `write_snapshot`, a successful audit writes
  /// snapshot_{epoch+1} (a failed audit never does).
  Result<AuditReport> Audit(uint64_t epoch, bool write_snapshot);

  /// After a successful audit of `epoch`, superseded WORM files (the
  /// previous snapshot, L, stamp index, witness files, log tails) become
  /// releasable and are deleted.
  Status ReleaseOldFiles(uint64_t epoch);

 private:
  AuditOptions options_;
  WormStore* worm_;
  DiskManager* disk_;
};

}  // namespace complydb

#endif  // COMPLYDB_AUDIT_AUDITOR_H_
