#include "audit/epoch_chain.h"

#include <cinttypes>
#include <cstdio>

#include "common/coding.h"
#include "common/crc32.h"
#include "compliance/compliance_log.h"
#include "crypto/hmac.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace complydb {

namespace {

std::string PadNum(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%08" PRIu64, n);
  return buf;
}

struct ChainMetrics {
  obs::Counter* sealed;
  obs::Histogram* seal_us;
  obs::Gauge* sealed_seq;
  ChainMetrics() {
    auto& reg = obs::MetricsRegistry::Global();
    sealed = reg.GetCounter("audit.epoch.sealed");
    seal_us = reg.GetHistogram("audit.epoch.seal_us");
    sealed_seq = reg.GetGauge("audit.epoch.sealed_seq");
  }
};

ChainMetrics& Cm() {
  static ChainMetrics m;
  return m;
}

uint64_t SplitPoint(uint64_t n) {
  // Largest power of two strictly below n (n >= 2).
  uint64_t k = 1;
  while (k * 2 < n) k *= 2;
  return k;
}

Sha256Digest RootRange(const Sha256Digest* leaves, size_t n) {
  if (n == 1) return leaves[0];
  size_t k = SplitPoint(n);
  return MerkleNodeHash(RootRange(leaves, k), RootRange(leaves + k, n - k));
}

void PathRange(const Sha256Digest* leaves, size_t n, size_t index,
               std::vector<Sha256Digest>* out) {
  if (n == 1) return;
  size_t k = SplitPoint(n);
  if (index < k) {
    PathRange(leaves, k, index, out);
    out->push_back(RootRange(leaves + k, n - k));
  } else {
    PathRange(leaves + k, n - k, index - k, out);
    out->push_back(RootRange(leaves, k));
  }
}

Status FromPath(const Sha256Digest& leaf, uint64_t index, uint64_t count,
                const Sha256Digest* path, size_t path_len, Sha256Digest* out) {
  if (count == 1) {
    if (path_len != 0) {
      return Status::Corruption("merkle path longer than tree depth");
    }
    *out = leaf;
    return Status::OK();
  }
  if (path_len == 0) {
    return Status::Corruption("merkle path shorter than tree depth");
  }
  uint64_t k = SplitPoint(count);
  Sha256Digest sub;
  if (index < k) {
    CDB_RETURN_IF_ERROR(FromPath(leaf, index, k, path, path_len - 1, &sub));
    *out = MerkleNodeHash(sub, path[path_len - 1]);
  } else {
    CDB_RETURN_IF_ERROR(
        FromPath(leaf, index - k, count - k, path, path_len - 1, &sub));
    *out = MerkleNodeHash(path[path_len - 1], sub);
  }
  return Status::OK();
}

void PutDigest(std::string* dst, const Sha256Digest& d) {
  dst->append(reinterpret_cast<const char*>(d.data()), d.size());
}

Status GetDigest(Decoder* dec, Sha256Digest* out) {
  std::string bytes;
  CDB_RETURN_IF_ERROR(dec->GetBytes(out->size(), &bytes));
  std::copy(bytes.begin(), bytes.end(), reinterpret_cast<char*>(out->data()));
  return Status::OK();
}

std::string Frame(const std::string& payload) {
  std::string framed;
  PutFixed32(&framed, static_cast<uint32_t>(payload.size()));
  PutFixed32(&framed, Crc32(payload));
  framed.append(payload);
  return framed;
}

Status Unframe(Slice in, Slice* payload, size_t* consumed,
               const char* what) {
  if (in.size() < 8) {
    return Status::Corruption(std::string(what) + ": short frame");
  }
  uint32_t len = DecodeFixed32(in.data());
  uint32_t crc = DecodeFixed32(in.data() + 4);
  if (in.size() < 8 + static_cast<size_t>(len)) {
    return Status::Corruption(std::string(what) + ": truncated frame");
  }
  *payload = Slice(in.data() + 8, len);
  if (Crc32(*payload) != crc) {
    return Status::Tampered(std::string(what) + ": frame crc mismatch");
  }
  *consumed = 8 + len;
  return Status::OK();
}

}  // namespace

std::string ChainFileName(uint64_t audit_epoch) {
  return "chain_" + PadNum(audit_epoch);
}

std::string CertFileName(uint64_t audit_epoch) {
  return "cert_" + PadNum(audit_epoch);
}

// ------------------------------------------------------------------ Merkle

Sha256Digest MerkleLeafHash(Slice data) {
  Sha256 h;
  const char prefix = '\x00';
  h.Update(Slice(&prefix, 1));
  h.Update(data);
  return h.Finish();
}

Sha256Digest MerkleNodeHash(const Sha256Digest& l, const Sha256Digest& r) {
  Sha256 h;
  const char prefix = '\x01';
  h.Update(Slice(&prefix, 1));
  h.Update(Slice(reinterpret_cast<const char*>(l.data()), l.size()));
  h.Update(Slice(reinterpret_cast<const char*>(r.data()), r.size()));
  return h.Finish();
}

Sha256Digest MerkleRoot(const std::vector<Sha256Digest>& leaves) {
  if (leaves.empty()) return Sha256::Hash(Slice());
  return RootRange(leaves.data(), leaves.size());
}

std::vector<Sha256Digest> MerkleAuditPath(
    const std::vector<Sha256Digest>& leaves, size_t index) {
  std::vector<Sha256Digest> path;
  if (index < leaves.size()) {
    PathRange(leaves.data(), leaves.size(), index, &path);
  }
  return path;
}

Status MerkleRootFromPath(const Sha256Digest& leaf, uint64_t index,
                          uint64_t count,
                          const std::vector<Sha256Digest>& path,
                          Sha256Digest* out) {
  if (count == 0 || index >= count) {
    return Status::Corruption("merkle leaf index out of range");
  }
  return FromPath(leaf, index, count, path.data(), path.size(), out);
}

Status FrameBoundaries(Slice blob, std::vector<uint64_t>* offsets) {
  offsets->clear();
  size_t pos = 0;
  while (pos < blob.size()) {
    if (blob.size() - pos < 8) {
      return Status::Corruption("sealed range: dangling frame header");
    }
    uint32_t len = DecodeFixed32(blob.data() + pos);
    size_t frame = 8 + static_cast<size_t>(len);
    if (blob.size() - pos < frame) {
      return Status::Corruption("sealed range: truncated frame");
    }
    offsets->push_back(pos);
    pos += frame;
  }
  return Status::OK();
}

Status EpochLeafHashes(Slice blob, std::vector<Sha256Digest>* leaves) {
  std::vector<uint64_t> offsets;
  CDB_RETURN_IF_ERROR(FrameBoundaries(blob, &offsets));
  leaves->assign(offsets.size(), Sha256Digest{});
  if (offsets.empty()) return Status::OK();
  // Domain-separated leaves need the 0x00 prefix in front of each frame;
  // one scratch string per frame keeps the batch API applicable.
  std::vector<std::string> prefixed(offsets.size());
  std::vector<Slice> inputs(offsets.size());
  for (size_t i = 0; i < offsets.size(); ++i) {
    size_t end = (i + 1 < offsets.size()) ? offsets[i + 1] : blob.size();
    prefixed[i].reserve(1 + (end - offsets[i]));
    prefixed[i].push_back('\x00');
    prefixed[i].append(blob.data() + offsets[i], end - offsets[i]);
    inputs[i] = Slice(prefixed[i]);
  }
  Sha256BatchHash(inputs.data(), inputs.size(), leaves->data());
  return Status::OK();
}

Sha256Digest ChainSeed(uint64_t audit_epoch) {
  std::string buf("complydb-chain-seed");
  PutFixed64(&buf, audit_epoch);
  return Sha256::Hash(buf);
}

Sha256Digest ChainLink(const Sha256Digest& prev, const SealedEpoch& header) {
  Sha256 h;
  const char prefix = '\x02';
  h.Update(Slice(&prefix, 1));
  h.Update(Slice(reinterpret_cast<const char*>(prev.data()), prev.size()));
  std::string buf;
  PutFixed64(&buf, header.seq);
  PutFixed64(&buf, header.audit_epoch);
  PutFixed64(&buf, header.begin_offset);
  PutFixed64(&buf, header.end_offset);
  PutFixed64(&buf, header.record_count);
  PutFixed64(&buf, header.sealed_time);
  PutDigest(&buf, header.merkle_root);
  h.Update(buf);
  return h.Finish();
}

// ---------------------------------------------------------------- records

std::string SealedEpoch::Encode() const {
  std::string payload;
  PutFixed64(&payload, seq);
  PutFixed64(&payload, audit_epoch);
  PutFixed64(&payload, begin_offset);
  PutFixed64(&payload, end_offset);
  PutFixed64(&payload, record_count);
  PutFixed64(&payload, sealed_time);
  PutDigest(&payload, merkle_root);
  PutDigest(&payload, chain);
  return Frame(payload);
}

Status SealedEpoch::Decode(Slice in, SealedEpoch* out, size_t* consumed) {
  Slice payload;
  CDB_RETURN_IF_ERROR(Unframe(in, &payload, consumed, "epoch chain"));
  Decoder dec(payload);
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->seq));
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->audit_epoch));
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->begin_offset));
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->end_offset));
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->record_count));
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->sealed_time));
  CDB_RETURN_IF_ERROR(GetDigest(&dec, &out->merkle_root));
  CDB_RETURN_IF_ERROR(GetDigest(&dec, &out->chain));
  if (!dec.Done()) return Status::Corruption("epoch chain: trailing bytes");
  return Status::OK();
}

Result<std::vector<SealedEpoch>> ReadEpochChain(const WormStore* worm,
                                                uint64_t audit_epoch) {
  std::vector<SealedEpoch> chain;
  const std::string name = ChainFileName(audit_epoch);
  if (!worm->Exists(name)) return chain;
  std::string blob;
  CDB_RETURN_IF_ERROR(worm->ReadAll(name, &blob));
  Sha256Digest prev = ChainSeed(audit_epoch);
  uint64_t next_begin = 0;
  size_t pos = 0;
  while (pos < blob.size()) {
    SealedEpoch se;
    size_t consumed = 0;
    CDB_RETURN_IF_ERROR(
        SealedEpoch::Decode(Slice(blob.data() + pos, blob.size() - pos), &se,
                            &consumed));
    pos += consumed;
    if (se.seq != chain.size() + 1 || se.audit_epoch != audit_epoch ||
        se.begin_offset != next_begin || se.end_offset < se.begin_offset) {
      return Status::Tampered("epoch chain: headers do not tile L (seq " +
                              std::to_string(se.seq) + ")");
    }
    if (!DigestEqual(se.chain, ChainLink(prev, se))) {
      return Status::Tampered("epoch chain: link digest mismatch at seq " +
                              std::to_string(se.seq));
    }
    prev = se.chain;
    next_begin = se.end_offset;
    chain.push_back(std::move(se));
  }
  return chain;
}

std::string CertificationRecord::Encode() const {
  std::string payload;
  PutFixed64(&payload, audit_epoch);
  PutFixed64(&payload, certified_seq);
  PutFixed64(&payload, certified_offset);
  PutDigest(&payload, chain_digest);
  PutDigest(&payload, mac);
  return Frame(payload);
}

Status CertificationRecord::Decode(Slice in, CertificationRecord* out,
                                   size_t* consumed) {
  Slice payload;
  CDB_RETURN_IF_ERROR(Unframe(in, &payload, consumed, "certification"));
  Decoder dec(payload);
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->audit_epoch));
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->certified_seq));
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->certified_offset));
  CDB_RETURN_IF_ERROR(GetDigest(&dec, &out->chain_digest));
  CDB_RETURN_IF_ERROR(GetDigest(&dec, &out->mac));
  if (!dec.Done()) return Status::Corruption("certification: trailing bytes");
  return Status::OK();
}

Sha256Digest CertificationRecord::ComputeMac(
    const std::string& auditor_key) const {
  std::string msg("complydb-cert");
  PutFixed64(&msg, audit_epoch);
  PutFixed64(&msg, certified_seq);
  PutFixed64(&msg, certified_offset);
  PutDigest(&msg, chain_digest);
  return HmacSha256(auditor_key, msg);
}

Result<CertificationRecord> ReadLastCertification(const WormStore* worm,
                                                  uint64_t audit_epoch) {
  const std::string name = CertFileName(audit_epoch);
  if (!worm->Exists(name)) {
    return Status::NotFound("no certification marker for epoch " +
                            std::to_string(audit_epoch));
  }
  std::string blob;
  CDB_RETURN_IF_ERROR(worm->ReadAll(name, &blob));
  CertificationRecord last;
  bool found = false;
  size_t pos = 0;
  while (pos < blob.size()) {
    CertificationRecord rec;
    size_t consumed = 0;
    CDB_RETURN_IF_ERROR(CertificationRecord::Decode(
        Slice(blob.data() + pos, blob.size() - pos), &rec, &consumed));
    pos += consumed;
    last = rec;
    found = true;
  }
  if (!found) {
    return Status::NotFound("certification file empty for epoch " +
                            std::to_string(audit_epoch));
  }
  return last;
}

// ----------------------------------------------------------------- sealer

Status EpochSealer::Attach(uint64_t audit_epoch) {
  auto chain = ReadEpochChain(worm_, audit_epoch);
  if (!chain.ok()) return chain.status();
  std::lock_guard<std::mutex> lock(mu_);
  epoch_ = audit_epoch;
  have_file_ = worm_->Exists(ChainFileName(audit_epoch));
  if (chain.value().empty()) {
    seq_ = 0;
    offset_ = 0;
    head_ = ChainSeed(audit_epoch);
  } else {
    const SealedEpoch& tail = chain.value().back();
    seq_ = tail.seq;
    offset_ = tail.end_offset;
    head_ = tail.chain;
  }
  attached_ = true;
  Cm().sealed_seq->Set(static_cast<int64_t>(seq_));
  return Status::OK();
}

Status EpochSealer::SealThrough(uint64_t durable_offset) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!attached_) {
    return Status::NotSupported("epoch sealer not attached");
  }
  if (durable_offset <= offset_) return Status::OK();
  obs::ScopedSpan span(obs::SpanKind::kEpochSeal, seq_ + 1,
                       durable_offset - offset_);
  obs::ScopedLatencyTimer timer(Cm().seal_us);
  std::string blob;
  CDB_RETURN_IF_ERROR(worm_->ReadAt(LogFileName(epoch_), offset_,
                                    durable_offset - offset_, &blob));
  if (blob.size() != durable_offset - offset_) {
    return Status::IOError("seal: L shorter than seal target");
  }
  std::vector<Sha256Digest> leaves;
  CDB_RETURN_IF_ERROR(EpochLeafHashes(blob, &leaves));
  SealedEpoch se;
  se.seq = seq_ + 1;
  se.audit_epoch = epoch_;
  se.begin_offset = offset_;
  se.end_offset = durable_offset;
  se.record_count = leaves.size();
  se.sealed_time = worm_->clock()->NowMicros();
  se.merkle_root = MerkleRoot(leaves);
  se.chain = ChainLink(head_, se);
  if (!have_file_) {
    CDB_RETURN_IF_ERROR(worm_->Create(ChainFileName(epoch_), 0));
    have_file_ = true;
  }
  // Unflushed on purpose: the seal runs on the epoch leader's critical
  // path and must not pay a second filer round trip. Chain bytes become
  // part of the WORM read set the moment any certify/attach reads the
  // file (ReadAll drains the append handle); a crash before that simply
  // shortens the sealed high-water mark, and the next seal re-covers the
  // gap.
  CDB_RETURN_IF_ERROR(worm_->AppendUnflushed(ChainFileName(epoch_),
                                             se.Encode()));
  seq_ = se.seq;
  offset_ = durable_offset;
  head_ = se.chain;
  Cm().sealed->Inc();
  Cm().sealed_seq->Set(static_cast<int64_t>(seq_));
  return Status::OK();
}

uint64_t EpochSealer::sealed_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

uint64_t EpochSealer::sealed_offset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return offset_;
}

Sha256Digest EpochSealer::head() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

}  // namespace complydb
