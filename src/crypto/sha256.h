#ifndef COMPLYDB_CRYPTO_SHA256_H_
#define COMPLYDB_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "crypto/sha256_kernels.h"

namespace complydb {

/// 32-byte digest.
using Sha256Digest = std::array<uint8_t, 32>;

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch — the repo
/// has no external crypto dependency. Used for tuple hashes, the
/// sequential page hash Hs, and HMAC signatures. Full blocks are
/// compressed by the best kernel the CPU supports (SHA-NI where present,
/// scalar otherwise; see sha256_kernels.h for the dispatch rules).
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(Slice data);
  Sha256Digest Finish();

  /// One-shot convenience.
  static Sha256Digest Hash(Slice data);

 private:
  std::array<uint32_t, 8> state_;
  uint64_t total_len_ = 0;
  std::array<uint8_t, 64> buffer_;
  size_t buffer_len_ = 0;
};

/// Hashes N independent buffers at once: out[i] = SHA-256(inputs[i]).
///
/// This is the engine's high-throughput entry point for page hashing —
/// the auditor's replay verifies one Hs per READ record and the pread tap
/// computes one per page fetch, and in both cases the per-record leaf
/// digests are independent. With AVX2 the batch runs eight messages in
/// vector lanes (multi-buffer); with SHA-NI it loops the (already faster)
/// single-stream kernel; the scalar loop remains the reference. All three
/// produce byte-identical digests.
void Sha256BatchHash(const Slice* inputs, size_t n, Sha256Digest* out);

/// Vector convenience over Sha256BatchHash.
std::vector<Sha256Digest> Sha256BatchHash(const std::vector<Slice>& inputs);

/// Lowercase hex encoding of arbitrary bytes.
std::string ToHex(Slice data);

/// Hex of a digest.
std::string DigestHex(const Sha256Digest& d);

}  // namespace complydb

#endif  // COMPLYDB_CRYPTO_SHA256_H_
