#ifndef COMPLYDB_CRYPTO_SHA256_H_
#define COMPLYDB_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/slice.h"

namespace complydb {

/// 32-byte digest.
using Sha256Digest = std::array<uint8_t, 32>;

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch — the repo
/// has no external crypto dependency. Used for tuple hashes, the
/// sequential page hash Hs, and HMAC signatures.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(Slice data);
  Sha256Digest Finish();

  /// One-shot convenience.
  static Sha256Digest Hash(Slice data);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  uint64_t total_len_ = 0;
  std::array<uint8_t, 64> buffer_;
  size_t buffer_len_ = 0;
};

/// Lowercase hex encoding of arbitrary bytes.
std::string ToHex(Slice data);

/// Hex of a digest.
std::string DigestHex(const Sha256Digest& d);

}  // namespace complydb

#endif  // COMPLYDB_CRYPTO_SHA256_H_
