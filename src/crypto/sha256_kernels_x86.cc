// x86 SHA-256 kernels: SHA-NI single-stream and AVX2 8-lane multi-buffer.
//
// Both are compiled with per-function target attributes so the translation
// unit builds on any x86 toolchain flags; callers must gate on the
// Sha256CpuHas*() probes (the dispatch in sha256_kernels.cc does).

#include "crypto/sha256_kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

namespace complydb {

// ---------------------------------------------------------------- SHA-NI
// Canonical SHA-extensions schedule: the 64 rounds run as 16 quads of 4
// through _mm_sha256rnds2_epu32, with the message schedule kept in a
// 4-register ring (msgs[q & 3] holds message quad W[4q..4q+3]).

__attribute__((target("sha,sse4.1")))
void Sha256BlocksShaNi(uint32_t state[8], const uint8_t* blocks,
                       size_t nblocks) {
  const __m128i kByteSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Repack the linear a..h state into the ABEF/CDGH register layout the
  // rnds2 instruction wants.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  state1 = _mm_shuffle_epi32(state1, 0x1B);
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);  // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);       // CDGH

  while (nblocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msgs[4];

    // Quads 0-2: load + byteswap, rounds, and seed the msg1 partials.
    for (int q = 0; q < 3; ++q) {
      msgs[q] = _mm_shuffle_epi8(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(blocks + 16 * q)),
          kByteSwap);
      __m128i m = _mm_add_epi32(
          msgs[q], _mm_loadu_si128(
                       reinterpret_cast<const __m128i*>(&kSha256K[4 * q])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, m);
      m = _mm_shuffle_epi32(m, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, m);
      if (q >= 1) {
        msgs[q - 1] = _mm_sha256msg1_epu32(msgs[q - 1], msgs[q]);
      }
    }
    msgs[3] = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 48)),
        kByteSwap);

    // Quads 3-15: run quad q's rounds while building W-quad q+1 one quad
    // ahead: W[q+1] = msg2(msg1(W[q-3],W[q-2]) + alignr(W[q],W[q-1]),
    // W[q]); the trailing msg1 seeds the partial consumed at quad q+3.
    for (int q = 3; q < 16; ++q) {
      const __m128i wq = msgs[q & 3];
      __m128i m = _mm_add_epi32(
          wq, _mm_loadu_si128(
                  reinterpret_cast<const __m128i*>(&kSha256K[4 * q])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, m);
      if (q < 15) {
        __m128i next = _mm_add_epi32(
            msgs[(q + 1) & 3], _mm_alignr_epi8(wq, msgs[(q - 1) & 3], 4));
        msgs[(q + 1) & 3] = _mm_sha256msg2_epu32(next, wq);
      }
      m = _mm_shuffle_epi32(m, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, m);
      if (q <= 12) {
        msgs[(q - 1) & 3] = _mm_sha256msg1_epu32(msgs[(q - 1) & 3], wq);
      }
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    blocks += 64;
  }

  // Unpack ABEF/CDGH back to linear a..h.
  tmp = _mm_shuffle_epi32(state0, 0x1B);
  state1 = _mm_shuffle_epi32(state1, 0xB1);
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);
  state1 = _mm_alignr_epi8(state1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

// ---------------------------------------------------------------- AVX2 ×8
// Straight vectorization of the scalar compression across eight
// independent messages: lane L of every 256-bit register belongs to
// message L. One call advances all eight lanes by one block.

namespace {

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

#define CDB_ROR32(x, n)                     \
  _mm256_or_si256(_mm256_srli_epi32((x), (n)), \
                  _mm256_slli_epi32((x), 32 - (n)))

__attribute__((target("avx2")))
void Sha256BlockAvx2x8(uint32_t* states[8], const uint8_t* blocks[8]) {
  const __m256i kByteSwap = _mm256_set_epi64x(
      0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL,
      0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Transpose the message words: w[t] lane L = word t of message L.
  __m256i w[16];
  for (int t = 0; t < 16; ++t) {
    w[t] = _mm256_set_epi32(
        static_cast<int>(Load32(blocks[7] + 4 * t)),
        static_cast<int>(Load32(blocks[6] + 4 * t)),
        static_cast<int>(Load32(blocks[5] + 4 * t)),
        static_cast<int>(Load32(blocks[4] + 4 * t)),
        static_cast<int>(Load32(blocks[3] + 4 * t)),
        static_cast<int>(Load32(blocks[2] + 4 * t)),
        static_cast<int>(Load32(blocks[1] + 4 * t)),
        static_cast<int>(Load32(blocks[0] + 4 * t)));
    w[t] = _mm256_shuffle_epi8(w[t], kByteSwap);
  }

  // Transpose the states the same way.
  __m256i v[8];
  for (int i = 0; i < 8; ++i) {
    v[i] = _mm256_set_epi32(
        static_cast<int>(states[7][i]), static_cast<int>(states[6][i]),
        static_cast<int>(states[5][i]), static_cast<int>(states[4][i]),
        static_cast<int>(states[3][i]), static_cast<int>(states[2][i]),
        static_cast<int>(states[1][i]), static_cast<int>(states[0][i]));
  }
  __m256i a = v[0], b = v[1], c = v[2], d = v[3];
  __m256i e = v[4], f = v[5], g = v[6], h = v[7];

  for (int i = 0; i < 64; ++i) {
    __m256i wi;
    if (i < 16) {
      wi = w[i];
    } else {
      const __m256i w15 = w[(i - 15) & 15];
      const __m256i w2 = w[(i - 2) & 15];
      const __m256i s0 = _mm256_xor_si256(
          _mm256_xor_si256(CDB_ROR32(w15, 7), CDB_ROR32(w15, 18)),
          _mm256_srli_epi32(w15, 3));
      const __m256i s1 = _mm256_xor_si256(
          _mm256_xor_si256(CDB_ROR32(w2, 17), CDB_ROR32(w2, 19)),
          _mm256_srli_epi32(w2, 10));
      wi = _mm256_add_epi32(
          _mm256_add_epi32(w[i & 15], s0),
          _mm256_add_epi32(w[(i - 7) & 15], s1));
      w[i & 15] = wi;
    }
    const __m256i s1 = _mm256_xor_si256(
        _mm256_xor_si256(CDB_ROR32(e, 6), CDB_ROR32(e, 11)),
        CDB_ROR32(e, 25));
    // ch = g ^ (e & (f ^ g))
    const __m256i ch = _mm256_xor_si256(
        g, _mm256_and_si256(e, _mm256_xor_si256(f, g)));
    const __m256i temp1 = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(h, s1),
                         _mm256_add_epi32(ch, wi)),
        _mm256_set1_epi32(static_cast<int>(kSha256K[i])));
    const __m256i s0 = _mm256_xor_si256(
        _mm256_xor_si256(CDB_ROR32(a, 2), CDB_ROR32(a, 13)),
        CDB_ROR32(a, 22));
    // maj = (a & b) | (c & (a | b))
    const __m256i maj = _mm256_or_si256(
        _mm256_and_si256(a, b),
        _mm256_and_si256(c, _mm256_or_si256(a, b)));
    const __m256i temp2 = _mm256_add_epi32(s0, maj);
    h = g;
    g = f;
    f = e;
    e = _mm256_add_epi32(d, temp1);
    d = c;
    c = b;
    b = a;
    a = _mm256_add_epi32(temp1, temp2);
  }

  v[0] = a; v[1] = b; v[2] = c; v[3] = d;
  v[4] = e; v[5] = f; v[6] = g; v[7] = h;
  alignas(32) uint32_t out[8][8];  // out[word][lane]
  for (int i = 0; i < 8; ++i) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(out[i]), v[i]);
  }
  for (int lane = 0; lane < 8; ++lane) {
    for (int i = 0; i < 8; ++i) {
      states[lane][i] += out[i][lane];
    }
  }
}

#undef CDB_ROR32

}  // namespace complydb

#endif  // defined(__x86_64__) || defined(__i386__)
