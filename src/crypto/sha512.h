#ifndef COMPLYDB_CRYPTO_SHA512_H_
#define COMPLYDB_CRYPTO_SHA512_H_

#include <array>
#include <cstdint>

#include "common/slice.h"

namespace complydb {

/// 64-byte digest.
using Sha512Digest = std::array<uint8_t, 64>;

/// SHA-512 (FIPS 180-4). The paper's ADD_HASH calls for a "big (512 bits
/// or more) secure one-way hash"; this is the h() underlying AddHash.
class Sha512 {
 public:
  Sha512() { Reset(); }

  void Reset();
  void Update(Slice data);
  Sha512Digest Finish();

  static Sha512Digest Hash(Slice data);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint64_t, 8> state_;
  uint64_t total_len_ = 0;  // bytes; fine below 2^61 bytes of input
  std::array<uint8_t, 128> buffer_;
  size_t buffer_len_ = 0;
};

}  // namespace complydb

#endif  // COMPLYDB_CRYPTO_SHA512_H_
