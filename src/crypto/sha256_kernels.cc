#include "crypto/sha256_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

namespace complydb {

const uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

namespace {

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

}  // namespace

void Sha256BlocksScalar(uint32_t state[8], const uint8_t* blocks,
                        size_t nblocks) {
  while (nblocks-- > 0) {
    const uint8_t* block = blocks;
    blocks += 64;
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
             (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
             (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
             static_cast<uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      uint32_t s0 =
          Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
      uint32_t ch = (e & f) ^ (~e & g);
      uint32_t temp1 = h + s1 + ch + kSha256K[i] + w[i];
      uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

const char* Sha256ImplName(Sha256Impl impl) {
  switch (impl) {
    case Sha256Impl::kAuto:
      return "auto";
    case Sha256Impl::kScalar:
      return "scalar";
    case Sha256Impl::kShaNi:
      return "shani";
    case Sha256Impl::kAvx2:
      return "avx2";
  }
  return "?";
}

bool Sha256CpuHasShaNi() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("sha") != 0 &&
         __builtin_cpu_supports("sse4.1") != 0;
#else
  return false;
#endif
}

bool Sha256CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

namespace {

Sha256Impl BestSupported() {
  if (Sha256CpuHasShaNi()) return Sha256Impl::kShaNi;
  if (Sha256CpuHasAvx2()) return Sha256Impl::kAvx2;
  return Sha256Impl::kScalar;
}

Sha256Impl FromEnv() {
  const char* v = std::getenv("COMPLYDB_SHA256_IMPL");
  if (v == nullptr) return BestSupported();
  std::string s(v);
  if (s == "scalar") return Sha256Impl::kScalar;
  if (s == "shani" && Sha256CpuHasShaNi()) return Sha256Impl::kShaNi;
  if (s == "avx2" && Sha256CpuHasAvx2()) return Sha256Impl::kAvx2;
  // Unknown or unsupported value: fall back to the CPU's best. A bad env
  // var must never crash the engine or silently weaken hashing.
  return BestSupported();
}

// The pinned implementation family. Resolved lazily from the environment
// on first use; Sha256ForceImpl overwrites it.
std::atomic<Sha256Impl>& PinnedImpl() {
  static std::atomic<Sha256Impl> impl{FromEnv()};
  return impl;
}

}  // namespace

Status Sha256ForceImpl(Sha256Impl impl) {
  switch (impl) {
    case Sha256Impl::kAuto:
      PinnedImpl().store(BestSupported(), std::memory_order_relaxed);
      return Status::OK();
    case Sha256Impl::kScalar:
      break;
    case Sha256Impl::kShaNi:
      if (!Sha256CpuHasShaNi()) {
        return Status::InvalidArgument("CPU lacks SHA-NI");
      }
      break;
    case Sha256Impl::kAvx2:
      if (!Sha256CpuHasAvx2()) {
        return Status::InvalidArgument("CPU lacks AVX2");
      }
      break;
  }
  PinnedImpl().store(impl, std::memory_order_relaxed);
  return Status::OK();
}

Sha256Impl Sha256ActiveImpl() {
  Sha256Impl impl = PinnedImpl().load(std::memory_order_relaxed);
  // AVX2 is a batch-only kernel: one buffer cannot fill eight lanes.
  if (impl == Sha256Impl::kAvx2) return Sha256Impl::kScalar;
  return impl;
}

Sha256Impl Sha256ActiveBatchImpl() {
  return PinnedImpl().load(std::memory_order_relaxed);
}

Sha256BlockFn Sha256ActiveBlockFn() {
#if defined(__x86_64__) || defined(__i386__)
  if (Sha256ActiveImpl() == Sha256Impl::kShaNi) return Sha256BlocksShaNi;
#endif
  return Sha256BlocksScalar;
}

}  // namespace complydb
