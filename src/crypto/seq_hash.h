#ifndef COMPLYDB_CRYPTO_SEQ_HASH_H_
#define COMPLYDB_CRYPTO_SEQ_HASH_H_

#include <string>
#include <vector>

#include "common/slice.h"
#include "crypto/sha256.h"

namespace complydb {

/// Sequential page hash Hs from the hash-page-on-read refinement (§V):
///
///   Hs(r_1, ..., r_n) = H( h(r_1) || Hs(r_2, ..., r_n) )
///
/// where h and H are SHA-256. The inputs are a page's tuples sorted by
/// their tuple order numbers; the compliance logger records Hs(page) in a
/// READ record, and the auditor recomputes it from its replayed page state.
/// A 32-byte Hs per page is what makes read verification affordable
/// (the paper: 1 GB of hashes for a 1 TB database) versus 200+-byte
/// commutative hashes.
class SeqHash {
 public:
  /// Hash of the empty sequence (all zero bytes).
  static Sha256Digest Empty();

  /// Computes Hs over the given elements, in the order given.
  static Sha256Digest Compute(const std::vector<Slice>& elements);

  /// Convenience for owned strings.
  static Sha256Digest ComputeOwned(const std::vector<std::string>& elements);
};

}  // namespace complydb

#endif  // COMPLYDB_CRYPTO_SEQ_HASH_H_
