#include "crypto/sha256.h"

#include <algorithm>
#include <cstring>

#include "crypto/sha256_kernels.h"
#include "obs/metrics.h"

namespace complydb {

namespace {

constexpr std::array<uint32_t, 8> kInitState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

inline void StoreDigestBigEndian(const uint32_t state[8], Sha256Digest* out) {
  for (int i = 0; i < 8; ++i) {
    (*out)[4 * i] = static_cast<uint8_t>(state[i] >> 24);
    (*out)[4 * i + 1] = static_cast<uint8_t>(state[i] >> 16);
    (*out)[4 * i + 2] = static_cast<uint8_t>(state[i] >> 8);
    (*out)[4 * i + 3] = static_cast<uint8_t>(state[i]);
  }
}

// One-shot hash of a single buffer through an explicit block kernel.
// Avoids the incremental object's buffering on the hot batch path.
void OneShot(Sha256BlockFn block_fn, const uint8_t* data, size_t len,
             Sha256Digest* out) {
  uint32_t state[8];
  std::memcpy(state, kInitState.data(), sizeof(state));

  const size_t nfull = len / 64;
  if (nfull > 0) block_fn(state, data, nfull);

  // Padded tail: the remaining bytes, 0x80, zeros, and the 64-bit
  // big-endian bit length — one block if rem <= 55, two otherwise.
  const size_t rem = len - nfull * 64;
  uint8_t tail[128];
  std::memcpy(tail, data + nfull * 64, rem);
  tail[rem] = 0x80;
  const size_t tail_blocks = (rem + 9 <= 64) ? 1 : 2;
  std::memset(tail + rem + 1, 0, tail_blocks * 64 - rem - 1 - 8);
  const uint64_t bit_len = static_cast<uint64_t>(len) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_blocks * 64 - 8 + i] =
        static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  block_fn(state, tail, tail_blocks);
  StoreDigestBigEndian(state, out);
}

}  // namespace

void Sha256::Reset() {
  state_ = kInitState;
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha256::Update(Slice data) {
  const Sha256BlockFn block_fn = Sha256ActiveBlockFn();
  const auto* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t n = data.size();
  total_len_ += n;

  if (buffer_len_ > 0) {
    size_t take = std::min(n, 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    n -= take;
    if (buffer_len_ == 64) {
      block_fn(state_.data(), buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  if (n >= 64) {
    const size_t nblocks = n / 64;
    block_fn(state_.data(), p, nblocks);
    p += nblocks * 64;
    n -= nblocks * 64;
  }
  if (n > 0) {
    std::memcpy(buffer_.data(), p, n);
    buffer_len_ = n;
  }
}

Sha256Digest Sha256::Finish() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad[72];
  size_t pad_len = (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);
  for (int i = 0; i < 8; ++i) {
    pad[pad_len + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(Slice(reinterpret_cast<const char*>(pad), pad_len + 8));

  Sha256Digest out;
  StoreDigestBigEndian(state_.data(), &out);
  Reset();
  return out;
}

Sha256Digest Sha256::Hash(Slice data) {
  Sha256Digest out;
  OneShot(Sha256ActiveBlockFn(),
          reinterpret_cast<const uint8_t*>(data.data()), data.size(), &out);
  return out;
}

// ------------------------------------------------------------------ batch

#if defined(__x86_64__) || defined(__i386__)
namespace {

// Per-lane cursor for the AVX2 multi-buffer walk. Lanes advance in
// lockstep one block at a time; a lane whose message is shorter than the
// group's longest parks on a zero block and a scratch state so the
// transform stays branch-free.
struct BatchLane {
  const uint8_t* data = nullptr;
  size_t nfull = 0;    // complete 64-byte blocks taken from `data`
  size_t nblocks = 0;  // nfull + 1-or-2 padded tail blocks
  uint8_t tail[128];
  uint32_t state[8];
};

void PrepareLane(BatchLane* lane, Slice input) {
  const auto* p = reinterpret_cast<const uint8_t*>(input.data());
  const size_t len = input.size();
  lane->data = p;
  lane->nfull = len / 64;
  const size_t rem = len - lane->nfull * 64;
  const size_t tail_blocks = (rem + 9 <= 64) ? 1 : 2;
  lane->nblocks = lane->nfull + tail_blocks;
  std::memcpy(lane->tail, p + lane->nfull * 64, rem);
  lane->tail[rem] = 0x80;
  std::memset(lane->tail + rem + 1, 0, tail_blocks * 64 - rem - 1 - 8);
  const uint64_t bit_len = static_cast<uint64_t>(len) * 8;
  for (int i = 0; i < 8; ++i) {
    lane->tail[tail_blocks * 64 - 8 + i] =
        static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  std::memcpy(lane->state, kInitState.data(), sizeof(lane->state));
}

// Hashes exactly eight buffers through the AVX2 lanes.
void BatchGroupAvx2(const Slice* inputs, Sha256Digest* out) {
  BatchLane lanes[8];
  size_t max_blocks = 0;
  for (int l = 0; l < 8; ++l) {
    PrepareLane(&lanes[l], inputs[l]);
    max_blocks = std::max(max_blocks, lanes[l].nblocks);
  }

  static const uint8_t kZeroBlock[64] = {0};
  uint32_t scratch[8];

  for (size_t b = 0; b < max_blocks; ++b) {
    uint32_t* states[8];
    const uint8_t* blocks[8];
    for (int l = 0; l < 8; ++l) {
      BatchLane& lane = lanes[l];
      if (b < lane.nfull) {
        states[l] = lane.state;
        blocks[l] = lane.data + 64 * b;
      } else if (b < lane.nblocks) {
        states[l] = lane.state;
        blocks[l] = lane.tail + 64 * (b - lane.nfull);
      } else {
        std::memcpy(scratch, kInitState.data(), sizeof(scratch));
        states[l] = scratch;
        blocks[l] = kZeroBlock;
      }
    }
    Sha256BlockAvx2x8(states, blocks);
  }
  for (int l = 0; l < 8; ++l) {
    StoreDigestBigEndian(lanes[l].state, &out[l]);
  }
}

}  // namespace
#endif  // defined(__x86_64__) || defined(__i386__)

void Sha256BatchHash(const Slice* inputs, size_t n, Sha256Digest* out) {
  if (n == 0) return;
  static obs::Counter* calls =
      obs::MetricsRegistry::Global().GetCounter("crypto.sha256.batch.calls");
  static obs::Counter* buffers =
      obs::MetricsRegistry::Global().GetCounter("crypto.sha256.batch.buffers");
  calls->Inc();
  buffers->Inc(n);

  size_t i = 0;
#if defined(__x86_64__) || defined(__i386__)
  if (Sha256ActiveBatchImpl() == Sha256Impl::kAvx2) {
    for (; i + 8 <= n; i += 8) {
      BatchGroupAvx2(inputs + i, out + i);
    }
  }
#endif
  // Remainder (and the whole batch on scalar/SHA-NI dispatch): loop the
  // fastest single-stream kernel.
  const Sha256BlockFn block_fn = Sha256ActiveBlockFn();
  for (; i < n; ++i) {
    OneShot(block_fn, reinterpret_cast<const uint8_t*>(inputs[i].data()),
            inputs[i].size(), &out[i]);
  }
}

std::vector<Sha256Digest> Sha256BatchHash(const std::vector<Slice>& inputs) {
  std::vector<Sha256Digest> out(inputs.size());
  Sha256BatchHash(inputs.data(), inputs.size(), out.data());
  return out;
}

std::string ToHex(Slice data) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (size_t i = 0; i < data.size(); ++i) {
    auto b = static_cast<unsigned char>(data[i]);
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

std::string DigestHex(const Sha256Digest& d) {
  return ToHex(Slice(reinterpret_cast<const char*>(d.data()), d.size()));
}

}  // namespace complydb
