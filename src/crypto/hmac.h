#ifndef COMPLYDB_CRYPTO_HMAC_H_
#define COMPLYDB_CRYPTO_HMAC_H_

#include <string>

#include "common/slice.h"
#include "crypto/sha256.h"

namespace complydb {

/// HMAC-SHA256 (RFC 2104). Stands in for the auditor's "digital signature"
/// over snapshots and stored hashes (paper §IV): the auditor holds a secret
/// key; anyone holding the key can verify that a snapshot or hash manifest
/// on WORM was produced by a legitimate audit and not forged by Mala.
Sha256Digest HmacSha256(Slice key, Slice message);

/// Constant-time digest comparison.
bool DigestEqual(const Sha256Digest& a, const Sha256Digest& b);

}  // namespace complydb

#endif  // COMPLYDB_CRYPTO_HMAC_H_
