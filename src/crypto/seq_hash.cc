#include "crypto/seq_hash.h"

#include <cstring>

namespace complydb {

Sha256Digest SeqHash::Empty() {
  Sha256Digest d{};
  return d;
}

Sha256Digest SeqHash::Compute(const std::vector<Slice>& elements) {
  // The chain itself is inherently serial, but the inner digests h(r_i)
  // are independent — batch them so the SIMD multi-buffer path applies.
  std::vector<Sha256Digest> inner(elements.size());
  Sha256BatchHash(elements.data(), elements.size(), inner.data());

  // Right fold per the definition: start from Hs() = 0^32 and wrap from the
  // last element backwards.
  Sha256Digest acc = Empty();
  uint8_t chain[64];
  for (size_t i = elements.size(); i-- > 0;) {
    std::memcpy(chain, inner[i].data(), 32);
    std::memcpy(chain + 32, acc.data(), 32);
    acc = Sha256::Hash(Slice(reinterpret_cast<const char*>(chain), 64));
  }
  return acc;
}

Sha256Digest SeqHash::ComputeOwned(const std::vector<std::string>& elements) {
  std::vector<Slice> slices;
  slices.reserve(elements.size());
  for (const auto& e : elements) slices.emplace_back(e);
  return Compute(slices);
}

}  // namespace complydb
