#include "crypto/seq_hash.h"

namespace complydb {

Sha256Digest SeqHash::Empty() {
  Sha256Digest d{};
  return d;
}

Sha256Digest SeqHash::Compute(const std::vector<Slice>& elements) {
  // Right fold per the definition: start from Hs() = 0^32 and wrap from the
  // last element backwards.
  Sha256Digest acc = Empty();
  for (size_t i = elements.size(); i-- > 0;) {
    Sha256Digest inner = Sha256::Hash(elements[i]);
    Sha256 outer;
    outer.Update(Slice(reinterpret_cast<const char*>(inner.data()), inner.size()));
    outer.Update(Slice(reinterpret_cast<const char*>(acc.data()), acc.size()));
    acc = outer.Finish();
  }
  return acc;
}

Sha256Digest SeqHash::ComputeOwned(const std::vector<std::string>& elements) {
  std::vector<Slice> slices;
  slices.reserve(elements.size());
  for (const auto& e : elements) slices.emplace_back(e);
  return Compute(slices);
}

}  // namespace complydb
