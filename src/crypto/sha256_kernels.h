#ifndef COMPLYDB_CRYPTO_SHA256_KERNELS_H_
#define COMPLYDB_CRYPTO_SHA256_KERNELS_H_

// SHA-256 compression kernels behind runtime CPU dispatch.
//
// Three block functions share one contract: fold `nblocks` contiguous
// 64-byte blocks into `state` (eight working words, host byte order).
//   * scalar  — portable FIPS 180-4 loop, always available, the
//               reference implementation every other kernel is tested
//               against;
//   * SHA-NI  — x86 SHA extensions (one block pipelined through
//               _mm_sha256rnds2_epu32), ~an order of magnitude faster
//               than scalar on supporting parts;
//   * AVX2 ×8 — eight *independent* messages in the lanes of 256-bit
//               vectors; only reachable through the batch API because a
//               single buffer cannot fill the lanes.
//
// Dispatch is resolved once per process: CPUID first, then the
// COMPLYDB_SHA256_IMPL environment variable ("scalar", "shani", "avx2",
// "auto") which can *restrict* but never enable an unsupported kernel —
// tests and benchmarks use it to pin a path.

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace complydb {

/// Folds `nblocks` contiguous 64-byte blocks into `state`.
using Sha256BlockFn = void (*)(uint32_t state[8], const uint8_t* blocks,
                               size_t nblocks);

/// Round constants (FIPS 180-4 §4.2.2), shared by every kernel.
extern const uint32_t kSha256K[64];

/// Portable reference kernel.
void Sha256BlocksScalar(uint32_t state[8], const uint8_t* blocks,
                        size_t nblocks);

/// Which kernel family backs single-buffer and batch hashing.
enum class Sha256Impl : uint8_t {
  kAuto = 0,   // pick the best the CPU supports (default)
  kScalar = 1,
  kShaNi = 2,  // x86 SHA extensions
  kAvx2 = 3,   // 8-way multi-buffer (batch only; single buffer = scalar)
};

const char* Sha256ImplName(Sha256Impl impl);

/// CPUID capability probes (false on non-x86 builds).
bool Sha256CpuHasShaNi();
bool Sha256CpuHasAvx2();

#if defined(__x86_64__) || defined(__i386__)
/// x86 SHA-extensions kernel. Call only when Sha256CpuHasShaNi().
void Sha256BlocksShaNi(uint32_t state[8], const uint8_t* blocks,
                       size_t nblocks);

/// AVX2 8-lane multi-buffer transform: one 64-byte block per lane.
/// `states[lane]` points at that lane's 8 working words; `blocks[lane]`
/// at its next block. Lanes are fully independent messages. Call only
/// when Sha256CpuHasAvx2().
void Sha256BlockAvx2x8(uint32_t* states[8], const uint8_t* blocks[8]);
#endif

/// Forces the dispatch to `impl` for this process (tests/benchmarks).
/// InvalidArgument if the CPU cannot run it. kAuto restores CPU-best.
Status Sha256ForceImpl(Sha256Impl impl);

/// The implementation single-buffer hashing currently resolves to
/// (kScalar or kShaNi — kAvx2 pins batch hashing but single-buffer
/// reports kScalar).
Sha256Impl Sha256ActiveImpl();

/// The implementation the batch API currently resolves to.
Sha256Impl Sha256ActiveBatchImpl();

/// Block function for single-buffer hashing under the active dispatch.
Sha256BlockFn Sha256ActiveBlockFn();

}  // namespace complydb

#endif  // COMPLYDB_CRYPTO_SHA256_KERNELS_H_
