#include "crypto/hmac.h"

#include <cstring>

namespace complydb {

Sha256Digest HmacSha256(Slice key, Slice message) {
  constexpr size_t kBlock = 64;
  uint8_t k[kBlock] = {0};
  if (key.size() > kBlock) {
    Sha256Digest kd = Sha256::Hash(key);
    std::memcpy(k, kd.data(), kd.size());
  } else {
    std::memcpy(k, key.data(), key.size());
  }

  uint8_t ipad[kBlock];
  uint8_t opad[kBlock];
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(Slice(reinterpret_cast<const char*>(ipad), kBlock));
  inner.Update(message);
  Sha256Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(Slice(reinterpret_cast<const char*>(opad), kBlock));
  outer.Update(Slice(reinterpret_cast<const char*>(inner_digest.data()),
                     inner_digest.size()));
  return outer.Finish();
}

bool DigestEqual(const Sha256Digest& a, const Sha256Digest& b) {
  unsigned char acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace complydb
