#ifndef COMPLYDB_CRYPTO_ADD_HASH_H_
#define COMPLYDB_CRYPTO_ADD_HASH_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace complydb {

/// Bellare–Micciancio incremental set hash (ADD_HASH, Eurocrypt '97):
///
///   ADD_HASH({a_1..a_n}) = sum_i SHA-512(a_i)   (mod 2^512)
///
/// Properties the audit algorithms rely on (paper §IV-A):
///  - Incremental: elements can be folded in one at a time.
///  - Commutative: independent of element order, so the auditor can hash
///    D_s ∪ L and D_f in whatever order a single pass encounters tuples.
///  - Pre-image resistant: equal hashes imply equal multisets (under the
///    hardness assumption of the construction).
///
/// `Remove` subtracts an element's digest; the shredding auditor uses it
/// to discount vacuumed tuples from a stored snapshot hash.
class AddHash {
 public:
  static constexpr size_t kLimbs = 8;  // 8 × 64-bit = 512-bit accumulator

  AddHash() { limbs_.fill(0); }

  /// Folds one set element in.
  void Add(Slice element);

  /// Subtracts one set element (mod 2^512).
  void Remove(Slice element);

  /// Folds an entire other accumulator in (set union of disjoint multisets).
  void Merge(const AddHash& other);

  bool operator==(const AddHash& other) const { return limbs_ == other.limbs_; }
  bool operator!=(const AddHash& other) const { return !(*this == other); }

  /// 64-byte little-endian serialization.
  std::string Serialize() const;
  static Result<AddHash> Deserialize(Slice data);

  std::string ToHex() const;

 private:
  void AddDigest(const std::array<uint8_t, 64>& digest, bool negate);

  std::array<uint64_t, kLimbs> limbs_;
};

}  // namespace complydb

#endif  // COMPLYDB_CRYPTO_ADD_HASH_H_
