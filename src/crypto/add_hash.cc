#include "crypto/add_hash.h"

#include "common/coding.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"

namespace complydb {

void AddHash::AddDigest(const std::array<uint8_t, 64>& digest, bool negate) {
  // Interpret the digest as 8 little-endian 64-bit limbs and add (or
  // subtract) into the accumulator with carry/borrow propagation; the
  // modulus 2^512 makes wraparound free.
  std::array<uint64_t, kLimbs> v{};
  for (size_t i = 0; i < kLimbs; ++i) {
    uint64_t limb = 0;
    for (int j = 7; j >= 0; --j) limb = (limb << 8) | digest[8 * i + j];
    v[i] = limb;
  }
  if (!negate) {
    uint64_t carry = 0;
    for (size_t i = 0; i < kLimbs; ++i) {
      uint64_t sum = limbs_[i] + v[i];
      uint64_t c1 = sum < limbs_[i] ? 1 : 0;
      uint64_t sum2 = sum + carry;
      uint64_t c2 = sum2 < sum ? 1 : 0;
      limbs_[i] = sum2;
      carry = c1 + c2;
    }
  } else {
    uint64_t borrow = 0;
    for (size_t i = 0; i < kLimbs; ++i) {
      uint64_t sub = limbs_[i] - v[i];
      uint64_t b1 = limbs_[i] < v[i] ? 1 : 0;
      uint64_t sub2 = sub - borrow;
      uint64_t b2 = sub < borrow ? 1 : 0;
      limbs_[i] = sub2;
      borrow = b1 + b2;
    }
  }
}

void AddHash::Add(Slice element) { AddDigest(Sha512::Hash(element), false); }

void AddHash::Remove(Slice element) { AddDigest(Sha512::Hash(element), true); }

void AddHash::Merge(const AddHash& other) {
  uint64_t carry = 0;
  for (size_t i = 0; i < kLimbs; ++i) {
    uint64_t sum = limbs_[i] + other.limbs_[i];
    uint64_t c1 = sum < limbs_[i] ? 1 : 0;
    uint64_t sum2 = sum + carry;
    uint64_t c2 = sum2 < sum ? 1 : 0;
    limbs_[i] = sum2;
    carry = c1 + c2;
  }
}

std::string AddHash::Serialize() const {
  std::string out;
  out.reserve(64);
  for (uint64_t limb : limbs_) PutFixed64(&out, limb);
  return out;
}

Result<AddHash> AddHash::Deserialize(Slice data) {
  if (data.size() != 64) {
    return Status::Corruption("AddHash: expected 64 bytes");
  }
  AddHash h;
  for (size_t i = 0; i < kLimbs; ++i) {
    h.limbs_[i] = DecodeFixed64(data.data() + 8 * i);
  }
  return h;
}

std::string AddHash::ToHex() const {
  std::string bytes = Serialize();
  return complydb::ToHex(bytes);
}

}  // namespace complydb
