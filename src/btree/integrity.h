#ifndef COMPLYDB_BTREE_INTEGRITY_H_
#define COMPLYDB_BTREE_INTEGRITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/buffer_cache.h"

namespace complydb {

/// Result of a full-tree structural verification.
struct TreeIntegrityReport {
  size_t leaf_pages = 0;
  size_t internal_pages = 0;
  size_t tuple_count = 0;
  /// Human-readable findings; empty means the tree is sound.
  std::vector<std::string> problems;

  bool ok() const { return problems.empty(); }
};

/// The auditor's index verification (paper §IV-C): catches the leaf-order
/// swap of Fig. 2(b) and the tampered internal key of Fig. 2(c), plus any
/// slot/heap corruption a file editor can produce.
///
/// Checks, per page and across the tree:
///  - page structure (magic, slot directory, record extents, tree id);
///  - leaf entries strictly sorted by (key, start); order numbers below
///    the page's counter;
///  - internal entries strictly sorted; every child's minimum within
///    [its separator, the next separator) — routing validity (migration
///    and vacuuming may raise a child's minimum above its separator, so
///    equality is not required);
///  - child level is exactly parent level - 1;
///  - the leaf sibling chain visits exactly the leaves, in key order.
///
/// Collects all problems rather than stopping at the first, so the audit
/// report can enumerate the tampered sites.
Result<TreeIntegrityReport> CheckTreeIntegrity(BufferCache* cache,
                                               uint32_t tree_id, PageId root);

}  // namespace complydb

#endif  // COMPLYDB_BTREE_INTEGRITY_H_
