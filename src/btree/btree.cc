#include "btree/btree.h"

#include <algorithm>

#include "common/coding.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace complydb {

namespace {

struct BtreeMetrics {
  obs::Counter* key_splits;
  obs::Counter* root_grows;
  obs::Counter* time_splits;
  obs::Counter* version_hops;
  BtreeMetrics() {
    auto& reg = obs::MetricsRegistry::Global();
    key_splits = reg.GetCounter("btree.key_splits");
    root_grows = reg.GetCounter("btree.root_grows");
    time_splits = reg.GetCounter("btree.time_splits");
    version_hops = reg.GetCounter("btree.version_hops");
  }
};
BtreeMetrics& Bm() {
  static BtreeMetrics m;
  return m;
}

// Insert loops retry after structure modifications; a bound turns a logic
// bug into an error instead of a hang.
constexpr int kMaxRetries = 32;

Status DecodeSlotKey(const Page& page, uint16_t slot, Slice* key,
                     uint64_t* start) {
  if (page.type() == PageType::kBtreeLeaf) {
    return DecodeTupleKey(page.RecordAt(slot), key, start);
  }
  PageId child;
  return DecodeIndexEntryKey(page.RecordAt(slot), key, start, &child);
}

// Split slot for a leaf: the key boundary nearest the median, so one key's
// version thread stays co-resident; mid-key split only when a single key
// fills the page.
uint16_t LeafSplitSlot(const Page& leaf) {
  uint16_t count = leaf.slot_count();
  uint16_t target = count / 2;
  uint16_t best = 0;
  int best_dist = 1 << 20;
  for (uint16_t i = 1; i < count; ++i) {
    Slice ka, kb;
    uint64_t sa, sb;
    if (!DecodeSlotKey(leaf, static_cast<uint16_t>(i - 1), &ka, &sa).ok()) break;
    if (!DecodeSlotKey(leaf, i, &kb, &sb).ok()) break;
    if (ka != kb) {
      int dist = std::abs(static_cast<int>(i) - static_cast<int>(target));
      if (dist < best_dist) {
        best_dist = dist;
        best = i;
      }
    }
  }
  return best != 0 ? best : target;
}

}  // namespace

uint16_t LeafLowerBound(const Page& leaf, Slice key, uint64_t start) {
  uint16_t lo = 0;
  uint16_t hi = leaf.slot_count();
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    Slice mk;
    uint64_t ms = 0;
    if (!DecodeTupleKey(leaf.RecordAt(mid), &mk, &ms).ok()) return lo;
    if (CompareVersion(mk, ms, key, start) < 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint16_t InternalFindChild(const Page& node, Slice key, uint64_t start) {
  uint16_t lo = 0;
  uint16_t hi = node.slot_count();
  // First entry with separator > probe; answer is the one before it.
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    Slice mk;
    uint64_t ms = 0;
    PageId child;
    if (!DecodeIndexEntryKey(node.RecordAt(mid), &mk, &ms, &child).ok()) {
      return lo;
    }
    if (CompareVersion(mk, ms, key, start) <= 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo > 0 ? static_cast<uint16_t>(lo - 1) : 0;
}

Result<PageId> Btree::Create(BufferCache* cache, uint32_t tree_id,
                             LogManager* wal) {
  Page* page = nullptr;
  Result<PageId> alloc = cache->NewPage(&page);
  if (!alloc.ok()) return alloc.status();
  page->Format(alloc.value(), PageType::kBtreeLeaf, tree_id, 0);
  if (wal != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kPageImage;
    rec.pgno = alloc.value();
    rec.tree_id = tree_id;
    rec.page_image.assign(page->data(), kPageSize);
    page->set_lsn(wal->Append(&rec));
  }
  cache->Unpin(alloc.value(), /*dirty=*/true);
  return alloc.value();
}

Status Btree::EmitPageImage(const Page& page, Page* mutable_page) {
  if (env_.wal == nullptr) return Status::OK();
  WalRecord rec;
  rec.type = WalRecordType::kPageImage;
  rec.txn_id = 0;
  rec.pgno = page.pgno();
  rec.tree_id = tree_id_;
  rec.page_image.assign(page.data(), kPageSize);
  Lsn lsn = env_.wal->Append(&rec);
  mutable_page->set_lsn(lsn);
  return Status::OK();
}

// Read descent with latch crabbing: the child's shared latch is acquired
// while the parent's is still held, so a concurrent split of the child
// cannot slip between reading the separator and reaching the page it
// names. Readers only ever latch top-down (and left-to-right across
// siblings); the writer never blocks on a reader-visible latch while
// holding one readers can reach — together that makes the latch graph
// acyclic.
Status Btree::DescendToLeaf(Slice key, uint64_t start,
                            std::vector<PageId>* path) const {
  path->clear();
  PageId pgno = root_;
  Page* page = nullptr;
  CDB_RETURN_IF_ERROR(
      env_.cache->FetchPage(pgno, &page, PageLatchMode::kShared));
  path->push_back(pgno);
  for (int depth = 0; depth < 64; ++depth) {
    if (page->type() == PageType::kBtreeLeaf) {
      env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
      return Status::OK();
    }
    if (page->type() != PageType::kBtreeInternal || page->slot_count() == 0) {
      env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
      return Status::Corruption("descent hit malformed page");
    }
    uint16_t idx = InternalFindChild(*page, key, start);
    Slice k;
    uint64_t s;
    PageId child;
    Status st = DecodeIndexEntryKey(page->RecordAt(idx), &k, &s, &child);
    if (!st.ok()) {
      env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
      return st;
    }
    Page* child_page = nullptr;
    Status fetch =
        env_.cache->FetchPage(child, &child_page, PageLatchMode::kShared);
    env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
    CDB_RETURN_IF_ERROR(fetch);
    pgno = child;
    page = child_page;
    path->push_back(pgno);
  }
  env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
  return Status::Corruption("tree too deep (cycle?)");
}

Status Btree::InsertVersion(TxnWalContext* txn, const TupleData& tuple,
                            PageId* pgno_out, uint16_t* order_no_out) {
  std::string probe = EncodeTuple(tuple);
  if (probe.size() > kMaxTupleRecord) {
    return Status::InvalidArgument("tuple record exceeds max size");
  }

  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    std::vector<PageId> path;
    CDB_RETURN_IF_ERROR(DescendToLeaf(tuple.key, tuple.start, &path));
    PageId leaf_pgno = path.back();
    Page* leaf = nullptr;
    CDB_RETURN_IF_ERROR(
        env_.cache->FetchPage(leaf_pgno, &leaf, PageLatchMode::kExclusive));

    uint16_t pos = LeafLowerBound(*leaf, tuple.key, tuple.start);
    if (pos < leaf->slot_count()) {
      Slice k;
      uint64_t s;
      Status st = DecodeTupleKey(leaf->RecordAt(pos), &k, &s);
      if (st.ok() && CompareVersion(k, s, tuple.key, tuple.start) == 0) {
        env_.cache->Unpin(leaf_pgno, false, PageLatchMode::kExclusive);
        return Status::InvalidArgument("duplicate (key, start) version");
      }
    }

    if (leaf->FreeSpace() < probe.size()) {
      env_.cache->Unpin(leaf_pgno, false, PageLatchMode::kExclusive);
      CDB_RETURN_IF_ERROR(HandleLeafOverflow(path));
      continue;
    }

    TupleData placed = tuple;
    placed.order_no = leaf->TakeOrderNumber();
    std::string rec = EncodeTuple(placed);
    Status st = leaf->InsertRecord(pos, rec);
    if (!st.ok()) {
      env_.cache->Unpin(leaf_pgno, false, PageLatchMode::kExclusive);
      return st;
    }
    if (txn != nullptr && txn->log != nullptr) {
      WalRecord wal;
      wal.type = WalRecordType::kTupleInsert;
      wal.pgno = leaf_pgno;
      wal.tree_id = tree_id_;
      wal.tuple = rec;
      leaf->set_lsn(txn->Emit(&wal));
    }
    env_.cache->Unpin(leaf_pgno, true, PageLatchMode::kExclusive);
    if (pgno_out != nullptr) *pgno_out = leaf_pgno;
    if (order_no_out != nullptr) *order_no_out = placed.order_no;
    return Status::OK();
  }
  return Status::Corruption("insert did not converge after splits");
}

Status Btree::HandleLeafOverflow(const std::vector<PageId>& path) {
  PageId leaf_pgno = path.back();
  SplitKind kind = SplitKind::kKeySplit;
  if (env_.split_policy != nullptr && env_.migration != nullptr) {
    Page* leaf = nullptr;
    CDB_RETURN_IF_ERROR(
        env_.cache->FetchPage(leaf_pgno, &leaf, PageLatchMode::kShared));
    kind = env_.split_policy->Decide(*leaf);
    env_.cache->Unpin(leaf_pgno, false, PageLatchMode::kShared);
  }
  if (kind == SplitKind::kTimeSplit) {
    size_t freed = 0;
    CDB_RETURN_IF_ERROR(TimeSplitLeaf(leaf_pgno, &freed));
    if (freed > 0) return Status::OK();
    // Nothing migratable: fall back to a key split.
  }
  if (path.size() == 1) return RootGrow();
  return KeySplit(path, path.size() - 1);
}

Status Btree::KeySplit(const std::vector<PageId>& path, size_t depth) {
  PageId x_pgno = path[depth];
  Page* x = nullptr;
  CDB_RETURN_IF_ERROR(
      env_.cache->FetchPage(x_pgno, &x, PageLatchMode::kExclusive));
  PageGuard x_guard(env_.cache, x_pgno, x, PageLatchMode::kExclusive);
  Page pre = *x;

  uint16_t count = x->slot_count();
  if (count < 2) return Status::Corruption("cannot split page with <2 slots");
  uint16_t s = LeafSplitSlot(*x);
  if (s == 0 || s >= count) s = count / 2;
  if (s == 0) s = 1;

  Page* n = nullptr;
  Result<PageId> alloc = env_.cache->NewPage(&n, PageLatchMode::kExclusive);
  if (!alloc.ok()) return alloc.status();
  PageId n_pgno = alloc.value();
  PageGuard n_guard(env_.cache, n_pgno, n, PageLatchMode::kExclusive);
  n->Format(n_pgno, x->type(), tree_id_, x->level());

  std::vector<std::string> records = x->AllRecords();
  for (uint16_t i = s; i < count; ++i) {
    CDB_RETURN_IF_ERROR(n->AppendRecord(records[i]));
  }
  for (uint16_t i = count; i-- > s;) {
    CDB_RETURN_IF_ERROR(x->EraseRecord(i));
  }
  if (x->type() == PageType::kBtreeLeaf) {
    n->set_next_order_number(x->next_order_number());
    n->set_right_sibling(x->right_sibling());
    x->set_right_sibling(n_pgno);
  }

  CDB_RETURN_IF_ERROR(EmitPageImage(*x, x));
  CDB_RETURN_IF_ERROR(EmitPageImage(*n, n));
  // The SMO must be WAL-durable before it is announced on L, so that a
  // crash can never leave L describing a split the recovered database
  // does not have (the reverse — WAL has it, L does not — reconciles via
  // ordinary NEW_TUPLE/UNDO diffs at the next page writes).
  if (env_.wal != nullptr && env_.observer != nullptr) {
    CDB_RETURN_IF_ERROR(env_.wal->FlushAll());
  }
  if (env_.observer != nullptr) {
    CDB_RETURN_IF_ERROR(env_.observer->OnPageSplit(
        tree_id_, x->level(), x_pgno, n_pgno, pre, *x, *n));
  }

  Slice sep_key;
  uint64_t sep_start = 0;
  CDB_RETURN_IF_ERROR(DecodeSlotKey(*n, 0, &sep_key, &sep_start));
  IndexEntry sep;
  sep.key = sep_key.ToString();
  sep.start = sep_start;
  sep.child = n_pgno;
  uint8_t parent_level = static_cast<uint8_t>(x->level() + 1);

  x_guard.MarkDirty();
  n_guard.MarkDirty();
  x_guard.Release();
  n_guard.Release();
  Bm().key_splits->Inc();

  return InsertSeparator(parent_level, sep);
}

// Separators are routed by a fresh descent from the root to
// `target_level`, so intervening splits/grows cannot leave us holding a
// stale parent.
Status Btree::InsertSeparator(size_t target_level, const IndexEntry& sep) {
  std::string rec = EncodeIndexEntry(sep);
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    // Descend from the root to the internal node at target_level. The
    // descent reads under shared latches; the target is then re-fetched
    // exclusive (only this writer mutates structure, so nothing can
    // change in the unlatched window between the two fetches).
    PageId pgno = root_;
    Page* page = nullptr;
    CDB_RETURN_IF_ERROR(
        env_.cache->FetchPage(pgno, &page, PageLatchMode::kShared));
    while (page->level() > target_level) {
      uint16_t idx = InternalFindChild(*page, sep.key, sep.start);
      Slice k;
      uint64_t s;
      PageId child;
      Status st = DecodeIndexEntryKey(page->RecordAt(idx), &k, &s, &child);
      env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
      CDB_RETURN_IF_ERROR(st);
      pgno = child;
      CDB_RETURN_IF_ERROR(
          env_.cache->FetchPage(pgno, &page, PageLatchMode::kShared));
    }
    if (page->level() != target_level ||
        page->type() != PageType::kBtreeInternal) {
      env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
      return Status::Corruption("separator descent reached wrong level");
    }
    env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
    CDB_RETURN_IF_ERROR(
        env_.cache->FetchPage(pgno, &page, PageLatchMode::kExclusive));

    if (page->FreeSpace() >= rec.size()) {
      // Insert position: after the last entry <= sep.
      uint16_t idx = InternalFindChild(*page, sep.key, sep.start);
      uint16_t pos = page->slot_count() == 0 ? 0 : static_cast<uint16_t>(idx + 1);
      // Probe may sort before the first entry.
      if (page->slot_count() > 0) {
        Slice k0;
        uint64_t s0;
        PageId c0;
        CDB_RETURN_IF_ERROR(
            DecodeIndexEntryKey(page->RecordAt(0), &k0, &s0, &c0));
        if (CompareVersion(sep.key, sep.start, k0, s0) < 0) pos = 0;
      }
      Status st = page->InsertRecord(pos, rec);
      if (!st.ok()) {
        env_.cache->Unpin(pgno, false, PageLatchMode::kExclusive);
        return st;
      }
      if (env_.wal != nullptr) {
        WalRecord wal;
        wal.type = WalRecordType::kIndexInsert;
        wal.txn_id = 0;
        wal.pgno = pgno;
        wal.tree_id = tree_id_;
        wal.tuple = rec;
        page->set_lsn(env_.wal->Append(&wal));
      }
      env_.cache->Unpin(pgno, true, PageLatchMode::kExclusive);
      return Status::OK();
    }

    // Overflowing internal node: grow the root or split and retry.
    env_.cache->Unpin(pgno, false, PageLatchMode::kExclusive);
    if (pgno == root_) {
      CDB_RETURN_IF_ERROR(RootGrow());
      continue;
    }
    CDB_RETURN_IF_ERROR(SplitInternal(pgno));
  }
  return Status::Corruption("separator insert did not converge");
}

Status Btree::SplitInternal(PageId pgno) {
  std::vector<PageId> path = {pgno};
  return KeySplit(path, 0);
}

Status Btree::RootGrow() {
  Page* r = nullptr;
  CDB_RETURN_IF_ERROR(
      env_.cache->FetchPage(root_, &r, PageLatchMode::kExclusive));
  PageGuard r_guard(env_.cache, root_, r, PageLatchMode::kExclusive);
  Page pre = *r;

  uint16_t count = r->slot_count();
  if (count < 2) return Status::Corruption("root grow with <2 slots");
  uint16_t s = r->type() == PageType::kBtreeLeaf ? LeafSplitSlot(*r)
                                                 : static_cast<uint16_t>(count / 2);
  if (s == 0 || s >= count) s = count / 2;
  if (s == 0) s = 1;

  Page* a = nullptr;
  Page* b = nullptr;
  Result<PageId> alloc_a = env_.cache->NewPage(&a, PageLatchMode::kExclusive);
  if (!alloc_a.ok()) return alloc_a.status();
  PageId a_pgno = alloc_a.value();
  PageGuard a_guard(env_.cache, a_pgno, a, PageLatchMode::kExclusive);
  Result<PageId> alloc_b = env_.cache->NewPage(&b, PageLatchMode::kExclusive);
  if (!alloc_b.ok()) return alloc_b.status();
  PageId b_pgno = alloc_b.value();
  PageGuard b_guard(env_.cache, b_pgno, b, PageLatchMode::kExclusive);

  a->Format(a_pgno, r->type(), tree_id_, r->level());
  b->Format(b_pgno, r->type(), tree_id_, r->level());

  std::vector<std::string> records = r->AllRecords();
  for (uint16_t i = 0; i < s; ++i) CDB_RETURN_IF_ERROR(a->AppendRecord(records[i]));
  for (uint16_t i = s; i < count; ++i) CDB_RETURN_IF_ERROR(b->AppendRecord(records[i]));

  if (r->type() == PageType::kBtreeLeaf) {
    a->set_next_order_number(r->next_order_number());
    b->set_next_order_number(r->next_order_number());
    a->set_right_sibling(b_pgno);
    b->set_right_sibling(r->right_sibling());
  }

  // Root becomes an internal node one level up with two child entries.
  uint8_t new_level = static_cast<uint8_t>(r->level() + 1);
  Slice min_a_key, min_b_key;
  uint64_t min_a_start = 0, min_b_start = 0;
  CDB_RETURN_IF_ERROR(DecodeSlotKey(*a, 0, &min_a_key, &min_a_start));
  CDB_RETURN_IF_ERROR(DecodeSlotKey(*b, 0, &min_b_key, &min_b_start));

  IndexEntry ea{min_a_key.ToString(), min_a_start, a_pgno};
  IndexEntry eb{min_b_key.ToString(), min_b_start, b_pgno};

  r->Format(root_, PageType::kBtreeInternal, tree_id_, new_level);
  CDB_RETURN_IF_ERROR(r->AppendRecord(EncodeIndexEntry(ea)));
  CDB_RETURN_IF_ERROR(r->AppendRecord(EncodeIndexEntry(eb)));

  CDB_RETURN_IF_ERROR(EmitPageImage(*a, a));
  CDB_RETURN_IF_ERROR(EmitPageImage(*b, b));
  CDB_RETURN_IF_ERROR(EmitPageImage(*r, r));
  if (env_.wal != nullptr && env_.observer != nullptr) {
    CDB_RETURN_IF_ERROR(env_.wal->FlushAll());  // see KeySplit
  }
  if (env_.observer != nullptr) {
    CDB_RETURN_IF_ERROR(env_.observer->OnRootGrow(tree_id_, root_, a_pgno,
                                                  b_pgno, pre, *r, *a, *b));
  }
  r_guard.MarkDirty();
  a_guard.MarkDirty();
  b_guard.MarkDirty();
  Bm().root_grows->Inc();
  return Status::OK();
}

Status Btree::TimeSplitLeaf(PageId leaf_pgno, size_t* freed) {
  *freed = 0;
  if (env_.migration == nullptr) return Status::OK();
  Page* x = nullptr;
  CDB_RETURN_IF_ERROR(
      env_.cache->FetchPage(leaf_pgno, &x, PageLatchMode::kExclusive));
  PageGuard x_guard(env_.cache, leaf_pgno, x, PageLatchMode::kExclusive);
  Page pre = *x;

  uint16_t count = x->slot_count();
  std::vector<TupleData> tuples(count);
  for (uint16_t i = 0; i < count; ++i) {
    CDB_RETURN_IF_ERROR(DecodeTuple(x->RecordAt(i), &tuples[i]));
  }
  // A version is migratable if a *committed* (stamped) successor version
  // of the same key sits right after it on this page.
  std::vector<uint16_t> victims;
  for (uint16_t i = 0; i + 1 < count; ++i) {
    if (tuples[i].key == tuples[i + 1].key && tuples[i].stamped &&
        tuples[i + 1].stamped) {
      victims.push_back(i);
    }
  }
  if (victims.empty()) return Status::OK();

  // Everything below pays WORM + WAL + observer I/O for the migration;
  // the span shows it as one block on the migrating thread's track.
  obs::ScopedSpan migrate_span(obs::SpanKind::kTsbMigrate, tree_id_,
                               leaf_pgno);

  Page hist;
  hist.Format(leaf_pgno, PageType::kBtreeLeaf, tree_id_, 0);
  for (uint16_t v : victims) {
    CDB_RETURN_IF_ERROR(hist.AppendRecord(x->RecordAt(v)));
  }
  hist.set_next_order_number(x->next_order_number());

  Result<std::string> name = env_.migration->WriteHistoricalPage(tree_id_, hist);
  if (!name.ok()) return name.status();

  size_t before = x->FreeSpace();
  for (size_t i = victims.size(); i-- > 0;) {
    CDB_RETURN_IF_ERROR(x->EraseRecord(victims[i]));
  }
  *freed = x->FreeSpace() - before;

  CDB_RETURN_IF_ERROR(EmitPageImage(*x, x));
  if (env_.wal != nullptr && env_.observer != nullptr) {
    CDB_RETURN_IF_ERROR(env_.wal->FlushAll());  // see KeySplit
  }
  if (env_.observer != nullptr) {
    CDB_RETURN_IF_ERROR(env_.observer->OnMigrate(tree_id_, leaf_pgno, pre, *x,
                                                 name.value(), hist));
  }
  ++migrated_pages_;
  Bm().time_splits->Inc();
  obs::MetricsRegistry::Global().GetCounter("tsb.migrated_tuples")
      ->Inc(victims.size());
  obs::TraceRing::Global().Emit(obs::TraceEventType::kTsbMigrate, tree_id_,
                                leaf_pgno);
  x_guard.MarkDirty();
  return Status::OK();
}

Status Btree::RemoveVersion(TxnWalContext* txn, Slice key, uint64_t start,
                            bool as_clr, Lsn undo_next) {
  std::vector<PageId> path;
  CDB_RETURN_IF_ERROR(DescendToLeaf(key, start, &path));
  PageId leaf_pgno = path.back();
  Page* leaf = nullptr;
  CDB_RETURN_IF_ERROR(
      env_.cache->FetchPage(leaf_pgno, &leaf, PageLatchMode::kExclusive));

  uint16_t pos = LeafLowerBound(*leaf, key, start);
  Slice k;
  uint64_t s = 0;
  if (pos >= leaf->slot_count() ||
      !DecodeTupleKey(leaf->RecordAt(pos), &k, &s).ok() ||
      CompareVersion(k, s, key, start) != 0) {
    env_.cache->Unpin(leaf_pgno, false, PageLatchMode::kExclusive);
    return Status::NotFound("version to remove not found");
  }
  std::string removed(leaf->RecordAt(pos).data(), leaf->RecordAt(pos).size());
  Status st = leaf->EraseRecord(pos);
  if (!st.ok()) {
    env_.cache->Unpin(leaf_pgno, false, PageLatchMode::kExclusive);
    return st;
  }
  if (txn != nullptr && txn->log != nullptr) {
    WalRecord wal;
    wal.type = as_clr ? WalRecordType::kClrRemove : WalRecordType::kTupleRemove;
    wal.pgno = leaf_pgno;
    wal.tree_id = tree_id_;
    wal.tuple = removed;
    wal.undo_next = undo_next;
    leaf->set_lsn(txn->Emit(&wal));
  }
  env_.cache->Unpin(leaf_pgno, true, PageLatchMode::kExclusive);
  return Status::OK();
}

Status Btree::ReinsertRecord(TxnWalContext* txn, Slice record, Lsn undo_next) {
  Slice key;
  uint64_t start = 0;
  CDB_RETURN_IF_ERROR(DecodeTupleKey(record, &key, &start));
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    std::vector<PageId> path;
    CDB_RETURN_IF_ERROR(DescendToLeaf(key, start, &path));
    PageId leaf_pgno = path.back();
    Page* leaf = nullptr;
    CDB_RETURN_IF_ERROR(
        env_.cache->FetchPage(leaf_pgno, &leaf, PageLatchMode::kExclusive));

    uint16_t pos = LeafLowerBound(*leaf, key, start);
    if (pos < leaf->slot_count()) {
      Slice k;
      uint64_t s;
      Status st = DecodeTupleKey(leaf->RecordAt(pos), &k, &s);
      if (st.ok() && CompareVersion(k, s, key, start) == 0) {
        env_.cache->Unpin(leaf_pgno, false, PageLatchMode::kExclusive);
        return Status::OK();  // already re-inserted (idempotent undo)
      }
    }
    if (leaf->FreeSpace() < record.size()) {
      env_.cache->Unpin(leaf_pgno, false, PageLatchMode::kExclusive);
      CDB_RETURN_IF_ERROR(HandleLeafOverflow(path));
      continue;
    }
    Status st = leaf->InsertRecord(pos, record);
    if (!st.ok()) {
      env_.cache->Unpin(leaf_pgno, false, PageLatchMode::kExclusive);
      return st;
    }
    if (txn != nullptr && txn->log != nullptr) {
      WalRecord wal;
      wal.type = WalRecordType::kClrInsert;
      wal.pgno = leaf_pgno;
      wal.tree_id = tree_id_;
      wal.tuple = record.ToString();
      wal.undo_next = undo_next;
      leaf->set_lsn(txn->Emit(&wal));
    }
    env_.cache->Unpin(leaf_pgno, true, PageLatchMode::kExclusive);
    return Status::OK();
  }
  return Status::Corruption("reinsert did not converge");
}

Status Btree::StampVersion(TxnWalContext* txn, Slice key, uint64_t txn_start,
                           uint64_t commit_time) {
  std::vector<PageId> path;
  CDB_RETURN_IF_ERROR(DescendToLeaf(key, txn_start, &path));
  PageId leaf_pgno = path.back();
  Page* leaf = nullptr;
  CDB_RETURN_IF_ERROR(
      env_.cache->FetchPage(leaf_pgno, &leaf, PageLatchMode::kExclusive));

  uint16_t pos = LeafLowerBound(*leaf, key, txn_start);
  TupleData t;
  if (pos >= leaf->slot_count() ||
      !DecodeTuple(leaf->RecordAt(pos), &t).ok() || t.key != key.ToString() ||
      t.start != txn_start) {
    env_.cache->Unpin(leaf_pgno, false, PageLatchMode::kExclusive);
    return Status::NotFound("version to stamp not found");
  }
  if (t.stamped) {
    env_.cache->Unpin(leaf_pgno, false, PageLatchMode::kExclusive);
    return Status::OK();  // idempotent (recovery re-stamps)
  }
  uint16_t order_no = t.order_no;
  t.start = commit_time;
  t.stamped = true;
  Status st = leaf->ReplaceRecord(pos, EncodeTuple(t));
  if (!st.ok()) {
    env_.cache->Unpin(leaf_pgno, false, PageLatchMode::kExclusive);
    return st;
  }
  if (txn != nullptr && txn->log != nullptr) {
    WalRecord wal;
    wal.type = WalRecordType::kTupleStamp;
    wal.pgno = leaf_pgno;
    wal.tree_id = tree_id_;
    wal.order_no = order_no;
    wal.commit_time = commit_time;
    wal.tuple = key.ToString();  // key bytes; start in undo_next field
    wal.undo_next = txn_start;
    leaf->set_lsn(txn->Emit(&wal));
  }
  env_.cache->Unpin(leaf_pgno, true, PageLatchMode::kExclusive);
  return Status::OK();
}

Status Btree::GetLatest(Slice key, TupleData* out) {
  std::vector<TupleData> versions;
  CDB_RETURN_IF_ERROR(GetVersions(key, &versions));
  if (versions.empty()) return Status::NotFound("no such key");
  const TupleData& last = versions.back();
  if (last.eol) return Status::NotFound("key deleted");
  *out = last;
  return Status::OK();
}

Status Btree::GetVersions(Slice key, std::vector<TupleData>* out) {
  out->clear();
  // Between DescendToLeaf dropping its latches and the refetch below, a
  // concurrent RootGrow can reformat the root — the only page whose type
  // ever changes — into an internal node; re-descend when that happens.
  // Sibling pointers never lead back to the root, so only the first leaf
  // needs the check.
  PageId pgno = kInvalidPage;
  Page* first = nullptr;
  for (;;) {
    std::vector<PageId> path;
    CDB_RETURN_IF_ERROR(DescendToLeaf(key, 0, &path));
    pgno = path.back();
    CDB_RETURN_IF_ERROR(
        env_.cache->FetchPage(pgno, &first, PageLatchMode::kShared));
    if (first->type() == PageType::kBtreeLeaf) break;
    env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
  }
  // Versions of a key can spill across leaves; follow siblings until a
  // larger key is seen (keys are globally sorted across the leaf chain).
  bool saw_larger_key = false;
  while (pgno != kInvalidPage && !saw_larger_key) {
    Page* leaf = first;
    if (leaf == nullptr) {
      CDB_RETURN_IF_ERROR(
          env_.cache->FetchPage(pgno, &leaf, PageLatchMode::kShared));
    }
    first = nullptr;
    uint16_t count = leaf->slot_count();
    std::vector<std::string> records;
    for (uint16_t i = LeafLowerBound(*leaf, key, 0); i < count; ++i) {
      Slice k;
      uint64_t s;
      Status st = DecodeTupleKey(leaf->RecordAt(i), &k, &s);
      if (!st.ok()) {
        env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
        return st;
      }
      if (k != key) {
        saw_larger_key = true;
        break;
      }
      records.emplace_back(leaf->RecordAt(i).data(), leaf->RecordAt(i).size());
    }
    PageId next = leaf->right_sibling();
    env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
    for (const auto& r : records) {
      TupleData t;
      CDB_RETURN_IF_ERROR(DecodeTuple(r, &t));
      out->push_back(std::move(t));
    }
    // Each extra leaf crossed to assemble one key's version thread is a
    // "hop" — the cost time-splitting exists to keep low.
    if (!saw_larger_key && next != kInvalidPage) Bm().version_hops->Inc();
    pgno = next;
  }
  return Status::OK();
}

Status Btree::ScanAll(
    const std::function<Status(PageId, const TupleData&)>& fn) {
  // Find the leftmost leaf, restarting if a concurrent RootGrow turns the
  // root into an internal node between the descent and the first fetch of
  // the sibling walk (see GetVersions).
  PageId pgno = kInvalidPage;
  Page* first = nullptr;
  for (;;) {
    pgno = root_;
    for (int depth = 0; depth < 64; ++depth) {
      Page* page = nullptr;
      CDB_RETURN_IF_ERROR(
          env_.cache->FetchPage(pgno, &page, PageLatchMode::kShared));
      if (page->type() == PageType::kBtreeLeaf) {
        env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
        break;
      }
      if (page->slot_count() == 0) {
        env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
        return Status::Corruption("empty internal page");
      }
      Slice k;
      uint64_t s;
      PageId child;
      Status st = DecodeIndexEntryKey(page->RecordAt(0), &k, &s, &child);
      env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
      CDB_RETURN_IF_ERROR(st);
      pgno = child;
    }
    CDB_RETURN_IF_ERROR(
        env_.cache->FetchPage(pgno, &first, PageLatchMode::kShared));
    if (first->type() == PageType::kBtreeLeaf) break;
    env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
  }
  // Walk the sibling chain.
  while (pgno != kInvalidPage) {
    Page* leaf = first;
    if (leaf == nullptr) {
      CDB_RETURN_IF_ERROR(
          env_.cache->FetchPage(pgno, &leaf, PageLatchMode::kShared));
    }
    first = nullptr;
    std::vector<std::string> records = leaf->AllRecords();
    PageId next = leaf->right_sibling();
    PageId this_pgno = pgno;
    env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
    for (const auto& r : records) {
      TupleData t;
      CDB_RETURN_IF_ERROR(DecodeTuple(r, &t));
      CDB_RETURN_IF_ERROR(fn(this_pgno, t));
    }
    pgno = next;
  }
  return Status::OK();
}

Status Btree::ScanVersionsInRange(
    Slice begin, Slice end,
    const std::function<Status(const TupleData&)>& fn) {
  // Same RootGrow race as GetVersions: re-descend if the page the descent
  // landed on was reformatted into an internal node in the meantime.
  PageId pgno = kInvalidPage;
  Page* first = nullptr;
  for (;;) {
    std::vector<PageId> path;
    CDB_RETURN_IF_ERROR(DescendToLeaf(begin, 0, &path));
    pgno = path.back();
    CDB_RETURN_IF_ERROR(
        env_.cache->FetchPage(pgno, &first, PageLatchMode::kShared));
    if (first->type() == PageType::kBtreeLeaf) break;
    env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
  }
  std::string end_key = end.ToString();
  bool stopped = false;
  while (pgno != kInvalidPage && !stopped) {
    Page* leaf = first;
    if (leaf == nullptr) {
      CDB_RETURN_IF_ERROR(
          env_.cache->FetchPage(pgno, &leaf, PageLatchMode::kShared));
    }
    first = nullptr;
    std::vector<std::string> records;
    uint16_t count = leaf->slot_count();
    for (uint16_t i = begin.empty() ? 0 : LeafLowerBound(*leaf, begin, 0);
         i < count; ++i) {
      Slice rec = leaf->RecordAt(i);
      records.emplace_back(rec.data(), rec.size());
    }
    PageId next = leaf->right_sibling();
    env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
    for (const auto& r : records) {
      TupleData t;
      CDB_RETURN_IF_ERROR(DecodeTuple(r, &t));
      if (!end_key.empty() && t.key >= end_key) {
        stopped = true;
        break;
      }
      Status s = fn(t);
      if (s.IsBusy()) {  // early-stop sentinel
        stopped = true;
        break;
      }
      CDB_RETURN_IF_ERROR(s);
    }
    pgno = next;
  }
  return Status::OK();
}

Status Btree::ScanCurrent(
    const std::function<Status(const TupleData&)>& fn) {
  return ScanRangeCurrent(Slice(), Slice(), fn);
}

Status Btree::ScanRangeCurrent(
    Slice begin, Slice end,
    const std::function<Status(const TupleData&)>& fn) {
  bool has_prev = false;
  bool stop_requested = false;
  TupleData prev;
  auto flush_group = [&]() -> Status {
    if (has_prev && !prev.eol) {
      Status s = fn(prev);
      if (s.IsBusy()) {
        stop_requested = true;
        return Status::OK();
      }
      return s;
    }
    return Status::OK();
  };

  CDB_RETURN_IF_ERROR(
      ScanVersionsInRange(begin, end, [&](const TupleData& t) -> Status {
        if (has_prev && t.key != prev.key) {
          CDB_RETURN_IF_ERROR(flush_group());
          if (stop_requested) return Status::Busy("stop");
        }
        prev = t;
        has_prev = true;
        return Status::OK();
      }));
  if (stop_requested) return Status::OK();
  return flush_group();
}

Result<Btree::PageStats> Btree::CountPages() {
  PageStats stats;
  // BFS from the root over internal entries.
  std::vector<PageId> frontier = {root_};
  while (!frontier.empty()) {
    PageId pgno = frontier.back();
    frontier.pop_back();
    Page* page = nullptr;
    CDB_RETURN_IF_ERROR(
        env_.cache->FetchPage(pgno, &page, PageLatchMode::kShared));
    if (page->type() == PageType::kBtreeLeaf) {
      ++stats.leaf_pages;
    } else {
      ++stats.internal_pages;
      for (uint16_t i = 0; i < page->slot_count(); ++i) {
        Slice k;
        uint64_t s;
        PageId child;
        Status st = DecodeIndexEntryKey(page->RecordAt(i), &k, &s, &child);
        if (!st.ok()) {
          env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
          return st;
        }
        frontier.push_back(child);
      }
    }
    env_.cache->Unpin(pgno, false, PageLatchMode::kShared);
  }
  return stats;
}

}  // namespace complydb
