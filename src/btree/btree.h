#ifndef COMPLYDB_BTREE_BTREE_H_
#define COMPLYDB_BTREE_BTREE_H_

#include <functional>
#include <string>
#include <vector>

#include "btree/split_policy.h"
#include "btree/structure_observer.h"
#include "btree/tuple.h"
#include "common/status.h"
#include "storage/buffer_cache.h"
#include "wal/log_manager.h"

namespace complydb {

/// Per-transaction WAL bookkeeping handed into B+-tree mutations: records
/// are chained via prev_lsn for undo. A null log means unlogged operation
/// (bulk loads that precede the first signed snapshot).
struct TxnWalContext {
  TxnId txn_id = 0;
  Lsn last_lsn = 0;
  LogManager* log = nullptr;

  Lsn Emit(WalRecord* rec) {
    if (log == nullptr) return 0;
    rec->txn_id = txn_id;
    rec->prev_lsn = last_lsn;
    last_lsn = log->Append(rec);
    return last_lsn;
  }
};

/// Everything a Btree needs from its environment.
struct BtreeEnv {
  BufferCache* cache = nullptr;
  LogManager* wal = nullptr;             // null: unlogged
  StructureObserver* observer = nullptr; // null: no compliance notifications
  SplitPolicy* split_policy = nullptr;   // null: always key-split
  MigrationSink* migration = nullptr;    // null: time splits fall back
};

/// A transaction-time B+-tree over slotted pages.
///
/// Entries are tuple *versions* ordered by (key, start); all versions of a
/// key are adjacent, so a page carries a key's version thread (the paper's
/// version threading, realized as physical adjacency). The root page id is
/// fixed for the life of the tree: when the root fills, its contents move
/// down into two fresh children ("root grow"), so the catalog never needs
/// updating.
///
/// Key splits prefer a key boundary nearest the median, keeping one key's
/// versions co-resident when possible — this is what makes time splits
/// (§VI) able to find superseded versions locally.
class Btree {
 public:
  /// Allocates and formats a root leaf for a new tree, logging its image
  /// (when `wal` is given) so redo can rebuild it after a crash.
  static Result<PageId> Create(BufferCache* cache, uint32_t tree_id,
                               LogManager* wal = nullptr);

  Btree(const BtreeEnv& env, uint32_t tree_id, PageId root)
      : env_(env), tree_id_(tree_id), root_(root) {}

  uint32_t tree_id() const { return tree_id_; }
  PageId root() const { return root_; }

  /// Inserts a new tuple version. Assigns the tuple order number from the
  /// destination page; reports where it landed.
  Status InsertVersion(TxnWalContext* txn, const TupleData& tuple,
                       PageId* pgno_out, uint16_t* order_no_out);

  /// Physically removes the version identified by (key, start). Used only
  /// by abort-undo (as_clr=true, logging a compensation record) and by the
  /// shredding vacuum (as_clr=false, logging kTupleRemove).
  Status RemoveVersion(TxnWalContext* txn, Slice key, uint64_t start,
                       bool as_clr, Lsn undo_next);

  /// Undo of a remove: re-inserts an exact previously-removed record
  /// (original order number preserved), logging a kClrInsert.
  Status ReinsertRecord(TxnWalContext* txn, Slice record, Lsn undo_next);

  /// Lazy timestamping: upgrades the version whose start equals
  /// `txn_start` (a transaction id) to the stamped commit time.
  Status StampVersion(TxnWalContext* txn, Slice key, uint64_t txn_start,
                      uint64_t commit_time);

  /// Latest version of `key`; NotFound if none or end-of-life.
  Status GetLatest(Slice key, TupleData* out);

  /// All versions of `key`, oldest first (crosses page boundaries).
  Status GetVersions(Slice key, std::vector<TupleData>* out);

  /// Every tuple version in every live leaf, in (key, start) order.
  Status ScanAll(
      const std::function<Status(PageId, const TupleData&)>& fn);

  /// Versions with begin <= key < end, in order, starting at the right
  /// leaf (end empty = unbounded). The callback may stop the scan early by
  /// returning Busy (treated as success).
  Status ScanVersionsInRange(
      Slice begin, Slice end,
      const std::function<Status(const TupleData&)>& fn);

  /// Latest non-EOL version per key.
  Status ScanCurrent(const std::function<Status(const TupleData&)>& fn);

  /// Latest non-EOL version per key with begin <= key < end
  /// (end empty = unbounded).
  Status ScanRangeCurrent(Slice begin, Slice end,
                          const std::function<Status(const TupleData&)>& fn);

  /// Page counts by kind, for the Fig. 4 benchmarks.
  struct PageStats {
    size_t leaf_pages = 0;
    size_t internal_pages = 0;
  };
  Result<PageStats> CountPages();

  /// Number of historical pages this tree has migrated to WORM.
  uint64_t migrated_pages() const { return migrated_pages_; }

 private:
  Status DescendToLeaf(Slice key, uint64_t start,
                       std::vector<PageId>* path) const;
  Status HandleLeafOverflow(const std::vector<PageId>& path);
  Status KeySplit(const std::vector<PageId>& path, size_t depth);
  Status SplitInternal(PageId pgno);
  Status RootGrow();
  Status TimeSplitLeaf(PageId leaf_pgno, size_t* freed);
  Status InsertSeparator(size_t target_level, const IndexEntry& sep);
  Status EmitPageImage(const Page& page, Page* mutable_page);

  BtreeEnv env_;
  uint32_t tree_id_;
  PageId root_;
  uint64_t migrated_pages_ = 0;
};

// --- helpers shared with the integrity checker and auditor ---

/// Binary search in a leaf: first slot whose (key, start) >= the probe.
uint16_t LeafLowerBound(const Page& leaf, Slice key, uint64_t start);

/// Internal routing: index of the entry to follow for the probe
/// (the last entry with separator <= probe, clamped to 0).
uint16_t InternalFindChild(const Page& node, Slice key, uint64_t start);

}  // namespace complydb

#endif  // COMPLYDB_BTREE_BTREE_H_
