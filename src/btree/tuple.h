#ifndef COMPLYDB_BTREE_TUPLE_H_
#define COMPLYDB_BTREE_TUPLE_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/page.h"

namespace complydb {

/// Largest tuple record we accept; guarantees several tuples per page.
constexpr size_t kMaxTupleRecord = 1024;

/// A physical tuple version as stored in a B+-tree leaf.
///
/// Transaction-time semantics (paper §II): every INSERT/UPDATE/DELETE
/// creates a new version. `start` holds the transaction id until the lazy
/// timestamper upgrades it to the commit time (`stamped` flips to true) —
/// the paper's "temporary commit time value". DELETE inserts an
/// end-of-life version (`eol`).
///
/// `order_no` is the tuple order number of the hash-page-on-read
/// refinement (§V): assigned from the page's counter at insert, stable for
/// the tuple's life on that page, and the sort key for the sequential page
/// hash Hs.
struct TupleData {
  std::string key;
  std::string value;
  uint64_t start = 0;
  uint16_t order_no = 0;
  bool stamped = false;
  bool eol = false;

  /// Canonical identity bytes for the completeness hash: excludes
  /// order_no and page placement, which may legitimately change (splits),
  /// and uses the *commit time* start (callers must resolve txn ids
  /// first). Layout: tree_id | start | eol | key | value.
  std::string IdentityBytes(uint32_t tree_id, uint64_t commit_start) const;
};

/// Leaf record layout:
///   rec_len u16 | flags u8 | order_no u16 | start u64 | key_len u16 |
///   key | value
std::string EncodeTuple(const TupleData& t);
Status DecodeTuple(Slice record, TupleData* out);

/// Internal-node entry: the minimum (key, start) of the child's subtree
/// plus the child page id (min-key representation; the audit's parent/
/// child consistency check compares these minima, §IV-C).
/// Layout: rec_len u16 | child u32 | start u64 | key_len u16 | key
struct IndexEntry {
  std::string key;
  uint64_t start = 0;
  PageId child = kInvalidPage;
};

std::string EncodeIndexEntry(const IndexEntry& e);
Status DecodeIndexEntry(Slice record, IndexEntry* out);

/// Zero-copy accessors for the hot comparison paths: extract (key, start)
/// from an encoded record without decoding the whole tuple. The record
/// must be well-formed (callers run CheckStructure / DecodeTuple on
/// untrusted pages first).
Status DecodeTupleKey(Slice record, Slice* key, uint64_t* start);
Status DecodeIndexEntryKey(Slice record, Slice* key, uint64_t* start,
                           PageId* child);

/// Version ordering: (key asc, start asc). With serial transactions the
/// lazy stamp upgrade (txn id -> commit time) never reorders versions,
/// because txn-id and commit-time draws interleave monotonically.
int CompareVersion(Slice key_a, uint64_t start_a, Slice key_b,
                   uint64_t start_b);

}  // namespace complydb

#endif  // COMPLYDB_BTREE_TUPLE_H_
