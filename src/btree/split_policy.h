#ifndef COMPLYDB_BTREE_SPLIT_POLICY_H_
#define COMPLYDB_BTREE_SPLIT_POLICY_H_

#include <string>

#include "common/status.h"
#include "storage/page.h"

namespace complydb {

/// What to do when a leaf overflows.
enum class SplitKind {
  kKeySplit,   // ordinary B+-tree split on the (key, start) ordering
  kTimeSplit,  // move superseded versions to a WORM historical page (§VI)
};

/// Policy hook consulted on leaf overflow. The default policy always key-
/// splits (a plain B+-tree). The time-split policy (src/tsb) implements the
/// paper's split-threshold rule: "if the number of distinct keys in a leaf
/// page is less than the split-threshold fraction of the total number of
/// tuples, the page is split on keys; otherwise it is split on time."
class SplitPolicy {
 public:
  virtual ~SplitPolicy() = default;
  virtual SplitKind Decide(const Page& leaf) = 0;
};

/// Receives historical pages produced by time splits; implemented over the
/// WORM store. Returns the WORM name under which the page was persisted.
class MigrationSink {
 public:
  virtual ~MigrationSink() = default;
  virtual Result<std::string> WriteHistoricalPage(uint32_t tree_id,
                                                  const Page& image) = 0;
};

}  // namespace complydb

#endif  // COMPLYDB_BTREE_SPLIT_POLICY_H_
