#include "btree/tuple.h"

#include "common/coding.h"

namespace complydb {

namespace {
constexpr uint8_t kFlagEol = 0x1;
constexpr uint8_t kFlagStamped = 0x2;
}  // namespace

std::string TupleData::IdentityBytes(uint32_t tree_id,
                                     uint64_t commit_start) const {
  std::string out;
  PutFixed32(&out, tree_id);
  PutFixed64(&out, commit_start);
  out.push_back(eol ? 1 : 0);
  PutLengthPrefixed(&out, key);
  PutLengthPrefixed(&out, value);
  return out;
}

std::string EncodeTuple(const TupleData& t) {
  std::string rec;
  size_t total = 2 + 1 + 2 + 8 + 2 + t.key.size() + t.value.size();
  PutFixed16(&rec, static_cast<uint16_t>(total));
  uint8_t flags = 0;
  if (t.eol) flags |= kFlagEol;
  if (t.stamped) flags |= kFlagStamped;
  rec.push_back(static_cast<char>(flags));
  PutFixed16(&rec, t.order_no);
  PutFixed64(&rec, t.start);
  PutFixed16(&rec, static_cast<uint16_t>(t.key.size()));
  rec += t.key;
  rec += t.value;
  return rec;
}

Status DecodeTuple(Slice record, TupleData* out) {
  Decoder dec(record);
  uint16_t rec_len = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed16(&rec_len));
  if (rec_len != record.size()) return Status::Corruption("tuple rec_len");
  std::string flags_byte;
  CDB_RETURN_IF_ERROR(dec.GetBytes(1, &flags_byte));
  uint8_t flags = static_cast<uint8_t>(flags_byte[0]);
  out->eol = (flags & kFlagEol) != 0;
  out->stamped = (flags & kFlagStamped) != 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed16(&out->order_no));
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->start));
  uint16_t key_len = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed16(&key_len));
  CDB_RETURN_IF_ERROR(dec.GetBytes(key_len, &out->key));
  CDB_RETURN_IF_ERROR(dec.GetBytes(dec.remaining(), &out->value));
  return Status::OK();
}

std::string EncodeIndexEntry(const IndexEntry& e) {
  std::string rec;
  size_t total = 2 + 4 + 8 + 2 + e.key.size();
  PutFixed16(&rec, static_cast<uint16_t>(total));
  PutFixed32(&rec, e.child);
  PutFixed64(&rec, e.start);
  PutFixed16(&rec, static_cast<uint16_t>(e.key.size()));
  rec += e.key;
  return rec;
}

Status DecodeIndexEntry(Slice record, IndexEntry* out) {
  Decoder dec(record);
  uint16_t rec_len = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed16(&rec_len));
  if (rec_len != record.size()) return Status::Corruption("index rec_len");
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->child));
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->start));
  uint16_t key_len = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed16(&key_len));
  CDB_RETURN_IF_ERROR(dec.GetBytes(key_len, &out->key));
  return Status::OK();
}

Status DecodeTupleKey(Slice record, Slice* key, uint64_t* start) {
  // rec_len u16 | flags u8 | order_no u16 | start u64 | key_len u16 | key...
  if (record.size() < 15) return Status::Corruption("tuple too short");
  *start = DecodeFixed64(record.data() + 5);
  uint16_t key_len = DecodeFixed16(record.data() + 13);
  if (15 + static_cast<size_t>(key_len) > record.size()) {
    return Status::Corruption("tuple key overflows record");
  }
  *key = Slice(record.data() + 15, key_len);
  return Status::OK();
}

Status DecodeIndexEntryKey(Slice record, Slice* key, uint64_t* start,
                           PageId* child) {
  // rec_len u16 | child u32 | start u64 | key_len u16 | key
  if (record.size() < 16) return Status::Corruption("index entry too short");
  *child = DecodeFixed32(record.data() + 2);
  *start = DecodeFixed64(record.data() + 6);
  uint16_t key_len = DecodeFixed16(record.data() + 14);
  if (16 + static_cast<size_t>(key_len) > record.size()) {
    return Status::Corruption("index key overflows record");
  }
  *key = Slice(record.data() + 16, key_len);
  return Status::OK();
}

int CompareVersion(Slice key_a, uint64_t start_a, Slice key_b,
                   uint64_t start_b) {
  int c = key_a.compare(key_b);
  if (c != 0) return c;
  if (start_a < start_b) return -1;
  if (start_a > start_b) return 1;
  return 0;
}

}  // namespace complydb
