#include "btree/integrity.h"

#include <functional>

#include "btree/tuple.h"
#include "storage/page.h"

namespace complydb {

namespace {

struct Walker {
  BufferCache* cache;
  uint32_t tree_id;
  TreeIntegrityReport* report;
  std::vector<PageId> leaves_in_order;

  void Problem(PageId pgno, const std::string& what) {
    report->problems.push_back("page " + std::to_string(pgno) + ": " + what);
  }

  // Verifies the subtree under `pgno` (expected at `level`), reporting the
  // subtree's minimum (key, start) through min_key/min_start.
  Status Visit(PageId pgno, int expected_level, std::string* min_key,
               uint64_t* min_start, bool* has_min) {
    *has_min = false;
    Page* page = nullptr;
    Status fetch = cache->FetchPage(pgno, &page);
    if (!fetch.ok()) {
      Problem(pgno, "unreadable: " + fetch.ToString());
      return Status::OK();
    }
    Page copy = *page;  // verify a stable copy; release the pin early
    cache->Unpin(pgno, false);

    Status st = copy.CheckStructure();
    if (!st.ok()) {
      Problem(pgno, st.ToString());
      return Status::OK();
    }
    if (copy.tree_id() != tree_id) {
      Problem(pgno, "wrong tree id");
      return Status::OK();
    }
    if (expected_level >= 0 && copy.level() != expected_level) {
      Problem(pgno, "level " + std::to_string(copy.level()) + " != expected " +
                        std::to_string(expected_level));
    }

    if (copy.type() == PageType::kBtreeLeaf) {
      ++report->leaf_pages;
      leaves_in_order.push_back(pgno);
      std::string prev_key;
      uint64_t prev_start = 0;
      bool has_prev = false;
      for (uint16_t i = 0; i < copy.slot_count(); ++i) {
        TupleData t;
        Status ds = DecodeTuple(copy.RecordAt(i), &t);
        if (!ds.ok()) {
          Problem(pgno, "slot " + std::to_string(i) + ": " + ds.ToString());
          continue;
        }
        ++report->tuple_count;
        if (t.order_no >= copy.next_order_number()) {
          Problem(pgno, "slot " + std::to_string(i) +
                            ": order number beyond page counter");
        }
        if (has_prev &&
            CompareVersion(prev_key, prev_start, t.key, t.start) >= 0) {
          Problem(pgno, "slot " + std::to_string(i) +
                            ": tuples out of (key, start) order");
        }
        if (i == 0) {
          *min_key = t.key;
          *min_start = t.start;
          *has_min = true;
        }
        prev_key = t.key;
        prev_start = t.start;
        has_prev = true;
      }
      return Status::OK();
    }

    if (copy.type() != PageType::kBtreeInternal) {
      Problem(pgno, "unexpected page type");
      return Status::OK();
    }
    ++report->internal_pages;
    if (copy.slot_count() == 0) {
      Problem(pgno, "empty internal node");
      return Status::OK();
    }

    std::string prev_sep_key;
    uint64_t prev_sep_start = 0;
    for (uint16_t i = 0; i < copy.slot_count(); ++i) {
      IndexEntry e;
      Status ds = DecodeIndexEntry(copy.RecordAt(i), &e);
      if (!ds.ok()) {
        Problem(pgno, "entry " + std::to_string(i) + ": " + ds.ToString());
        continue;
      }
      if (i > 0 && CompareVersion(prev_sep_key, prev_sep_start, e.key,
                                  e.start) >= 0) {
        Problem(pgno, "entry " + std::to_string(i) +
                          ": separators out of order");
      }

      std::string child_min_key;
      uint64_t child_min_start = 0;
      bool child_has_min = false;
      CDB_RETURN_IF_ERROR(Visit(e.child, copy.level() - 1, &child_min_key,
                                &child_min_start, &child_has_min));
      if (child_has_min) {
        // Routing validity: separator <= child's minimum. The first entry
        // acts as -infinity (lookups clamp to it), so its key is not
        // routing-relevant and is exempt.
        if (i > 0 &&
            CompareVersion(e.key, e.start, child_min_key, child_min_start) >
                0) {
          Problem(pgno, "entry " + std::to_string(i) +
                            ": separator exceeds child minimum (Fig. 2(c) "
                            "style tampering)");
        }
        // ...and the child's minimum must sort before the next separator.
        if (i + 1 < copy.slot_count()) {
          IndexEntry next;
          if (DecodeIndexEntry(copy.RecordAt(i + 1), &next).ok() &&
              CompareVersion(child_min_key, child_min_start, next.key,
                             next.start) >= 0) {
            Problem(pgno, "entry " + std::to_string(i) +
                              ": child minimum reaches into next separator");
          }
        }
        if (i == 0) {
          *min_key = child_min_key;
          *min_start = child_min_start;
          *has_min = true;
        }
      }
      prev_sep_key = e.key;
      prev_sep_start = e.start;
    }
    return Status::OK();
  }
};

}  // namespace

Result<TreeIntegrityReport> CheckTreeIntegrity(BufferCache* cache,
                                               uint32_t tree_id, PageId root) {
  TreeIntegrityReport report;
  Walker walker{cache, tree_id, &report, {}};

  std::string min_key;
  uint64_t min_start = 0;
  bool has_min = false;
  CDB_RETURN_IF_ERROR(walker.Visit(root, -1, &min_key, &min_start, &has_min));

  // The leaf sibling chain must visit exactly the in-order leaves.
  for (size_t i = 0; i < walker.leaves_in_order.size(); ++i) {
    PageId pgno = walker.leaves_in_order[i];
    Page* page = nullptr;
    Status fetch = cache->FetchPage(pgno, &page);
    if (!fetch.ok()) continue;  // already reported
    PageId sibling = page->right_sibling();
    cache->Unpin(pgno, false);
    PageId expected = (i + 1 < walker.leaves_in_order.size())
                          ? walker.leaves_in_order[i + 1]
                          : kInvalidPage;
    if (sibling != expected) {
      walker.Problem(pgno, "sibling link " + std::to_string(sibling) +
                               " != in-order successor " +
                               std::to_string(expected));
    }
  }
  return report;
}

}  // namespace complydb
