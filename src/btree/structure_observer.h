#ifndef COMPLYDB_BTREE_STRUCTURE_OBSERVER_H_
#define COMPLYDB_BTREE_STRUCTURE_OBSERVER_H_

#include <string>

#include "common/status.h"
#include "storage/page.h"

namespace complydb {

/// Synchronous notifications of structure modifications, consumed by the
/// compliance logger. The paper's PAGE_SPLIT records (§V) require the
/// plugin to know how tuples moved between pages — a pwrite-level diff
/// alone would misread a split as mass deletion plus mass insertion.
///
/// Contract: each callback fires *before* any post-image reaches disk, and
/// a non-OK return aborts the operation (compliance records must reach
/// WORM first, mirroring the data-page rule).
class StructureObserver {
 public:
  virtual ~StructureObserver() = default;

  /// Page `old_pgno` split; upper entries moved to fresh page `new_pgno`.
  virtual Status OnPageSplit(uint32_t tree_id, uint8_t level, PageId old_pgno,
                             PageId new_pgno, const Page& pre_old,
                             const Page& post_old, const Page& post_new) = 0;

  /// The (fixed) root page was full: its entries moved into two fresh
  /// children and the root became an internal node one level up.
  virtual Status OnRootGrow(uint32_t tree_id, PageId root_pgno,
                            PageId left_pgno, PageId right_pgno,
                            const Page& pre_root, const Page& post_root,
                            const Page& post_left, const Page& post_right) = 0;

  /// Time split: superseded versions of live page `live_pgno` moved to the
  /// WORM historical page `hist_name` (§VI).
  virtual Status OnMigrate(uint32_t tree_id, PageId live_pgno,
                           const Page& pre_live, const Page& post_live,
                           const std::string& hist_name,
                           const Page& hist_image) = 0;
};

}  // namespace complydb

#endif  // COMPLYDB_BTREE_STRUCTURE_OBSERVER_H_
