#ifndef COMPLYDB_WORM_WORM_STORE_H_
#define COMPLYDB_WORM_WORM_STORE_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"

namespace complydb {

/// Metadata the WORM server keeps per file. Create time comes from the
/// store's compliance clock (the paper trusts the WORM server's clock,
/// e.g. NetApp SnapLock's "Compliance Clock"); it is what lets the auditor
/// verify witness files and detect hidden crashes.
struct WormFileInfo {
  uint64_t create_time_micros = 0;
  uint64_t retention_micros = 0;  // 0 = retain forever (until explicit audit release)
  uint64_t size = 0;
  bool released = false;  // an audit marked the file superseded
};

/// Emulation of a compliance storage server (SnapLock / Centera class):
/// files are write-once at the granularity of bytes already written —
/// appends are allowed (the paper requires appendable WORM for logs), but
/// no byte once written can be changed, the file cannot be truncated, and
/// it cannot be deleted before its retention period has elapsed.
///
/// This object *is* the trust boundary of the architecture: everything in
/// it is assumed correct, everything outside it (the database files, the
/// transaction log on read/write media) is attackable. The adversary
/// simulator calls the same public API and must be refused; refusals are
/// counted in `violation_count()` so tests can assert the attack surface.
///
/// Files live under a directory; metadata (create time, retention) lives
/// in a sidecar `_worm_meta` file that is part of the trusted emulation.
class WormStore {
 public:
  /// Opens (creating if needed) a WORM store rooted at `dir`. `clock` must
  /// outlive the store.
  static Result<WormStore*> Open(const std::string& dir, Clock* clock);

  ~WormStore();

  WormStore(const WormStore&) = delete;
  WormStore& operator=(const WormStore&) = delete;

  /// Creates an empty file with the given retention period. Fails with
  /// WormViolation if the file already exists (create-once).
  Status Create(const std::string& name, uint64_t retention_micros);

  /// Appends bytes to an existing file. Appends are the only permitted
  /// mutation. Data is flushed to the OS before returning — a compliance
  /// log record is only "on WORM" once Append returns OK.
  Status Append(const std::string& name, Slice data);

  /// Append without the flush, for callers that batch several records and
  /// then call FlushAppends once (the compliance logger batches all
  /// records of one pwrite diff).
  Status AppendUnflushed(const std::string& name, Slice data);
  Status FlushAppends(const std::string& name);

  /// Create + single Append, for witness files and snapshots.
  Status CreateWithContent(const std::string& name, uint64_t retention_micros,
                           Slice content);

  /// Reads the whole file.
  Status ReadAll(const std::string& name, std::string* out) const;

  /// Reads up to n bytes at offset; short reads at EOF are not an error.
  Status ReadAt(const std::string& name, uint64_t offset, size_t n,
                std::string* out) const;

  /// Deletes a file. Refused (WormViolation) before retention expiry.
  /// The unit of deletion on WORM is the entire file (paper §VIII).
  Status Delete(const std::string& name);

  /// Marks a file as releasable immediately (the auditor calls this for
  /// superseded snapshots and compliance logs after a successful audit).
  Status ReleaseRetention(const std::string& name);

  bool Exists(const std::string& name) const;
  Result<WormFileInfo> GetInfo(const std::string& name) const;

  /// Names of all files, sorted.
  std::vector<std::string> List() const;

  /// Names of all files with the given prefix, sorted (prefix scans stand
  /// in for directory listings of witness/log-tail families).
  std::vector<std::string> ListPrefix(const std::string& prefix) const;

  /// Number of refused tampering attempts since open.
  uint64_t violation_count() const { return violations_; }

  Clock* clock() const { return clock_; }
  const std::string& dir() const { return dir_; }

 private:
  WormStore(std::string dir, Clock* clock)
      : dir_(std::move(dir)), clock_(clock) {}

  Status LoadMeta();
  Status SaveMeta() const;
  std::string PathFor(const std::string& name) const;
  Status Violation(const std::string& what) const;
  Result<std::FILE*> AppendHandle(const std::string& name);

  std::string dir_;
  Clock* clock_;
  std::map<std::string, WormFileInfo> meta_;
  // Cached append handles: the compliance log appends a record per tuple,
  // and fopen/fclose per record would dominate transaction cost.
  std::map<std::string, std::FILE*> handles_;
  mutable uint64_t violations_ = 0;
};

}  // namespace complydb

#endif  // COMPLYDB_WORM_WORM_STORE_H_
