#ifndef COMPLYDB_WORM_WORM_STORE_H_
#define COMPLYDB_WORM_WORM_STORE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"

namespace complydb {

/// Metadata the WORM server keeps per file. Create time comes from the
/// store's compliance clock (the paper trusts the WORM server's clock,
/// e.g. NetApp SnapLock's "Compliance Clock"); it is what lets the auditor
/// verify witness files and detect hidden crashes.
struct WormFileInfo {
  uint64_t create_time_micros = 0;
  uint64_t retention_micros = 0;  // 0 = retain forever (until explicit audit release)
  uint64_t size = 0;
  bool released = false;  // an audit marked the file superseded
  /// Bytes known flushed to the OS (in-memory bookkeeping only, never
  /// persisted: on load everything on disk is by definition durable).
  /// `size - durable_size` is what an un-flushed crash would lose.
  uint64_t durable_size = 0;
};

/// Emulation of a compliance storage server (SnapLock / Centera class):
/// files are write-once at the granularity of bytes already written —
/// appends are allowed (the paper requires appendable WORM for logs), but
/// no byte once written can be changed, the file cannot be truncated, and
/// it cannot be deleted before its retention period has elapsed.
///
/// This object *is* the trust boundary of the architecture: everything in
/// it is assumed correct, everything outside it (the database files, the
/// transaction log on read/write media) is attackable. The adversary
/// simulator calls the same public API and must be refused; refusals are
/// counted in `violation_count()` so tests can assert the attack surface.
///
/// Files live under a directory; metadata (create time, retention) lives
/// in a sidecar `_worm_meta` file that is part of the trusted emulation.
///
/// Thread-safe: the compliance log shipper appends from its own thread
/// while the main thread creates witness files, mirrors the WAL tail, and
/// reads for audits. One mutex serializes the whole store — the real
/// contention is the media, not the map.
class WormStore {
 public:
  /// Opens (creating if needed) a WORM store rooted at `dir`. `clock` must
  /// outlive the store.
  static Result<WormStore*> Open(const std::string& dir, Clock* clock);

  ~WormStore();

  WormStore(const WormStore&) = delete;
  WormStore& operator=(const WormStore&) = delete;

  /// Creates an empty file with the given retention period. Fails with
  /// WormViolation if the file already exists (create-once).
  Status Create(const std::string& name, uint64_t retention_micros);

  /// Appends bytes to an existing file. Appends are the only permitted
  /// mutation. Data is flushed to the OS before returning — a compliance
  /// log record is only "on WORM" once Append returns OK.
  Status Append(const std::string& name, Slice data);

  /// Append without the flush, for callers that batch several records and
  /// then call FlushAppends once (the compliance logger batches all
  /// records of one pwrite diff; the async shipper batches whole drains).
  Status AppendUnflushed(const std::string& name, Slice data);
  Status FlushAppends(const std::string& name);

  /// Create + single Append, for witness files and snapshots.
  Status CreateWithContent(const std::string& name, uint64_t retention_micros,
                           Slice content);

  /// Reads the whole file. Any bytes sitting in this store's append
  /// buffer are flushed first, so an in-process reader (the auditor)
  /// always sees every append that has been issued.
  Status ReadAll(const std::string& name, std::string* out) const;

  /// Reads up to n bytes at offset; short reads at EOF are not an error.
  Status ReadAt(const std::string& name, uint64_t offset, size_t n,
                std::string* out) const;

  /// Deletes a file. Refused (WormViolation) before retention expiry.
  /// The unit of deletion on WORM is the entire file (paper §VIII).
  Status Delete(const std::string& name);

  /// Marks a file as releasable immediately (the auditor calls this for
  /// superseded snapshots and compliance logs after a successful audit).
  /// No-op (and no metadata write) if already released.
  Status ReleaseRetention(const std::string& name);

  bool Exists(const std::string& name) const;
  Result<WormFileInfo> GetInfo(const std::string& name) const;

  /// Names of all files, sorted.
  std::vector<std::string> List() const;

  /// Names of all files with the given prefix, sorted (prefix scans stand
  /// in for directory listings of witness/log-tail families).
  std::vector<std::string> ListPrefix(const std::string& prefix) const;

  /// Number of refused tampering attempts since open.
  uint64_t violation_count() const {
    return violations_.load(std::memory_order_relaxed);
  }

  /// Simulated latency per durable flush. The paper's compliance store is
  /// a network-attached WORM filer (SnapLock/Centera class); every fflush
  /// models one round trip to it. 0 = local, free. Benchmarks use this to
  /// expose how many round trips a configuration pays — the async shipper
  /// exists to amortize them.
  void set_flush_latency_micros(uint64_t micros) {
    flush_latency_micros_ = micros;
  }
  uint64_t flush_latency_micros() const { return flush_latency_micros_; }

  Clock* clock() const { return clock_; }
  const std::string& dir() const { return dir_; }

 private:
  WormStore(std::string dir, Clock* clock)
      : dir_(std::move(dir)), clock_(clock) {}

  Status LoadMeta();
  // *Locked variants require mu_ held; public methods take it once.
  Status SaveMetaLocked() const;
  Status CreateLocked(const std::string& name, uint64_t retention_micros);
  Status AppendUnflushedLocked(const std::string& name, Slice data);
  Status FlushAppendsLocked(const std::string& name);
  Status ReadAllLocked(const std::string& name, std::string* out) const;
  std::string PathFor(const std::string& name) const;
  void SimulateFlushLatency() const;
  Status Violation(const std::string& what) const;
  Result<std::FILE*> AppendHandle(const std::string& name);

  std::string dir_;
  Clock* clock_;
  mutable std::mutex mu_;
  // mutable: ReadAll advances durable_size after draining the handle.
  mutable std::map<std::string, WormFileInfo> meta_;
  // Cached append handles: the compliance log appends a record per tuple,
  // and fopen/fclose per record would dominate transaction cost.
  // mutable: ReadAll must be able to drain a handle's buffered bytes.
  mutable std::map<std::string, std::FILE*> handles_;
  // Set whenever meta_ diverges from the persisted sidecar; SaveMeta
  // skips the write (and its rename) when nothing changed.
  mutable bool meta_dirty_ = false;
  mutable std::atomic<uint64_t> violations_{0};
  uint64_t flush_latency_micros_ = 0;
};

}  // namespace complydb

#endif  // COMPLYDB_WORM_WORM_STORE_H_
