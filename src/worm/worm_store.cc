#include "worm/worm_store.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/coding.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fs = std::filesystem;

namespace complydb {

namespace {
constexpr char kMetaFileName[] = "_worm_meta";
// File names are stored length-prefixed in the meta file; keep them sane.
constexpr size_t kMaxName = 4096;

struct WormMetrics {
  obs::Counter* appends;
  obs::Counter* append_bytes;
  obs::Counter* flushes;
  obs::Counter* violations;
  obs::Histogram* append_us;
  WormMetrics() {
    auto& reg = obs::MetricsRegistry::Global();
    appends = reg.GetCounter("worm.appends");
    append_bytes = reg.GetCounter("worm.append_bytes");
    flushes = reg.GetCounter("worm.flushes");
    violations = reg.GetCounter("worm.violations");
    append_us = reg.GetHistogram("worm.append_us");
  }
};
WormMetrics& Wm() {
  static WormMetrics m;
  return m;
}
}  // namespace

Result<WormStore*> WormStore::Open(const std::string& dir, Clock* clock) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("worm: cannot create dir " + dir + ": " +
                           ec.message());
  }
  auto* store = new WormStore(dir, clock);
  Status s = store->LoadMeta();
  if (!s.ok()) {
    delete store;
    return s;
  }
  return store;
}

WormStore::~WormStore() {
  for (auto& [name, handle] : handles_) {
    if (handle != nullptr) std::fclose(handle);
  }
  (void)SaveMetaLocked();
}

Result<std::FILE*> WormStore::AppendHandle(const std::string& name) {
  auto it = handles_.find(name);
  if (it != handles_.end()) return it->second;
  std::FILE* f = std::fopen(PathFor(name).c_str(), "ab");
  if (f == nullptr) return Status::IOError("worm: append open " + name);
  handles_[name] = f;
  return f;
}

std::string WormStore::PathFor(const std::string& name) const {
  return dir_ + "/" + name;
}

Status WormStore::Violation(const std::string& what) const {
  violations_.fetch_add(1, std::memory_order_relaxed);
  Wm().violations->Inc();
  return Status::WormViolation(what);
}

Status WormStore::LoadMeta() {
  std::ifstream in(PathFor(kMetaFileName), std::ios::binary);
  if (!in.is_open()) return Status::OK();  // fresh store
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  Decoder dec(blob);
  uint32_t count = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&count));
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    WormFileInfo info;
    CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&name));
    if (name.size() > kMaxName) return Status::Corruption("worm meta name");
    CDB_RETURN_IF_ERROR(dec.GetFixed64(&info.create_time_micros));
    CDB_RETURN_IF_ERROR(dec.GetFixed64(&info.retention_micros));
    CDB_RETURN_IF_ERROR(dec.GetFixed64(&info.size));
    std::string released;
    CDB_RETURN_IF_ERROR(dec.GetBytes(1, &released));
    info.released = released[0] != 0;
    // Reconcile with the actual file (appends persist sizes lazily).
    std::error_code ec;
    auto actual = fs::file_size(PathFor(name), ec);
    if (!ec && actual > info.size) {
      info.size = actual;
      meta_dirty_ = true;
    }
    // Everything that survived to disk is durable.
    info.durable_size = info.size;
    meta_[name] = info;
  }
  return Status::OK();
}

Status WormStore::SaveMetaLocked() const {
  if (!meta_dirty_) return Status::OK();
  std::string blob;
  PutFixed32(&blob, static_cast<uint32_t>(meta_.size()));
  for (const auto& [name, info] : meta_) {
    PutLengthPrefixed(&blob, name);
    PutFixed64(&blob, info.create_time_micros);
    PutFixed64(&blob, info.retention_micros);
    PutFixed64(&blob, info.size);
    blob.push_back(info.released ? 1 : 0);
  }
  std::string tmp = PathFor(std::string(kMetaFileName) + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return Status::IOError("worm meta write");
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out.good()) return Status::IOError("worm meta flush");
  }
  std::error_code ec;
  fs::rename(tmp, PathFor(kMetaFileName), ec);
  if (ec) return Status::IOError("worm meta rename: " + ec.message());
  meta_dirty_ = false;
  return Status::OK();
}

Status WormStore::CreateLocked(const std::string& name,
                               uint64_t retention_micros) {
  if (name.empty() || name == kMetaFileName || name.find('/') != std::string::npos) {
    return Status::InvalidArgument("worm: bad file name: " + name);
  }
  if (meta_.count(name) > 0) {
    return Violation("worm: create-over-existing refused: " + name);
  }
  std::ofstream out(PathFor(name), std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IOError("worm: create " + name);
  out.close();
  WormFileInfo info;
  info.create_time_micros = clock_->NowMicros();
  info.retention_micros = retention_micros;
  info.size = 0;
  info.durable_size = 0;
  meta_[name] = info;
  meta_dirty_ = true;
  return SaveMetaLocked();
}

Status WormStore::Create(const std::string& name, uint64_t retention_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  return CreateLocked(name, retention_micros);
}

Status WormStore::AppendUnflushedLocked(const std::string& name, Slice data) {
  auto it = meta_.find(name);
  if (it == meta_.end()) return Status::NotFound("worm: no such file: " + name);
  WormMetrics& wm = Wm();
  obs::ScopedLatencyTimer timer(wm.append_us);
  Result<std::FILE*> handle = AppendHandle(name);
  if (!handle.ok()) return handle.status();
  size_t n = std::fwrite(data.data(), 1, data.size(), handle.value());
  if (n != data.size()) return Status::IOError("worm: append write " + name);
  wm.appends->Inc();
  wm.append_bytes->Inc(data.size());
  obs::TraceRing::Global().Emit(obs::TraceEventType::kWormAppend,
                                data.size(), meta_.size());
  // Size is tracked in memory and persisted lazily (dtor / next metadata
  // change); on reopen LoadMeta reconciles against the real file size, so
  // a stale persisted size can only under-count — never mask truncation.
  it->second.size += data.size();
  meta_dirty_ = true;
  return Status::OK();
}

Status WormStore::AppendUnflushed(const std::string& name, Slice data) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendUnflushedLocked(name, data);
}

Status WormStore::FlushAppendsLocked(const std::string& name) {
  auto it = handles_.find(name);
  if (it == handles_.end()) return Status::OK();
  if (std::fflush(it->second) != 0) {
    return Status::IOError("worm: append flush " + name);
  }
  Wm().flushes->Inc();
  auto info = meta_.find(name);
  if (info != meta_.end()) info->second.durable_size = info->second.size;
  return Status::OK();
}

Status WormStore::FlushAppends(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CDB_RETURN_IF_ERROR(FlushAppendsLocked(name));
  }
  SimulateFlushLatency();
  return Status::OK();
}

Status WormStore::Append(const std::string& name, Slice data) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CDB_RETURN_IF_ERROR(AppendUnflushedLocked(name, data));
    CDB_RETURN_IF_ERROR(FlushAppendsLocked(name));
  }
  SimulateFlushLatency();
  return Status::OK();
}

Status WormStore::CreateWithContent(const std::string& name,
                                    uint64_t retention_micros, Slice content) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CDB_RETURN_IF_ERROR(CreateLocked(name, retention_micros));
    if (content.empty()) return Status::OK();
    CDB_RETURN_IF_ERROR(AppendUnflushedLocked(name, content));
    CDB_RETURN_IF_ERROR(FlushAppendsLocked(name));
  }
  SimulateFlushLatency();
  return Status::OK();
}

void WormStore::SimulateFlushLatency() const {
  // One round trip to the network WORM filer per durable flush. Paid
  // *outside* mu_: the filer serves concurrent requests, so a flush in
  // flight must not make unrelated appends (the WAL tail mirror, a
  // barrier drain on another thread) queue behind its latency.
  if (flush_latency_micros_ > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(flush_latency_micros_));
  }
}

Status WormStore::ReadAllLocked(const std::string& name,
                                std::string* out) const {
  auto it = meta_.find(name);
  if (it == meta_.end()) return Status::NotFound("worm: no such file: " + name);
  // Drain any bytes still in our own append buffer so the read observes
  // every issued append (matters for the lazily-flushed stamp index).
  auto handle = handles_.find(name);
  if (handle != handles_.end()) {
    if (std::fflush(handle->second) != 0) {
      return Status::IOError("worm: append flush " + name);
    }
    it->second.durable_size = it->second.size;
  }
  std::ifstream in(PathFor(name), std::ios::binary);
  if (!in.is_open()) return Status::IOError("worm: read open " + name);
  out->assign((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  // The real server would never serve a file shorter than its recorded
  // size; a mismatch here means someone edited the backing directory
  // out-of-band, which the emulation reports as tampering.
  if (out->size() < it->second.size) {
    return Status::Tampered("worm: file shorter than recorded size: " + name);
  }
  return Status::OK();
}

Status WormStore::ReadAll(const std::string& name, std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadAllLocked(name, out);
}

Status WormStore::ReadAt(const std::string& name, uint64_t offset, size_t n,
                         std::string* out) const {
  // Seek-based ranged read: the incremental auditor re-reads only the
  // delta window of L per certification, so pulling the whole file just
  // to substr it would make every "O(delta)" read O(total L).
  std::lock_guard<std::mutex> lock(mu_);
  out->clear();
  auto it = meta_.find(name);
  if (it == meta_.end()) return Status::NotFound("worm: no such file: " + name);
  // Drain our own append buffer so the read observes every issued append,
  // exactly as ReadAll does.
  auto handle = handles_.find(name);
  if (handle != handles_.end()) {
    if (std::fflush(handle->second) != 0) {
      return Status::IOError("worm: append flush " + name);
    }
    it->second.durable_size = it->second.size;
  }
  if (offset >= it->second.size) return Status::OK();
  std::ifstream in(PathFor(name), std::ios::binary);
  if (!in.is_open()) return Status::IOError("worm: read open " + name);
  size_t want = static_cast<size_t>(
      std::min<uint64_t>(n, it->second.size - offset));
  out->resize(want);
  in.seekg(static_cast<std::streamoff>(offset));
  in.read(out->data(), static_cast<std::streamsize>(want));
  // The real server would never serve fewer bytes than its recorded size
  // covers; a short read means the backing directory was edited
  // out-of-band, which the emulation reports as tampering.
  if (static_cast<size_t>(in.gcount()) < want) {
    out->resize(static_cast<size_t>(std::max<std::streamsize>(in.gcount(), 0)));
    return Status::Tampered("worm: file shorter than recorded size: " + name);
  }
  return Status::OK();
}

Status WormStore::Delete(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = meta_.find(name);
  if (it == meta_.end()) return Status::NotFound("worm: no such file: " + name);
  const WormFileInfo& info = it->second;
  if (!info.released) {
    if (info.retention_micros == 0) {
      return Violation("worm: delete of retain-forever file refused: " + name);
    }
    uint64_t now = clock_->NowMicros();
    if (now < info.create_time_micros + info.retention_micros) {
      return Violation("worm: delete before retention expiry refused: " +
                       name);
    }
  }
  auto handle = handles_.find(name);
  if (handle != handles_.end()) {
    std::fclose(handle->second);
    handles_.erase(handle);
  }
  std::error_code ec;
  fs::remove(PathFor(name), ec);
  if (ec) return Status::IOError("worm: delete " + name + ": " + ec.message());
  meta_.erase(it);
  meta_dirty_ = true;
  return SaveMetaLocked();
}

Status WormStore::ReleaseRetention(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = meta_.find(name);
  if (it == meta_.end()) return Status::NotFound("worm: no such file: " + name);
  if (it->second.released) return Status::OK();  // nothing changed: no write
  it->second.released = true;
  meta_dirty_ = true;
  return SaveMetaLocked();
}

bool WormStore::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return meta_.count(name) > 0;
}

Result<WormFileInfo> WormStore::GetInfo(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = meta_.find(name);
  if (it == meta_.end()) return Status::NotFound("worm: no such file: " + name);
  return it->second;
}

std::vector<std::string> WormStore::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(meta_.size());
  for (const auto& [name, info] : meta_) names.push_back(name);
  return names;
}

std::vector<std::string> WormStore::ListPrefix(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (auto it = meta_.lower_bound(prefix); it != meta_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    names.push_back(it->first);
  }
  return names;
}

}  // namespace complydb
