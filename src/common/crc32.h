#ifndef COMPLYDB_COMMON_CRC32_H_
#define COMPLYDB_COMMON_CRC32_H_

#include <cstdint>

#include "common/slice.h"

namespace complydb {

/// CRC-32 (IEEE 802.3 polynomial). Used as the integrity checksum on WAL
/// and compliance-log records; *not* a security primitive — tamper
/// detection relies on the crypto module, CRC only catches torn writes.
uint32_t Crc32(Slice data);

/// Extends a running CRC with more data (crc is the value returned by a
/// previous Crc32/Crc32Extend call).
uint32_t Crc32Extend(uint32_t crc, Slice data);

}  // namespace complydb

#endif  // COMPLYDB_COMMON_CRC32_H_
