#ifndef COMPLYDB_COMMON_CODING_H_
#define COMPLYDB_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace complydb {

// Little-endian fixed-width integer codecs. All on-disk and on-log integers
// in complydb go through these, so file formats are endian-stable.

void PutFixed16(std::string* dst, uint16_t v);
void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);

void EncodeFixed16(char* dst, uint16_t v);
void EncodeFixed32(char* dst, uint32_t v);
void EncodeFixed64(char* dst, uint64_t v);

uint16_t DecodeFixed16(const char* p);
uint32_t DecodeFixed32(const char* p);
uint64_t DecodeFixed64(const char* p);

/// Appends a length-prefixed (Fixed32) byte string.
void PutLengthPrefixed(std::string* dst, const Slice& s);

/// Big-endian codecs: used for composite B+-tree keys so that
/// lexicographic byte order equals numeric order.
void PutBigEndian32(std::string* dst, uint32_t v);
void PutBigEndian64(std::string* dst, uint64_t v);
uint32_t DecodeBigEndian32(const char* p);
uint64_t DecodeBigEndian64(const char* p);

/// Cursor-style decoder over a byte buffer; every Get* checks bounds and
/// returns Corruption on truncation (log records are parsed through this).
class Decoder {
 public:
  explicit Decoder(Slice input) : input_(input) {}

  Status GetFixed16(uint16_t* v);
  Status GetFixed32(uint32_t* v);
  Status GetFixed64(uint64_t* v);
  Status GetLengthPrefixed(std::string* out);
  Status GetBytes(size_t n, std::string* out);
  Status Skip(size_t n);

  bool Done() const { return input_.empty(); }
  size_t remaining() const { return input_.size(); }

 private:
  Slice input_;
};

}  // namespace complydb

#endif  // COMPLYDB_COMMON_CODING_H_
