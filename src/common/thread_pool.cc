#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace complydb {

namespace {

struct PoolMetrics {
  obs::Gauge* queue_depth;
  obs::Gauge* active;
  obs::Counter* tasks;
  obs::Histogram* task_us;
};

PoolMetrics& Metrics() {
  static PoolMetrics m = {
      obs::MetricsRegistry::Global().GetGauge("threadpool.queue_depth"),
      obs::MetricsRegistry::Global().GetGauge("threadpool.active"),
      obs::MetricsRegistry::Global().GetCounter("threadpool.tasks"),
      obs::MetricsRegistry::Global().GetHistogram("threadpool.task_us"),
  };
  return m;
}

}  // namespace

size_t ThreadPool::DefaultThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : queue_capacity_(std::max<size_t>(queue_capacity, 1)) {
  if (num_threads == 0) num_threads = DefaultThreads();
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return queue_.size() < queue_capacity_ || shutting_down_;
    });
    if (shutting_down_) {
      throw std::runtime_error("ThreadPool: Submit after shutdown");
    }
    queue_.push_back(std::move(task));
    Metrics().queue_depth->Set(static_cast<int64_t>(queue_.size()));
  }
  not_empty_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock,
                      [this] { return !queue_.empty() || shutting_down_; });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      Metrics().queue_depth->Set(static_cast<int64_t>(queue_.size()));
    }
    not_full_.notify_one();
    Metrics().active->Add(1);
    {
      obs::ScopedLatencyTimer timer(Metrics().task_us);
      task();
    }
    Metrics().active->Add(-1);
    Metrics().tasks->Inc();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn,
                             size_t max_chunks) {
  if (begin >= end) return;
  const size_t total = end - begin;
  if (max_chunks == 0) max_chunks = workers_.size() * 4;
  const size_t nchunks = std::min(total, std::max<size_t>(max_chunks, 1));
  const size_t chunk = (total + nchunks - 1) / nchunks;

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t pending = 0;
  std::exception_ptr first_error = nullptr;

  for (size_t lo = begin; lo < end; lo += chunk) {
    const size_t hi = std::min(lo + chunk, end);
    {
      std::unique_lock<std::mutex> lock(done_mu);
      ++pending;
    }
    Submit([&, lo, hi] {
      std::exception_ptr err = nullptr;
      try {
        for (size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      {
        std::unique_lock<std::mutex> lock(done_mu);
        if (err != nullptr && first_error == nullptr) first_error = err;
        --pending;
        // Notify under the lock: done_cv lives on the caller's stack, and
        // the caller destroys it as soon as it observes pending == 0. The
        // held mutex keeps it from getting that far mid-signal.
        done_cv.notify_one();
      }
    });
  }

  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return pending == 0; });
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace complydb
