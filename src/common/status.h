#ifndef COMPLYDB_COMMON_STATUS_H_
#define COMPLYDB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace complydb {

/// Error-code-based result type used throughout the library (no exceptions).
///
/// Codes mirror the situations a compliant DBMS must distinguish: ordinary
/// I/O and corruption failures, plus `kTampered` which is reserved for
/// integrity violations detected by the auditor or the WORM store, and
/// `kWormViolation` for attempts to modify term-immutable data.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kNotSupported = 5,
    kBusy = 6,
    kTampered = 7,
    kWormViolation = 8,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Tampered(std::string msg) {
    return Status(Code::kTampered, std::move(msg));
  }
  static Status WormViolation(std::string msg) {
    return Status(Code::kWormViolation, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsTampered() const { return code_ == Code::kTampered; }
  bool IsWormViolation() const { return code_ == Code::kWormViolation; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>", for logs and test failure output.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define CDB_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::complydb::Status _cdb_status = (expr);       \
    if (!_cdb_status.ok()) return _cdb_status;     \
  } while (0)

/// A Status plus a value; the value is only meaningful when status().ok().
template <typename T>
class Result {
 public:
  Result(Status status) : status_(std::move(status)) {}  // NOLINT
  Result(T value) : value_(std::move(value)) {}          // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  T& value() { return value_; }
  const T& value() const { return value_; }
  T&& TakeValue() { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace complydb

#endif  // COMPLYDB_COMMON_STATUS_H_
