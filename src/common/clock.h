#ifndef COMPLYDB_COMMON_CLOCK_H_
#define COMPLYDB_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace complydb {

/// Time source used for commit times, regret-interval bookkeeping, WORM
/// create times, and retention checks. All times are microseconds.
///
/// Two implementations: SystemClock (wall clock) and SimulatedClock
/// (manually advanced). Tests and benchmarks use the simulated clock so
/// that regret intervals can elapse instantly and runs are deterministic —
/// the paper's 5-minute regret interval becomes a single Advance() call.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since an arbitrary epoch.
  virtual uint64_t NowMicros() = 0;
};

/// Real wall-clock time (CLOCK_REALTIME).
class SystemClock : public Clock {
 public:
  uint64_t NowMicros() override;
};

/// Manually advanced clock. Starts at a nonzero epoch so that time 0 can
/// mean "never" in file formats. The counter is atomic because background
/// threads (the compliance-log shipper, parallel audit workers) stamp
/// trace events while the driving thread advances time.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(uint64_t start_micros = 1'000'000)
      : now_(start_micros) {}

  uint64_t NowMicros() override {
    return now_.load(std::memory_order_relaxed);
  }

  void AdvanceMicros(uint64_t d) {
    now_.fetch_add(d, std::memory_order_relaxed);
  }
  void AdvanceSeconds(uint64_t s) {
    now_.fetch_add(s * 1'000'000ull, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_;
};

}  // namespace complydb

#endif  // COMPLYDB_COMMON_CLOCK_H_
