#ifndef COMPLYDB_COMMON_RANDOM_H_
#define COMPLYDB_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace complydb {

/// Deterministic xorshift64* PRNG. Tests, benchmarks, and the TPC-C driver
/// use this (never std::rand) so every run is reproducible from its seed.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability num/den.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Random printable-ish byte string of length n.
  std::string Bytes(size_t n) {
    std::string s(n, '\0');
    for (size_t i = 0; i < n; ++i) {
      s[i] = static_cast<char>('a' + Uniform(26));
    }
    return s;
  }

 private:
  uint64_t state_;
};

}  // namespace complydb

#endif  // COMPLYDB_COMMON_RANDOM_H_
