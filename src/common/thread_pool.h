#ifndef COMPLYDB_COMMON_THREAD_POOL_H_
#define COMPLYDB_COMMON_THREAD_POOL_H_

// Fixed-size worker pool with a bounded task queue.
//
// Built for the auditor's sharded replay and final-state scan: a handful
// of long-lived workers, tasks submitted in bursts, and a ParallelFor
// that blocks the caller until every index ran (re-throwing the first
// worker exception). The queue bound applies backpressure instead of
// letting a fast producer buffer unbounded closures.
//
// Instrumented through the obs registry:
//   threadpool.queue_depth   gauge      tasks waiting in the queue
//   threadpool.active        gauge      tasks currently executing
//   threadpool.tasks         counter    tasks completed
//   threadpool.task_us       histogram  per-task execution latency

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace complydb {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1). `queue_capacity` bounds
  /// the number of queued-but-not-started tasks; Submit blocks when full.
  explicit ThreadPool(size_t num_threads, size_t queue_capacity = 1024);

  /// Drains the queue, then joins the workers. Tasks already submitted
  /// all run; new Submits are rejected with std::runtime_error.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; blocks while the queue is at capacity.
  void Submit(std::function<void()> task);

  /// Stops accepting new tasks, drains the queue, and joins the workers.
  /// Idempotent; the destructor calls it. Concurrent Submit calls either
  /// enqueue before the cut (and run) or throw.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for every i in [begin, end), partitioned into contiguous
  /// chunks across the workers, and blocks until all of them finished.
  /// If any invocation throws, the first exception (in completion order)
  /// is re-thrown on the caller after every chunk has finished — the
  /// remaining indexes still run, so partial side effects are bounded by
  /// the caller's own chunk logic, not by cancellation races.
  ///
  /// `max_chunks` caps the number of submitted chunks (0 = 4x workers,
  /// which keeps the tail balanced without flooding the queue).
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn,
                   size_t max_chunks = 0);

  /// Default worker count: hardware_concurrency, at least 1.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  size_t queue_capacity_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace complydb

#endif  // COMPLYDB_COMMON_THREAD_POOL_H_
