#include "common/coding.h"

#include <cstring>

namespace complydb {

void EncodeFixed16(char* dst, uint16_t v) {
  dst[0] = static_cast<char>(v & 0xff);
  dst[1] = static_cast<char>((v >> 8) & 0xff);
}

void EncodeFixed32(char* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void EncodeFixed64(char* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  EncodeFixed16(buf, v);
  dst->append(buf, 2);
}

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

uint16_t DecodeFixed16(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint16_t>(u[0]) | (static_cast<uint16_t>(u[1]) << 8);
}

uint32_t DecodeFixed32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | u[i];
  return v;
}

uint64_t DecodeFixed64(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | u[i];
  return v;
}

void PutLengthPrefixed(std::string* dst, const Slice& s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

void PutBigEndian32(std::string* dst, uint32_t v) {
  for (int i = 3; i >= 0; --i)
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void PutBigEndian64(std::string* dst, uint64_t v) {
  for (int i = 7; i >= 0; --i)
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint32_t DecodeBigEndian32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | u[i];
  return v;
}

uint64_t DecodeBigEndian64(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | u[i];
  return v;
}

Status Decoder::GetFixed16(uint16_t* v) {
  if (input_.size() < 2) return Status::Corruption("truncated fixed16");
  *v = DecodeFixed16(input_.data());
  input_.remove_prefix(2);
  return Status::OK();
}

Status Decoder::GetFixed32(uint32_t* v) {
  if (input_.size() < 4) return Status::Corruption("truncated fixed32");
  *v = DecodeFixed32(input_.data());
  input_.remove_prefix(4);
  return Status::OK();
}

Status Decoder::GetFixed64(uint64_t* v) {
  if (input_.size() < 8) return Status::Corruption("truncated fixed64");
  *v = DecodeFixed64(input_.data());
  input_.remove_prefix(8);
  return Status::OK();
}

Status Decoder::GetLengthPrefixed(std::string* out) {
  uint32_t len = 0;
  CDB_RETURN_IF_ERROR(GetFixed32(&len));
  return GetBytes(len, out);
}

Status Decoder::GetBytes(size_t n, std::string* out) {
  if (input_.size() < n) return Status::Corruption("truncated bytes");
  out->assign(input_.data(), n);
  input_.remove_prefix(n);
  return Status::OK();
}

Status Decoder::Skip(size_t n) {
  if (input_.size() < n) return Status::Corruption("truncated skip");
  input_.remove_prefix(n);
  return Status::OK();
}

}  // namespace complydb
