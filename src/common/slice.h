#ifndef COMPLYDB_COMMON_SLICE_H_
#define COMPLYDB_COMMON_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace complydb {

/// A non-owning view over a byte range, in the RocksDB idiom. Thin wrapper
/// over std::string_view with byte-oriented helpers; keys and values flow
/// through the engine as Slices and are copied only at page boundaries.
class Slice {
 public:
  Slice() = default;
  Slice(const char* data, size_t size) : view_(data, size) {}
  Slice(const std::string& s) : view_(s) {}       // NOLINT
  Slice(const char* s) : view_(s) {}              // NOLINT
  Slice(std::string_view v) : view_(v) {}         // NOLINT
  Slice(const unsigned char* data, size_t size)
      : view_(reinterpret_cast<const char*>(data), size) {}

  const char* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  char operator[](size_t i) const { return view_[i]; }

  std::string ToString() const { return std::string(view_); }
  std::string_view view() const { return view_; }

  /// Three-way lexicographic byte comparison.
  int compare(const Slice& other) const {
    return view_.compare(other.view_);
  }

  bool starts_with(const Slice& prefix) const {
    return view_.size() >= prefix.size() &&
           view_.compare(0, prefix.size(), prefix.view_) == 0;
  }

  void remove_prefix(size_t n) { view_.remove_prefix(n); }

 private:
  std::string_view view_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.view() == b.view();
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.compare(b) < 0;
}

}  // namespace complydb

#endif  // COMPLYDB_COMMON_SLICE_H_
