#ifndef COMPLYDB_COMPLIANCE_RECORDS_H_
#define COMPLYDB_COMPLIANCE_RECORDS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "storage/page.h"
#include "wal/log_record.h"

namespace complydb {

/// Record types of the compliance log L on WORM (paper §IV–§VIII).
enum class CRecordType : uint8_t {
  /// A new tuple version reached disk on page `pgno` (full record bytes).
  kNewTuple = 1,
  /// Transaction `txn_id` committed at `commit_time` (paper: STAMP_TRANS).
  kStampTrans = 2,
  /// Transaction `txn_id` aborted.
  kAbort = 3,
  /// A tuple version disappeared from page `pgno` (abort undo or vacuum;
  /// the auditor verifies each UNDO against an ABORT or SHREDDED record).
  kUndo = 4,
  /// Hash-page-on-read (§V): Hs over the page's tuples in order-number
  /// order, logged when the page was read from disk.
  kReadHash = 5,
  /// Leaf page split: `entries_a`/`entries_b` are the full contents of the
  /// old and new page immediately after the split (§V).
  kPageSplit = 6,
  /// The (fixed) root leaf grew into an internal node; entries moved to
  /// two fresh leaves.
  kRootGrow = 7,
  /// Time split (§VI): `entries_a` migrated from live page `pgno` to WORM
  /// historical page `name`.
  kMigrate = 8,
  /// Vacuum intent (§VIII): tuple (tree, key, start) on `pgno` with
  /// content hash `hash` will be physically erased.
  kShredded = 9,
  /// Crash recovery began at `timestamp` (§IV-B).
  kStartRecovery = 10,
  /// Dummy STAMP_TRANS showing liveness through an idle regret interval.
  kHeartbeat = 11,
  /// The on-page copy of a tuple was lazily stamped: its start field
  /// changed from `txn_id` to `commit_time` (identified by order_no).
  kStampPage = 12,
  /// A new tree (relation or index) was created.
  kNewTree = 13,
  /// Index-page tracking (§V: "the compliance plugin also hashes and logs
  /// the contents of index pages"): an internal-node entry appeared on /
  /// disappeared from page `pgno` (separator inserts, splits), and the Hs
  /// of an internal page read from disk.
  kIndexAdd = 14,
  kIndexRemove = 15,
  kReadHashIndex = 16,
};

/// One compliance-log record. A single struct covers all types; unused
/// fields encode as zero/empty (records are length-prefixed and CRC'd, so
/// framing is uniform).
struct CRecord {
  CRecordType type = CRecordType::kHeartbeat;
  uint32_t tree_id = 0;
  PageId pgno = kInvalidPage;
  PageId new_pgno = kInvalidPage;   // kPageSplit/kRootGrow second page
  PageId third_pgno = kInvalidPage; // kRootGrow right page
  TxnId txn_id = 0;
  uint64_t commit_time = 0;
  uint64_t timestamp = 0;
  uint16_t order_no = 0;
  uint64_t start = 0;       // kShredded: version start time
  std::string tuple;        // raw leaf record bytes (kNewTuple, kUndo)
  std::string key;          // kShredded; kNewTree: tree name
  std::string hash;         // kReadHash: 32-byte Hs; kShredded: tuple hash
  std::vector<std::string> entries_a;  // post-state contents (record bytes)
  std::vector<std::string> entries_b;
  std::string name;         // kMigrate: WORM historical page file name

  /// Framed: len u32 | crc u32 | payload.
  std::string Encode() const;
  static Status Decode(Slice input, CRecord* out, size_t* consumed);
};

/// Streams framed CRecords out of a byte buffer.
Status ScanCRecords(Slice data,
                    const std::function<Status(const CRecord&, uint64_t offset)>& fn);

}  // namespace complydb

#endif  // COMPLYDB_COMPLIANCE_RECORDS_H_
