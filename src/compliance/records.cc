#include "compliance/records.h"

#include "common/coding.h"
#include "common/crc32.h"

namespace complydb {

namespace {

void PutStringList(std::string* dst, const std::vector<std::string>& list) {
  PutFixed32(dst, static_cast<uint32_t>(list.size()));
  for (const auto& s : list) PutLengthPrefixed(dst, s);
}

Status GetStringList(Decoder* dec, std::vector<std::string>* out) {
  uint32_t n = 0;
  CDB_RETURN_IF_ERROR(dec->GetFixed32(&n));
  if (n > 1u << 20) return Status::Corruption("crecord list too long");
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string s;
    CDB_RETURN_IF_ERROR(dec->GetLengthPrefixed(&s));
    out->push_back(std::move(s));
  }
  return Status::OK();
}

}  // namespace

std::string CRecord::Encode() const {
  std::string payload;
  payload.push_back(static_cast<char>(type));
  PutFixed32(&payload, tree_id);
  PutFixed32(&payload, pgno);
  PutFixed32(&payload, new_pgno);
  PutFixed32(&payload, third_pgno);
  PutFixed64(&payload, txn_id);
  PutFixed64(&payload, commit_time);
  PutFixed64(&payload, timestamp);
  PutFixed16(&payload, order_no);
  PutFixed64(&payload, start);
  PutLengthPrefixed(&payload, tuple);
  PutLengthPrefixed(&payload, key);
  PutLengthPrefixed(&payload, hash);
  PutLengthPrefixed(&payload, name);
  PutStringList(&payload, entries_a);
  PutStringList(&payload, entries_b);

  std::string framed;
  PutFixed32(&framed, static_cast<uint32_t>(payload.size()));
  PutFixed32(&framed, Crc32(payload));
  framed += payload;
  return framed;
}

Status CRecord::Decode(Slice input, CRecord* out, size_t* consumed) {
  Decoder frame(input);
  uint32_t len = 0;
  uint32_t crc = 0;
  CDB_RETURN_IF_ERROR(frame.GetFixed32(&len));
  CDB_RETURN_IF_ERROR(frame.GetFixed32(&crc));
  if (frame.remaining() < len) {
    return Status::Corruption("compliance record truncated");
  }
  Slice payload(input.data() + 8, len);
  if (Crc32(payload) != crc) {
    return Status::Corruption("compliance record bad crc");
  }
  Decoder dec(payload);
  std::string type_byte;
  CDB_RETURN_IF_ERROR(dec.GetBytes(1, &type_byte));
  out->type = static_cast<CRecordType>(static_cast<uint8_t>(type_byte[0]));
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->tree_id));
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->pgno));
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->new_pgno));
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&out->third_pgno));
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->txn_id));
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->commit_time));
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->timestamp));
  CDB_RETURN_IF_ERROR(dec.GetFixed16(&out->order_no));
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&out->start));
  CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->tuple));
  CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->key));
  CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->hash));
  CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->name));
  CDB_RETURN_IF_ERROR(GetStringList(&dec, &out->entries_a));
  CDB_RETURN_IF_ERROR(GetStringList(&dec, &out->entries_b));
  *consumed = 8 + len;
  return Status::OK();
}

Status ScanCRecords(
    Slice data,
    const std::function<Status(const CRecord&, uint64_t offset)>& fn) {
  size_t off = 0;
  while (off < data.size()) {
    CRecord rec;
    size_t consumed = 0;
    CDB_RETURN_IF_ERROR(CRecord::Decode(
        Slice(data.data() + off, data.size() - off), &rec, &consumed));
    CDB_RETURN_IF_ERROR(fn(rec, off));
    off += consumed;
  }
  return Status::OK();
}

}  // namespace complydb
