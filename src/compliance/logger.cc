#include "compliance/logger.h"

#include "btree/tuple.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace complydb {

namespace {
struct ComplianceMetrics {
  obs::Counter* records;
  obs::Counter* heartbeats;
  obs::Counter* witnesses;
  obs::Counter* shred_intents;
  obs::Histogram* write_stall_us;
  obs::Histogram* barrier_stall_us;
  ComplianceMetrics() {
    auto& reg = obs::MetricsRegistry::Global();
    records = reg.GetCounter("compliance.records");
    heartbeats = reg.GetCounter("compliance.heartbeats");
    witnesses = reg.GetCounter("compliance.witnesses");
    shred_intents = reg.GetCounter("shred.intents");
    write_stall_us = reg.GetHistogram("compliance.write_stall_us");
    barrier_stall_us = reg.GetHistogram("compliance.barrier_stall_us");
  }
};
ComplianceMetrics& Cm() {
  static ComplianceMetrics m;
  return m;
}
}  // namespace

ComplianceLogOptions ComplianceLogger::LogOptions() const {
  ComplianceLogOptions o;
  o.async = options_.async_shipping;
  o.group_commit_window_micros = options_.group_commit_window_micros;
  o.repair_stamp_index = options_.repair_stamp_index;
  return o;
}

Status ComplianceLogger::MaybeSyncFlush() {
  if (log_ == nullptr) return Status::OK();
  if (options_.async_shipping) return Status::OK();
  return log_->Flush();
}

Status ComplianceLogger::FlushLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled || log_ == nullptr) return Status::OK();
  return log_->Flush();
}

Status ComplianceLogger::StartFreshEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return Status::OK();
  log_ = std::make_unique<ComplianceLog>(worm_, epoch, LogOptions());
  CDB_RETURN_IF_ERROR(log_->Create());
  baseline_.clear();
  index_baseline_.clear();
  unsynced_.clear();
  evict_queue_.clear();
  page_high_water_.clear();
  stamps_on_log_.clear();
  aborts_on_log_.clear();
  uint64_t now = clock_->NowMicros();
  last_stamp_activity_ = now;
  last_witness_time_ = now;
  witness_seq_ = 0;
  return Status::OK();
}

Status ComplianceLogger::AttachToEpoch(uint64_t epoch,
                                       const Snapshot* snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return Status::OK();
  log_ = std::make_unique<ComplianceLog>(worm_, epoch, LogOptions());
  CDB_RETURN_IF_ERROR(log_->OpenExisting());

  // Rebuild the diff baseline as replay(snapshot, L): this is the page
  // content the log already accounts for, which after crash recovery can
  // be ahead of the on-disk images (logged splits whose pages never
  // flushed) — diffing against disk would emit unjustified UNDOs.
  std::string log_blob;
  CDB_RETURN_IF_ERROR(worm_->ReadAll(LogFileName(epoch), &log_blob));
  LogSummary summary;
  CDB_RETURN_IF_ERROR(SummarizeLogBlob(log_blob, &summary));
  PageReplayer replayer(PageReplayer::Options{}, &summary);
  if (snapshot != nullptr) {
    for (const auto& page : snapshot->pages) {
      replayer.SeedPage(page.tree_id, page.pgno, page.records);
    }
    for (const auto& page : snapshot->index_pages) {
      replayer.SeedIndexPage(page.tree_id, page.pgno, page.records);
    }
  }
  CDB_RETURN_IF_ERROR(
      ScanCRecords(log_blob, [&](const CRecord& rec, uint64_t offset) {
        return replayer.Apply(rec, offset);
      }));

  baseline_.clear();
  index_baseline_.clear();
  unsynced_.clear();
  evict_queue_.clear();
  page_high_water_.clear();
  for (const auto& [key, state] : replayer.pages()) {
    baseline_[key.second] = state;
    NoteCached(key.second, /*is_index=*/false, /*disk_synced=*/false);
  }
  for (const auto& [key, state] : replayer.index_pages()) {
    index_baseline_[key.second] = state;
    NoteCached(key.second, /*is_index=*/true, /*disk_synced=*/false);
  }
  stamps_on_log_ = summary.stamps;
  aborts_on_log_ = summary.aborts;
  uint64_t now = clock_->NowMicros();
  last_stamp_activity_ = now;
  last_witness_time_ = now;
  witness_seq_ = worm_->ListPrefix("witness_").size();
  return Status::OK();
}

ComplianceLogger::PageState ComplianceLogger::StateFromImage(
    const Page& image) {
  PageState state;
  for (uint16_t i = 0; i < image.slot_count(); ++i) {
    Slice rec = image.RecordAt(i);
    TupleData t;
    if (DecodeTuple(rec, &t).ok()) {
      state[t.order_no] = std::string(rec.data(), rec.size());
    }
  }
  return state;
}

Result<ComplianceLogger::PageState> ComplianceLogger::BaselineFor(
    PageId pgno) {
  if (options_.cache_page_images) {
    auto it = baseline_.find(pgno);
    if (it != baseline_.end()) return it->second;
  }
  // Fallback: fetch the old image from the storage server — the extra I/O
  // the paper's page cache exists to avoid (§IV-A).
  if (pgno >= disk_->PageCount()) return PageState{};
  Page old;
  CDB_RETURN_IF_ERROR(disk_->ReadPage(pgno, &old));
  if (!old.IsFormatted() || old.type() != PageType::kBtreeLeaf) {
    return PageState{};
  }
  return StateFromImage(old);
}

ComplianceLogger::IndexState ComplianceLogger::IndexStateFromImage(
    const Page& image) {
  IndexState state;
  for (uint16_t i = 0; i < image.slot_count(); ++i) {
    Slice rec = image.RecordAt(i);
    auto key = PageReplayer::IndexEntrySortKey(rec);
    if (key.ok()) state[key.value()] = std::string(rec.data(), rec.size());
  }
  return state;
}

Result<ComplianceLogger::IndexState> ComplianceLogger::IndexBaselineFor(
    PageId pgno) {
  if (options_.cache_page_images) {
    auto it = index_baseline_.find(pgno);
    if (it != index_baseline_.end()) return it->second;
  }
  if (pgno >= disk_->PageCount()) return IndexState{};
  Page old;
  CDB_RETURN_IF_ERROR(disk_->ReadPage(pgno, &old));
  if (!old.IsFormatted() || old.type() != PageType::kBtreeInternal) {
    return IndexState{};
  }
  return IndexStateFromImage(old);
}

Status ComplianceLogger::EmitIndexDiff(uint32_t tree_id, PageId pgno,
                                       const IndexState& old_state,
                                       const IndexState& new_state) {
  for (const auto& [sort_key, entry] : new_state) {
    auto it = old_state.find(sort_key);
    if (it != old_state.end() && it->second == entry) continue;
    if (it != old_state.end()) {
      CRecord gone;
      gone.type = CRecordType::kIndexRemove;
      gone.tree_id = tree_id;
      gone.pgno = pgno;
      gone.tuple = it->second;
      CDB_RETURN_IF_ERROR(Append(gone));
    }
    CRecord rec;
    rec.type = CRecordType::kIndexAdd;
    rec.tree_id = tree_id;
    rec.pgno = pgno;
    rec.tuple = entry;
    rec.timestamp = clock_->NowMicros();
    CDB_RETURN_IF_ERROR(Append(rec));
  }
  for (const auto& [sort_key, entry] : old_state) {
    if (new_state.count(sort_key) > 0) continue;
    CRecord rec;
    rec.type = CRecordType::kIndexRemove;
    rec.tree_id = tree_id;
    rec.pgno = pgno;
    rec.tuple = entry;
    rec.timestamp = clock_->NowMicros();
    CDB_RETURN_IF_ERROR(Append(rec));
  }
  return Status::OK();
}

void ComplianceLogger::NoteCached(PageId pgno, bool is_index,
                                  bool disk_synced) {
  if (options_.max_cached_pages == 0) return;  // unbounded: no bookkeeping
  if (disk_synced) {
    unsynced_.erase(pgno);
    evict_queue_.emplace_back(pgno, is_index);
  } else {
    unsynced_.insert(pgno);
  }
  size_t scanned = 0;
  size_t limit = evict_queue_.size();
  while (baseline_.size() + index_baseline_.size() >
             options_.max_cached_pages &&
         scanned++ < limit && !evict_queue_.empty()) {
    auto [victim, victim_is_index] = evict_queue_.front();
    evict_queue_.pop_front();
    if (victim == pgno || unsynced_.count(victim) > 0) {
      evict_queue_.emplace_back(victim, victim_is_index);
      continue;
    }
    if (victim_is_index) {
      index_baseline_.erase(victim);
    } else {
      baseline_.erase(victim);
    }
  }
}

// Records are appended unflushed. In sync mode every public hook flushes
// before it returns, so the "on WORM before the operation proceeds"
// contract holds at one syscall per hook instead of one per record. In
// async mode the flush moves to the two barriers (OnPageWriteBarrier and
// the commit/tick/shred full flush); the per-page high-water mark
// recorded here is what the pwrite barrier waits on.
Status ComplianceLogger::Append(const CRecord& rec) {
  Cm().records->Inc();
  obs::TraceRing::Global().Emit(obs::TraceEventType::kComplianceAppend,
                                static_cast<uint64_t>(rec.type),
                                log_->size());
  CDB_RETURN_IF_ERROR(log_->AppendUnflushed(rec));
  if (options_.async_shipping) {
    uint64_t end = log_->size();
    if (rec.pgno != kInvalidPage) page_high_water_[rec.pgno] = end;
    if (rec.new_pgno != kInvalidPage) page_high_water_[rec.new_pgno] = end;
    if (rec.third_pgno != kInvalidPage) page_high_water_[rec.third_pgno] = end;
  }
  return Status::OK();
}

Status ComplianceLogger::EmitDiff(uint32_t tree_id, PageId pgno,
                                  const PageState& old_state,
                                  const PageState& new_state) {
  for (const auto& [order_no, rec_bytes] : new_state) {
    auto old_it = old_state.find(order_no);
    if (old_it == old_state.end()) {
      CRecord rec;
      rec.type = CRecordType::kNewTuple;
      rec.tree_id = tree_id;
      rec.pgno = pgno;
      rec.tuple = rec_bytes;
      rec.timestamp = clock_->NowMicros();
      CDB_RETURN_IF_ERROR(Append(rec));
      ++stats_.new_tuples;
      continue;
    }
    if (old_it->second == rec_bytes) continue;

    TupleData before, after;
    Status sb = DecodeTuple(old_it->second, &before);
    Status sa = DecodeTuple(rec_bytes, &after);
    bool is_stamp = sb.ok() && sa.ok() && !before.stamped && after.stamped &&
                    before.key == after.key && before.value == after.value &&
                    before.eol == after.eol;
    if (is_stamp) {
      CRecord rec;
      rec.type = CRecordType::kStampPage;
      rec.tree_id = tree_id;
      rec.pgno = pgno;
      rec.order_no = order_no;
      rec.txn_id = before.start;
      rec.commit_time = after.start;
      CDB_RETURN_IF_ERROR(Append(rec));
      ++stats_.stamps;
    } else {
      // An in-place content change is never a legitimate operation; log it
      // faithfully as remove+insert — the audit will flag the UNDO.
      CRecord undo;
      undo.type = CRecordType::kUndo;
      undo.tree_id = tree_id;
      undo.pgno = pgno;
      undo.tuple = old_it->second;
      CDB_RETURN_IF_ERROR(Append(undo));
      ++stats_.undos;
      CRecord fresh;
      fresh.type = CRecordType::kNewTuple;
      fresh.tree_id = tree_id;
      fresh.pgno = pgno;
      fresh.tuple = rec_bytes;
      CDB_RETURN_IF_ERROR(Append(fresh));
      ++stats_.new_tuples;
    }
  }
  for (const auto& [order_no, rec_bytes] : old_state) {
    if (new_state.count(order_no) > 0) continue;
    CRecord rec;
    rec.type = CRecordType::kUndo;
    rec.tree_id = tree_id;
    rec.pgno = pgno;
    rec.tuple = rec_bytes;
    rec.timestamp = clock_->NowMicros();
    CDB_RETURN_IF_ERROR(Append(rec));
    ++stats_.undos;
  }
  return Status::OK();
}

Status ComplianceLogger::OnPageRead(PageId pgno, const Page& image) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return Status::OK();
  if (!image.IsFormatted()) return Status::OK();
  if (image.type() == PageType::kBtreeInternal) {
    IndexState state = IndexStateFromImage(image);
    if (options_.hash_on_read && !in_recovery_) {
      CRecord rec;
      rec.type = CRecordType::kReadHashIndex;
      rec.tree_id = image.tree_id();
      rec.pgno = pgno;
      Sha256Digest hs = PageReplayer::HashIndexState(state);
      rec.hash.assign(reinterpret_cast<const char*>(hs.data()), hs.size());
      rec.timestamp = clock_->NowMicros();
      CDB_RETURN_IF_ERROR(Append(rec));
      ++stats_.read_hashes;
    }
    if (options_.cache_page_images && index_baseline_.count(pgno) == 0) {
      index_baseline_[pgno] = std::move(state);
      NoteCached(pgno, /*is_index=*/true, /*disk_synced=*/true);
    }
    return MaybeSyncFlush();
  }
  if (image.type() != PageType::kBtreeLeaf) {
    return Status::OK();
  }
  PageState state = StateFromImage(image);
  // Reads during crash recovery are internal: redo may not have brought
  // the page forward yet, and no transaction consumes the bytes. Only
  // post-recovery (user) reads are hash-logged (§V).
  if (options_.hash_on_read && !in_recovery_) {
    CRecord rec;
    rec.type = CRecordType::kReadHash;
    rec.tree_id = image.tree_id();
    rec.pgno = pgno;
    Sha256Digest hs = PageReplayer::HashPageState(state);
    rec.hash.assign(reinterpret_cast<const char*>(hs.data()), hs.size());
    rec.timestamp = clock_->NowMicros();
    CDB_RETURN_IF_ERROR(Append(rec));
    ++stats_.read_hashes;
  }
  // Seed the baseline only if this page is unknown: after a crash the
  // L-derived baseline can be *ahead* of the on-disk image (a logged split
  // whose pages never flushed), and must not be clobbered by stale disk
  // content — recovery redo brings the page forward before its next write.
  if (options_.cache_page_images && baseline_.count(pgno) == 0) {
    baseline_[pgno] = std::move(state);
    NoteCached(pgno, /*is_index=*/false, /*disk_synced=*/true);
  }
  // Async: read-hash records ride the ring; they are durable by the next
  // commit/tick barrier, within the regret-window guarantee the auditor
  // checks.
  return MaybeSyncFlush();
}

Status ComplianceLogger::OnPageWrite(PageId pgno, const Page& image) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return Status::OK();
  if (!image.IsFormatted()) return Status::OK();
  // The pwrite may not proceed until every record of its diff is durable
  // on WORM — this histogram is the time transactions spend stalled on
  // that rule.
  obs::ScopedLatencyTimer stall(Cm().write_stall_us);
  if (image.type() == PageType::kBtreeInternal) {
    Result<IndexState> old_state = IndexBaselineFor(pgno);
    if (!old_state.ok()) return old_state.status();
    IndexState new_state = IndexStateFromImage(image);
    CDB_RETURN_IF_ERROR(
        EmitIndexDiff(image.tree_id(), pgno, old_state.value(), new_state));
    if (options_.cache_page_images) {
      index_baseline_[pgno] = std::move(new_state);
      NoteCached(pgno, /*is_index=*/true, /*disk_synced=*/true);
    }
    return MaybeSyncFlush();
  }
  if (image.type() != PageType::kBtreeLeaf) {
    return Status::OK();
  }
  Result<PageState> old_state = BaselineFor(pgno);
  if (!old_state.ok()) return old_state.status();
  PageState new_state = StateFromImage(image);
  CDB_RETURN_IF_ERROR(
      EmitDiff(image.tree_id(), pgno, old_state.value(), new_state));
  if (options_.cache_page_images) {
    baseline_[pgno] = std::move(new_state);
    NoteCached(pgno, /*is_index=*/false, /*disk_synced=*/true);
  }
  // Async: the durability stall happens in OnPageWriteBarrier, after
  // every hook has appended its records for the whole write-out batch.
  return MaybeSyncFlush();
}

// Barrier (1) of the pipeline: the pwrite of `pgno` may not reach disk
// until every compliance record describing the page is durable on WORM.
// In sync mode OnPageWrite already flushed, so this is a no-op.
Status ComplianceLogger::OnPageWriteBarrier(PageId pgno) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled || log_ == nullptr) return Status::OK();
  if (!options_.async_shipping) return Status::OK();
  auto it = page_high_water_.find(pgno);
  if (it == page_high_water_.end()) return Status::OK();
  uint64_t target = it->second;
  page_high_water_.erase(it);
  obs::ScopedLatencyTimer stall(Cm().barrier_stall_us);
  return log_->FlushThrough(target);
}

Status ComplianceLogger::OnPageSplit(uint32_t tree_id, uint8_t level,
                                     PageId old_pgno, PageId new_pgno,
                                     const Page& pre_old, const Page& post_old,
                                     const Page& post_new) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return Status::OK();
  if (level > 0) return Status::OK();  // index pages: verified at audit

  // Flush not-yet-logged tuples of the pre-split page first, so the split
  // record's union check balances.
  Result<PageState> base = BaselineFor(old_pgno);
  if (!base.ok()) return base.status();
  PageState pre_state = StateFromImage(pre_old);
  CDB_RETURN_IF_ERROR(EmitDiff(tree_id, old_pgno, base.value(), pre_state));

  CRecord rec;
  rec.type = CRecordType::kPageSplit;
  rec.tree_id = tree_id;
  rec.pgno = old_pgno;
  rec.new_pgno = new_pgno;
  rec.entries_a = post_old.AllRecords();
  rec.entries_b = post_new.AllRecords();
  CDB_RETURN_IF_ERROR(Append(rec));
  ++stats_.splits;

  if (options_.cache_page_images) {
    baseline_[old_pgno] = StateFromImage(post_old);
    NoteCached(old_pgno, /*is_index=*/false, /*disk_synced=*/false);
    baseline_[new_pgno] = StateFromImage(post_new);
    NoteCached(new_pgno, /*is_index=*/false, /*disk_synced=*/false);
  } else {
    baseline_.erase(old_pgno);
    baseline_.erase(new_pgno);
  }
  // Async: the split record's high-water mark covers both pages, so
  // neither post-split image can reach disk before the record is durable.
  return MaybeSyncFlush();
}

Status ComplianceLogger::OnRootGrow(uint32_t tree_id, PageId root_pgno,
                                    PageId left_pgno, PageId right_pgno,
                                    const Page& pre_root,
                                    const Page& post_root,
                                    const Page& post_left,
                                    const Page& post_right) {
  std::lock_guard<std::mutex> lock(mu_);
  (void)post_root;
  if (!options_.enabled) return Status::OK();
  if (pre_root.type() != PageType::kBtreeLeaf) return Status::OK();

  Result<PageState> base = BaselineFor(root_pgno);
  if (!base.ok()) return base.status();
  PageState pre_state = StateFromImage(pre_root);
  CDB_RETURN_IF_ERROR(EmitDiff(tree_id, root_pgno, base.value(), pre_state));

  CRecord rec;
  rec.type = CRecordType::kRootGrow;
  rec.tree_id = tree_id;
  rec.pgno = root_pgno;
  rec.new_pgno = left_pgno;
  rec.third_pgno = right_pgno;
  rec.entries_a = post_left.AllRecords();
  rec.entries_b = post_right.AllRecords();
  CDB_RETURN_IF_ERROR(Append(rec));
  ++stats_.splits;

  baseline_.erase(root_pgno);
  index_baseline_.erase(root_pgno);
  unsynced_.erase(root_pgno);
  if (options_.cache_page_images) {
    baseline_[left_pgno] = StateFromImage(post_left);
    NoteCached(left_pgno, /*is_index=*/false, /*disk_synced=*/false);
    baseline_[right_pgno] = StateFromImage(post_right);
    NoteCached(right_pgno, /*is_index=*/false, /*disk_synced=*/false);
  }
  return MaybeSyncFlush();
}

Status ComplianceLogger::OnMigrate(uint32_t tree_id, PageId live_pgno,
                                   const Page& pre_live, const Page& post_live,
                                   const std::string& hist_name,
                                   const Page& hist_image) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return Status::OK();

  Result<PageState> base = BaselineFor(live_pgno);
  if (!base.ok()) return base.status();
  PageState pre_state = StateFromImage(pre_live);
  CDB_RETURN_IF_ERROR(EmitDiff(tree_id, live_pgno, base.value(), pre_state));

  CRecord rec;
  rec.type = CRecordType::kMigrate;
  rec.tree_id = tree_id;
  rec.pgno = live_pgno;
  rec.name = hist_name;
  rec.entries_a = hist_image.AllRecords();
  CDB_RETURN_IF_ERROR(Append(rec));
  ++stats_.migrations;

  if (options_.cache_page_images) {
    baseline_[live_pgno] = StateFromImage(post_live);
    NoteCached(live_pgno, /*is_index=*/false, /*disk_synced=*/false);
  } else {
    baseline_.erase(live_pgno);
  }
  // Full flush even in async mode: the MIGRATE record references a
  // historical file that already exists on WORM, and an orphaned file
  // without its record would look like tampering. Migrations are rare
  // (one per time split), so this costs nothing on the hot path.
  return log_->Flush();
}

Status ComplianceLogger::OnCommit(TxnId txn_id, uint64_t commit_time) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return Status::OK();
  auto it = stamps_on_log_.find(txn_id);
  if (it != stamps_on_log_.end() && it->second == commit_time) {
    return Status::OK();  // already announced (recovery re-walks the WAL)
  }
  stamps_on_log_[txn_id] = commit_time;
  CRecord rec;
  rec.type = CRecordType::kStampTrans;
  rec.txn_id = txn_id;
  rec.commit_time = commit_time;
  rec.timestamp = clock_->NowMicros();
  CDB_RETURN_IF_ERROR(Append(rec));
  last_stamp_activity_ = clock_->NowMicros();
  // Barrier (2): the commit may not return until its STAMP_TRANS — and,
  // FIFO, everything before it — is durable on WORM. In async mode this
  // is the group-commit rendezvous: concurrent appends accumulated since
  // the last drain share the shipper's single fflush.
  return log_->Flush();
}

Result<uint64_t> ComplianceLogger::OnCommitQueued(TxnId txn_id,
                                                  uint64_t commit_time) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return static_cast<uint64_t>(0);
  auto it = stamps_on_log_.find(txn_id);
  if (it != stamps_on_log_.end() && it->second == commit_time) {
    return static_cast<uint64_t>(0);  // already announced, already durable
  }
  stamps_on_log_[txn_id] = commit_time;
  CRecord rec;
  rec.type = CRecordType::kStampTrans;
  rec.txn_id = txn_id;
  rec.commit_time = commit_time;
  rec.timestamp = clock_->NowMicros();
  CDB_RETURN_IF_ERROR(Append(rec));
  last_stamp_activity_ = clock_->NowMicros();
  // No barrier here: the pipeline's epoch wait calls WaitCommitDurable
  // with (at least) this offset before the commit is acknowledged.
  return log_->size();
}

Status ComplianceLogger::WaitCommitDurable(uint64_t offset) {
  if (!options_.enabled || log_ == nullptr || offset == 0) {
    return Status::OK();
  }
  return log_->FlushThrough(offset);
}

Status ComplianceLogger::OnAbort(TxnId txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return Status::OK();
  if (!aborts_on_log_.insert(txn_id).second) {
    return Status::OK();  // already announced
  }
  CRecord rec;
  rec.type = CRecordType::kAbort;
  rec.txn_id = txn_id;
  rec.timestamp = clock_->NowMicros();
  CDB_RETURN_IF_ERROR(Append(rec));
  return log_->Flush();
}

Status ComplianceLogger::OnStartRecovery() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return Status::OK();
  CRecord rec;
  rec.type = CRecordType::kStartRecovery;
  rec.timestamp = clock_->NowMicros();
  in_recovery_ = true;
  CDB_RETURN_IF_ERROR(Append(rec));
  return log_->Flush();
}

Status ComplianceLogger::OnRecoveryComplete() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return Status::OK();
  in_recovery_ = false;
  // Recovery completion shows liveness again.
  last_stamp_activity_ = clock_->NowMicros();
  return Status::OK();
}

Status ComplianceLogger::OnNewTree(uint32_t tree_id, PageId root,
                                   const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return Status::OK();
  CRecord rec;
  rec.type = CRecordType::kNewTree;
  rec.tree_id = tree_id;
  rec.pgno = root;
  rec.key = name;
  rec.timestamp = clock_->NowMicros();
  CDB_RETURN_IF_ERROR(Append(rec));
  baseline_[root] = PageState{};
  NoteCached(root, /*is_index=*/false, /*disk_synced=*/false);
  return log_->Flush();
}

Status ComplianceLogger::OnShredIntent(uint32_t tree_id, Slice key,
                                       uint64_t start, PageId pgno,
                                       Slice content_hash, uint64_t timestamp,
                                       const std::string& hist_name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return Status::OK();
  CRecord rec;
  rec.type = CRecordType::kShredded;
  rec.tree_id = tree_id;
  rec.key = key.ToString();
  rec.start = start;
  rec.pgno = pgno;
  rec.name = hist_name;
  rec.hash = content_hash.ToString();
  rec.timestamp = timestamp;
  CDB_RETURN_IF_ERROR(Append(rec));
  Cm().shred_intents->Inc();
  return log_->Flush();
}

Status ComplianceLogger::Tick(uint64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return Status::OK();
  if (now - last_stamp_activity_ >= options_.regret_interval_micros) {
    CRecord rec;
    rec.type = CRecordType::kHeartbeat;
    rec.timestamp = now;
    CDB_RETURN_IF_ERROR(Append(rec));
    ++stats_.heartbeats;
    Cm().heartbeats->Inc();
    last_stamp_activity_ = now;
  }
  if (now - last_witness_time_ >= options_.regret_interval_micros) {
    std::string name = WitnessFileName(epoch(), witness_seq_++);
    CDB_RETURN_IF_ERROR(worm_->Create(name, 0));
    ++stats_.witness_files;
    Cm().witnesses->Inc();
    last_witness_time_ = now;
  }
  return log_->Flush();
}

}  // namespace complydb
