#ifndef COMPLYDB_COMPLIANCE_LOGGER_H_
#define COMPLYDB_COMPLIANCE_LOGGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "btree/structure_observer.h"
#include "common/clock.h"
#include "compliance/compliance_log.h"
#include "compliance/page_replay.h"
#include "compliance/snapshot.h"
#include "storage/disk_manager.h"
#include "storage/io_hook.h"
#include "txn/commit_observer.h"

namespace complydb {

/// Configuration of the compliance machinery (paper §IV–§V).
struct ComplianceOptions {
  /// Master switch: off = plain DBMS (the "native Berkeley DB" baseline).
  bool enabled = true;

  /// Hash-page-on-read refinement (§V): log Hs of every leaf page read
  /// from disk, enabling query verification at audit.
  bool hash_on_read = false;

  /// The regret interval (§II): dirty pages are forced to disk and a
  /// witness file is created at least this often. Default 5 minutes.
  uint64_t regret_interval_micros = 300ull * 1'000'000;

  /// Keep a copy of each page's tuple set from pread, so the pwrite diff
  /// needs no extra storage-server I/O (§IV-A). Ablation: false re-reads
  /// the old page image from disk on every write.
  bool cache_page_images = true;

  /// Cap on cached page baselines (0 = unbounded). Only disk-consistent
  /// entries are evictable: a baseline derived from log replay can be
  /// *ahead* of the on-disk image after a crash and must stay pinned
  /// until the page catches up, or the fallback disk read would
  /// resurrect stale state.
  size_t max_cached_pages = 0;

  /// Asynchronous log shipping: records are appended to an in-memory
  /// ring drained by a dedicated shipper thread, and durability is
  /// enforced at two WAL-style barriers (the pwrite barrier and the
  /// commit/tick/shred full flush) instead of at every hook. The bytes
  /// on WORM are identical to sync mode; only their flush timing moves.
  /// Overridable at open via the COMPLYDB_COMPLIANCE_ASYNC env variable.
  bool async_shipping = false;

  /// Group-commit window for the shipper (microseconds of real time the
  /// shipper waits for more records before paying an fflush nobody is
  /// stalled on). Only meaningful with async_shipping.
  uint64_t group_commit_window_micros = 200;

  /// Rebuild a missing stamp-index tail from L on reattach (see
  /// ComplianceLogOptions::repair_stamp_index). Disabled for read-only
  /// opens, which must not write to WORM.
  bool repair_stamp_index = true;
};

/// The compliance logging plugin. Implements the paper's pread/pwrite tap
/// (IoHook), split/migration notifications (StructureObserver), and
/// commit/abort/recovery notifications (CommitObserver). Every record it
/// appends is durable on WORM before the triggering operation proceeds,
/// which is what makes the log authoritative at audit.
///
/// Thread-safe: one internal mutex serializes every public entry point,
/// so the record order on L stays a single total order even when hooks
/// fire from reader threads (cache-miss READ_HASH, dirty-page eviction).
/// Lock order: buffer-cache shard mutex -> WAL mutex -> this mutex.
class ComplianceLogger : public IoHook,
                         public StructureObserver,
                         public CommitObserver {
 public:
  ComplianceLogger(const ComplianceOptions& options, WormStore* worm,
                   DiskManager* disk, Clock* clock)
      : options_(options), worm_(worm), disk_(disk), clock_(clock) {}

  /// Begins a brand-new epoch (first open, or right after an audit):
  /// creates L_<epoch> and its stamp index; baselines start empty.
  Status StartFreshEpoch(uint64_t epoch);

  /// Re-attaches to an in-progress epoch after restart: replays
  /// snapshot_<epoch> + L_<epoch> to rebuild the page baselines, so
  /// post-recovery diffs are computed against log-consistent state.
  Status AttachToEpoch(uint64_t epoch, const Snapshot* snapshot);

  ComplianceLog* log() { return log_.get(); }
  uint64_t epoch() const { return log_ == nullptr ? 0 : log_->epoch(); }
  bool enabled() const { return options_.enabled; }
  const ComplianceOptions& options() const { return options_; }

  /// Full durability barrier: everything appended so far reaches WORM.
  /// No-op when disabled or before an epoch is attached.
  Status FlushLog();

  /// Current size of L in bytes, taken under the logger mutex — always a
  /// record boundary, so it is a valid epoch-seal target.
  uint64_t LogSize() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_ == nullptr ? 0 : log_->size();
  }

  // --- IoHook ---
  Status OnPageRead(PageId pgno, const Page& image) override;
  Status OnPageWrite(PageId pgno, const Page& image) override;
  Status OnPageWriteBarrier(PageId pgno) override;

  // --- StructureObserver ---
  Status OnPageSplit(uint32_t tree_id, uint8_t level, PageId old_pgno,
                     PageId new_pgno, const Page& pre_old,
                     const Page& post_old, const Page& post_new) override;
  Status OnRootGrow(uint32_t tree_id, PageId root_pgno, PageId left_pgno,
                    PageId right_pgno, const Page& pre_root,
                    const Page& post_root, const Page& post_left,
                    const Page& post_right) override;
  Status OnMigrate(uint32_t tree_id, PageId live_pgno, const Page& pre_live,
                   const Page& post_live, const std::string& hist_name,
                   const Page& hist_image) override;

  // --- CommitObserver ---
  Status OnCommit(TxnId txn_id, uint64_t commit_time) override;
  Status OnAbort(TxnId txn_id) override;

  /// Commit-pipeline variant: appends the STAMP_TRANS under the logger
  /// mutex (record order = turnstile order) but skips the durability
  /// barrier, returning the L offset the commit must outlast. The epoch
  /// leader later makes a whole window durable via WaitCommitDurable.
  Result<uint64_t> OnCommitQueued(TxnId txn_id, uint64_t commit_time) override;

  /// Epoch durability barrier: blocks until L is durable through
  /// `offset`. Deliberately takes no logger mutex — in async-shipping
  /// mode (the only mode the pipeline runs in) this lands on the
  /// shipper's internally synchronized, coalescing FlushThrough, so
  /// commit-path hooks from subsequent slots keep appending meanwhile.
  Status WaitCommitDurable(uint64_t offset);
  Status OnStartRecovery() override;
  Status OnRecoveryComplete() override;

  /// A relation/index tree was created (schema change, logged like data).
  Status OnNewTree(uint32_t tree_id, PageId root, const std::string& name);

  /// Shredding intent (§VIII): must hit WORM before the vacuum erases.
  /// For tuples migrated to WORM, `hist_name` names the historical page
  /// file slated for whole-file deletion after the next audit.
  Status OnShredIntent(uint32_t tree_id, Slice key, uint64_t start,
                       PageId pgno, Slice content_hash, uint64_t timestamp,
                       const std::string& hist_name = "");

  /// Regret-interval tick: emits a heartbeat if no transaction ended this
  /// interval and creates the liveness witness file.
  Status Tick(uint64_t now);

  // --- statistics (space-overhead benchmarks) ---
  struct Stats {
    uint64_t new_tuples = 0;
    uint64_t undos = 0;
    uint64_t read_hashes = 0;
    uint64_t stamps = 0;
    uint64_t splits = 0;
    uint64_t migrations = 0;
    uint64_t heartbeats = 0;
    uint64_t witness_files = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  using PageState = PageReplayer::PageState;

  static PageState StateFromImage(const Page& image);
  Result<PageState> BaselineFor(PageId pgno);
  Status EmitDiff(uint32_t tree_id, PageId pgno, const PageState& old_state,
                  const PageState& new_state);
  Status Append(const CRecord& rec);

  using IndexState = PageReplayer::IndexState;

  static IndexState IndexStateFromImage(const Page& image);
  Result<IndexState> IndexBaselineFor(PageId pgno);
  Status EmitIndexDiff(uint32_t tree_id, PageId pgno,
                       const IndexState& old_state,
                       const IndexState& new_state);

  ComplianceLogOptions LogOptions() const;
  /// Sync mode: flush inline (the classic per-hook durability point).
  /// Async mode: no-op — durability is deferred to the barriers.
  Status MaybeSyncFlush();

  /// Serializes all public entry points (none call each other; the
  /// private helpers run with it held).
  mutable std::mutex mu_;
  ComplianceOptions options_;
  WormStore* worm_;
  DiskManager* disk_;
  Clock* clock_;
  std::unique_ptr<ComplianceLog> log_;
  /// Records that (pgno, is_index) was cached with the given sync state
  /// and enforces max_cached_pages by evicting old disk-consistent
  /// entries.
  void NoteCached(PageId pgno, bool is_index, bool disk_synced);

  std::map<PageId, PageState> baseline_;
  std::map<PageId, IndexState> index_baseline_;
  // Async shipping: per-page high-water mark — the logical L offset after
  // the last record mentioning the page. OnPageWriteBarrier stalls the
  // pwrite until the log is durable through this offset (WAL-style
  // "log before data" applied to the compliance log).
  std::map<PageId, uint64_t> page_high_water_;
  // Baselines known to be ahead of the on-disk image (unpinnable).
  std::set<PageId> unsynced_;
  // FIFO of eviction candidates; entries may be stale (lazily skipped).
  std::deque<std::pair<PageId, bool>> evict_queue_;
  uint64_t last_stamp_activity_ = 0;
  uint64_t last_witness_time_ = 0;
  uint64_t witness_seq_ = 0;
  bool in_recovery_ = false;
  // Transaction outcomes already on L: recovery re-announces every
  // committed/aborted transaction it finds in the WAL, and appending a
  // second copy would be redundant (and trip the auditor's monotonic-
  // commit-time check).
  std::map<TxnId, uint64_t> stamps_on_log_;
  std::set<TxnId> aborts_on_log_;
  Stats stats_;
};

}  // namespace complydb

#endif  // COMPLYDB_COMPLIANCE_LOGGER_H_
