#ifndef COMPLYDB_COMPLIANCE_COMPLIANCE_LOG_H_
#define COMPLYDB_COMPLIANCE_COMPLIANCE_LOG_H_

#include <functional>
#include <string>

#include "compliance/records.h"
#include "worm/worm_store.h"

namespace complydb {

/// Naming scheme for the per-epoch WORM files. An epoch is the span
/// between two audits; audit n verifies (snapshot_n, L_n) and produces
/// snapshot_{n+1}, after which epoch n+1 begins.
std::string LogFileName(uint64_t epoch);
std::string StampIndexFileName(uint64_t epoch);
std::string SnapshotFileName(uint64_t epoch);
std::string WitnessFileName(uint64_t epoch, uint64_t seq);
std::string TxTailFileName(uint64_t epoch, uint64_t seq);
std::string HistPageFileName(uint32_t tree_id, uint64_t seq);

/// Append/scan access to one epoch's compliance log L on WORM. Appends are
/// synchronous and durable: a record "is on WORM" when Append returns.
///
/// The auxiliary stamp index (paper §IV-A) records, for every STAMP_TRANS,
/// the transaction id, its offset in L, and the commit time, letting the
/// auditor build its txn-id -> commit-time table without a preliminary
/// pass over the full log.
class ComplianceLog {
 public:
  ComplianceLog(WormStore* worm, uint64_t epoch)
      : worm_(worm), epoch_(epoch) {}

  /// Creates the epoch's L and stamp-index files (must not exist).
  Status Create();

  /// Opens existing files, positioning the append offset.
  Status OpenExisting();

  Status Append(const CRecord& rec);

  /// Batched variant: bytes reach the OS only at Flush(). A record is "on
  /// WORM" only after Flush returns; the compliance logger batches the
  /// records of one pwrite diff and flushes before the pwrite proceeds.
  Status AppendUnflushed(const CRecord& rec);
  Status Flush();

  /// Bytes appended so far (the next record's offset).
  uint64_t size() const { return size_; }
  uint64_t epoch() const { return epoch_; }
  uint64_t record_count() const { return record_count_; }

  /// Scans this epoch's records in order.
  Status Scan(const std::function<Status(const CRecord&, uint64_t)>& fn) const;

  /// Scans the stamp index: fn(txn_id, offset_in_L, commit_time).
  Status ScanStampIndex(
      const std::function<Status(TxnId, uint64_t, uint64_t)>& fn) const;

  WormStore* worm() const { return worm_; }

 private:
  WormStore* worm_;
  uint64_t epoch_;
  uint64_t size_ = 0;
  uint64_t record_count_ = 0;
};

}  // namespace complydb

#endif  // COMPLYDB_COMPLIANCE_COMPLIANCE_LOG_H_
