#ifndef COMPLYDB_COMPLIANCE_COMPLIANCE_LOG_H_
#define COMPLYDB_COMPLIANCE_COMPLIANCE_LOG_H_

#include <functional>
#include <memory>
#include <string>

#include "compliance/records.h"
#include "compliance/shipper.h"
#include "worm/worm_store.h"

namespace complydb {

/// Naming scheme for the per-epoch WORM files. An epoch is the span
/// between two audits; audit n verifies (snapshot_n, L_n) and produces
/// snapshot_{n+1}, after which epoch n+1 begins.
std::string LogFileName(uint64_t epoch);
std::string StampIndexFileName(uint64_t epoch);
std::string SnapshotFileName(uint64_t epoch);
std::string WitnessFileName(uint64_t epoch, uint64_t seq);
std::string TxTailFileName(uint64_t epoch, uint64_t seq);
std::string HistPageFileName(uint32_t tree_id, uint64_t seq);

/// How appended records become durable on WORM.
struct ComplianceLogOptions {
  /// false: Flush() performs the WORM fflush inline (classic path).
  /// true: appends go to an in-memory ring drained by a LogShipper
  /// thread; Flush()/FlushThrough() become barriers that wait for the
  /// shipper, and many records/transactions share one fflush.
  bool async = false;

  /// Group-commit window for the shipper (see LogShipper). Ignored when
  /// sync.
  uint64_t group_commit_window_micros = 200;

  /// Rebuild a missing stamp-index tail from L's STAMP_TRANS records on
  /// OpenExisting. The index's durability is lazy (it rides the log's
  /// flush unflushed), so a crash can lose index entries whose records
  /// are on L; reconciliation reconstructs them byte-for-byte. Off for
  /// read-only consumers (the auditor tolerates a short index).
  bool repair_stamp_index = false;
};

/// Append/scan access to one epoch's compliance log L on WORM. A record
/// "is on WORM" once the flush covering it returns: inline in sync mode,
/// via a FlushThrough/Flush barrier in async mode. Either way the bytes
/// written are identical — the shipper drains FIFO from a single thread.
///
/// The auxiliary stamp index (paper §IV-A) records, for every STAMP_TRANS,
/// the transaction id, its offset in L, and the commit time, letting the
/// auditor build its txn-id -> commit-time table without a preliminary
/// pass over the full log.
class ComplianceLog {
 public:
  ComplianceLog(WormStore* worm, uint64_t epoch,
                ComplianceLogOptions opts = ComplianceLogOptions{})
      : worm_(worm), epoch_(epoch), opts_(opts) {}
  ~ComplianceLog();

  /// Creates the epoch's L and stamp-index files (must not exist).
  Status Create();

  /// Opens existing files, positioning the append offset.
  Status OpenExisting();

  Status Append(const CRecord& rec);

  /// Batched variant: bytes reach the OS only at the next flush barrier.
  /// A record is "on WORM" only after Flush/FlushThrough covers it; the
  /// compliance logger batches the records of one pwrite diff and
  /// barriers before the pwrite proceeds.
  Status AppendUnflushed(const CRecord& rec);
  Status Flush();

  /// Durability barrier up to a logical L offset: returns once every byte
  /// below `offset` is durable on WORM. In sync mode this is a full
  /// Flush; in async mode it waits on the shipper (which typically
  /// already drained the ring in the background).
  Status FlushThrough(uint64_t offset);

  /// Bytes appended so far (the next record's offset).
  uint64_t size() const { return size_; }
  /// Bytes known durable on WORM.
  uint64_t durable_offset() const;
  uint64_t epoch() const { return epoch_; }
  uint64_t record_count() const { return record_count_; }
  bool async() const { return shipper_ != nullptr; }

  /// Scans this epoch's records in order (drains the ring first, so the
  /// scan sees every append).
  Status Scan(const std::function<Status(const CRecord&, uint64_t)>& fn) const;

  /// Scans the stamp index: fn(txn_id, offset_in_L, commit_time).
  Status ScanStampIndex(
      const std::function<Status(TxnId, uint64_t, uint64_t)>& fn) const;

  WormStore* worm() const { return worm_; }

 private:
  void StartShipper();
  Status RepairStampIndex();
  /// Barrier before reads: everything appended must be visible.
  Status SyncForRead() const;

  WormStore* worm_;
  uint64_t epoch_;
  ComplianceLogOptions opts_;
  uint64_t size_ = 0;
  uint64_t record_count_ = 0;
  uint64_t durable_offset_ = 0;  // sync-mode tracking; async asks the shipper
  // mutable: const readers (Scan) must be able to issue the read barrier.
  mutable std::unique_ptr<LogShipper> shipper_;
};

}  // namespace complydb

#endif  // COMPLYDB_COMPLIANCE_COMPLIANCE_LOG_H_
