#include "compliance/shipper.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/span.h"

namespace complydb {

namespace {
struct ShipperMetrics {
  obs::Gauge* queue_depth;
  obs::Counter* flushes;
  obs::Counter* shipped_bytes;
  obs::Histogram* records_per_flush;
  ShipperMetrics() {
    auto& reg = obs::MetricsRegistry::Global();
    queue_depth = reg.GetGauge("compliance.shipper.queue_depth");
    flushes = reg.GetCounter("compliance.shipper.flushes");
    shipped_bytes = reg.GetCounter("compliance.shipper.shipped_bytes");
    records_per_flush = reg.GetHistogram("compliance.shipper.records_per_flush");
  }
};
ShipperMetrics& Sm() {
  static ShipperMetrics m;
  return m;
}
}  // namespace

LogShipper::LogShipper(WormStore* worm, std::string log_file,
                       std::string index_file, uint64_t durable_offset,
                       uint64_t window_micros)
    : worm_(worm),
      log_file_(std::move(log_file)),
      index_file_(std::move(index_file)),
      window_micros_(window_micros),
      appended_offset_(durable_offset),
      durable_offset_(durable_offset) {
  thread_ = std::thread([this] { Loop(); });
}

LogShipper::~LogShipper() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    // Ring contents are dropped, not shipped: destroying the shipper
    // without a preceding WaitDurable models a crash, and the barriers
    // guarantee nothing that matters was still in the ring.
    pending_log_.clear();
    pending_index_.clear();
    pending_records_ = 0;
  }
  work_cv_.notify_all();
  thread_.join();
  Sm().queue_depth->Set(0);
}

void LogShipper::EnqueueLog(std::string framed, uint64_t end_offset) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_log_.append(framed);
    appended_offset_ = end_offset;
    ++pending_records_;
    Sm().queue_depth->Set(static_cast<int64_t>(pending_records_));
  }
  work_cv_.notify_one();
}

void LogShipper::EnqueueIndex(std::string entry) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_index_.append(entry);
  }
  work_cv_.notify_one();
}

Status LogShipper::WaitDurable(uint64_t offset) {
  std::unique_lock<std::mutex> lock(mu_);
  if (offset > flush_target_) flush_target_ = offset;
  while (durable_offset_ < offset && error_.ok()) {
    if (draining_) {
      // A drain is in flight (shipper thread or another barrier); wait for
      // it to land, then re-check — it may not have covered our offset.
      // For a committing thread this wait is the "ring-queued" segment of
      // its critical path.
      const bool spans = obs::SpansEnabled();
      const uint64_t wait_start = spans ? obs::MonotonicMicros() : 0;
      durable_cv_.wait(lock, [&] {
        return !draining_ || durable_offset_ >= offset || !error_.ok();
      });
      if (spans) {
        obs::RecordQueuedInterval(wait_start, obs::MonotonicMicros());
      }
      continue;
    }
    DrainLocked(lock);
  }
  return error_;
}

uint64_t LogShipper::durable_offset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_offset_;
}

Status LogShipper::error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

void LogShipper::DrainLocked(std::unique_lock<std::mutex>& lock) {
  draining_ = true;
  std::string log_bytes;
  std::string index_bytes;
  log_bytes.swap(pending_log_);
  index_bytes.swap(pending_index_);
  uint64_t end = appended_offset_;
  uint64_t records = pending_records_;
  uint64_t batch = ++batch_seq_;
  pending_records_ = 0;
  Sm().queue_depth->Set(0);
  lock.unlock();

  // Span attribution: an inline-stolen drain runs on the committing
  // thread, so these intervals land in its commit.drain / commit.worm_
  // flush segments; a window-expiry drain runs here on the shipper thread
  // and is emitted as shipper.* spans keyed by the batch id instead.
  const bool spans = obs::SpansEnabled();
  const uint64_t t_drain = spans ? obs::MonotonicMicros() : 0;
  Status s;
  if (!log_bytes.empty()) s = worm_->AppendUnflushed(log_file_, log_bytes);
  if (s.ok() && !index_bytes.empty()) {
    // The index rides the same drain unflushed; its durability is lazy
    // (reconciled from L on reopen), so a commit pays exactly one fflush.
    s = worm_->AppendUnflushed(index_file_, index_bytes);
  }
  const uint64_t t_flush = spans ? obs::MonotonicMicros() : 0;
  if (s.ok()) s = worm_->FlushAppends(log_file_);
  if (spans) {
    obs::RecordDrainInterval(t_drain, t_flush,
                             log_bytes.size() + index_bytes.size(), batch);
    obs::RecordWormFlushInterval(t_flush, obs::MonotonicMicros(), batch);
  }
  if (s.ok() && records > 0) {
    Sm().flushes->Inc();
    Sm().shipped_bytes->Inc(log_bytes.size() + index_bytes.size());
    Sm().records_per_flush->Record(records);
  }

  lock.lock();
  draining_ = false;
  if (!s.ok()) {
    error_ = s;
  } else {
    durable_offset_ = end;
  }
  durable_cv_.notify_all();
  work_cv_.notify_all();
}

void LogShipper::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ ||
             (!draining_ &&
              (!pending_log_.empty() || !pending_index_.empty() ||
               flush_target_ > durable_offset_));
    });
    if (stop_) return;
    if (!error_.ok()) {
      // Sticky error: the pipeline is dead, every waiter (present and
      // future) is handed the error by WaitDurable's predicate.
      durable_cv_.notify_all();
      return;
    }
    if (window_micros_ > 0 && flush_target_ <= durable_offset_) {
      // Group-commit window: nobody is stalled on a barrier, so linger to
      // let more records accumulate under the same fflush.
      work_cv_.wait_for(lock, std::chrono::microseconds(window_micros_), [&] {
        return stop_ || (!draining_ && flush_target_ > durable_offset_);
      });
      if (stop_) return;
    }
    // A barrier may have stolen the drain while we lingered.
    if (draining_ || (pending_log_.empty() && pending_index_.empty() &&
                      flush_target_ <= durable_offset_)) {
      continue;
    }
    DrainLocked(lock);
  }
}

}  // namespace complydb
