#ifndef COMPLYDB_COMPLIANCE_PAGE_REPLAY_H_
#define COMPLYDB_COMPLIANCE_PAGE_REPLAY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "compliance/compliance_log.h"
#include "compliance/records.h"
#include "crypto/add_hash.h"
#include "crypto/sha256.h"

namespace complydb {

/// One SHREDDED intent found in L.
struct ShredRecord {
  uint32_t tree_id = 0;
  std::string key;
  uint64_t start = 0;
  PageId pgno = kInvalidPage;
  uint64_t timestamp = 0;
  std::string content_hash;
  /// Non-empty for shreds of WORM-migrated tuples: the historical page
  /// file slated for whole-file deletion after the audit.
  std::string hist_name;
};

/// One migration record found in L.
struct MigrationRecord {
  uint32_t tree_id = 0;
  PageId live_pgno = kInvalidPage;
  std::string hist_name;
  std::vector<std::string> entries;
  /// L offset of the MIGRATE record; shard merging sorts on it so the
  /// merged list reproduces the serial log order.
  uint64_t offset = 0;
};

/// Prepass summary of one epoch's L: transaction outcomes and shred
/// intents, needed before replay because UNDO records may precede the
/// ABORT/SHREDDED records that justify them (crash-recovery interleaving).
struct LogSummary {
  std::map<TxnId, uint64_t> stamps;  // txn id -> commit time
  std::set<TxnId> aborts;
  std::vector<ShredRecord> shreds;
  std::vector<std::string> problems;  // conflicting stamps, abort+commit, ...
  uint64_t last_commit_time = 0;
};

Status SummarizeLog(const ComplianceLog& log, LogSummary* out);
/// Variant over an already-read log blob (avoids re-reading L).
Status SummarizeLogBlob(Slice blob, LogSummary* out);

/// Deterministic replay of L's page-level records, reconstructing the
/// expected tuple content of every live leaf page.
///
/// Simplification over the paper's §V roll-back/roll-forward: because we
/// keep the full record set per page (keyed by tuple order number, which
/// is unique for a page's lifetime), an aborted tuple is simply present
/// between its NEW_TUPLE and its UNDO — exactly mirroring the physical
/// page — so READ hashes verify with no hash-chain rollback.
///
/// Sharded replay: every record in L names the page(s) it touches, and
/// records for different pages never interact until Finalize — so N
/// replayers can each scan the whole log applying only the records whose
/// pages hash into their shard, then be merged (AbsorbShard +
/// FinishMerge) into a state identical to the serial replay. Records
/// that touch two or three pages (PAGE_SPLIT, ROOT_GROW) are applied
/// piecewise by each page's owner; the union cross-check runs on the old
/// page's owner, which is the only shard holding the pre-image.
class PageReplayer {
 public:
  struct Options {
    /// Auditor mode: run cross-checks (split unions, UNDO justification,
    /// READ-hash verification) and collect problems. The compliance
    /// logger replays with verify=false just to rebuild its diff baseline.
    bool verify = false;
    bool verify_read_hashes = false;
    /// Sharded replay: this replayer applies only records for pages with
    /// Owns(tree_id, pgno). shard_count == 1 is the serial reference
    /// path and applies everything.
    uint32_t shard_index = 0;
    uint32_t shard_count = 1;
  };

  using PageKey = std::pair<uint32_t, PageId>;  // (tree_id, pgno)
  using PageState = std::map<uint16_t, std::string>;  // order_no -> record
  /// Internal (index) page state: entry bytes keyed by their (key, start)
  /// sort key — slot order on disk is sorted order, so Hs agrees.
  using IndexState = std::map<std::string, std::string>;

  PageReplayer(Options opts, const LogSummary* summary)
      : opts_(opts), summary_(summary) {}

  /// Seeds a page's state (from the previous snapshot).
  void SeedPage(uint32_t tree_id, PageId pgno, const std::vector<std::string>& records);

  /// Seeds an internal page's entry list (from the previous snapshot).
  void SeedIndexPage(uint32_t tree_id, PageId pgno,
                     const std::vector<std::string>& entries);

  /// Registers a tree root whose page starts empty (kNewTree handles this
  /// during replay; snapshots seed existing roots).
  void SeedEmptyPage(uint32_t tree_id, PageId pgno);

  Status Apply(const CRecord& rec, uint64_t offset);

  /// True when this replayer's shard owns (tree_id, pgno). With
  /// shard_count == 1 every page is owned.
  bool Owns(uint32_t tree_id, PageId pgno) const;

  /// Folds a sibling shard's state into this one. Page maps are disjoint
  /// by construction (each page has exactly one owner); deltas merge
  /// commutatively; offset-tagged lists concatenate. Call FinishMerge
  /// once after absorbing every shard, then Finalize.
  void AbsorbShard(PageReplayer&& other);

  /// Restores serial order after AbsorbShard: migrations, problems, and
  /// pending checks are re-sorted by their L offsets. At most one shard
  /// emits problems for a given offset, so a stable sort reproduces the
  /// serial problem list byte for byte.
  void FinishMerge();

  /// Incremental-audit variant of AbsorbShard: folds a *window* shard —
  /// an ephemeral replayer that was seeded with this replayer's current
  /// state for `touched_pages`/`touched_index` and then applied one
  /// sealed epoch's records — back into this long-lived state. Unlike
  /// AbsorbShard the maps are NOT disjoint: for every touched key the
  /// shard owns, the shard's version *overwrites* ours, and a key the
  /// shard no longer holds is *erased* (ROOT_GROW deletes the old root's
  /// leaf state). Non-page artifacts (deltas, problems, pending checks)
  /// concatenate as in AbsorbShard; call FinishMerge afterwards.
  void AbsorbWindowShard(PageReplayer&& other,
                         const std::vector<PageKey>& touched_pages,
                         const std::vector<PageKey>& touched_index);

  /// Incremental-audit variant of Finalize: resolves the pending UNDO
  /// justifications that the final state *can* answer (the moved tuple is
  /// present again) and keeps the rest pending — mid-chain, the
  /// justifying SHREDDED or page move may simply not be sealed yet. The
  /// full audit's Finalize remains the authoritative reporter for
  /// justifications that never arrive.
  void ResolvePendingMoves();

  /// Verify mode: run after the full scan. Resolves deferred UNDO
  /// justifications — a stamped tuple's UNDO with no SHREDDED record is
  /// legitimate only if the tuple still exists elsewhere in the final
  /// state (a crash-reconciliation page move), never if it vanished.
  Status Finalize();

  /// Verify mode: net change to the live-tuple identity ADD_HASH implied
  /// by this epoch's log (folding it into the previous snapshot's hash
  /// yields the expected hash of the final database state).
  const AddHash& identity_delta() const { return identity_delta_; }
  /// Verify mode: identities migrated to WORM this epoch.
  const AddHash& migrated_delta() const { return migrated_delta_; }

  const std::map<PageKey, PageState>& pages() const { return pages_; }
  const std::map<PageKey, IndexState>& index_pages() const {
    return index_pages_;
  }
  const std::vector<MigrationRecord>& migrations() const { return migrations_; }
  const std::map<uint32_t, PageId>& tree_roots() const { return tree_roots_; }
  const std::vector<std::string>& problems() const { return problems_; }
  uint64_t read_hashes_checked() const { return read_hashes_checked_; }

  /// Hs over a page state in order-number order (the logger's READ hash).
  static Sha256Digest HashPageState(const PageState& state);
  /// Hs over an internal page's entries in sorted (slot) order.
  static Sha256Digest HashIndexState(const IndexState& state);
  /// Sort key of an internal entry: key bytes + big-endian start.
  static Result<std::string> IndexEntrySortKey(Slice entry);

 private:
  void Problem(const std::string& what);

  Options opts_;
  const LogSummary* summary_;
  std::map<PageKey, PageState> pages_;
  std::map<PageKey, IndexState> index_pages_;
  std::map<uint32_t, PageId> tree_roots_;
  std::vector<MigrationRecord> migrations_;
  std::vector<std::string> problems_;
  // L offset of each problems_ entry (parallel vector); Finalize-time
  // problems use kNoOffset so they stay last after the merge sort.
  std::vector<uint64_t> problem_offsets_;
  uint64_t current_offset_ = 0;
  uint64_t read_hashes_checked_ = 0;
  AddHash identity_delta_;
  AddHash migrated_delta_;
  // (identity bytes, L offset) of stamped UNDOs awaiting the final-state
  // presence check.
  std::vector<std::pair<std::string, uint64_t>> pending_move_checks_;
};

}  // namespace complydb

#endif  // COMPLYDB_COMPLIANCE_PAGE_REPLAY_H_
