#include "compliance/page_replay.h"

#include <algorithm>
#include <cstring>

#include "btree/tuple.h"
#include "common/coding.h"
#include "compliance/snapshot.h"
#include "crypto/seq_hash.h"

namespace complydb {

namespace {

Status ApplySummaryRecord(const CRecord& rec, LogSummary* out) {
    switch (rec.type) {
      case CRecordType::kStampTrans: {
        auto it = out->stamps.find(rec.txn_id);
        if (it != out->stamps.end()) {
          // Identical duplicates happen legitimately after crash recovery;
          // *different* commit times for one txn indicate tampering.
          if (it->second != rec.commit_time) {
            out->problems.push_back(
                "two different STAMP_TRANS for txn " +
                std::to_string(rec.txn_id));
          }
        } else {
          out->stamps[rec.txn_id] = rec.commit_time;
        }
        if (out->aborts.count(rec.txn_id) > 0) {
          out->problems.push_back("txn " + std::to_string(rec.txn_id) +
                                  " has both STAMP_TRANS and ABORT");
        }
        out->last_commit_time =
            std::max(out->last_commit_time, rec.commit_time);
        break;
      }
      case CRecordType::kAbort: {
        out->aborts.insert(rec.txn_id);
        if (out->stamps.count(rec.txn_id) > 0) {
          out->problems.push_back("txn " + std::to_string(rec.txn_id) +
                                  " has both STAMP_TRANS and ABORT");
        }
        break;
      }
      case CRecordType::kShredded: {
        ShredRecord shred;
        shred.tree_id = rec.tree_id;
        shred.key = rec.key;
        shred.start = rec.start;
        shred.pgno = rec.pgno;
        shred.timestamp = rec.timestamp;
        shred.content_hash = rec.hash;
        shred.hist_name = rec.name;
        out->shreds.push_back(std::move(shred));
        break;
      }
      default:
        break;
    }
    return Status::OK();
}

}  // namespace

Status SummarizeLog(const ComplianceLog& log, LogSummary* out) {
  return log.Scan([&](const CRecord& rec, uint64_t) -> Status {
    return ApplySummaryRecord(rec, out);
  });
}

Status SummarizeLogBlob(Slice blob, LogSummary* out) {
  return ScanCRecords(blob, [&](const CRecord& rec, uint64_t) -> Status {
    return ApplySummaryRecord(rec, out);
  });
}

namespace {

// Sentinel offset for problems emitted outside the log scan (Finalize):
// sorts after every real offset so the merged order matches serial.
constexpr uint64_t kNoOffset = ~0ull;

}  // namespace

void PageReplayer::Problem(const std::string& what) {
  if (opts_.verify) {
    problems_.push_back(what);
    problem_offsets_.push_back(current_offset_);
  }
}

bool PageReplayer::Owns(uint32_t tree_id, PageId pgno) const {
  if (opts_.shard_count <= 1) return true;
  // Fixed avalanche mix (splitmix64 finalizer) — the assignment must be
  // identical across runs and thread counts for determinism.
  uint64_t x = (static_cast<uint64_t>(tree_id) << 32) ^ pgno;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x % opts_.shard_count == opts_.shard_index;
}

void PageReplayer::SeedPage(uint32_t tree_id, PageId pgno,
                            const std::vector<std::string>& records) {
  if (!Owns(tree_id, pgno)) return;
  PageState& state = pages_[{tree_id, pgno}];
  state.clear();
  for (const auto& r : records) {
    TupleData t;
    if (DecodeTuple(r, &t).ok()) state[t.order_no] = r;
  }
}

void PageReplayer::SeedEmptyPage(uint32_t tree_id, PageId pgno) {
  if (!Owns(tree_id, pgno)) return;
  pages_[{tree_id, pgno}];
}

void PageReplayer::SeedIndexPage(uint32_t tree_id, PageId pgno,
                                 const std::vector<std::string>& entries) {
  if (!Owns(tree_id, pgno)) return;
  IndexState& state = index_pages_[{tree_id, pgno}];
  state.clear();
  for (const auto& e : entries) {
    auto key = IndexEntrySortKey(e);
    if (key.ok()) state[key.value()] = e;
  }
}

Result<std::string> PageReplayer::IndexEntrySortKey(Slice entry) {
  Slice key;
  uint64_t start = 0;
  PageId child = kInvalidPage;
  CDB_RETURN_IF_ERROR(DecodeIndexEntryKey(entry, &key, &start, &child));
  std::string sort_key(key.data(), key.size());
  PutBigEndian64(&sort_key, start);
  return sort_key;
}

Sha256Digest PageReplayer::HashIndexState(const IndexState& state) {
  std::vector<Slice> elems;
  elems.reserve(state.size());
  for (const auto& [sort_key, entry] : state) elems.emplace_back(entry);
  return SeqHash::Compute(elems);
}

void PageReplayer::AbsorbShard(PageReplayer&& other) {
  // Page maps are disjoint: each (tree_id, pgno) has exactly one owner.
  pages_.merge(other.pages_);
  index_pages_.merge(other.index_pages_);
  // Every shard records the same tree roots (kNewTree is unsharded).
  tree_roots_.insert(other.tree_roots_.begin(), other.tree_roots_.end());
  for (auto& m : other.migrations_) migrations_.push_back(std::move(m));
  for (size_t i = 0; i < other.problems_.size(); ++i) {
    problems_.push_back(std::move(other.problems_[i]));
    problem_offsets_.push_back(other.problem_offsets_[i]);
  }
  for (auto& p : other.pending_move_checks_) {
    pending_move_checks_.push_back(std::move(p));
  }
  read_hashes_checked_ += other.read_hashes_checked_;
  identity_delta_.Merge(other.identity_delta_);
  migrated_delta_.Merge(other.migrated_delta_);
}

void PageReplayer::AbsorbWindowShard(PageReplayer&& other,
                                     const std::vector<PageKey>& touched_pages,
                                     const std::vector<PageKey>& touched_index) {
  for (const auto& key : touched_pages) {
    if (!other.Owns(key.first, key.second)) continue;
    auto it = other.pages_.find(key);
    if (it != other.pages_.end()) {
      pages_[key] = std::move(it->second);
    } else {
      pages_.erase(key);
    }
  }
  for (const auto& key : touched_index) {
    if (!other.Owns(key.first, key.second)) continue;
    auto it = other.index_pages_.find(key);
    if (it != other.index_pages_.end()) {
      index_pages_[key] = std::move(it->second);
    } else {
      index_pages_.erase(key);
    }
  }
  tree_roots_.insert(other.tree_roots_.begin(), other.tree_roots_.end());
  for (auto& m : other.migrations_) migrations_.push_back(std::move(m));
  for (size_t i = 0; i < other.problems_.size(); ++i) {
    problems_.push_back(std::move(other.problems_[i]));
    problem_offsets_.push_back(other.problem_offsets_[i]);
  }
  for (auto& p : other.pending_move_checks_) {
    pending_move_checks_.push_back(std::move(p));
  }
  read_hashes_checked_ += other.read_hashes_checked_;
  identity_delta_.Merge(other.identity_delta_);
  migrated_delta_.Merge(other.migrated_delta_);
}

void PageReplayer::ResolvePendingMoves() {
  if (pending_move_checks_.empty() || summary_ == nullptr) return;
  std::set<std::string> present;
  for (const auto& [key, state] : pages_) {
    for (const auto& [order_no, rec] : state) {
      auto id = TupleIdentity(key.first, rec, summary_->stamps);
      if (id.ok()) present.insert(id.value());
    }
  }
  pending_move_checks_.erase(
      std::remove_if(pending_move_checks_.begin(), pending_move_checks_.end(),
                     [&present](const std::pair<std::string, uint64_t>& p) {
                       return present.count(p.first) != 0;
                     }),
      pending_move_checks_.end());
}

void PageReplayer::FinishMerge() {
  std::stable_sort(
      migrations_.begin(), migrations_.end(),
      [](const MigrationRecord& a, const MigrationRecord& b) {
        return a.offset < b.offset;
      });
  std::stable_sort(pending_move_checks_.begin(), pending_move_checks_.end(),
                   [](const auto& a, const auto& b) {
                     return a.second < b.second;
                   });
  // Re-order problems by offset. At most one shard emits for any given
  // offset (multi-page records report through the old page's owner), so a
  // stable sort on the offset tags reproduces the serial emission order.
  std::vector<size_t> idx(problems_.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [this](size_t a, size_t b) {
    return problem_offsets_[a] < problem_offsets_[b];
  });
  std::vector<std::string> sorted_problems;
  std::vector<uint64_t> sorted_offsets;
  sorted_problems.reserve(idx.size());
  sorted_offsets.reserve(idx.size());
  for (size_t i : idx) {
    sorted_problems.push_back(std::move(problems_[i]));
    sorted_offsets.push_back(problem_offsets_[i]);
  }
  problems_ = std::move(sorted_problems);
  problem_offsets_ = std::move(sorted_offsets);
}

Status PageReplayer::Finalize() {
  current_offset_ = kNoOffset;
  if (!opts_.verify || pending_move_checks_.empty() || summary_ == nullptr) {
    return Status::OK();
  }
  std::set<std::string> present;
  for (const auto& [key, state] : pages_) {
    for (const auto& [order_no, rec] : state) {
      auto id = TupleIdentity(key.first, rec, summary_->stamps);
      if (id.ok()) present.insert(id.value());
    }
  }
  for (const auto& [identity, offset] : pending_move_checks_) {
    if (present.count(identity) == 0) {
      Problem("offset " + std::to_string(offset) +
              ": UNDO of stamped tuple without SHREDDED justification, and "
              "the tuple is gone from the final state");
    }
  }
  return Status::OK();
}

Sha256Digest PageReplayer::HashPageState(const PageState& state) {
  std::vector<Slice> elems;
  elems.reserve(state.size());
  for (const auto& [order_no, rec] : state) elems.emplace_back(rec);
  return SeqHash::Compute(elems);
}

Status PageReplayer::Apply(const CRecord& rec, uint64_t offset) {
  current_offset_ = offset;
  auto list_to_state = [](const std::vector<std::string>& entries,
                          PageState* state) {
    state->clear();
    for (const auto& r : entries) {
      TupleData t;
      if (DecodeTuple(r, &t).ok()) (*state)[t.order_no] = r;
    }
  };

  switch (rec.type) {
    case CRecordType::kNewTree: {
      tree_roots_[rec.tree_id] = rec.pgno;
      SeedEmptyPage(rec.tree_id, rec.pgno);
      break;
    }
    case CRecordType::kNewTuple: {
      if (!Owns(rec.tree_id, rec.pgno)) break;
      TupleData t;
      Status s = DecodeTuple(rec.tuple, &t);
      if (!s.ok()) {
        Problem("offset " + std::to_string(offset) +
                ": undecodable NEW_TUPLE");
        break;
      }
      PageState& state = pages_[{rec.tree_id, rec.pgno}];
      auto it = state.find(t.order_no);
      if (it != state.end()) {
        if (it->second != rec.tuple) {
          TupleData prev;
          std::string detail;
          if (DecodeTuple(it->second, &prev).ok()) {
            detail = " (held: key '" + prev.key + "' start " +
                     std::to_string(prev.start) +
                     (prev.stamped ? " stamped" : " unstamped") +
                     "; incoming: key '" + t.key + "' start " +
                     std::to_string(t.start) +
                     (t.stamped ? " stamped" : " unstamped") + ")";
          }
          Problem("offset " + std::to_string(offset) +
                  ": conflicting NEW_TUPLE for page " +
                  std::to_string(rec.pgno) + " order " +
                  std::to_string(t.order_no) + detail);
        }
        // Identical duplicate (recovery replays): counted once.
        break;
      }
      state[t.order_no] = rec.tuple;
      if (opts_.verify && summary_ != nullptr) {
        auto id = TupleIdentity(rec.tree_id, rec.tuple, summary_->stamps);
        if (id.ok()) identity_delta_.Add(id.value());
        // Unresolvable = uncommitted/aborted: never part of Df.
      }
      break;
    }
    case CRecordType::kUndo: {
      if (!Owns(rec.tree_id, rec.pgno)) break;
      TupleData t;
      Status s = DecodeTuple(rec.tuple, &t);
      if (!s.ok()) {
        Problem("offset " + std::to_string(offset) + ": undecodable UNDO");
        break;
      }
      PageState& state = pages_[{rec.tree_id, rec.pgno}];
      auto it = state.find(t.order_no);
      if (it == state.end()) {
        // Duplicate UNDO after crash recovery is benign (§V).
        break;
      }
      if (opts_.verify && it->second != rec.tuple) {
        Problem("offset " + std::to_string(offset) +
                ": UNDO bytes disagree with replayed tuple (page " +
                std::to_string(rec.pgno) + ")");
      }
      if (opts_.verify && summary_ != nullptr) {
        auto id = TupleIdentity(rec.tree_id, rec.tuple, summary_->stamps);
        if (id.ok()) identity_delta_.Remove(id.value());
        // Justification (§VIII): an unstamped tuple may vanish only if
        // its transaction aborted; a stamped tuple only if a SHREDDED
        // record announced its vacuuming — or, after crash recovery, if
        // the tuple merely moved pages (checked against the final state
        // in Finalize()).
        if (!t.stamped) {
          if (summary_->aborts.count(t.start) == 0) {
            Problem("offset " + std::to_string(offset) +
                    ": UNDO of uncommitted tuple without ABORT (key '" +
                    t.key + "')");
          }
        } else {
          bool shredded = false;
          for (const auto& shred : summary_->shreds) {
            if (shred.tree_id == rec.tree_id && shred.key == t.key &&
                shred.start == t.start) {
              shredded = true;
              break;
            }
          }
          if (!shredded) {
            if (id.ok()) {
              pending_move_checks_.emplace_back(id.value(), offset);
            } else {
              Problem("offset " + std::to_string(offset) +
                      ": UNDO of stamped tuple with unresolvable identity");
            }
          }
        }
      }
      state.erase(it);
      break;
    }
    case CRecordType::kStampPage: {
      if (!Owns(rec.tree_id, rec.pgno)) break;
      PageState& state = pages_[{rec.tree_id, rec.pgno}];
      auto it = state.find(rec.order_no);
      if (it == state.end()) {
        Problem("offset " + std::to_string(offset) +
                ": STAMP_PAGE for unknown tuple");
        break;
      }
      TupleData t;
      if (!DecodeTuple(it->second, &t).ok()) break;
      if (opts_.verify && t.stamped) {
        Problem("offset " + std::to_string(offset) +
                ": STAMP_PAGE of already-stamped tuple");
      }
      if (opts_.verify && t.start != rec.txn_id) {
        Problem("offset " + std::to_string(offset) +
                ": STAMP_PAGE txn id mismatch");
      }
      if (opts_.verify && summary_ != nullptr) {
        auto st = summary_->stamps.find(rec.txn_id);
        if (st == summary_->stamps.end() || st->second != rec.commit_time) {
          Problem("offset " + std::to_string(offset) +
                  ": STAMP_PAGE not backed by STAMP_TRANS");
        }
      }
      t.start = rec.commit_time;
      t.stamped = true;
      it->second = EncodeTuple(t);
      break;
    }
    case CRecordType::kPageSplit: {
      // Touches two pages; each owner applies its half. The union
      // cross-check needs the pre-image, which only the old page's owner
      // holds, so that shard alone emits the problem.
      PageKey old_key{rec.tree_id, rec.pgno};
      const bool owns_old = Owns(rec.tree_id, rec.pgno);
      const bool owns_new = Owns(rec.tree_id, rec.new_pgno);
      if (!owns_old && !owns_new) break;
      if (owns_old && opts_.verify) {
        // Union of the two post-split pages must equal the old page.
        PageState expect = pages_[old_key];
        PageState combined;
        for (const auto& r : rec.entries_a) {
          TupleData t;
          if (DecodeTuple(r, &t).ok()) combined[t.order_no] = r;
        }
        for (const auto& r : rec.entries_b) {
          TupleData t;
          if (DecodeTuple(r, &t).ok()) combined[t.order_no] = r;
        }
        if (combined != expect) {
          Problem("offset " + std::to_string(offset) +
                  ": PAGE_SPLIT union mismatch for page " +
                  std::to_string(rec.pgno));
        }
      }
      if (owns_old) list_to_state(rec.entries_a, &pages_[old_key]);
      if (owns_new) {
        list_to_state(rec.entries_b, &pages_[{rec.tree_id, rec.new_pgno}]);
      }
      break;
    }
    case CRecordType::kRootGrow: {
      // Touches three pages (old root + two new leaves); same piecewise
      // ownership split as PAGE_SPLIT.
      PageKey root_key{rec.tree_id, rec.pgno};
      const bool owns_root = Owns(rec.tree_id, rec.pgno);
      if (owns_root && opts_.verify) {
        PageState expect = pages_[root_key];
        PageState combined;
        for (const auto& r : rec.entries_a) {
          TupleData t;
          if (DecodeTuple(r, &t).ok()) combined[t.order_no] = r;
        }
        for (const auto& r : rec.entries_b) {
          TupleData t;
          if (DecodeTuple(r, &t).ok()) combined[t.order_no] = r;
        }
        if (combined != expect) {
          Problem("offset " + std::to_string(offset) +
                  ": ROOT_GROW union mismatch for tree " +
                  std::to_string(rec.tree_id));
        }
      }
      if (owns_root) pages_.erase(root_key);  // now an internal node
      if (Owns(rec.tree_id, rec.new_pgno)) {
        list_to_state(rec.entries_a, &pages_[{rec.tree_id, rec.new_pgno}]);
      }
      if (Owns(rec.tree_id, rec.third_pgno)) {
        list_to_state(rec.entries_b, &pages_[{rec.tree_id, rec.third_pgno}]);
      }
      break;
    }
    case CRecordType::kMigrate: {
      if (!Owns(rec.tree_id, rec.pgno)) break;
      PageState& state = pages_[{rec.tree_id, rec.pgno}];
      for (const auto& r : rec.entries_a) {
        TupleData t;
        if (!DecodeTuple(r, &t).ok()) continue;
        auto it = state.find(t.order_no);
        if (it == state.end() || it->second != r) {
          Problem("offset " + std::to_string(offset) +
                  ": MIGRATE of tuple not on live page " +
                  std::to_string(rec.pgno));
          continue;
        }
        if (opts_.verify && summary_ != nullptr) {
          auto id = TupleIdentity(rec.tree_id, r, summary_->stamps);
          if (id.ok()) {
            identity_delta_.Remove(id.value());
            migrated_delta_.Add(id.value());
          }
        }
        state.erase(it);
      }
      MigrationRecord m;
      m.tree_id = rec.tree_id;
      m.live_pgno = rec.pgno;
      m.hist_name = rec.name;
      m.entries = rec.entries_a;
      m.offset = offset;
      migrations_.push_back(std::move(m));
      break;
    }
    case CRecordType::kIndexAdd: {
      if (!Owns(rec.tree_id, rec.pgno)) break;
      auto key = IndexEntrySortKey(rec.tuple);
      if (!key.ok()) {
        Problem("offset " + std::to_string(offset) +
                ": undecodable INDEX_ADD entry");
        break;
      }
      IndexState& state = index_pages_[{rec.tree_id, rec.pgno}];
      auto it = state.find(key.value());
      if (it != state.end()) {
        if (it->second != rec.tuple) {
          Problem("offset " + std::to_string(offset) +
                  ": conflicting INDEX_ADD for page " +
                  std::to_string(rec.pgno));
        }
        break;  // identical duplicate (recovery replay)
      }
      state[key.value()] = rec.tuple;
      break;
    }
    case CRecordType::kIndexRemove: {
      if (!Owns(rec.tree_id, rec.pgno)) break;
      auto key = IndexEntrySortKey(rec.tuple);
      if (!key.ok()) {
        Problem("offset " + std::to_string(offset) +
                ": undecodable INDEX_REMOVE entry");
        break;
      }
      IndexState& state = index_pages_[{rec.tree_id, rec.pgno}];
      state.erase(key.value());  // duplicates benign
      break;
    }
    case CRecordType::kReadHashIndex: {
      if (!opts_.verify_read_hashes) break;
      if (!Owns(rec.tree_id, rec.pgno)) break;
      ++read_hashes_checked_;
      const IndexState& state = index_pages_[{rec.tree_id, rec.pgno}];
      Sha256Digest expect = HashIndexState(state);
      if (rec.hash.size() != expect.size() ||
          std::memcmp(rec.hash.data(), expect.data(), expect.size()) != 0) {
        Problem("offset " + std::to_string(offset) +
                ": READ hash mismatch on index page " +
                std::to_string(rec.pgno) +
                " — a query descended through tampered index content at "
                "time " + std::to_string(rec.timestamp));
      }
      break;
    }
    case CRecordType::kReadHash: {
      if (!opts_.verify_read_hashes) break;
      if (!Owns(rec.tree_id, rec.pgno)) break;
      ++read_hashes_checked_;
      const PageState& state = pages_[{rec.tree_id, rec.pgno}];
      Sha256Digest expect = HashPageState(state);
      if (rec.hash.size() != expect.size() ||
          std::memcmp(rec.hash.data(), expect.data(), expect.size()) != 0) {
        Problem("offset " + std::to_string(offset) +
                ": READ hash mismatch on page " + std::to_string(rec.pgno) +
                " — a transaction read tampered content at time " +
                std::to_string(rec.timestamp));
      }
      break;
    }
    default:
      break;
  }
  return Status::OK();
}

}  // namespace complydb
