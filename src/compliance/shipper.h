#ifndef COMPLYDB_COMPLIANCE_SHIPPER_H_
#define COMPLYDB_COMPLIANCE_SHIPPER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "worm/worm_store.h"

namespace complydb {

/// Background drainer for the asynchronous compliance-log pipeline.
///
/// The logging thread appends encoded records to an in-memory ring (two
/// coalesced byte buffers: one for L, one for the stamp index) and keeps
/// running; a single shipper thread drains the ring FIFO into WormStore
/// appends, amortizing one fflush over every record accumulated since the
/// previous drain (group commit). Because exactly one thread drains in
/// enqueue order, the bytes that reach WORM are identical to what the
/// synchronous path would have written — only *when* they become durable
/// changes, and that is governed by the two WAL-style barriers
/// (WaitDurable) the ComplianceLogger enforces.
///
/// Durability bookkeeping is in logical L offsets: `appended_offset` is
/// the end offset of everything enqueued, `durable_offset()` the end
/// offset of everything fflushed to WORM. A barrier at offset X returns
/// once durable_offset() >= X.
///
/// Destruction joins the thread *without* draining: records still in the
/// ring are dropped, exactly as a crash would drop them. Callers that want
/// a clean shutdown (Close) issue a full WaitDurable first.
class LogShipper {
 public:
  /// `durable_offset` is the logical size of the log file at start (all of
  /// it already durable). `window_micros` is the group-commit window: with
  /// no barrier pending, the shipper waits up to this long after the first
  /// enqueue to accumulate more records before paying the fflush. Barriers
  /// preempt the window.
  LogShipper(WormStore* worm, std::string log_file, std::string index_file,
             uint64_t durable_offset, uint64_t window_micros);
  ~LogShipper();

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  /// Enqueues one encoded record destined for L. `end_offset` is the
  /// logical L size after this record (monotonically increasing; enforced
  /// by the single logging thread).
  void EnqueueLog(std::string framed, uint64_t end_offset);

  /// Enqueues one 24-byte stamp-index entry (rides the same drain as its
  /// STAMP_TRANS record, so a commit costs one flush, not two).
  void EnqueueIndex(std::string entry);

  /// Blocks until everything up to `offset` is durable on WORM (or the
  /// shipper hit a sticky I/O error, which is returned). When no drain is
  /// in flight the caller steals the drain and ships inline — a barrier
  /// costs the fflush but never a thread handoff; the shipper thread only
  /// services window-expiry background drains.
  Status WaitDurable(uint64_t offset);

  uint64_t durable_offset() const;

  /// Sticky error from a failed ship; once set, every WaitDurable returns
  /// it — compliance logging cannot continue past a WORM outage.
  Status error() const;

 private:
  void Loop();
  /// Swaps out the ring and ships it. Caller holds `lock` and has checked
  /// `!draining_`; the lock is released during the WORM I/O and re-held on
  /// return. FIFO order is preserved because `draining_` admits one
  /// drainer at a time.
  void DrainLocked(std::unique_lock<std::mutex>& lock);

  WormStore* worm_;
  const std::string log_file_;
  const std::string index_file_;
  const uint64_t window_micros_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     // signals the shipper
  std::condition_variable durable_cv_;  // signals barrier waiters
  std::string pending_log_;
  std::string pending_index_;
  uint64_t pending_records_ = 0;
  uint64_t appended_offset_;  // end offset of everything enqueued
  uint64_t durable_offset_;   // end offset of everything flushed
  uint64_t flush_target_ = 0;  // highest barrier offset requested
  uint64_t batch_seq_ = 0;     // drains so far; the span causal key
  bool draining_ = false;      // a drainer (thread or barrier) is mid-ship
  Status error_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace complydb

#endif  // COMPLYDB_COMPLIANCE_SHIPPER_H_
