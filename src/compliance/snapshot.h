#ifndef COMPLYDB_COMPLIANCE_SNAPSHOT_H_
#define COMPLYDB_COMPLIANCE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "crypto/add_hash.h"
#include "storage/page.h"
#include "wal/log_record.h"
#include "worm/worm_store.h"

namespace complydb {

/// The auditor's signed snapshot of the database state, written to WORM at
/// the end of every audit (paper §IV): "the auditor places a complete
/// snapshot of the current database state on WORM after every audit,
/// together with the auditor's digital signature".
///
/// Contents: the catalog (tree ids, roots, names), every live leaf page's
/// full record list, the running ADD_HASH of all live tuple identities,
/// and the cumulative ADD_HASH of identities migrated to WORM (so
/// identity-based completeness balances across epochs). Signed with
/// HMAC-SHA256 under the auditor's key.
struct Snapshot {
  struct TreeInfo {
    uint32_t tree_id = 0;
    PageId root = kInvalidPage;
    std::string name;
  };
  struct PageEntry {
    uint32_t tree_id = 0;
    PageId pgno = kInvalidPage;
    std::vector<std::string> records;
  };

  uint64_t epoch = 0;
  uint64_t audit_time = 0;
  std::vector<TreeInfo> trees;
  std::vector<PageEntry> pages;
  /// Internal (index) pages: record lists of index entries, so the next
  /// epoch's replay can verify index-page reads too (§V).
  std::vector<PageEntry> index_pages;
  AddHash identity_hash;
  AddHash migrated_hash;

  /// Serializes, signs, and writes to WORM as snapshot_<epoch>.
  Status WriteSigned(WormStore* worm, Slice auditor_key) const;

  /// Reads snapshot_<epoch>, verifying the signature. A bad signature is
  /// Tampered (Mala cannot forge without the auditor's key).
  static Result<Snapshot> ReadVerified(WormStore* worm, uint64_t epoch,
                                       Slice auditor_key);
};

/// Identity bytes of a stored tuple record for the completeness hash:
/// (tree_id, commit-time start, eol, key, value) — placement-independent.
/// `stamps` resolves txn-id starts; unresolvable (uncommitted) tuples
/// return NotFound and are excluded by callers.
Result<std::string> TupleIdentity(uint32_t tree_id, Slice record,
                                  const std::map<TxnId, uint64_t>& stamps);

}  // namespace complydb

#endif  // COMPLYDB_COMPLIANCE_SNAPSHOT_H_
