#include "compliance/compliance_log.h"

#include <cinttypes>
#include <cstdio>

#include "common/coding.h"

namespace complydb {

namespace {
std::string PadNum(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%08" PRIu64, n);
  return buf;
}
}  // namespace

std::string LogFileName(uint64_t epoch) { return "L_" + PadNum(epoch); }
std::string StampIndexFileName(uint64_t epoch) {
  return "Lidx_" + PadNum(epoch);
}
std::string SnapshotFileName(uint64_t epoch) {
  return "snapshot_" + PadNum(epoch);
}
std::string WitnessFileName(uint64_t epoch, uint64_t seq) {
  return "witness_" + PadNum(epoch) + "_" + PadNum(seq);
}
std::string TxTailFileName(uint64_t epoch, uint64_t seq) {
  return "txtail_" + PadNum(epoch) + "_" + PadNum(seq);
}
std::string HistPageFileName(uint32_t tree_id, uint64_t seq) {
  return "hist_" + PadNum(tree_id) + "_" + PadNum(seq);
}

Status ComplianceLog::Create() {
  CDB_RETURN_IF_ERROR(worm_->Create(LogFileName(epoch_), 0));
  CDB_RETURN_IF_ERROR(worm_->Create(StampIndexFileName(epoch_), 0));
  size_ = 0;
  record_count_ = 0;
  return Status::OK();
}

Status ComplianceLog::OpenExisting() {
  auto info = worm_->GetInfo(LogFileName(epoch_));
  if (!info.ok()) return info.status();
  size_ = info.value().size;
  // Count records (cheap single pass; also validates framing).
  record_count_ = 0;
  return Scan([&](const CRecord&, uint64_t) {
    ++record_count_;
    return Status::OK();
  });
}

Status ComplianceLog::AppendUnflushed(const CRecord& rec) {
  std::string framed = rec.Encode();
  uint64_t offset = size_;
  CDB_RETURN_IF_ERROR(worm_->AppendUnflushed(LogFileName(epoch_), framed));
  size_ += framed.size();
  ++record_count_;
  if (rec.type == CRecordType::kStampTrans) {
    std::string entry;
    PutFixed64(&entry, rec.txn_id);
    PutFixed64(&entry, offset);
    PutFixed64(&entry, rec.commit_time);
    CDB_RETURN_IF_ERROR(
        worm_->AppendUnflushed(StampIndexFileName(epoch_), entry));
  }
  return Status::OK();
}

Status ComplianceLog::Flush() {
  CDB_RETURN_IF_ERROR(worm_->FlushAppends(LogFileName(epoch_)));
  return worm_->FlushAppends(StampIndexFileName(epoch_));
}

Status ComplianceLog::Append(const CRecord& rec) {
  CDB_RETURN_IF_ERROR(AppendUnflushed(rec));
  return Flush();
}

Status ComplianceLog::Scan(
    const std::function<Status(const CRecord&, uint64_t)>& fn) const {
  std::string blob;
  CDB_RETURN_IF_ERROR(worm_->ReadAll(LogFileName(epoch_), &blob));
  return ScanCRecords(blob, fn);
}

Status ComplianceLog::ScanStampIndex(
    const std::function<Status(TxnId, uint64_t, uint64_t)>& fn) const {
  std::string blob;
  CDB_RETURN_IF_ERROR(worm_->ReadAll(StampIndexFileName(epoch_), &blob));
  if (blob.size() % 24 != 0) {
    return Status::Corruption("stamp index size not a multiple of 24");
  }
  for (size_t off = 0; off < blob.size(); off += 24) {
    TxnId txn = DecodeFixed64(blob.data() + off);
    uint64_t l_off = DecodeFixed64(blob.data() + off + 8);
    uint64_t commit = DecodeFixed64(blob.data() + off + 16);
    CDB_RETURN_IF_ERROR(fn(txn, l_off, commit));
  }
  return Status::OK();
}

}  // namespace complydb
