#include "compliance/compliance_log.h"

#include <cinttypes>
#include <cstdio>

#include "common/coding.h"
#include "obs/span.h"

namespace complydb {

namespace {
std::string PadNum(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%08" PRIu64, n);
  return buf;
}

std::string StampIndexEntry(TxnId txn_id, uint64_t offset,
                            uint64_t commit_time) {
  std::string entry;
  PutFixed64(&entry, txn_id);
  PutFixed64(&entry, offset);
  PutFixed64(&entry, commit_time);
  return entry;
}
}  // namespace

std::string LogFileName(uint64_t epoch) { return "L_" + PadNum(epoch); }
std::string StampIndexFileName(uint64_t epoch) {
  return "Lidx_" + PadNum(epoch);
}
std::string SnapshotFileName(uint64_t epoch) {
  return "snapshot_" + PadNum(epoch);
}
std::string WitnessFileName(uint64_t epoch, uint64_t seq) {
  return "witness_" + PadNum(epoch) + "_" + PadNum(seq);
}
std::string TxTailFileName(uint64_t epoch, uint64_t seq) {
  return "txtail_" + PadNum(epoch) + "_" + PadNum(seq);
}
std::string HistPageFileName(uint32_t tree_id, uint64_t seq) {
  return "hist_" + PadNum(tree_id) + "_" + PadNum(seq);
}

ComplianceLog::~ComplianceLog() = default;

void ComplianceLog::StartShipper() {
  if (!opts_.async) return;
  shipper_ = std::make_unique<LogShipper>(
      worm_, LogFileName(epoch_), StampIndexFileName(epoch_), size_,
      opts_.group_commit_window_micros);
}

Status ComplianceLog::Create() {
  CDB_RETURN_IF_ERROR(worm_->Create(LogFileName(epoch_), 0));
  CDB_RETURN_IF_ERROR(worm_->Create(StampIndexFileName(epoch_), 0));
  size_ = 0;
  record_count_ = 0;
  durable_offset_ = 0;
  StartShipper();
  return Status::OK();
}

Status ComplianceLog::OpenExisting() {
  auto info = worm_->GetInfo(LogFileName(epoch_));
  if (!info.ok()) return info.status();
  size_ = info.value().size;
  durable_offset_ = size_;
  if (opts_.repair_stamp_index) {
    CDB_RETURN_IF_ERROR(RepairStampIndex());
  }
  StartShipper();
  // Count records (cheap single pass; also validates framing).
  record_count_ = 0;
  return Scan([&](const CRecord&, uint64_t) {
    ++record_count_;
    return Status::OK();
  });
}

// The stamp index is a derived structure: every entry is computable from
// L alone. Its bytes ride the log's drain unflushed (lazy durability), so
// a crash can leave it short of L. Reappend the missing suffix here; the
// entries are reconstructed byte-for-byte, so a later audit sees the same
// index a crash-free run would have produced.
Status ComplianceLog::RepairStampIndex() {
  const std::string idx_name = StampIndexFileName(epoch_);
  if (!worm_->Exists(idx_name)) {
    // Lost in the Create window (L created, index not yet); recreate.
    CDB_RETURN_IF_ERROR(worm_->Create(idx_name, 0));
  }
  std::string idx_blob;
  CDB_RETURN_IF_ERROR(worm_->ReadAll(idx_name, &idx_blob));
  if (idx_blob.size() % 24 != 0) {
    // Torn trailing entry would need truncation, which WORM forbids; the
    // auditor reports it. Do not mask by appending after garbage.
    return Status::OK();
  }
  uint64_t have = idx_blob.size() / 24;
  std::string log_blob;
  CDB_RETURN_IF_ERROR(worm_->ReadAll(LogFileName(epoch_), &log_blob));
  uint64_t seen = 0;
  std::string missing;
  CDB_RETURN_IF_ERROR(
      ScanCRecords(log_blob, [&](const CRecord& rec, uint64_t offset) {
        if (rec.type == CRecordType::kStampTrans && ++seen > have) {
          missing += StampIndexEntry(rec.txn_id, offset, rec.commit_time);
        }
        return Status::OK();
      }));
  if (missing.empty()) return Status::OK();
  return worm_->Append(idx_name, missing);
}

Status ComplianceLog::AppendUnflushed(const CRecord& rec) {
  std::string framed = rec.Encode();
  uint64_t offset = size_;
  if (shipper_ != nullptr) {
    CDB_RETURN_IF_ERROR(shipper_->error());
    size_ += framed.size();
    ++record_count_;
    if (rec.type == CRecordType::kStampTrans) {
      shipper_->EnqueueIndex(
          StampIndexEntry(rec.txn_id, offset, rec.commit_time));
    }
    shipper_->EnqueueLog(std::move(framed), size_);
    return Status::OK();
  }
  CDB_RETURN_IF_ERROR(worm_->AppendUnflushed(LogFileName(epoch_), framed));
  size_ += framed.size();
  ++record_count_;
  if (rec.type == CRecordType::kStampTrans) {
    CDB_RETURN_IF_ERROR(worm_->AppendUnflushed(
        StampIndexFileName(epoch_),
        StampIndexEntry(rec.txn_id, offset, rec.commit_time)));
  }
  return Status::OK();
}

Status ComplianceLog::Flush() { return FlushThrough(size_); }

Status ComplianceLog::FlushThrough(uint64_t offset) {
  if (shipper_ != nullptr) return shipper_->WaitDurable(offset);
  if (offset <= durable_offset_) return Status::OK();
  // The stamp index is deliberately *not* flushed here: its entries are
  // derivable from L (RepairStampIndex), so a commit costs one WORM
  // fflush. Readers see the buffered bytes because WormStore::ReadAll
  // drains the append handle first.
  //
  // With synchronous shipping this fflush *is* the commit's WORM round
  // trip; attribute it to the committing thread's worm_flush segment (the
  // appends themselves stay in foreground — there is no drain to steal).
  const bool spans =
      obs::SpansEnabled() && obs::ActiveCommitSegments()->active;
  const uint64_t flush_start = spans ? obs::MonotonicMicros() : 0;
  CDB_RETURN_IF_ERROR(worm_->FlushAppends(LogFileName(epoch_)));
  if (spans) {
    obs::RecordWormFlushInterval(flush_start, obs::MonotonicMicros(),
                                 /*batch_id=*/0);
  }
  durable_offset_ = size_;
  return Status::OK();
}

uint64_t ComplianceLog::durable_offset() const {
  if (shipper_ != nullptr) return shipper_->durable_offset();
  return durable_offset_;
}

Status ComplianceLog::Append(const CRecord& rec) {
  CDB_RETURN_IF_ERROR(AppendUnflushed(rec));
  return Flush();
}

Status ComplianceLog::SyncForRead() const {
  if (shipper_ != nullptr) return shipper_->WaitDurable(size_);
  return Status::OK();
}

Status ComplianceLog::Scan(
    const std::function<Status(const CRecord&, uint64_t)>& fn) const {
  CDB_RETURN_IF_ERROR(SyncForRead());
  std::string blob;
  CDB_RETURN_IF_ERROR(worm_->ReadAll(LogFileName(epoch_), &blob));
  return ScanCRecords(blob, fn);
}

Status ComplianceLog::ScanStampIndex(
    const std::function<Status(TxnId, uint64_t, uint64_t)>& fn) const {
  CDB_RETURN_IF_ERROR(SyncForRead());
  std::string blob;
  CDB_RETURN_IF_ERROR(worm_->ReadAll(StampIndexFileName(epoch_), &blob));
  if (blob.size() % 24 != 0) {
    return Status::Corruption("stamp index size not a multiple of 24");
  }
  for (size_t off = 0; off < blob.size(); off += 24) {
    TxnId txn = DecodeFixed64(blob.data() + off);
    uint64_t l_off = DecodeFixed64(blob.data() + off + 8);
    uint64_t commit = DecodeFixed64(blob.data() + off + 16);
    CDB_RETURN_IF_ERROR(fn(txn, l_off, commit));
  }
  return Status::OK();
}

}  // namespace complydb
