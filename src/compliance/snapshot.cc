#include "compliance/snapshot.h"

#include "btree/tuple.h"
#include "common/coding.h"
#include "compliance/compliance_log.h"
#include "crypto/hmac.h"

namespace complydb {

namespace {
constexpr uint32_t kSnapshotMagic = 0x5C0DB5A9u;
}

Status Snapshot::WriteSigned(WormStore* worm, Slice auditor_key) const {
  std::string body;
  PutFixed32(&body, kSnapshotMagic);
  PutFixed64(&body, epoch);
  PutFixed64(&body, audit_time);

  PutFixed32(&body, static_cast<uint32_t>(trees.size()));
  for (const auto& t : trees) {
    PutFixed32(&body, t.tree_id);
    PutFixed32(&body, t.root);
    PutLengthPrefixed(&body, t.name);
  }

  PutFixed32(&body, static_cast<uint32_t>(pages.size()));
  for (const auto& p : pages) {
    PutFixed32(&body, p.tree_id);
    PutFixed32(&body, p.pgno);
    PutFixed32(&body, static_cast<uint32_t>(p.records.size()));
    for (const auto& r : p.records) PutLengthPrefixed(&body, r);
  }
  PutFixed32(&body, static_cast<uint32_t>(index_pages.size()));
  for (const auto& p : index_pages) {
    PutFixed32(&body, p.tree_id);
    PutFixed32(&body, p.pgno);
    PutFixed32(&body, static_cast<uint32_t>(p.records.size()));
    for (const auto& r : p.records) PutLengthPrefixed(&body, r);
  }

  body += identity_hash.Serialize();
  body += migrated_hash.Serialize();

  Sha256Digest sig = HmacSha256(auditor_key, body);
  body.append(reinterpret_cast<const char*>(sig.data()), sig.size());

  return worm->CreateWithContent(SnapshotFileName(epoch), 0, body);
}

Result<Snapshot> Snapshot::ReadVerified(WormStore* worm, uint64_t epoch,
                                        Slice auditor_key) {
  std::string body;
  CDB_RETURN_IF_ERROR(worm->ReadAll(SnapshotFileName(epoch), &body));
  if (body.size() < 32) return Status::Corruption("snapshot too short");

  Slice content(body.data(), body.size() - 32);
  Sha256Digest expect = HmacSha256(auditor_key, content);
  Sha256Digest stored;
  std::memcpy(stored.data(), body.data() + body.size() - 32, 32);
  if (!DigestEqual(expect, stored)) {
    return Status::Tampered("snapshot signature verification failed");
  }

  Snapshot snap;
  Decoder dec(content);
  uint32_t magic = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&magic));
  if (magic != kSnapshotMagic) return Status::Corruption("snapshot magic");
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&snap.epoch));
  CDB_RETURN_IF_ERROR(dec.GetFixed64(&snap.audit_time));
  if (snap.epoch != epoch) return Status::Corruption("snapshot epoch mismatch");

  uint32_t tree_count = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&tree_count));
  for (uint32_t i = 0; i < tree_count; ++i) {
    TreeInfo t;
    CDB_RETURN_IF_ERROR(dec.GetFixed32(&t.tree_id));
    CDB_RETURN_IF_ERROR(dec.GetFixed32(&t.root));
    CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&t.name));
    snap.trees.push_back(std::move(t));
  }

  uint32_t page_count = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&page_count));
  for (uint32_t i = 0; i < page_count; ++i) {
    PageEntry p;
    CDB_RETURN_IF_ERROR(dec.GetFixed32(&p.tree_id));
    CDB_RETURN_IF_ERROR(dec.GetFixed32(&p.pgno));
    uint32_t record_count = 0;
    CDB_RETURN_IF_ERROR(dec.GetFixed32(&record_count));
    p.records.reserve(record_count);
    for (uint32_t j = 0; j < record_count; ++j) {
      std::string r;
      CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&r));
      p.records.push_back(std::move(r));
    }
    snap.pages.push_back(std::move(p));
  }
  uint32_t index_page_count = 0;
  CDB_RETURN_IF_ERROR(dec.GetFixed32(&index_page_count));
  for (uint32_t i = 0; i < index_page_count; ++i) {
    PageEntry p;
    CDB_RETURN_IF_ERROR(dec.GetFixed32(&p.tree_id));
    CDB_RETURN_IF_ERROR(dec.GetFixed32(&p.pgno));
    uint32_t record_count = 0;
    CDB_RETURN_IF_ERROR(dec.GetFixed32(&record_count));
    p.records.reserve(record_count);
    for (uint32_t j = 0; j < record_count; ++j) {
      std::string r;
      CDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&r));
      p.records.push_back(std::move(r));
    }
    snap.index_pages.push_back(std::move(p));
  }

  std::string hash_bytes;
  CDB_RETURN_IF_ERROR(dec.GetBytes(64, &hash_bytes));
  auto ih = AddHash::Deserialize(hash_bytes);
  if (!ih.ok()) return ih.status();
  snap.identity_hash = ih.value();
  CDB_RETURN_IF_ERROR(dec.GetBytes(64, &hash_bytes));
  auto mh = AddHash::Deserialize(hash_bytes);
  if (!mh.ok()) return mh.status();
  snap.migrated_hash = mh.value();
  return snap;
}

Result<std::string> TupleIdentity(uint32_t tree_id, Slice record,
                                  const std::map<TxnId, uint64_t>& stamps) {
  TupleData t;
  CDB_RETURN_IF_ERROR(DecodeTuple(record, &t));
  uint64_t commit = t.start;
  if (!t.stamped) {
    auto it = stamps.find(t.start);
    if (it == stamps.end()) {
      return Status::NotFound("tuple's transaction is not committed");
    }
    commit = it->second;
  }
  return t.IdentityBytes(tree_id, commit);
}

}  // namespace complydb
