#include "obs/span.h"

#include <cstdio>
#include <string>

namespace complydb {
namespace obs {

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// The four histograms a closing commit span feeds. Resolved once; the
// family is documented in docs/OBSERVABILITY.md.
struct CriticalPathMetrics {
  Histogram* foreground_us;
  Histogram* queued_us;
  Histogram* drain_us;
  Histogram* worm_us;
  CriticalPathMetrics() {
    auto& reg = MetricsRegistry::Global();
    foreground_us = reg.GetHistogram("db.commit_critical_path.foreground_us");
    queued_us = reg.GetHistogram("db.commit_critical_path.queued_us");
    drain_us = reg.GetHistogram("db.commit_critical_path.drain_us");
    worm_us = reg.GetHistogram("db.commit_critical_path.worm_us");
  }
};
CriticalPathMetrics& Cp() {
  static CriticalPathMetrics m;
  return m;
}
}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCommit: return "commit";
    case SpanKind::kCommitForeground: return "commit.foreground";
    case SpanKind::kCommitQueued: return "commit.queued";
    case SpanKind::kCommitDrain: return "commit.drain";
    case SpanKind::kCommitWormFlush: return "commit.worm_flush";
    case SpanKind::kCommitTicket: return "commit.ticket";
    case SpanKind::kCommitSequence: return "commit.sequence";
    case SpanKind::kEpochFlush: return "epoch.flush";
    case SpanKind::kEpochWait: return "epoch.wait";
    case SpanKind::kWalFsync: return "wal.fsync";
    case SpanKind::kShipperDrain: return "shipper.drain";
    case SpanKind::kShipperWormFlush: return "shipper.worm_flush";
    case SpanKind::kAuditPhase: return "audit.phase";
    case SpanKind::kTsbMigrate: return "tsb.migrate";
    case SpanKind::kEpochSeal: return "audit.epoch.seal";
    case SpanKind::kAuditIncremental: return "audit.incremental";
    case SpanKind::kSchedulerAdmit: return "txn.scheduler.admit";
    case SpanKind::kSpanKindCount: break;
  }
  return "?";
}

uint32_t ThreadTraceId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

// All-atomic slots, same reasoning as TraceRing::Slot: concurrent
// Emit/Snapshot are data-race-free, torn slots are filtered by seq.
struct SpanRing::Slot {
  std::atomic<uint64_t> seq{~0ull};
  std::atomic<uint64_t> causal{0};
  std::atomic<uint64_t> start_us{0};
  std::atomic<uint64_t> end_us{0};
  std::atomic<uint64_t> arg{0};
  std::atomic<uint8_t> kind{0};
  std::atomic<uint32_t> tid{0};
};

SpanRing::SpanRing(size_t capacity)
    : capacity_(RoundUpPow2(capacity == 0 ? 1 : capacity)),
      slots_(new Slot[capacity_]) {}

SpanRing::~SpanRing() { delete[] slots_; }

SpanRing& SpanRing::Global() {
  static SpanRing* ring = new SpanRing(16384);
  return *ring;
}

void SpanRing::Emit(SpanKind kind, uint64_t causal, uint64_t start_us,
                    uint64_t end_us, uint64_t arg) {
#if !defined(COMPLYDB_DISABLE_METRICS)
  if (!enabled()) return;
  uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & (capacity_ - 1)];
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.causal.store(causal, std::memory_order_relaxed);
  slot.start_us.store(start_us, std::memory_order_relaxed);
  slot.end_us.store(end_us, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  slot.tid.store(ThreadTraceId(), std::memory_order_relaxed);
#else
  (void)kind;
  (void)causal;
  (void)start_us;
  (void)end_us;
  (void)arg;
#endif
}

std::vector<Span> SpanRing::Snapshot() const {
  uint64_t end = next_.load(std::memory_order_relaxed);
  uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  std::vector<Span> out;
  out.reserve(end - begin);
  for (uint64_t seq = begin; seq < end; ++seq) {
    const Slot& slot = slots_[seq & (capacity_ - 1)];
    Span s;
    s.seq = slot.seq.load(std::memory_order_relaxed);
    if (s.seq != seq) continue;  // overwritten or mid-write
    s.causal = slot.causal.load(std::memory_order_relaxed);
    s.start_us = slot.start_us.load(std::memory_order_relaxed);
    s.end_us = slot.end_us.load(std::memory_order_relaxed);
    s.arg = slot.arg.load(std::memory_order_relaxed);
    s.kind = static_cast<SpanKind>(slot.kind.load(std::memory_order_relaxed));
    s.tid = slot.tid.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

CommitSegments* ActiveCommitSegments() {
  thread_local CommitSegments segments;
  return &segments;
}

void RecordQueuedInterval(uint64_t start_us, uint64_t end_us) {
  CommitSegments* seg = ActiveCommitSegments();
  if (!seg->active) return;  // only a commit ever waits on the barrier
  seg->queued_us += end_us - start_us;
  SpanRing::Global().Emit(SpanKind::kCommitQueued, seg->txn_id, start_us,
                          end_us);
}

void RecordDrainInterval(uint64_t start_us, uint64_t end_us, uint64_t bytes,
                         uint64_t batch_id) {
  CommitSegments* seg = ActiveCommitSegments();
  if (seg->active) {
    seg->drain_us += end_us - start_us;
    SpanRing::Global().Emit(SpanKind::kCommitDrain, seg->txn_id, start_us,
                            end_us, bytes);
  } else {
    SpanRing::Global().Emit(SpanKind::kShipperDrain, batch_id, start_us,
                            end_us, bytes);
  }
}

void RecordWormFlushInterval(uint64_t start_us, uint64_t end_us,
                             uint64_t batch_id) {
  CommitSegments* seg = ActiveCommitSegments();
  if (seg->active) {
    seg->worm_us += end_us - start_us;
    SpanRing::Global().Emit(SpanKind::kCommitWormFlush, seg->txn_id,
                            start_us, end_us);
  } else {
    SpanRing::Global().Emit(SpanKind::kShipperWormFlush, batch_id, start_us,
                            end_us);
  }
}

ScopedCommitSpan::ScopedCommitSpan(uint64_t txn_id) {
  if (!SpansEnabled()) return;
  CommitSegments* seg = ActiveCommitSegments();
  if (seg->active) return;  // nested commit cannot happen; be safe anyway
  seg->txn_id = txn_id;
  seg->queued_us = 0;
  seg->drain_us = 0;
  seg->worm_us = 0;
  seg->active = true;
  active_ = true;
  start_us_ = MonotonicMicros();
}

ScopedCommitSpan::~ScopedCommitSpan() {
  if (!active_) return;
  uint64_t end = MonotonicMicros();
  CommitSegments* seg = ActiveCommitSegments();
  seg->active = false;
  uint64_t total = end - start_us_;
  uint64_t accounted = seg->queued_us + seg->drain_us + seg->worm_us;
  // Clock granularity can leave accounted a hair past total; the residual
  // clamps to zero rather than wrapping.
  uint64_t foreground = total > accounted ? total - accounted : 0;
  auto& ring = SpanRing::Global();
  ring.Emit(SpanKind::kCommit, seg->txn_id, start_us_, end, arg_);
  // The residual is anchored at the span start; its *duration* is the
  // deliverable (the segment intervals above carry the real timestamps).
  ring.Emit(SpanKind::kCommitForeground, seg->txn_id, start_us_,
            start_us_ + foreground);
  Cp().foreground_us->Record(foreground);
  Cp().queued_us->Record(seg->queued_us);
  Cp().drain_us->Record(seg->drain_us);
  Cp().worm_us->Record(seg->worm_us);
}

std::string FormatSpan(const Span& span) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "#%llu [%llu..%llu] %-19s causal=%llu dur=%lluus arg=%llu "
                "tid=%u",
                static_cast<unsigned long long>(span.seq),
                static_cast<unsigned long long>(span.start_us),
                static_cast<unsigned long long>(span.end_us),
                SpanKindName(span.kind),
                static_cast<unsigned long long>(span.causal),
                static_cast<unsigned long long>(span.end_us - span.start_us),
                static_cast<unsigned long long>(span.arg),
                span.tid);
  return buf;
}

}  // namespace obs
}  // namespace complydb
