#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>

namespace complydb {
namespace obs {

namespace {
std::atomic<bool> g_sampling{true};

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string PromMetricName(const std::string& name) {
  std::string out = "complydb_";
  for (char c : name) {
    out.push_back((c == '.' || c == '-') ? '_' : c);
  }
  return out;
}

std::string PromEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

bool SamplingEnabled() {
  return g_sampling.load(std::memory_order_relaxed);
}

void SetSampling(bool enabled) {
  g_sampling.store(enabled, std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  uint64_t buckets[kBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    buckets[i] = BucketCount(i);
    total += buckets[i];
  }
  if (total == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target sample, 1-based; ceil so that q=0.5 of 2 samples
  // picks the first.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] >= rank) {
      double lower = static_cast<double>(BucketLower(i));
      double upper = static_cast<double>(BucketUpper(i));
      double within =
          static_cast<double>(rank - cumulative) / static_cast<double>(buckets[i]);
      return lower + (upper - lower) * within;
    }
    cumulative += buckets[i];
  }
  return static_cast<double>(MaxMicros());
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
  max_us_.store(0, std::memory_order_relaxed);
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // Deques give stable addresses; the maps index them by name.
  std::deque<Counter> counter_pool;
  std::deque<Gauge> gauge_pool;
  std::deque<Histogram> histogram_pool;
  std::map<std::string, Counter*> counters;
  std::map<std::string, Gauge*> gauges;
  std::map<std::string, Histogram*> histograms;
};

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {}

MetricsRegistry::~MetricsRegistry() { delete impl_; }

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counters.find(name);
  if (it != impl_->counters.end()) return it->second;
  impl_->counter_pool.emplace_back();
  Counter* c = &impl_->counter_pool.back();
  impl_->counters[name] = c;
  return c;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauges.find(name);
  if (it != impl_->gauges.end()) return it->second;
  impl_->gauge_pool.emplace_back();
  Gauge* g = &impl_->gauge_pool.back();
  impl_->gauges[name] = g;
  return g;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->histograms.find(name);
  if (it != impl_->histograms.end()) return it->second;
  impl_->histogram_pool.emplace_back();
  Histogram* h = &impl_->histogram_pool.back();
  impl_->histograms[name] = h;
  return h;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->Reset();
  for (auto& [name, g] : impl_->gauges) g->Reset();
  for (auto& [name, h] : impl_->histograms) h->Reset();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Snapshot snap;
  snap.counters.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, g] : impl_->gauges) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->Count();
    hs.sum_us = h->SumMicros();
    hs.max_us = h->MaxMicros();
    hs.p50 = h->Quantile(0.50);
    hs.p95 = h->Quantile(0.95);
    hs.p99 = h->Quantile(0.99);
    hs.buckets.resize(Histogram::kBuckets);
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      hs.buckets[i] = h->BucketCount(i);
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

std::string MetricsRegistry::ToJson() const {
  Snapshot snap = TakeSnapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(v);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(v);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& h : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + h.name + "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum_us\": " + std::to_string(h.sum_us) +
           ", \"max_us\": " + std::to_string(h.max_us) +
           ", \"p50_us\": " + FormatDouble(h.p50) +
           ", \"p95_us\": " + FormatDouble(h.p95) +
           ", \"p99_us\": " + FormatDouble(h.p99) + ", \"buckets\": [";
    // Trailing zero buckets are elided; bucket i covers [2^(i-1), 2^i).
    int last = Histogram::kBuckets - 1;
    while (last > 0 && h.buckets[last] == 0) --last;
    for (int i = 0; i <= last; ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::ToPrometheusText() const {
  Snapshot snap = TakeSnapshot();
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    std::string p = PromMetricName(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    std::string p = PromMetricName(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(v) + "\n";
  }
  for (const auto& h : snap.histograms) {
    std::string p = PromMetricName(h.name);
    out += "# TYPE " + p + " histogram\n";
    uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      cumulative += h.buckets[i];
      out += p + "_bucket{le=\"" +
             std::to_string(Histogram::BucketUpper(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += p + "_sum " + std::to_string(h.sum_us) + "\n";
    out += p + "_count " + std::to_string(h.count) + "\n";
    // Quantile estimates live in their own gauge family: a histogram
    // family may only carry _bucket/_sum/_count samples, and a strict
    // parser (tests/prom_parser.h) rejects anything else.
    out += "# TYPE " + p + "_quantile gauge\n";
    out += p + "_quantile{quantile=\"0.5\"} " + FormatDouble(h.p50) + "\n";
    out += p + "_quantile{quantile=\"0.95\"} " + FormatDouble(h.p95) + "\n";
    out += p + "_quantile{quantile=\"0.99\"} " + FormatDouble(h.p99) + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace complydb
