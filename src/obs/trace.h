#ifndef COMPLYDB_OBS_TRACE_H_
#define COMPLYDB_OBS_TRACE_H_

// Bounded in-memory ring of structured trace events covering the
// compliance pipeline: transaction lifecycle, WAL fsyncs, compliance-log
// appends, regret ticks, dirty-page forcing, audit phases, TSB
// migrations, and shredding. The ring is lock-free (one atomic fetch_add
// per event) and wraps: the newest events win, `dropped()` counts how
// many were overwritten.
//
// Timestamps come from the database's Clock seam when one is attached
// (SetClock), so events line up with commit times and regret intervals in
// simulated-clock runs; otherwise they fall back to monotonic wall
// microseconds.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

namespace complydb {
namespace obs {

enum class TraceEventType : uint8_t {
  kTxnBegin = 0,     // a = txn id
  kTxnCommit,        // a = txn id, b = commit time (micros)
  kTxnAbort,         // a = txn id
  kWalFsync,         // a = bytes flushed, b = durable lsn
  kComplianceAppend, // a = record count appended, b = log bytes
  kRegretTick,       // a = pages forced this tick
  kPageForce,        // a = page id
  kAuditPhase,       // a = phase (AuditPhase), b = elapsed micros
  kTsbMigrate,       // a = tree id, b = live page id
  kVacuumShred,      // a = tree id, b = tuples shredded
  kWormAppend,       // a = bytes, b = total WORM file count
  kEventTypeCount,
};

/// Audit phases carried in kAuditPhase events (matches AuditTimings).
enum class AuditPhase : uint8_t {
  kSnapshot = 0,
  kSummarize,
  kReplay,
  kFinalState,
  kIndexCheck,
  kTotal,
};

const char* TraceEventTypeName(TraceEventType type);
const char* AuditPhaseName(AuditPhase phase);

struct TraceEvent {
  uint64_t seq = 0;  // global emission order
  uint64_t ts_micros = 0;
  TraceEventType type = TraceEventType::kTxnBegin;
  uint64_t a = 0;
  uint64_t b = 0;
};

class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two.
  explicit TraceRing(size_t capacity = 4096);
  ~TraceRing();

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// The process-wide ring the subsystems emit into.
  static TraceRing& Global();

  /// Emits one event, stamped from the attached Clock (or monotonic wall
  /// time). Lock-free; concurrent emits may leave a slot torn across
  /// fields, which Snapshot tolerates (events are diagnostics, not an
  /// audit trail — the compliance log is the authoritative record).
  void Emit(TraceEventType type, uint64_t a = 0, uint64_t b = 0);

  /// Attaches / detaches the timestamp source. ClearClock only detaches
  /// if `clock` is still the attached one (several DBs may race at open).
  void SetClock(Clock* clock);
  void ClearClock(Clock* clock);

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  size_t capacity() const { return capacity_; }
  /// Total events ever emitted.
  uint64_t total() const { return next_.load(std::memory_order_relaxed); }
  /// Events overwritten by wraparound.
  uint64_t dropped() const {
    uint64_t n = total();
    return n > capacity_ ? n - capacity_ : 0;
  }

  /// Copies the retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Forgets all events (bench warm-up).
  void Reset() { next_.store(0, std::memory_order_relaxed); }

 private:
  struct Slot;

  size_t capacity_;  // power of two
  Slot* slots_;
  std::atomic<uint64_t> next_{0};
  std::atomic<bool> enabled_{true};
  std::atomic<Clock*> clock_{nullptr};
};

/// One-line rendering for the shell / debugging.
std::string FormatTraceEvent(const TraceEvent& event);

}  // namespace obs
}  // namespace complydb

#endif  // COMPLYDB_OBS_TRACE_H_
