#include "obs/trace_export.h"

#include <cstdio>

namespace complydb {
namespace obs {

namespace {
constexpr int kSpanPid = 1;   // span tracks (monotonic timebase)
constexpr int kEventPid = 2;  // instant events (db-clock timebase)

void AppendU64(std::string* out, uint64_t v) { *out += std::to_string(v); }

void AppendMeta(std::string* out, int pid, const char* name) {
  *out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
  AppendU64(out, static_cast<uint64_t>(pid));
  *out += ",\"tid\":0,\"args\":{\"name\":\"";
  *out += name;
  *out += "\"}}";
}

void AppendSpan(std::string* out, const Span& s) {
  *out += "{\"name\":\"";
  *out += SpanKindName(s.kind);
  if (s.kind == SpanKind::kAuditPhase) {
    *out += ".";
    *out += AuditPhaseName(static_cast<AuditPhase>(s.arg));
  }
  *out += "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":";
  AppendU64(out, s.start_us);
  *out += ",\"dur\":";
  AppendU64(out, s.end_us >= s.start_us ? s.end_us - s.start_us : 0);
  *out += ",\"pid\":";
  AppendU64(out, kSpanPid);
  *out += ",\"tid\":";
  AppendU64(out, s.tid);
  *out += ",\"args\":{\"causal\":";
  AppendU64(out, s.causal);
  *out += ",\"arg\":";
  AppendU64(out, s.arg);
  *out += ",\"seq\":";
  AppendU64(out, s.seq);
  *out += "}}";
}

void AppendEvent(std::string* out, const TraceEvent& e) {
  *out += "{\"name\":\"";
  *out += TraceEventTypeName(e.type);
  *out += "\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"p\",\"ts\":";
  AppendU64(out, e.ts_micros);
  *out += ",\"pid\":";
  AppendU64(out, kEventPid);
  *out += ",\"tid\":0,\"args\":{\"a\":";
  AppendU64(out, e.a);
  *out += ",\"b\":";
  AppendU64(out, e.b);
  *out += ",\"seq\":";
  AppendU64(out, e.seq);
  *out += "}}";
}
}  // namespace

std::string ChromeTraceJson(const std::vector<Span>& spans,
                            const std::vector<TraceEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",";
    first = false;
  };
  sep();
  AppendMeta(&out, kSpanPid, "complydb spans (monotonic us)");
  if (!events.empty()) {
    sep();
    AppendMeta(&out, kEventPid, "complydb trace events (db clock us)");
  }
  for (const Span& s : spans) {
    sep();
    AppendSpan(&out, s);
  }
  for (const TraceEvent& e : events) {
    sep();
    AppendEvent(&out, e);
  }
  out += "]}\n";
  return out;
}

std::string ChromeTraceJson() {
  return ChromeTraceJson(SpanRing::Global().Snapshot(),
                         TraceRing::Global().Snapshot());
}

Status WriteChromeTraceFile(const std::string& path) {
  std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("trace json open " + path);
  size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size()) return Status::IOError("trace json write " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace complydb
