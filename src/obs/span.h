#ifndef COMPLYDB_OBS_SPAN_H_
#define COMPLYDB_OBS_SPAN_H_

// Span tracing for the compliance pipeline, layered on the same lock-free
// ring design as TraceRing. Where trace events are instants, spans are
// closed intervals [start_us, end_us) carrying a *causal key* — the txn
// id for commit-path work, the shipper batch id for background drains,
// the epoch for audit phases — so a slow commit can be decomposed after
// the fact into where the time actually went:
//
//   commit (txn)            — the whole client-visible CompliantDB::Commit
//     commit.foreground     — engine work on the calling thread (residual)
//     commit.queued         — blocked on the shipper durability barrier
//     commit.drain          — WORM appends of an inline-stolen drain
//     commit.worm_flush     — the fflush / simulated filer round trip
//
// The four segment durations are also recorded into the
// `db.commit_critical_path.{foreground,queued,drain,worm}_us` histogram
// family when a commit span closes, and always sum exactly to the commit
// span's duration (foreground is the residual).
//
// Propagation is by thread-local CommitSegments: CompliantDB::Commit
// activates the slot (ScopedCommitSpan); the WAL, shipper, and WORM
// layers attribute their intervals to it when active. A drain performed
// by the background shipper thread has no active slot and is emitted as
// `shipper.drain` / `shipper.worm_flush` spans keyed by batch id instead
// (the committing thread's wait shows up as commit.queued).
//
// Span timestamps are MonotonicMicros (latencies are about the hardware,
// not the simulated workload clock), so they share a timebase with the
// latency histograms but *not* with TraceRing events in simulated-clock
// runs — the Chrome exporter keeps the two on separate process tracks.
//
// Everything here compiles out under COMPLYDB_DISABLE_METRICS: Emit and
// the RAII helpers become empty, and SpansEnabled() is constant-false so
// call sites skip their clock reads.

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace complydb {
namespace obs {

enum class SpanKind : uint8_t {
  kCommit = 0,        // causal = txn id, arg = commit time (micros)
  kCommitForeground,  // causal = txn id; residual (see file comment)
  kCommitQueued,      // causal = txn id; one barrier wait interval
  kCommitDrain,       // causal = txn id, arg = bytes appended
  kCommitWormFlush,   // causal = txn id
  kCommitTicket,      // causal = txn id; the whole OnCommit group ticket
  kCommitSequence,    // causal = pipeline ticket; turnstile admission wait
  kEpochFlush,        // causal = epoch seq, arg = commits in the epoch
  kEpochWait,         // causal = epoch seq; riding another slot's barrier
  kWalFsync,          // causal = txn id (0 outside a commit), arg = lsn
  kShipperDrain,      // causal = batch id, arg = bytes appended
  kShipperWormFlush,  // causal = batch id
  kAuditPhase,        // causal = epoch, arg = AuditPhase
  kTsbMigrate,        // causal = tree id, arg = live page id
  kEpochSeal,         // causal = sealed-epoch seq, arg = L bytes sealed
  kAuditIncremental,  // causal = audit epoch, arg = epochs certified
  kSchedulerAdmit,    // causal = pipeline ticket, arg = partition key
  kSpanKindCount,
};

const char* SpanKindName(SpanKind kind);

struct Span {
  uint64_t seq = 0;  // global emission (close) order
  uint64_t causal = 0;
  uint64_t start_us = 0;
  uint64_t end_us = 0;
  uint64_t arg = 0;
  SpanKind kind = SpanKind::kCommit;
  uint32_t tid = 0;  // small dense per-thread id (ThreadTraceId)
};

/// Small dense id of the calling thread, for span attribution and the
/// Chrome exporter's tid field. Stable for the thread's lifetime.
uint32_t ThreadTraceId();

/// Bounded lock-free ring of *closed* spans; same wrap/torn-slot
/// semantics as TraceRing (diagnostics, not an audit trail).
class SpanRing {
 public:
  /// `capacity` is rounded up to a power of two.
  explicit SpanRing(size_t capacity = 16384);
  ~SpanRing();

  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  /// The process-wide ring the subsystems emit into.
  static SpanRing& Global();

  /// Records one closed span. Lock-free; a torn slot is filtered by
  /// Snapshot's sequence check.
  void Emit(SpanKind kind, uint64_t causal, uint64_t start_us,
            uint64_t end_us, uint64_t arg = 0);

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  size_t capacity() const { return capacity_; }
  /// Total spans ever emitted.
  uint64_t total() const { return next_.load(std::memory_order_relaxed); }
  /// Spans overwritten by wraparound.
  uint64_t dropped() const {
    uint64_t n = total();
    return n > capacity_ ? n - capacity_ : 0;
  }

  /// Copies the retained spans, oldest first.
  std::vector<Span> Snapshot() const;

  /// Forgets all spans (bench warm-up).
  void Reset() { next_.store(0, std::memory_order_relaxed); }

 private:
  struct Slot;

  size_t capacity_;  // power of two
  Slot* slots_;
  std::atomic<uint64_t> next_{0};
  std::atomic<bool> enabled_{true};
};

/// True when span emission would actually do something; call sites use it
/// to skip clock reads on the hot path.
inline bool SpansEnabled() {
  return kMetricsCompiledIn && SamplingEnabled() &&
         SpanRing::Global().enabled();
}

/// Thread-local accumulator for the commit in flight on this thread.
/// Activated by ScopedCommitSpan; the shipper/WORM layers add their
/// measured intervals to it so the close can compute the residual.
struct CommitSegments {
  uint64_t txn_id = 0;
  uint64_t queued_us = 0;
  uint64_t drain_us = 0;
  uint64_t worm_us = 0;
  bool active = false;
};

/// The calling thread's slot. Never null; check `active`.
CommitSegments* ActiveCommitSegments();

/// Attribute one measured interval to the active commit (emitting a
/// commit.* span) or, with no commit on this thread, to the shipper batch
/// (emitting a shipper.* span keyed by `batch_id`). No-ops when spans are
/// disabled — callers gate their clock reads on SpansEnabled().
void RecordQueuedInterval(uint64_t start_us, uint64_t end_us);
void RecordDrainInterval(uint64_t start_us, uint64_t end_us, uint64_t bytes,
                         uint64_t batch_id);
void RecordWormFlushInterval(uint64_t start_us, uint64_t end_us,
                             uint64_t batch_id);

/// RAII commit span: activates the thread's CommitSegments slot, and on
/// destruction emits the commit span plus its four segments and records
/// the db.commit_critical_path.* histograms.
class ScopedCommitSpan {
 public:
  explicit ScopedCommitSpan(uint64_t txn_id);
  ~ScopedCommitSpan();

  ScopedCommitSpan(const ScopedCommitSpan&) = delete;
  ScopedCommitSpan& operator=(const ScopedCommitSpan&) = delete;

  /// The commit time becomes the span's arg once known.
  void set_commit_time(uint64_t commit_time) { arg_ = commit_time; }

 private:
  bool active_ = false;
  uint64_t start_us_ = 0;
  uint64_t arg_ = 0;
};

/// RAII span for simple bracketed work (WAL fsync, audit phases, TSB
/// migration). Emits on destruction; `causal`/`arg` may be filled late.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanKind kind, uint64_t causal = 0, uint64_t arg = 0)
      : kind_(kind),
        causal_(causal),
        arg_(arg),
        start_us_(SpansEnabled() ? MonotonicMicros() : 0) {}
  ~ScopedSpan() {
    if (start_us_ != 0) {
      SpanRing::Global().Emit(kind_, causal_, start_us_, MonotonicMicros(),
                              arg_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_causal(uint64_t causal) { causal_ = causal; }
  void set_arg(uint64_t arg) { arg_ = arg; }

 private:
  SpanKind kind_;
  uint64_t causal_;
  uint64_t arg_;
  uint64_t start_us_;
};

/// One-line rendering for the shell / debugging.
std::string FormatSpan(const Span& span);

}  // namespace obs
}  // namespace complydb

#endif  // COMPLYDB_OBS_SPAN_H_
