#ifndef COMPLYDB_OBS_TRACE_EXPORT_H_
#define COMPLYDB_OBS_TRACE_EXPORT_H_

// Chrome/Perfetto `trace_event` JSON export of the span ring and the
// trace ring, loadable in chrome://tracing or ui.perfetto.dev.
//
// Spans become "X" (complete) events on pid 1, one track per engine
// thread; trace events become "i" (instant) events on pid 2. The two
// rings deliberately stay on separate process tracks: spans timestamp
// with MonotonicMicros while trace events follow the database's Clock
// seam, so their timelines only coincide in wall-clock runs.

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace complydb {
namespace obs {

/// Renders the given spans and events as a Chrome trace_event JSON
/// document ({"traceEvents": [...], ...}).
std::string ChromeTraceJson(const std::vector<Span>& spans,
                            const std::vector<TraceEvent>& events);

/// Snapshot of the global rings, rendered as above.
std::string ChromeTraceJson();

/// Writes ChromeTraceJson() to `path` (shell `trace export`, bench
/// `--trace-json`).
Status WriteChromeTraceFile(const std::string& path);

}  // namespace obs
}  // namespace complydb

#endif  // COMPLYDB_OBS_TRACE_EXPORT_H_
