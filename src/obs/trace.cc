#include "obs/trace.h"

#include <cstdio>

namespace complydb {
namespace obs {

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kTxnBegin: return "txn.begin";
    case TraceEventType::kTxnCommit: return "txn.commit";
    case TraceEventType::kTxnAbort: return "txn.abort";
    case TraceEventType::kWalFsync: return "wal.fsync";
    case TraceEventType::kComplianceAppend: return "compliance.append";
    case TraceEventType::kRegretTick: return "regret.tick";
    case TraceEventType::kPageForce: return "page.force";
    case TraceEventType::kAuditPhase: return "audit.phase";
    case TraceEventType::kTsbMigrate: return "tsb.migrate";
    case TraceEventType::kVacuumShred: return "vacuum.shred";
    case TraceEventType::kWormAppend: return "worm.append";
    case TraceEventType::kEventTypeCount: break;
  }
  return "?";
}

const char* AuditPhaseName(AuditPhase phase) {
  switch (phase) {
    case AuditPhase::kSnapshot: return "snapshot";
    case AuditPhase::kSummarize: return "summarize";
    case AuditPhase::kReplay: return "replay";
    case AuditPhase::kFinalState: return "final_state";
    case AuditPhase::kIndexCheck: return "index_check";
    case AuditPhase::kTotal: return "total";
  }
  return "?";
}

// Slots are all-atomic so concurrent Emit/Snapshot stay data-race-free
// (fields of a wrapped slot may still be torn *across* each other, which
// Snapshot filters by sequence number).
struct TraceRing::Slot {
  std::atomic<uint64_t> seq{~0ull};
  std::atomic<uint64_t> ts_micros{0};
  std::atomic<uint8_t> type{0};
  std::atomic<uint64_t> a{0};
  std::atomic<uint64_t> b{0};
};

TraceRing::TraceRing(size_t capacity)
    : capacity_(RoundUpPow2(capacity == 0 ? 1 : capacity)),
      slots_(new Slot[capacity_]) {}

TraceRing::~TraceRing() { delete[] slots_; }

TraceRing& TraceRing::Global() {
  static TraceRing* ring = new TraceRing(8192);
  return *ring;
}

void TraceRing::SetClock(Clock* clock) {
  clock_.store(clock, std::memory_order_release);
}

void TraceRing::ClearClock(Clock* clock) {
  Clock* expected = clock;
  clock_.compare_exchange_strong(expected, nullptr,
                                 std::memory_order_acq_rel);
}

void TraceRing::Emit(TraceEventType type, uint64_t a, uint64_t b) {
#if !defined(COMPLYDB_DISABLE_METRICS)
  if (!enabled()) return;
  Clock* clock = clock_.load(std::memory_order_acquire);
  uint64_t ts = clock != nullptr ? clock->NowMicros() : MonotonicMicros();
  uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & (capacity_ - 1)];
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.ts_micros.store(ts, std::memory_order_relaxed);
  slot.type.store(static_cast<uint8_t>(type), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
#else
  (void)type;
  (void)a;
  (void)b;
#endif
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  uint64_t end = next_.load(std::memory_order_relaxed);
  uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  std::vector<TraceEvent> out;
  out.reserve(end - begin);
  for (uint64_t seq = begin; seq < end; ++seq) {
    const Slot& slot = slots_[seq & (capacity_ - 1)];
    TraceEvent e;
    e.seq = slot.seq.load(std::memory_order_relaxed);
    if (e.seq != seq) continue;  // overwritten or mid-write
    e.ts_micros = slot.ts_micros.load(std::memory_order_relaxed);
    e.type = static_cast<TraceEventType>(
        slot.type.load(std::memory_order_relaxed));
    e.a = slot.a.load(std::memory_order_relaxed);
    e.b = slot.b.load(std::memory_order_relaxed);
    out.push_back(e);
  }
  return out;
}

std::string FormatTraceEvent(const TraceEvent& event) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "#%llu @%llu %-18s a=%llu b=%llu",
                static_cast<unsigned long long>(event.seq),
                static_cast<unsigned long long>(event.ts_micros),
                TraceEventTypeName(event.type),
                static_cast<unsigned long long>(event.a),
                static_cast<unsigned long long>(event.b));
  return buf;
}

}  // namespace obs
}  // namespace complydb
