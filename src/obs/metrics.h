#ifndef COMPLYDB_OBS_METRICS_H_
#define COMPLYDB_OBS_METRICS_H_

// Process-wide observability: named atomic counters, gauges, and fixed-
// bucket log2 latency histograms, collected in a MetricsRegistry and
// exported as JSON or Prometheus text.
//
// Design constraints (the hot paths this instruments run per tuple / per
// page / per WORM append):
//   * zero allocation after registration — call sites resolve a metric
//     once (function-local static) and then touch only a relaxed atomic;
//   * no locks on the update path — the registry mutex guards only
//     name -> metric resolution and snapshotting;
//   * compile-out — building with COMPLYDB_DISABLE_METRICS turns every
//     update into a no-op so the overhead of the layer itself can be
//     measured (see bench_micro);
//   * latency sampling can be disabled at runtime (SetSampling(false)),
//     which skips the clock reads entirely — counters keep counting.
//
// Metric names are dotted lowercase ("wal.fsync_us"); the catalog lives
// in docs/OBSERVABILITY.md.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace complydb {
namespace obs {

#if defined(COMPLYDB_DISABLE_METRICS)
inline constexpr bool kMetricsCompiledIn = false;
#else
inline constexpr bool kMetricsCompiledIn = true;
#endif

/// Monotonic microseconds for latency measurement (real elapsed time, not
/// the simulated Clock — latencies are about the hardware, not the
/// workload's virtual timeline).
inline uint64_t MonotonicMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Runtime switch for latency sampling. When off, ScopedLatencyTimer does
/// not read the clock and records nothing; counters are unaffected.
bool SamplingEnabled();
void SetSampling(bool enabled);

/// The exporter's metric-name mapping: "complydb_" prefix, '.' and '-'
/// become '_'. Exposed so tests and the telemetry endpoint agree on it.
std::string PromMetricName(const std::string& name);

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote, and newline gain a backslash.
std::string PromEscapeLabelValue(const std::string& value);

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
#if !defined(COMPLYDB_DISABLE_METRICS)
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed level (cache dirty pages, active transactions).
class Gauge {
 public:
  void Set(int64_t v) {
#if !defined(COMPLYDB_DISABLE_METRICS)
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(int64_t delta) {
#if !defined(COMPLYDB_DISABLE_METRICS)
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket base-2 exponential histogram of microsecond latencies.
///
/// Bucket 0 holds exactly the value 0; bucket i (i >= 1) holds values in
/// [2^(i-1), 2^i). 28 buckets cover 0 .. ~134 s; larger samples clamp
/// into the top bucket. Recording is one relaxed fetch_add on the bucket
/// plus count/sum bookkeeping — no allocation, no locks.
class Histogram {
 public:
  static constexpr int kBuckets = 28;

  /// Bucket index for a value (see class comment for the boundaries).
  static int BucketFor(uint64_t value_us) {
    if (value_us == 0) return 0;
    int b = 64 - __builtin_clzll(value_us);
    return b >= kBuckets ? kBuckets - 1 : b;
  }
  /// Inclusive lower bound of a bucket.
  static uint64_t BucketLower(int bucket) {
    return bucket == 0 ? 0 : 1ull << (bucket - 1);
  }
  /// Exclusive upper bound of a bucket.
  static uint64_t BucketUpper(int bucket) {
    return bucket == 0 ? 1 : 1ull << bucket;
  }

  void Record(uint64_t value_us) {
#if !defined(COMPLYDB_DISABLE_METRICS)
    buckets_[BucketFor(value_us)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(value_us, std::memory_order_relaxed);
    // Racy max update is fine: relaxed CAS loop, losers retry.
    uint64_t prev = max_us_.load(std::memory_order_relaxed);
    while (value_us > prev && !max_us_.compare_exchange_weak(
                                  prev, value_us, std::memory_order_relaxed)) {
    }
#else
    (void)value_us;
#endif
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t SumMicros() const { return sum_us_.load(std::memory_order_relaxed); }
  uint64_t MaxMicros() const { return max_us_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// containing bucket. Returns 0 on an empty histogram.
  double Quantile(double q) const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

/// RAII latency sample into a histogram. Skips the clock reads when the
/// histogram is null or sampling is off.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* h)
      : hist_(kMetricsCompiledIn && h != nullptr && SamplingEnabled() ? h
                                                                      : nullptr),
        start_us_(hist_ != nullptr ? MonotonicMicros() : 0) {}
  ~ScopedLatencyTimer() {
    if (hist_ != nullptr) hist_->Record(MonotonicMicros() - start_us_);
  }

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_us_;
};

/// Name -> metric directory. Metrics are created on first lookup and live
/// for the life of the process (pointers remain valid across ResetAll, so
/// call sites may cache them in function-local statics).
class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem reports into.
  static MetricsRegistry& Global();

  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Zeroes every metric (bench warm-up). Pointers stay valid.
  void ResetAll();

  struct HistogramSnapshot {
    std::string name;
    uint64_t count = 0;
    uint64_t sum_us = 0;
    uint64_t max_us = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    std::vector<uint64_t> buckets;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;
  };
  /// Point-in-time copy of every metric, sorted by name.
  Snapshot TakeSnapshot() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const;

  /// Prometheus text exposition format ("complydb_" prefix, dots become
  /// underscores, histograms as <name>_bucket/_sum/_count plus a separate
  /// <name>_quantile gauge family for p50/p95/p99).
  std::string ToPrometheusText() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace obs
}  // namespace complydb

#endif  // COMPLYDB_OBS_METRICS_H_
