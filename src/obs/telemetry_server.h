#ifndef COMPLYDB_OBS_TELEMETRY_SERVER_H_
#define COMPLYDB_OBS_TELEMETRY_SERVER_H_

// Minimal embedded HTTP/1.0 telemetry endpoint — the deliberate seed of
// the ROADMAP's network serving layer. One poll-loop thread, POSIX
// sockets only, loopback bind, connection-per-request:
//
//   GET /metrics       Prometheus text exposition of the global registry
//   GET /metrics.json  the same registry as JSON
//   GET /trace         Chrome trace_event JSON of the span + trace rings
//   GET /healthz       "ok" liveness probe
//
// Opt-in: CompliantDB starts one when DbOptions.telemetry_port (or the
// COMPLYDB_TELEMETRY_PORT environment override) is non-zero. Tests pass
// port 0 for a kernel-assigned ephemeral port and read it back via
// port(). Serving never touches engine state — it renders the process-
// wide obs singletons, so it stays safe while transactions run.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "common/status.h"

namespace complydb {
namespace obs {

class TelemetryServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the serving
  /// thread. Fails if the port is taken.
  static Result<std::unique_ptr<TelemetryServer>> Start(uint16_t port);

  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// The bound port (resolves ephemeral binds).
  uint16_t port() const { return port_; }

  /// Stops the serving thread and closes the listener. Idempotent; also
  /// run by the destructor.
  void Stop();

  /// Requests served so far (tests / smoke checks).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  TelemetryServer() = default;
  void Loop();
  void HandleConnection(int fd);

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace complydb

#endif  // COMPLYDB_OBS_TELEMETRY_SERVER_H_
