#include "obs/telemetry_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "obs/trace_export.h"

namespace complydb {
namespace obs {

namespace {
// One build-info family with quoted labels rides ahead of the registry
// dump; scrapers key dashboards off it and it exercises label escaping.
std::string BuildInfoText() {
  std::string out = "# TYPE complydb_build_info gauge\n";
  out += "complydb_build_info{metrics=\"";
  out += kMetricsCompiledIn ? "on" : "off";
  out += "\",format=\"";
  out += PromEscapeLabelValue("text/plain; version=0.0.4");
  out += "\"} 1\n";
  return out;
}

std::string HttpResponse(int code, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\n"
                    "Content-Type: " +
                    content_type +
                    "\r\n"
                    "Content-Length: " +
                    std::to_string(body.size()) +
                    "\r\n"
                    "Connection: close\r\n\r\n";
  out += body;
  return out;
}

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away; nothing to clean up
    }
    off += static_cast<size_t>(n);
  }
}
}  // namespace

Result<std::unique_ptr<TelemetryServer>> TelemetryServer::Start(
    uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("telemetry socket: " +
                                     std::string(std::strerror(errno)));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("telemetry bind port " + std::to_string(port) +
                               ": " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 16) != 0) {
    Status s = Status::IOError("telemetry listen: " +
                               std::string(std::strerror(errno)));
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status s = Status::IOError("telemetry getsockname: " +
                               std::string(std::strerror(errno)));
    ::close(fd);
    return s;
  }

  auto server = std::unique_ptr<TelemetryServer>(new TelemetryServer());
  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  server->thread_ = std::thread([srv = server.get()] { srv->Loop(); });
  return server;
}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void TelemetryServer::Loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc <= 0) continue;  // timeout (stop-flag check) or EINTR
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void TelemetryServer::HandleConnection(int fd) {
  // Requests of interest are one GET line; 4 KB is generous. A short or
  // malformed read just yields a 400 — no framing state to corrupt.
  char buf[4096];
  ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  std::string request(buf);
  requests_.fetch_add(1, std::memory_order_relaxed);

  size_t sp1 = request.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : request.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      request.substr(0, sp1) != "GET") {
    WriteAll(fd, HttpResponse(400, "Bad Request", "text/plain",
                              "bad request\n"));
    return;
  }
  std::string path = request.substr(sp1 + 1, sp2 - sp1 - 1);

  if (path == "/healthz") {
    WriteAll(fd, HttpResponse(200, "OK", "text/plain", "ok\n"));
  } else if (path == "/metrics") {
    WriteAll(fd, HttpResponse(
                     200, "OK", "text/plain; version=0.0.4",
                     BuildInfoText() +
                         MetricsRegistry::Global().ToPrometheusText()));
  } else if (path == "/metrics.json") {
    WriteAll(fd, HttpResponse(200, "OK", "application/json",
                              MetricsRegistry::Global().ToJson()));
  } else if (path == "/trace") {
    WriteAll(fd,
             HttpResponse(200, "OK", "application/json", ChromeTraceJson()));
  } else {
    WriteAll(fd, HttpResponse(404, "Not Found", "text/plain",
                              "not found\n"));
  }
}

}  // namespace obs
}  // namespace complydb
